// Compressive-sensing reconstruction from variable-density random spectral
// samples (paper §II-C: "Random sampling is of growing interest in
// Compressive Sensing"). ISTA (iterative soft-thresholding) with an
// image-domain sparsity prior; every iteration costs one forward and one
// adjoint NUFFT — the workload class the paper accelerates.
//
//   $ ./compressed_sensing
#include <cmath>
#include <complex>
#include <cstdio>

#include "common/env.hpp"
#include "core/nufft.hpp"
#include "datasets/trajectory.hpp"
#include "mri/phantom.hpp"

int main() {
  using namespace nufft;

  const index_t N = env_int("NUFFT_CS_N", 64);
  const GridDesc grid = make_grid(2, N, 2.0);

  // 35% sampling: K·S ≈ 0.35·N².
  datasets::TrajectoryParams params;
  params.n = N;
  params.k = N;
  params.s = std::max<index_t>(1, static_cast<index_t>(0.35 * static_cast<double>(N)));
  params.seed = 2026;
  const auto samples =
      datasets::make_trajectory(datasets::TrajectoryType::kRandom, 2, params);
  const double rate = static_cast<double>(samples.count()) /
                      static_cast<double>(grid.image_elems());
  std::printf("compressed sensing: %lld samples = %.0f%% of Nyquist\n",
              static_cast<long long>(samples.count()), rate * 100);

  PlanConfig cfg;
  cfg.threads = bench_threads();
  Nufft plan(grid, samples, cfg);

  const cvecf truth = mri::make_phantom(grid);
  cvecf data(static_cast<std::size_t>(samples.count()));
  plan.forward(truth.data(), data.data());

  // Estimate the Lipschitz constant L ≈ λmax(AᴴA) by power iteration, so
  // the ISTA step 1/L is safe.
  const index_t n = grid.image_elems();
  cvecf v(static_cast<std::size_t>(n), cfloat(1.0f, 0.0f));
  cvecf av(static_cast<std::size_t>(samples.count()));
  cvecf atav(static_cast<std::size_t>(n));
  double lipschitz = 1.0;
  for (int it = 0; it < 8; ++it) {
    plan.forward(v.data(), av.data());
    plan.adjoint(av.data(), atav.data());
    double norm = 0.0;
    for (index_t i = 0; i < n; ++i) norm += std::norm(atav[static_cast<std::size_t>(i)]);
    norm = std::sqrt(norm);
    lipschitz = norm;
    for (index_t i = 0; i < n; ++i) {
      v[static_cast<std::size_t>(i)] = atav[static_cast<std::size_t>(i)] / static_cast<float>(norm);
    }
  }
  std::printf("power iteration: L ~= %.3e\n", lipschitz);

  // ISTA: x ← soft(x − (1/L)·Aᴴ(Ax − b), λ/L).
  const int iters = static_cast<int>(env_int("NUFFT_CS_ITERS", 30));
  const float step = static_cast<float>(1.0 / lipschitz);
  const float lambda = 0.02f * static_cast<float>(lipschitz);
  const float thresh = lambda * step;
  cvecf x(static_cast<std::size_t>(n), cfloat(0, 0));
  cvecf resid(static_cast<std::size_t>(samples.count()));
  cvecf grad(static_cast<std::size_t>(n));
  for (int it = 0; it < iters; ++it) {
    plan.forward(x.data(), resid.data());
    for (index_t i = 0; i < samples.count(); ++i) {
      resid[static_cast<std::size_t>(i)] -= data[static_cast<std::size_t>(i)];
    }
    plan.adjoint(resid.data(), grad.data());
    for (index_t i = 0; i < n; ++i) {
      cfloat z = x[static_cast<std::size_t>(i)] - step * grad[static_cast<std::size_t>(i)];
      const float mag = std::abs(z);
      const float shrunk = mag > thresh ? (mag - thresh) / mag : 0.0f;
      x[static_cast<std::size_t>(i)] = z * shrunk;
    }
    if ((it + 1) % 5 == 0 || it == 0) {
      std::printf("  ISTA iter %2d  NRMSE %.4f\n", it + 1,
                  mri::nrmse(x.data(), truth.data(), n));
    }
  }
  std::printf("final NRMSE after %d iterations (%.0f NUFFT pairs): %.4f\n", iters,
              static_cast<double>(iters + 8), mri::nrmse(x.data(), truth.data(), n));
  return 0;
}
