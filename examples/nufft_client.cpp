// NUFFT-as-a-service client: open a tenant session against ./nufft_server,
// register a radial-trajectory plan, and run forward + adjoint transforms
// remotely.
//
//   $ ./nufft_client [socket-path] [tenant] [requests]
//
// Demonstrates the full client surface: connect (Hello handshake),
// register_plan (built server-side, deduplicated by content across
// tenants), forward/adjoint with an optional deadline, and the stats RPC.
// A request shed by admission control arrives here as nufft::Error with
// ErrorCode::kOverloaded — retryable by contract (is_retryable).
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "datasets/trajectory.hpp"
#include "serve/client.hpp"

int main(int argc, char** argv) {
  using namespace nufft;

  const std::string path = argc > 1 ? argv[1] : "/tmp/nufft.sock";
  const std::string tenant = argc > 2 ? argv[2] : "example-tenant";
  const int requests = argc > 3 ? std::atoi(argv[3]) : 4;

  // The same 2D radial setup as examples/quickstart.cpp, served remotely.
  const index_t N = 64;
  const GridDesc grid = make_grid(2, N, 2.0);
  datasets::TrajectoryParams params;
  params.n = N;
  params.k = 128;
  params.s = 96;
  const auto samples =
      datasets::make_trajectory(datasets::TrajectoryType::kRadial, 2, params);
  PlanConfig cfg;
  cfg.kernel_radius = 4.0;
  cfg.threads = 1;

  serve::NufftClient client;
  try {
    client.connect(path, tenant);
    std::printf("connected to %s as '%s' (session %llu)\n", path.c_str(), tenant.c_str(),
                static_cast<unsigned long long>(client.session_id()));

    const auto plan_id = client.register_plan(grid, samples, cfg);
    std::printf("plan %llu registered (%.1f MiB resident server-side)\n",
                static_cast<unsigned long long>(plan_id),
                static_cast<double>(client.last_plan_bytes()) / (1u << 20));

    std::vector<cfloat> image(static_cast<std::size_t>(grid.image_elems()));
    for (index_t y = 0; y < N; ++y) {
      for (index_t x = 0; x < N; ++x) {
        const double dx = (static_cast<double>(x) - 40.0) / 8.0;
        const double dy = (static_cast<double>(y) - 28.0) / 6.0;
        image[static_cast<std::size_t>(y * N + x)] =
            cfloat(static_cast<float>(std::exp(-dx * dx - dy * dy)), 0.0f);
      }
    }

    serve::RunOptions opts;
    opts.deadline_ms = 5000;  // shed (kOverloaded) rather than queue to die
    for (int i = 0; i < requests; ++i) {
      try {
        const auto fwd = client.forward(plan_id, image, 1, opts);
        const auto adj = client.adjoint(plan_id, fwd.output, 1, opts);
        std::printf("request %d: forward %llu us exec / %llu us queued, adjoint %llu us exec\n",
                    i, static_cast<unsigned long long>(fwd.exec_us),
                    static_cast<unsigned long long>(fwd.queue_wait_us),
                    static_cast<unsigned long long>(adj.exec_us));
      } catch (const Error& e) {
        if (e.code() != ErrorCode::kOverloaded) throw;
        std::printf("request %d: shed by admission control — backing off\n", i);
      }
    }

    for (const auto& [name, value] : client.server_stats()) {
      if (name.rfind("tenant." + tenant, 0) == 0) {
        std::printf("  %-40s %llu\n", name.c_str(), static_cast<unsigned long long>(value));
      }
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "nufft-client: %s (%s)\n", e.what(), error_code_name(e.code()));
    return 1;
  }
  return 0;
}
