// nufft_tool — command-line driver for ad-hoc NUFFT runs.
//
//   $ ./nufft_tool --dim 3 --n 64 --type radial --w 4 --threads 8 --reps 3
//   $ ./nufft_tool --n 32 --verify            # check against the exact NUDFT
//   $ ./nufft_tool --isa avx2 --op adjoint
//
// Options (all have defaults):
//   --dim {1,2,3}        transform dimensionality          (3)
//   --n N                image size per dimension          (64)
//   --sr R               sampling rate, K·S ≈ N^dim·R      (0.75)
//   --type {radial,random,spiral}                          (radial)
//   --w W                kernel radius                     (4)
//   --alpha A            oversampling ratio                (2.0)
//   --threads T          software threads                  (hardware)
//   --isa {scalar,sse,avx2,auto}                           (sse)
//   --op {forward,adjoint,both}                            (both)
//   --reps R             timing repetitions                (3)
//   --verify             compare against the direct NUDFT (small n only)
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>

#include "baselines/nudft.hpp"
#include "common/env.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "core/nufft.hpp"
#include "datasets/trajectory.hpp"

using namespace nufft;

namespace {

struct Args {
  int dim = 3;
  index_t n = 64;
  double sr = 0.75;
  std::string type = "radial";
  double w = 4.0;
  double alpha = 2.0;
  int threads = bench_threads();
  std::string isa = "sse";
  std::string op = "both";
  int reps = 3;
  bool verify = false;
};

bool parse(int argc, char** argv, Args& a) {
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag.c_str());
        return nullptr;
      }
      return argv[++i];
    };
    if (flag == "--verify") {
      a.verify = true;
    } else if (flag == "--dim") {
      const char* v = next();
      if (!v) return false;
      a.dim = std::atoi(v);
    } else if (flag == "--n") {
      const char* v = next();
      if (!v) return false;
      a.n = std::atoll(v);
    } else if (flag == "--sr") {
      const char* v = next();
      if (!v) return false;
      a.sr = std::atof(v);
    } else if (flag == "--type") {
      const char* v = next();
      if (!v) return false;
      a.type = v;
    } else if (flag == "--w") {
      const char* v = next();
      if (!v) return false;
      a.w = std::atof(v);
    } else if (flag == "--alpha") {
      const char* v = next();
      if (!v) return false;
      a.alpha = std::atof(v);
    } else if (flag == "--threads") {
      const char* v = next();
      if (!v) return false;
      a.threads = std::atoi(v);
    } else if (flag == "--isa") {
      const char* v = next();
      if (!v) return false;
      a.isa = v;
    } else if (flag == "--op") {
      const char* v = next();
      if (!v) return false;
      a.op = v;
    } else if (flag == "--reps") {
      const char* v = next();
      if (!v) return false;
      a.reps = std::atoi(v);
    } else {
      std::fprintf(stderr, "unknown flag: %s (see header comment for usage)\n", flag.c_str());
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Args a;
  if (!parse(argc, argv, a)) return 2;

  datasets::TrajectoryType type;
  if (a.type == "radial") {
    type = datasets::TrajectoryType::kRadial;
  } else if (a.type == "random") {
    type = datasets::TrajectoryType::kRandom;
  } else if (a.type == "spiral") {
    type = datasets::TrajectoryType::kSpiral;
  } else {
    std::fprintf(stderr, "unknown trajectory type: %s\n", a.type.c_str());
    return 2;
  }

  datasets::TrajectoryParams tp;
  tp.n = a.n;
  tp.k = 2 * a.n;
  tp.alpha = a.alpha;
  const double total = std::pow(static_cast<double>(a.n), a.dim) * a.sr;
  tp.s = std::max<index_t>(1, static_cast<index_t>(std::llround(total / static_cast<double>(tp.k))));
  const auto set = datasets::make_trajectory(type, a.dim, tp);
  const GridDesc g = make_grid(a.dim, a.n, a.alpha);

  PlanConfig cfg;
  cfg.kernel_radius = a.w;
  cfg.threads = a.threads;
  if (a.isa == "scalar") {
    cfg.use_simd = false;
  } else if (a.isa == "sse") {
    cfg.isa = SimdIsa::kSse;
  } else if (a.isa == "avx2") {
    cfg.isa = SimdIsa::kAvx2;
  } else if (a.isa == "auto") {
    cfg.isa = SimdIsa::kAuto;
  } else {
    std::fprintf(stderr, "unknown isa: %s\n", a.isa.c_str());
    return 2;
  }

  std::printf("nufft_tool: dim=%d N=%lld M=%lld samples=%lld (%s) W=%.1f alpha=%.2f "
              "threads=%d isa=%s\n",
              a.dim, static_cast<long long>(a.n), static_cast<long long>(g.m[0]),
              static_cast<long long>(set.count()), a.type.c_str(), a.w, a.alpha, a.threads,
              a.isa.c_str());

  Timer plan_t;
  Nufft plan(g, set, cfg);
  std::printf("plan: %.4f s preprocessing, %d tasks (%d privatized)\n", plan_t.seconds(),
              plan.plan().stats.tasks, plan.plan().stats.privatized_tasks);

  Rng rng(1);
  cvecf img(static_cast<std::size_t>(g.image_elems()));
  for (auto& v : img) v = cfloat(static_cast<float>(rng.uniform(-1, 1)), static_cast<float>(rng.uniform(-1, 1)));
  cvecf raw(static_cast<std::size_t>(set.count()));

  if (a.op == "forward" || a.op == "both") {
    double best = 1e300;
    for (int r = 0; r < a.reps; ++r) {
      Timer t;
      plan.forward(img.data(), raw.data());
      best = std::min(best, t.seconds());
    }
    const auto& s = plan.last_forward_stats();
    std::printf("forward: %.4f s (conv %.4f, fft %.4f, scale %.4f)  %.2f Msamples/s\n", best,
                s.conv_s, s.fft_s, s.scale_s, static_cast<double>(set.count()) / best / 1e6);
  }
  if (a.op == "adjoint" || a.op == "both") {
    cvecf out(static_cast<std::size_t>(g.image_elems()));
    for (auto& v : raw) v = cfloat(static_cast<float>(rng.uniform(-1, 1)), static_cast<float>(rng.uniform(-1, 1)));
    double best = 1e300;
    for (int r = 0; r < a.reps; ++r) {
      Timer t;
      plan.adjoint(raw.data(), out.data());
      best = std::min(best, t.seconds());
    }
    const auto& s = plan.last_adjoint_stats();
    std::printf("adjoint: %.4f s (conv %.4f, fft %.4f, scale %.4f)  %.2f Msamples/s\n", best,
                s.conv_s, s.fft_s, s.scale_s, static_cast<double>(set.count()) / best / 1e6);
  }

  if (a.verify) {
    if (static_cast<double>(g.image_elems()) * static_cast<double>(set.count()) > 5e9) {
      std::printf("verify: problem too large for the O(N^d·K) direct check, skipping\n");
      return 0;
    }
    plan.forward(img.data(), raw.data());
    ThreadPool pool(a.threads);
    std::vector<cdouble> exact(static_cast<std::size_t>(set.count()));
    baselines::nudft_forward(g, set, img.data(), exact.data(), pool);
    double num = 0, den = 0;
    for (index_t i = 0; i < set.count(); ++i) {
      const cdouble d = cdouble(raw[static_cast<std::size_t>(i)].real(),
                                raw[static_cast<std::size_t>(i)].imag()) -
                        exact[static_cast<std::size_t>(i)];
      num += std::norm(d);
      den += std::norm(exact[static_cast<std::size_t>(i)]);
    }
    std::printf("verify: forward vs exact NUDFT relative L2 error = %.3e\n",
                std::sqrt(num / den));
  }
  return 0;
}
