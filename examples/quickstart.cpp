// Quickstart: plan a 2D NUFFT, apply the forward and adjoint operators,
// and check the result against the exact (direct) non-uniform DFT.
//
//   $ ./quickstart
//
// Walkthrough of the full public API surface:
//   1. describe the grid geometry          (GridDesc / make_grid)
//   2. generate or supply sample points    (datasets::make_trajectory)
//   3. build a plan                        (Nufft)
//   4. apply forward / adjoint transforms  (plan.forward / plan.adjoint)
#include <cmath>
#include <complex>
#include <cstdio>

#include "baselines/nudft.hpp"
#include "core/nufft.hpp"
#include "datasets/trajectory.hpp"

int main() {
  using namespace nufft;

  // 1. A 64×64 image on a 2x-oversampled 128×128 spectral grid.
  const index_t N = 64;
  const GridDesc grid = make_grid(/*dim=*/2, N, /*alpha=*/2.0);

  // 2. A radial trajectory: 96 spokes of 128 samples. Coordinates are in
  //    oversampled-grid units, w ∈ [0, M); DC sits at M/2.
  datasets::TrajectoryParams params;
  params.n = N;
  params.k = 128;
  params.s = 96;
  const auto samples =
      datasets::make_trajectory(datasets::TrajectoryType::kRadial, 2, params);
  std::printf("trajectory: %lld radial samples on a %lldx%lld grid\n",
              static_cast<long long>(samples.count()), static_cast<long long>(grid.m[0]),
              static_cast<long long>(grid.m[1]));

  // 3. Plan. PlanConfig selects kernel width, thread count, and the
  //    individual optimizations (all on by default).
  PlanConfig cfg;
  cfg.kernel_radius = 4.0;  // W: 9-point Kaiser-Bessel window per dimension
  cfg.threads = 4;
  Nufft plan(grid, samples, cfg);
  std::printf("plan: %d tasks, %d privatized, preprocessing %.3f ms\n",
              plan.plan().stats.tasks, plan.plan().stats.privatized_tasks,
              plan.plan().stats.total_s * 1e3);

  // A smooth test image: a Gaussian blob off center.
  cvecf image(static_cast<std::size_t>(grid.image_elems()));
  for (index_t y = 0; y < N; ++y) {
    for (index_t x = 0; x < N; ++x) {
      const double dx = (static_cast<double>(x) - 40.0) / 8.0;
      const double dy = (static_cast<double>(y) - 28.0) / 6.0;
      image[static_cast<std::size_t>(y * N + x)] =
          cfloat(static_cast<float>(std::exp(-dx * dx - dy * dy)), 0.0f);
    }
  }

  // 4a. Forward: image → non-uniform spectral samples.
  cvecf raw(static_cast<std::size_t>(samples.count()));
  plan.forward(image.data(), raw.data());
  std::printf("forward: %.3f ms (conv %.3f ms, FFT %.3f ms)\n",
              plan.last_forward_stats().total_s * 1e3, plan.last_forward_stats().conv_s * 1e3,
              plan.last_forward_stats().fft_s * 1e3);

  // 4b. Adjoint: samples → image (the gridding direction).
  cvecf back(static_cast<std::size_t>(grid.image_elems()));
  plan.adjoint(raw.data(), back.data());
  std::printf("adjoint: %.3f ms (conv %.3f ms, FFT %.3f ms)\n",
              plan.last_adjoint_stats().total_s * 1e3, plan.last_adjoint_stats().conv_s * 1e3,
              plan.last_adjoint_stats().fft_s * 1e3);

  // Verify the forward result against the O(N²K) direct transform.
  ThreadPool pool(1);
  std::vector<cdouble> exact(static_cast<std::size_t>(samples.count()));
  baselines::nudft_forward(grid, samples, image.data(), exact.data(), pool);
  double num = 0.0, den = 0.0;
  for (index_t i = 0; i < samples.count(); ++i) {
    const cdouble d = cdouble(raw[static_cast<std::size_t>(i)].real(),
                              raw[static_cast<std::size_t>(i)].imag()) -
                      exact[static_cast<std::size_t>(i)];
    num += std::norm(d);
    den += std::norm(exact[static_cast<std::size_t>(i)]);
  }
  std::printf("forward NUFFT vs exact NUDFT: relative L2 error = %.2e\n",
              std::sqrt(num / den));
  return 0;
}
