// NUFFT-as-a-service server: expose the execution engine over an AF_UNIX
// socket with multi-tenant admission control.
//
//   $ ./nufft_server [socket-path] [workers]
//   nufft-server: listening on /tmp/nufft.sock (2 workers) — Ctrl-C to stop
//
// Pair with ./nufft_client (any number of instances, each its own tenant):
//
//   $ ./nufft_client /tmp/nufft.sock tenant-a &
//   $ ./nufft_client /tmp/nufft.sock tenant-b
//
// The server prints a counter summary (accepted / completed / shed / p99
// queue wait) on shutdown. Tenants are created on first Hello; this example
// gives every tenant the default policy plus a registry byte quota so one
// tenant cannot monopolize plan memory.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "serve/server.hpp"

namespace {
volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }
}  // namespace

int main(int argc, char** argv) {
  using namespace nufft;

  serve::ServeConfig cfg;
  cfg.socket_path = argc > 1 ? argv[1] : "/tmp/nufft.sock";
  cfg.engine.workers = argc > 2 ? std::atoi(argv[2]) : 2;

  // Per-tenant limits: 2 concurrent jobs, 32 queued, 64 MiB of resident
  // plans. Weighted fair dispatch splits engine slots between backlogged
  // tenants in proportion to their weights (all 1 here).
  cfg.default_tenant.max_inflight = 2;
  cfg.default_tenant.max_queued = 32;
  cfg.registry.tenant_max_bytes = 64u << 20;

  serve::NufftServer server(cfg);
  try {
    server.start();
  } catch (const Error& e) {
    std::fprintf(stderr, "nufft-server: %s\n", e.what());
    return 1;
  }
  std::printf("nufft-server: listening on %s (%d workers) — Ctrl-C to stop\n",
              cfg.socket_path.c_str(), cfg.engine.workers);

  std::signal(SIGINT, on_signal);
  std::signal(SIGTERM, on_signal);
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  std::printf("nufft-server: shutting down\n");
  for (const auto& [name, value] : server.stat_counters()) {
    std::printf("  %-32s %llu\n", name.c_str(), static_cast<unsigned long long>(value));
  }
  server.stop();
  return 0;
}
