// Iterative multichannel 3D non-Cartesian MRI reconstruction — the paper's
// headline application (§I: a 240³ iterative multichannel reconstruction in
// ~3 minutes on 16 cores).
//
//   $ ./mri_recon_3d           # container-scale 48³ problem
//   $ NUFFT_MRI_N=240 NUFFT_THREADS=16 ./mri_recon_3d   # paper scale
//
// Pipeline: 3D phantom → synthetic coil sensitivities → simulate radial
// (kooshball) k-space data via one coil-batched forward NUFFT → CG on the
// normal equations. Each iteration runs one batched forward+adjoint pass
// (exec::BatchNufft) with the coil count as the batch, so the interpolation
// windows, scheduler walk and pruned FFT are paid once for all coils.
#include <cstdio>

#include "common/env.hpp"
#include "common/timer.hpp"
#include "core/nufft.hpp"
#include "datasets/trajectory.hpp"
#include "mri/coils.hpp"
#include "mri/phantom.hpp"
#include "mri/recon.hpp"

int main() {
  using namespace nufft;

  const index_t N = env_int("NUFFT_MRI_N", 48);
  const int coils = static_cast<int>(env_int("NUFFT_MRI_COILS", 4));
  const int iters = static_cast<int>(env_int("NUFFT_MRI_ITERS", 12));
  const GridDesc grid = make_grid(3, N, 2.0);

  // Kooshball radial trajectory at ~0.75 sampling rate.
  datasets::TrajectoryParams params;
  params.n = N;
  params.k = 2 * N;
  params.s = std::max<index_t>(1, 3 * N * N / 4);
  const auto samples =
      datasets::make_trajectory(datasets::TrajectoryType::kRadial, 3, params);
  std::printf("MRI recon: N=%lld, %d coils, %lld k-space samples, %d CG iterations\n",
              static_cast<long long>(N), coils, static_cast<long long>(samples.count()), iters);

  PlanConfig cfg;
  cfg.threads = bench_threads();
  Timer plan_timer;
  Nufft plan(grid, samples, cfg);
  std::printf("plan built in %.3f s (%d tasks, %d privatized)\n", plan_timer.seconds(),
              plan.plan().stats.tasks, plan.plan().stats.privatized_tasks);

  const cvecf truth = mri::make_phantom(grid);
  mri::MultichannelRecon recon(plan, mri::make_coil_maps(grid, coils));

  Timer sim_timer;
  const auto data = recon.simulate(truth.data());
  std::printf("simulated %d-coil acquisition in %.3f s\n", coils, sim_timer.seconds());

  mri::CgOptions opt;
  opt.max_iters = iters;
  opt.tolerance = 1e-8;
  const auto result = recon.reconstruct(data, opt);

  std::printf("reconstruction: %d iterations, %.0f coil fwd+adj pairs (batched), %.3f s "
              "total (%.3f s per pair)\n",
              result.cg.iterations, result.nufft_calls, result.seconds,
              result.seconds / std::max(1.0, result.nufft_calls));
  std::printf("NRMSE vs ground truth: %.4f\n",
              mri::nrmse(result.image.data(), truth.data(), grid.image_elems()));
  for (std::size_t i = 0; i < result.cg.residual_norms.size(); ++i) {
    std::printf("  CG iter %2zu  residual %.4e\n", i + 1, result.cg.residual_norms[i]);
  }
  return 0;
}
