// Non-iterative gridding reconstruction from radial projections — the
// classic tomography / projection-reconstruction use of the adjoint NUFFT
// (paper §II-C: parallel-beam tomography, the Radon transform's frequency-
// domain form via the central slice theorem).
//
//   $ ./radial_tomography
//
// Forward-project a phantom onto radial spectral spokes, then reconstruct
// with a single density-compensated adjoint NUFFT (a ramp |r| filter — the
// Fourier-domain equivalent of filtered backprojection).
#include <cmath>
#include <algorithm>
#include <array>
#include <cstdio>

#include "common/env.hpp"
#include "core/nufft.hpp"
#include "datasets/trajectory.hpp"
#include "mri/dcf.hpp"
#include "mri/phantom.hpp"

int main() {
  using namespace nufft;

  const index_t N = env_int("NUFFT_TOMO_N", 96);
  const GridDesc grid = make_grid(2, N, 2.0);
  datasets::TrajectoryParams params;
  params.n = N;
  params.k = 2 * N;
  params.s = static_cast<index_t>(kPi / 2.0 * static_cast<double>(N));  // angular Nyquist
  const auto samples =
      datasets::make_trajectory(datasets::TrajectoryType::kRadial, 2, params);
  std::printf("tomography: %lld projections x %lld samples, N=%lld\n",
              static_cast<long long>(params.s), static_cast<long long>(params.k),
              static_cast<long long>(N));

  PlanConfig cfg;
  cfg.threads = bench_threads();
  Nufft plan(grid, samples, cfg);

  // "Acquire": forward-project the phantom (central slice theorem — each
  // spoke is the 1D FT of a parallel projection).
  const cvecf truth = mri::make_phantom(grid);
  cvecf raw(static_cast<std::size_t>(samples.count()));
  plan.forward(truth.data(), raw.data());

  // Density compensation: radial sample density ∝ 1/|r|, so weight each
  // sample by its radius (the ramp filter), with the usual DC adjustment.
  const double cx = 0.5 * static_cast<double>(grid.m[0]);
  for (index_t i = 0; i < samples.count(); ++i) {
    const double dx = samples.coords[0][static_cast<std::size_t>(i)] - cx;
    const double dy = samples.coords[1][static_cast<std::size_t>(i)] - cx;
    const double r = std::sqrt(dx * dx + dy * dy);
    const double w = std::max(r, 0.5);  // half-pixel DC weight
    raw[static_cast<std::size_t>(i)] *= static_cast<float>(w);
  }

  // Reconstruct: one adjoint NUFFT of the compensated data, normalized so
  // the phantom peak matches (the adjoint is unnormalized by design).
  cvecf recon(static_cast<std::size_t>(grid.image_elems()));
  plan.adjoint(raw.data(), recon.data());

  // Normalize by matching total energy against the truth.
  double num = 0.0, den = 0.0;
  for (index_t i = 0; i < grid.image_elems(); ++i) {
    num += recon[static_cast<std::size_t>(i)].real() * truth[static_cast<std::size_t>(i)].real();
    den += recon[static_cast<std::size_t>(i)].real() * recon[static_cast<std::size_t>(i)].real();
  }
  const float scale = static_cast<float>(num / den);
  for (auto& v : recon) v *= scale;

  std::printf("gridding (ramp filter) NRMSE: %.4f\n",
              mri::nrmse(recon.data(), truth.data(), grid.image_elems()));
  std::printf("adjoint NUFFT time: %.3f ms (conv %.3f ms)\n",
              plan.last_adjoint_stats().total_s * 1e3, plan.last_adjoint_stats().conv_s * 1e3);

  // Trajectory-agnostic alternative: iterate the Pipe–Menon fixed point for
  // the density weights instead of using the analytic ramp.
  {
    const fvec dcf = mri::pipe_menon_dcf(plan);
    cvecf weighted(static_cast<std::size_t>(samples.count()));
    plan.forward(truth.data(), weighted.data());
    for (index_t i = 0; i < samples.count(); ++i) {
      weighted[static_cast<std::size_t>(i)] *= dcf[static_cast<std::size_t>(i)];
    }
    cvecf recon2(static_cast<std::size_t>(grid.image_elems()));
    plan.adjoint(weighted.data(), recon2.data());
    double num2 = 0.0, den2 = 0.0;
    for (index_t i = 0; i < grid.image_elems(); ++i) {
      num2 += recon2[static_cast<std::size_t>(i)].real() * truth[static_cast<std::size_t>(i)].real();
      den2 += recon2[static_cast<std::size_t>(i)].real() * recon2[static_cast<std::size_t>(i)].real();
    }
    const auto s2 = static_cast<float>(num2 / den2);
    for (auto& v : recon2) v *= s2;
    std::printf("gridding (Pipe-Menon DCF) NRMSE: %.4f\n",
                mri::nrmse(recon2.data(), truth.data(), grid.image_elems()));
  }

  // ASCII rendering of the central rows, truth vs reconstruction.
  const char* shades = " .:-=+*#%@";
  std::printf("\ncenter row, truth vs reconstruction:\n");
  const std::array<const cvecf*, 2> rows = {&truth, &recon};
  for (const cvecf* img : rows) {
    for (index_t x = 0; x < N; x += std::max<index_t>(1, N / 64)) {
      const float v = (*img)[static_cast<std::size_t>((N / 2) * N + x)].real();
      const int level = std::clamp(static_cast<int>(v * 9.0f + 0.5f), 0, 9);
      std::putchar(shades[level]);
    }
    std::putchar('\n');
  }
  return 0;
}
