// Ablation (iterative-solver cost model): applying the normal operator
// AᴴA through the explicit forward+adjoint NUFFT pair versus the
// Toeplitz-embedded form (two 2N-FFTs, no convolution). The crossover
// governs which engine an iterative reconstruction should use per
// iteration; both need the plan for the right-hand side.
#include <cstdio>

#include "common.hpp"
#include "core/toeplitz.hpp"

using namespace nufft;
using namespace nufft::bench;

int main() {
  print_header("Ablation — normal operator: NUFFT pair vs Toeplitz embedding");
  const auto row = default_row_scaled();
  const GridDesc g = make_grid(3, row.n, 2.0);
  const int threads = bench_threads();

  std::printf("%-8s %12s %14s %14s %10s\n", "dataset", "samples", "pair (s)", "toeplitz (s)",
              "ratio");
  for (const auto& set : all_sets(row)) {
    const PlanConfig cfg = optimized_config(threads);
    Nufft plan(g, set, cfg);
    ToeplitzNormal normal(g, set, cfg);

    const cvecf x = random_values(g.image_elems(), 4);
    cvecf raw(static_cast<std::size_t>(set.count()));
    cvecf out(static_cast<std::size_t>(g.image_elems()));

    const double pair = time_call([&] {
      plan.forward(x.data(), raw.data());
      plan.adjoint(raw.data(), out.data());
    });
    const double toep = time_call([&] { normal.apply(x.data(), out.data()); });
    std::printf("%-8s %12lld %14.4f %14.4f %9.2fx\n", datasets::trajectory_name(set.type),
                static_cast<long long>(set.count()), pair, toep, pair / toep);
  }
  std::printf("(Toeplitz trades the K·(2W)^d convolution for two (2N)^d FFTs)\n");
  return 0;
}
