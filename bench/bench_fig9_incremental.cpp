// Fig. 9: incremental optimization study — Base → +Reorder → +SIMD →
// +parallel (thread sweep) → +SMT-style oversubscription, reporting
// convolution and whole-NUFFT speedups over the scalar baseline,
// averaged over the three dataset types.
#include <cstdio>

#include "common.hpp"

using namespace nufft;
using namespace nufft::bench;

namespace {

struct Times {
  double conv = 0, nufft = 0;
};

Times run_pair(const GridDesc& g, const datasets::SampleSet& set, const PlanConfig& cfg,
               const cvecf& img, const cvecf& raw) {
  Nufft plan(g, set, cfg);
  cvecf out_raw(raw.size());
  cvecf out_img(img.size());
  time_call([&] {
    plan.forward(img.data(), out_raw.data());
    plan.adjoint(raw.data(), out_img.data());
  });
  const auto& f = plan.last_forward_stats();
  const auto& a = plan.last_adjoint_stats();
  return Times{f.conv_s + a.conv_s, f.total_s + a.total_s};
}

}  // namespace

int main() {
  print_header("Fig. 9 — speedup with successive optimizations");
  const auto row = default_row_scaled();
  const GridDesc g = make_grid(3, row.n, 2.0);
  const cvecf img = random_values(g.image_elems(), 1);
  const auto sets = all_sets(row);

  struct Variant {
    const char* name;
    PlanConfig cfg;
  };
  std::vector<Variant> variants;
  variants.push_back({"Base (scalar seq)", baseline_config()});
  {
    PlanConfig c = baseline_config();
    c.reorder = true;
    c.variable_partitions = true;
    variants.push_back({"+Reorder", c});
  }
  {
    PlanConfig c = baseline_config();
    c.reorder = true;
    c.variable_partitions = true;
    c.use_simd = true;
    variants.push_back({"+SIMD", c});
  }
  for (const int t : thread_sweep()) {
    if (t == 1) continue;
    PlanConfig c = optimized_config(t);
    static char buf[8][32];
    static int bi = 0;
    std::snprintf(buf[bi], sizeof(buf[bi]), "+parallel %dT", t);
    variants.push_back({buf[bi++], c});
  }
  {
    // SMT analogue: 2× oversubscription of the available contexts.
    PlanConfig c = optimized_config(2 * std::max(1, bench_threads()));
    variants.push_back({"+SMT (2x threads)", c});
  }

  Times base{};
  std::printf("%-20s %12s %12s %12s %12s\n", "variant", "conv (s)", "NUFFT (s)", "conv x",
              "NUFFT x");
  bool first = true;
  for (const auto& v : variants) {
    Times sum{};
    for (const auto& set : sets) {
      const cvecf raw = random_values(set.count(), 2);
      const Times t = run_pair(g, set, v.cfg, img, raw);
      sum.conv += t.conv / 3;
      sum.nufft += t.nufft / 3;
    }
    if (first) {
      base = sum;
      first = false;
    }
    std::printf("%-20s %12.4f %12.4f %11.2fx %11.2fx\n", v.name, sum.conv, sum.nufft,
                base.conv / sum.conv, base.nufft / sum.nufft);
  }
  std::printf("(paper, 40 cores: Reorder 1.07x, SIMD 3.4x, 40C ~129x conv, SMT +7%%)\n");
  return 0;
}
