// Fig. 9: incremental optimization study — Base → +Reorder → +SIMD →
// +parallel (thread sweep) → +SMT-style oversubscription, reporting
// convolution and whole-NUFFT speedups over the scalar baseline,
// averaged over the three dataset types.
//
// Second section: streaming frames/sec trajectory mode. A plan tracks a
// drifting trajectory across frames (1%/5%/20% of samples jittered by a
// sub-cell amount per frame, the dynamic-MRI regime); each jitter level
// compares the warm delta re-bin (Nufft::update_samples) against the cold
// full-plan rebuild a non-streaming pipeline pays per frame, and the
// warm/cold frames-per-second columns land in BENCH_fig9_frames.json.
#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"

using namespace nufft;
using namespace nufft::bench;

namespace {

struct Times {
  double conv = 0, nufft = 0;
};

Times run_pair(const GridDesc& g, const datasets::SampleSet& set, const PlanConfig& cfg,
               const cvecf& img, const cvecf& raw) {
  Nufft plan(g, set, cfg);
  cvecf out_raw(raw.size());
  cvecf out_img(img.size());
  time_call([&] {
    plan.forward(img.data(), out_raw.data());
    plan.adjoint(raw.data(), out_img.data());
  });
  const auto& f = plan.last_forward_stats();
  const auto& a = plan.last_adjoint_stats();
  return Times{f.conv_s + a.conv_s, f.total_s + a.total_s};
}

// One frame of trajectory drift: perturb `fraction` of the samples by a
// sub-cell amount (|delta| < 0.5 grid cells), clamped to the valid range.
datasets::SampleSet jitter_frame(const datasets::SampleSet& base, double fraction, Rng& rng) {
  datasets::SampleSet out = base;
  const auto count = static_cast<std::size_t>(base.count());
  const auto mf = static_cast<float>(base.m);
  for (std::size_t i = 0; i < count; ++i) {
    if (rng.uniform(0.0, 1.0) >= fraction) continue;
    for (int d = 0; d < base.dim; ++d) {
      auto& x = out.coords[static_cast<std::size_t>(d)][i];
      x = std::clamp(x + static_cast<float>(rng.uniform(-0.5, 0.5)), 0.0f,
                     std::nextafter(mf, 0.0f));
    }
  }
  return out;
}

void run_frames_mode(const GridDesc& g, const datasets::SampleSet& base) {
  std::printf("\nStreaming frames mode — warm update_samples vs cold rebuild per frame\n");
  // Fixed partition layout: a drifting trajectory shifts per-cell histograms
  // slightly every frame, and the variable-width boundary walk would then
  // legitimately fall back to a cold rebuild whenever a boundary moves. A
  // streaming deployment pins the layout for exactly this reason.
  PlanConfig cfg = optimized_config(bench_threads());
  cfg.variable_partitions = false;

  const int frames = static_cast<int>(env_int("NUFFT_BENCH_FRAMES", 8));
  BenchReport report("fig9_frames");
  std::printf("%-10s %12s %12s %12s %12s %10s\n", "jitter", "warm f/s", "cold f/s",
              "warm (s)", "cold (s)", "fallbacks");

  for (const double frac : {0.01, 0.05, 0.20}) {
    // The same deterministic frame sequence feeds both columns.
    Rng rng(static_cast<std::uint64_t>(frac * 1000) + 17);
    std::vector<datasets::SampleSet> frames_sets;
    frames_sets.reserve(static_cast<std::size_t>(frames));
    const datasets::SampleSet* prev = &base;
    for (int i = 0; i < frames; ++i) {
      frames_sets.push_back(jitter_frame(*prev, frac, rng));
      prev = &frames_sets.back();
    }

    Nufft plan(g, base, cfg);
    double warm_s = 0;
    int fallbacks = 0;
    for (const auto& set : frames_sets) {
      Timer t;
      const UpdatePath path = plan.update_samples(set);
      warm_s += t.seconds();
      if (path == UpdatePath::kRebuild) ++fallbacks;
    }

    double cold_s = 0;
    for (const auto& set : frames_sets) {
      Timer t;
      Nufft cold(g, set, cfg);
      cold_s += t.seconds();
    }

    const double warm_fps = frames / warm_s;
    const double cold_fps = frames / cold_s;
    char label[32];
    std::snprintf(label, sizeof(label), "jitter_%g%%", frac * 100);
    report.add(label, {{"jitter_fraction", frac},
                       {"frames", static_cast<double>(frames)},
                       {"warm_fps", warm_fps},
                       {"cold_fps", cold_fps},
                       {"speedup", warm_fps / cold_fps},
                       {"warm_s", warm_s},
                       {"cold_s", cold_s},
                       {"fallbacks", static_cast<double>(fallbacks)}});
    std::printf("%-10.0f%% %11.1f %12.1f %12.4f %12.4f %10d\n", frac * 100, warm_fps,
                cold_fps, warm_s, cold_s, fallbacks);
  }
  const auto path = report.write();
  if (!path.empty()) std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main() {
  print_header("Fig. 9 — speedup with successive optimizations");
  const auto row = default_row_scaled();
  const GridDesc g = make_grid(3, row.n, 2.0);
  const cvecf img = random_values(g.image_elems(), 1);
  const auto sets = all_sets(row);

  struct Variant {
    const char* name;
    PlanConfig cfg;
  };
  std::vector<Variant> variants;
  variants.push_back({"Base (scalar seq)", baseline_config()});
  {
    PlanConfig c = baseline_config();
    c.reorder = true;
    c.variable_partitions = true;
    variants.push_back({"+Reorder", c});
  }
  {
    PlanConfig c = baseline_config();
    c.reorder = true;
    c.variable_partitions = true;
    c.use_simd = true;
    variants.push_back({"+SIMD", c});
  }
  for (const int t : thread_sweep()) {
    if (t == 1) continue;
    PlanConfig c = optimized_config(t);
    static char buf[8][32];
    static int bi = 0;
    std::snprintf(buf[bi], sizeof(buf[bi]), "+parallel %dT", t);
    variants.push_back({buf[bi++], c});
  }
  {
    // SMT analogue: 2× oversubscription of the available contexts.
    PlanConfig c = optimized_config(2 * std::max(1, bench_threads()));
    variants.push_back({"+SMT (2x threads)", c});
  }

  Times base{};
  std::printf("%-20s %12s %12s %12s %12s\n", "variant", "conv (s)", "NUFFT (s)", "conv x",
              "NUFFT x");
  bool first = true;
  for (const auto& v : variants) {
    Times sum{};
    for (const auto& set : sets) {
      const cvecf raw = random_values(set.count(), 2);
      const Times t = run_pair(g, set, v.cfg, img, raw);
      sum.conv += t.conv / 3;
      sum.nufft += t.nufft / 3;
    }
    if (first) {
      base = sum;
      first = false;
    }
    std::printf("%-20s %12.4f %12.4f %11.2fx %11.2fx\n", v.name, sum.conv, sum.nufft,
                base.conv / sum.conv, base.nufft / sum.nufft);
  }
  std::printf("(paper, 40 cores: Reorder 1.07x, SIMD 3.4x, 40C ~129x conv, SMT +7%%)\n");

  run_frames_mode(g, sets[0]);
  return 0;
}
