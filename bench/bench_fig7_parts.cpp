// Fig. 7: relative cost of Part 1 (kernel coefficients + coordinates via
// LUT) versus Part 2 (the separable interpolation) of the convolution, for
// W = 2, 4, 6, 8. The paper's point: Part 2 dominates, increasingly so for
// larger W — which motivates the hybrid SIMD split (scalar/across-point
// Part 1, within-point SIMD Part 2).
#include <cstdio>

#include "common.hpp"
#include "core/convolution.hpp"
#include "kernels/lut.hpp"

using namespace nufft;
using namespace nufft::bench;

int main() {
  print_header("Fig. 7 — Part 1 vs Part 2 share of forward convolution");
  const auto row = default_row_scaled();
  const auto set = make_set(datasets::TrajectoryType::kRandom, row);
  const GridDesc g = make_grid(3, row.n, 2.0);
  const auto st = g.grid_strides();
  const cvecf grid = random_values(g.grid_elems(), 3);

  std::printf("%-5s %12s %12s %10s %10s\n", "W", "part1 (s)", "part1+2 (s)", "part1 %",
              "part2 %");
  for (const double W : {2.0, 4.0, 6.0, 8.0}) {
    const auto kernel = kernels::make_kernel(kernels::KernelType::kKaiserBessel, W, 2.0);
    const kernels::KernelLut lut(*kernel, 1024);

    volatile float sink = 0.0f;
    // Part 1 only.
    const double t1 = time_call([&] {
      WindowBuf wb;
      float acc = 0.0f;
      for (index_t p = 0; p < set.count(); ++p) {
        float coord[3] = {set.coords[0][static_cast<std::size_t>(p)],
                          set.coords[1][static_cast<std::size_t>(p)],
                          set.coords[2][static_cast<std::size_t>(p)]};
        compute_window(g, lut, coord, 3, true, wb);
        acc += wb.win[0][0];
      }
      sink = sink + acc;
    });
    // Part 1 + Part 2 (forward gather).
    const double t12 = time_call([&] {
      WindowBuf wb;
      cfloat acc(0, 0);
      for (index_t p = 0; p < set.count(); ++p) {
        float coord[3] = {set.coords[0][static_cast<std::size_t>(p)],
                          set.coords[1][static_cast<std::size_t>(p)],
                          set.coords[2][static_cast<std::size_t>(p)]};
        compute_window(g, lut, coord, 3, true, wb);
        acc += fwd_gather_simd<3>(grid.data(), st, wb);
      }
      sink = sink + acc.real();
    });
    std::printf("%-5.0f %12.4f %12.4f %9.1f%% %9.1f%%\n", W, t1, t12, 100 * t1 / t12,
                100 * (t12 - t1) / t12);
  }
  return 0;
}
