// Ablation (paper §I/§VII: "expected to scale to wider SIMD on future
// many-core architectures"): scalar vs 128-bit SSE vs 256-bit AVX2+FMA
// convolution, single thread, both operators, W ∈ {2, 4, 8}.
#include <cstdio>

#include "common.hpp"
#include "core/convolution_avx2.hpp"

using namespace nufft;
using namespace nufft::bench;

int main() {
  print_header("Ablation — SIMD width: scalar vs SSE vs AVX2 (1 thread)");
  if (!avx2_available()) {
    std::printf("CPU lacks AVX2+FMA; reporting scalar and SSE only.\n");
  }
  const auto row = default_row_scaled();
  const GridDesc g = make_grid(3, row.n, 2.0);
  const auto set = make_set(datasets::TrajectoryType::kRadial, row);
  const cvecf raw = random_values(set.count(), 8);
  cvecf out(raw.size());

  std::printf("%-4s %-4s %12s %12s %12s %12s %12s\n", "W", "op", "scalar (s)", "SSE (s)",
              "AVX2 (s)", "SSE x", "AVX2 x");
  for (const double W : {2.0, 4.0, 8.0}) {
    for (const bool adjoint : {true, false}) {
      auto run = [&](PlanConfig cfg) {
        Nufft plan(g, set, cfg);
        return adjoint ? time_call([&] { plan.spread(raw.data()); })
                       : time_call([&] { plan.interp(out.data()); });
      };
      PlanConfig scalar_cfg = optimized_config(1, W);
      scalar_cfg.use_simd = false;
      PlanConfig sse_cfg = optimized_config(1, W);
      sse_cfg.isa = SimdIsa::kSse;
      const double ts = run(scalar_cfg);
      const double tsse = run(sse_cfg);
      double tavx = 0.0;
      if (avx2_available()) {
        PlanConfig avx_cfg = optimized_config(1, W);
        avx_cfg.isa = SimdIsa::kAvx2;
        tavx = run(avx_cfg);
      }
      std::printf("%-4.0f %-4s %12.4f %12.4f %12.4f %11.2fx %11.2fx\n", W,
                  adjoint ? "ADJ" : "FWD", ts, tsse, tavx, ts / tsse,
                  tavx > 0 ? ts / tavx : 0.0);
    }
  }
  return 0;
}
