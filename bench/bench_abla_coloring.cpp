// Ablation (beyond the paper's figures, supporting its §III-B2 argument):
// the barrier-free Gray-code TDG versus 2^d-color barrier scheduling of the
// same task set (the Zhang-et-al.-style alternative the paper contrasts).
// The TDG's advantage grows when color populations are imbalanced — exactly
// the radial case.
#include <cstdio>

#include "common.hpp"

using namespace nufft;
using namespace nufft::bench;

int main() {
  print_header("Ablation — Gray-code TDG vs color-barrier scheduling (ADJ)");
  const auto sweep = thread_sweep();

  std::printf("%-8s %-14s", "dataset", "schedule");
  for (const int t : sweep) std::printf("   %3dT (s)", t);
  std::printf("\n");

  const auto row = default_row_scaled();
  const GridDesc g = make_grid(3, row.n, 2.0);
  for (const auto& set : all_sets(row)) {
    const cvecf raw = random_values(set.count(), 3);
    for (const bool colored : {false, true}) {
      std::printf("%-8s %-14s", datasets::trajectory_name(set.type),
                  colored ? "color-barrier" : "TDG");
      for (const int threads : sweep) {
        PlanConfig cfg = optimized_config(threads);
        cfg.color_barrier_schedule = colored;
        if (colored) cfg.selective_privatization = false;
        Nufft plan(g, set, cfg);
        const double t = time_call([&] { plan.spread(raw.data()); });
        std::printf("  %9.4f", t);
      }
      std::printf("\n");
    }
  }
  return 0;
}
