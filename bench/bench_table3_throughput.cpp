// Table III: adjoint and forward convolution throughput in million samples
// convolved per second, for each dataset type × W ∈ {2, 4, 6, 8}.
// Paper shape: FWD slightly above ADJ; throughput falls ~O(W³); for small W
// the regular spiral dataset outruns the cache-unfriendly radial one.
#include <cstdio>

#include "common.hpp"

using namespace nufft;
using namespace nufft::bench;

int main() {
  print_header("Table III — convolution throughput (Msamples/s)");
  const auto row = default_row_scaled();
  const GridDesc g = make_grid(3, row.n, 2.0);
  const auto sets = all_sets(row);

  std::printf("%-8s", "");
  for (const double W : {2.0, 4.0, 6.0, 8.0}) {
    std::printf("   W=%-2.0f ADJ   W=%-2.0f FWD", W, W);
  }
  std::printf("\n");

  for (const auto& set : sets) {
    std::printf("%-8s", datasets::trajectory_name(set.type));
    const cvecf raw = random_values(set.count(), 7);
    cvecf out(raw.size());
    for (const double W : {2.0, 4.0, 6.0, 8.0}) {
      Nufft plan(g, set, optimized_config(bench_threads(), W));
      const double t_adj = time_call([&] { plan.spread(raw.data()); });
      const double t_fwd = time_call([&] { plan.interp(out.data()); });
      const double msps_adj = static_cast<double>(set.count()) / t_adj / 1e6;
      const double msps_fwd = static_cast<double>(set.count()) / t_fwd / 1e6;
      std::printf("  %10.1f  %10.1f", msps_adj, msps_fwd);
    }
    std::printf("\n");
  }
  std::printf("(paper, 40 cores, radial: 145.1/190.7 at W=2 down to 6.6/10.2 at W=8)\n");
  return 0;
}
