// Fig. 11: fixed- vs variable-width partitioning on radial datasets
// (the paper's hardest case: dense center, sparse edges) for three image
// sizes, adjoint convolution, across the thread sweep. Variable width must
// keep far fewer, better-filled tasks and scale accordingly.
#include <cstdio>

#include "common.hpp"

using namespace nufft;
using namespace nufft::bench;

int main() {
  print_header("Fig. 11 — fixed vs variable width partitions (radial, ADJ)");
  const auto sweep = thread_sweep();

  std::printf("%-6s %-10s %-7s", "N", "layout", "tasks");
  for (const int t : sweep) std::printf("   %3dT (s)  x", t);
  std::printf("\n");

  for (const int row_id : {1, 2, 5}) {
    const auto row = row_at_scale(row_id);
    const GridDesc g = make_grid(3, row.n, 2.0);
    const auto set = make_set(datasets::TrajectoryType::kRadial, row);
    const cvecf raw = random_values(set.count(), 5);

    for (const bool variable : {false, true}) {
      double t1 = 0.0;
      std::string line;
      int tasks = 0;
      std::printf("%-6lld %-10s", static_cast<long long>(row.n),
                  variable ? "variable" : "fixed");
      bool first_col = true;
      for (const int threads : sweep) {
        PlanConfig cfg = optimized_config(threads);
        cfg.variable_partitions = variable;
        Nufft plan(g, set, cfg);
        if (first_col) {
          tasks = plan.plan().stats.tasks;
          std::printf(" %-7d", tasks);
          first_col = false;
        }
        const double t = time_call([&] { plan.spread(raw.data()); });
        if (threads == 1) t1 = t;
        std::printf("  %9.4f %4.1f", t, t1 / t);
      }
      std::printf("\n");
    }
  }
  std::printf("(paper: fixed width stops scaling beyond 10 cores; variable reaches ~30x)\n");
  return 0;
}
