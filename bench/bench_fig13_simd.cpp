// Fig. 13: single-core SIMD (SSE) speedup over scalar code for adjoint and
// forward convolution, radial and random datasets, W ∈ {2, 4, 8}.
// Paper shape: speedup grows with W (3.2x at W=4 → 3.8x at W=8 for FWD);
// W=2 is more modest because the inner loop is short.
#include <cstdio>

#include "common.hpp"

using namespace nufft;
using namespace nufft::bench;

int main() {
  print_header("Fig. 13 — SIMD speedup over scalar (1 thread)");
  const auto row = default_row_scaled();
  const GridDesc g = make_grid(3, row.n, 2.0);

  std::printf("%-8s %-4s %12s %12s %10s\n", "dataset", "W", "scalar (s)", "SSE (s)", "speedup");
  for (const auto type : {datasets::TrajectoryType::kRadial, datasets::TrajectoryType::kRandom}) {
    const auto set = make_set(type, row);
    const cvecf raw = random_values(set.count(), 8);
    cvecf out(raw.size());
    for (const double W : {2.0, 4.0, 8.0}) {
      for (const bool adjoint : {true, false}) {
        PlanConfig scalar_cfg = optimized_config(1, W);
        scalar_cfg.use_simd = false;
        PlanConfig simd_cfg = optimized_config(1, W);

        Nufft splan(g, set, scalar_cfg);
        Nufft vplan(g, set, simd_cfg);
        const double ts = adjoint ? time_call([&] { splan.spread(raw.data()); })
                                  : time_call([&] { splan.interp(out.data()); });
        const double tv = adjoint ? time_call([&] { vplan.spread(raw.data()); })
                                  : time_call([&] { vplan.interp(out.data()); });
        std::printf("%-8s W=%-2.0f %-4s %8.4f %12.4f %9.2fx\n",
                    datasets::trajectory_name(type), W, adjoint ? "ADJ" : "FWD", ts, tv,
                    ts / tv);
      }
    }
  }
  std::printf("(paper: ADJ 3.2x@W=2 .. 3.8x@W=8; FWD 2.8x@W=2 .. 3.8x@W=8)\n");
  return 0;
}
