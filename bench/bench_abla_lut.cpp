// Ablation (paper §I cites Dale et al.'s LUT as prior art it builds on):
// kernel-coefficient computation via the LUT versus direct Kaiser-Bessel
// (Bessel-series) evaluation — the cost Part 1 would pay without a table.
#include <cstdio>

#include "common.hpp"
#include "core/convolution.hpp"
#include "kernels/kaiser_bessel.hpp"
#include "kernels/lut.hpp"

using namespace nufft;
using namespace nufft::bench;

int main() {
  print_header("Ablation — LUT vs direct kernel evaluation in Part 1");
  const auto row = default_row_scaled();
  const auto set = make_set(datasets::TrajectoryType::kRandom, row);
  const GridDesc g = make_grid(3, row.n, 2.0);

  std::printf("%-5s %14s %14s %10s\n", "W", "LUT (s)", "direct (s)", "LUT gain");
  for (const double W : {2.0, 4.0, 8.0}) {
    const auto kb = kernels::KaiserBessel::with_beatty_beta(W, 2.0);
    const kernels::KernelLut lut(kb, 1024);

    volatile float sink = 0.0f;
    const double t_lut = time_call([&] {
      WindowBuf wb;
      float acc = 0.0f;
      for (index_t p = 0; p < set.count(); ++p) {
        float coord[3] = {set.coords[0][static_cast<std::size_t>(p)],
                          set.coords[1][static_cast<std::size_t>(p)],
                          set.coords[2][static_cast<std::size_t>(p)]};
        compute_window(g, lut, coord, 3, false, wb);
        acc += wb.win[0][0];
      }
      sink = sink + acc;
    });
    // Direct: same neighbour enumeration, Bessel-series kernel per weight.
    const double t_direct = time_call([&] {
      double acc = 0.0;
      for (index_t p = 0; p < set.count(); ++p) {
        for (int d = 0; d < 3; ++d) {
          const float k = set.coords[static_cast<std::size_t>(d)][static_cast<std::size_t>(p)];
          const auto x1 = static_cast<index_t>(std::ceil(k - W));
          const auto x2 = static_cast<index_t>(std::floor(k + W));
          for (index_t u = x1; u <= x2; ++u) {
            acc += kb.value(static_cast<double>(u) - static_cast<double>(k));
          }
        }
      }
      sink = sink + static_cast<float>(acc);
    });
    std::printf("%-5.0f %14.4f %14.4f %9.1fx\n", W, t_lut, t_direct, t_direct / t_lut);
  }
  return 0;
}
