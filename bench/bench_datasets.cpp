// Table I: dataset parameter matrix. Regenerates every row × trajectory
// type, reporting the realized sample counts and generation time.
#include <cstdio>

#include "common.hpp"
#include "common/timer.hpp"

using namespace nufft;
using namespace nufft::bench;

int main() {
  print_header("Table I — dataset parameters");
  std::printf("%-4s %-6s %-6s %-8s %-6s %-8s %-12s %-10s\n", "row", "N", "K", "S", "SR",
              "type", "samples", "gen (s)");
  for (const auto& paper_row : datasets::table1()) {
    const auto row = datasets::scaled(paper_row, shrink());
    for (const auto type : {datasets::TrajectoryType::kRadial, datasets::TrajectoryType::kRandom,
                            datasets::TrajectoryType::kSpiral}) {
      Timer t;
      const auto set = make_set(type, row);
      const double gen = t.seconds();
      std::printf("%-4d %-6lld %-6lld %-8lld %-6.2f %-8s %-12lld %-10.4f\n", paper_row.id,
                  static_cast<long long>(row.n), static_cast<long long>(row.k),
                  static_cast<long long>(row.s), paper_row.sr, datasets::trajectory_name(type),
                  static_cast<long long>(set.count()), gen);
    }
  }
  return 0;
}
