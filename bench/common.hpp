// Shared infrastructure for the table/figure reproduction benches.
//
// Every bench binary runs stand-alone with container-scale defaults and
// honours:
//   NUFFT_PAPER=1       full paper-scale problem sizes (Table I as printed)
//   NUFFT_THREADS=n     max software thread count for parallel variants
//   NUFFT_BENCH_REPS=n  repetitions per measurement (min over reps reported)
//   NUFFT_BENCH_JSON=0  suppress the BENCH_<name>.json result file
//   NUFFT_BENCH_DIR=p   directory for BENCH_<name>.json (default: cwd)
//   NUFFT_METRICS=1     embed a metrics snapshot in the JSON report
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/env.hpp"
#include "common/types.hpp"
#include "core/nufft.hpp"
#include "datasets/presets.hpp"
#include "datasets/trajectory.hpp"

namespace nufft::bench {

/// Shrink factor applied to Table I rows: 1 at paper scale, 4 by default
/// (N=256 → 64 etc., sampling rate preserved).
index_t shrink();

/// A Table I row at the current scale.
datasets::Table1Row row_at_scale(int table1_id);

/// The paper's default dataset row (N=256, SR=0.75) at the current scale.
datasets::Table1Row default_row_scaled();

/// Generate a trajectory for a (scaled) row.
datasets::SampleSet make_set(datasets::TrajectoryType type, const datasets::Table1Row& row,
                             int dim = 3);

/// All three dataset types for one row.
std::vector<datasets::SampleSet> all_sets(const datasets::Table1Row& row, int dim = 3);

/// Minimum wall-clock seconds of fn() over bench_reps(default_reps) runs.
double time_call(const std::function<void()>& fn, int default_reps = 3);

/// The paper's "most optimized" configuration at `threads`.
PlanConfig optimized_config(int threads, double W = 4.0);

/// The scalar sequential baseline configuration (Fig. 3 / Table II "Base").
PlanConfig baseline_config(double W = 4.0);

/// Thread counts for scaling sweeps: {1, 2, ..., bench_threads()} capped.
std::vector<int> thread_sweep();

/// Print the standard bench header (scale, threads, reps).
void print_header(const std::string& title);

/// Random complex vectors for operator inputs.
cvecf random_values(index_t n, std::uint64_t seed = 4242);

/// Machine-readable bench results. Each `add` appends one labelled row of
/// numeric fields (insertion order preserved); `write` emits
/// BENCH_<name>.json into NUFFT_BENCH_DIR (default cwd) with the run's
/// scale/thread context, and — when NUFFT_METRICS is on — a full
/// obs::MetricsRegistry snapshot under "metrics". Set NUFFT_BENCH_JSON=0 to
/// suppress the file entirely.
class BenchReport {
 public:
  explicit BenchReport(std::string name);

  void add(std::string label, std::vector<std::pair<std::string, double>> fields);

  /// Returns the path written, or empty when suppressed / on I/O failure.
  std::string write() const;

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::vector<std::pair<std::string, double>>>> rows_;
};

}  // namespace nufft::bench
