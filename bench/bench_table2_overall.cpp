// Table II: scalar sequential baseline vs most-optimized implementation —
// convolution (FWD+ADJ), 3D FFT, and whole-NUFFT times with speedups,
// averaged over the three dataset types (W=4, default row).
#include <cstdio>

#include "common.hpp"

using namespace nufft;
using namespace nufft::bench;

namespace {

struct Times {
  double conv = 0, fft = 0, nufft = 0;
};

Times run_pair(Nufft& plan, const cvecf& img, const cvecf& raw) {
  cvecf out_raw(raw.size());
  cvecf out_img(img.size());
  time_call([&] {
    plan.forward(img.data(), out_raw.data());
    plan.adjoint(raw.data(), out_img.data());
  });
  const auto& f = plan.last_forward_stats();
  const auto& a = plan.last_adjoint_stats();
  return Times{f.conv_s + a.conv_s, f.fft_s + a.fft_s, f.total_s + a.total_s};
}

}  // namespace

int main() {
  print_header("Table II — baseline vs most-optimized (avg over datasets, W=4)");
  const auto row = default_row_scaled();
  const GridDesc g = make_grid(3, row.n, 2.0);
  const cvecf img = random_values(g.image_elems(), 1);

  Times base{}, opt{};
  for (const auto& set : all_sets(row)) {
    const cvecf raw = random_values(set.count(), 2);
    {
      Nufft plan(g, set, baseline_config());
      const Times t = run_pair(plan, img, raw);
      base.conv += t.conv / 3;
      base.fft += t.fft / 3;
      base.nufft += t.nufft / 3;
    }
    {
      Nufft plan(g, set, optimized_config(bench_threads()));
      const Times t = run_pair(plan, img, raw);
      opt.conv += t.conv / 3;
      opt.fft += t.fft / 3;
      opt.nufft += t.nufft / 3;
    }
  }

  std::printf("%-22s %12s %12s %12s\n", "", "Convolution", "3D FFT", "NUFFT");
  std::printf("%-22s %12.4f %12.4f %12.4f\n", "Baseline (sec)", base.conv, base.fft, base.nufft);
  std::printf("%-22s %12.4f %12.4f %12.4f\n", "Most Optimized (sec)", opt.conv, opt.fft,
              opt.nufft);
  std::printf("%-22s %11.1fx %11.1fx %11.1fx\n", "Speedup", base.conv / opt.conv,
              base.fft / opt.fft, base.nufft / opt.nufft);
  std::printf("(paper, 40 cores:       147.5x        28.3x        92.8x)\n");
  return 0;
}
