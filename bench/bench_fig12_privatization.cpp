// Fig. 12: scheduling ablation on radial datasets (adjoint convolution):
//   A — no selective privatization, FIFO queue
//   B — selective privatization,  FIFO queue
//   C — selective privatization,  priority queue (the paper's algorithm)
// for three image sizes across the thread sweep.
#include <cstdio>

#include "common.hpp"

using namespace nufft;
using namespace nufft::bench;

int main() {
  print_header("Fig. 12 — selective privatization and priority queue (radial, ADJ)");
  const auto sweep = thread_sweep();

  std::printf("%-6s %-26s %-6s", "N", "variant", "priv");
  for (const int t : sweep) std::printf("   %3dT (s)  x", t);
  std::printf("\n");

  struct Variant {
    const char* name;
    bool privatize;
    bool pq;
  };
  const Variant variants[] = {
      {"A: no priv, FIFO", false, false},
      {"B: selective priv, FIFO", true, false},
      {"C: selective priv, PQ", true, true},
  };

  for (const int row_id : {1, 2, 5}) {
    const auto row = row_at_scale(row_id);
    const GridDesc g = make_grid(3, row.n, 2.0);
    const auto set = make_set(datasets::TrajectoryType::kRadial, row);
    const cvecf raw = random_values(set.count(), 6);

    for (const auto& v : variants) {
      std::printf("%-6lld %-26s", static_cast<long long>(row.n), v.name);
      double t1 = 0.0;
      bool first_col = true;
      for (const int threads : sweep) {
        PlanConfig cfg = optimized_config(threads);
        cfg.selective_privatization = v.privatize;
        cfg.priority_queue = v.pq;
        Nufft plan(g, set, cfg);
        if (first_col) {
          // Privatization marks depend on the thread count; report at max T.
          PlanConfig probe = cfg;
          probe.threads = sweep.back();
          Nufft pplan(g, set, probe);
          std::printf(" %-6d", pplan.plan().stats.privatized_tasks);
          first_col = false;
        }
        const double t = time_call([&] { plan.spread(raw.data()); });
        if (threads == 1) t1 = t;
        std::printf("  %9.4f %4.1f", t, t1 / t);
      }
      std::printf("\n");
    }
  }
  std::printf("(paper: privatization +73%%..3.5x on N=128@40C; PQ +30%% at 40C)\n");
  return 0;
}
