// Ablation (paper §III-D reports a 7% average gain and up to 25% miss-
// latency reduction on radial): sample reordering off / on, across tile
// sizes, single-thread adjoint convolution per dataset.
#include <cstdio>

#include "common.hpp"

using namespace nufft;
using namespace nufft::bench;

int main() {
  print_header("Ablation — sample reorder and tile size (1 thread, ADJ)");
  const auto row = default_row_scaled();
  const GridDesc g = make_grid(3, row.n, 2.0);

  std::printf("%-8s %12s", "dataset", "no reorder");
  for (const index_t tile : {2, 4, 8, 16}) std::printf("   tile=%-2lld  ", static_cast<long long>(tile));
  std::printf("\n");

  for (const auto& set : all_sets(row)) {
    const cvecf raw = random_values(set.count(), 3);
    std::printf("%-8s", datasets::trajectory_name(set.type));
    {
      PlanConfig cfg = optimized_config(1);
      cfg.reorder = false;
      Nufft plan(g, set, cfg);
      std::printf(" %11.4fs", time_call([&] { plan.spread(raw.data()); }));
    }
    for (const index_t tile : {2, 4, 8, 16}) {
      PlanConfig cfg = optimized_config(1);
      cfg.reorder_tile = tile;
      Nufft plan(g, set, cfg);
      std::printf("  %9.4fs", time_call([&] { plan.spread(raw.data()); }));
    }
    std::printf("\n");
  }
  return 0;
}
