// Fig. 14: one-time preprocessing cost versus one NUFFT iteration (one
// forward + one adjoint call) across the thread sweep. The paper concedes
// preprocessing is "mostly serial", so its *ratio* to one iteration grows
// with cores (0.16x at 1 core → 1.67x at 40). Our pipeline instead runs
// every stage — histograms, binning, radix reorder, gather — on the plan's
// pool (DESIGN.md §11), so this bench reports the preprocessing *speedup*
// over the 1-thread baseline alongside the paper's ratio, on the Table I
// style random-Gaussian preset (256³ at paper scale). Results are written to
// BENCH_fig14_preproc.json with the per-stage breakdown.
#include <algorithm>
#include <cstdio>
#include <string>

#include "common.hpp"
#include "common/timer.hpp"

using namespace nufft;
using namespace nufft::bench;

int main() {
  print_header("Fig. 14 — parallel preprocessing vs one FWD+ADJ iteration");
  const auto row = default_row_scaled();
  const GridDesc g = make_grid(3, row.n, 2.0);
  const auto set = make_set(datasets::TrajectoryType::kRandom, row);
  const cvecf img = random_values(g.image_elems(), 1);
  const cvecf raw = random_values(set.count(), 2);

  BenchReport report("fig14_preproc");
  double serial_preproc = 0.0;
  std::printf("%-8s %12s %9s %14s %8s\n", "threads", "preproc (s)", "speedup", "1 iter (s)",
              "ratio");
  for (const int threads : thread_sweep()) {
    const PlanConfig cfg = optimized_config(threads);
    ThreadPool pool(threads);
    double preproc = 1e300;
    PreprocessStats stats;
    const int reps = std::max(1, bench_reps(3));
    for (int r = 0; r < reps; ++r) {
      Timer t;
      const Preprocessed pp = preprocess(g, set, cfg, pool);
      const double s = t.seconds();
      if (s < preproc) {
        preproc = s;
        stats = pp.stats;
      }
    }
    if (threads == 1) serial_preproc = preproc;
    const double speedup = serial_preproc > 0.0 ? serial_preproc / preproc : 0.0;

    Nufft plan(g, set, cfg);
    cvecf out_raw(raw.size());
    cvecf out_img(img.size());
    const double iter = time_call([&] {
      plan.forward(img.data(), out_raw.data());
      plan.adjoint(raw.data(), out_img.data());
    });
    std::printf("%-8d %12.4f %8.2fx %14.4f %7.2fx\n", threads, preproc, speedup, iter,
                preproc / iter);
    report.add("t" + std::to_string(threads),
               {{"threads", static_cast<double>(threads)},
                {"preproc_s", preproc},
                {"speedup_vs_1t", speedup},
                {"partition_s", stats.partition_s},
                {"bin_s", stats.bin_s},
                {"reorder_s", stats.reorder_s},
                {"gather_s", stats.gather_s},
                {"graph_s", stats.graph_s},
                {"iter_s", iter},
                {"ratio", preproc / iter}});
  }
  std::printf("(paper: ratio 0.16x at 1 core -> 1.67x at 40 cores, preprocessing serial;\n");
  std::printf(" this repo: the whole pipeline runs on the plan's pool — see speedup column)\n");
  report.write();
  return 0;
}
