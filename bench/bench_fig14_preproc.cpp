// Fig. 14: one-time preprocessing cost versus one NUFFT iteration (one
// forward + one adjoint call) across the thread sweep. The paper's point:
// preprocessing is mostly serial, so its *ratio* to one iteration grows
// with cores (0.16x at 1 core → 1.67x at 40), but it amortizes over the
// 10s–100s of iterations of a real solver.
#include <cstdio>

#include "common.hpp"
#include "common/timer.hpp"

using namespace nufft;
using namespace nufft::bench;

int main() {
  print_header("Fig. 14 — preprocessing overhead vs one FWD+ADJ iteration");
  const auto row = default_row_scaled();
  const GridDesc g = make_grid(3, row.n, 2.0);
  const auto set = make_set(datasets::TrajectoryType::kRadial, row);
  const cvecf img = random_values(g.image_elems(), 1);
  const cvecf raw = random_values(set.count(), 2);

  std::printf("%-8s %14s %16s %10s\n", "threads", "preproc (s)", "1 iteration (s)", "ratio");
  for (const int threads : thread_sweep()) {
    const PlanConfig cfg = optimized_config(threads);
    double preproc = 1e300;
    const int reps = 3;
    for (int r = 0; r < reps; ++r) {
      Timer t;
      Nufft plan(g, set, cfg);
      preproc = std::min(preproc, plan.plan().stats.total_s);
    }
    Nufft plan(g, set, cfg);
    cvecf out_raw(raw.size());
    cvecf out_img(img.size());
    const double iter = time_call([&] {
      plan.forward(img.data(), out_raw.data());
      plan.adjoint(raw.data(), out_img.data());
    });
    std::printf("%-8d %14.4f %16.4f %9.2fx\n", threads, preproc, iter, preproc / iter);
  }
  std::printf("(paper: ratio 0.16x at 1 core -> 1.67x at 40 cores)\n");
  return 0;
}
