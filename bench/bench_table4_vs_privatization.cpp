// Table IV: our optimized NUFFT vs the Shu-et-al.-style comparator
// (full-grid thread privatization for the adjoint, plain loop-parallel
// forward, scalar convolution), on the same machine, at the paper's
// problem: N=240, K=512, S=8047. The paper ran its own code at W=4 against
// the comparator's W=2.5; both columns are reported here the same way.
#include <cstdio>

#include "baselines/reference_nufft.hpp"
#include "common.hpp"

using namespace nufft;
using namespace nufft::bench;

int main() {
  print_header("Table IV — vs full-privatization (Shu-style) NUFFT");
  const index_t sh = shrink();
  datasets::TrajectoryParams tp;
  tp.n = std::max<index_t>(8, 240 / sh);
  tp.k = std::max<index_t>(8, 512 / sh);
  // Scale S to preserve total samples / N³ (paper: 240³ · 0.3).
  tp.s = std::max<index_t>(1, (8047 * 512 / sh / sh / sh + tp.k - 1) / tp.k);
  const auto set = datasets::make_trajectory(datasets::TrajectoryType::kRadial, 3, tp);
  const GridDesc g = make_grid(3, tp.n, 2.0);
  std::printf("problem: N=%lld K=%lld S=%lld (%lld samples)\n", static_cast<long long>(tp.n),
              static_cast<long long>(tp.k), static_cast<long long>(tp.s),
              static_cast<long long>(set.count()));

  const cvecf img = random_values(g.image_elems(), 1);
  const cvecf raw = random_values(set.count(), 2);
  cvecf out_raw(raw.size());
  cvecf out_img(img.size());
  const int threads = bench_threads();

  Nufft ours(g, set, optimized_config(threads, 4.0));
  baselines::ReferenceNufft ref(g, set, 2.5, threads);

  const double ours_fwd = time_call([&] { ours.forward(img.data(), out_raw.data()); });
  const double ours_adj = time_call([&] { ours.adjoint(raw.data(), out_img.data()); });
  const double ref_fwd = time_call([&] { ref.forward(img.data(), out_raw.data()); });
  const double ref_adj = time_call([&] { ref.adjoint(raw.data(), out_img.data()); });

  std::printf("%-20s %14s %22s\n", "", "ours (W=4)", "privatized ref (W=2.5)");
  std::printf("%-20s %14.4f %22.4f\n", "ADJ NUFFT (sec)", ours_adj, ref_adj);
  std::printf("%-20s %14.4f %22.4f\n", "FWD NUFFT (sec)", ours_fwd, ref_fwd);
  std::printf("%-20s %14.4f %22.4f\n", "Total (sec)", ours_adj + ours_fwd, ref_adj + ref_fwd);
  std::printf("%-20s %13.2fx %22s\n", "Speedup", (ref_adj + ref_fwd) / (ours_adj + ours_fwd),
              "1.00x");
  std::printf("(paper, WSM12C: ours 0.54s vs Shu et al. 2.30s = 4.26x)\n");
  return 0;
}
