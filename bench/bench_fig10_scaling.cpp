// Fig. 10: convolution scaling across thread counts for combinations of
// W ∈ {2, 8} and N ∈ {row1, row2 of Table I}, for all three datasets,
// adjoint and forward, speedup relative to the optimized single-thread run.
#include <cstdio>

#include "common.hpp"

using namespace nufft;
using namespace nufft::bench;

int main() {
  print_header("Fig. 10 — convolution scaling vs threads");
  const auto sweep = thread_sweep();

  std::printf("%-10s %-6s %-4s %-4s", "dataset", "N", "W", "op");
  for (const int t : sweep) std::printf("   %3dT (s)  x", t);
  std::printf("\n");

  for (const int row_id : {1, 2}) {
    const auto row = row_at_scale(row_id);
    const GridDesc g = make_grid(3, row.n, 2.0);
    for (const double W : {2.0, 8.0}) {
      for (const auto& set : all_sets(row)) {
        const cvecf raw = random_values(set.count(), 5);
        cvecf out(raw.size());
        for (const bool adjoint : {true, false}) {
          std::printf("%-10s %-6lld %-4.0f %-4s", datasets::trajectory_name(set.type),
                      static_cast<long long>(row.n), W, adjoint ? "ADJ" : "FWD");
          double t1 = 0.0;
          for (const int threads : sweep) {
            Nufft plan(g, set, optimized_config(threads, W));
            const double t = adjoint ? time_call([&] { plan.spread(raw.data()); })
                                     : time_call([&] { plan.interp(out.data()); });
            if (threads == 1) t1 = t;
            std::printf("  %9.4f %4.1f", t, t1 / t);
          }
          std::printf("\n");
        }
      }
    }
  }
  std::printf("(paper: 30–40x on 40 cores; W=2/N=256 ADJ 28x, W=8/N=256 ADJ 32x)\n");
  return 0;
}
