// Table V: our CPU NUFFT at the GPU comparison problem (N=344, K=344,
// S=9000 — Nam et al.'s kooshball acquisition). The GTX480 column cannot be
// regenerated without that hardware; the paper's published numbers are
// reported as fixed reference constants next to our measured CPU times.
#include <cstdio>

#include "common.hpp"

using namespace nufft;
using namespace nufft::bench;

int main() {
  print_header("Table V — vs published GPU implementation (GTX480 column = paper constants)");
  const index_t sh = shrink();
  datasets::TrajectoryParams tp;
  tp.n = std::max<index_t>(8, 344 / sh);
  tp.k = std::max<index_t>(8, 344 / sh);
  tp.s = std::max<index_t>(1, (9000 * 344 / sh / sh / sh + tp.k - 1) / tp.k);
  const auto set = datasets::make_trajectory(datasets::TrajectoryType::kRadial, 3, tp);
  const GridDesc g = make_grid(3, tp.n, 2.0);
  std::printf("problem: N=%lld K=%lld S=%lld (%lld samples)\n", static_cast<long long>(tp.n),
              static_cast<long long>(tp.k), static_cast<long long>(tp.s),
              static_cast<long long>(set.count()));

  const cvecf img = random_values(g.image_elems(), 1);
  const cvecf raw = random_values(set.count(), 2);
  cvecf out_raw(raw.size());
  cvecf out_img(img.size());

  Nufft ours(g, set, optimized_config(bench_threads(), 4.0));
  const double fwd = time_call([&] { ours.forward(img.data(), out_raw.data()); });
  const double adj = time_call([&] { ours.adjoint(raw.data(), out_img.data()); });

  std::printf("%-20s %14s %20s\n", "", "ours (CPU)", "GTX480 (paper)");
  std::printf("%-20s %14.4f %20s\n", "ADJ NUFFT (sec)", adj, "0.94 (at N=344)");
  std::printf("%-20s %14.4f %20s\n", "FWD NUFFT (sec)", fwd, "0.66 (at N=344)");
  std::printf("%-20s %14.4f %20s\n", "Total (sec)", adj + fwd, "1.60 (at N=344)");
  std::printf("(paper: WSM12C 1.79s = 0.89x of GPU; SNB16C 1.11s = 1.44x of GPU)\n");
  return 0;
}
