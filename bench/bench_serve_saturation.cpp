// Serving-layer saturation sweep: offered load vs goodput, latency, and
// shed rate through the full socket path (client → AF_UNIX → admission →
// fair queue → engine → reply).
//
//   $ ./bench_serve_saturation
//
// Closed-loop clients with think time: each of C client threads submits one
// request every 1/rate seconds (per client), so offered load sweeps from
// under-subscribed to well past engine capacity. At each load point the
// bench reports client-observed p50/p99 latency, goodput (completed
// requests/s), the shed rate, and the server-side p99 queue wait that
// drives deadline-aware admission. The overload points demonstrate the
// shed-don't-collapse contract: goodput holds near engine capacity while
// the excess arrives back as ErrorCode::kOverloaded instead of unbounded
// queueing.
//
// Env knobs (bench/common.hpp): NUFFT_BENCH_REPS, NUFFT_BENCH_DIR,
// NUFFT_BENCH_JSON, NUFFT_THREADS. Emits BENCH_serve.json.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common.hpp"
#include "common/env.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

namespace {

using namespace nufft;
using Clock = std::chrono::steady_clock;

struct LoadPointResult {
  double offered_rps = 0;
  double goodput_rps = 0;
  double shed_rate = 0;
  double p50_ms = 0;
  double p99_ms = 0;
  double server_wait_p99_ms = 0;
};

double quantile_ms(std::vector<double>& lat_ms, double q) {
  if (lat_ms.empty()) return 0;
  std::sort(lat_ms.begin(), lat_ms.end());
  const auto idx = static_cast<std::size_t>(q * static_cast<double>(lat_ms.size() - 1));
  return lat_ms[idx];
}

LoadPointResult run_load_point(const std::string& socket_path, const GridDesc& grid,
                               const datasets::SampleSet& samples, const PlanConfig& cfg,
                               const std::vector<cfloat>& image, serve::NufftServer& server,
                               int clients, double per_client_rps, double seconds) {
  std::atomic<std::uint64_t> ok{0}, shed{0}, failed{0};
  std::mutex lat_mu;
  std::vector<double> lat_ms;

  const auto t0 = Clock::now();
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      serve::NufftClient client;
      client.connect(socket_path, "bench-" + std::to_string(c % 2));  // two tenants
      const auto plan_id = client.register_plan(grid, samples, cfg);
      const auto period =
          std::chrono::duration<double>(per_client_rps > 0 ? 1.0 / per_client_rps : 0);
      auto next = Clock::now();
      while (std::chrono::duration<double>(Clock::now() - t0).count() < seconds) {
        const auto start = Clock::now();
        try {
          serve::RunOptions opts;
          opts.deadline_ms = 2000;
          client.forward(plan_id, image, 1, opts);
          ++ok;
          const double ms =
              std::chrono::duration<double, std::milli>(Clock::now() - start).count();
          std::lock_guard<std::mutex> lock(lat_mu);
          lat_ms.push_back(ms);
        } catch (const Error& e) {
          if (e.code() == ErrorCode::kOverloaded) {
            ++shed;
          } else {
            ++failed;
          }
        }
        next += std::chrono::duration_cast<Clock::duration>(period);
        std::this_thread::sleep_until(next);
      }
    });
  }
  for (auto& t : threads) t.join();
  const double elapsed = std::chrono::duration<double>(Clock::now() - t0).count();

  LoadPointResult r;
  const auto total = ok.load() + shed.load() + failed.load();
  r.offered_rps = static_cast<double>(total) / elapsed;
  r.goodput_rps = static_cast<double>(ok.load()) / elapsed;
  r.shed_rate = total > 0 ? static_cast<double>(shed.load()) / static_cast<double>(total) : 0;
  r.p50_ms = quantile_ms(lat_ms, 0.50);
  r.p99_ms = quantile_ms(lat_ms, 0.99);
  for (const auto& [name, value] : server.stat_counters()) {
    if (name == "queue_wait_p99_us") r.server_wait_p99_ms = static_cast<double>(value) / 1000.0;
  }
  return r;
}

}  // namespace

int main() {
  bench::print_header("serve saturation: goodput / latency / shed rate vs offered load");

  // Small 2D problem so a load point is request-bound, not transform-bound.
  const index_t N = 32;
  const GridDesc grid = make_grid(2, N, 2.0);
  datasets::TrajectoryParams params;
  params.n = N;
  params.k = 64;
  params.s = 32;
  const auto samples = datasets::make_trajectory(datasets::TrajectoryType::kRadial, 2, params);
  PlanConfig cfg;
  cfg.threads = 1;

  serve::ServeConfig sc;
  sc.socket_path = (std::filesystem::temp_directory_path() /
                    ("nufft_bench_serve_" + std::to_string(::getpid()) + ".sock"))
                       .string();
  sc.engine.workers = std::max(1, static_cast<int>(env_int("NUFFT_THREADS", 2)));
  // Tight backlog caps so the over-subscribed load points actually hit the
  // admission controller: per-tenant 1 in flight + 2 queued, 4 queued total.
  sc.default_tenant.max_inflight = 1;
  sc.default_tenant.max_queued = 2;
  sc.max_queued_total = 4;
  serve::NufftServer server(sc);
  server.start();

  const auto image = bench::random_values(grid.image_elems());
  const std::vector<cfloat> input(image.begin(), image.end());

  // Calibrate: unloaded service time of one request over the socket.
  {
    serve::NufftClient warm;
    warm.connect(sc.socket_path, "bench-0");
    const auto plan_id = warm.register_plan(grid, samples, cfg);
    warm.forward(plan_id, input);
  }

  const double seconds = static_cast<double>(env_int("NUFFT_SERVE_BENCH_MS", 1500)) / 1000.0;
  // Offered load sweeps by client count and per-client rate: paced points
  // stay under capacity; the unthrottled points (rate 0) over-subscribe the
  // tight backlog caps and exercise the shed path.
  struct LoadPoint {
    int clients;
    double rate;  // per-client req/s; 0 = open throttle
  };
  const std::vector<LoadPoint> points = {{2, 10}, {4, 40}, {4, 0}, {8, 0}, {16, 0}};

  bench::BenchReport report("serve");
  std::printf("%16s %12s %12s %10s %10s %10s %14s\n", "load", "offered/s", "goodput/s",
              "shed%", "p50 ms", "p99 ms", "srv p99 wait");
  for (const auto& lp : points) {
    const auto r = run_load_point(sc.socket_path, grid, samples, cfg, input, server,
                                  lp.clients, lp.rate, seconds);
    const std::string label =
        lp.rate > 0 ? std::to_string(lp.clients) + "x" +
                          std::to_string(static_cast<int>(lp.rate)) + "rps"
                    : std::to_string(lp.clients) + "x_unthrottled";
    std::printf("%16s %12.1f %12.1f %9.1f%% %10.2f %10.2f %12.2f ms\n", label.c_str(),
                r.offered_rps, r.goodput_rps, 100.0 * r.shed_rate, r.p50_ms, r.p99_ms,
                r.server_wait_p99_ms);
    report.add(label, {{"offered_rps", r.offered_rps},
                       {"goodput_rps", r.goodput_rps},
                       {"shed_rate", r.shed_rate},
                       {"latency_p50_ms", r.p50_ms},
                       {"latency_p99_ms", r.p99_ms},
                       {"server_queue_wait_p99_ms", r.server_wait_p99_ms}});
  }

  const auto stats = server.stats();
  std::printf("server totals: accepted %llu, completed %llu, shed %llu, degraded %llu\n",
              static_cast<unsigned long long>(stats.accepted),
              static_cast<unsigned long long>(stats.completed),
              static_cast<unsigned long long>(stats.shed_overload + stats.shed_deadline),
              static_cast<unsigned long long>(stats.degraded));
  server.stop();

  const auto path = report.write();
  if (!path.empty()) std::printf("wrote %s\n", path.c_str());
  return 0;
}
