#include "common.hpp"

#include <algorithm>
#include <cstdio>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"

namespace nufft::bench {

index_t shrink() { return paper_scale() ? 1 : 4; }

datasets::Table1Row row_at_scale(int table1_id) {
  for (const auto& row : datasets::table1()) {
    if (row.id == table1_id) return datasets::scaled(row, shrink());
  }
  throw Error("unknown Table I row id");
}

datasets::Table1Row default_row_scaled() {
  return datasets::scaled(datasets::default_row(), shrink());
}

datasets::SampleSet make_set(datasets::TrajectoryType type, const datasets::Table1Row& row,
                             int dim) {
  return datasets::make_trajectory(type, dim, datasets::params_for(row));
}

std::vector<datasets::SampleSet> all_sets(const datasets::Table1Row& row, int dim) {
  std::vector<datasets::SampleSet> sets;
  sets.push_back(make_set(datasets::TrajectoryType::kRadial, row, dim));
  sets.push_back(make_set(datasets::TrajectoryType::kRandom, row, dim));
  sets.push_back(make_set(datasets::TrajectoryType::kSpiral, row, dim));
  return sets;
}

double time_call(const std::function<void()>& fn, int default_reps) {
  const int reps = std::max(1, bench_reps(default_reps));
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    Timer t;
    fn();
    best = std::min(best, t.seconds());
  }
  return best;
}

PlanConfig optimized_config(int threads, double W) {
  PlanConfig cfg;
  cfg.threads = threads;
  cfg.kernel_radius = W;
  return cfg;  // defaults are the paper's full optimization set
}

PlanConfig baseline_config(double W) {
  PlanConfig cfg;
  cfg.threads = 1;
  cfg.kernel_radius = W;
  cfg.use_simd = false;
  cfg.reorder = false;
  cfg.variable_partitions = false;
  cfg.priority_queue = false;
  cfg.selective_privatization = false;
  return cfg;
}

std::vector<int> thread_sweep() {
  // Sweep to at least 4 software threads even on a single hardware core so
  // the scheduling machinery is exercised; on such machines the speedup
  // columns are structural, not wall-clock (see EXPERIMENTS.md).
  const int max_t = std::max(4, bench_threads());
  std::vector<int> sweep{1};
  for (int t = 2; t < max_t; t *= 2) sweep.push_back(t);
  if (sweep.back() != max_t) sweep.push_back(max_t);
  return sweep;
}

void print_header(const std::string& title) {
  const auto row = default_row_scaled();
  std::printf("== %s ==\n", title.c_str());
  std::printf("scale: %s (shrink %lld; default row N=%lld K=%lld S=%lld)  threads<=%d\n",
              paper_scale() ? "PAPER" : "container", static_cast<long long>(shrink()),
              static_cast<long long>(row.n), static_cast<long long>(row.k),
              static_cast<long long>(row.s), bench_threads());
}

cvecf random_values(index_t n, std::uint64_t seed) {
  Rng rng(seed);
  cvecf v(static_cast<std::size_t>(n));
  for (auto& x : v) {
    x = cfloat(static_cast<float>(rng.uniform(-1, 1)), static_cast<float>(rng.uniform(-1, 1)));
  }
  return v;
}

}  // namespace nufft::bench
