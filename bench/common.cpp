#include "common.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"

namespace nufft::bench {

index_t shrink() { return paper_scale() ? 1 : 4; }

datasets::Table1Row row_at_scale(int table1_id) {
  for (const auto& row : datasets::table1()) {
    if (row.id == table1_id) return datasets::scaled(row, shrink());
  }
  throw Error("unknown Table I row id");
}

datasets::Table1Row default_row_scaled() {
  return datasets::scaled(datasets::default_row(), shrink());
}

datasets::SampleSet make_set(datasets::TrajectoryType type, const datasets::Table1Row& row,
                             int dim) {
  return datasets::make_trajectory(type, dim, datasets::params_for(row));
}

std::vector<datasets::SampleSet> all_sets(const datasets::Table1Row& row, int dim) {
  std::vector<datasets::SampleSet> sets;
  sets.push_back(make_set(datasets::TrajectoryType::kRadial, row, dim));
  sets.push_back(make_set(datasets::TrajectoryType::kRandom, row, dim));
  sets.push_back(make_set(datasets::TrajectoryType::kSpiral, row, dim));
  return sets;
}

double time_call(const std::function<void()>& fn, int default_reps) {
  const int reps = std::max(1, bench_reps(default_reps));
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    Timer t;
    fn();
    best = std::min(best, t.seconds());
  }
  return best;
}

PlanConfig optimized_config(int threads, double W) {
  PlanConfig cfg;
  cfg.threads = threads;
  cfg.kernel_radius = W;
  return cfg;  // defaults are the paper's full optimization set
}

PlanConfig baseline_config(double W) {
  PlanConfig cfg;
  cfg.threads = 1;
  cfg.kernel_radius = W;
  cfg.use_simd = false;
  cfg.reorder = false;
  cfg.variable_partitions = false;
  cfg.priority_queue = false;
  cfg.selective_privatization = false;
  return cfg;
}

std::vector<int> thread_sweep() {
  // Sweep to at least 4 software threads even on a single hardware core so
  // the scheduling machinery is exercised; on such machines the speedup
  // columns are structural, not wall-clock (see EXPERIMENTS.md).
  const int max_t = std::max(4, bench_threads());
  std::vector<int> sweep{1};
  for (int t = 2; t < max_t; t *= 2) sweep.push_back(t);
  if (sweep.back() != max_t) sweep.push_back(max_t);
  return sweep;
}

void print_header(const std::string& title) {
  const auto row = default_row_scaled();
  std::printf("== %s ==\n", title.c_str());
  std::printf("scale: %s (shrink %lld; default row N=%lld K=%lld S=%lld)  threads<=%d\n",
              paper_scale() ? "PAPER" : "container", static_cast<long long>(shrink()),
              static_cast<long long>(row.n), static_cast<long long>(row.k),
              static_cast<long long>(row.s), bench_threads());
}

cvecf random_values(index_t n, std::uint64_t seed) {
  Rng rng(seed);
  cvecf v(static_cast<std::size_t>(n));
  for (auto& x : v) {
    x = cfloat(static_cast<float>(rng.uniform(-1, 1)), static_cast<float>(rng.uniform(-1, 1)));
  }
  return v;
}

namespace {

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_json_number(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out += buf;
}

}  // namespace

BenchReport::BenchReport(std::string name) : name_(std::move(name)) {}

void BenchReport::add(std::string label, std::vector<std::pair<std::string, double>> fields) {
  rows_.emplace_back(std::move(label), std::move(fields));
}

std::string BenchReport::write() const {
  const char* json_env = std::getenv("NUFFT_BENCH_JSON");
  if (json_env != nullptr && std::string(json_env) == "0") return {};

  std::string out = "{\n  \"bench\": ";
  append_json_string(out, name_);
  out += ",\n  \"scale\": ";
  append_json_string(out, paper_scale() ? "paper" : "container");
  out += ",\n  \"threads\": ";
  append_json_number(out, bench_threads());
  out += ",\n  \"results\": [";
  bool first_row = true;
  for (const auto& [label, fields] : rows_) {
    out += first_row ? "\n    {" : ",\n    {";
    first_row = false;
    out += "\"label\": ";
    append_json_string(out, label);
    for (const auto& [key, value] : fields) {
      out += ", ";
      append_json_string(out, key);
      out += ": ";
      append_json_number(out, value);
    }
    out += '}';
  }
  out += "\n  ]";
  if (obs::metrics_enabled()) {
    out += ",\n  \"metrics\": ";
    out += obs::metrics_json(obs::MetricsRegistry::instance().snapshot());
  }
  out += "\n}\n";

  std::string path = "BENCH_" + name_ + ".json";
  if (const char* dir = std::getenv("NUFFT_BENCH_DIR"); dir != nullptr && dir[0] != '\0') {
    path = std::string(dir) + "/" + path;
  }
  if (!obs::write_text_file(path, out)) {
    std::fprintf(stderr, "warning: failed to write %s\n", path.c_str());
    return {};
  }
  std::printf("report: %s\n", path.c_str());
  return path;
}

}  // namespace nufft::bench
