// Batched-execution throughput: full forward+adjoint transform pairs per
// second for batch widths B ∈ {1, 2, 4, 8, 16}, batched (exec::BatchNufft,
// one scheduler walk / window computation / pruned batched FFT for all B)
// against B sequential single applies on the same plan and thread count.
// Expected shape: the batch path pulls ahead monotonically with B — ≥2× at
// B = 8 on the radial Table I dataset — as the per-transform fixed costs
// amortize.
#include <cstdio>

#include "common.hpp"
#include "exec/batch_nufft.hpp"

using namespace nufft;
using namespace nufft::bench;

int main() {
  print_header("Batch throughput — fwd+adj transform pairs/s vs batch width");
  const auto row = default_row_scaled();
  const GridDesc g = make_grid(3, row.n, 2.0);
  const auto set = make_set(datasets::TrajectoryType::kRadial, row);

  PlanConfig cfg = optimized_config(bench_threads());
  cfg.isa = SimdIsa::kAuto;  // widest ISA for both the batch and the baseline
  Nufft plan(g, set, cfg);

  constexpr index_t kMaxB = 16;
  const index_t ne = g.image_elems();
  const index_t ns = set.count();
  const cvecf images = random_values(kMaxB * ne, 11);
  const cvecf raws = random_values(kMaxB * ns, 13);
  cvecf raw_out(static_cast<std::size_t>(kMaxB * ns));
  cvecf img_out(static_cast<std::size_t>(kMaxB * ne));

  std::printf("%4s  %14s  %14s  %8s\n", "B", "seq pairs/s", "batch pairs/s", "speedup");
  BenchReport report("batch_throughput");
  for (const index_t B : {1, 2, 4, 8, 16}) {
    const double t_seq = time_call([&] {
      for (index_t b = 0; b < B; ++b) {
        plan.forward(images.data() + b * ne, raw_out.data() + b * ns);
        plan.adjoint(raws.data() + b * ns, img_out.data() + b * ne);
      }
    });

    exec::BatchNufft batch(plan, B);
    const double t_batch = time_call([&] {
      batch.forward(images.data(), raw_out.data(), B);
      batch.adjoint(raws.data(), img_out.data(), B);
    });

    const double seq_rate = static_cast<double>(B) / t_seq;
    const double batch_rate = static_cast<double>(B) / t_batch;
    std::printf("%4lld  %14.2f  %14.2f  %7.2fx\n", static_cast<long long>(B), seq_rate,
                batch_rate, batch_rate / seq_rate);
    report.add("B=" + std::to_string(B), {{"batch", static_cast<double>(B)},
                                          {"seq_pairs_per_s", seq_rate},
                                          {"batch_pairs_per_s", batch_rate},
                                          {"speedup", batch_rate / seq_rate}});
  }
  report.write();
  return 0;
}
