// Fig. 3 and Fig. 8: execution-time breakdown of one forward + adjoint
// NUFFT pair — scalar sequential (Fig. 3) and fully optimized parallel
// (Fig. 8). The paper's observation: the two convolutions dominate the
// scalar code, and the optimizations close most of the gap to the FFT.
#include <cstdio>

#include "common.hpp"

using namespace nufft;
using namespace nufft::bench;

namespace {

struct Breakdown {
  double adj_conv, fwd_conv, fft, scale, total;
};

Breakdown measure(Nufft& plan, const cvecf& img, const cvecf& raw) {
  cvecf out_raw(raw.size());
  cvecf out_img(img.size());
  Breakdown b{};
  time_call([&] {
    plan.forward(img.data(), out_raw.data());
    plan.adjoint(raw.data(), out_img.data());
  });
  const auto& f = plan.last_forward_stats();
  const auto& a = plan.last_adjoint_stats();
  b.fwd_conv = f.conv_s;
  b.adj_conv = a.conv_s;
  b.fft = f.fft_s + a.fft_s;
  b.scale = f.scale_s + a.scale_s;
  b.total = f.total_s + a.total_s;
  return b;
}

void print(const char* label, const Breakdown& b, BenchReport& report) {
  std::printf("%-22s %9.4f %9.4f %9.4f %9.4f %9.4f   |  %5.1f%% %5.1f%% %5.1f%% %5.1f%%\n",
              label, b.adj_conv, b.fwd_conv, b.fft, b.scale, b.total, 100 * b.adj_conv / b.total,
              100 * b.fwd_conv / b.total, 100 * b.fft / b.total, 100 * b.scale / b.total);
  report.add(label, {{"adj_conv_s", b.adj_conv},
                     {"fwd_conv_s", b.fwd_conv},
                     {"fft_s", b.fft},
                     {"scale_s", b.scale},
                     {"total_s", b.total}});
}

}  // namespace

int main() {
  print_header("Fig. 3 / Fig. 8 — NUFFT execution-time breakdown");
  const auto row = default_row_scaled();
  const auto set = make_set(datasets::TrajectoryType::kRadial, row);
  const GridDesc g = make_grid(3, row.n, 2.0);
  const cvecf img = random_values(g.image_elems(), 1);
  const cvecf raw = random_values(set.count(), 2);

  std::printf("%-22s %9s %9s %9s %9s %9s   |  shares of total\n", "variant", "ADJconv",
              "FWDconv", "FFTs", "scale", "total(s)");

  BenchReport report("fig3_breakdown");
  {
    Nufft plan(g, set, baseline_config());
    print("Fig3: scalar seq", measure(plan, img, raw), report);
  }
  {
    Nufft plan(g, set, optimized_config(bench_threads()));
    print("Fig8: optimized par", measure(plan, img, raw), report);
  }
  report.write();
  return 0;
}
