// Chaos soak: sustained multi-client load through the full serving path
// while fault sites fire, ending in a SIGTERM drain — the robustness
// contract as a pass/fail harness rather than a unit test.
//
//   $ ./bench_chaos_soak            # exit 0 = contract held, 1 = violated
//
// Phases (each NUFFT_CHAOS_MS long; faults armed via fault::arm_prob, which
// compiles to a no-op without -DNUFFT_FAULT_INJECT=ON, leaving a plain soak):
//
//   baseline     no faults — calibrates goodput and latency
//   front_door   serve.decode (stream kills) + serve.admission (sheds):
//                clients must reconnect, re-register, and keep going
//   mid_path     serve.build + serve.dispatch + engine.apply.transient
//   slow_path    serve.complete.drop_wake (lost wakes) + engine.apply.stall
//                (wedged applies; the engine watchdog resolves them)
//   drain        load running, then SIGTERM mid-phase: graceful drain must
//                complete within its deadline while late submits are
//                rejected kUnavailable
//
// Hard gates, checked at exit (any failure → nonzero exit):
//   * server books balance: accepted == completed + failed — a lost or
//     duplicated completion breaks this identity
//   * every client request reached exactly one outcome
//   * client-confirmed successes never exceed server completions
//   * p99 latency of successful requests stays under NUFFT_CHAOS_P99_MS
//   * the drain completes within its deadline (+ scheduling slack)
//
// Env knobs: NUFFT_CHAOS_MS (per phase, default 1200), NUFFT_CHAOS_CLIENTS
// (default 4), NUFFT_CHAOS_P99_MS (gate, default 5000), plus the common
// bench knobs (NUFFT_BENCH_DIR, NUFFT_BENCH_JSON). Emits BENCH_chaos.json.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <filesystem>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "common.hpp"
#include "common/env.hpp"
#include "common/fault.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"

namespace {

using namespace nufft;
using Clock = std::chrono::steady_clock;

struct Outcomes {
  std::atomic<std::uint64_t> issued{0};
  std::atomic<std::uint64_t> ok{0};
  std::atomic<std::uint64_t> shed{0};       // kOverloaded
  std::atomic<std::uint64_t> rejected{0};   // kUnavailable / stale plan handle
  std::atomic<std::uint64_t> timeout{0};    // kTimeout (incl. watchdog)
  std::atomic<std::uint64_t> io{0};         // kIoCorruption / kCancelled
  std::atomic<std::uint64_t> other{0};
  std::atomic<std::uint64_t> register_failures{0};

  std::uint64_t outcomes() const {
    return ok.load() + shed.load() + rejected.load() + timeout.load() + io.load() +
           other.load();
  }
};

double quantile_ms(std::vector<double>& lat_ms, double q) {
  if (lat_ms.empty()) return 0;
  std::sort(lat_ms.begin(), lat_ms.end());
  const auto idx = static_cast<std::size_t>(q * static_cast<double>(lat_ms.size() - 1));
  return lat_ms[idx];
}

// One closed-loop client: connect, register, hammer forward() until told to
// stop. Every thrown code is an expected terminal outcome for that request;
// stream kills and tenant GC are handled by reconnecting and re-registering.
void client_loop(const std::string& socket_path, const std::string& tenant,
                 const GridDesc& grid, const datasets::SampleSet& samples,
                 const PlanConfig& cfg, const std::vector<cfloat>& image,
                 std::atomic<bool>& stop, Outcomes& o, std::vector<double>& lat_ms,
                 std::mutex& lat_mu) {
  serve::ClientOptions copts;
  copts.backoff_base = std::chrono::milliseconds(2);
  copts.backoff_max = std::chrono::milliseconds(50);
  serve::NufftClient client(copts);
  std::uint64_t plan_id = 0;
  bool ready = false;
  while (!stop.load(std::memory_order_relaxed)) {
    try {
      if (!client.connected()) {
        client.connect(socket_path, tenant);
        ready = false;  // the tenant record (and plan handles) may be gone
      }
      if (!ready) {
        plan_id = client.register_plan(grid, samples, cfg);
        ready = true;
      }
    } catch (const Error&) {
      ++o.register_failures;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      continue;
    }
    ++o.issued;
    const auto t0 = Clock::now();
    try {
      client.forward(plan_id, image);
      ++o.ok;
      const double ms = std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
      std::lock_guard<std::mutex> lock(lat_mu);
      lat_ms.push_back(ms);
    } catch (const Error& e) {
      switch (e.code()) {
        case ErrorCode::kOverloaded: ++o.shed; break;
        case ErrorCode::kResourceExhausted: ++o.shed; break;  // transient dispatch shed
        case ErrorCode::kUnavailable: ++o.rejected; ready = false; break;
        case ErrorCode::kInvalidInput: ++o.rejected; ready = false; break;  // stale handle
        case ErrorCode::kTimeout: ++o.timeout; break;
        case ErrorCode::kIoCorruption: ++o.io; ready = false; break;
        case ErrorCode::kCancelled: ++o.io; break;  // drain-deadline cancellation
        default: ++o.other; break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
}

struct PhaseResult {
  Outcomes o;
  std::vector<double> lat_ms;
  std::uint64_t fault_fires = 0;
};

void run_phase(const std::string& socket_path, const GridDesc& grid,
               const datasets::SampleSet& samples, const PlanConfig& cfg,
               const std::vector<cfloat>& image, int clients, double seconds,
               const std::function<void()>& mid_phase, PhaseResult& out) {
  std::atomic<bool> stop{false};
  std::mutex lat_mu;
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      client_loop(socket_path, "chaos-" + std::to_string(c % 2), grid, samples, cfg, image,
                  stop, out.o, out.lat_ms, lat_mu);
    });
  }
  const auto until = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                        std::chrono::duration<double>(seconds));
  if (mid_phase) {
    std::this_thread::sleep_until(Clock::now() + (until - Clock::now()) / 3);
    mid_phase();
  }
  std::this_thread::sleep_until(until);
  stop.store(true);
  for (auto& t : threads) t.join();
  out.fault_fires = fault::fired_total();
  fault::reset();
}

}  // namespace

int main() {
  bench::print_header("chaos soak: fault sweep + SIGTERM drain through the serving path");
  if (!fault::enabled()) {
    std::printf("note: built without NUFFT_FAULT_INJECT — running as a plain soak\n");
  }

  const index_t N = 32;
  const GridDesc grid = make_grid(2, N, 2.0);
  datasets::TrajectoryParams params;
  params.n = N;
  params.k = 64;
  params.s = 32;
  const auto samples = datasets::make_trajectory(datasets::TrajectoryType::kRadial, 2, params);
  PlanConfig cfg;
  cfg.threads = 1;
  const auto values = bench::random_values(grid.image_elems());
  const std::vector<cfloat> image(values.begin(), values.end());

  serve::ServeConfig sc;
  sc.socket_path = (std::filesystem::temp_directory_path() /
                    ("nufft_chaos_soak_" + std::to_string(::getpid()) + ".sock"))
                       .string();
  sc.engine.workers = std::max(1, static_cast<int>(env_int("NUFFT_THREADS", 2)));
  sc.engine.stall_threshold = std::chrono::milliseconds(250);  // watchdog armed
  sc.engine.watchdog_poll = std::chrono::milliseconds(10);
  sc.drain_on_sigterm = true;
  sc.drain_deadline = std::chrono::milliseconds(1000);
  serve::NufftServer server(sc);
  server.start();

  const double seconds = static_cast<double>(env_int("NUFFT_CHAOS_MS", 1200)) / 1000.0;
  const int clients = std::max(1, static_cast<int>(env_int("NUFFT_CHAOS_CLIENTS", 4)));
  const double p99_gate_ms = static_cast<double>(env_int("NUFFT_CHAOS_P99_MS", 5000));

  struct Phase {
    const char* name;
    std::function<void()> arm;
    std::function<void()> mid;
  };
  std::vector<Phase> phases;
  phases.push_back({"baseline", [] {}, nullptr});
  phases.push_back({"front_door",
                    [] {
                      fault::arm_prob("serve.decode", 0.002);
                      fault::arm_prob("serve.admission", 0.02);
                    },
                    nullptr});
  phases.push_back({"mid_path",
                    [] {
                      fault::arm_prob("serve.build", 0.05);
                      fault::arm_prob("serve.dispatch", 0.02);
                      fault::arm_prob("engine.apply.transient", 0.01);
                    },
                    nullptr});
  phases.push_back({"slow_path",
                    [] {
                      fault::arm_prob("serve.complete.drop_wake", 0.05);
                      // Stalls outlast the 250 ms watchdog threshold.
                      fault::arm_prob("engine.apply.stall", 0.002, /*budget=*/3,
                                      /*stall ms=*/600);
                    },
                    nullptr});
  std::atomic<bool> drain_met{false};
  phases.push_back({"drain", [] {}, [&] {
                      std::raise(SIGTERM);
                      const auto slack = sc.drain_deadline + std::chrono::milliseconds(3000);
                      const auto give_up = Clock::now() + slack;
                      while (!server.drain_complete() && Clock::now() < give_up) {
                        std::this_thread::sleep_for(std::chrono::milliseconds(10));
                      }
                      drain_met.store(server.drain_complete());
                    }});

  bench::BenchReport report("chaos");
  std::printf("%12s %9s %9s %7s %9s %8s %7s %9s %9s %8s\n", "phase", "issued", "ok", "shed",
              "rejected", "timeout", "io", "p50 ms", "p99 ms", "fires");

  std::uint64_t total_issued = 0, total_outcomes = 0, total_ok = 0;
  double worst_p99 = 0;
  serve::ServerStats before = server.stats();
  for (auto& ph : phases) {
    fault::reset();
    ph.arm();
    PhaseResult pr;
    run_phase(sc.socket_path, grid, samples, cfg, image, clients, seconds, ph.mid, pr);
    const serve::ServerStats after = server.stats();

    const double p50 = quantile_ms(pr.lat_ms, 0.50);
    const double p99 = quantile_ms(pr.lat_ms, 0.99);
    if (std::string(ph.name) != "drain") worst_p99 = std::max(worst_p99, p99);
    total_issued += pr.o.issued.load();
    total_outcomes += pr.o.outcomes();
    total_ok += pr.o.ok.load();

    std::printf("%12s %9llu %9llu %7llu %9llu %8llu %7llu %9.2f %9.2f %8llu\n", ph.name,
                static_cast<unsigned long long>(pr.o.issued.load()),
                static_cast<unsigned long long>(pr.o.ok.load()),
                static_cast<unsigned long long>(pr.o.shed.load()),
                static_cast<unsigned long long>(pr.o.rejected.load()),
                static_cast<unsigned long long>(pr.o.timeout.load()),
                static_cast<unsigned long long>(pr.o.io.load()), p50, p99,
                static_cast<unsigned long long>(pr.fault_fires));
    report.add(ph.name,
               {{"issued", static_cast<double>(pr.o.issued.load())},
                {"ok", static_cast<double>(pr.o.ok.load())},
                {"shed", static_cast<double>(pr.o.shed.load())},
                {"rejected", static_cast<double>(pr.o.rejected.load())},
                {"timeout", static_cast<double>(pr.o.timeout.load())},
                {"io", static_cast<double>(pr.o.io.load())},
                {"register_failures", static_cast<double>(pr.o.register_failures.load())},
                {"goodput_rps", static_cast<double>(pr.o.ok.load()) / seconds},
                {"latency_p50_ms", p50},
                {"latency_p99_ms", p99},
                {"fault_fires", static_cast<double>(pr.fault_fires)},
                {"srv_completed", static_cast<double>(after.completed - before.completed)},
                {"srv_failed", static_cast<double>(after.failed - before.failed)},
                {"srv_shed", static_cast<double>(after.shed_overload - before.shed_overload)}});
    before = after;
  }

  const serve::ServerStats st = server.stats();
  const auto wd = server.watchdog_stats();
  std::printf("server: accepted %llu completed %llu failed %llu orphaned %llu replays %llu "
              "rebinds %llu drain_cancelled %llu watchdog stalls %llu\n",
              static_cast<unsigned long long>(st.accepted),
              static_cast<unsigned long long>(st.completed),
              static_cast<unsigned long long>(st.failed),
              static_cast<unsigned long long>(st.orphaned),
              static_cast<unsigned long long>(st.replays),
              static_cast<unsigned long long>(st.rebinds),
              static_cast<unsigned long long>(st.drain_cancelled),
              static_cast<unsigned long long>(wd.stalls));
  server.stop();

  // --- hard gates ---------------------------------------------------------
  int violations = 0;
  auto gate = [&](bool ok, const char* what) {
    std::printf("gate %-46s %s\n", what, ok ? "PASS" : "FAIL");
    if (!ok) ++violations;
  };
  gate(st.accepted == st.completed + st.failed,
       "books balance (accepted == completed + failed)");
  gate(total_outcomes == total_issued, "every request reached exactly one outcome");
  gate(total_ok <= st.completed, "client successes never exceed completions");
  gate(worst_p99 <= p99_gate_ms, "p99 latency bounded");
  gate(drain_met.load(), "SIGTERM drain completed within deadline");

  report.add("totals", {{"issued", static_cast<double>(total_issued)},
                        {"ok", static_cast<double>(total_ok)},
                        {"srv_accepted", static_cast<double>(st.accepted)},
                        {"srv_completed", static_cast<double>(st.completed)},
                        {"srv_failed", static_cast<double>(st.failed)},
                        {"srv_replays", static_cast<double>(st.replays)},
                        {"srv_rebinds", static_cast<double>(st.rebinds)},
                        {"srv_drain_cancelled", static_cast<double>(st.drain_cancelled)},
                        {"watchdog_stalls", static_cast<double>(wd.stalls)},
                        {"worst_p99_ms", worst_p99},
                        {"violations", static_cast<double>(violations)}});
  const auto path = report.write();
  if (!path.empty()) std::printf("wrote %s\n", path.c_str());
  return violations == 0 ? 0 : 1;
}
