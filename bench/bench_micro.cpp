// Micro-benchmarks (google-benchmark): the primitive operations underneath
// the table/figure benches — FFT sizes, kernel evaluation, LUT lookups,
// window computation, histogram/partitioning, scheduler round trips.
#include <benchmark/benchmark.h>

#include "common.hpp"
#include "core/convolution.hpp"
#include "fft/fft1d.hpp"
#include "fft/fftnd.hpp"
#include "kernels/bessel.hpp"
#include "kernels/kaiser_bessel.hpp"
#include "kernels/lut.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "obs/trace.hpp"
#include "parallel/partitioner.hpp"
#include "parallel/scheduler.hpp"

namespace {

using namespace nufft;

void BM_Fft1dPow2(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  fft::Fft1d<float> plan(n, fft::Direction::kForward);
  aligned_vector<cfloat> data = bench::random_values(static_cast<index_t>(n), 1);
  aligned_vector<cfloat> out(n), scratch(plan.scratch_size());
  for (auto _ : state) {
    plan.transform(data.data(), out.data(), scratch.data());
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_Fft1dPow2)->Arg(64)->Arg(256)->Arg(512)->Arg(1024);

void BM_Fft1dBluestein(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  fft::Fft1d<float> plan(n, fft::Direction::kForward);
  aligned_vector<cfloat> data = bench::random_values(static_cast<index_t>(n), 2);
  aligned_vector<cfloat> out(n), scratch(plan.scratch_size());
  for (auto _ : state) {
    plan.transform(data.data(), out.data(), scratch.data());
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_Fft1dBluestein)->Arg(160)->Arg(480)->Arg(640);

void BM_Fft3d(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  fft::FftNd<float> plan({n, n, n}, fft::Direction::kForward);
  aligned_vector<cfloat> data = bench::random_values(static_cast<index_t>(n * n * n), 3);
  ThreadPool pool(bench_threads());
  for (auto _ : state) {
    plan.transform(data.data(), pool);
    benchmark::DoNotOptimize(data.data());
  }
}
BENCHMARK(BM_Fft3d)->Arg(32)->Arg(64);

void BM_BesselI0(benchmark::State& state) {
  double x = 0.1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernels::bessel_i0(x));
    x += 0.37;
    if (x > 35.0) x = 0.1;
  }
}
BENCHMARK(BM_BesselI0);

void BM_KaiserBesselValue(benchmark::State& state) {
  const auto kb = kernels::KaiserBessel::with_beatty_beta(4.0, 2.0);
  double d = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(kb.value(d));
    d += 0.013;
    if (d > 4.0) d = 0.0;
  }
}
BENCHMARK(BM_KaiserBesselValue);

void BM_LutLookup(benchmark::State& state) {
  const auto kb = kernels::KaiserBessel::with_beatty_beta(4.0, 2.0);
  const kernels::KernelLut lut(kb, 1024);
  float d = 0.0f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lut(d));
    d += 0.013f;
    if (d > 4.0f) d = 0.0f;
  }
}
BENCHMARK(BM_LutLookup);

void BM_ComputeWindow3d(benchmark::State& state) {
  const GridDesc g = make_grid(3, 64, 2.0);
  const auto kb = kernels::KaiserBessel::with_beatty_beta(
      static_cast<double>(state.range(0)), 2.0);
  const kernels::KernelLut lut(kb, 1024);
  WindowBuf wb;
  float c = 17.3f;
  for (auto _ : state) {
    float coord[3] = {c, c + 11.1f, c + 23.7f};
    compute_window(g, lut, coord, 3, true, wb);
    benchmark::DoNotOptimize(wb.win[0][0]);
    c += 0.37f;
    if (c > 90.0f) c = 17.3f;
  }
}
BENCHMARK(BM_ComputeWindow3d)->Arg(2)->Arg(4)->Arg(8);

void BM_ScatterSimd3d(benchmark::State& state) {
  const GridDesc g = make_grid(3, 64, 2.0);
  const auto kb = kernels::KaiserBessel::with_beatty_beta(
      static_cast<double>(state.range(0)), 2.0);
  const kernels::KernelLut lut(kb, 1024);
  const auto st = g.grid_strides();
  cvecf grid(static_cast<std::size_t>(g.grid_elems()), cfloat(0, 0));
  WindowBuf wb;
  float coord[3] = {40.3f, 51.7f, 66.1f};
  compute_window(g, lut, coord, 3, true, wb);
  for (auto _ : state) {
    adj_scatter_simd<3>(grid.data(), st, wb, cfloat(1.0f, -1.0f));
    benchmark::DoNotOptimize(grid.data());
  }
}
BENCHMARK(BM_ScatterSimd3d)->Arg(2)->Arg(4)->Arg(8);

void BM_GatherSimd3d(benchmark::State& state) {
  const GridDesc g = make_grid(3, 64, 2.0);
  const auto kb = kernels::KaiserBessel::with_beatty_beta(
      static_cast<double>(state.range(0)), 2.0);
  const kernels::KernelLut lut(kb, 1024);
  const auto st = g.grid_strides();
  const cvecf grid = bench::random_values(g.grid_elems(), 5);
  WindowBuf wb;
  float coord[3] = {40.3f, 51.7f, 66.1f};
  compute_window(g, lut, coord, 3, true, wb);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fwd_gather_simd<3>(grid.data(), st, wb));
  }
}
BENCHMARK(BM_GatherSimd3d)->Arg(2)->Arg(4)->Arg(8);

void BM_CumulativeHistogram(benchmark::State& state) {
  const auto row = bench::default_row_scaled();
  const auto set = bench::make_set(datasets::TrajectoryType::kRandom, row);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cumulative_histogram(set.coords[0].data(), set.count(), set.m));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * set.count());
}
BENCHMARK(BM_CumulativeHistogram);

void BM_VariableLayout(benchmark::State& state) {
  const auto row = bench::default_row_scaled();
  const auto set = bench::make_set(datasets::TrajectoryType::kRadial, row);
  const std::array<index_t, 3> ext{set.m, set.m, set.m};
  const std::array<const float*, 3> coords{set.coords[0].data(), set.coords[1].data(),
                                           set.coords[2].data()};
  for (auto _ : state) {
    benchmark::DoNotOptimize(make_variable_layout(3, ext, coords, set.count(), 8, 9));
  }
}
BENCHMARK(BM_VariableLayout);

void BM_SchedulerDrain(benchmark::State& state) {
  // Overhead of draining an empty-bodied task graph.
  PartitionLayout layout;
  layout.dim = 3;
  const int p = static_cast<int>(state.range(0));
  layout.num_parts = {p, p, p};
  for (int d = 0; d < 3; ++d) {
    for (int i = 0; i <= p; ++i) layout.bounds[static_cast<std::size_t>(d)].push_back(i * 16);
  }
  TaskGraph graph(layout);
  std::vector<index_t> weights(static_cast<std::size_t>(graph.size()), 1);
  std::vector<char> priv(static_cast<std::size_t>(graph.size()), 0);
  ThreadPool pool(bench_threads());
  for (auto _ : state) {
    run_task_graph(graph, weights, priv, pool, [](int, int, JobPhase) {});
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * graph.size());
}
BENCHMARK(BM_SchedulerDrain)->Arg(4)->Arg(8);

// Off-path cost of the observability layer: a disabled Span/counter must be
// one relaxed load plus a branch (ISSUE acceptance: <2% on the macro bench).
void BM_SpanDisabled(benchmark::State& state) {
  obs::set_trace_enabled(false);
  for (auto _ : state) {
    obs::Span s("bench.span", "bench");
    benchmark::DoNotOptimize(&s);
  }
}
BENCHMARK(BM_SpanDisabled);

void BM_SpanEnabled(benchmark::State& state) {
  obs::set_trace_enabled(true);
  obs::reset_spans();
  for (auto _ : state) {
    obs::Span s("bench.span", "bench");
    benchmark::DoNotOptimize(&s);
  }
  obs::set_trace_enabled(false);
  obs::reset_spans();
}
BENCHMARK(BM_SpanEnabled);

void BM_CounterDisabled(benchmark::State& state) {
  obs::set_metrics_enabled(false);
  for (auto _ : state) {
    obs::count("bench.counter");
  }
}
BENCHMARK(BM_CounterDisabled);

void BM_CounterEnabled(benchmark::State& state) {
  obs::set_metrics_enabled(true);
  for (auto _ : state) {
    obs::count("bench.counter");
  }
  obs::set_metrics_enabled(false);
  obs::MetricsRegistry::instance().reset();
}
BENCHMARK(BM_CounterEnabled);

// The cached-handle pattern the scheduler uses: resolve once, then relaxed
// atomic adds only.
void BM_CounterCachedHandle(benchmark::State& state) {
  obs::set_metrics_enabled(true);
  auto& c = obs::MetricsRegistry::instance().counter("bench.counter_cached");
  for (auto _ : state) {
    c.add(1);
  }
  obs::set_metrics_enabled(false);
  obs::MetricsRegistry::instance().reset();
}
BENCHMARK(BM_CounterCachedHandle);

}  // namespace

BENCHMARK_MAIN();
