// Ablation: Part 1 weight computation via the piecewise-polynomial Horner
// evaluator versus the linear-interpolation LUT, for the ES kernel the
// tolerance-driven planner pairs with Horner. The LUT gathers 2·dim·(2W+1)
// table entries per sample; Horner recomputes the whole last-dim weight row
// from one shared abscissa with nseg fused multiply-adds per degree.
#include <cstdio>

#include "common.hpp"
#include "core/convolution.hpp"
#include "kernels/es_kernel.hpp"
#include "kernels/horner.hpp"
#include "kernels/lut.hpp"

using namespace nufft;
using namespace nufft::bench;

int main() {
  print_header("Ablation — Horner vs LUT window evaluation (ES kernel, Part 1)");
  const auto row = default_row_scaled();
  const auto set = make_set(datasets::TrajectoryType::kRandom, row);
  const GridDesc g = make_grid(3, row.n, 2.0);

  std::printf("%-5s %6s %14s %14s %12s\n", "W", "degree", "LUT (s)", "Horner (s)",
              "Horner gain");
  for (const double W : {2.0, 3.0, 4.0}) {
    const kernels::EsKernel es(W, 2.0);
    const kernels::KernelLut lut(es, 1024);
    const kernels::KernelHorner horner(es);

    WindowEval lut_ev;
    lut_ev.lut = &lut;
    WindowEval horner_ev;
    horner_ev.horner = &horner;

    volatile float sink = 0.0f;
    const auto time_eval = [&](const WindowEval& ev) {
      return time_call([&] {
        WindowBuf wb;
        float acc = 0.0f;
        for (index_t p = 0; p < set.count(); ++p) {
          float coord[3] = {set.coords[0][static_cast<std::size_t>(p)],
                            set.coords[1][static_cast<std::size_t>(p)],
                            set.coords[2][static_cast<std::size_t>(p)]};
          compute_window(g, ev, coord, 3, false, wb);
          acc += wb.win[0][0];
        }
        sink = sink + acc;
      });
    };
    const double t_lut = time_eval(lut_ev);
    const double t_horner = time_eval(horner_ev);
    std::printf("%-5.0f %6d %14.4f %14.4f %11.2fx\n", W, horner.degree(), t_lut, t_horner,
                t_lut / t_horner);
  }
  return 0;
}
