// Ablation: Part 1 weight computation via the piecewise-polynomial Horner
// evaluator versus the linear-interpolation LUT, for the ES kernel the
// tolerance-driven planner pairs with Horner — plus the dispatch-registry
// specializations of the same loop (core/conv_variants.hpp): the constexpr-W
// scalar variant and the AVX2 row evaluator that computes the whole weight
// row from one shared abscissa, 8 segments per instruction
// (kernels/horner_avx2.cpp). The second half times full forward/adjoint
// executions with the registry enabled and disabled (PlanConfig
// specialize_conv) on the LUT and Horner configurations; results go to
// BENCH_abla_horner.json (window rows "w4".."w8", pipeline rows
// "<kernel>.d<dim>").
//
// This TU is deliberately compiled at the baseline ISA (see
// core/conv_variants.hpp rule 2): including the variant templates from an
// -mavx2 TU would let the compiler contract the weight arithmetic into FMA
// and measure a loop the library never runs.
#include <cstdio>
#include <string>

#include "common.hpp"
#include "core/conv_variants.hpp"
#include "core/convolution.hpp"
#include "core/convolution_avx2.hpp"
#include "kernels/es_kernel.hpp"
#include "kernels/horner.hpp"
#include "kernels/lut.hpp"

using namespace nufft;
using namespace nufft::bench;

namespace {

volatile float g_sink = 0.0f;

/// Time one Part-1 sweep over every sample: `fn(coord, wb)` fills the window.
template <typename Fn>
double time_window(const datasets::SampleSet& set, const Fn& fn) {
  return time_call([&] {
    WindowBuf wb;
    float acc = 0.0f;
    for (index_t p = 0; p < set.count(); ++p) {
      float coord[3] = {set.coords[0][static_cast<std::size_t>(p)],
                        set.coords[1][static_cast<std::size_t>(p)],
                        set.coords[2][static_cast<std::size_t>(p)]};
      fn(coord, wb);
      acc += wb.win[0][0];
    }
    g_sink = g_sink + acc;
  });
}

template <int W2, bool AVX2ROW>
double time_spec(const GridDesc& g, const WindowEval& ev, const datasets::SampleSet& set) {
  return time_window(set, [&](const float* coord, WindowBuf& wb) {
    detail::window_spec<3, W2, true, AVX2ROW>(g, ev, coord, false, wb);
  });
}

template <bool AVX2ROW>
double time_spec_for(int w2, const GridDesc& g, const WindowEval& ev,
                     const datasets::SampleSet& set) {
  switch (w2) {
    case 4: return time_spec<4, AVX2ROW>(g, ev, set);
    case 5: return time_spec<5, AVX2ROW>(g, ev, set);
    case 6: return time_spec<6, AVX2ROW>(g, ev, set);
    case 7: return time_spec<7, AVX2ROW>(g, ev, set);
    default: return time_spec<8, AVX2ROW>(g, ev, set);
  }
}

}  // namespace

int main() {
  print_header("Ablation — Horner vs LUT window evaluation (ES kernel, Part 1)");
  const auto row = default_row_scaled();
  const auto set = make_set(datasets::TrajectoryType::kRandom, row);
  const GridDesc g = make_grid(3, row.n, 2.0);
  const bool avx2 = avx2_available();
  BenchReport report("abla_horner");

  std::printf("%-5s %6s %12s %12s %12s %12s %10s\n", "W", "degree", "LUT gen", "Horner gen",
              "Horner spec", "Horner avx2", "avx2 gain");
  for (int w2 = ConvDispatch::kMinWidth2; w2 <= ConvDispatch::kMaxWidth2; ++w2) {
    const double W = 0.5 * w2;
    const kernels::EsKernel es(W, 2.0);
    const kernels::KernelLut lut(es, 1024);
    const kernels::KernelHorner horner(es);
    WindowEval lut_ev;
    lut_ev.lut = &lut;
    WindowEval horner_ev;
    horner_ev.horner = &horner;

    const double t_lut = time_window(set, [&](const float* coord, WindowBuf& wb) {
      compute_window(g, lut_ev, coord, 3, false, wb);
    });
    const double t_horner = time_window(set, [&](const float* coord, WindowBuf& wb) {
      compute_window(g, horner_ev, coord, 3, false, wb);
    });
    const double t_spec = time_spec_for<false>(w2, g, horner_ev, set);
    const double t_avx2 = avx2 ? time_spec_for<true>(w2, g, horner_ev, set) : 0.0;
    const double avx2_gain = avx2 ? t_horner / t_avx2 : 0.0;
    std::printf("%-5.1f %6d %12.4f %12.4f %12.4f %12.4f %9.2fx\n", W, horner.degree(), t_lut,
                t_horner, t_spec, t_avx2, avx2_gain);
    report.add("w" + std::to_string(w2),
               {{"W", W},
                {"degree", static_cast<double>(horner.degree())},
                {"lut_generic_s", t_lut},
                {"horner_generic_s", t_horner},
                {"horner_spec_s", t_spec},
                {"horner_spec_avx2_s", t_avx2},
                {"spec_gain", t_horner / t_spec},
                {"avx2_row_gain", avx2_gain},
                {"lut_vs_avx2_gain", avx2 ? t_lut / t_avx2 : 0.0}});
  }

  // Full pipeline: the registry on versus the generic loop, on the two
  // calibrated evaluator pairings (KB+LUT, ES+Horner), dims 2 and 3.
  std::printf("\n%-12s %12s %12s %8s %12s %12s %8s\n", "shape", "fwd spec", "fwd gen", "gain",
              "adj spec", "adj gen", "gain");
  for (const int dim : {2, 3}) {
    const auto dset = make_set(datasets::TrajectoryType::kRandom, row, dim);
    const GridDesc dg = make_grid(dim, row.n, 2.0);
    const cvecf img = random_values(dg.image_elems(), 1);
    const cvecf raw = random_values(dset.count(), 2);
    cvecf out_raw(raw.size());
    cvecf out_img(img.size());
    for (const bool use_horner : {false, true}) {
      PlanConfig cfg = optimized_config(bench_threads());
      cfg.isa = SimdIsa::kAuto;
      if (use_horner) {
        cfg.kernel = kernels::KernelType::kEs;
        cfg.eval = kernels::KernelEval::kHorner;
      }
      PlanConfig gen_cfg = cfg;
      gen_cfg.specialize_conv = false;
      Nufft spec(dg, dset, cfg);
      Nufft generic(dg, dset, gen_cfg);
      const double fwd_spec =
          time_call([&] { spec.forward(img.data(), out_raw.data()); });
      const double fwd_gen =
          time_call([&] { generic.forward(img.data(), out_raw.data()); });
      const double adj_spec =
          time_call([&] { spec.adjoint(raw.data(), out_img.data()); });
      const double adj_gen =
          time_call([&] { generic.adjoint(raw.data(), out_img.data()); });
      const std::string label =
          std::string(use_horner ? "horner" : "lut") + ".d" + std::to_string(dim);
      std::printf("%-12s %12.4f %12.4f %7.2fx %12.4f %12.4f %7.2fx\n", label.c_str(), fwd_spec,
                  fwd_gen, fwd_gen / fwd_spec, adj_spec, adj_gen, adj_gen / adj_spec);
      report.add(label, {{"dim", static_cast<double>(dim)},
                         {"horner", use_horner ? 1.0 : 0.0},
                         {"specialized", spec.plan_stats().conv_specialized ? 1.0 : 0.0},
                         {"forward_spec_s", fwd_spec},
                         {"forward_generic_s", fwd_gen},
                         {"forward_gain", fwd_gen / fwd_spec},
                         {"adjoint_spec_s", adj_spec},
                         {"adjoint_generic_s", adj_gen},
                         {"adjoint_gain", adj_gen / adj_spec}});
    }
  }
  report.write();
  return 0;
}
