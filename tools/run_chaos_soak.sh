#!/usr/bin/env bash
# Chaos-under-sanitizers sweep: build with the fault hooks compiled in
# (-DNUFFT_FAULT_INJECT=ON) under AddressSanitizer and ThreadSanitizer, run
# the chaos + faults test suites (`ctest -L 'faults|chaos'`), then run the
# bench_chaos_soak harness — fault-sweep phases ending in a SIGTERM drain,
# with hard exit-code gates on exactly-once accounting, bounded p99, and
# drain-within-deadline (see bench/bench_chaos_soak.cpp).
#
# This is the "prove it under instrumentation" companion to
# tools/run_fuzz_sanitized.sh: the soak's reconnect storms, watchdog
# expulsions and drain cancellations are exactly the paths where a data race
# or use-after-free would hide.
#
# Env knobs forwarded to the soak: NUFFT_CHAOS_MS (per-phase duration,
# default 1200), NUFFT_CHAOS_CLIENTS (default 4), NUFFT_CHAOS_P99_MS
# (latency gate; the default 5000 is generous because sanitizer
# instrumentation inflates latency).
#
# Usage: tools/run_chaos_soak.sh [address] [thread]
#        (no arguments = address + thread)
set -euo pipefail

cd "$(dirname "$0")/.."

sanitizers=("$@")
if [ ${#sanitizers[@]} -eq 0 ]; then
  sanitizers=(address thread)
fi

for san in "${sanitizers[@]}"; do
  build="build-chaos-${san}san"
  echo "=== chaos/${san}: configuring ${build} ==="
  cmake -B "${build}" -S . \
    -DNUFFT_SANITIZE="${san}" -DNUFFT_FAULT_INJECT=ON \
    -DNUFFT_BUILD_BENCH=ON -DNUFFT_BUILD_EXAMPLES=OFF >/dev/null
  cmake --build "${build}" -j --target nufft_fault_tests --target nufft_chaos_tests \
    --target bench_chaos_soak
  echo "=== chaos/${san}: ctest -L 'faults|chaos' ==="
  (cd "${build}" && ctest -L 'faults|chaos' --output-on-failure)
  echo "=== chaos/${san}: bench_chaos_soak ==="
  (cd "${build}/bench" && ./bench_chaos_soak)
done

echo "All chaos soaks passed: exactly-once held, drain met its deadline."
