#!/usr/bin/env bash
# Run the differential fuzz harness (`ctest -L fuzz`, including the serving
# wire-protocol fuzz and the streaming trajectory-delta battery), the
# tolerance-contract harness (`ctest -L accuracy`),
# the parallel-preprocessing suite (`ctest -L preproc`),
# the convolution-dispatch suite (`ctest -L dispatch`, the specialized-vs-
# generic bit-match matrix and the boundary-coordinate trim sweep),
# the streaming plan-update suite (`ctest -L streaming`, the warm-vs-cold
# bit-match matrix — under TSan this races concurrent update-vs-apply paths
# on the pool), the serving-layer suite (`ctest -L serve`) and the chaos
# suite (`ctest -L chaos`, fault hooks compiled in) under AddressSanitizer and
# UndefinedBehaviorSanitizer, as CI does; pass `thread` to race-check the
# preprocessing scatter/radix passes and the server's poll/builder/engine
# thread handoff under TSan. The sweep seeds are fixed
# (tests/fuzz/test_fuzz.cpp kBaseSeed) so both instrumented runs execute the
# identical configuration set; override with NUFFT_FUZZ_SEED /
# NUFFT_FUZZ_CONFIGS to explore further or to reproduce one failing seed:
#
#   NUFFT_FUZZ_SEED=<seed> NUFFT_FUZZ_CONFIGS=1 tools/run_fuzz_sanitized.sh
#
# Sanitizer builds also compile in the library's debug invariant assertions
# (NUFFT_DASSERT via NUFFT_DEBUG_ASSERTS — see the NUFFT_SANITIZE block in
# the top-level CMakeLists.txt), so window-length and scheduler invariants
# are checked alongside the memory/UB instrumentation. Fault injection
# (NUFFT_FAULT_INJECT) is enabled so the chaos suite exists; it is inert for
# every other suite unless a NUFFT_FAULT env spec arms a site.
#
# Usage: tools/run_fuzz_sanitized.sh [address] [undefined] [thread]
#        (no arguments = address + undefined)
set -euo pipefail

cd "$(dirname "$0")/.."

sanitizers=("$@")
if [ ${#sanitizers[@]} -eq 0 ]; then
  sanitizers=(address undefined)
fi

for san in "${sanitizers[@]}"; do
  build="build-${san}san"
  echo "=== ${san} sanitizer: configuring ${build} ==="
  cmake -B "${build}" -S . \
    -DNUFFT_SANITIZE="${san}" -DNUFFT_FAULT_INJECT=ON \
    -DNUFFT_BUILD_BENCH=OFF -DNUFFT_BUILD_EXAMPLES=OFF >/dev/null
  cmake --build "${build}" -j --target nufft_fuzz_tests --target nufft_accuracy_tests \
    --target nufft_preproc_tests --target nufft_dispatch_tests \
    --target nufft_streaming_tests --target nufft_serve_tests --target nufft_chaos_tests
  echo "=== ${san} sanitizer: ctest -L 'fuzz|accuracy|preproc|dispatch|streaming|serve|chaos' ==="
  (cd "${build}" && ctest -L 'fuzz|accuracy|preproc|dispatch|streaming|serve|chaos' --output-on-failure)
done

echo "All sanitized fuzz + accuracy + preproc + dispatch + streaming + serve + chaos runs passed."
