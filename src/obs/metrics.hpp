// Process-wide metrics registry: counters, gauges and fixed-bucket latency
// histograms keyed by name.
//
// Design for the hot paths that feed it (scheduler jobs, engine dispatch,
// registry lookups):
//
//  * Instruments are plain atomics updated with relaxed operations — no lock
//    is taken to record a value.
//  * The name → instrument map is guarded by a shared_mutex taken shared on
//    lookup; instruments are heap-allocated and never deallocated while the
//    process lives, so call sites may resolve an instrument once and cache
//    the reference across any number of updates (the scheduler does this
//    once per TDG walk). reset() zeroes values but keeps every registered
//    instrument alive for exactly this reason.
//  * The convenience helpers (count / observe_ns / gauge_set) check
//    metrics_enabled() first, so an instrumented path costs one relaxed load
//    when metrics are off.
//
// Histograms use power-of-two nanosecond buckets: bucket i counts samples in
// [2^i, 2^(i+1)) ns, with bucket 0 also absorbing 0 and the last bucket
// absorbing everything ≥ 2^(kBuckets-1) ns (~9 min). Sum and count are exact;
// the buckets give the shape for latency analysis without per-sample storage.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "obs/obs.hpp"

namespace nufft::obs {

class Counter {
 public:
  void add(std::uint64_t d = 1) noexcept { v_.fetch_add(d, std::memory_order_relaxed); }
  std::uint64_t value() const noexcept { return v_.load(std::memory_order_relaxed); }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  // One instrument per cache line: counters for unrelated subsystems must not
  // false-share when updated from different threads.
  alignas(64) std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) noexcept { v_.fetch_add(d, std::memory_order_relaxed); }
  std::int64_t value() const noexcept { return v_.load(std::memory_order_relaxed); }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  alignas(64) std::atomic<std::int64_t> v_{0};
};

class Histogram {
 public:
  static constexpr int kBuckets = 40;  // 2^39 ns ≈ 9.2 minutes

  void record(std::uint64_t ns) noexcept {
    buckets_[static_cast<std::size_t>(bucket_of(ns))].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_ns_.fetch_add(ns, std::memory_order_relaxed);
  }

  std::uint64_t count() const noexcept { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum_ns() const noexcept { return sum_ns_.load(std::memory_order_relaxed); }
  std::uint64_t bucket(int i) const noexcept {
    return buckets_[static_cast<std::size_t>(i)].load(std::memory_order_relaxed);
  }

  /// Bucket index for a value: floor(log2(ns)), clamped to the range.
  static int bucket_of(std::uint64_t ns) noexcept {
    if (ns <= 1) return 0;
    const int b = 63 - __builtin_clzll(ns);
    return b < kBuckets ? b : kBuckets - 1;
  }

  /// Inclusive lower bound of bucket i in nanoseconds.
  static std::uint64_t bucket_lo(int i) noexcept {
    return i == 0 ? 0 : (std::uint64_t{1} << i);
  }

  void reset() noexcept {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_ns_.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  alignas(64) std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_ns_{0};
};

/// Point-in-time copy of every registered instrument, sorted by name so the
/// JSON export (obs/export.hpp) is deterministic.
struct MetricsSnapshot {
  struct Hist {
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t sum_ns = 0;
    std::array<std::uint64_t, Histogram::kBuckets> buckets{};
  };
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<Hist> histograms;
};

class MetricsRegistry {
 public:
  // Transparent hashing: lookups by string_view allocate nothing on the hit
  // path (only a miss, which registers the instrument, builds a std::string).
  struct NameHash {
    using is_transparent = void;
    std::size_t operator()(std::string_view s) const noexcept {
      return std::hash<std::string_view>{}(s);
    }
  };
  template <class T>
  using InstrumentMap =
      std::unordered_map<std::string, std::unique_ptr<T>, NameHash, std::equal_to<>>;

  static MetricsRegistry& instance();

  /// The named instrument, created on first use. The returned reference is
  /// valid for the life of the process (reset() zeroes, never deallocates).
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  MetricsSnapshot snapshot() const;

  /// Zero every instrument, keeping registrations (and cached references)
  /// valid. Intended for tests and bench reps.
  void reset();

 private:
  MetricsRegistry() = default;

  template <class T>
  T& lookup(InstrumentMap<T>& map, std::string_view name);

  mutable std::shared_mutex mu_;
  InstrumentMap<Counter> counters_;
  InstrumentMap<Gauge> gauges_;
  InstrumentMap<Histogram> histograms_;
};

/// Upper-bound estimate of the q-quantile (q ∈ (0, 1]) of a pow2-bucket
/// histogram: the exclusive upper edge of the first bucket whose cumulative
/// count reaches ceil(q · count). Returns 0 for an empty histogram. Because
/// buckets are powers of two the estimate is within 2× of the true quantile —
/// plenty for admission-control decisions ("will this job's deadline survive
/// the queue"), which need the order of magnitude, not the exact value.
std::uint64_t histogram_quantile_ns(const Histogram& h, double q);

// --- convenience recorders (no-ops when metrics are off) --------------------

inline void count(std::string_view name, std::uint64_t d = 1) {
  if (metrics_enabled()) MetricsRegistry::instance().counter(name).add(d);
}

inline void observe_ns(std::string_view name, std::uint64_t ns) {
  if (metrics_enabled()) MetricsRegistry::instance().histogram(name).record(ns);
}

inline void gauge_set(std::string_view name, std::int64_t v) {
  if (metrics_enabled()) MetricsRegistry::instance().gauge(name).set(v);
}

}  // namespace nufft::obs
