#include "obs/trace.hpp"

#include <atomic>
#include <memory>
#include <mutex>

namespace nufft::obs {

namespace {

// 16Ki events ≈ 0.75 MB per recording thread; enough for several full
// adjoint applies of scheduler-granularity spans before wrap-around.
constexpr std::size_t kRingCapacity = std::size_t{1} << 14;

struct ThreadRing {
  std::mutex mu;
  std::vector<SpanEvent> ring;  // grows to kRingCapacity, then wraps
  std::size_t next = 0;         // write position once wrapped
  bool wrapped = false;
  std::uint32_t tid = 0;

  void push(const SpanEvent& ev, std::atomic<std::uint64_t>& dropped) {
    std::lock_guard<std::mutex> lock(mu);
    if (ring.size() < kRingCapacity) {
      ring.push_back(ev);
      return;
    }
    wrapped = true;
    ring[next] = ev;
    next = (next + 1) % kRingCapacity;
    dropped.fetch_add(1, std::memory_order_relaxed);
  }

  void drain_into(std::vector<SpanEvent>& out) {
    std::lock_guard<std::mutex> lock(mu);
    if (wrapped) {
      // Oldest-first: [next, end) then [0, next).
      out.insert(out.end(), ring.begin() + static_cast<std::ptrdiff_t>(next), ring.end());
      out.insert(out.end(), ring.begin(), ring.begin() + static_cast<std::ptrdiff_t>(next));
    } else {
      out.insert(out.end(), ring.begin(), ring.end());
    }
    ring.clear();
    next = 0;
    wrapped = false;
  }
};

struct TraceState {
  std::mutex mu;  // guards `rings` (registration + drain iteration)
  std::vector<std::shared_ptr<ThreadRing>> rings;
  std::atomic<std::uint32_t> next_tid{0};
  std::atomic<std::uint64_t> dropped{0};
};

TraceState& state() {
  static TraceState* s = new TraceState();  // immortal: outlives thread exits
  return *s;
}

ThreadRing& local_ring() {
  // The shared_ptr keeps the ring registered (and drainable) after the
  // owning thread exits — pool threads come and go per apply.
  thread_local std::shared_ptr<ThreadRing> ring = [] {
    auto r = std::make_shared<ThreadRing>();
    TraceState& s = state();
    r->tid = s.next_tid.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(s.mu);
    s.rings.push_back(r);
    return r;
  }();
  return *ring;
}

}  // namespace

std::uint32_t thread_id() { return local_ring().tid; }

void record_span(const char* name, const char* cat, std::uint64_t t0_ns, std::uint64_t t1_ns,
                 std::int64_t arg) {
  ThreadRing& r = local_ring();
  r.push(SpanEvent{name, cat, t0_ns, t1_ns, r.tid, arg}, state().dropped);
}

std::vector<SpanEvent> drain_spans() {
  TraceState& s = state();
  std::vector<std::shared_ptr<ThreadRing>> rings;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    rings = s.rings;
  }
  std::vector<SpanEvent> out;
  for (const auto& r : rings) r->drain_into(out);
  return out;
}

std::uint64_t dropped_spans() {
  return state().dropped.load(std::memory_order_relaxed);
}

void reset_spans() {
  TraceState& s = state();
  std::vector<std::shared_ptr<ThreadRing>> rings;
  {
    std::lock_guard<std::mutex> lock(s.mu);
    rings = s.rings;
  }
  std::vector<SpanEvent> scratch;
  for (const auto& r : rings) r->drain_into(scratch);
  s.dropped.store(0, std::memory_order_relaxed);
}

}  // namespace nufft::obs
