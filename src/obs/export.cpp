#include "obs/export.hpp"

#include <cinttypes>
#include <cstdio>

namespace nufft::obs {

namespace {

void append_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

void append_i64(std::string& out, std::int64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out += buf;
}

// Microseconds with the nanosecond fraction kept: Chrome/Perfetto accept
// fractional ts/dur.
void append_us(std::string& out, std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%03u", ns / 1000,
                static_cast<unsigned>(ns % 1000));
  out += buf;
}

}  // namespace

std::string chrome_trace_json(const std::vector<SpanEvent>& spans) {
  std::string out;
  out.reserve(spans.size() * 96 + 64);
  out += "{\"traceEvents\":[";
  bool first = true;
  for (const SpanEvent& ev : spans) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    append_escaped(out, ev.name);
    out += "\",\"cat\":\"";
    append_escaped(out, ev.cat);
    out += "\",\"ph\":\"X\",\"pid\":1,\"tid\":";
    append_u64(out, ev.tid);
    out += ",\"ts\":";
    append_us(out, ev.t0_ns);
    out += ",\"dur\":";
    append_us(out, ev.t1_ns >= ev.t0_ns ? ev.t1_ns - ev.t0_ns : 0);
    if (ev.arg >= 0) {
      out += ",\"args\":{\"v\":";
      append_i64(out, ev.arg);
      out += '}';
    }
    out += '}';
  }
  out += "],\"displayTimeUnit\":\"ns\"}";
  return out;
}

std::string metrics_json(const MetricsSnapshot& snap) {
  std::string out;
  out += "{\"counters\":{";
  bool first = true;
  for (const auto& [name, v] : snap.counters) {
    if (!first) out += ',';
    first = false;
    out += '"';
    append_escaped(out, name);
    out += "\":";
    append_u64(out, v);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, v] : snap.gauges) {
    if (!first) out += ',';
    first = false;
    out += '"';
    append_escaped(out, name);
    out += "\":";
    append_i64(out, v);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& h : snap.histograms) {
    if (!first) out += ',';
    first = false;
    out += '"';
    append_escaped(out, h.name);
    out += "\":{\"count\":";
    append_u64(out, h.count);
    out += ",\"sum_ns\":";
    append_u64(out, h.sum_ns);
    out += ",\"buckets\":[";
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      if (i != 0) out += ',';
      append_u64(out, h.buckets[static_cast<std::size_t>(i)]);
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

bool write_text_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const bool ok = std::fclose(f) == 0 && written == content.size();
  return ok;
}

}  // namespace nufft::obs
