#include "obs/metrics.hpp"

#include <algorithm>
#include <mutex>

namespace nufft::obs {

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry* r = new MetricsRegistry();  // immortal: references never dangle
  return *r;
}

template <class T>
T& MetricsRegistry::lookup(InstrumentMap<T>& map, std::string_view name) {
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    auto it = map.find(name);
    if (it != map.end()) return *it->second;
  }
  std::unique_lock<std::shared_mutex> lock(mu_);
  auto& slot = map[std::string(name)];
  if (!slot) slot = std::make_unique<T>();
  return *slot;
}

Counter& MetricsRegistry::counter(std::string_view name) { return lookup(counters_, name); }
Gauge& MetricsRegistry::gauge(std::string_view name) { return lookup(gauges_, name); }
Histogram& MetricsRegistry::histogram(std::string_view name) {
  return lookup(histograms_, name);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  {
    std::shared_lock<std::shared_mutex> lock(mu_);
    snap.counters.reserve(counters_.size());
    for (const auto& [name, c] : counters_) snap.counters.emplace_back(name, c->value());
    snap.gauges.reserve(gauges_.size());
    for (const auto& [name, g] : gauges_) snap.gauges.emplace_back(name, g->value());
    snap.histograms.reserve(histograms_.size());
    for (const auto& [name, h] : histograms_) {
      MetricsSnapshot::Hist hs;
      hs.name = name;
      hs.count = h->count();
      hs.sum_ns = h->sum_ns();
      for (int i = 0; i < Histogram::kBuckets; ++i) {
        hs.buckets[static_cast<std::size_t>(i)] = h->bucket(i);
      }
      snap.histograms.push_back(std::move(hs));
    }
  }
  std::sort(snap.counters.begin(), snap.counters.end());
  std::sort(snap.gauges.begin(), snap.gauges.end());
  std::sort(snap.histograms.begin(), snap.histograms.end(),
            [](const auto& a, const auto& b) { return a.name < b.name; });
  return snap;
}

void MetricsRegistry::reset() {
  std::unique_lock<std::shared_mutex> lock(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

std::uint64_t histogram_quantile_ns(const Histogram& h, double q) {
  const std::uint64_t total = h.count();
  if (total == 0 || q <= 0.0) return 0;
  if (q > 1.0) q = 1.0;
  // ceil(q * total) without floating-point edge surprises at q == 1.
  std::uint64_t rank = static_cast<std::uint64_t>(q * static_cast<double>(total));
  if (static_cast<double>(rank) < q * static_cast<double>(total) || rank == 0) ++rank;
  std::uint64_t cum = 0;
  for (int i = 0; i < Histogram::kBuckets; ++i) {
    cum += h.bucket(i);
    if (cum >= rank) {
      // Exclusive upper edge of bucket i = inclusive lower edge of i+1.
      return Histogram::bucket_lo(i + 1);
    }
  }
  return Histogram::bucket_lo(Histogram::kBuckets);  // unreachable if counts match
}

}  // namespace nufft::obs
