#include "obs/obs.hpp"

#include "common/env.hpp"

namespace nufft::obs {

namespace detail {

std::atomic<int> g_metrics{-1};
std::atomic<int> g_trace{-1};

bool resolve(std::atomic<int>& flag, const char* env_var) {
  const int v = env_flag(env_var) ? 1 : 0;
  // Racing resolvers compute the same value; whoever stores first wins, and a
  // concurrent set_*_enabled() override simply lands after.
  int expected = -1;
  flag.compare_exchange_strong(expected, v, std::memory_order_relaxed);
  return flag.load(std::memory_order_relaxed) != 0;
}

}  // namespace detail

void set_metrics_enabled(bool on) {
  detail::g_metrics.store(on ? 1 : 0, std::memory_order_relaxed);
}

void set_trace_enabled(bool on) {
  detail::g_trace.store(on ? 1 : 0, std::memory_order_relaxed);
}

}  // namespace nufft::obs
