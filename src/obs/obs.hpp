// Runtime switches for the observability layer (metrics + span tracing).
//
// Both facilities are off by default and cost one relaxed atomic load plus a
// predictable branch per call site when off — cheap enough to leave the
// instrumentation compiled into the hot paths unconditionally (measured in
// bench_micro: BM_SpanDisabled / BM_CounterDisabled).
//
//   NUFFT_METRICS=1   enable the process-wide MetricsRegistry (obs/metrics.hpp)
//   NUFFT_TRACE=1     enable span recording into per-thread ring buffers
//                     (obs/trace.hpp), exportable as Chrome trace JSON
//
// The environment is read once, lazily; tests and benches can override the
// resolved value programmatically with set_*_enabled().
#pragma once

#include <atomic>

namespace nufft::obs {

namespace detail {
// -1: unresolved (read the environment on first query), 0: off, 1: on.
extern std::atomic<int> g_metrics;
extern std::atomic<int> g_trace;
bool resolve(std::atomic<int>& flag, const char* env_var);
}  // namespace detail

/// True when metric recording is on (NUFFT_METRICS or set_metrics_enabled).
inline bool metrics_enabled() {
  const int v = detail::g_metrics.load(std::memory_order_relaxed);
  return v >= 0 ? v != 0 : detail::resolve(detail::g_metrics, "NUFFT_METRICS");
}

/// True when span tracing is on (NUFFT_TRACE or set_trace_enabled).
inline bool trace_enabled() {
  const int v = detail::g_trace.load(std::memory_order_relaxed);
  return v >= 0 ? v != 0 : detail::resolve(detail::g_trace, "NUFFT_TRACE");
}

/// Override the environment-resolved switch (tests, benches).
void set_metrics_enabled(bool on);
void set_trace_enabled(bool on);

}  // namespace nufft::obs
