// Exporters for the observability layer.
//
//  * chrome_trace_json — spans as Chrome trace_event JSON ("complete" events,
//    ph:"X"); open in chrome://tracing or https://ui.perfetto.dev.
//  * metrics_json — a flat MetricsSnapshot as one JSON object; this is also
//    the payload the bench harness embeds in BENCH_<name>.json.
//  * write_text_file — tiny helper shared by the benches and tests.
#pragma once

#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace nufft::obs {

/// Spans as a Chrome trace_event document: {"traceEvents":[...]}. Timestamps
/// are microseconds with ns precision retained in the fraction.
std::string chrome_trace_json(const std::vector<SpanEvent>& spans);

/// Snapshot as {"counters":{...},"gauges":{...},"histograms":{name:
/// {"count":..,"sum_ns":..,"buckets":[..]}}} with keys sorted.
std::string metrics_json(const MetricsSnapshot& snap);

/// Overwrite `path` with `content`. Returns false (and leaves any partial
/// file) on I/O failure — exporters are best-effort by design.
bool write_text_file(const std::string& path, const std::string& content);

}  // namespace nufft::obs
