// RAII span tracer with per-thread ring buffers.
//
// This is the one API behind every trace path in the repo: the scheduler's
// per-job events, the engine's job lifecycle, the per-phase breakdown of
// Nufft / BatchNufft applies and the plan-registry builds all record through
// record_span() / Span. drain_spans() collects everything for export as
// Chrome trace JSON (obs/export.hpp).
//
// Recording model:
//  * Span names and categories must be string literals (static storage) —
//    events store the pointer, never a copy.
//  * Each thread owns a fixed-capacity ring (kRingCapacity events). When the
//    ring wraps, the oldest events are overwritten and counted in
//    dropped_spans() — tracing never blocks or allocates on the hot path
//    after a thread's first span.
//  * A ring is guarded by its own mutex so drain_spans() can run while
//    workers are still recording; the owning thread's lock is uncontended in
//    steady state, which keeps the per-span cost at ~a timestamp plus a
//    handful of stores.
//  * When tracing is off (obs::trace_enabled() false) constructing a Span
//    costs one relaxed atomic load; nothing is recorded.
#pragma once

#include <cstdint>
#include <vector>

#include "common/timer.hpp"
#include "obs/obs.hpp"

namespace nufft::obs {

struct SpanEvent {
  const char* name;  // static-storage strings only
  const char* cat;
  std::uint64_t t0_ns;
  std::uint64_t t1_ns;
  std::uint32_t tid;     // dense per-process thread id (see thread_id())
  std::int64_t arg;      // optional payload (task id, batch width); -1 = none
};

/// Dense id of the calling thread, assigned on first use. Stable for the
/// thread's lifetime; exported as the "tid" of its spans.
std::uint32_t thread_id();

/// Append a completed span to the calling thread's ring.
void record_span(const char* name, const char* cat, std::uint64_t t0_ns, std::uint64_t t1_ns,
                 std::int64_t arg = -1);

/// Collect every thread's buffered spans (oldest first per thread) and clear
/// the rings. Safe to call while other threads keep recording.
std::vector<SpanEvent> drain_spans();

/// Spans overwritten by ring wrap-around since the last drain/reset.
std::uint64_t dropped_spans();

/// Drop all buffered spans and zero the dropped counter (tests).
void reset_spans();

/// RAII span: times from construction to destruction when tracing is on.
class Span {
 public:
  explicit Span(const char* name, const char* cat = "nufft", std::int64_t arg = -1)
      : name_(name), cat_(cat), arg_(arg), t0_(trace_enabled() ? now_ns() : 0) {}
  ~Span() {
    if (t0_ != 0) record_span(name_, cat_, t0_, now_ns(), arg_);
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  const char* cat_;
  std::int64_t arg_;
  std::uint64_t t0_;  // 0: tracing was off at construction
};

}  // namespace nufft::obs
