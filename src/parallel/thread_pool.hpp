// Persistent worker-thread pool.
//
// The pool provides two primitives:
//   * run_on_all(fn)  — every execution context (caller thread + workers)
//     runs fn(tid) exactly once; used by the TDG scheduler, whose contexts
//     pull tasks from a shared queue until the graph drains.
//   * parallel_for    — dynamically chunked loop parallelism; used for the
//     forward (gather) convolution, batched FFT rows, and point-wise scaling.
//
// The caller's thread is execution context 0, so a pool of size T uses
// exactly T OS threads (T-1 workers), matching how the paper counts cores.
//
// Nesting: a run_on_all (or any helper built on it) issued while the pool is
// already executing a job — from inside a job body, or from a second thread —
// degrades to serial execution on the caller instead of deadlocking or
// asserting. Parallel preprocessing relies on this: a plan built from inside
// another pool's worker still completes, just without extra parallelism.
//
// Determinism building blocks for the preprocessing pipeline
// (core/preprocess.cpp): for_static_chunks() decomposes an index range into
// chunks that depend only on (n, nchunks) — never on the pool width or on
// scheduling — and column_exclusive_scan() turns per-chunk counts into
// per-chunk write cursors, so a chunked stable counting sort reproduces the
// serial sort bit-for-bit at any thread count.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.hpp"

namespace nufft {

class ThreadPool {
 public:
  /// Create a pool with `nthreads` execution contexts (>= 1).
  explicit ThreadPool(int nthreads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of execution contexts (including the caller's thread).
  int size() const { return nthreads_; }

  /// Run fn(tid) once on every context, tid in [0, size()). Blocks until all
  /// contexts finish. Nested or concurrent invocations degrade to running
  /// fn(0) serially on the caller (see the header comment).
  void run_on_all(const std::function<void(int)>& fn);

  /// Dynamically scheduled parallel loop: fn(begin, end) over chunks of
  /// [0, n). `chunk` bounds the work grabbed per steal.
  void parallel_for(index_t n, index_t chunk, const std::function<void(index_t, index_t)>& fn);

  /// Convenience: parallel loop with a heuristic chunk size.
  void parallel_for(index_t n, const std::function<void(index_t, index_t)>& fn);

  /// As parallel_for, but hands the execution-context id to the body so
  /// callers can keep per-thread scratch (e.g. FFT row buffers).
  void parallel_for_tid(index_t n, index_t chunk,
                        const std::function<void(int, index_t, index_t)>& fn);

  /// Deterministic static decomposition: split [0, n) into `nchunks` equal
  /// contiguous chunks (chunk c spans [c·n/nchunks, (c+1)·n/nchunks)) and run
  /// fn(chunk, begin, end) once per non-empty chunk, chunks dynamically
  /// assigned to contexts. The decomposition depends only on (n, nchunks), so
  /// per-chunk partial results (histograms, counting-sort cursors) are
  /// bit-identical at any pool width.
  void for_static_chunks(index_t n, int nchunks,
                         const std::function<void(int, index_t, index_t)>& fn);

  /// Column-wise exclusive scan, parallel over columns, of the row-major
  /// [nchunks × ncols] count matrix `m`, seeded by base: on return
  ///   m[c·ncols + j] = base[j] + Σ_{c' < c} old m[c'·ncols + j].
  /// Turns for_static_chunks() per-chunk counts into exact per-chunk write
  /// cursors for a stable parallel scatter.
  void column_exclusive_scan(std::vector<index_t>& m, int nchunks, index_t ncols,
                             const index_t* base);

  /// Process-wide pool sized from NUFFT_THREADS / hardware_concurrency.
  /// Intended for library entry points that were not handed a pool.
  static ThreadPool& global();

 private:
  void worker_loop(int tid);

  int nthreads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const std::function<void(int)>* job_ = nullptr;
  std::uint64_t generation_ = 0;
  int remaining_ = 0;
  bool shutdown_ = false;
  bool in_job_ = false;
};

}  // namespace nufft
