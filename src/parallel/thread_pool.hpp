// Persistent worker-thread pool.
//
// The pool provides two primitives:
//   * run_on_all(fn)  — every execution context (caller thread + workers)
//     runs fn(tid) exactly once; used by the TDG scheduler, whose contexts
//     pull tasks from a shared queue until the graph drains.
//   * parallel_for    — dynamically chunked loop parallelism; used for the
//     forward (gather) convolution, batched FFT rows, and point-wise scaling.
//
// The caller's thread is execution context 0, so a pool of size T uses
// exactly T OS threads (T-1 workers), matching how the paper counts cores.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/types.hpp"

namespace nufft {

class ThreadPool {
 public:
  /// Create a pool with `nthreads` execution contexts (>= 1).
  explicit ThreadPool(int nthreads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of execution contexts (including the caller's thread).
  int size() const { return nthreads_; }

  /// Run fn(tid) once on every context, tid in [0, size()). Blocks until all
  /// contexts finish. Must not be called re-entrantly from inside a job.
  void run_on_all(const std::function<void(int)>& fn);

  /// Dynamically scheduled parallel loop: fn(begin, end) over chunks of
  /// [0, n). `chunk` bounds the work grabbed per steal.
  void parallel_for(index_t n, index_t chunk, const std::function<void(index_t, index_t)>& fn);

  /// Convenience: parallel loop with a heuristic chunk size.
  void parallel_for(index_t n, const std::function<void(index_t, index_t)>& fn);

  /// As parallel_for, but hands the execution-context id to the body so
  /// callers can keep per-thread scratch (e.g. FFT row buffers).
  void parallel_for_tid(index_t n, index_t chunk,
                        const std::function<void(int, index_t, index_t)>& fn);

  /// Process-wide pool sized from NUFFT_THREADS / hardware_concurrency.
  /// Intended for library entry points that were not handed a pool.
  static ThreadPool& global();

 private:
  void worker_loop(int tid);

  int nthreads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  const std::function<void(int)>* job_ = nullptr;
  std::uint64_t generation_ = 0;
  int remaining_ = 0;
  bool shutdown_ = false;
  bool in_job_ = false;
};

}  // namespace nufft
