// Binary-reflected Gray code helpers for the task-turn ordering
// (paper §III-B2, using Savage's survey [31] codes).
#pragma once

namespace nufft {

/// k-th binary-reflected Gray code: 0,1,3,2,6,7,5,4 for 3 bits.
constexpr unsigned gray_code(unsigned k) { return k ^ (k >> 1); }

/// Position of Gray code g in the sequence (inverse of gray_code).
constexpr unsigned gray_rank(unsigned g) {
  unsigned k = 0;
  for (unsigned shift = 1; shift < 32; shift <<= 1) g ^= g >> shift;
  k = g;
  return k;
}

/// The single bit index that flips between gray_code(k-1) and gray_code(k).
constexpr int gray_flip_bit(unsigned k) {
  const unsigned diff = gray_code(k) ^ gray_code(k - 1);
  int b = 0;
  unsigned v = diff;
  while ((v >>= 1) != 0) ++b;
  return b;
}

}  // namespace nufft
