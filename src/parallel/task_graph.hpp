// Task dependency graph over grid partitions (paper §III-B2, Fig. 6).
//
// Each partition of the grid is one task. A task's *turn* joins the least
// significant bit of its partition index in each dimension; there are 2^d
// turns, ordered by the binary-reflected Gray code. A task with Gray rank
// r > 0 depends on its two neighbours along the dimension whose parity bit
// flips between Gray ranks r-1 and r — those neighbours are exactly the
// adjacent tasks with the previous turn. This yields:
//
//   * at most 2 predecessor and 2 successor edges per task (tiny TDG);
//   * a DAG (edges strictly increase Gray rank), so no deadlock;
//   * transitive serialization of every pair of spatially adjacent tasks,
//     which is the adjoint-convolution mutual-exclusion requirement;
//   * no global barrier: a task becomes ready the moment its own
//     predecessors finish.
//
// Neighbour indices wrap modulo the per-dimension partition count because
// the spectrum is periodic; the partitioner guarantees even counts so
// same-turn tasks are always >= 2 partitions apart even across the seam.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "parallel/partitioner.hpp"

namespace nufft {

struct TaskNode {
  std::array<int, 3> pcoord{0, 0, 0};  // partition index per dimension
  int turn = 0;                        // parity bits, bit d = pcoord[d] & 1
  int gray_rank = 0;                   // position of `turn` in the Gray sequence
  // Distinct predecessor / successor task ids (-1 = unused slot).
  std::array<std::int32_t, 2> preds{-1, -1};
  std::array<std::int32_t, 2> succs{-1, -1};
  int num_preds = 0;
  int num_succs = 0;
};

class TaskGraph {
 public:
  /// Build the TDG for a partition layout.
  explicit TaskGraph(const PartitionLayout& layout);

  int size() const { return static_cast<int>(nodes_.size()); }
  const TaskNode& node(int id) const { return nodes_[static_cast<std::size_t>(id)]; }
  const std::vector<TaskNode>& nodes() const { return nodes_; }

  /// Tasks with Gray rank 0 — ready before anything has run.
  const std::vector<std::int32_t>& roots() const { return roots_; }

  /// True when tasks a and b may write to overlapping grid regions, i.e.
  /// their partition coordinates differ by at most 1 (mod the per-dimension
  /// partition count) in every dimension. Used by tests and assertions.
  bool adjacent(int a, int b) const;

 private:
  PartitionLayout layout_;
  std::vector<TaskNode> nodes_;
  std::vector<std::int32_t> roots_;
};

}  // namespace nufft
