// Task-queue scheduler for the adjoint convolution
// (paper §III-B2 "Task Queue Scheduling", §III-B3 "Priority Queue",
//  §III-B4 "Selective Privatization with Reduction").
//
// Execution model:
//   * Every TDG node owns one unit of grid-exclusive work. For a normal
//     task that is the convolution of its samples; for a *privatized* task
//     it is only the cheap reduction (merge of the task's private buffer
//     into the global grid) — the expensive private convolution runs as a
//     dependency-free job that can start immediately.
//   * A node becomes ready when its TDG predecessors have completed and,
//     if privatized, its private convolution has finished.
//   * Ready jobs sit in a priority queue ordered by sample count, so long
//     tasks start as early as possible (Fig. 12 group C); a FIFO queue is
//     available as the ablation baseline (group B).
//
// The scheduler is workload-agnostic: callers supply the convolve /
// private-convolve / reduce bodies. An optional trace records
// (job, context, start, end) for the mutual-exclusion tests and the
// load-balance statistics.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "parallel/task_graph.hpp"
#include "parallel/thread_pool.hpp"

namespace nufft {

enum class JobPhase : int {
  kConvolve = 0,         // normal task: convolve samples into the global grid
  kPrivateConvolve = 1,  // privatized task: convolve into the private buffer
  kReduce = 2,           // privatized task: merge private buffer into the grid
};

struct TraceEvent {
  std::int32_t task;
  JobPhase phase;
  int tid;
  std::uint64_t t0_ns;
  std::uint64_t t1_ns;
};

struct SchedulerConfig {
  bool priority_queue = true;  // false: FIFO (Fig. 12 ablation)
  bool record_trace = false;
};

struct SchedulerStats {
  int tasks = 0;
  int privatized_tasks = 0;
  std::vector<std::uint64_t> busy_ns_per_context;
  std::vector<TraceEvent> trace;  // populated when record_trace
};

/// Execute one pass of the TDG.
///   weights[t]     — priority of task t (its sample count)
///   privatized[t]  — nonzero when task t uses selective privatization
///   body(t, tid, phase) — performs the work of `phase` for task t on
///                         execution context tid
/// Blocks until every node has completed. Returns scheduling statistics.
SchedulerStats run_task_graph(const TaskGraph& graph, const std::vector<index_t>& weights,
                              const std::vector<char>& privatized, ThreadPool& pool,
                              const std::function<void(int, int, JobPhase)>& body,
                              const SchedulerConfig& cfg = {});

/// Ablation baseline (paper §III-B2, contrasting Zhang et al. [30]):
/// execute the same task set color-by-color — tasks of equal turn run in
/// parallel, with a barrier between turns in Gray-code order. Privatization
/// is not used; every task runs as JobPhase::kConvolve.
SchedulerStats run_task_graph_colored(const TaskGraph& graph,
                                      const std::vector<index_t>& weights, ThreadPool& pool,
                                      const std::function<void(int, int, JobPhase)>& body);

}  // namespace nufft
