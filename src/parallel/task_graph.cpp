#include "parallel/task_graph.hpp"

#include <algorithm>
#include <cstdlib>

#include "common/error.hpp"
#include "parallel/gray.hpp"

namespace nufft {

namespace {

// Append `id` to a 2-slot edge list, ignoring duplicates.
void add_edge(std::array<std::int32_t, 2>& slots, int& n, std::int32_t id) {
  if (id < 0) return;
  for (int i = 0; i < n; ++i) {
    if (slots[static_cast<std::size_t>(i)] == id) return;
  }
  NUFFT_CHECK(n < 2);
  slots[static_cast<std::size_t>(n++)] = id;
}

}  // namespace

TaskGraph::TaskGraph(const PartitionLayout& layout) : layout_(layout) {
  const int dim = layout.dim;
  const int total = layout.total_parts();
  nodes_.resize(static_cast<std::size_t>(total));

  // Turn bits are taken only over "active" dimensions (partition count > 1):
  // a single-partition dimension has no parallelism and must not occupy a
  // bit, or the Gray chain would wait on turns that can never exist.
  std::array<int, 3> active{};
  int n_active = 0;
  for (int d = 0; d < dim; ++d) {
    if (layout.num_parts[static_cast<std::size_t>(d)] > 1) active[static_cast<std::size_t>(n_active++)] = d;
  }

  // Enumerate partition coordinates in row-major order (dim 0 slowest) —
  // identical to PartitionLayout::flatten.
  std::array<int, 3> pc{0, 0, 0};
  for (int id = 0; id < total; ++id) {
    TaskNode& node = nodes_[static_cast<std::size_t>(id)];
    node.pcoord = pc;
    int turn = 0;
    for (int b = 0; b < n_active; ++b) {
      turn |= (pc[static_cast<std::size_t>(active[static_cast<std::size_t>(b)])] & 1) << b;
    }
    node.turn = turn;
    node.gray_rank = static_cast<int>(gray_rank(static_cast<unsigned>(turn)));

    // Advance the coordinate counter (last dimension fastest).
    for (int d = dim - 1; d >= 0; --d) {
      auto& c = pc[static_cast<std::size_t>(d)];
      if (++c < layout.num_parts[static_cast<std::size_t>(d)]) break;
      c = 0;
    }
  }

  // A task with Gray rank r depends on its two neighbours along the
  // dimension whose turn bit flips between ranks r-1 and r. Neighbours wrap
  // modulo the partition count (periodic spectrum).
  for (int id = 0; id < total; ++id) {
    TaskNode& node = nodes_[static_cast<std::size_t>(id)];
    if (node.gray_rank == 0) {
      roots_.push_back(id);
      continue;
    }
    const int flip_bit = gray_flip_bit(static_cast<unsigned>(node.gray_rank));
    const int flip_dim = active[static_cast<std::size_t>(flip_bit)];
    const int parts = layout.num_parts[static_cast<std::size_t>(flip_dim)];
    for (const int step : {-1, +1}) {
      std::array<int, 3> npc = node.pcoord;
      auto& c = npc[static_cast<std::size_t>(flip_dim)];
      c = (c + step + parts) % parts;
      const int nid = layout.flatten(npc);
      add_edge(node.preds, node.num_preds, nid);
      TaskNode& pred = nodes_[static_cast<std::size_t>(nid)];
      NUFFT_CHECK(pred.gray_rank == node.gray_rank - 1);
      add_edge(pred.succs, pred.num_succs, id);
    }
  }
}

bool TaskGraph::adjacent(int a, int b) const {
  if (a == b) return true;
  const TaskNode& na = nodes_[static_cast<std::size_t>(a)];
  const TaskNode& nb = nodes_[static_cast<std::size_t>(b)];
  for (int d = 0; d < layout_.dim; ++d) {
    const int parts = layout_.num_parts[static_cast<std::size_t>(d)];
    const int diff = std::abs(na.pcoord[static_cast<std::size_t>(d)] -
                              nb.pcoord[static_cast<std::size_t>(d)]);
    const int wrapped = std::min(diff, parts - diff);
    if (wrapped > 1) return false;
  }
  return true;
}

}  // namespace nufft
