// Geometric data partitioning of the oversampled Cartesian grid
// (paper §III-B1, Fig. 4/5).
//
// The grid is cut into a d-dimensional lattice of axis-aligned boxes; each
// box becomes one task that owns the samples falling inside it. Two layouts
// are supported:
//
//  * variable width (the paper's scheme): per-dimension cumulative sample
//    histograms drive partition boundaries so every partition holds roughly
//    the per-partition average sample count, never narrower than 2W+1;
//  * fixed width (the baseline of Fig. 11): equal-width cuts.
//
// Both layouts force the partition count per dimension to be even (or
// exactly 1). The paper's Gray-code scheduling relies on same-turn tasks
// never conflicting; with the spectrum being periodic, an odd partition
// count would make the first and last partition of a dimension adjacent
// *and* same-parity across the wrap seam, breaking that invariant.
#pragma once

#include <array>
#include <vector>

#include "common/types.hpp"

namespace nufft {

class ThreadPool;

struct PartitionLayout {
  int dim = 0;
  /// bounds[d] has num_parts[d] + 1 entries; partition p spans
  /// [bounds[d][p], bounds[d][p+1]).
  std::array<std::vector<index_t>, 3> bounds;
  std::array<int, 3> num_parts{1, 1, 1};

  int total_parts() const {
    int t = 1;
    for (int d = 0; d < dim; ++d) t *= num_parts[d];
    return t;
  }
  /// Partition index along dimension d containing coordinate x.
  int locate(int d, float x) const;
  /// Flatten per-dimension partition coordinates (row-major, dim 0 slowest).
  int flatten(const std::array<int, 3>& pc) const;
};

/// Per-dimension cumulative histogram: hist(i) = number of samples with
/// coordinate < i. Bin granularity is one grid cell. When a pool is supplied
/// the count runs as per-chunk partial histograms merged by a prefix scan;
/// the result is bit-identical to the serial count at any pool width
/// (integer sums in a fixed merge order).
std::vector<index_t> cumulative_histogram(const float* coords, index_t count, index_t extent,
                                          ThreadPool* pool = nullptr);

/// Variable-width layout (Fig. 5). `target_parts` is the desired partition
/// count P per dimension; `min_width` must be >= 2W+1.
/// `extent[d]` is the grid size M along dimension d. The optional pool
/// parallelizes the per-dimension histograms (boundary placement itself is a
/// cheap serial walk of the cumulative counts).
PartitionLayout make_variable_layout(int dim, const std::array<index_t, 3>& extent,
                                     const std::array<const float*, 3>& coords, index_t count,
                                     int target_parts, index_t min_width,
                                     ThreadPool* pool = nullptr);

/// Variable-width boundary placement from precomputed cumulative histograms
/// (hists[d] must equal cumulative_histogram(coords[d], count, extent[d])).
/// make_variable_layout delegates here; the delta-update path
/// (core/preprocess update_preprocessed) re-runs the identical walk on
/// incrementally patched counts to decide whether a trajectory change moved
/// any partition boundary — the two entry points must stay one algorithm.
PartitionLayout make_variable_layout_from_hists(int dim, const std::array<index_t, 3>& extent,
                                                const std::array<std::vector<index_t>, 3>& hists,
                                                index_t count, int target_parts,
                                                index_t min_width);

/// Fixed-width layout: equal cuts of width max(min_width, extent/target).
PartitionLayout make_fixed_layout(int dim, const std::array<index_t, 3>& extent,
                                  int target_parts, index_t min_width);

}  // namespace nufft
