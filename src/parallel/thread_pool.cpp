#include "parallel/thread_pool.hpp"

#include <algorithm>

#include "common/env.hpp"
#include "common/error.hpp"

namespace nufft {

ThreadPool::ThreadPool(int nthreads) : nthreads_(std::max(1, nthreads)) {
  workers_.reserve(static_cast<std::size_t>(nthreads_ - 1));
  for (int tid = 1; tid < nthreads_; ++tid) {
    workers_.emplace_back([this, tid] { worker_loop(tid); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::run_on_all(const std::function<void(int)>& fn) {
  if (nthreads_ == 1) {
    fn(0);
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (in_job_) {
      // Nested (from inside a job body) or concurrent invocation: the workers
      // are already owned by another job, so degrade to serial on the caller.
      lock.unlock();
      fn(0);
      return;
    }
    in_job_ = true;
    job_ = &fn;
    remaining_ = nthreads_ - 1;
    ++generation_;
  }
  cv_start_.notify_all();
  fn(0);  // The caller participates as context 0.
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [this] { return remaining_ == 0; });
  job_ = nullptr;
  in_job_ = false;
}

void ThreadPool::worker_loop(int tid) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(int)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_start_.wait(lock, [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
      job = job_;
    }
    (*job)(tid);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--remaining_ == 0) cv_done_.notify_one();
    }
  }
}

void ThreadPool::parallel_for(index_t n, index_t chunk,
                              const std::function<void(index_t, index_t)>& fn) {
  if (n <= 0) return;
  NUFFT_CHECK(chunk > 0);
  if (nthreads_ == 1 || n <= chunk) {
    fn(0, n);
    return;
  }
  std::atomic<index_t> next{0};
  run_on_all([&](int) {
    for (;;) {
      const index_t begin = next.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= n) break;
      fn(begin, std::min(begin + chunk, n));
    }
  });
}

void ThreadPool::parallel_for_tid(index_t n, index_t chunk,
                                  const std::function<void(int, index_t, index_t)>& fn) {
  if (n <= 0) return;
  NUFFT_CHECK(chunk > 0);
  if (nthreads_ == 1 || n <= chunk) {
    fn(0, 0, n);
    return;
  }
  std::atomic<index_t> next{0};
  run_on_all([&](int tid) {
    for (;;) {
      const index_t begin = next.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= n) break;
      fn(tid, begin, std::min(begin + chunk, n));
    }
  });
}

void ThreadPool::for_static_chunks(index_t n, int nchunks,
                                   const std::function<void(int, index_t, index_t)>& fn) {
  if (n <= 0) return;
  NUFFT_CHECK(nchunks >= 1);
  const auto bound = [n, nchunks](int c) {
    return static_cast<index_t>(static_cast<std::int64_t>(n) * c / nchunks);
  };
  if (nthreads_ == 1 || nchunks == 1) {
    for (int c = 0; c < nchunks; ++c) {
      const index_t begin = bound(c);
      const index_t end = bound(c + 1);
      if (begin < end) fn(c, begin, end);
    }
    return;
  }
  std::atomic<int> next{0};
  run_on_all([&](int) {
    for (;;) {
      const int c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= nchunks) break;
      const index_t begin = bound(c);
      const index_t end = bound(c + 1);
      if (begin < end) fn(c, begin, end);
    }
  });
}

void ThreadPool::column_exclusive_scan(std::vector<index_t>& m, int nchunks, index_t ncols,
                                       const index_t* base) {
  NUFFT_CHECK(nchunks >= 1 && ncols >= 0);
  NUFFT_CHECK(static_cast<index_t>(m.size()) >= static_cast<index_t>(nchunks) * ncols);
  parallel_for(ncols, std::max<index_t>(1, ncols / (static_cast<index_t>(nthreads_) * 8)),
               [&](index_t begin, index_t end) {
                 for (index_t j = begin; j < end; ++j) {
                   index_t running = base[j];
                   for (int c = 0; c < nchunks; ++c) {
                     auto& cell = m[static_cast<std::size_t>(c) * static_cast<std::size_t>(ncols) +
                                    static_cast<std::size_t>(j)];
                     const index_t v = cell;
                     cell = running;
                     running += v;
                   }
                 }
               });
}

void ThreadPool::parallel_for(index_t n, const std::function<void(index_t, index_t)>& fn) {
  // ~8 chunks per context keeps dynamic scheduling cheap yet balanced.
  const index_t chunk = std::max<index_t>(1, n / (static_cast<index_t>(nthreads_) * 8));
  parallel_for(n, chunk, fn);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(bench_threads());
  return pool;
}

}  // namespace nufft
