#include "parallel/thread_pool.hpp"

#include <algorithm>

#include "common/env.hpp"
#include "common/error.hpp"

namespace nufft {

ThreadPool::ThreadPool(int nthreads) : nthreads_(std::max(1, nthreads)) {
  workers_.reserve(static_cast<std::size_t>(nthreads_ - 1));
  for (int tid = 1; tid < nthreads_; ++tid) {
    workers_.emplace_back([this, tid] { worker_loop(tid); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_start_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::run_on_all(const std::function<void(int)>& fn) {
  if (nthreads_ == 1) {
    fn(0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    NUFFT_CHECK_MSG(!in_job_, "ThreadPool::run_on_all must not be nested");
    in_job_ = true;
    job_ = &fn;
    remaining_ = nthreads_ - 1;
    ++generation_;
  }
  cv_start_.notify_all();
  fn(0);  // The caller participates as context 0.
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [this] { return remaining_ == 0; });
  job_ = nullptr;
  in_job_ = false;
}

void ThreadPool::worker_loop(int tid) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(int)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_start_.wait(lock, [&] { return shutdown_ || generation_ != seen; });
      if (shutdown_) return;
      seen = generation_;
      job = job_;
    }
    (*job)(tid);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--remaining_ == 0) cv_done_.notify_one();
    }
  }
}

void ThreadPool::parallel_for(index_t n, index_t chunk,
                              const std::function<void(index_t, index_t)>& fn) {
  if (n <= 0) return;
  NUFFT_CHECK(chunk > 0);
  if (nthreads_ == 1 || n <= chunk) {
    fn(0, n);
    return;
  }
  std::atomic<index_t> next{0};
  run_on_all([&](int) {
    for (;;) {
      const index_t begin = next.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= n) break;
      fn(begin, std::min(begin + chunk, n));
    }
  });
}

void ThreadPool::parallel_for_tid(index_t n, index_t chunk,
                                  const std::function<void(int, index_t, index_t)>& fn) {
  if (n <= 0) return;
  NUFFT_CHECK(chunk > 0);
  if (nthreads_ == 1 || n <= chunk) {
    fn(0, 0, n);
    return;
  }
  std::atomic<index_t> next{0};
  run_on_all([&](int tid) {
    for (;;) {
      const index_t begin = next.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= n) break;
      fn(tid, begin, std::min(begin + chunk, n));
    }
  });
}

void ThreadPool::parallel_for(index_t n, const std::function<void(index_t, index_t)>& fn) {
  // ~8 chunks per context keeps dynamic scheduling cheap yet balanced.
  const index_t chunk = std::max<index_t>(1, n / (static_cast<index_t>(nthreads_) * 8));
  parallel_for(n, chunk, fn);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(bench_threads());
  return pool;
}

}  // namespace nufft
