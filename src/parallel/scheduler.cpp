#include "parallel/scheduler.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <queue>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace nufft {

namespace {

// Span names / metric counters per JobPhase, indexed by the enum value.
constexpr const char* kPhaseSpanName[3] = {"sched.convolve", "sched.private_convolve",
                                           "sched.reduce"};
constexpr const char* kPhaseNsCounter[3] = {"sched.convolve_ns", "sched.private_convolve_ns",
                                            "sched.reduce_ns"};

// Per-walk metric handles, resolved once so the per-job cost is a relaxed
// atomic add (MetricsRegistry references stay valid forever).
struct WalkMetrics {
  obs::Counter* phase_ns[3] = {nullptr, nullptr, nullptr};
  obs::Histogram* job_ns = nullptr;

  explicit WalkMetrics(int ntasks) {
    if (!obs::metrics_enabled()) return;
    auto& mr = obs::MetricsRegistry::instance();
    for (int p = 0; p < 3; ++p) phase_ns[p] = &mr.counter(kPhaseNsCounter[p]);
    job_ns = &mr.histogram("sched.job_ns");
    mr.counter("sched.walks").add(1);
    mr.counter("sched.tasks").add(static_cast<std::uint64_t>(ntasks));
  }

  void record(JobPhase phase, std::uint64_t dur_ns) const {
    const auto p = static_cast<std::size_t>(phase);
    if (phase_ns[p] != nullptr) {
      phase_ns[p]->add(dur_ns);
      job_ns->record(dur_ns);
    }
  }
};

struct Job {
  std::int32_t task;
  JobPhase phase;
  index_t weight;
};

struct JobLess {
  bool operator()(const Job& a, const Job& b) const {
    if (a.weight != b.weight) return a.weight < b.weight;
    return a.task > b.task;  // deterministic tie-break
  }
};

// Ready-job queue: binary heap (priority mode) or FIFO, guarded by one
// mutex. The adjoint TDG produces at most a few jobs per completion, so a
// single lock is not a bottleneck at the task granularities the partitioner
// produces (hundreds of samples per task).
class ReadyQueue {
 public:
  explicit ReadyQueue(bool priority) : priority_(priority) {}

  void push(Job j) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (priority_) {
        heap_.push(j);
      } else {
        fifo_.push_back(j);
      }
    }
    cv_.notify_one();
  }

  /// Blocks until a job is available or `stop()` was called.
  /// Returns false on stop with an empty queue.
  bool pop(Job& out) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return stopped_ || !empty_locked(); });
    if (empty_locked()) return false;
    if (priority_) {
      out = heap_.top();
      heap_.pop();
    } else {
      out = fifo_.front();
      fifo_.pop_front();
    }
    return true;
  }

  void stop() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopped_ = true;
    }
    cv_.notify_all();
  }

 private:
  bool empty_locked() const { return priority_ ? heap_.empty() : fifo_.empty(); }

  bool priority_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::priority_queue<Job, std::vector<Job>, JobLess> heap_;
  std::deque<Job> fifo_;
  bool stopped_ = false;
};

}  // namespace

SchedulerStats run_task_graph(const TaskGraph& graph, const std::vector<index_t>& weights,
                              const std::vector<char>& privatized, ThreadPool& pool,
                              const std::function<void(int, int, JobPhase)>& body,
                              const SchedulerConfig& cfg) {
  const int n = graph.size();
  NUFFT_CHECK(static_cast<int>(weights.size()) == n);
  NUFFT_CHECK(static_cast<int>(privatized.size()) == n);

  SchedulerStats stats;
  stats.tasks = n;
  stats.busy_ns_per_context.assign(static_cast<std::size_t>(pool.size()), 0);
  if (n == 0) return stats;

  // pending[t] = TDG predecessors + 1 if the private convolution must also
  // finish before the node's grid-exclusive work may run.
  std::vector<std::atomic<int>> pending(static_cast<std::size_t>(n));
  for (int t = 0; t < n; ++t) {
    const int extra = privatized[static_cast<std::size_t>(t)] ? 1 : 0;
    pending[static_cast<std::size_t>(t)].store(graph.node(t).num_preds + extra,
                                               std::memory_order_relaxed);
    if (extra) ++stats.privatized_tasks;
  }

  ReadyQueue queue(cfg.priority_queue);
  std::atomic<int> completed{0};  // TDG nodes whose grid-exclusive work is done

  // Grid-exclusive phase of a node: convolve for normal tasks, reduce for
  // privatized ones.
  auto node_phase = [&](int t) {
    return privatized[static_cast<std::size_t>(t)] ? JobPhase::kReduce : JobPhase::kConvolve;
  };
  auto push_node = [&](int t) {
    queue.push(Job{t, node_phase(t), weights[static_cast<std::size_t>(t)]});
  };

  // Seed: private convolutions are dependency-free; TDG roots whose pending
  // count is already zero can start their grid-exclusive work directly.
  for (int t = 0; t < n; ++t) {
    if (privatized[static_cast<std::size_t>(t)]) {
      queue.push(Job{t, JobPhase::kPrivateConvolve, weights[static_cast<std::size_t>(t)]});
    }
  }
  for (const std::int32_t t : graph.roots()) {
    if (pending[static_cast<std::size_t>(t)].load(std::memory_order_relaxed) == 0) push_node(t);
  }

  std::mutex trace_mu;
  const WalkMetrics metrics(n);
  const bool spans = obs::trace_enabled();

  pool.run_on_all([&](int tid) {
    Job job;
    while (queue.pop(job)) {
      const std::uint64_t t0 = now_ns();
      body(job.task, tid, job.phase);
      const std::uint64_t t1 = now_ns();
      stats.busy_ns_per_context[static_cast<std::size_t>(tid)] += t1 - t0;
      metrics.record(job.phase, t1 - t0);
      if (spans) {
        obs::record_span(kPhaseSpanName[static_cast<std::size_t>(job.phase)], "sched", t0, t1,
                         job.task);
      }
      if (cfg.record_trace) {
        std::lock_guard<std::mutex> lock(trace_mu);
        stats.trace.push_back(TraceEvent{job.task, job.phase, tid, t0, t1});
      }

      if (job.phase == JobPhase::kPrivateConvolve) {
        // Releases the node's own +1; the reduction may now be pending only
        // on TDG predecessors.
        if (pending[static_cast<std::size_t>(job.task)].fetch_sub(1, std::memory_order_acq_rel) == 1) {
          push_node(job.task);
        }
        continue;
      }

      // Grid-exclusive work of `job.task` finished: release successors.
      const TaskNode& node = graph.node(job.task);
      for (int i = 0; i < node.num_succs; ++i) {
        const std::int32_t s = node.succs[static_cast<std::size_t>(i)];
        if (pending[static_cast<std::size_t>(s)].fetch_sub(1, std::memory_order_acq_rel) == 1) {
          push_node(s);
        }
      }
      if (completed.fetch_add(1, std::memory_order_acq_rel) + 1 == n) queue.stop();
    }
  });

  NUFFT_CHECK_MSG(completed.load() == n, "task graph did not drain");
  return stats;
}

SchedulerStats run_task_graph_colored(const TaskGraph& graph,
                                      const std::vector<index_t>& weights, ThreadPool& pool,
                                      const std::function<void(int, int, JobPhase)>& body) {
  const int n = graph.size();
  NUFFT_CHECK(static_cast<int>(weights.size()) == n);
  SchedulerStats stats;
  stats.tasks = n;
  stats.busy_ns_per_context.assign(static_cast<std::size_t>(pool.size()), 0);
  if (n == 0) return stats;

  int max_rank = 0;
  for (int t = 0; t < n; ++t) max_rank = std::max(max_rank, graph.node(t).gray_rank);
  std::vector<std::vector<std::int32_t>> by_rank(static_cast<std::size_t>(max_rank) + 1);
  for (int t = 0; t < n; ++t) {
    by_rank[static_cast<std::size_t>(graph.node(t).gray_rank)].push_back(t);
  }
  // Large tasks first within a color — the closest analogue of the priority
  // queue the barrier model allows.
  for (auto& group : by_rank) {
    std::sort(group.begin(), group.end(), [&](std::int32_t a, std::int32_t b) {
      return weights[static_cast<std::size_t>(a)] > weights[static_cast<std::size_t>(b)];
    });
  }

  const WalkMetrics metrics(n);
  const bool spans = obs::trace_enabled();
  for (const auto& group : by_rank) {
    // parallel_for returns only when the whole color finished: the barrier.
    pool.parallel_for_tid(static_cast<index_t>(group.size()), 1,
                          [&](int tid, index_t b, index_t e) {
                            for (index_t i = b; i < e; ++i) {
                              const std::int32_t task = group[static_cast<std::size_t>(i)];
                              const std::uint64_t t0 = now_ns();
                              body(task, tid, JobPhase::kConvolve);
                              const std::uint64_t t1 = now_ns();
                              stats.busy_ns_per_context[static_cast<std::size_t>(tid)] +=
                                  t1 - t0;
                              metrics.record(JobPhase::kConvolve, t1 - t0);
                              if (spans) {
                                obs::record_span("sched.convolve", "sched", t0, t1, task);
                              }
                            }
                          });
  }
  return stats;
}

}  // namespace nufft
