#include "parallel/partitioner.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "parallel/thread_pool.hpp"

namespace nufft {

int PartitionLayout::locate(int d, float x) const {
  const auto& b = bounds[static_cast<std::size_t>(d)];
  // Partitions cover [0, M); clamp pathological coordinates into range.
  auto it = std::upper_bound(b.begin(), b.end(), static_cast<index_t>(x));
  int p = static_cast<int>(it - b.begin()) - 1;
  return std::clamp(p, 0, num_parts[static_cast<std::size_t>(d)] - 1);
}

int PartitionLayout::flatten(const std::array<int, 3>& pc) const {
  int idx = 0;
  for (int d = 0; d < dim; ++d) idx = idx * num_parts[static_cast<std::size_t>(d)] + pc[static_cast<std::size_t>(d)];
  return idx;
}

std::vector<index_t> cumulative_histogram(const float* coords, index_t count, index_t extent,
                                          ThreadPool* pool) {
  std::vector<index_t> hist(static_cast<std::size_t>(extent) + 1, 0);
  // Below this the chunked pass costs more in partial-histogram zeroing than
  // the count itself.
  constexpr index_t kParallelCutoff = 1 << 14;
  if (pool == nullptr || pool->size() == 1 || count < kParallelCutoff) {
    for (index_t i = 0; i < count; ++i) {
      auto cell = static_cast<index_t>(coords[i]);
      cell = std::clamp<index_t>(cell, 0, extent - 1);
      ++hist[static_cast<std::size_t>(cell) + 1];
    }
  } else {
    const int nchunks = static_cast<int>(std::min<index_t>(count, 4 * pool->size()));
    std::vector<index_t> partial(static_cast<std::size_t>(nchunks) * static_cast<std::size_t>(extent), 0);
    pool->for_static_chunks(count, nchunks, [&](int c, index_t begin, index_t end) {
      index_t* row = partial.data() + static_cast<std::size_t>(c) * static_cast<std::size_t>(extent);
      for (index_t i = begin; i < end; ++i) {
        auto cell = static_cast<index_t>(coords[i]);
        cell = std::clamp<index_t>(cell, 0, extent - 1);
        ++row[cell];
      }
    });
    // Merge in fixed chunk order (exact integer sums — bit-identical to the
    // serial count), parallel over cells.
    pool->parallel_for(extent, [&](index_t begin, index_t end) {
      for (index_t cell = begin; cell < end; ++cell) {
        index_t s = 0;
        for (int c = 0; c < nchunks; ++c) {
          s += partial[static_cast<std::size_t>(c) * static_cast<std::size_t>(extent) +
                       static_cast<std::size_t>(cell)];
        }
        hist[static_cast<std::size_t>(cell) + 1] = s;
      }
    });
  }
  for (std::size_t i = 1; i < hist.size(); ++i) hist[i] += hist[i - 1];
  return hist;
}

namespace {

// If a dimension ended up with an odd partition count > 1, merge the last
// two partitions. See the header comment on periodic wrap adjacency.
void force_even_count(std::vector<index_t>& bounds) {
  const std::size_t parts = bounds.size() - 1;
  if (parts > 1 && parts % 2 == 1) bounds.erase(bounds.end() - 2);
}

}  // namespace

PartitionLayout make_variable_layout(int dim, const std::array<index_t, 3>& extent,
                                     const std::array<const float*, 3>& coords, index_t count,
                                     int target_parts, index_t min_width, ThreadPool* pool) {
  NUFFT_CHECK(dim >= 1 && dim <= 3);
  std::array<std::vector<index_t>, 3> hists;
  for (int d = 0; d < dim; ++d) {
    hists[static_cast<std::size_t>(d)] =
        cumulative_histogram(coords[static_cast<std::size_t>(d)], count,
                             extent[static_cast<std::size_t>(d)], pool);
  }
  return make_variable_layout_from_hists(dim, extent, hists, count, target_parts, min_width);
}

PartitionLayout make_variable_layout_from_hists(int dim, const std::array<index_t, 3>& extent,
                                                const std::array<std::vector<index_t>, 3>& hists,
                                                index_t count, int target_parts,
                                                index_t min_width) {
  NUFFT_CHECK(dim >= 1 && dim <= 3);
  NUFFT_CHECK(target_parts >= 1);
  NUFFT_CHECK(min_width >= 1);
  PartitionLayout layout;
  layout.dim = dim;

  // Fig. 5: grow each partition from the minimum width until it holds at
  // least the per-partition average number of samples.
  const index_t avg = std::max<index_t>(1, count / target_parts);
  for (int d = 0; d < dim; ++d) {
    const index_t M = extent[static_cast<std::size_t>(d)];
    const auto& hist = hists[static_cast<std::size_t>(d)];
    NUFFT_CHECK(static_cast<index_t>(hist.size()) == M + 1);
    auto& b = layout.bounds[static_cast<std::size_t>(d)];
    b.push_back(0);
    index_t start = 0;
    while (start < M) {
      index_t end = std::min<index_t>(start + min_width, M);
      while (end < M &&
             hist[static_cast<std::size_t>(end)] - hist[static_cast<std::size_t>(start)] < avg) {
        ++end;
      }
      // Never leave a tail stub narrower than the minimum width.
      if (M - end < min_width) end = M;
      b.push_back(end);
      start = end;
    }
    force_even_count(b);
    layout.num_parts[static_cast<std::size_t>(d)] = static_cast<int>(b.size()) - 1;
  }
  return layout;
}

PartitionLayout make_fixed_layout(int dim, const std::array<index_t, 3>& extent,
                                  int target_parts, index_t min_width) {
  NUFFT_CHECK(dim >= 1 && dim <= 3);
  NUFFT_CHECK(target_parts >= 1);
  PartitionLayout layout;
  layout.dim = dim;
  for (int d = 0; d < dim; ++d) {
    const index_t M = extent[static_cast<std::size_t>(d)];
    const index_t width =
        std::max(min_width, (M + static_cast<index_t>(target_parts) - 1) / target_parts);
    auto& b = layout.bounds[static_cast<std::size_t>(d)];
    for (index_t x = 0; x < M; x += width) b.push_back(x);
    b.push_back(M);
    // Drop a tail stub narrower than min_width by merging it backwards.
    if (b.size() > 2 && b[b.size() - 1] - b[b.size() - 2] < min_width) b.erase(b.end() - 2);
    force_even_count(b);
    layout.num_parts[static_cast<std::size_t>(d)] = static_cast<int>(b.size()) - 1;
  }
  return layout;
}

}  // namespace nufft
