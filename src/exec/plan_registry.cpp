#include "exec/plan_registry.hpp"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <utility>

#include "core/plan_cache.hpp"

namespace nufft::exec {

namespace {

template <class T>
void append_pod(std::string& out, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  const char* p = reinterpret_cast<const char*>(&v);
  out.append(p, sizeof(T));
}

std::uint64_t fnv64(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

PlanRegistry::PlanRegistry(RegistryConfig cfg) : cfg_(std::move(cfg)) {}

std::string PlanRegistry::make_key(const GridDesc& g, const datasets::SampleSet& samples,
                                   const PlanConfig& cfg) {
  std::string key;
  key.reserve(128);
  append_pod(key, static_cast<std::int64_t>(g.dim));
  for (int d = 0; d < 3; ++d) {
    append_pod(key, static_cast<std::int64_t>(g.n[static_cast<std::size_t>(d)]));
    append_pod(key, static_cast<std::int64_t>(g.m[static_cast<std::size_t>(d)]));
  }
  append_pod(key, g.alpha);
  append_pod(key, datasets::content_hash(samples));
  append_pod(key, cfg.kernel_radius);
  append_pod(key, static_cast<std::int32_t>(cfg.kernel));
  append_pod(key, static_cast<std::int32_t>(cfg.lut_samples_per_unit));
  append_pod(key, static_cast<std::int32_t>(cfg.threads));
  append_pod(key, static_cast<std::int32_t>(cfg.use_simd));
  append_pod(key, static_cast<std::int32_t>(cfg.isa));
  append_pod(key, static_cast<std::int32_t>(cfg.reorder));
  append_pod(key, static_cast<std::int32_t>(cfg.color_barrier_schedule));
  append_pod(key, static_cast<std::int32_t>(cfg.variable_partitions));
  append_pod(key, static_cast<std::int32_t>(cfg.priority_queue));
  append_pod(key, static_cast<std::int32_t>(cfg.selective_privatization));
  append_pod(key, static_cast<std::int32_t>(cfg.partitions_per_dim));
  append_pod(key, cfg.privatization_factor);
  append_pod(key, static_cast<std::int64_t>(cfg.reorder_tile));
  append_pod(key, static_cast<std::int32_t>(cfg.record_trace));
  return key;
}

std::string PlanRegistry::spill_path(const std::string& key) const {
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(fnv64(key)));
  return (std::filesystem::path(cfg_.spill_dir) / (std::string(hex) + ".nufftplan")).string();
}

std::shared_ptr<const Nufft> PlanRegistry::acquire(const GridDesc& g,
                                                   const datasets::SampleSet& samples,
                                                   const PlanConfig& cfg) {
  const std::string key = make_key(g, samples, cfg);

  std::promise<std::shared_ptr<const Nufft>> prom;
  {
    std::unique_lock<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      ++stats_.hits;
      if (!it->second.ready) ++stats_.single_flight_waits;
      it->second.tick = ++tick_;
      auto fut = it->second.plan;  // copy under lock; get() outside
      lock.unlock();
      return fut.get();
    }
    ++stats_.misses;
    Entry e;
    e.plan = prom.get_future().share();
    e.tick = ++tick_;
    entries_.emplace(key, std::move(e));
  }

  // Build outside the lock so concurrent acquires of *other* keys proceed
  // and same-key acquires block on the shared future, not the mutex.
  std::shared_ptr<Nufft> plan;
  try {
    bool restored = false;
    if (!cfg_.spill_dir.empty()) {
      const std::string path = spill_path(key);
      if (std::filesystem::exists(path)) {
        try {
          Preprocessed pp = load_plan(path, g, samples);
          plan = std::make_shared<Nufft>(g, samples, cfg, std::move(pp));
          restored = true;
        } catch (...) {
          // A stale or corrupt spill file is not an error — rebuild.
        }
      }
    }
    if (!plan) plan = std::make_shared<Nufft>(g, samples, cfg);
    std::size_t bytes = plan_resident_bytes(plan->plan(), g) + plan->workspace_bytes();

    std::lock_guard<std::mutex> lock(mu_);
    if (restored) ++stats_.spill_restores;
    auto it = entries_.find(key);
    it->second.ready = true;
    it->second.bytes = bytes;
    bytes_ += bytes;
    evict_locked(key);
  } catch (...) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      entries_.erase(key);
    }
    prom.set_exception(std::current_exception());
    throw;
  }
  prom.set_value(plan);
  return plan;
}

void PlanRegistry::evict_locked(const std::string& keep_key) {
  while (bytes_ > cfg_.max_bytes) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (!it->second.ready || it->first == keep_key) continue;
      if (victim == entries_.end() || it->second.tick < victim->second.tick) victim = it;
    }
    if (victim == entries_.end()) break;  // nothing evictable (pending / just inserted)
    if (!cfg_.spill_dir.empty()) {
      const auto plan = victim->second.plan.get();
      std::filesystem::create_directories(cfg_.spill_dir);
      save_plan(spill_path(victim->first), plan->plan(), plan->grid_desc());
      ++stats_.spills;
    }
    bytes_ -= victim->second.bytes;
    entries_.erase(victim);
    ++stats_.evictions;
  }
}

RegistryStats PlanRegistry::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::size_t PlanRegistry::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

std::size_t PlanRegistry::resident_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace nufft::exec
