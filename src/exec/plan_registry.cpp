#include "exec/plan_registry.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <utility>

#include "common/fault.hpp"
#include "core/plan_cache.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace nufft::exec {

namespace {

template <class T>
void append_pod(std::string& out, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  const char* p = reinterpret_cast<const char*>(&v);
  out.append(p, sizeof(T));
}

std::uint64_t fnv64(const std::string& s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

// Fault-injection helper ("registry.spill.corrupt"): flip the last byte of a
// freshly written spill file so the next restore exercises the checksum path.
[[maybe_unused]] void corrupt_spill_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  if (f == nullptr) return;
  if (std::fseek(f, -1, SEEK_END) == 0) {
    const int c = std::fgetc(f);
    if (c != EOF && std::fseek(f, -1, SEEK_END) == 0) {
      std::fputc(c ^ 0x5a, f);
    }
  }
  std::fclose(f);
}

}  // namespace

PlanRegistry::PlanRegistry(RegistryConfig cfg) : cfg_(std::move(cfg)) {}

std::string PlanRegistry::make_key(const GridDesc& g, const datasets::SampleSet& samples,
                                   const PlanConfig& cfg) {
  std::string key;
  key.reserve(128);
  append_pod(key, static_cast<std::int64_t>(g.dim));
  for (int d = 0; d < 3; ++d) {
    append_pod(key, static_cast<std::int64_t>(g.n[static_cast<std::size_t>(d)]));
    append_pod(key, static_cast<std::int64_t>(g.m[static_cast<std::size_t>(d)]));
  }
  append_pod(key, g.alpha);
  append_pod(key, datasets::content_hash(samples));
  append_pod(key, cfg.kernel_radius);
  append_pod(key, static_cast<std::int32_t>(cfg.kernel));
  append_pod(key, static_cast<std::int32_t>(cfg.lut_samples_per_unit));
  // Kernel identity beyond the family: the requested accuracy and the weight
  // evaluator both change what the plan computes, so they are part of the
  // key (a KB plan and an ES plan with identical geometry, or a LUT plan and
  // a Horner plan, must never dedupe to one entry).
  append_pod(key, cfg.tolerance);
  append_pod(key, static_cast<std::int32_t>(cfg.eval));
  append_pod(key, static_cast<std::int32_t>(cfg.threads));
  append_pod(key, static_cast<std::int32_t>(cfg.use_simd));
  append_pod(key, static_cast<std::int32_t>(cfg.isa));
  append_pod(key, static_cast<std::int32_t>(cfg.reorder));
  append_pod(key, static_cast<std::int32_t>(cfg.color_barrier_schedule));
  append_pod(key, static_cast<std::int32_t>(cfg.variable_partitions));
  append_pod(key, static_cast<std::int32_t>(cfg.priority_queue));
  append_pod(key, static_cast<std::int32_t>(cfg.selective_privatization));
  append_pod(key, static_cast<std::int32_t>(cfg.partitions_per_dim));
  append_pod(key, cfg.privatization_factor);
  append_pod(key, static_cast<std::int64_t>(cfg.reorder_tile));
  append_pod(key, static_cast<std::int32_t>(cfg.record_trace));
  append_pod(key, static_cast<std::int32_t>(cfg.specialize_conv));
  return key;
}

std::string PlanRegistry::spill_path(const std::string& key) const {
  char hex[17];
  std::snprintf(hex, sizeof(hex), "%016llx",
                static_cast<unsigned long long>(fnv64(key)));
  return (std::filesystem::path(cfg_.spill_dir) / (std::string(hex) + ".nufftplan")).string();
}

std::shared_ptr<const Nufft> PlanRegistry::acquire(const GridDesc& g,
                                                   const datasets::SampleSet& samples,
                                                   const PlanConfig& cfg,
                                                   const std::string& tenant) {
  const std::string key = make_key(g, samples, cfg);
  return acquire_impl(key, g, samples, tenant, [&]() {
    std::shared_ptr<Nufft> plan;
    if (!cfg_.spill_dir.empty()) {
      const std::string path = spill_path(key);
      if (std::filesystem::exists(path)) {
        try {
          Preprocessed pp = load_plan(path, g, samples, cfg);
          plan = std::make_shared<Nufft>(g, samples, cfg, std::move(pp));
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.spill_restores;
          obs::count("registry.spill_restores");
        } catch (const Error& e) {
          // A stale or corrupt spill file is not an error — drop the file
          // so the rebuilt plan can re-spill cleanly, and rebuild.
          std::error_code ec;
          std::filesystem::remove(path, ec);
          if (e.code() == ErrorCode::kIoCorruption) {
            std::lock_guard<std::mutex> lock(mu_);
            ++stats_.corrupt_spills;
            obs::count("registry.corrupt_spills");
          }
        } catch (...) {
          std::error_code ec;
          std::filesystem::remove(path, ec);
        }
      }
    }
    if (!plan) {
      fault::inject("registry.build", ErrorCode::kBuildFailure);
      plan = std::make_shared<Nufft>(g, samples, cfg);
    }
    return plan;
  });
}

PlanUpdateResult PlanRegistry::update_plan(const GridDesc& g, const std::string& old_key,
                                           const datasets::SampleSet& new_samples,
                                           const PlanConfig& cfg, const std::string& tenant) {
  PlanUpdateResult r;
  r.key = make_key(g, new_samples, cfg);
  if (r.key == old_key) {
    // Content-hash short-circuit: a bitwise-identical trajectory keys
    // identically, so the resident plan is already the right one. Serve it
    // as a hit — LRU tick and tenant charge refreshed, generation untouched,
    // no build and no eviction pressure.
    obs::count("registry.plan_update_noops");
    r.noop = true;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.plan_update_noops;
      sweep_zombies_locked();
      auto it = entries_.find(r.key);
      if (it != entries_.end() && it->second.ready) {
        charge_tenant_locked(it->second, tenant, it->second.bytes);
        ++stats_.hits;
        obs::count("registry.hits");
        it->second.tick = ++tick_;
        r.plan = it->second.plan.get();
        return r;
      }
    }
    // Evicted or mid-build — the standard acquire path restores/joins it.
    r.plan = acquire(g, new_samples, cfg, tenant);
    return r;
  }

  // The diff base: the old key's plan, if it is still resident and ready. A
  // pending build is not joined — deriving from a plan that does not exist
  // yet would serialize the update behind it; the cold fallback is correct
  // and no slower than what that wait would cost.
  std::shared_ptr<const Nufft> old_plan;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.plan_updates;
    auto it = entries_.find(old_key);
    if (it != entries_.end() && it->second.ready) old_plan = it->second.plan.get();
  }
  obs::count("registry.plan_updates");

  bool built = false;
  bool warm = false;
  r.plan = acquire_impl(r.key, g, new_samples, tenant, [&]() {
    built = true;
    fault::inject("registry.build", ErrorCode::kBuildFailure);
    std::shared_ptr<Nufft> p;
    if (old_plan != nullptr) {
      // Copy-on-write derivation: the old plan is shared with concurrent
      // applies and is never mutated — the delta update runs on a clone.
      p = std::make_shared<Nufft>(*old_plan, new_samples);
      warm = p->plan_stats().warm_updated;
    } else {
      p = std::make_shared<Nufft>(g, new_samples, cfg);
    }
    return p;
  });
  // built == false means another thread already registered the new key —
  // a plain hit, neither warm nor a fallback.
  r.warm = built && warm;
  r.fallback = built && !warm;
  if (r.fallback) {
    obs::count("registry.plan_update_fallbacks");
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.plan_update_fallbacks;
  }
  return r;
}

std::shared_ptr<const Nufft> PlanRegistry::acquire_impl(
    const std::string& key, const GridDesc& g, const datasets::SampleSet& samples,
    const std::string& tenant, const std::function<std::shared_ptr<Nufft>()>& build_fn) {
  const std::size_t reservation = estimate_plan_bytes(g, samples);

  std::promise<std::shared_ptr<const Nufft>> prom;
  {
    std::unique_lock<std::mutex> lock(mu_);
    // Collect quota refunds for evicted plans whose last holder has since
    // let go, so the admission check below sees the tenant's real usage.
    sweep_zombies_locked();
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      // Quota admission runs before the hit is served: a tenant joining an
      // existing entry pays for it too (ready entries at their footprint,
      // pending builds at the reservation their waiters were admitted with).
      charge_tenant_locked(it->second, tenant,
                           it->second.ready ? it->second.bytes : reservation);
      ++stats_.hits;
      obs::count("registry.hits");
      if (!it->second.ready) {
        ++stats_.single_flight_waits;
        obs::count("registry.single_flight_waits");
      }
      it->second.tick = ++tick_;
      if (it->second.ready) {
        // Ready entries hand out the shared_ptr under the lock (get() cannot
        // block here), so a concurrent eviction always sees this holder's
        // reference and defers the quota refund accordingly.
        return it->second.plan.get();
      }
      auto fut = it->second.plan;  // copy under lock; get() outside
      lock.unlock();
      return fut.get();
    }
    auto qit = quarantine_.find(key);
    if (qit != quarantine_.end() &&
        qit->second.consecutive_failures >= cfg_.quarantine_threshold &&
        std::chrono::steady_clock::now() < qit->second.retry_after) {
      // Fail fast with the stored error instead of re-running a build that
      // has failed deterministically several times in a row — waiters would
      // otherwise stampede behind every doomed single-flight attempt.
      ++stats_.quarantine_rejects;
      obs::count("registry.quarantine_rejects");
      throw Error("plan build quarantined after " +
                      std::to_string(qit->second.consecutive_failures) +
                      " consecutive failures: " + qit->second.last_error,
                  qit->second.last_code);
    }
    ++stats_.misses;
    obs::count("registry.misses");
    Entry e;
    e.plan = prom.get_future().share();
    e.tick = ++tick_;
    // Admit against the tenant's quota before any work happens — an
    // over-quota build is refused here, cheaply, not after preprocessing.
    charge_tenant_locked(e, tenant, reservation);
    entries_.emplace(key, std::move(e));
  }

  // Build outside the lock so concurrent acquires of *other* keys proceed
  // and same-key acquires block on the shared future, not the mutex.
  std::shared_ptr<Nufft> plan;
  try {
    obs::Span build_span("registry.build", "registry");
    plan = build_fn();
    std::size_t bytes = plan_resident_bytes(plan->plan(), g) + plan->workspace_bytes();

    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(key);
    it->second.ready = true;
    it->second.bytes = bytes;
    bytes_ += bytes;
    // The real footprint is known now — replace every waiter's reservation.
    true_up_entry_locked(it->second, bytes);
    quarantine_.erase(key);  // one success clears the failure history
    evict_locked(key);
  } catch (...) {
    const std::exception_ptr eptr = std::current_exception();
    std::string msg = "plan build failed";
    ErrorCode code = ErrorCode::kBuildFailure;
    try {
      std::rethrow_exception(eptr);
    } catch (const Error& e) {
      msg = e.what();
      code = e.code();
    } catch (const std::exception& e) {
      msg = e.what();
    } catch (...) {
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      // The failed build never caches: erasing the pending entry means the
      // next acquire of this key starts fresh instead of observing a future
      // that is poisoned forever. The quota reservations held by the dying
      // entry — the builder's and every single-flight waiter's — are
      // refunded here; without this, a key that fails its way into
      // quarantine would leak its charge and slowly eat the tenant's budget.
      auto it = entries_.find(key);
      if (it != entries_.end()) {
        refund_entry_locked(it->second);
        entries_.erase(it);
      }
      record_build_failure_locked(key, msg, code);
    }
    prom.set_exception(eptr);
    std::rethrow_exception(eptr);
  }
  prom.set_value(plan);
  return plan;
}

bool PlanRegistry::quarantine_plan(const std::shared_ptr<const Nufft>& plan,
                                   const std::string& reason) {
  if (plan == nullptr) return false;
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    Entry& e = it->second;
    if (!e.ready || e.plan.get().get() != plan.get()) continue;
    const std::string key = it->first;
    bytes_ -= e.bytes;
    // The watchdog (and whoever submitted the job) still holds the plan;
    // like LRU eviction, the tenant charges follow the live references.
    if (!e.charges.empty()) {
      zombies_.push_back(Zombie{std::weak_ptr<const Nufft>(plan), std::move(e.charges)});
    }
    entries_.erase(it);
    // Jump straight past the failure-count threshold: one hung apply is
    // worth quarantine_threshold failed builds — the plan's preprocessing
    // output is suspect and re-acquiring it immediately would hand the next
    // job the same hazard. A later acquire after the backoff rebuilds from
    // scratch (or from spill) and one success clears the record.
    Quarantine& q = quarantine_[key];
    q.consecutive_failures = std::max(q.consecutive_failures + 1, cfg_.quarantine_threshold);
    q.last_error = reason;
    q.last_code = ErrorCode::kUnavailable;
    auto backoff = cfg_.quarantine_base_backoff;
    for (int i = cfg_.quarantine_threshold; i < q.consecutive_failures; ++i) {
      backoff = std::min(backoff * 2, cfg_.quarantine_max_backoff);
    }
    q.retry_after = std::chrono::steady_clock::now() + backoff;
    ++stats_.watchdog_quarantines;
    obs::count("registry.watchdog_quarantines");
    return true;
  }
  return false;
}

void PlanRegistry::record_build_failure_locked(const std::string& key, const std::string& msg,
                                               ErrorCode code) {
  ++stats_.build_failures;
  obs::count("registry.build_failures");
  Quarantine& q = quarantine_[key];
  ++q.consecutive_failures;
  q.last_error = msg;
  q.last_code = code;
  if (q.consecutive_failures >= cfg_.quarantine_threshold) {
    auto backoff = cfg_.quarantine_base_backoff;
    for (int i = cfg_.quarantine_threshold; i < q.consecutive_failures; ++i) {
      backoff = std::min(backoff * 2, cfg_.quarantine_max_backoff);
    }
    backoff = std::min(backoff, cfg_.quarantine_max_backoff);
    q.retry_after = std::chrono::steady_clock::now() + backoff;
  }
}

void PlanRegistry::evict_locked(const std::string& keep_key) {
  while (bytes_ > cfg_.max_bytes) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (!it->second.ready || it->first == keep_key) continue;
      if (victim == entries_.end() || it->second.tick < victim->second.tick) victim = it;
    }
    if (victim == entries_.end()) break;  // nothing evictable (pending / just inserted)
    if (!cfg_.spill_dir.empty()) {
      const auto plan = victim->second.plan.get();
      std::filesystem::create_directories(cfg_.spill_dir);
      const std::string path = spill_path(victim->first);
      save_plan(path, plan->plan(), plan->grid_desc(), plan->config());
      if (fault::should_fail("registry.spill.corrupt")) corrupt_spill_file(path);
      ++stats_.spills;
      obs::count("registry.spills");
    }
    bytes_ -= victim->second.bytes;
    // Defer the quota refund until the last outside reference dies: eviction
    // only drops the registry's reference, and a tenant whose handles keep
    // the plan resident must stay charged for it — refunding here would let
    // register → evict → register cycles escape tenant_max_bytes.
    if (!victim->second.charges.empty()) {
      zombies_.push_back(Zombie{victim->second.plan.get(), std::move(victim->second.charges)});
    }
    entries_.erase(victim);
    ++stats_.evictions;
    obs::count("registry.evictions");
  }
  // An evicted plan nobody else held died with its entry just now; refund it
  // immediately rather than waiting for the next acquire.
  sweep_zombies_locked();
}

void PlanRegistry::charge_tenant_locked(Entry& e, const std::string& tenant,
                                        std::size_t bytes) {
  if (tenant.empty()) return;
  if (e.charges.count(tenant) != 0) return;  // this tenant already pays for it
  TenantUsage& u = tenants_[tenant];
  const bool over_bytes = cfg_.tenant_max_bytes != 0 && u.bytes + bytes > cfg_.tenant_max_bytes;
  const bool over_plans = cfg_.tenant_max_plans != 0 && u.plans + 1 > cfg_.tenant_max_plans;
  if (over_bytes || over_plans) {
    ++stats_.quota_rejects;
    obs::count("registry.quota_rejects");
    throw Error("tenant '" + tenant + "' over " + (over_bytes ? "byte" : "plan") +
                    " quota: " + std::to_string(u.bytes) + " B across " +
                    std::to_string(u.plans) + " plans resident, " + std::to_string(bytes) +
                    " B requested",
                ErrorCode::kOverloaded);
  }
  u.bytes += bytes;
  u.plans += 1;
  e.charges.emplace(tenant, bytes);
}

void PlanRegistry::refund_entry_locked(Entry& e) {
  refund_charges_locked(e.charges);
  e.charges.clear();
}

void PlanRegistry::refund_charges_locked(
    const std::unordered_map<std::string, std::size_t>& charges) const {
  for (const auto& [tenant, charged] : charges) {
    auto it = tenants_.find(tenant);
    if (it == tenants_.end()) continue;
    it->second.bytes -= std::min(it->second.bytes, charged);
    if (it->second.plans > 0) it->second.plans -= 1;
    if (it->second.bytes == 0 && it->second.plans == 0) tenants_.erase(it);
  }
}

void PlanRegistry::sweep_zombies_locked() const {
  for (auto it = zombies_.begin(); it != zombies_.end();) {
    if (it->plan.expired()) {
      refund_charges_locked(it->charges);
      it = zombies_.erase(it);
    } else {
      ++it;
    }
  }
}

void PlanRegistry::true_up_entry_locked(Entry& e, std::size_t bytes) {
  for (auto& [tenant, charged] : e.charges) {
    TenantUsage& u = tenants_[tenant];
    u.bytes -= std::min(u.bytes, charged);
    u.bytes += bytes;
    charged = bytes;
  }
}

std::size_t PlanRegistry::tenant_bytes(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  sweep_zombies_locked();
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.bytes;
}

std::size_t PlanRegistry::tenant_plans(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  sweep_zombies_locked();
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? 0 : it->second.plans;
}

std::size_t PlanRegistry::estimate_plan_bytes(const GridDesc& g,
                                              const datasets::SampleSet& samples) {
  // Reordered coordinates (dim float arrays), per-sample LUT offsets and the
  // reorder permutation, plus one grid-sized complex workspace. This bounds
  // the dominant terms of plan_resident_bytes() + workspace_bytes() from
  // above for every supported configuration.
  const auto count = static_cast<std::size_t>(samples.count());
  const std::size_t per_sample =
      static_cast<std::size_t>(samples.dim + 1) * sizeof(float) + 2 * sizeof(index_t);
  return count * per_sample + static_cast<std::size_t>(g.grid_elems()) * sizeof(cfloat);
}

RegistryStats PlanRegistry::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::size_t PlanRegistry::resident_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

std::size_t PlanRegistry::resident_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace nufft::exec
