// Multi-slice Part-2 convolution kernels for batched transforms.
//
// The single-transform kernels (core/convolution.{hpp,cpp}) weight one
// sample value into one grid; these weight B values — one per batch slice —
// through the *same* interpolation window into B slab-contiguous grids.
// Computing the window once per sample amortizes Part 1 over the batch, and
// hoisting the weight vectors out of the slice loop amortizes the weight
// loads and wxy multiplies that the single kernels redo per apply.
//
// Slabs are batch-major: slice b lives at slab0 + b·slab_stride, so each
// slice keeps the exact memory layout the single kernels were tuned for.
#pragma once

#include <array>
#include <cstddef>

#include "common/types.hpp"
#include "core/convolution.hpp"

namespace nufft::exec {

/// Widest batch one kernel invocation handles; BatchNufft chunks above this.
inline constexpr index_t kMaxBatch = 16;

/// Adjoint (scatter): add vals[b]·weights into slab b, for b < nb.
template <int DIM>
void badj_scatter_sse(cfloat* slab0, std::size_t slab_stride, index_t nb,
                      const std::array<index_t, 3>& strides, const WindowBuf& wb,
                      const cfloat* vals);

/// Forward (gather): outs[b] = Σ window cells of slab b, for b < nb.
template <int DIM>
void bfwd_gather_sse(const cfloat* slab0, std::size_t slab_stride, index_t nb,
                     const std::array<index_t, 3>& strides, const WindowBuf& wb, cfloat* outs);

/// AVX2+FMA variants (convolution_avx2.hpp contract: gate on avx2_available).
template <int DIM>
void badj_scatter_avx2(cfloat* slab0, std::size_t slab_stride, index_t nb,
                       const std::array<index_t, 3>& strides, const WindowBuf& wb,
                       const cfloat* vals);

template <int DIM>
void bfwd_gather_avx2(const cfloat* slab0, std::size_t slab_stride, index_t nb,
                      const std::array<index_t, 3>& strides, const WindowBuf& wb, cfloat* outs);

}  // namespace nufft::exec
