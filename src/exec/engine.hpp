// Async transform execution: submit forward/adjoint jobs against shared
// plans and collect results through futures.
//
// The engine is the consumer of the workspace-lease model (core/nufft.hpp):
// worker threads lease a per-job Workspace (batch == 1) or a BatchNufft
// (batch > 1) from per-plan free lists, so any number of in-flight jobs may
// target the *same* plan concurrently — the plan itself is only read. Each
// worker owns a private ThreadPool (run_on_all does not nest), sized by
// EngineConfig::threads_per_worker; total concurrency is
// workers × threads_per_worker execution contexts.
//
// Determinism: a job's result depends only on (op, plan, inputs) — leases
// recycle buffers but every apply fully overwrites or zero-initializes
// them — so concurrent submissions produce results identical to running the
// same jobs sequentially (bitwise, when each worker pool has one thread;
// see tests/test_exec.cpp).
//
// Plans submitted by shared_ptr are pinned by the engine's lease pools
// until the engine is destroyed, keeping leased buffers shape-compatible
// with a live plan. The registry overload resolves (and possibly builds)
// the plan inside the worker, making plan construction itself asynchronous.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/nufft.hpp"
#include "core/stats.hpp"
#include "exec/batch_nufft.hpp"
#include "exec/plan_registry.hpp"

namespace nufft::exec {

enum class Op { kForward, kAdjoint };

/// Per-job instrumentation, delivered through the future.
struct JobResult {
  OperatorStats stats;
  std::vector<TraceEvent> trace;
};

/// Cooperative cancellation handle shared between a submitter and any number
/// of in-flight jobs. Cancellation is checked before dispatch and between
/// retry attempts — a job already inside an apply runs to completion (applies
/// are short relative to queue residence and have no safe interior abort
/// point), but its result is discarded in favour of ErrorCode::kCancelled
/// only if the cancel happened before dispatch.
class CancelToken {
 public:
  void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }
  bool cancelled() const noexcept { return cancelled_.load(std::memory_order_relaxed); }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Failure-handling policy for one submitted job.
struct JobOptions {
  /// Optional cancellation handle; null means not cancellable.
  std::shared_ptr<CancelToken> cancel;
  /// Wall-clock budget measured from submission. Negative (default) means no
  /// deadline; zero means the deadline is already expired when the job is
  /// dispatched, which resolves the future with ErrorCode::kTimeout
  /// deterministically (useful for testing the timeout path).
  std::chrono::milliseconds timeout{-1};
  /// Bounded retry for retryable failures (is_retryable(): resource
  /// exhaustion, I/O corruption; std::bad_alloc counts as resource
  /// exhaustion). Deterministic failures are never retried.
  int max_retries = 0;
  /// First retry delay; doubles per attempt (capped internally). The sleep
  /// is cancellation- and deadline-aware.
  std::chrono::milliseconds retry_backoff{1};
  /// Completion hook for callers that multiplex many jobs without parking a
  /// thread per future (the serving layer's poll loop). Invoked exactly once,
  /// after the job's promise is resolved — with a value or an exception, on
  /// every path including rejection at submit-after-shutdown — from whichever
  /// thread resolved it. The future is guaranteed ready inside the hook. Must
  /// not throw; must not call back into the engine's shutdown.
  std::function<void()> on_complete;
  /// Anything the apply reads or writes that the submitter might free once
  /// the future resolves. The watchdog resolves stalled jobs kTimeout while
  /// the wedged apply is still running — without a keepalive the submitter
  /// would free `in`/`out` under the apply's feet. The engine holds this
  /// reference until the apply truly returns (or forever, for a job that
  /// never does), not merely until the future is ready.
  std::shared_ptr<void> keepalive;
};

struct EngineConfig {
  int workers = 2;             // dispatcher threads, each owning a pool
  int threads_per_worker = 1;  // ThreadPool size inside each worker
  /// Watchdog stall threshold: a dispatched job whose execution heartbeat
  /// (stamped at dispatch, plan resolution and every retry/backoff boundary —
  /// NOT inside an apply) is older than this is presumed hung. The watchdog
  /// resolves its future with ErrorCode::kTimeout, quarantines the plan in
  /// `watchdog_registry` (when set), fires on_complete, and spawns a
  /// replacement worker so engine capacity survives the wedged thread. Must
  /// exceed the worst-case plan-resolution + single-apply latency. Negative
  /// (default) disables the watchdog entirely — no thread is started.
  std::chrono::milliseconds stall_threshold{-1};
  /// Watchdog scan period; <= 0 derives stall_threshold / 4, clamped to
  /// [5 ms, 500 ms].
  std::chrono::milliseconds watchdog_poll{0};
  /// Registry whose entry for a stalled job's plan should be quarantined
  /// (subsequent acquires fail fast kUnavailable for the registry's backoff
  /// window). Null: stalls time out without quarantine. Must outlive the
  /// engine.
  PlanRegistry* watchdog_registry = nullptr;
};

/// Watchdog activity counters (monotonic since construction).
struct WatchdogStats {
  std::uint64_t stalls = 0;            // jobs claimed kTimeout by the watchdog
  std::uint64_t quarantines = 0;       // stalled plans quarantined in the registry
  std::uint64_t replacements = 0;      // workers spawned to cover wedged ones
  std::uint64_t late_completions = 0;  // claimed jobs whose apply later returned
};

/// Point-in-time load snapshot, the admission-control hook for callers that
/// gate work before it reaches the queue (serve::NufftServer).
struct EngineLoad {
  std::size_t queued = 0;  // jobs waiting for a worker
  int active = 0;          // jobs currently executing
  int workers = 0;         // dispatcher thread count
};

class NufftEngine {
 public:
  explicit NufftEngine(EngineConfig cfg = {});
  ~NufftEngine();  // drains the queue, then joins the workers

  NufftEngine(const NufftEngine&) = delete;
  NufftEngine& operator=(const NufftEngine&) = delete;

  /// Enqueue one transform. For batch == 1, `in`/`out` are single arrays;
  /// for batch > 1 they are contiguous batches (slice b at
  /// in + b·image_elems() / sample_count() as appropriate for `op`). The
  /// buffers must stay valid until the future resolves. Submitting after
  /// shutdown() is not an error: the returned future is already resolved
  /// with an Error carrying ErrorCode::kCancelled.
  std::future<JobResult> submit(Op op, std::shared_ptr<const Nufft> plan, const cfloat* in,
                                cfloat* out, index_t batch = 1, const JobOptions& opts = {});

  /// As above, but the plan is acquired from `registry` inside the worker —
  /// submission never blocks on plan construction. The registry, sample set
  /// and buffers must outlive the future.
  std::future<JobResult> submit(Op op, PlanRegistry& registry, const GridDesc& g,
                                std::shared_ptr<const datasets::SampleSet> samples,
                                const PlanConfig& cfg, const cfloat* in, cfloat* out,
                                index_t batch = 1, const JobOptions& opts = {});

  /// Enqueue a streaming trajectory update: a worker runs
  /// PlanRegistry::update_plan(g, old_key, *new_samples, cfg, tenant) —
  /// warm delta derivation when the old plan is resident, content-hash
  /// no-op short-circuit, cold fallback otherwise — without applying a
  /// transform. The full PlanUpdateResult is written to *result (when
  /// non-null) before the future resolves, so the caller can rebind its
  /// handle to the new key. Plan-update work shares the job machinery:
  /// queue admission, deadline, retry, watchdog heartbeat during the
  /// (possibly expensive) rebuild. The registry, sample set and result
  /// must outlive the future.
  std::future<JobResult> submit_update(PlanRegistry& registry, const GridDesc& g,
                                       std::string old_key,
                                       std::shared_ptr<const datasets::SampleSet> new_samples,
                                       const PlanConfig& cfg,
                                       std::shared_ptr<PlanUpdateResult> result,
                                       const std::string& tenant = std::string(),
                                       const JobOptions& opts = {});

  /// Block until every submitted job has completed.
  void wait_idle();

  /// Stop accepting work, drain jobs already queued, and join the workers.
  /// Idempotent and safe to call from any number of threads concurrently —
  /// the join runs exactly once and every caller blocks until the drain is
  /// complete. The destructor calls it. Safe to race with concurrent
  /// submit() calls — each such submit either runs before the drain or gets
  /// a future resolved with ErrorCode::kCancelled.
  void shutdown();

  /// Queue/active snapshot for admission control.
  EngineLoad load() const;

  /// Watchdog counters; all-zero when the watchdog is disabled.
  WatchdogStats watchdog_stats() const;

  int workers() const {
    std::lock_guard<std::mutex> lock(mu_);
    return static_cast<int>(threads_.size());
  }

 private:
  struct Job {
    Op op;
    std::function<std::shared_ptr<const Nufft>()> resolve_plan;
    const cfloat* in = nullptr;
    cfloat* out = nullptr;
    index_t batch = 1;
    // Plan-update jobs: resolve_plan does all the work (registry update /
    // derivation); no workspace is leased and no transform runs.
    bool plan_only = false;
    JobOptions options;
    // Deadline stamped at submission time from options.timeout.
    bool has_deadline = false;
    std::chrono::steady_clock::time_point deadline{};
    // Submission instant, feeding the engine.queue_wait_ns histogram.
    std::chrono::steady_clock::time_point submitted{};
    std::promise<JobResult> promise;
  };

  // Per-plan free lists of leased apply state. `pin` keeps the plan alive
  // while leased buffers exist, so a recycled pointer can never alias a
  // different plan.
  struct LeasePool {
    std::shared_ptr<const Nufft> pin;
    std::vector<std::unique_ptr<Workspace>> workspaces;
    std::vector<std::unique_ptr<BatchNufft>> batches;
  };

  // One dispatched job's shared state between its worker and the watchdog.
  // `claimed` arbitrates promise resolution: whoever flips it false→true owns
  // set_value/set_exception and the on_complete call; the loser only observes.
  // The record (and options.keepalive with it) lives in running_ until the
  // apply returns, so buffers a watchdog-resolved submitter freed early stay
  // valid under the wedged apply.
  struct Running {
    std::atomic<bool> claimed{false};
    std::atomic<std::int64_t> last_beat_ns{0};  // steady_clock since-epoch ns
    std::promise<JobResult> promise;
    JobOptions options;
    std::shared_ptr<const Nufft> plan;  // published under wd_mu_ once resolved
  };

  std::future<JobResult> enqueue(Job job);
  void worker_main();
  void watchdog_main();
  // Cancellation / deadline / bounded-retry wrapper around run_job.
  JobResult dispatch_job(Job& job, ThreadPool& pool, Running& rec);
  JobResult run_job(Job& job, ThreadPool& pool, Running& rec);

  std::unique_ptr<Workspace> lease_workspace(const std::shared_ptr<const Nufft>& plan);
  void return_workspace(const Nufft* plan, std::unique_ptr<Workspace> ws);
  std::unique_ptr<BatchNufft> lease_batch(const std::shared_ptr<const Nufft>& plan,
                                          index_t batch);
  void return_batch(const Nufft* plan, std::unique_ptr<BatchNufft> bn);

  EngineConfig cfg_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::deque<Job> queue_;
  int active_ = 0;
  bool stop_ = false;
  // Joining a std::thread from two threads at once is a data race, and both
  // "destructor while another thread calls shutdown()" and plain concurrent
  // shutdown() calls are legal — the once_flag makes the join single-entry
  // while still blocking every concurrent caller until the drain finishes.
  // threads_ grows when the watchdog spawns replacement workers; every
  // mutation happens under mu_ with stop_ false, and shutdown joins the
  // watchdog before iterating threads_, so the join loop sees a stable
  // vector without holding mu_ (workers need mu_ to finish draining).
  std::once_flag join_once_;
  std::vector<std::thread> threads_;
  std::thread watchdog_;

  // Watchdog state: the set of dispatched-but-unfinished jobs. Workers
  // insert/erase around dispatch; the watchdog scans for stale heartbeats.
  mutable std::mutex wd_mu_;
  std::condition_variable wd_cv_;
  bool wd_stop_ = false;
  std::vector<std::shared_ptr<Running>> running_;
  std::atomic<std::uint64_t> wd_stalls_{0};
  std::atomic<std::uint64_t> wd_quarantines_{0};
  std::atomic<std::uint64_t> wd_replacements_{0};
  std::atomic<std::uint64_t> wd_late_{0};

  std::mutex lease_mu_;
  std::map<const Nufft*, LeasePool> leases_;
};

}  // namespace nufft::exec
