// Async transform execution: submit forward/adjoint jobs against shared
// plans and collect results through futures.
//
// The engine is the consumer of the workspace-lease model (core/nufft.hpp):
// worker threads lease a per-job Workspace (batch == 1) or a BatchNufft
// (batch > 1) from per-plan free lists, so any number of in-flight jobs may
// target the *same* plan concurrently — the plan itself is only read. Each
// worker owns a private ThreadPool (run_on_all does not nest), sized by
// EngineConfig::threads_per_worker; total concurrency is
// workers × threads_per_worker execution contexts.
//
// Determinism: a job's result depends only on (op, plan, inputs) — leases
// recycle buffers but every apply fully overwrites or zero-initializes
// them — so concurrent submissions produce results identical to running the
// same jobs sequentially (bitwise, when each worker pool has one thread;
// see tests/test_exec.cpp).
//
// Plans submitted by shared_ptr are pinned by the engine's lease pools
// until the engine is destroyed, keeping leased buffers shape-compatible
// with a live plan. The registry overload resolves (and possibly builds)
// the plan inside the worker, making plan construction itself asynchronous.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/nufft.hpp"
#include "core/stats.hpp"
#include "exec/batch_nufft.hpp"
#include "exec/plan_registry.hpp"

namespace nufft::exec {

enum class Op { kForward, kAdjoint };

/// Per-job instrumentation, delivered through the future.
struct JobResult {
  OperatorStats stats;
  std::vector<TraceEvent> trace;
};

struct EngineConfig {
  int workers = 2;             // dispatcher threads, each owning a pool
  int threads_per_worker = 1;  // ThreadPool size inside each worker
};

class NufftEngine {
 public:
  explicit NufftEngine(EngineConfig cfg = {});
  ~NufftEngine();  // drains the queue, then joins the workers

  NufftEngine(const NufftEngine&) = delete;
  NufftEngine& operator=(const NufftEngine&) = delete;

  /// Enqueue one transform. For batch == 1, `in`/`out` are single arrays;
  /// for batch > 1 they are contiguous batches (slice b at
  /// in + b·image_elems() / sample_count() as appropriate for `op`). The
  /// buffers must stay valid until the future resolves.
  std::future<JobResult> submit(Op op, std::shared_ptr<const Nufft> plan, const cfloat* in,
                                cfloat* out, index_t batch = 1);

  /// As above, but the plan is acquired from `registry` inside the worker —
  /// submission never blocks on plan construction. The registry, sample set
  /// and buffers must outlive the future.
  std::future<JobResult> submit(Op op, PlanRegistry& registry, const GridDesc& g,
                                std::shared_ptr<const datasets::SampleSet> samples,
                                const PlanConfig& cfg, const cfloat* in, cfloat* out,
                                index_t batch = 1);

  /// Block until every submitted job has completed.
  void wait_idle();

  int workers() const { return static_cast<int>(threads_.size()); }

 private:
  struct Job {
    Op op;
    std::function<std::shared_ptr<const Nufft>()> resolve_plan;
    const cfloat* in = nullptr;
    cfloat* out = nullptr;
    index_t batch = 1;
    std::promise<JobResult> promise;
  };

  // Per-plan free lists of leased apply state. `pin` keeps the plan alive
  // while leased buffers exist, so a recycled pointer can never alias a
  // different plan.
  struct LeasePool {
    std::shared_ptr<const Nufft> pin;
    std::vector<std::unique_ptr<Workspace>> workspaces;
    std::vector<std::unique_ptr<BatchNufft>> batches;
  };

  std::future<JobResult> enqueue(Job job);
  void worker_main();
  JobResult run_job(Job& job, ThreadPool& pool);

  std::unique_ptr<Workspace> lease_workspace(const std::shared_ptr<const Nufft>& plan);
  void return_workspace(const Nufft* plan, std::unique_ptr<Workspace> ws);
  std::unique_ptr<BatchNufft> lease_batch(const std::shared_ptr<const Nufft>& plan,
                                          index_t batch);
  void return_batch(const Nufft* plan, std::unique_ptr<BatchNufft> bn);

  EngineConfig cfg_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::condition_variable idle_cv_;
  std::deque<Job> queue_;
  int active_ = 0;
  bool stop_ = false;
  std::vector<std::thread> threads_;

  std::mutex lease_mu_;
  std::map<const Nufft*, LeasePool> leases_;
};

}  // namespace nufft::exec
