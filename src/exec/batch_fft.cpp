#include "exec/batch_fft.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "core/convolution_avx2.hpp"
#include "exec/batch_fft_stages.hpp"
#include "fft/fft1d.hpp"
#include "fft/twiddle.hpp"
#include "simd/vec4f.hpp"

namespace nufft::exec {

namespace {

using fft::Direction;
using simd::Vec4f;

// Complex multiply of two packed (re, im) pairs by one twiddle held as
// wr = splat(w.re) and wi = (−w.im, w.im, −w.im, w.im):
//   x·w = x·wr + swap(x)·wi.
inline Vec4f cmul(Vec4f x, Vec4f wr, Vec4f wi) { return x * wr + x.swap_pairs() * wi; }

inline Vec4f wi_pattern(float im) { return Vec4f(-im, im, -im, im); }

// One radix-2 Stockham stage over column-interleaved rows. `sc` is the
// sub-transform stride in complex elements (s · cols); the q loop covers the
// sc interleaved columns two complex at a time — cols must be even.
void stage2_cols(const cfloat* src, cfloat* dst, std::size_t nn, std::size_t sc,
                 const cfloat* tw) {
  const std::size_t m = nn / 2;
  for (std::size_t p = 0; p < m; ++p) {
    const cfloat w = tw[p];
    const Vec4f wr(w.real());
    const Vec4f wi = wi_pattern(w.imag());
    const auto* a = reinterpret_cast<const float*>(src + sc * p);
    const auto* b = reinterpret_cast<const float*>(src + sc * (p + m));
    auto* lo = reinterpret_cast<float*>(dst + sc * (2 * p));
    auto* hi = reinterpret_cast<float*>(dst + sc * (2 * p + 1));
    const std::size_t nf = 2 * sc;
    for (std::size_t q = 0; q < nf; q += 4) {
      const Vec4f u = Vec4f::loadu(a + q);
      const Vec4f v = Vec4f::loadu(b + q);
      (u + v).storeu(lo + q);
      cmul(u - v, wr, wi).storeu(hi + q);
    }
  }
}

// One radix-4 Stockham stage over column-interleaved rows; mirrors
// fft1d.cpp's stockham_stage4 with the stride scaled by the column count.
void stage4_cols(const cfloat* src, cfloat* dst, std::size_t nn, std::size_t sc,
                 const cfloat* tw, int sign) {
  const std::size_t m = nn / 4;
  const Vec4f jpat = sign < 0 ? Vec4f(1.0f, -1.0f, 1.0f, -1.0f) : Vec4f(-1.0f, 1.0f, -1.0f, 1.0f);
  for (std::size_t p = 0; p < m; ++p) {
    const cfloat w1 = tw[p];
    const cfloat w2 = w1 * w1;
    const cfloat w3 = w2 * w1;
    const Vec4f w1r(w1.real()), w1i = wi_pattern(w1.imag());
    const Vec4f w2r(w2.real()), w2i = wi_pattern(w2.imag());
    const Vec4f w3r(w3.real()), w3i = wi_pattern(w3.imag());
    const auto* a = reinterpret_cast<const float*>(src + sc * p);
    const auto* b = reinterpret_cast<const float*>(src + sc * (p + m));
    const auto* c = reinterpret_cast<const float*>(src + sc * (p + 2 * m));
    const auto* d = reinterpret_cast<const float*>(src + sc * (p + 3 * m));
    auto* y0 = reinterpret_cast<float*>(dst + sc * (4 * p));
    auto* y1 = reinterpret_cast<float*>(dst + sc * (4 * p + 1));
    auto* y2 = reinterpret_cast<float*>(dst + sc * (4 * p + 2));
    auto* y3 = reinterpret_cast<float*>(dst + sc * (4 * p + 3));
    const std::size_t nf = 2 * sc;
    for (std::size_t q = 0; q < nf; q += 4) {
      const Vec4f A = Vec4f::loadu(a + q);
      const Vec4f B = Vec4f::loadu(b + q);
      const Vec4f C = Vec4f::loadu(c + q);
      const Vec4f D = Vec4f::loadu(d + q);
      const Vec4f apc = A + C;
      const Vec4f amc = A - C;
      const Vec4f bpd = B + D;
      const Vec4f bmd = B - D;
      const Vec4f jb = bmd.swap_pairs() * jpat;  // sign·i·(b−d)
      (apc + bpd).storeu(y0 + q);
      cmul(amc + jb, w1r, w1i).storeu(y1 + q);
      cmul(apc - bpd, w2r, w2i).storeu(y2 + q);
      cmul(amc - jb, w3r, w3i).storeu(y3 + q);
    }
  }
}

}  // namespace

BatchFft::BatchFft(const GridDesc& g, std::array<std::vector<index_t>, 3> corner_rows,
                   const fft::FftNd<float>& fwd, const fft::FftNd<float>& inv)
    : g_(g), corner_(std::move(corner_rows)), fwd_(&fwd), inv_(&inv),
      avx2_(avx2_available()) {
  st_ = g_.grid_strides();
  slab_elems_ = g_.grid_elems();
  for (int d = 0; d < g_.dim; ++d) {
    const auto ds = static_cast<std::size_t>(d);
    const auto m = static_cast<std::size_t>(g_.m[ds]);
    full_[ds].resize(m);
    for (std::size_t i = 0; i < m; ++i) full_[ds][i] = static_cast<index_t>(i);
    pow2_[ds] = fft::is_pow2(m);
    if (!pow2_[ds]) continue;
    // Rebuild Fft1d's stage plan (radix-4 stages, one trailing radix-2) so
    // the batched stages consume the same per-stage twiddle values.
    for (auto [stages, sign] : {std::pair{&stages_fwd_[ds], -1}, std::pair{&stages_inv_[ds], +1}}) {
      for (std::size_t nn = m; nn > 1;) {
        if (nn % 4 == 0) {
          stages->tw.push_back(fft::make_twiddles<float>(nn / 4, nn, sign));
          stages->radix.push_back(4);
          nn /= 4;
        } else {
          stages->tw.push_back(fft::make_twiddles<float>(nn / 2, nn, sign));
          stages->radix.push_back(2);
          nn /= 2;
        }
      }
    }
  }
}

void BatchFft::transform(cfloat* slabs, index_t nb, Direction dir, ThreadPool& pool,
                         bool batched_stages) const {
  NUFFT_CHECK(nb >= 1);
  // The prunable rows are always the ones whose *untransformed* (forward)
  // or *already-transformed* (adjoint) coordinates are corner-confined, so
  // the traversal order decides which axes get the pruning. The adjoint
  // wants the FftNd order (contiguous axis first): its full pass lands on
  // the cheap in-place axis and the ¼ pass on the expensive strided axis 0.
  // For the forward that order is pessimal — the strided axis would run
  // unpruned — so the batched path traverses ascending instead, which hands
  // it the mirror-image (optimal) distribution. The scalar path keeps the
  // FftNd order for bitwise equality with the single-transform pipeline.
  const bool ascending = batched_stages && dir == Direction::kForward;
  if (ascending) {
    for (std::size_t a = 0; a < static_cast<std::size_t>(g_.dim); ++a) {
      axis_pass(slabs, nb, a, dir, pool, batched_stages, /*restrict_above=*/true);
    }
  } else {
    for (std::size_t a = static_cast<std::size_t>(g_.dim); a-- > 0;) {
      axis_pass(slabs, nb, a, dir, pool, batched_stages,
                /*restrict_above=*/dir == Direction::kInverse);
    }
  }
}

void BatchFft::axis_pass(cfloat* slabs, index_t nb, std::size_t axis, Direction dir,
                         ThreadPool& pool, bool batched_stages, bool restrict_above) const {
  const std::size_t len = static_cast<std::size_t>(g_.m[axis]);
  if (len == 1) return;
  const int dim = g_.dim;

  // Row coordinate lists for the non-transform dims. `restrict_above`
  // selects which side of the axis is corner-confined: the dims the
  // traversal has not reached yet (forward: still zero outside the corners)
  // or the dims it has finished (adjoint: non-corner outputs never read).
  const std::vector<index_t>* lists[2] = {nullptr, nullptr};
  index_t lstrides[2] = {0, 0};
  int nlists = 0;
  for (int d = 0; d < dim; ++d) {
    if (d == static_cast<int>(axis)) continue;
    const auto ds = static_cast<std::size_t>(d);
    const bool restricted =
        restrict_above ? d > static_cast<int>(axis) : d < static_cast<int>(axis);
    lists[nlists] = restricted ? &corner_[ds] : &full_[ds];
    lstrides[nlists] = st_[ds];
    ++nlists;
  }
  index_t nrows = 1;
  for (int i = 0; i < nlists; ++i) nrows *= static_cast<index_t>(lists[i]->size());
  const index_t inner2 = nlists == 2 ? static_cast<index_t>(lists[1]->size()) : 1;
  const index_t ax_st = st_[axis];
  const index_t chunk = nrows / (static_cast<index_t>(pool.size()) * 8) + 1;

  auto row_base = [&](index_t r) {
    index_t base = 0;
    if (nlists == 2) {
      base = (*lists[0])[static_cast<std::size_t>(r / inner2)] * lstrides[0] +
             (*lists[1])[static_cast<std::size_t>(r % inner2)] * lstrides[1];
    } else if (nlists == 1) {
      base = (*lists[0])[static_cast<std::size_t>(r)] * lstrides[0];
    }
    return base;
  };

  const bool use_batched = batched_stages && pow2_[axis] && nb >= 2;
  if (!use_batched) {
    // Per-row path through the plan's own Fft1d — bit-identical to the
    // single-transform FftNd walk over the same rows.
    const fft::Fft1d<float>& plan =
        (dir == Direction::kForward ? fwd_ : inv_)->axis_plan(axis);
    const std::size_t ssz = plan.scratch_size();
    std::vector<aligned_vector<cfloat>> scratch(static_cast<std::size_t>(pool.size()));
    pool.parallel_for_tid(nrows, chunk, [&](int tid, index_t rb, index_t re) {
      auto& buf = scratch[static_cast<std::size_t>(tid)];
      if (buf.size() < len + ssz) buf.resize(len + ssz);
      cfloat* row = buf.data();
      cfloat* fs = buf.data() + len;
      for (index_t r = rb; r < re; ++r) {
        const index_t base = row_base(r);
        for (index_t b = 0; b < nb; ++b) {
          cfloat* p = slabs + static_cast<std::size_t>(b) * static_cast<std::size_t>(slab_elems_) + base;
          if (ax_st == 1) {
            plan.transform(p, p, fs);
          } else {
            for (std::size_t k = 0; k < len; ++k) row[k] = p[static_cast<index_t>(k) * ax_st];
            plan.transform(row, row, fs);
            for (std::size_t k = 0; k < len; ++k) p[static_cast<index_t>(k) * ax_st] = row[k];
          }
        }
      }
    });
    return;
  }

  const AxisStages& stg =
      (dir == Direction::kForward ? stages_fwd_ : stages_inv_)[axis];
  const int sign = static_cast<int>(dir);
  // AVX2 stages consume 4 complex columns per 256-bit op, SSE stages 2;
  // pad the column count (zeroed pad columns) to the vector width.
  const std::size_t colpad = avx2_ ? 3 : 1;
  auto pad_cols = [colpad](std::size_t c) { return (c + colpad) & ~colpad; };

  // Strided-axis rows are gathered one 8-byte complex per 64-byte cache
  // line. Adjacent rows along the contiguous grid dimension sit 1 complex
  // apart, and the row-coordinate lists are unions of contiguous runs (the
  // corner set is [0, n−n/2) ∪ [m−n/2, m)), so blocks of up to kRowBlock
  // adjacent rows are transformed together — the block's rows simply become
  // extra columns of the same interleaved transform, and each (k, slice)
  // gather reads kRowBlock consecutive complex values (a full line).
  constexpr index_t kRowBlock = 2;
  const std::vector<index_t>* ilist = nlists > 0 ? lists[nlists - 1] : nullptr;
  const bool blockable = nlists > 0 && lstrides[nlists - 1] == 1 && ax_st != 1;
  struct Group {
    index_t r0;
    index_t blk;
  };
  std::vector<Group> groups;
  groups.reserve(static_cast<std::size_t>(nrows));
  if (blockable) {
    const auto ilen = static_cast<index_t>(ilist->size());
    for (index_t r = 0; r < nrows;) {
      const index_t i1 = r % ilen;
      index_t blk = 1;
      while (blk < kRowBlock && i1 + blk < ilen &&
             (*ilist)[static_cast<std::size_t>(i1 + blk)] ==
                 (*ilist)[static_cast<std::size_t>(i1)] + blk) {
        ++blk;
      }
      groups.push_back({r, blk});
      r += blk;
    }
  } else {
    for (index_t r = 0; r < nrows; ++r) groups.push_back({r, 1});
  }

  const std::size_t bufn = len * pad_cols(static_cast<std::size_t>(kRowBlock * nb));
  const auto ngroups = static_cast<index_t>(groups.size());
  const index_t gchunk = ngroups / (static_cast<index_t>(pool.size()) * 8) + 1;
  std::vector<aligned_vector<cfloat>> scratch(static_cast<std::size_t>(pool.size()));
  pool.parallel_for_tid(ngroups, gchunk, [&](int tid, index_t gb, index_t ge) {
    auto& buf = scratch[static_cast<std::size_t>(tid)];
    if (buf.size() < 2 * bufn) buf.resize(2 * bufn);
    for (index_t gi = gb; gi < ge; ++gi) {
      const Group grp = groups[static_cast<std::size_t>(gi)];
      const index_t base = row_base(grp.r0);
      const std::size_t blk = static_cast<std::size_t>(grp.blk);
      const std::size_t cols = pad_cols(blk * static_cast<std::size_t>(nb));
      cfloat* cur = buf.data();
      cfloat* alt = buf.data() + len * cols;
      // Gather: element k of (row j, slice b) at cur[k·cols + j·nb + b].
      for (index_t b = 0; b < nb; ++b) {
        const cfloat* p =
            slabs + static_cast<std::size_t>(b) * static_cast<std::size_t>(slab_elems_) + base;
        cfloat* dst = cur + static_cast<std::size_t>(b);
        for (std::size_t k = 0; k < len; ++k) {
          const cfloat* src = p + static_cast<index_t>(k) * ax_st;
          cfloat* d = dst + k * cols;
          for (std::size_t j = 0; j < blk; ++j) d[j * static_cast<std::size_t>(nb)] = src[j];
        }
      }
      for (std::size_t pad = blk * static_cast<std::size_t>(nb); pad < cols; ++pad) {
        for (std::size_t k = 0; k < len; ++k) cur[k * cols + pad] = cfloat(0.0f, 0.0f);
      }
      // Stages ping-pong cur ↔ alt; stride starts at `cols` (one element of
      // every column between consecutive sub-transform elements).
      std::size_t nn = len;
      std::size_t sc = cols;
      for (std::size_t st_i = 0; st_i < stg.radix.size(); ++st_i) {
        const cfloat* tw = stg.tw[st_i].data();
        if (stg.radix[st_i] == 4) {
          if (avx2_) {
            stage4_cols_avx2(cur, alt, nn, sc, tw, sign);
          } else {
            stage4_cols(cur, alt, nn, sc, tw, sign);
          }
          nn /= 4;
          sc *= 4;
        } else {
          if (avx2_) {
            stage2_cols_avx2(cur, alt, nn, sc, tw);
          } else {
            stage2_cols(cur, alt, nn, sc, tw);
          }
          nn /= 2;
          sc *= 2;
        }
        std::swap(cur, alt);
      }
      // Scatter the transformed rows back.
      for (index_t b = 0; b < nb; ++b) {
        cfloat* p =
            slabs + static_cast<std::size_t>(b) * static_cast<std::size_t>(slab_elems_) + base;
        const cfloat* src = cur + static_cast<std::size_t>(b);
        for (std::size_t k = 0; k < len; ++k) {
          cfloat* d = p + static_cast<index_t>(k) * ax_st;
          const cfloat* s = src + k * cols;
          for (std::size_t j = 0; j < blk; ++j) d[j] = s[j * static_cast<std::size_t>(nb)];
        }
      }
    }
  });
}

}  // namespace nufft::exec
