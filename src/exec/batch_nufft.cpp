#include "exec/batch_nufft.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/timer.hpp"
#include "core/convolution.hpp"
#include "core/convolution_avx2.hpp"
#include "exec/batch_conv.hpp"
#include "obs/trace.hpp"
#include "parallel/scheduler.hpp"

namespace nufft::exec {

namespace {

// Convolution loop blocking: windows for kSampleBlock consecutive (sorted)
// samples are staged once, then swept over kSlabGroup slabs at a time. The
// block's windows overlap heavily after bucket sorting, so the touched grid
// region of a slab group stays cache-resident across the whole block, while
// the group width keeps the per-row weight-vector build amortized over
// several slices.
constexpr index_t kSampleBlock = 32;
constexpr index_t kSlabGroup = 8;

inline index_t wrap_coord(index_t v, index_t m) {
  if (v < 0) return v + m;
  if (v >= m) return v - m;
  return v;
}

// The grid rows that carry image content along each dim: the sorted set of
// wrapped image indices (the zero-pad corners of the oversampled grid).
std::array<std::vector<index_t>, 3> corner_rows(const GridDesc& g,
                                                const std::array<std::vector<index_t>, 3>& wrap) {
  std::array<std::vector<index_t>, 3> corners;
  for (int d = 0; d < g.dim; ++d) {
    const auto ds = static_cast<std::size_t>(d);
    std::vector<char> mark(static_cast<std::size_t>(g.m[ds]), 0);
    for (const index_t v : wrap[ds]) mark[static_cast<std::size_t>(v)] = 1;
    for (std::size_t i = 0; i < mark.size(); ++i) {
      if (mark[i]) corners[ds].push_back(static_cast<index_t>(i));
    }
  }
  return corners;
}

template <class F1, class F2, class F3>
void dim_dispatch(int dim, F1&& f1, F2&& f2, F3&& f3) {
  switch (dim) {
    case 1:
      f1();
      return;
    case 2:
      f2();
      return;
    case 3:
      f3();
      return;
    default:
      throw Error("unsupported dimension");
  }
}

}  // namespace

BatchNufft::BatchNufft(const Nufft& plan, index_t max_batch)
    : plan_(&plan),
      capacity_(std::min<index_t>(std::max<index_t>(max_batch, 1), kMaxBatch)),
      slab_elems_(static_cast<std::size_t>(plan.grid_desc().grid_elems())),
      conv_mode_(plan.conv_mode()),
      bfft_(plan.grid_desc(), corner_rows(plan.grid_desc(), plan.wrap_), *plan.fft_fwd_,
            *plan.fft_inv_) {
  // The slabs are the irreducible working set — without them there is no
  // batched apply at all, so this allocation failure propagates.
  slabs_.resize(static_cast<std::size_t>(capacity_) * slab_elems_);
  const auto& pp = plan_->pp_;
  // The private reduction buffers are an optimization: when they cannot be
  // allocated (B × box_elems per over-dense task can dwarf the slabs on
  // dense trajectories), degrade to the TDG-serialized direct-scatter path
  // instead of failing the construction.
  try {
    fault::inject_alloc("batch.private_alloc");
    private_slabs_.resize(pp.tasks.size());
    for (std::size_t k = 0; k < pp.tasks.size(); ++k) {
      if (pp.privatized[k]) {
        private_slabs_[k].resize(static_cast<std::size_t>(capacity_) *
                                 static_cast<std::size_t>(pp.tasks[k].box_elems(plan_->g_.dim)));
      }
    }
  } catch (const std::bad_alloc&) {
    private_slabs_.clear();
    privatization_downgraded_ = true;
    privatized_off_.assign(pp.tasks.size(), 0);
  }
}

BatchNufft::~BatchNufft() = default;

void BatchNufft::clear_slabs(index_t nb, ThreadPool& pool) {
  cfloat* p = slabs_.data();
  const auto total = static_cast<index_t>(static_cast<std::size_t>(nb) * slab_elems_);
  pool.parallel_for(total, [&](index_t b, index_t e) {
    zero_complex(p + b, static_cast<std::size_t>(e - b));
  });
}

void BatchNufft::batch_image_to_grid(const cfloat* const* images, index_t nb,
                                     ThreadPool& pool) {
  clear_slabs(nb, pool);
  const GridDesc& g = plan_->g_;
  const int dim = g.dim;
  const auto st = g.grid_strides();
  const index_t n0 = g.n[0];
  const index_t n1 = dim >= 2 ? g.n[1] : 1;
  const index_t n2 = dim >= 3 ? g.n[2] : 1;
  const auto& scale = plan_->scale_;
  const auto& wrap = plan_->wrap_;
  pool.parallel_for(n0, [&](index_t rb, index_t re) {
    for (index_t i0 = rb; i0 < re; ++i0) {
      const float f0 = scale[0][static_cast<std::size_t>(i0)];
      const index_t g0 = wrap[0][static_cast<std::size_t>(i0)];
      for (index_t i1 = 0; i1 < n1; ++i1) {
        const float f01 = dim >= 2 ? f0 * scale[1][static_cast<std::size_t>(i1)] : f0;
        const index_t g1 = dim >= 2 ? wrap[1][static_cast<std::size_t>(i1)] : 0;
        // Row geometry resolved once, applied to every slice.
        cfloat* dst0 = slabs_.data() + g0 * st[0] + (dim >= 2 ? g1 * st[1] : 0);
        const index_t row_off = (i0 * n1 + i1) * n2;
        for (index_t b = 0; b < nb; ++b) {
          const cfloat* src = images[b] + row_off;
          cfloat* dst = dst0 + static_cast<std::size_t>(b) * slab_elems_;
          if (dim >= 3) {
            for (index_t i2 = 0; i2 < n2; ++i2) {
              dst[wrap[2][static_cast<std::size_t>(i2)]] =
                  src[i2] * (f01 * scale[2][static_cast<std::size_t>(i2)]);
            }
          } else {
            dst[0] = src[0] * f01;
          }
        }
      }
    }
  });
}

void BatchNufft::batch_grid_to_image(cfloat* const* images, index_t nb, ThreadPool& pool) {
  const GridDesc& g = plan_->g_;
  const int dim = g.dim;
  const auto st = g.grid_strides();
  const index_t n0 = g.n[0];
  const index_t n1 = dim >= 2 ? g.n[1] : 1;
  const index_t n2 = dim >= 3 ? g.n[2] : 1;
  const auto& scale = plan_->scale_;
  const auto& wrap = plan_->wrap_;
  pool.parallel_for(n0, [&](index_t rb, index_t re) {
    for (index_t i0 = rb; i0 < re; ++i0) {
      const float f0 = scale[0][static_cast<std::size_t>(i0)];
      const index_t g0 = wrap[0][static_cast<std::size_t>(i0)];
      for (index_t i1 = 0; i1 < n1; ++i1) {
        const float f01 = dim >= 2 ? f0 * scale[1][static_cast<std::size_t>(i1)] : f0;
        const index_t g1 = dim >= 2 ? wrap[1][static_cast<std::size_t>(i1)] : 0;
        const cfloat* src0 = slabs_.data() + g0 * st[0] + (dim >= 2 ? g1 * st[1] : 0);
        const index_t row_off = (i0 * n1 + i1) * n2;
        for (index_t b = 0; b < nb; ++b) {
          cfloat* dst = images[b] + row_off;
          const cfloat* src = src0 + static_cast<std::size_t>(b) * slab_elems_;
          if (dim >= 3) {
            for (index_t i2 = 0; i2 < n2; ++i2) {
              dst[i2] = src[wrap[2][static_cast<std::size_t>(i2)]] *
                        (f01 * scale[2][static_cast<std::size_t>(i2)]);
            }
          } else {
            dst[0] = src[0] * f01;
          }
        }
      }
    }
  });
}

template <int DIM>
void BatchNufft::batch_interp(cfloat* const* raws, index_t nb, ThreadPool& pool) {
  const auto st = plan_->g_.grid_strides();
  const cfloat* slab0 = slabs_.data();
  const auto& pp = plan_->pp_;
  const int ntasks = static_cast<int>(pp.tasks.size());
  const Nufft::ConvMode mode = conv_mode_;
  const bool fill_dup = mode != Nufft::ConvMode::kScalar;
  const WindowEval ev = plan_->window_eval();
  pool.parallel_for_tid(ntasks, 1, [&](int, index_t kb, index_t ke) {
    // Sample-block × slab-group order: consecutive sorted samples' windows
    // overlap heavily, so sweeping a block of samples over a small group of
    // slabs keeps the touched grid region cache-resident, instead of cycling
    // all nb slab working sets through the cache once per sample.
    std::vector<WindowBuf> wbs(static_cast<std::size_t>(kSampleBlock));
    std::vector<index_t> ois(static_cast<std::size_t>(kSampleBlock));
    cfloat outs[kMaxBatch];
    for (index_t k = kb; k < ke; ++k) {
      const ConvTask& task = pp.tasks[static_cast<std::size_t>(k)];
      for (index_t s0 = task.begin; s0 < task.end; s0 += kSampleBlock) {
        const index_t sb = std::min<index_t>(kSampleBlock, task.end - s0);
        for (index_t i = 0; i < sb; ++i) {
          float coord[3];
          for (int d = 0; d < DIM; ++d) {
            coord[d] = pp.coords[static_cast<std::size_t>(d)][static_cast<std::size_t>(s0 + i)];
          }
          compute_window(plan_->g_, ev, coord, DIM, fill_dup,
                         wbs[static_cast<std::size_t>(i)]);
          ois[static_cast<std::size_t>(i)] =
              pp.orig_index[static_cast<std::size_t>(s0 + i)];
        }
        if (mode == Nufft::ConvMode::kScalar) {
          for (index_t b = 0; b < nb; ++b) {
            const cfloat* slab = slab0 + static_cast<std::size_t>(b) * slab_elems_;
            cfloat* raw = raws[b];
            for (index_t i = 0; i < sb; ++i) {
              raw[ois[static_cast<std::size_t>(i)]] =
                  fwd_gather_scalar<DIM>(slab, st, wbs[static_cast<std::size_t>(i)]);
            }
          }
        } else {
          for (index_t b0 = 0; b0 < nb; b0 += kSlabGroup) {
            const index_t gnb = std::min<index_t>(kSlabGroup, nb - b0);
            const cfloat* gslab0 = slab0 + static_cast<std::size_t>(b0) * slab_elems_;
            for (index_t i = 0; i < sb; ++i) {
              const WindowBuf& wb = wbs[static_cast<std::size_t>(i)];
              if (mode == Nufft::ConvMode::kSse) {
                bfwd_gather_sse<DIM>(gslab0, slab_elems_, gnb, st, wb, outs);
              } else {
                bfwd_gather_avx2<DIM>(gslab0, slab_elems_, gnb, st, wb, outs);
              }
              const index_t oi = ois[static_cast<std::size_t>(i)];
              for (index_t b = 0; b < gnb; ++b) raws[b0 + b][oi] = outs[b];
            }
          }
        }
      }
    }
  });
}

template <int DIM>
void BatchNufft::batch_spread(const cfloat* const* raws, index_t nb, ThreadPool& pool,
                              OperatorStats* stats) {
  const auto st = plan_->g_.grid_strides();
  cfloat* slab0 = slabs_.data();
  const auto& pp = plan_->pp_;
  const PlanConfig& cfg = plan_->cfg_;
  const Nufft::ConvMode mode = conv_mode_;
  const bool fill_dup = mode != Nufft::ConvMode::kScalar;
  const WindowEval ev = plan_->window_eval();

  auto convolve_range = [&](const ConvTask& task, cfloat* dst0, std::size_t sstride,
                            const std::array<index_t, 3>& strides, bool box_local) {
    // Sample-block × slab-group order (see batch_interp): windows and raw
    // values for a block of consecutive samples are staged once, then the
    // block is scattered into a few slabs at a time so the overlapping
    // window region stays cache-resident. Per-slab sample order is
    // unchanged, so scalar-mode accumulation stays bit-identical to the
    // single-transform path.
    std::vector<WindowBuf> wbs(static_cast<std::size_t>(kSampleBlock));
    std::vector<cfloat> vals(static_cast<std::size_t>(kSampleBlock * kMaxBatch));
    for (index_t s0 = task.begin; s0 < task.end; s0 += kSampleBlock) {
      const index_t sb = std::min<index_t>(kSampleBlock, task.end - s0);
      for (index_t i = 0; i < sb; ++i) {
        WindowBuf& wb = wbs[static_cast<std::size_t>(i)];
        float coord[3];
        for (int d = 0; d < DIM; ++d) {
          coord[d] = pp.coords[static_cast<std::size_t>(d)][static_cast<std::size_t>(s0 + i)];
        }
        compute_window(plan_->g_, ev, coord, DIM, fill_dup, wb);
        if (box_local) {
          for (int d = 0; d < DIM; ++d) {
            for (int t = 0; t < wb.len[d]; ++t) {
              wb.idx[d][t] = wb.start[d] + t - task.box_lo[static_cast<std::size_t>(d)];
            }
          }
          wb.inner_contiguous = true;
        }
        const index_t oi = pp.orig_index[static_cast<std::size_t>(s0 + i)];
        for (index_t b = 0; b < nb; ++b) {
          vals[static_cast<std::size_t>(i * kMaxBatch + b)] = raws[b][oi];
        }
      }
      if (mode == Nufft::ConvMode::kScalar) {
        for (index_t b = 0; b < nb; ++b) {
          cfloat* dst = dst0 + static_cast<std::size_t>(b) * sstride;
          for (index_t i = 0; i < sb; ++i) {
            adj_scatter_scalar<DIM>(dst, strides, wbs[static_cast<std::size_t>(i)],
                                    vals[static_cast<std::size_t>(i * kMaxBatch + b)]);
          }
        }
      } else {
        for (index_t b0 = 0; b0 < nb; b0 += kSlabGroup) {
          const index_t gnb = std::min<index_t>(kSlabGroup, nb - b0);
          cfloat* gdst0 = dst0 + static_cast<std::size_t>(b0) * sstride;
          for (index_t i = 0; i < sb; ++i) {
            const cfloat* v = vals.data() + static_cast<std::size_t>(i * kMaxBatch + b0);
            if (mode == Nufft::ConvMode::kSse) {
              badj_scatter_sse<DIM>(gdst0, sstride, gnb, strides,
                                    wbs[static_cast<std::size_t>(i)], v);
            } else {
              badj_scatter_avx2<DIM>(gdst0, sstride, gnb, strides,
                                     wbs[static_cast<std::size_t>(i)], v);
            }
          }
        }
      }
    }
  };

  auto body = [&](int task_id, int, JobPhase phase) {
    const ConvTask& task = pp.tasks[static_cast<std::size_t>(task_id)];
    switch (phase) {
      case JobPhase::kConvolve:
        convolve_range(task, slab0, slab_elems_, st, false);
        break;
      case JobPhase::kPrivateConvolve: {
        auto& buf = private_slabs_[static_cast<std::size_t>(task_id)];
        const auto box_elems = static_cast<std::size_t>(task.box_elems(DIM));
        zero_complex(buf.data(), static_cast<std::size_t>(nb) * box_elems);
        std::array<index_t, 3> bst{1, 1, 1};
        for (int d = DIM - 2; d >= 0; --d) {
          bst[static_cast<std::size_t>(d)] =
              bst[static_cast<std::size_t>(d + 1)] *
              (task.box_hi[static_cast<std::size_t>(d + 1)] -
               task.box_lo[static_cast<std::size_t>(d + 1)]);
        }
        convolve_range(task, buf.data(), box_elems, bst, true);
        break;
      }
      case JobPhase::kReduce: {
        // Merge each slice's private box into its slab, wrapping mod M.
        const auto& buf = private_slabs_[static_cast<std::size_t>(task_id)];
        const auto box_elems = static_cast<std::size_t>(task.box_elems(DIM));
        std::array<index_t, 3> blen{1, 1, 1};
        for (int d = 0; d < DIM; ++d) {
          blen[static_cast<std::size_t>(d)] = task.box_hi[static_cast<std::size_t>(d)] -
                                              task.box_lo[static_cast<std::size_t>(d)];
        }
        const index_t rows = DIM >= 2 ? blen[0] * (DIM >= 3 ? blen[1] : 1) : 1;
        const index_t inner = blen[static_cast<std::size_t>(DIM - 1)];
        const GridDesc& g = plan_->g_;
        for (index_t b = 0; b < nb; ++b) {
          cfloat* grid = slab0 + static_cast<std::size_t>(b) * slab_elems_;
          const cfloat* box = buf.data() + static_cast<std::size_t>(b) * box_elems;
          for (index_t r = 0; r < rows; ++r) {
            const index_t b0 = DIM >= 3 ? r / blen[1] : (DIM == 2 ? r : 0);
            const index_t b1 = DIM >= 3 ? r % blen[1] : 0;
            index_t base = 0;
            if (DIM >= 2) base += wrap_coord(task.box_lo[0] + b0, g.m[0]) * st[0];
            if (DIM >= 3) base += wrap_coord(task.box_lo[1] + b1, g.m[1]) * st[1];
            const cfloat* src = box + r * inner;
            const index_t lo = task.box_lo[static_cast<std::size_t>(DIM - 1)];
            const index_t m = g.m[static_cast<std::size_t>(DIM - 1)];
            for (index_t c = 0; c < inner; ++c) {
              grid[base + wrap_coord(lo + c, m)] += src[c];
            }
          }
        }
        break;
      }
    }
  };

  SchedulerStats sstats;
  if (cfg.color_barrier_schedule) {
    sstats = run_task_graph_colored(*pp.graph, pp.weights, pool, body);
  } else {
    SchedulerConfig scfg;
    scfg.priority_queue = cfg.priority_queue;
    scfg.record_trace = cfg.record_trace;
    // When the private buffers failed to allocate, an all-zero privatized
    // mask routes every task through the TDG-serialized direct-scatter path.
    const auto& priv = privatization_downgraded_ ? privatized_off_ : pp.privatized;
    sstats = run_task_graph(*pp.graph, pp.weights, priv, pool, body, scfg);
  }
  if (stats != nullptr) {
    // Accumulate element-wise: a B-slice adjoint walks the scheduler once
    // per slab-group chunk, and the apply's load-balance record must cover
    // every walk, not just the last one.
    stats->add_scheduler_pass(sstats.tasks, sstats.privatized_tasks,
                              sstats.busy_ns_per_context);
  }
  if (trace_.empty()) {
    trace_ = std::move(sstats.trace);
  } else {
    trace_.insert(trace_.end(), sstats.trace.begin(), sstats.trace.end());
  }
}

void BatchNufft::forward_chunk(const cfloat* const* images, cfloat* const* raws, index_t nb,
                               ThreadPool& pool) {
  Timer t;
  {
    obs::Span s("batch.scale", "batch", nb);
    batch_image_to_grid(images, nb, pool);
  }
  fwd_stats_.scale_s += t.seconds();

  t.reset();
  {
    obs::Span s("batch.fft", "batch", nb);
    const bool batched_stages = conv_mode_ != Nufft::ConvMode::kScalar;
    bfft_.transform(slabs_.data(), nb, fft::Direction::kForward, pool, batched_stages);
  }
  fwd_stats_.fft_s += t.seconds();

  t.reset();
  {
    obs::Span s("batch.conv", "batch", nb);
    dim_dispatch(
        plan_->g_.dim, [&] { batch_interp<1>(raws, nb, pool); },
        [&] { batch_interp<2>(raws, nb, pool); }, [&] { batch_interp<3>(raws, nb, pool); });
  }
  fwd_stats_.conv_s += t.seconds();
}

void BatchNufft::adjoint_chunk(const cfloat* const* raws, cfloat* const* images, index_t nb,
                               ThreadPool& pool) {
  Timer t;
  {
    obs::Span s("batch.scale", "batch", nb);
    clear_slabs(nb, pool);
  }
  adj_stats_.scale_s += t.seconds();

  t.reset();
  {
    obs::Span s("batch.conv", "batch", nb);
    dim_dispatch(
        plan_->g_.dim, [&] { batch_spread<1>(raws, nb, pool, &adj_stats_); },
        [&] { batch_spread<2>(raws, nb, pool, &adj_stats_); },
        [&] { batch_spread<3>(raws, nb, pool, &adj_stats_); });
  }
  adj_stats_.conv_s += t.seconds();

  t.reset();
  {
    obs::Span s("batch.fft", "batch", nb);
    const bool batched_stages = conv_mode_ != Nufft::ConvMode::kScalar;
    bfft_.transform(slabs_.data(), nb, fft::Direction::kInverse, pool, batched_stages);
  }
  adj_stats_.fft_s += t.seconds();

  t.reset();
  {
    obs::Span s("batch.scale", "batch", nb);
    batch_grid_to_image(images, nb, pool);
  }
  adj_stats_.scale_s += t.seconds();
}

void BatchNufft::forward(const cfloat* const* images, cfloat* const* raws, index_t nb,
                         ThreadPool& pool) {
  NUFFT_CHECK(nb >= 1);
  fwd_stats_ = OperatorStats{};
  trace_.clear();
  obs::Span apply("batch.forward", "batch", nb);
  Timer total;
  for (index_t off = 0; off < nb; off += capacity_) {
    const index_t nc = std::min(capacity_, nb - off);
    try {
      fault::inject_alloc("batch.simd_alloc");
      forward_chunk(images + off, raws + off, nc, pool);
    } catch (const std::bad_alloc&) {
      // A chunk writes every output it touches, so it can be re-run whole on
      // the scalar path (which needs no batch-group scratch). If the scalar
      // path itself cannot allocate there is nothing left to shed.
      if (conv_mode_ == Nufft::ConvMode::kScalar) {
        throw Error("batched forward: allocation failed on the scalar fallback path",
                    ErrorCode::kResourceExhausted);
      }
      conv_mode_ = Nufft::ConvMode::kScalar;
      simd_downgraded_ = true;
      forward_chunk(images + off, raws + off, nc, pool);
    }
  }
  fwd_stats_.total_s = total.seconds();
  fwd_stats_.simd_downgraded = simd_downgraded_;
  fwd_stats_.privatization_downgraded = privatization_downgraded_;
}

void BatchNufft::adjoint(const cfloat* const* raws, cfloat* const* images, index_t nb,
                         ThreadPool& pool) {
  NUFFT_CHECK(nb >= 1);
  adj_stats_ = OperatorStats{};
  trace_.clear();
  obs::Span apply("batch.adjoint", "batch", nb);
  Timer total;
  for (index_t off = 0; off < nb; off += capacity_) {
    const index_t nc = std::min(capacity_, nb - off);
    try {
      fault::inject_alloc("batch.simd_alloc");
      adjoint_chunk(raws + off, images + off, nc, pool);
    } catch (const std::bad_alloc&) {
      if (conv_mode_ == Nufft::ConvMode::kScalar) {
        throw Error("batched adjoint: allocation failed on the scalar fallback path",
                    ErrorCode::kResourceExhausted);
      }
      conv_mode_ = Nufft::ConvMode::kScalar;
      simd_downgraded_ = true;
      adjoint_chunk(raws + off, images + off, nc, pool);
    }
  }
  adj_stats_.total_s = total.seconds();
  adj_stats_.simd_downgraded = simd_downgraded_;
  adj_stats_.privatization_downgraded = privatization_downgraded_;
}

void BatchNufft::forward(const cfloat* const* images, cfloat* const* raws, index_t nb) {
  forward(images, raws, nb, *plan_->pool_);
}

void BatchNufft::adjoint(const cfloat* const* raws, cfloat* const* images, index_t nb) {
  adjoint(raws, images, nb, *plan_->pool_);
}

void BatchNufft::forward(const cfloat* images, cfloat* raws, index_t nb) {
  std::vector<const cfloat*> ip(static_cast<std::size_t>(nb));
  std::vector<cfloat*> rp(static_cast<std::size_t>(nb));
  for (index_t b = 0; b < nb; ++b) {
    ip[static_cast<std::size_t>(b)] = images + b * plan_->image_elems();
    rp[static_cast<std::size_t>(b)] = raws + b * plan_->sample_count();
  }
  forward(ip.data(), rp.data(), nb, *plan_->pool_);
}

void BatchNufft::adjoint(const cfloat* raws, cfloat* images, index_t nb) {
  std::vector<const cfloat*> rp(static_cast<std::size_t>(nb));
  std::vector<cfloat*> ip(static_cast<std::size_t>(nb));
  for (index_t b = 0; b < nb; ++b) {
    rp[static_cast<std::size_t>(b)] = raws + b * plan_->sample_count();
    ip[static_cast<std::size_t>(b)] = images + b * plan_->image_elems();
  }
  adjoint(rp.data(), ip.data(), nb, *plan_->pool_);
}

}  // namespace nufft::exec
