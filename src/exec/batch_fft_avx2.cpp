// This translation unit is compiled with -mavx2 -mfma (see src/CMakeLists).
#include "exec/batch_fft_stages.hpp"

#include "simd/vec8f.hpp"

namespace nufft::exec {

namespace {

using simd::Vec8f;
using simd::fmadd;

inline Vec8f cmul8(Vec8f x, Vec8f wr, Vec8f wi) { return fmadd(x, wr, x.swap_pairs() * wi); }

inline Vec8f wi_pattern8(float im) {
  return Vec8f(_mm256_setr_ps(-im, im, -im, im, -im, im, -im, im));
}

}  // namespace

void stage2_cols_avx2(const cfloat* src, cfloat* dst, std::size_t nn, std::size_t sc,
                      const cfloat* tw) {
  const std::size_t m = nn / 2;
  for (std::size_t p = 0; p < m; ++p) {
    const cfloat w = tw[p];
    const Vec8f wr(w.real());
    const Vec8f wi = wi_pattern8(w.imag());
    const auto* a = reinterpret_cast<const float*>(src + sc * p);
    const auto* b = reinterpret_cast<const float*>(src + sc * (p + m));
    auto* lo = reinterpret_cast<float*>(dst + sc * (2 * p));
    auto* hi = reinterpret_cast<float*>(dst + sc * (2 * p + 1));
    const std::size_t nf = 2 * sc;
    for (std::size_t q = 0; q < nf; q += 8) {
      const Vec8f u = Vec8f::loadu(a + q);
      const Vec8f v = Vec8f::loadu(b + q);
      (u + v).storeu(lo + q);
      cmul8(u - v, wr, wi).storeu(hi + q);
    }
  }
}

void stage4_cols_avx2(const cfloat* src, cfloat* dst, std::size_t nn, std::size_t sc,
                      const cfloat* tw, int sign) {
  const std::size_t m = nn / 4;
  const Vec8f jpat =
      sign < 0 ? Vec8f(_mm256_setr_ps(1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -1.0f))
               : Vec8f(_mm256_setr_ps(-1.0f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f, -1.0f, 1.0f));
  for (std::size_t p = 0; p < m; ++p) {
    const cfloat w1 = tw[p];
    const cfloat w2 = w1 * w1;
    const cfloat w3 = w2 * w1;
    const Vec8f w1r(w1.real()), w1i = wi_pattern8(w1.imag());
    const Vec8f w2r(w2.real()), w2i = wi_pattern8(w2.imag());
    const Vec8f w3r(w3.real()), w3i = wi_pattern8(w3.imag());
    const auto* a = reinterpret_cast<const float*>(src + sc * p);
    const auto* b = reinterpret_cast<const float*>(src + sc * (p + m));
    const auto* c = reinterpret_cast<const float*>(src + sc * (p + 2 * m));
    const auto* d = reinterpret_cast<const float*>(src + sc * (p + 3 * m));
    auto* y0 = reinterpret_cast<float*>(dst + sc * (4 * p));
    auto* y1 = reinterpret_cast<float*>(dst + sc * (4 * p + 1));
    auto* y2 = reinterpret_cast<float*>(dst + sc * (4 * p + 2));
    auto* y3 = reinterpret_cast<float*>(dst + sc * (4 * p + 3));
    const std::size_t nf = 2 * sc;
    for (std::size_t q = 0; q < nf; q += 8) {
      const Vec8f A = Vec8f::loadu(a + q);
      const Vec8f B = Vec8f::loadu(b + q);
      const Vec8f C = Vec8f::loadu(c + q);
      const Vec8f D = Vec8f::loadu(d + q);
      const Vec8f apc = A + C;
      const Vec8f amc = A - C;
      const Vec8f bpd = B + D;
      const Vec8f bmd = B - D;
      const Vec8f jb = bmd.swap_pairs() * jpat;  // sign·i·(b−d)
      (apc + bpd).storeu(y0 + q);
      cmul8(amc + jb, w1r, w1i).storeu(y1 + q);
      cmul8(apc - bpd, w2r, w2i).storeu(y2 + q);
      cmul8(amc - jb, w3r, w3i).storeu(y3 + q);
    }
  }
}

}  // namespace nufft::exec
