// Batched NUFFT: apply one plan to B right-hand sides in a single pass
// (paper §V-E taken to its production conclusion — the cuFINUFFT-style
// multi-vector execution model).
//
// What one batched pass amortizes over B slices, relative to B sequential
// single applies on the same plan:
//
//  * Part 1 of the convolution — each sample's interpolation window is
//    computed once and reused for every slice (the window depends only on
//    the trajectory, not on the data).
//  * The scheduler — one TDG / priority-queue walk convolves all B slices
//    per task, so fork/join and queue traffic are paid once.
//  * Part 2 weight vectors — the multi-slice kernels (batch_conv.hpp) hoist
//    the wxy·win products out of the slice loop.
//  * The FFT — pruned to the populated corner rows and run with
//    column-interleaved batched Stockham stages (batch_fft.hpp).
//  * Scale/chop/rolloff — the per-row wrap indices and scale factors are
//    resolved once per grid row, then applied to all B slices.
//
// Grid layout: B slabs, batch-major — slice b's oversampled grid occupies
// [b·grid_elems(), (b+1)·grid_elems()). Within a slab the layout is exactly
// the single-transform grid, so every tuned row kernel applies unchanged and
// the per-slice FFT needs no transpose. (A batch-innermost per-cell layout
// was considered and rejected: it vectorizes the scatter across the batch
// but forces a full transpose before the FFT and abandons the tuned
// unit-stride row kernels; see DESIGN.md §7.)
//
// Concurrency: a BatchNufft owns its slabs, so one instance serves one
// caller at a time — it is the batched analogue of a Workspace. The plan is
// only read; any number of BatchNufft instances (and Workspace applies) may
// run concurrently on one plan, each with its own ThreadPool.
//
// Determinism: in scalar mode (PlanConfig::use_simd = false) with one
// thread, batched results are bit-identical to B single applies — the
// per-slice scatter/gather/FFT operations execute in the same order with
// the same associations. The SIMD paths re-associate weight products across
// the batch and match to rounding (tests pin 1e-5).
#pragma once

#include <memory>
#include <vector>

#include "common/types.hpp"
#include "core/nufft.hpp"
#include "core/stats.hpp"
#include "exec/batch_fft.hpp"

namespace nufft::exec {

class BatchNufft {
 public:
  /// Size the batch buffers for up to `max_batch` slices per pass (clamped
  /// to kMaxBatch; larger applies are processed in chunks). The plan must
  /// outlive this object.
  BatchNufft(const Nufft& plan, index_t max_batch);
  ~BatchNufft();

  BatchNufft(const BatchNufft&) = delete;
  BatchNufft& operator=(const BatchNufft&) = delete;

  const Nufft& plan() const { return *plan_; }
  index_t max_batch() const { return capacity_; }

  // Pointer-per-slice API: images[b] is an image_elems() array, raws[b] a
  // sample_count() array, b < nb. The pool-less overloads run on the plan's
  // own pool (single caller at a time, like the plan's convenience API);
  // pass an explicit pool for concurrent use.
  void forward(const cfloat* const* images, cfloat* const* raws, index_t nb);
  void forward(const cfloat* const* images, cfloat* const* raws, index_t nb, ThreadPool& pool);
  void adjoint(const cfloat* const* raws, cfloat* const* images, index_t nb);
  void adjoint(const cfloat* const* raws, cfloat* const* images, index_t nb, ThreadPool& pool);

  // Contiguous convenience: slice b at base + b·image_elems() / sample_count().
  void forward(const cfloat* images, cfloat* raws, index_t nb);
  void adjoint(const cfloat* raws, cfloat* images, index_t nb);

  /// Phase timings summed over the batch's chunks of the last apply.
  const OperatorStats& last_forward_stats() const { return fwd_stats_; }
  const OperatorStats& last_adjoint_stats() const { return adj_stats_; }
  const std::vector<TraceEvent>& last_trace() const { return trace_; }

  /// Graceful-degradation state (also mirrored into the per-apply stats):
  /// true once a SIMD-path / privatization-buffer allocation failure has
  /// downgraded this instance to the scalar / direct-scatter path.
  bool simd_downgraded() const { return simd_downgraded_; }
  bool privatization_downgraded() const { return privatization_downgraded_; }

 private:
  void forward_chunk(const cfloat* const* images, cfloat* const* raws, index_t nb,
                     ThreadPool& pool);
  void adjoint_chunk(const cfloat* const* raws, cfloat* const* images, index_t nb,
                     ThreadPool& pool);
  void clear_slabs(index_t nb, ThreadPool& pool);
  void batch_image_to_grid(const cfloat* const* images, index_t nb, ThreadPool& pool);
  void batch_grid_to_image(cfloat* const* images, index_t nb, ThreadPool& pool);
  template <int DIM>
  void batch_interp(cfloat* const* raws, index_t nb, ThreadPool& pool);
  template <int DIM>
  void batch_spread(const cfloat* const* raws, index_t nb, ThreadPool& pool,
                    OperatorStats* stats);

  const Nufft* plan_;
  index_t capacity_ = 0;
  std::size_t slab_elems_ = 0;
  // Effective convolution mode: starts as the plan's resolved mode and is
  // downgraded (sticky) to kScalar when a SIMD-path allocation fails
  // mid-apply — the chunk is re-run on the scalar path and the downgrade is
  // recorded in the apply's OperatorStats.
  Nufft::ConvMode conv_mode_;
  bool simd_downgraded_ = false;
  // Set when the private reduction buffers could not be allocated: spreads
  // run every task through the TDG-serialized direct-scatter path instead.
  bool privatization_downgraded_ = false;
  std::vector<char> privatized_off_;   // all-zero mask used when downgraded
  cvecf slabs_;                        // capacity · grid_elems(), batch-major
  std::vector<cvecf> private_slabs_;   // per privatized task: capacity · box_elems
  BatchFft bfft_;
  OperatorStats fwd_stats_;
  OperatorStats adj_stats_;
  std::vector<TraceEvent> trace_;
};

}  // namespace nufft::exec
