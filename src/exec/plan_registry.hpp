// Concurrent plan registry: amortize preprocessing across transforms that
// share a trajectory (the paper's §V-E offline-reuse argument, made safe for
// multi-threaded services).
//
// Plans are keyed by the *content* of what determines them: grid geometry,
// a 64-bit hash of the trajectory coordinates (datasets::content_hash), and
// every PlanConfig field. Two requests with equal keys get the same plan.
//
// Concurrency — single-flight builds: the first requester of a key installs
// a pending entry and builds the plan outside the registry lock; concurrent
// requesters of the same key find the pending entry and block on its shared
// future instead of duplicating the (expensive) preprocessing pass. A failed
// build propagates its exception to every waiter and leaves no entry behind.
//
// Memory — LRU with optional disk spill: each resident plan is charged
// plan_resident_bytes() + workspace_bytes(). When the total exceeds
// RegistryConfig::max_bytes, least-recently-acquired ready entries are
// evicted (never the one just inserted, and never pending builds). With a
// spill_dir configured, eviction serializes the preprocessing result via
// save_plan; a later acquire of the same key restores it with load_plan and
// skips the partition/bin/reorder pass. Without a spill_dir evicted plans
// are simply dropped and rebuilt on demand. Evicted shared_ptrs held by
// callers stay valid — eviction only releases the registry's reference.
#pragma once

#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "core/grid.hpp"
#include "core/nufft.hpp"
#include "core/preprocess.hpp"
#include "datasets/trajectory.hpp"

namespace nufft::exec {

struct RegistryConfig {
  std::size_t max_bytes = 256u << 20;  // resident-plan budget
  std::string spill_dir;               // empty: evicted plans are dropped
};

struct RegistryStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t spills = 0;
  std::uint64_t spill_restores = 0;
  std::uint64_t single_flight_waits = 0;  // hits that blocked on a pending build
};

class PlanRegistry {
 public:
  explicit PlanRegistry(RegistryConfig cfg = {});

  PlanRegistry(const PlanRegistry&) = delete;
  PlanRegistry& operator=(const PlanRegistry&) = delete;

  /// The plan for (g, samples, cfg) — built, restored from spill, or shared
  /// with earlier acquirers. Blocks if another thread is mid-build on the
  /// same key. Thread-safe.
  std::shared_ptr<const Nufft> acquire(const GridDesc& g, const datasets::SampleSet& samples,
                                       const PlanConfig& cfg);

  RegistryStats stats() const;
  std::size_t resident_bytes() const;
  std::size_t resident_count() const;

  /// The registry key: packed bytes of the grid geometry, the trajectory
  /// content hash, and every PlanConfig field.
  static std::string make_key(const GridDesc& g, const datasets::SampleSet& samples,
                              const PlanConfig& cfg);

 private:
  struct Entry {
    std::shared_future<std::shared_ptr<const Nufft>> plan;
    std::uint64_t tick = 0;   // last-acquire stamp for LRU
    std::size_t bytes = 0;    // charged once ready
    bool ready = false;
  };

  void evict_locked(const std::string& keep_key);
  std::string spill_path(const std::string& key) const;

  RegistryConfig cfg_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> entries_;
  std::uint64_t tick_ = 0;
  std::size_t bytes_ = 0;
  RegistryStats stats_;
};

}  // namespace nufft::exec
