// Concurrent plan registry: amortize preprocessing across transforms that
// share a trajectory (the paper's §V-E offline-reuse argument, made safe for
// multi-threaded services).
//
// Plans are keyed by the *content* of what determines them: grid geometry,
// a 64-bit hash of the trajectory coordinates (datasets::content_hash), and
// every PlanConfig field. Two requests with equal keys get the same plan.
//
// Concurrency — single-flight builds: the first requester of a key installs
// a pending entry and builds the plan outside the registry lock; concurrent
// requesters of the same key find the pending entry and block on its shared
// future instead of duplicating the (expensive) preprocessing pass. A failed
// build propagates its exception to every waiter and leaves no entry behind.
//
// Memory — LRU with optional disk spill: each resident plan is charged
// plan_resident_bytes() + workspace_bytes(). When the total exceeds
// RegistryConfig::max_bytes, least-recently-acquired ready entries are
// evicted (never the one just inserted, and never pending builds). With a
// spill_dir configured, eviction serializes the preprocessing result via
// save_plan; a later acquire of the same key restores it with load_plan and
// skips the partition/bin/reorder pass. Without a spill_dir evicted plans
// are simply dropped and rebuilt on demand. Evicted shared_ptrs held by
// callers stay valid — eviction only releases the registry's reference.
// Tenant quota charges on an evicted entry are NOT refunded while outside
// references keep the plan resident: the charges move to a deferred-refund
// list keyed by a weak_ptr and are released only once the last holder drops
// the plan (swept on the next acquire/eviction or quota query). Without
// this, a tenant could cycle register → LRU-evict → register and pin
// arbitrarily more memory than tenant_max_bytes through its own handles.
//
// Failure handling: a build that throws never caches — the pending entry is
// erased, every single-flight waiter receives the exception through the
// shared future, and the next acquire of the key starts a fresh build. Spill
// files carry a checksummed header (core/plan_cache), so a corrupt or
// truncated file is detected, deleted and transparently rebuilt. Keys whose
// builds fail `quarantine_threshold` consecutive times are quarantined: for
// an exponentially growing backoff window further acquires fail fast with
// the stored error instead of re-running a deterministically failing build
// (and re-stampeding single-flight waiters behind it). One success clears
// the key's failure history.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/error.hpp"
#include "core/grid.hpp"
#include "core/nufft.hpp"
#include "core/preprocess.hpp"
#include "datasets/trajectory.hpp"

namespace nufft::exec {

struct RegistryConfig {
  std::size_t max_bytes = 256u << 20;  // resident-plan budget
  std::string spill_dir;               // empty: evicted plans are dropped
  // Per-tenant quotas for multi-tenant acquires (serve::NufftServer). A
  // tenant is charged for every resident entry it has acquired — while a
  // build it joined is still pending, the charge is a conservative byte
  // reservation (estimate_plan_bytes) that is trued up to the real footprint
  // when the build completes, and released if the build fails or the entry
  // is evicted. 0 = unlimited; acquires with an empty tenant are never
  // charged (single-tenant callers keep the old behaviour).
  std::size_t tenant_max_bytes = 0;
  std::size_t tenant_max_plans = 0;
  // Quarantine policy for repeatedly failing keys: after `quarantine_threshold`
  // consecutive build failures, acquires of the key fail fast (with the last
  // stored error) for a backoff window that starts at `quarantine_base_backoff`
  // and doubles per further failure up to `quarantine_max_backoff`.
  int quarantine_threshold = 3;
  std::chrono::milliseconds quarantine_base_backoff{100};
  std::chrono::milliseconds quarantine_max_backoff{60000};
};

struct RegistryStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t spills = 0;
  std::uint64_t spill_restores = 0;
  std::uint64_t single_flight_waits = 0;  // hits that blocked on a pending build
  std::uint64_t build_failures = 0;       // builds that threw (any key)
  std::uint64_t quarantine_rejects = 0;   // acquires failed fast by quarantine
  std::uint64_t corrupt_spills = 0;       // spill files rejected by validation
  std::uint64_t quota_rejects = 0;        // acquires rejected by tenant quota
  std::uint64_t watchdog_quarantines = 0; // plans quarantined via quarantine_plan
  std::uint64_t plan_updates = 0;           // update_plan calls with changed content
  std::uint64_t plan_update_noops = 0;      // update_plan short-circuits (same key)
  std::uint64_t plan_update_fallbacks = 0;  // updates that cold-rebuilt instead
};

/// What PlanRegistry::update_plan did and the plan it produced. `key` is the
/// new registry key — the caller's handle must rebind to it for the next
/// update's diff base.
struct PlanUpdateResult {
  std::shared_ptr<const Nufft> plan;
  std::string key;
  bool noop = false;      // identical content hash: old plan returned as-is
  bool warm = false;      // delta derivation from the old plan (kWarm)
  bool fallback = false;  // a cold build ran (no old plan, or delta too large)
};

class PlanRegistry {
 public:
  explicit PlanRegistry(RegistryConfig cfg = {});

  PlanRegistry(const PlanRegistry&) = delete;
  PlanRegistry& operator=(const PlanRegistry&) = delete;

  /// The plan for (g, samples, cfg) — built, restored from spill, or shared
  /// with earlier acquirers. Blocks if another thread is mid-build on the
  /// same key. Thread-safe.
  ///
  /// A non-empty `tenant` charges the plan's resident footprint against that
  /// tenant's quota (RegistryConfig::tenant_max_bytes / tenant_max_plans);
  /// over-quota acquires throw nufft::Error with ErrorCode::kOverloaded
  /// *before* any build starts. Plans stay content-keyed — tenants acquiring
  /// the same key share one plan and are each charged for it.
  std::shared_ptr<const Nufft> acquire(const GridDesc& g, const datasets::SampleSet& samples,
                                       const PlanConfig& cfg,
                                       const std::string& tenant = std::string());

  /// Generation-aware streaming update: register the plan for `new_samples`,
  /// preferring a warm delta derivation from the resident plan under
  /// `old_key` (typically a previous acquire/update's key) over a cold
  /// build. `cfg` must equal the configuration `old_key` was made with — the
  /// derivation shares the old plan's config-derived tables verbatim.
  ///
  /// Content-hash short-circuit: when the new samples hash to `old_key`
  /// exactly (a bitwise no-op update), the resident plan is returned
  /// untouched — no generation bump, no build, no eviction pressure; the
  /// entry's LRU tick and the tenant charge are refreshed as an acquire
  /// would. Otherwise the new key goes through the standard single-flight
  /// machinery (quota admission at reservation, true-up to the real
  /// footprint once ready — a size change is charged correctly), with the
  /// builder deriving from the old plan when it is still resident and
  /// falling back to a cold build when it is not or when the delta exceeds
  /// the warm path's threshold. The old entry stays resident under its own
  /// key until LRU pressure evicts it. Thread-safe.
  PlanUpdateResult update_plan(const GridDesc& g, const std::string& old_key,
                               const datasets::SampleSet& new_samples, const PlanConfig& cfg,
                               const std::string& tenant = std::string());

  /// Quarantine the resident entry holding `plan` — the engine watchdog's
  /// path for a plan whose apply hung. The entry is dropped from the registry
  /// (outside handles stay valid; tenant charges move to the deferred-refund
  /// list) and further acquires of its key fail fast with
  /// ErrorCode::kUnavailable for the configured quarantine backoff, exactly
  /// as if its builds had failed `quarantine_threshold` times. Returns true
  /// when the plan was found resident. Thread-safe.
  bool quarantine_plan(const std::shared_ptr<const Nufft>& plan, const std::string& reason);

  RegistryStats stats() const;
  std::size_t resident_bytes() const;
  std::size_t resident_count() const;

  /// Bytes currently charged against a tenant: ready entries at their real
  /// footprint, pending builds at their reservation, plus evicted entries
  /// whose plan the tenant (or anyone it handed the shared_ptr to) still
  /// keeps alive. Unknown tenants are 0.
  std::size_t tenant_bytes(const std::string& tenant) const;
  /// Entries currently charged against a tenant.
  std::size_t tenant_plans(const std::string& tenant) const;

  /// Conservative reservation used to admit a build before its real footprint
  /// is known: reordered coordinates + per-sample tables + one grid-sized
  /// workspace. Intentionally on the high side — an admission check against
  /// it can only over-refuse, never over-commit.
  static std::size_t estimate_plan_bytes(const GridDesc& g, const datasets::SampleSet& samples);

  /// The registry key: packed bytes of the grid geometry, the trajectory
  /// content hash, and every PlanConfig field.
  static std::string make_key(const GridDesc& g, const datasets::SampleSet& samples,
                              const PlanConfig& cfg);

 private:
  /// The single-flight core shared by acquire() and update_plan(): entry
  /// lookup, quota admission, pending-entry install, quarantine check, then
  /// `build_fn` outside the lock, ready/true-up/evict on success and
  /// refund/erase/failure-record on throw. `build_fn` produces the plan —
  /// spill-restore + cold build for acquire, warm derivation for update_plan.
  std::shared_ptr<const Nufft> acquire_impl(
      const std::string& key, const GridDesc& g, const datasets::SampleSet& samples,
      const std::string& tenant, const std::function<std::shared_ptr<Nufft>()>& build_fn);

  struct Entry {
    std::shared_future<std::shared_ptr<const Nufft>> plan;
    std::uint64_t tick = 0;   // last-acquire stamp for LRU
    std::size_t bytes = 0;    // charged once ready
    bool ready = false;
    // Per-tenant quota charges held by this entry (reservation while the
    // build is pending, real bytes once ready). Every lifecycle exit —
    // build failure (→ quarantine) and LRU eviction — must refund these;
    // tests/test_exec.cpp cycles build-fail → quarantine → evict to pin it.
    std::unordered_map<std::string, std::size_t> charges;
  };

  struct TenantUsage {
    std::size_t bytes = 0;
    std::size_t plans = 0;
  };

  // Quota charges of an evicted entry whose plan outside holders keep
  // resident. Refunded (and the record dropped) once the weak_ptr expires.
  struct Zombie {
    std::weak_ptr<const Nufft> plan;
    std::unordered_map<std::string, std::size_t> charges;
  };

  // Per-key consecutive-failure record; erased on the first success.
  struct Quarantine {
    int consecutive_failures = 0;
    std::chrono::steady_clock::time_point retry_after{};
    std::string last_error;
    ErrorCode last_code = ErrorCode::kBuildFailure;
  };

  void evict_locked(const std::string& keep_key);
  void record_build_failure_locked(const std::string& key, const std::string& msg,
                                   ErrorCode code);
  std::string spill_path(const std::string& key) const;
  // Charge `bytes` for one entry against a tenant's quota, throwing
  // kOverloaded (and recording quota_rejects) when it would exceed either
  // budget. No-op for the empty tenant.
  void charge_tenant_locked(Entry& e, const std::string& tenant, std::size_t bytes);
  // Release every tenant charge an entry holds (failed build — no plan ever
  // escaped, so the refund is immediate and unconditional).
  void refund_entry_locked(Entry& e);
  // Release a charge map (refund_entry_locked and the zombie sweep share it).
  // const because the sweep runs from const quota queries; the mutated
  // members are declared mutable below.
  void refund_charges_locked(const std::unordered_map<std::string, std::size_t>& charges) const;
  // Refund and drop every zombie whose plan has been released everywhere.
  void sweep_zombies_locked() const;
  // Replace every charge on a now-ready entry with the real footprint.
  void true_up_entry_locked(Entry& e, std::size_t bytes);

  RegistryConfig cfg_;
  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> entries_;
  std::unordered_map<std::string, Quarantine> quarantine_;
  mutable std::unordered_map<std::string, TenantUsage> tenants_;
  mutable std::vector<Zombie> zombies_;
  std::uint64_t tick_ = 0;
  std::size_t bytes_ = 0;
  RegistryStats stats_;
};

}  // namespace nufft::exec
