#include "exec/engine.hpp"

#include <algorithm>
#include <chrono>
#include <new>
#include <utility>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "exec/batch_conv.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace nufft::exec {

namespace {

std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point since) {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now() - since)
                                        .count());
}

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Fire a job's completion hook after its promise has been resolved. The hook
// contract (JobOptions::on_complete) promises a ready future and exactly one
// invocation; a throwing hook is a caller bug we contain rather than letting
// it tear down a worker thread.
void notify_complete(const JobOptions& opts) noexcept {
  if (!opts.on_complete) return;
  try {
    opts.on_complete();
  } catch (...) {
  }
}

}  // namespace

NufftEngine::NufftEngine(EngineConfig cfg) : cfg_(cfg) {
  NUFFT_CHECK(cfg_.workers >= 1);
  NUFFT_CHECK(cfg_.threads_per_worker >= 1);
  threads_.reserve(static_cast<std::size_t>(cfg_.workers));
  for (int w = 0; w < cfg_.workers; ++w) {
    threads_.emplace_back([this] { worker_main(); });
  }
  if (cfg_.stall_threshold.count() >= 0) {
    watchdog_ = std::thread([this] { watchdog_main(); });
  }
}

NufftEngine::~NufftEngine() { shutdown(); }

void NufftEngine::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  {
    std::lock_guard<std::mutex> lock(wd_mu_);
    wd_stop_ = true;
  }
  cv_.notify_all();
  wd_cv_.notify_all();
  // Exactly one caller joins; concurrent shutdown() calls (including the
  // destructor racing an explicit shutdown from another thread) block here
  // until the drain completes instead of racing on std::thread::join.
  // The watchdog goes first: it is the only thread that grows threads_, so
  // once it is joined the worker join loop iterates a stable vector. A truly
  // wedged worker blocks the join until its apply returns — the watchdog has
  // already resolved its future, but thread teardown cannot be forced.
  std::call_once(join_once_, [this] {
    if (watchdog_.joinable()) watchdog_.join();
    for (auto& t : threads_) {
      if (t.joinable()) t.join();
    }
  });
}

EngineLoad NufftEngine::load() const {
  std::lock_guard<std::mutex> lock(mu_);
  return EngineLoad{queue_.size(), active_, static_cast<int>(threads_.size())};
}

std::future<JobResult> NufftEngine::submit(Op op, std::shared_ptr<const Nufft> plan,
                                           const cfloat* in, cfloat* out, index_t batch,
                                           const JobOptions& opts) {
  NUFFT_CHECK(plan != nullptr);
  NUFFT_CHECK(batch >= 1);
  Job job;
  job.op = op;
  job.resolve_plan = [p = std::move(plan)] { return p; };
  job.in = in;
  job.out = out;
  job.batch = batch;
  job.options = opts;
  return enqueue(std::move(job));
}

std::future<JobResult> NufftEngine::submit(Op op, PlanRegistry& registry, const GridDesc& g,
                                           std::shared_ptr<const datasets::SampleSet> samples,
                                           const PlanConfig& cfg, const cfloat* in, cfloat* out,
                                           index_t batch, const JobOptions& opts) {
  NUFFT_CHECK(samples != nullptr);
  NUFFT_CHECK(batch >= 1);
  Job job;
  job.op = op;
  job.resolve_plan = [&registry, g, s = std::move(samples), cfg] {
    return registry.acquire(g, *s, cfg);
  };
  job.in = in;
  job.out = out;
  job.batch = batch;
  job.options = opts;
  return enqueue(std::move(job));
}

std::future<JobResult> NufftEngine::submit_update(
    PlanRegistry& registry, const GridDesc& g, std::string old_key,
    std::shared_ptr<const datasets::SampleSet> new_samples, const PlanConfig& cfg,
    std::shared_ptr<PlanUpdateResult> result, const std::string& tenant,
    const JobOptions& opts) {
  NUFFT_CHECK(new_samples != nullptr);
  Job job;
  job.op = Op::kForward;  // unused: plan_only jobs never apply
  job.plan_only = true;
  job.resolve_plan = [&registry, g, key = std::move(old_key), s = std::move(new_samples), cfg,
                      tenant, r = std::move(result)] {
    PlanUpdateResult upd = registry.update_plan(g, key, *s, cfg, tenant);
    if (r != nullptr) *r = upd;
    return upd.plan;
  };
  job.options = opts;
  obs::count("engine.plan_updates_submitted");
  return enqueue(std::move(job));
}

std::future<JobResult> NufftEngine::enqueue(Job job) {
  auto fut = job.promise.get_future();
  job.submitted = std::chrono::steady_clock::now();
  if (job.options.timeout.count() >= 0) {
    // Stamped at submission, so queue residence counts against the budget.
    // timeout == 0 is already expired here — the job deterministically
    // resolves with kTimeout at dispatch.
    job.deadline = job.submitted + job.options.timeout;
    job.has_deadline = true;
  }
  obs::count("engine.jobs_submitted");
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!stop_) {
      queue_.push_back(std::move(job));
      cv_.notify_one();
      return fut;
    }
  }
  // Racing submit against shutdown is benign: the caller gets a future that
  // reports the job as cancelled instead of a crashed submitter. Resolved
  // outside the lock so the completion hook may inspect the engine.
  obs::count("engine.jobs_rejected");
  job.promise.set_exception(std::make_exception_ptr(
      Error("job submitted after engine shutdown", ErrorCode::kCancelled)));
  notify_complete(job.options);
  return fut;
}

void NufftEngine::worker_main() {
  // Each worker owns its pool: applies use run_on_all, which must not nest,
  // so concurrent jobs need disjoint execution contexts.
  ThreadPool pool(cfg_.threads_per_worker);
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and queue drained
      job = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    obs::observe_ns("engine.queue_wait_ns", elapsed_ns(job.submitted));
    // Shared record the watchdog can see: promise ownership moves here so a
    // stalled job can be resolved from outside this (possibly wedged) thread.
    auto rec = std::make_shared<Running>();
    rec->options = job.options;
    rec->promise = std::move(job.promise);
    rec->last_beat_ns.store(steady_now_ns(), std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(wd_mu_);
      running_.push_back(rec);
    }
    bool expelled = false;
    try {
      obs::Span span("engine.job", "engine", job.batch);
      JobResult result = dispatch_job(job, pool, *rec);
      if (!rec->claimed.exchange(true)) {
        rec->promise.set_value(std::move(result));
        obs::count("engine.jobs_completed");
        notify_complete(rec->options);
      } else {
        expelled = true;
      }
    } catch (...) {
      if (!rec->claimed.exchange(true)) {
        obs::count("engine.jobs_failed");
        rec->promise.set_exception(std::current_exception());
        notify_complete(rec->options);
      } else {
        expelled = true;
      }
    }
    {
      // Only now may the submitter's buffers die: the apply has returned, so
      // releasing options.keepalive (held via rec) is safe.
      std::lock_guard<std::mutex> lock(wd_mu_);
      running_.erase(std::find(running_.begin(), running_.end(), rec));
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
    }
    idle_cv_.notify_all();
    if (expelled) {
      // The watchdog already resolved this job kTimeout and spawned a
      // replacement worker; exiting keeps the worker count at cfg_.workers.
      // Release ordering: a caller that observes this count through
      // watchdog_stats() must also observe the late apply's buffer writes —
      // it is the only signal that the expelled worker is done with them.
      wd_late_.fetch_add(1, std::memory_order_release);
      obs::count("engine.watchdog_late_completions");
      return;
    }
  }
}

void NufftEngine::watchdog_main() {
  const auto threshold = std::chrono::nanoseconds(cfg_.stall_threshold).count();
  auto poll = cfg_.watchdog_poll;
  if (poll.count() <= 0) {
    poll = std::clamp(cfg_.stall_threshold / 4, std::chrono::milliseconds{5},
                      std::chrono::milliseconds{500});
  }
  for (;;) {
    // Claim stalled jobs under wd_mu_, act on them outside it: promise
    // resolution fires user code (future waiters, on_complete) and the
    // quarantine takes the registry lock — neither belongs under wd_mu_.
    std::vector<std::pair<std::shared_ptr<Running>, std::shared_ptr<const Nufft>>> stalled;
    {
      std::unique_lock<std::mutex> lock(wd_mu_);
      wd_cv_.wait_for(lock, poll, [this] { return wd_stop_; });
      if (wd_stop_) return;
      const std::int64_t now = steady_now_ns();
      for (const auto& rec : running_) {
        if (now - rec->last_beat_ns.load(std::memory_order_relaxed) < threshold) continue;
        if (rec->claimed.exchange(true)) continue;  // worker is resolving right now
        stalled.emplace_back(rec, rec->plan);
      }
    }
    for (auto& [rec, plan] : stalled) {
      wd_stalls_.fetch_add(1, std::memory_order_relaxed);
      obs::count("engine.watchdog_stalls");
      rec->promise.set_exception(std::make_exception_ptr(
          Error("watchdog: job heartbeat exceeded the stall threshold (" +
                    std::to_string(cfg_.stall_threshold.count()) + " ms); worker presumed hung",
                ErrorCode::kTimeout)));
      if (cfg_.watchdog_registry != nullptr && plan != nullptr &&
          cfg_.watchdog_registry->quarantine_plan(plan, "watchdog: apply hung on this plan")) {
        wd_quarantines_.fetch_add(1, std::memory_order_relaxed);
      }
      notify_complete(rec->options);
      {
        // Restore the worker slot the wedged thread occupies. Skipped during
        // shutdown — stop_ is set, so a new worker would exit immediately
        // and the join loop may already be iterating threads_.
        std::lock_guard<std::mutex> lock(mu_);
        if (!stop_) {
          threads_.emplace_back([this] { worker_main(); });
          wd_replacements_.fetch_add(1, std::memory_order_relaxed);
          obs::count("engine.watchdog_replacements");
        }
      }
    }
  }
}

WatchdogStats NufftEngine::watchdog_stats() const {
  // Acquire pairs with the release increment of wd_late_ in worker_main:
  // seeing late_completions == n makes the expelled workers' final buffer
  // writes visible, so observers may reclaim job buffers afterwards.
  WatchdogStats s;
  s.stalls = wd_stalls_.load(std::memory_order_relaxed);
  s.quarantines = wd_quarantines_.load(std::memory_order_relaxed);
  s.replacements = wd_replacements_.load(std::memory_order_relaxed);
  s.late_completions = wd_late_.load(std::memory_order_acquire);
  return s;
}

JobResult NufftEngine::dispatch_job(Job& job, ThreadPool& pool, Running& rec) {
  constexpr std::chrono::milliseconds kBackoffCap{250};
  constexpr std::chrono::milliseconds kSleepSlice{10};
  int attempt = 0;
  auto backoff = std::max(job.options.retry_backoff, std::chrono::milliseconds{1});
  for (;;) {
    rec.last_beat_ns.store(steady_now_ns(), std::memory_order_relaxed);
    if (job.options.cancel && job.options.cancel->cancelled()) {
      obs::count("engine.jobs_cancelled");
      throw Error("job cancelled before dispatch", ErrorCode::kCancelled);
    }
    if (job.has_deadline && std::chrono::steady_clock::now() >= job.deadline) {
      obs::count("engine.jobs_timeout");
      throw Error("job deadline expired", ErrorCode::kTimeout);
    }
    try {
      return run_job(job, pool, rec);
    } catch (const std::bad_alloc&) {
      if (attempt >= job.options.max_retries) {
        throw Error("job allocation failed and retry budget is exhausted",
                    ErrorCode::kResourceExhausted);
      }
    } catch (const Error& e) {
      // Deterministic failures (bad input, plan build bugs, cancellation)
      // would fail identically on every attempt — rethrow immediately.
      if (!is_retryable(e.code()) || attempt >= job.options.max_retries) throw;
    }
    ++attempt;
    obs::count("engine.retries");
    // Exponential backoff, sliced so cancellation and the deadline are
    // honoured mid-sleep (the loop head converts them to kCancelled /
    // kTimeout on wakeup).
    auto remaining = backoff;
    while (remaining.count() > 0) {
      if (job.options.cancel && job.options.cancel->cancelled()) break;
      if (job.has_deadline && std::chrono::steady_clock::now() >= job.deadline) break;
      const auto slice = std::min(remaining, kSleepSlice);
      std::this_thread::sleep_for(slice);
      remaining -= slice;
      // Backing off is not a stall — keep the watchdog fed between attempts.
      rec.last_beat_ns.store(steady_now_ns(), std::memory_order_relaxed);
    }
    backoff = std::min(backoff * 2, kBackoffCap);
  }
}

JobResult NufftEngine::run_job(Job& job, ThreadPool& pool, Running& rec) {
  std::shared_ptr<const Nufft> plan = job.resolve_plan();
  {
    // Publish the plan so a stall claimed from here on can quarantine it,
    // and re-stamp the heartbeat: plan resolution may legitimately have
    // taken a while (registry builds run inside the worker) and the apply's
    // budget starts now.
    std::lock_guard<std::mutex> lock(wd_mu_);
    rec.plan = plan;
  }
  rec.last_beat_ns.store(steady_now_ns(), std::memory_order_relaxed);
  // Chaos site: a hung apply, from the watchdog's point of view. The stall
  // duration comes from the site's param (milliseconds).
  fault::maybe_stall("engine.apply.stall");
  // Plan-update jobs are done once the plan resolved — nothing to apply.
  if (job.plan_only) return JobResult{};
  JobResult result;
  if (job.batch == 1) {
    auto ws = lease_workspace(plan);
    // A throwing apply must still return the lease: every apply fully
    // overwrites or re-zeroes the workspace buffers, so a lease that saw a
    // failure is indistinguishable from a fresh one and pooling it back
    // cannot poison later jobs. Leaking it instead would shrink the pool by
    // one slot per failure until every job allocates from scratch.
    try {
      fault::inject("engine.apply", ErrorCode::kInternal);
      fault::inject("engine.apply.transient", ErrorCode::kResourceExhausted);
      if (job.op == Op::kForward) {
        plan->forward(job.in, job.out, *ws, pool);
        result.stats = ws->fwd_stats;
      } else {
        plan->adjoint(job.in, job.out, *ws, pool);
        result.stats = ws->adj_stats;
      }
      result.trace = std::move(ws->trace);
    } catch (...) {
      return_workspace(plan.get(), std::move(ws));
      throw;
    }
    return_workspace(plan.get(), std::move(ws));
  } else {
    auto bn = lease_batch(plan, job.batch);
    try {
      fault::inject("engine.apply", ErrorCode::kInternal);
      fault::inject("engine.apply.transient", ErrorCode::kResourceExhausted);
      std::vector<const cfloat*> in(static_cast<std::size_t>(job.batch));
      std::vector<cfloat*> out(static_cast<std::size_t>(job.batch));
      const index_t in_stride =
          job.op == Op::kForward ? plan->image_elems() : plan->sample_count();
      const index_t out_stride =
          job.op == Op::kForward ? plan->sample_count() : plan->image_elems();
      for (index_t b = 0; b < job.batch; ++b) {
        in[static_cast<std::size_t>(b)] = job.in + b * in_stride;
        out[static_cast<std::size_t>(b)] = job.out + b * out_stride;
      }
      if (job.op == Op::kForward) {
        bn->forward(in.data(), out.data(), job.batch, pool);
        result.stats = bn->last_forward_stats();
      } else {
        bn->adjoint(in.data(), out.data(), job.batch, pool);
        result.stats = bn->last_adjoint_stats();
      }
      result.trace = bn->last_trace();
    } catch (...) {
      return_batch(plan.get(), std::move(bn));
      throw;
    }
    return_batch(plan.get(), std::move(bn));
  }
  return result;
}

std::unique_ptr<Workspace> NufftEngine::lease_workspace(
    const std::shared_ptr<const Nufft>& plan) {
  {
    std::lock_guard<std::mutex> lock(lease_mu_);
    LeasePool& lp = leases_[plan.get()];
    if (!lp.pin) lp.pin = plan;
    if (!lp.workspaces.empty()) {
      auto ws = std::move(lp.workspaces.back());
      lp.workspaces.pop_back();
      return ws;
    }
  }
  return std::make_unique<Workspace>(plan->make_workspace());
}

void NufftEngine::return_workspace(const Nufft* plan, std::unique_ptr<Workspace> ws) {
  std::lock_guard<std::mutex> lock(lease_mu_);
  leases_[plan].workspaces.push_back(std::move(ws));
}

std::unique_ptr<BatchNufft> NufftEngine::lease_batch(const std::shared_ptr<const Nufft>& plan,
                                                     index_t batch) {
  const index_t want = std::min(batch, kMaxBatch);
  {
    std::lock_guard<std::mutex> lock(lease_mu_);
    LeasePool& lp = leases_[plan.get()];
    if (!lp.pin) lp.pin = plan;
    for (auto it = lp.batches.begin(); it != lp.batches.end(); ++it) {
      if ((*it)->max_batch() >= want) {
        auto bn = std::move(*it);
        lp.batches.erase(it);
        return bn;
      }
    }
  }
  return std::make_unique<BatchNufft>(*plan, want);
}

void NufftEngine::return_batch(const Nufft* plan, std::unique_ptr<BatchNufft> bn) {
  std::lock_guard<std::mutex> lock(lease_mu_);
  leases_[plan].batches.push_back(std::move(bn));
}

void NufftEngine::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

}  // namespace nufft::exec
