#include "exec/engine.hpp"

#include <algorithm>
#include <chrono>
#include <new>
#include <utility>

#include "common/error.hpp"
#include "common/fault.hpp"
#include "exec/batch_conv.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace nufft::exec {

namespace {

std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point since) {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now() - since)
                                        .count());
}

// Fire a job's completion hook after its promise has been resolved. The hook
// contract (JobOptions::on_complete) promises a ready future and exactly one
// invocation; a throwing hook is a caller bug we contain rather than letting
// it tear down a worker thread.
void notify_complete(const JobOptions& opts) noexcept {
  if (!opts.on_complete) return;
  try {
    opts.on_complete();
  } catch (...) {
  }
}

}  // namespace

NufftEngine::NufftEngine(EngineConfig cfg) : cfg_(cfg) {
  NUFFT_CHECK(cfg_.workers >= 1);
  NUFFT_CHECK(cfg_.threads_per_worker >= 1);
  threads_.reserve(static_cast<std::size_t>(cfg_.workers));
  for (int w = 0; w < cfg_.workers; ++w) {
    threads_.emplace_back([this] { worker_main(); });
  }
}

NufftEngine::~NufftEngine() { shutdown(); }

void NufftEngine::shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  // Exactly one caller joins; concurrent shutdown() calls (including the
  // destructor racing an explicit shutdown from another thread) block here
  // until the drain completes instead of racing on std::thread::join.
  std::call_once(join_once_, [this] {
    for (auto& t : threads_) {
      if (t.joinable()) t.join();
    }
  });
}

EngineLoad NufftEngine::load() const {
  std::lock_guard<std::mutex> lock(mu_);
  return EngineLoad{queue_.size(), active_, static_cast<int>(threads_.size())};
}

std::future<JobResult> NufftEngine::submit(Op op, std::shared_ptr<const Nufft> plan,
                                           const cfloat* in, cfloat* out, index_t batch,
                                           const JobOptions& opts) {
  NUFFT_CHECK(plan != nullptr);
  NUFFT_CHECK(batch >= 1);
  Job job;
  job.op = op;
  job.resolve_plan = [p = std::move(plan)] { return p; };
  job.in = in;
  job.out = out;
  job.batch = batch;
  job.options = opts;
  return enqueue(std::move(job));
}

std::future<JobResult> NufftEngine::submit(Op op, PlanRegistry& registry, const GridDesc& g,
                                           std::shared_ptr<const datasets::SampleSet> samples,
                                           const PlanConfig& cfg, const cfloat* in, cfloat* out,
                                           index_t batch, const JobOptions& opts) {
  NUFFT_CHECK(samples != nullptr);
  NUFFT_CHECK(batch >= 1);
  Job job;
  job.op = op;
  job.resolve_plan = [&registry, g, s = std::move(samples), cfg] {
    return registry.acquire(g, *s, cfg);
  };
  job.in = in;
  job.out = out;
  job.batch = batch;
  job.options = opts;
  return enqueue(std::move(job));
}

std::future<JobResult> NufftEngine::enqueue(Job job) {
  auto fut = job.promise.get_future();
  job.submitted = std::chrono::steady_clock::now();
  if (job.options.timeout.count() >= 0) {
    // Stamped at submission, so queue residence counts against the budget.
    // timeout == 0 is already expired here — the job deterministically
    // resolves with kTimeout at dispatch.
    job.deadline = job.submitted + job.options.timeout;
    job.has_deadline = true;
  }
  obs::count("engine.jobs_submitted");
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!stop_) {
      queue_.push_back(std::move(job));
      cv_.notify_one();
      return fut;
    }
  }
  // Racing submit against shutdown is benign: the caller gets a future that
  // reports the job as cancelled instead of a crashed submitter. Resolved
  // outside the lock so the completion hook may inspect the engine.
  obs::count("engine.jobs_rejected");
  job.promise.set_exception(std::make_exception_ptr(
      Error("job submitted after engine shutdown", ErrorCode::kCancelled)));
  notify_complete(job.options);
  return fut;
}

void NufftEngine::worker_main() {
  // Each worker owns its pool: applies use run_on_all, which must not nest,
  // so concurrent jobs need disjoint execution contexts.
  ThreadPool pool(cfg_.threads_per_worker);
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and queue drained
      job = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    obs::observe_ns("engine.queue_wait_ns", elapsed_ns(job.submitted));
    try {
      obs::Span span("engine.job", "engine", job.batch);
      job.promise.set_value(dispatch_job(job, pool));
      obs::count("engine.jobs_completed");
    } catch (...) {
      obs::count("engine.jobs_failed");
      job.promise.set_exception(std::current_exception());
    }
    notify_complete(job.options);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --active_;
    }
    idle_cv_.notify_all();
  }
}

JobResult NufftEngine::dispatch_job(Job& job, ThreadPool& pool) {
  constexpr std::chrono::milliseconds kBackoffCap{250};
  constexpr std::chrono::milliseconds kSleepSlice{10};
  int attempt = 0;
  auto backoff = std::max(job.options.retry_backoff, std::chrono::milliseconds{1});
  for (;;) {
    if (job.options.cancel && job.options.cancel->cancelled()) {
      obs::count("engine.jobs_cancelled");
      throw Error("job cancelled before dispatch", ErrorCode::kCancelled);
    }
    if (job.has_deadline && std::chrono::steady_clock::now() >= job.deadline) {
      obs::count("engine.jobs_timeout");
      throw Error("job deadline expired", ErrorCode::kTimeout);
    }
    try {
      return run_job(job, pool);
    } catch (const std::bad_alloc&) {
      if (attempt >= job.options.max_retries) {
        throw Error("job allocation failed and retry budget is exhausted",
                    ErrorCode::kResourceExhausted);
      }
    } catch (const Error& e) {
      // Deterministic failures (bad input, plan build bugs, cancellation)
      // would fail identically on every attempt — rethrow immediately.
      if (!is_retryable(e.code()) || attempt >= job.options.max_retries) throw;
    }
    ++attempt;
    obs::count("engine.retries");
    // Exponential backoff, sliced so cancellation and the deadline are
    // honoured mid-sleep (the loop head converts them to kCancelled /
    // kTimeout on wakeup).
    auto remaining = backoff;
    while (remaining.count() > 0) {
      if (job.options.cancel && job.options.cancel->cancelled()) break;
      if (job.has_deadline && std::chrono::steady_clock::now() >= job.deadline) break;
      const auto slice = std::min(remaining, kSleepSlice);
      std::this_thread::sleep_for(slice);
      remaining -= slice;
    }
    backoff = std::min(backoff * 2, kBackoffCap);
  }
}

JobResult NufftEngine::run_job(Job& job, ThreadPool& pool) {
  std::shared_ptr<const Nufft> plan = job.resolve_plan();
  JobResult result;
  if (job.batch == 1) {
    auto ws = lease_workspace(plan);
    // A throwing apply must still return the lease: every apply fully
    // overwrites or re-zeroes the workspace buffers, so a lease that saw a
    // failure is indistinguishable from a fresh one and pooling it back
    // cannot poison later jobs. Leaking it instead would shrink the pool by
    // one slot per failure until every job allocates from scratch.
    try {
      fault::inject("engine.apply", ErrorCode::kInternal);
      fault::inject("engine.apply.transient", ErrorCode::kResourceExhausted);
      if (job.op == Op::kForward) {
        plan->forward(job.in, job.out, *ws, pool);
        result.stats = ws->fwd_stats;
      } else {
        plan->adjoint(job.in, job.out, *ws, pool);
        result.stats = ws->adj_stats;
      }
      result.trace = std::move(ws->trace);
    } catch (...) {
      return_workspace(plan.get(), std::move(ws));
      throw;
    }
    return_workspace(plan.get(), std::move(ws));
  } else {
    auto bn = lease_batch(plan, job.batch);
    try {
      fault::inject("engine.apply", ErrorCode::kInternal);
      fault::inject("engine.apply.transient", ErrorCode::kResourceExhausted);
      std::vector<const cfloat*> in(static_cast<std::size_t>(job.batch));
      std::vector<cfloat*> out(static_cast<std::size_t>(job.batch));
      const index_t in_stride =
          job.op == Op::kForward ? plan->image_elems() : plan->sample_count();
      const index_t out_stride =
          job.op == Op::kForward ? plan->sample_count() : plan->image_elems();
      for (index_t b = 0; b < job.batch; ++b) {
        in[static_cast<std::size_t>(b)] = job.in + b * in_stride;
        out[static_cast<std::size_t>(b)] = job.out + b * out_stride;
      }
      if (job.op == Op::kForward) {
        bn->forward(in.data(), out.data(), job.batch, pool);
        result.stats = bn->last_forward_stats();
      } else {
        bn->adjoint(in.data(), out.data(), job.batch, pool);
        result.stats = bn->last_adjoint_stats();
      }
      result.trace = bn->last_trace();
    } catch (...) {
      return_batch(plan.get(), std::move(bn));
      throw;
    }
    return_batch(plan.get(), std::move(bn));
  }
  return result;
}

std::unique_ptr<Workspace> NufftEngine::lease_workspace(
    const std::shared_ptr<const Nufft>& plan) {
  {
    std::lock_guard<std::mutex> lock(lease_mu_);
    LeasePool& lp = leases_[plan.get()];
    if (!lp.pin) lp.pin = plan;
    if (!lp.workspaces.empty()) {
      auto ws = std::move(lp.workspaces.back());
      lp.workspaces.pop_back();
      return ws;
    }
  }
  return std::make_unique<Workspace>(plan->make_workspace());
}

void NufftEngine::return_workspace(const Nufft* plan, std::unique_ptr<Workspace> ws) {
  std::lock_guard<std::mutex> lock(lease_mu_);
  leases_[plan].workspaces.push_back(std::move(ws));
}

std::unique_ptr<BatchNufft> NufftEngine::lease_batch(const std::shared_ptr<const Nufft>& plan,
                                                     index_t batch) {
  const index_t want = std::min(batch, kMaxBatch);
  {
    std::lock_guard<std::mutex> lock(lease_mu_);
    LeasePool& lp = leases_[plan.get()];
    if (!lp.pin) lp.pin = plan;
    for (auto it = lp.batches.begin(); it != lp.batches.end(); ++it) {
      if ((*it)->max_batch() >= want) {
        auto bn = std::move(*it);
        lp.batches.erase(it);
        return bn;
      }
    }
  }
  return std::make_unique<BatchNufft>(*plan, want);
}

void NufftEngine::return_batch(const Nufft* plan, std::unique_ptr<BatchNufft> bn) {
  std::lock_guard<std::mutex> lock(lease_mu_);
  leases_[plan].batches.push_back(std::move(bn));
}

void NufftEngine::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

}  // namespace nufft::exec
