#include "exec/batch_conv.hpp"

#include "simd/vec4f.hpp"

namespace nufft::exec {

namespace {

using simd::Vec4f;

// One weighted row, scattered into all nb slabs. The weight vectors
// win_dup·wxy are built once and reused across the slice loop; the single
// kernels rebuild them for every apply.
inline void badj_row_sse(cfloat* row0, std::size_t sstride, index_t nb, const WindowBuf& wb,
                         int last, float wxy, const Vec4f* vsplat, const cfloat* vals) {
  const int len = wb.len[last];
  if (!wb.inner_contiguous) {
    // Wrapped windows take the indexed path (boundary samples only).
    for (index_t b = 0; b < nb; ++b) {
      cfloat* row = row0 + sstride * static_cast<std::size_t>(b);
      const cfloat tmp = vals[b] * wxy;
      for (int t = 0; t < len; ++t) row[wb.idx[last][t]] += tmp * wb.win[last][t];
    }
    return;
  }
  const int pairs = len / 2;
  const Vec4f wxyv(wxy);
  Vec4f wv[WindowBuf::kMaxLen / 2];
  for (int j = 0; j < pairs; ++j) wv[j] = Vec4f::load(wb.win_dup + 4 * j) * wxyv;
  const bool odd = (len & 1) != 0;
  const float wt = odd ? wxy * wb.win[last][len - 1] : 0.0f;
  cfloat* cell0 = row0 + wb.idx[last][0];
  for (index_t b = 0; b < nb; ++b) {
    cfloat* cell = cell0 + sstride * static_cast<std::size_t>(b);
    auto* p = reinterpret_cast<float*>(cell);
    for (int j = 0; j < pairs; ++j) {
      simd::madd(vsplat[b], wv[j], Vec4f::loadu(p + 4 * j)).storeu(p + 4 * j);
    }
    if (odd) cell[len - 1] += vals[b] * wt;
  }
}

// One weighted row, gathered from all nb slabs into the per-slice vector
// accumulators (pair-summed by the caller). Odd-tail and wrapped-window
// contributions go to the scalar accumulators `touts`.
inline void bfwd_row_sse(const cfloat* row0, std::size_t sstride, index_t nb,
                         const WindowBuf& wb, int last, float wxy, Vec4f* accs, cfloat* touts) {
  const int len = wb.len[last];
  if (!wb.inner_contiguous) {
    for (index_t b = 0; b < nb; ++b) {
      const cfloat* row = row0 + sstride * static_cast<std::size_t>(b);
      cfloat acc(0.0f, 0.0f);
      for (int t = 0; t < len; ++t) acc += row[wb.idx[last][t]] * wb.win[last][t];
      touts[b] += acc * wxy;
    }
    return;
  }
  const int pairs = len / 2;
  const Vec4f wxyv(wxy);
  Vec4f wv[WindowBuf::kMaxLen / 2];
  for (int j = 0; j < pairs; ++j) wv[j] = Vec4f::load(wb.win_dup + 4 * j) * wxyv;
  const bool odd = (len & 1) != 0;
  const float wt = odd ? wxy * wb.win[last][len - 1] : 0.0f;
  const cfloat* cell0 = row0 + wb.idx[last][0];
  for (index_t b = 0; b < nb; ++b) {
    const cfloat* cell = cell0 + sstride * static_cast<std::size_t>(b);
    const auto* p = reinterpret_cast<const float*>(cell);
    Vec4f acc = accs[b];
    for (int j = 0; j < pairs; ++j) acc = simd::madd(Vec4f::loadu(p + 4 * j), wv[j], acc);
    accs[b] = acc;
    if (odd) touts[b] += cell[len - 1] * wt;
  }
}

}  // namespace

template <int DIM>
void badj_scatter_sse(cfloat* slab0, std::size_t sstride, index_t nb,
                      const std::array<index_t, 3>& strides, const WindowBuf& wb,
                      const cfloat* vals) {
  constexpr int last = DIM - 1;
  Vec4f vsplat[kMaxBatch];
  for (index_t b = 0; b < nb; ++b) {
    vsplat[b] = Vec4f(vals[b].real(), vals[b].imag(), vals[b].real(), vals[b].imag());
  }
  if constexpr (DIM == 1) {
    badj_row_sse(slab0, sstride, nb, wb, last, 1.0f, vsplat, vals);
  } else if constexpr (DIM == 2) {
    for (int iy = 0; iy < wb.len[0]; ++iy) {
      badj_row_sse(slab0 + wb.idx[0][iy] * strides[0], sstride, nb, wb, last, wb.win[0][iy],
                   vsplat, vals);
    }
  } else {
    for (int ix = 0; ix < wb.len[0]; ++ix) {
      cfloat* base = slab0 + wb.idx[0][ix] * strides[0];
      const float wx = wb.win[0][ix];
      for (int iy = 0; iy < wb.len[1]; ++iy) {
        badj_row_sse(base + wb.idx[1][iy] * strides[1], sstride, nb, wb, last,
                     wx * wb.win[1][iy], vsplat, vals);
      }
    }
  }
}

template <int DIM>
void bfwd_gather_sse(const cfloat* slab0, std::size_t sstride, index_t nb,
                     const std::array<index_t, 3>& strides, const WindowBuf& wb, cfloat* outs) {
  constexpr int last = DIM - 1;
  Vec4f accs[kMaxBatch];
  cfloat touts[kMaxBatch];
  for (index_t b = 0; b < nb; ++b) touts[b] = cfloat(0.0f, 0.0f);
  if constexpr (DIM == 1) {
    bfwd_row_sse(slab0, sstride, nb, wb, last, 1.0f, accs, touts);
  } else if constexpr (DIM == 2) {
    for (int iy = 0; iy < wb.len[0]; ++iy) {
      bfwd_row_sse(slab0 + wb.idx[0][iy] * strides[0], sstride, nb, wb, last, wb.win[0][iy],
                   accs, touts);
    }
  } else {
    for (int ix = 0; ix < wb.len[0]; ++ix) {
      const cfloat* base = slab0 + wb.idx[0][ix] * strides[0];
      const float wx = wb.win[0][ix];
      for (int iy = 0; iy < wb.len[1]; ++iy) {
        bfwd_row_sse(base + wb.idx[1][iy] * strides[1], sstride, nb, wb, last,
                     wx * wb.win[1][iy], accs, touts);
      }
    }
  }
  for (index_t b = 0; b < nb; ++b) {
    const Vec4f ps = accs[b].hsum_complex_pairs();
    outs[b] = cfloat(ps[0], ps[1]) + touts[b];
  }
}

template void badj_scatter_sse<1>(cfloat*, std::size_t, index_t, const std::array<index_t, 3>&,
                                  const WindowBuf&, const cfloat*);
template void badj_scatter_sse<2>(cfloat*, std::size_t, index_t, const std::array<index_t, 3>&,
                                  const WindowBuf&, const cfloat*);
template void badj_scatter_sse<3>(cfloat*, std::size_t, index_t, const std::array<index_t, 3>&,
                                  const WindowBuf&, const cfloat*);
template void bfwd_gather_sse<1>(const cfloat*, std::size_t, index_t,
                                 const std::array<index_t, 3>&, const WindowBuf&, cfloat*);
template void bfwd_gather_sse<2>(const cfloat*, std::size_t, index_t,
                                 const std::array<index_t, 3>&, const WindowBuf&, cfloat*);
template void bfwd_gather_sse<3>(const cfloat*, std::size_t, index_t,
                                 const std::array<index_t, 3>&, const WindowBuf&, cfloat*);

}  // namespace nufft::exec
