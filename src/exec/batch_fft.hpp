// Batched, pruned row-column FFT over B slab-contiguous oversampled grids.
//
// Two throughput levers the single-transform FftNd cannot use:
//
//  * Pruning. The NUFFT only populates (forward) or reads back (adjoint) the
//    zero-pad "corner" rows of the oversampled grid — the wrapped image
//    indices [0, n−n/2) ∪ [m−n/2, m) per dimension. Forward passes restrict
//    the not-yet-transformed row coordinates to those corners (every skipped
//    row is exactly zero); adjoint passes restrict the already-transformed
//    coordinates (non-corner outputs are never read by grid_to_image). At
//    α = 2 in 3D this drops the row count to (¼ + ½ + 1)/3 ≈ 58%.
//
//  * Column-interleaved batched stages. For each row position, the B rows —
//    one per slice — are gathered element-interleaved (element k of slice b
//    at buf[k·B + b]) and pushed through Stockham stages whose sub-transform
//    stride starts at B instead of 1. The stage arithmetic is unchanged, but
//    the inner loop now runs over B contiguous complex values sharing one
//    twiddle, which vectorizes: two slices per SSE register, one twiddle
//    load per butterfly instead of per row.
//
// The scalar path (conv_mode kScalar, non-pow2 axes, or B = 1) instead runs
// each row through the owning plan's own Fft1d, making batched results
// bit-identical to the single-transform path.
#pragma once

#include <array>
#include <vector>

#include "common/aligned.hpp"
#include "common/types.hpp"
#include "core/grid.hpp"
#include "fft/fftnd.hpp"
#include "parallel/thread_pool.hpp"

namespace nufft::exec {

class BatchFft {
 public:
  /// `corner_rows[d]`: sorted grid indices along dim d that carry image
  /// content. `fwd`/`inv` are the plan's single-transform FFTs; they must
  /// outlive this object (the scalar per-row path borrows their axis plans).
  BatchFft(const GridDesc& g, std::array<std::vector<index_t>, 3> corner_rows,
           const fft::FftNd<float>& fwd, const fft::FftNd<float>& inv);

  /// In-place transform of nb slabs (slab b at slabs + b·grid_elems()).
  /// `batched_stages` opts into the SIMD column-interleaved path where an
  /// axis allows it (pow2 length and nb >= 2); rows fall back to the plan's
  /// Fft1d otherwise.
  void transform(cfloat* slabs, index_t nb, fft::Direction dir, ThreadPool& pool,
                 bool batched_stages) const;

 private:
  struct AxisStages {
    std::vector<aligned_vector<cfloat>> tw;  // per-stage twiddle tables
    std::vector<int> radix;                  // 4 or 2, matching Fft1d's plan
  };

  void axis_pass(cfloat* slabs, index_t nb, std::size_t axis, fft::Direction dir,
                 ThreadPool& pool, bool batched_stages, bool restrict_above) const;

  GridDesc g_;
  std::array<std::vector<index_t>, 3> corner_;
  std::array<std::vector<index_t>, 3> full_;
  std::array<index_t, 3> st_{1, 1, 1};
  index_t slab_elems_ = 0;
  const fft::FftNd<float>* fwd_;
  const fft::FftNd<float>* inv_;
  std::array<AxisStages, 3> stages_fwd_;
  std::array<AxisStages, 3> stages_inv_;
  std::array<bool, 3> pow2_{false, false, false};
  bool avx2_ = false;
};

}  // namespace nufft::exec
