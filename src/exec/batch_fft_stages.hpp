// Internal: AVX2+FMA variants of the column-interleaved Stockham stages
// (see batch_fft.cpp for the SSE versions and the layout contract). The
// column count must be a multiple of 4 complex values so each 256-bit op
// covers whole columns. Implemented in batch_fft_avx2.cpp, which is the
// only TU compiled with -mavx2; gate on avx2_available().
#pragma once

#include <cstddef>

#include "common/types.hpp"

namespace nufft::exec {

void stage2_cols_avx2(const cfloat* src, cfloat* dst, std::size_t nn, std::size_t sc,
                      const cfloat* tw);
void stage4_cols_avx2(const cfloat* src, cfloat* dst, std::size_t nn, std::size_t sc,
                      const cfloat* tw, int sign);

}  // namespace nufft::exec
