// This translation unit is compiled with -mavx2 -mfma (see src/CMakeLists).
//
// AVX2+FMA variants of the multi-slice convolution kernels: four complex
// cells per 256-bit op, weight vectors hoisted out of the slice loop exactly
// as in batch_conv.cpp. Gate on avx2_available() before dispatching here.
#include "exec/batch_conv.hpp"

#include "simd/vec8f.hpp"

namespace nufft::exec {

namespace {

using simd::Vec8f;

inline void badj_row_avx2(cfloat* row0, std::size_t sstride, index_t nb, const WindowBuf& wb,
                          int last, float wxy, const Vec8f* vsplat, const cfloat* vals) {
  const int len = wb.len[last];
  if (!wb.inner_contiguous) {
    for (index_t b = 0; b < nb; ++b) {
      cfloat* row = row0 + sstride * static_cast<std::size_t>(b);
      const cfloat tmp = vals[b] * wxy;
      for (int t = 0; t < len; ++t) row[wb.idx[last][t]] += tmp * wb.win[last][t];
    }
    return;
  }
  const int quads = len / 4;
  const int rem = len - 4 * quads;
  const Vec8f wxyv(wxy);
  Vec8f wv[WindowBuf::kMaxLen / 4 + 1];
  for (int j = 0; j < quads; ++j) wv[j] = Vec8f::load(wb.win_dup + 8 * j) * wxyv;
  float wtail[3];
  for (int t = 0; t < rem; ++t) wtail[t] = wxy * wb.win[last][4 * quads + t];
  cfloat* cell0 = row0 + wb.idx[last][0];
  for (index_t b = 0; b < nb; ++b) {
    cfloat* cell = cell0 + sstride * static_cast<std::size_t>(b);
    auto* p = reinterpret_cast<float*>(cell);
    for (int j = 0; j < quads; ++j) {
      simd::fmadd(vsplat[b], wv[j], Vec8f::loadu(p + 8 * j)).storeu(p + 8 * j);
    }
    for (int t = 0; t < rem; ++t) cell[4 * quads + t] += vals[b] * wtail[t];
  }
}

inline void bfwd_row_avx2(const cfloat* row0, std::size_t sstride, index_t nb,
                          const WindowBuf& wb, int last, float wxy, Vec8f* accs,
                          cfloat* touts) {
  const int len = wb.len[last];
  if (!wb.inner_contiguous) {
    for (index_t b = 0; b < nb; ++b) {
      const cfloat* row = row0 + sstride * static_cast<std::size_t>(b);
      cfloat acc(0.0f, 0.0f);
      for (int t = 0; t < len; ++t) acc += row[wb.idx[last][t]] * wb.win[last][t];
      touts[b] += acc * wxy;
    }
    return;
  }
  const int quads = len / 4;
  const int rem = len - 4 * quads;
  const Vec8f wxyv(wxy);
  Vec8f wv[WindowBuf::kMaxLen / 4 + 1];
  for (int j = 0; j < quads; ++j) wv[j] = Vec8f::load(wb.win_dup + 8 * j) * wxyv;
  float wtail[3];
  for (int t = 0; t < rem; ++t) wtail[t] = wxy * wb.win[last][4 * quads + t];
  const cfloat* cell0 = row0 + wb.idx[last][0];
  for (index_t b = 0; b < nb; ++b) {
    const cfloat* cell = cell0 + sstride * static_cast<std::size_t>(b);
    const auto* p = reinterpret_cast<const float*>(cell);
    Vec8f acc = accs[b];
    for (int j = 0; j < quads; ++j) acc = simd::fmadd(Vec8f::loadu(p + 8 * j), wv[j], acc);
    accs[b] = acc;
    for (int t = 0; t < rem; ++t) touts[b] += cell[4 * quads + t] * wtail[t];
  }
}

}  // namespace

template <int DIM>
void badj_scatter_avx2(cfloat* slab0, std::size_t sstride, index_t nb,
                       const std::array<index_t, 3>& strides, const WindowBuf& wb,
                       const cfloat* vals) {
  constexpr int last = DIM - 1;
  Vec8f vsplat[kMaxBatch];
  for (index_t b = 0; b < nb; ++b) {
    vsplat[b] = Vec8f::broadcast_complex(vals[b].real(), vals[b].imag());
  }
  if constexpr (DIM == 1) {
    badj_row_avx2(slab0, sstride, nb, wb, last, 1.0f, vsplat, vals);
  } else if constexpr (DIM == 2) {
    for (int iy = 0; iy < wb.len[0]; ++iy) {
      badj_row_avx2(slab0 + wb.idx[0][iy] * strides[0], sstride, nb, wb, last, wb.win[0][iy],
                    vsplat, vals);
    }
  } else {
    for (int ix = 0; ix < wb.len[0]; ++ix) {
      cfloat* base = slab0 + wb.idx[0][ix] * strides[0];
      const float wx = wb.win[0][ix];
      for (int iy = 0; iy < wb.len[1]; ++iy) {
        badj_row_avx2(base + wb.idx[1][iy] * strides[1], sstride, nb, wb, last,
                      wx * wb.win[1][iy], vsplat, vals);
      }
    }
  }
}

template <int DIM>
void bfwd_gather_avx2(const cfloat* slab0, std::size_t sstride, index_t nb,
                      const std::array<index_t, 3>& strides, const WindowBuf& wb,
                      cfloat* outs) {
  constexpr int last = DIM - 1;
  Vec8f accs[kMaxBatch];
  cfloat touts[kMaxBatch];
  for (index_t b = 0; b < nb; ++b) touts[b] = cfloat(0.0f, 0.0f);
  if constexpr (DIM == 1) {
    bfwd_row_avx2(slab0, sstride, nb, wb, last, 1.0f, accs, touts);
  } else if constexpr (DIM == 2) {
    for (int iy = 0; iy < wb.len[0]; ++iy) {
      bfwd_row_avx2(slab0 + wb.idx[0][iy] * strides[0], sstride, nb, wb, last, wb.win[0][iy],
                    accs, touts);
    }
  } else {
    for (int ix = 0; ix < wb.len[0]; ++ix) {
      const cfloat* base = slab0 + wb.idx[0][ix] * strides[0];
      const float wx = wb.win[0][ix];
      for (int iy = 0; iy < wb.len[1]; ++iy) {
        bfwd_row_avx2(base + wb.idx[1][iy] * strides[1], sstride, nb, wb, last,
                      wx * wb.win[1][iy], accs, touts);
      }
    }
  }
  for (index_t b = 0; b < nb; ++b) {
    float re = 0.0f, im = 0.0f;
    accs[b].hsum_complex(re, im);
    outs[b] = cfloat(re, im) + touts[b];
  }
}

template void badj_scatter_avx2<1>(cfloat*, std::size_t, index_t, const std::array<index_t, 3>&,
                                   const WindowBuf&, const cfloat*);
template void badj_scatter_avx2<2>(cfloat*, std::size_t, index_t, const std::array<index_t, 3>&,
                                   const WindowBuf&, const cfloat*);
template void badj_scatter_avx2<3>(cfloat*, std::size_t, index_t, const std::array<index_t, 3>&,
                                   const WindowBuf&, const cfloat*);
template void bfwd_gather_avx2<1>(const cfloat*, std::size_t, index_t,
                                  const std::array<index_t, 3>&, const WindowBuf&, cfloat*);
template void bfwd_gather_avx2<2>(const cfloat*, std::size_t, index_t,
                                  const std::array<index_t, 3>&, const WindowBuf&, cfloat*);
template void bfwd_gather_avx2<3>(const cfloat*, std::size_t, index_t,
                                  const std::array<index_t, 3>&, const WindowBuf&, cfloat*);

}  // namespace nufft::exec
