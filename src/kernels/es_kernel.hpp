// "Exponential of semicircle" kernel (Barnett–Magland–af Klinteberg, the
// FINUFFT kernel):
//
//   φ(d) = exp(β·(sqrt(1 − (d/W)²) − 1)),  |d| ≤ W,  else 0.
//
// Numerically indistinguishable in accuracy from Kaiser-Bessel at the same
// width once β is tuned, but cheaper to evaluate directly (one exp, no
// Bessel) and a natural fit for piecewise-polynomial Horner evaluation. Its
// Fourier transform has no closed form, so the rolloff/deapodization samples
// come from Gauss–Legendre quadrature of 2·∫₀^W φ(d)·cos(2πnd/M) dd,
// cached per kernel instance.
#pragma once

#include <vector>

#include "kernels/kernel.hpp"

namespace nufft::kernels {

class EsKernel final : public Kernel1d {
 public:
  /// β defaults to the FINUFFT parameterization for oversampling α:
  ///   β = 2W · 0.97π · (1 − 1/(2α))
  /// (≈ 2.30·(2W) at α = 2), which the calibration table in core/tolerance
  /// was measured against.
  EsKernel(double W, double alpha);

  double radius() const override { return W_; }
  double value(double d) const override;
  std::string name() const override;
  double rolloff_fourier(double n, double M) const override;

  double beta() const { return beta_; }

  static double es_beta(double W, double alpha);

 private:
  double W_;
  double beta_;
  // Gauss–Legendre nodes/weights mapped to [0, W], fixed at construction so
  // every rolloff sample reuses them.
  std::vector<double> qx_;
  std::vector<double> qw_;
};

}  // namespace nufft::kernels
