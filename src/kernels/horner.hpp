// FINUFFT-style piecewise-polynomial kernel evaluation.
//
// A sample at fractional position k touches the oversampled-grid neighbours
// x1..x1+len−1 with x1 = ceil(k − W), so neighbour i sits at distance
// d_i = (x1 + i) − k = z − W + i where z = x1 − k + W ∈ [0, 1) is shared by
// the whole window. Fitting one polynomial P_i(z) ≈ φ(z − W + i) per
// neighbour offset turns the window evaluation into nseg Horner recurrences
// at a single abscissa — with the coefficients stored transposed
// (coef[degree][segment]) the inner loop over segments is a contiguous
// float stream the compiler auto-vectorizes.
//
// Coefficients come from Chebyshev interpolation of φ on each unit segment
// (degree-d nodes, exact DCT of the samples, then a change of basis to
// monomials in t = 2z − 1), fitted in double and stored in float.
#pragma once

#include <vector>

#include "kernels/kernel.hpp"

namespace nufft::kernels {

class KernelHorner {
 public:
  /// Upper bound on the padded segment stride (W ≤ 9.5 → nseg ≤ 21 → stride
  /// ≤ 24). Sizes the row-evaluation scratch in both the scalar and the AVX2
  /// evaluators.
  static constexpr int kMaxStride = 32;

  /// Fit piecewise polynomials for `kernel`. Requires 2·radius to be an
  /// integer so segment boundaries align with the support edge (every width
  /// the planner or fuzzer selects is a multiple of 0.5). `degree` 0 picks
  /// a width-scaled default that holds the fit error below the kernel's own
  /// aliasing floor.
  explicit KernelHorner(const Kernel1d& kernel, int degree = 0);

  float radius() const { return radius_; }
  int degree() const { return degree_; }
  int segments() const { return nseg_; }

  /// Transposed coefficient table: coefficients()[k*stride() + i] is the
  /// t^(degree−k) coefficient of segment i. stride() is a multiple of 8 and
  /// the padded tail of every row is zero-filled, so a vector evaluator may
  /// process whole rows in 8-float chunks (kernels/horner_avx2.cpp).
  const float* coefficients() const { return coef_.data(); }
  int stride() const { return stride_; }

  /// Window batch evaluation: weights for neighbours x1..x1+len−1 of a
  /// sample with shared abscissa z = x1 − k + W ∈ [0, 1]. len ≤ segments().
  void eval_window(float z, int len, float* out) const;

  /// Scalar reference path (tests, spot checks): kernel value at signed
  /// distance d, |d| ≤ radius.
  float operator()(float d) const;

 private:
  std::vector<float> coef_;  // coef_[k*stride_ + i]: t^(degree_-k) coefficient of segment i
  float radius_ = 0.0f;
  int nseg_ = 0;
  int degree_ = 0;
  int stride_ = 0;
};

/// AVX2 window batch evaluation — lane-exact with KernelHorner::eval_window:
/// the recurrence acc = acc·t + row uses explicit mul+add intrinsics (never
/// FMA), so each lane performs the identical float operation sequence and the
/// results are bit-identical to the scalar path. Defined in horner_avx2.cpp
/// (compiled -mavx2 -ffp-contract=off); call only when AVX2 is available.
void eval_window_avx2(const KernelHorner& h, float z, int len, float* out);

}  // namespace nufft::kernels
