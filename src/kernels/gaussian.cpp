#include "kernels/gaussian.hpp"

#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "common/types.hpp"
#include "kernels/es_kernel.hpp"
#include "kernels/kaiser_bessel.hpp"

namespace nufft::kernels {

GaussianKernel::GaussianKernel(double W, double tau) : W_(W), tau_(tau) {
  NUFFT_CHECK(W > 0.0);
  NUFFT_CHECK(tau > 0.0);
}

GaussianKernel GaussianKernel::with_gl_tau(double W, double alpha) {
  // Greengard & Lee pick τ = (π/N²)·M_sp/(R(R−1/2)) on the [0,2π) torus
  // with R = α and M_sp = W fine-grid points of spreading per side. In
  // oversampled-grid units (u = M·x/2π, M = αN) that becomes
  //   τ_g = τ·M²/(4π²) = W·α / (4π·(α−1/2)).
  NUFFT_CHECK(alpha > 0.5);
  const double tau_g = W * alpha / (4.0 * kPi * (alpha - 0.5));
  return GaussianKernel(W, tau_g);
}

double GaussianKernel::value(double d) const {
  if (std::abs(d) > W_) return 0.0;
  return std::exp(-d * d / (4.0 * tau_));
}

std::string GaussianKernel::name() const {
  std::ostringstream os;
  os << "Gaussian(W=" << W_ << ", tau=" << tau_ << ")";
  return os.str();
}

std::unique_ptr<Kernel1d> make_kernel(KernelType type, double W, double alpha) {
  switch (type) {
    case KernelType::kKaiserBessel:
      return std::make_unique<KaiserBessel>(KaiserBessel::with_beatty_beta(W, alpha));
    case KernelType::kGaussian:
      return std::make_unique<GaussianKernel>(GaussianKernel::with_gl_tau(W, alpha));
    case KernelType::kEs:
      return std::make_unique<EsKernel>(W, alpha);
  }
  throw Error("unknown kernel type");
}

}  // namespace nufft::kernels
