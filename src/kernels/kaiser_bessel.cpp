#include "kernels/kaiser_bessel.hpp"

#include <cmath>
#include <sstream>

#include "common/error.hpp"
#include "common/types.hpp"
#include "kernels/bessel.hpp"

namespace nufft::kernels {

KaiserBessel::KaiserBessel(double W, double beta) : W_(W), beta_(beta) {
  NUFFT_CHECK(W > 0.0);
  NUFFT_CHECK(beta > 0.0);
  inv_i0_beta_ = 1.0 / bessel_i0(beta);
}

double KaiserBessel::beatty_beta(double W, double alpha) {
  NUFFT_CHECK_MSG(alpha > 1.0, "oversampling ratio must exceed 1");
  const double L = 2.0 * W;
  const double t = (L / alpha) * (L / alpha) * (alpha - 0.5) * (alpha - 0.5) - 0.8;
  NUFFT_CHECK_MSG(t > 0.0, "kernel too narrow for this oversampling ratio");
  return kPi * std::sqrt(t);
}

KaiserBessel KaiserBessel::with_beatty_beta(double W, double alpha) {
  return KaiserBessel(W, beatty_beta(W, alpha));
}

double KaiserBessel::value(double d) const {
  const double r = d / W_;
  const double arg = 1.0 - r * r;
  if (arg < 0.0) return 0.0;
  return bessel_i0(beta_ * std::sqrt(arg)) * inv_i0_beta_;
}

double KaiserBessel::fourier_at(double n, double M) const {
  const double t = kTwoPi * W_ * n / M;
  const double s2 = beta_ * beta_ - t * t;
  const double scale = 2.0 * W_ * inv_i0_beta_;
  if (s2 > 0.0) {
    const double s = std::sqrt(s2);
    return scale * std::sinh(s) / s;
  }
  if (s2 < 0.0) {
    const double s = std::sqrt(-s2);
    return scale * std::sin(s) / s;
  }
  return scale;  // limit sinh(s)/s -> 1
}

std::string KaiserBessel::name() const {
  std::ostringstream os;
  os << "KaiserBessel(W=" << W_ << ", beta=" << beta_ << ")";
  return os.str();
}

}  // namespace nufft::kernels
