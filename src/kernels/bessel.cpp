#include "kernels/bessel.hpp"

#include <cmath>

namespace nufft::kernels {

double bessel_i0(double x) {
  // I0(x) = Σ_k ((x/2)^2k) / (k!)². All terms are positive, so the series
  // has no cancellation; it converges once the term ratio (x/2)²/k² < 1.
  const double q = 0.25 * x * x;
  double term = 1.0;
  double sum = 1.0;
  for (int k = 1; k < 1000; ++k) {
    term *= q / (static_cast<double>(k) * static_cast<double>(k));
    sum += term;
    if (term < sum * 1e-17) break;
  }
  return sum;
}

}  // namespace nufft::kernels
