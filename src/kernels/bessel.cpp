#include "kernels/bessel.hpp"

#include <cmath>

namespace nufft::kernels {

namespace {

// Below the crossover the power series converges quickly and every term is
// positive (no cancellation); above it the series needs O(x) terms while the
// large-argument asymptotic expansion reaches full double precision in a
// dozen, so the crossover is placed where both sides agree to ~1e-15.
constexpr double kAsymptoticCrossover = 50.0;

double i0_series(double x) {
  // I0(x) = Σ_k ((x/2)^2k) / (k!)². All terms are positive, so the series
  // has no cancellation; it converges once the term ratio (x/2)²/k² < 1.
  const double q = 0.25 * x * x;
  double term = 1.0;
  double sum = 1.0;
  for (int k = 1; k < 1000; ++k) {
    term *= q / (static_cast<double>(k) * static_cast<double>(k));
    sum += term;
    if (term < sum * 1e-17) break;
  }
  return sum;
}

double i0_asymptotic(double x) {
  // I0(x) ~ e^x/sqrt(2πx) · Σ_k a_k/x^k with a_0 = 1 and the recurrence
  // a_k = a_{k-1}·(2k−1)²/(8k)  (a_1 = 1/8, a_2 = 9/128, a_3 = 225/3072, …).
  // The expansion is asymptotic: terms shrink until k ≈ 4x, far beyond the
  // double-precision floor for x ≥ 50, so truncating at the first negligible
  // (or first non-decreasing) term keeps the relative error ≲ 1e-15.
  double term = 1.0;
  double sum = 1.0;
  double prev = 1.0;
  for (int k = 1; k <= 30; ++k) {
    const double odd = 2.0 * static_cast<double>(k) - 1.0;
    term *= odd * odd / (8.0 * static_cast<double>(k) * x);
    if (term >= prev || term < sum * 1e-17) break;
    sum += term;
    prev = term;
  }
  constexpr double kPi = 3.14159265358979323846;
  return std::exp(x) / std::sqrt(2.0 * kPi * x) * sum;
}

}  // namespace

double bessel_i0(double x) {
  x = std::fabs(x);
  if (x < kAsymptoticCrossover) return i0_series(x);
  return i0_asymptotic(x);
}

}  // namespace nufft::kernels
