// Interpolation-kernel interface.
//
// A gridding kernel is a compactly supported, even, real function of one
// grid-unit distance d, nonzero only for |d| <= radius(). Multi-dimensional
// kernels are the Kronecker/tensor product of 1D evaluations (paper §II).
#pragma once

#include <limits>
#include <memory>
#include <string>

namespace nufft::kernels {

class Kernel1d {
 public:
  virtual ~Kernel1d() = default;

  /// Kernel support radius W in oversampled-grid units.
  virtual double radius() const = 0;

  /// Kernel value at distance d (d may be negative; kernels are even).
  /// Returns 0 outside [-radius, radius].
  virtual double value(double d) const = 0;

  /// Human-readable identification for logs and bench output.
  virtual std::string name() const = 0;

  /// Continuous Fourier transform sample φ̂(n/M) = ∫ φ(d)·cos(2πnd/M) dd for
  /// the rolloff/deapodization map. Kernels without a trustworthy transform
  /// return NaN, which tells the rolloff layer to fall back to the discrete
  /// cosine sum over integer grid offsets. The ES kernel overrides this with
  /// Gauss–Legendre quadrature (its transform has no closed form).
  virtual double rolloff_fourier(double n, double M) const {
    (void)n;
    (void)M;
    return kNoAnalyticFourier;
  }

 protected:
  // Sentinel: use the discrete rolloff path.
  static constexpr double kNoAnalyticFourier = std::numeric_limits<double>::quiet_NaN();
};

enum class KernelType {
  kKaiserBessel,  // the paper's choice
  kGaussian,      // Greengard–Lee style alternative
  kEs,            // FINUFFT's "exponential of semicircle"
};

/// How the spreader evaluates kernel weights for a window: the paper's
/// linearly interpolated lookup table, or FINUFFT-style piecewise Horner
/// polynomials (one polynomial per neighbour offset, all sharing one
/// abscissa — see KernelHorner).
enum class KernelEval {
  kLut,
  kHorner,
};

/// Factory for the kernels this library ships.
///   W     — support radius in grid units
///   alpha — oversampling ratio M/N (shapes the optimal kernel parameter)
std::unique_ptr<Kernel1d> make_kernel(KernelType type, double W, double alpha);

}  // namespace nufft::kernels
