// Interpolation-kernel interface.
//
// A gridding kernel is a compactly supported, even, real function of one
// grid-unit distance d, nonzero only for |d| <= radius(). Multi-dimensional
// kernels are the Kronecker/tensor product of 1D evaluations (paper §II).
#pragma once

#include <memory>
#include <string>

namespace nufft::kernels {

class Kernel1d {
 public:
  virtual ~Kernel1d() = default;

  /// Kernel support radius W in oversampled-grid units.
  virtual double radius() const = 0;

  /// Kernel value at distance d (d may be negative; kernels are even).
  /// Returns 0 outside [-radius, radius].
  virtual double value(double d) const = 0;

  /// Human-readable identification for logs and bench output.
  virtual std::string name() const = 0;
};

enum class KernelType {
  kKaiserBessel,  // the paper's choice
  kGaussian,      // Greengard–Lee style alternative
};

/// Factory for the kernels this library ships.
///   W     — support radius in grid units
///   alpha — oversampling ratio M/N (shapes the optimal kernel parameter)
std::unique_ptr<Kernel1d> make_kernel(KernelType type, double W, double alpha);

}  // namespace nufft::kernels
