// Rolloff ("scaling function") computation — paper §II-B.
//
// Spectral convolution with a compact kernel apodizes the image domain; the
// scaling map s is the point-wise inverse of that apodization, applied before
// the FFT (forward) / after the inverse FFT (adjoint). It is separable, so
// the library stores one 1D array per dimension.
//
// The numeric construction follows the paper: grid a delta at the spectral
// origin through the kernel (giving the kernel's integer samples), inverse-
// DFT it, and invert point-wise over the centered N-region. For the integer-
// sampled kernel the inverse DFT collapses to the cosine sum
//   c[n] = g(0) + 2·Σ_{u=1..ceil(W)} g(u)·cos(2π·u·n/M)
// which is what the implementation evaluates (identical result, no FFT).
#pragma once

#include "common/types.hpp"
#include "kernels/kaiser_bessel.hpp"
#include "kernels/kernel.hpp"

namespace nufft::kernels {

/// Apodization c[n] of an N-image on an M-grid; out[i] = c[i - N/2].
dvec apodization_1d(const Kernel1d& kernel, index_t N, index_t M);

/// Scaling map s = 1/c as float, the form consumed by the NUFFT operators.
/// Throws if the apodization is too close to zero anywhere in the field of
/// view (kernel/oversampling mismatch).
fvec rolloff_1d(const Kernel1d& kernel, index_t N, index_t M);

/// Analytic Kaiser-Bessel apodization (continuous Fourier transform),
/// exposed to cross-check the numeric map in tests.
dvec apodization_1d_analytic(const KaiserBessel& kernel, index_t N, index_t M);

}  // namespace nufft::kernels
