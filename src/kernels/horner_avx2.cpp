// AVX2 shared-abscissa window evaluation for the piecewise-Horner kernel.
//
// Bit-exactness contract: this must match KernelHorner::eval_window lane for
// lane. The scalar recurrence is acc[i] = acc[i]*t + row[i] — two rounded
// float operations — so this TU uses explicit _mm256_mul_ps + _mm256_add_ps
// and is compiled with -ffp-contract=off; a fused multiply-add (one rounding)
// would diverge in the last ulp and break the dispatch registry's bit-match
// matrix. The throughput win comes from width, not fusion: eight segments per
// instruction versus the scalar evaluator's auto-vectorized baseline.
#include <immintrin.h>

#include "kernels/horner.hpp"

namespace nufft::kernels {

void eval_window_avx2(const KernelHorner& h, float z, int len, float* out) {
  z = z < 0.0f ? 0.0f : (z > 1.0f ? 1.0f : z);
  const __m256 t = _mm256_set1_ps(2.0f * z - 1.0f);
  const float* c = h.coefficients();
  const int stride = h.stride();  // multiple of 8 by construction
  const int degree = h.degree();
  alignas(32) float tmp[KernelHorner::kMaxStride];
  for (int j = 0; j < stride; j += 8) {
    __m256 acc = _mm256_loadu_ps(c + j);
    for (int k = 1; k <= degree; ++k) {
      const __m256 row = _mm256_loadu_ps(c + static_cast<std::size_t>(k) *
                                                 static_cast<std::size_t>(stride) +
                                             j);
      acc = _mm256_add_ps(_mm256_mul_ps(acc, t), row);
    }
    _mm256_store_ps(tmp + j, acc);
  }
  for (int i = 0; i < len; ++i) out[i] = tmp[i];
}

}  // namespace nufft::kernels
