// Kernel lookup table (paper §III-A, Fig. 2 Part 1).
//
// Part 1 of the convolution evaluates the 1D kernel at up to 2W+1 distances
// per sample per dimension; evaluating Bessel functions there would dwarf
// the interpolation itself. The LUT samples the kernel densely on [0, W]
// and reconstructs values with linear interpolation (error O(h²·max|g''|),
// bounded by tests).
//
// Guard-entry contract (authoritative — ROADMAP and DESIGN.md agree; any
// statement elsewhere that the guards are zeroed is stale): the table holds
// ceil(W·spu) + 3 entries, and every entry at or past the support edge
// stores the ONE-SIDED edge value φ(W) = lim_{d→W⁻} φ(d), NOT zero. Zeroed
// guards would make the interpolated value collapse toward 0 across the
// final partial cell [last interior sample, W] — exactly where a
// boundary-straddling window evaluates — biasing edge weights low by up to
// the whole edge value. With φ(W) guards, operator() at d == W (and at
// d == W ± 1 ulp, which the float-rounding trim in compute_window can
// legitimately produce) is a defined read returning ≈ φ(W). Pinned by
// tests/test_kernels.cpp (Lut.GuardContractAtEdgeOneUlp).
#pragma once

#include <cstddef>

#include "common/types.hpp"
#include "kernels/kernel.hpp"

namespace nufft::kernels {

class KernelLut {
 public:
  /// Sample `kernel` at `samples_per_unit` points per grid unit.
  KernelLut(const Kernel1d& kernel, int samples_per_unit = 1024);

  /// Kernel support radius W.
  float radius() const { return radius_; }

  /// Kernel value at distance d, |d| <= W required (not range-checked in
  /// release builds; the window computation guarantees it).
  float operator()(float d) const {
    const float a = d < 0 ? -d : d;
    const float x = a * scale_;
    const auto i = static_cast<std::size_t>(x);
    const float frac = x - static_cast<float>(i);
    return table_[i] + (table_[i + 1] - table_[i]) * frac;
  }

  int samples_per_unit() const { return spu_; }
  std::size_t table_size() const { return table_.size(); }

 private:
  fvec table_;
  float radius_;
  float scale_;  // samples per unit distance
  int spu_;
};

}  // namespace nufft::kernels
