// Truncated Gaussian interpolation kernel (Greengard & Lee, SIAM Rev. 2004)
// — the classic alternative the paper cites; carried for kernel-choice
// ablations and accuracy comparisons against Kaiser-Bessel.
#pragma once

#include "kernels/kernel.hpp"

namespace nufft::kernels {

class GaussianKernel final : public Kernel1d {
 public:
  /// Construct with explicit variance: g(d) = exp(-d²/(4τ)), |d| <= W.
  GaussianKernel(double W, double tau);

  /// Greengard-Lee τ choice for oversampling ratio alpha = M/N:
  /// τ = (W / M²)·(π / (α·(α − 0.5)))·M ... reduced to grid units this is
  /// τ = π·W / (M_over_N_ratio_term); see .cpp for the exact expression.
  static GaussianKernel with_gl_tau(double W, double alpha);

  double radius() const override { return W_; }
  double value(double d) const override;
  std::string name() const override;

  double tau() const { return tau_; }

 private:
  double W_;
  double tau_;
};

}  // namespace nufft::kernels
