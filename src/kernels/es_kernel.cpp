#include "kernels/es_kernel.hpp"

#include <cmath>

#include "common/error.hpp"

namespace nufft::kernels {

namespace {

constexpr double kPi = 3.14159265358979323846;

// Enough nodes that the quadrature error sits far below the kernel's own
// aliasing floor for every width the planner selects (W ≤ 8): the integrand
// is φ (analytic on (−W, W)) times a cosine with at most ~W periods over the
// support, and 64-node Gauss–Legendre resolves that to ~1e-15.
constexpr int kQuadNodes = 64;

// Gauss–Legendre nodes/weights on [-1, 1] by Newton iteration on the
// Legendre polynomial recurrence (standard Numerical-Recipes scheme).
void gauss_legendre(int n, std::vector<double>& x, std::vector<double>& w) {
  x.assign(static_cast<std::size_t>(n), 0.0);
  w.assign(static_cast<std::size_t>(n), 0.0);
  const int half = (n + 1) / 2;
  for (int i = 0; i < half; ++i) {
    double z = std::cos(kPi * (static_cast<double>(i) + 0.75) / (static_cast<double>(n) + 0.5));
    double pp = 0.0;
    for (int it = 0; it < 100; ++it) {
      double p0 = 1.0;
      double p1 = 0.0;
      for (int j = 0; j < n; ++j) {
        const double p2 = p1;
        p1 = p0;
        p0 = ((2.0 * j + 1.0) * z * p1 - static_cast<double>(j) * p2) / (j + 1.0);
      }
      pp = static_cast<double>(n) * (z * p0 - p1) / (z * z - 1.0);
      const double dz = p0 / pp;
      z -= dz;
      if (std::fabs(dz) < 1e-15) break;
    }
    x[static_cast<std::size_t>(i)] = -z;
    x[static_cast<std::size_t>(n - 1 - i)] = z;
    const double wi = 2.0 / ((1.0 - z * z) * pp * pp);
    w[static_cast<std::size_t>(i)] = wi;
    w[static_cast<std::size_t>(n - 1 - i)] = wi;
  }
}

}  // namespace

double EsKernel::es_beta(double W, double alpha) {
  // FINUFFT's width→shape rule: β = 2W·0.97π·(1 − 1/(2α)). At the library's
  // default α = 2 this is β ≈ 2.2855·(2W).
  return 2.0 * W * 0.97 * kPi * (1.0 - 1.0 / (2.0 * alpha));
}

EsKernel::EsKernel(double W, double alpha) : W_(W), beta_(es_beta(W, alpha)) {
  NUFFT_CHECK_MSG(W > 0.0, "ES kernel radius must be positive");
  NUFFT_CHECK_MSG(alpha > 0.5, "ES kernel needs oversampling alpha > 0.5");
  std::vector<double> x01;
  gauss_legendre(kQuadNodes, x01, qw_);
  qx_.resize(x01.size());
  for (std::size_t i = 0; i < x01.size(); ++i) {
    // Map [-1, 1] → [0, W]; fold the Jacobian W/2 into the weights.
    qx_[i] = 0.5 * W_ * (x01[i] + 1.0);
    qw_[i] *= 0.5 * W_;
  }
}

double EsKernel::value(double d) const {
  const double r = d / W_;
  const double arg = 1.0 - r * r;
  if (arg < 0.0) return 0.0;  // outside the support
  return std::exp(beta_ * (std::sqrt(arg) - 1.0));
}

std::string EsKernel::name() const {
  return "es(W=" + std::to_string(W_) + ",beta=" + std::to_string(beta_) + ")";
}

double EsKernel::rolloff_fourier(double n, double M) const {
  // φ̂(n/M) = 2·∫₀^W φ(d)·cos(2πnd/M) dd (φ is even), by the cached
  // Gauss–Legendre rule. Matches the scale of the discrete cosine sum the
  // other kernels use, so rolloff_1d can invert it identically.
  const double omega = 2.0 * kPi * n / M;
  double acc = 0.0;
  for (std::size_t i = 0; i < qx_.size(); ++i) {
    acc += qw_[i] * value(qx_[i]) * std::cos(omega * qx_[i]);
  }
  return 2.0 * acc;
}

}  // namespace nufft::kernels
