#include "kernels/horner.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace nufft::kernels {

namespace {

constexpr double kPi = 3.14159265358979323846;

}  // namespace

KernelHorner::KernelHorner(const Kernel1d& kernel, int degree) {
  const double W = kernel.radius();
  NUFFT_CHECK_MSG(W > 0.0, "Horner evaluator needs a positive kernel radius");
  NUFFT_CHECK_MSG(std::floor(2.0 * W) == 2.0 * W,
                  "Horner segments require 2*radius to be an integer so segment "
                  "boundaries align with the support edge");
  radius_ = static_cast<float>(W);
  nseg_ = 2 * static_cast<int>(std::ceil(W)) + 1;
  // Pad the segment stride to a multiple of 8 so vector evaluators can read
  // whole coefficient rows in 8-float chunks. The padded entries stay zero
  // and only ever feed lanes past `len`, which eval_window discards —
  // numerically the padding is invisible.
  stride_ = (nseg_ + 7) & ~7;
  NUFFT_CHECK_MSG(stride_ <= kMaxStride, "kernel too wide for Horner evaluation");
  // Degree scales with width like FINUFFT's (full-width + 3) rule, with a
  // small margin since the fit is stored in float; capped where float
  // round-off dominates anyway.
  degree_ = degree > 0 ? degree : std::min(16, static_cast<int>(std::ceil(2.0 * W)) + 4);

  const int nnodes = degree_ + 1;
  coef_.assign(static_cast<std::size_t>((degree_ + 1) * stride_), 0.0f);
  std::vector<double> f(static_cast<std::size_t>(nnodes));
  std::vector<double> cheb(static_cast<std::size_t>(nnodes));
  std::vector<double> mono(static_cast<std::size_t>(nnodes));
  std::vector<double> tkm1(static_cast<std::size_t>(nnodes));
  std::vector<double> tk(static_cast<std::size_t>(nnodes));
  std::vector<double> tnext(static_cast<std::size_t>(nnodes));

  for (int i = 0; i < nseg_; ++i) {
    // Segment i covers d = z − W + i for z ∈ [0, 1]. Clamp d to the support
    // so segments that touch (or lie past) the edge fit the one-sided value
    // instead of the discontinuous jump to zero — only z values mapping
    // inside the support are ever evaluated.
    for (int j = 0; j < nnodes; ++j) {
      const double t = std::cos(kPi * (j + 0.5) / nnodes);
      const double z = 0.5 * (t + 1.0);
      const double d = std::clamp(z - W + i, -W, W);
      f[static_cast<std::size_t>(j)] = kernel.value(d);
    }
    // Chebyshev coefficients by the exact node DCT.
    for (int m = 0; m < nnodes; ++m) {
      double acc = 0.0;
      for (int j = 0; j < nnodes; ++j) {
        acc += f[static_cast<std::size_t>(j)] * std::cos(kPi * m * (j + 0.5) / nnodes);
      }
      cheb[static_cast<std::size_t>(m)] = (m == 0 ? 1.0 : 2.0) * acc / nnodes;
    }
    // Change of basis T_m(t) → monomials in t via the Chebyshev recurrence.
    std::fill(mono.begin(), mono.end(), 0.0);
    std::fill(tkm1.begin(), tkm1.end(), 0.0);
    std::fill(tk.begin(), tk.end(), 0.0);
    tkm1[0] = 1.0;  // T_0
    if (nnodes > 1) tk[1] = 1.0;  // T_1
    mono[0] += cheb[0];
    if (degree_ >= 1) mono[1] += cheb[1];
    for (int m = 2; m <= degree_; ++m) {
      std::fill(tnext.begin(), tnext.end(), 0.0);
      for (int p = 0; p + 1 < nnodes; ++p) {
        tnext[static_cast<std::size_t>(p + 1)] += 2.0 * tk[static_cast<std::size_t>(p)];
      }
      for (int p = 0; p < nnodes; ++p) tnext[static_cast<std::size_t>(p)] -= tkm1[static_cast<std::size_t>(p)];
      for (int p = 0; p < nnodes; ++p) {
        mono[static_cast<std::size_t>(p)] += cheb[static_cast<std::size_t>(m)] * tnext[static_cast<std::size_t>(p)];
      }
      std::swap(tkm1, tk);
      std::swap(tk, tnext);
    }
    // Transposed store: row k holds the t^(degree−k) coefficient of every
    // segment, so the Horner inner loop reads one contiguous float row.
    for (int p = 0; p <= degree_; ++p) {
      coef_[static_cast<std::size_t>((degree_ - p) * stride_ + i)] =
          static_cast<float>(mono[static_cast<std::size_t>(p)]);
    }
  }
}

void KernelHorner::eval_window(float z, int len, float* out) const {
  z = z < 0.0f ? 0.0f : (z > 1.0f ? 1.0f : z);
  const float t = 2.0f * z - 1.0f;
  float acc[kMaxStride];
  const float* c = coef_.data();
  for (int i = 0; i < stride_; ++i) acc[i] = c[i];
  for (int k = 1; k <= degree_; ++k) {
    const float* row = c + static_cast<std::size_t>(k) * static_cast<std::size_t>(stride_);
    for (int i = 0; i < stride_; ++i) acc[i] = acc[i] * t + row[i];
  }
  for (int i = 0; i < len; ++i) out[i] = acc[i];
}

float KernelHorner::operator()(float d) const {
  if (d < -radius_ || d > radius_) return 0.0f;
  int i = static_cast<int>(std::floor(d + radius_));
  if (i >= nseg_) i = nseg_ - 1;
  if (i < 0) i = 0;
  const float z = d + radius_ - static_cast<float>(i);
  const float t = 2.0f * (z < 0.0f ? 0.0f : (z > 1.0f ? 1.0f : z)) - 1.0f;
  const float* c = coef_.data();
  float acc = c[i];
  for (int k = 1; k <= degree_; ++k) {
    acc = acc * t + c[static_cast<std::size_t>(k) * static_cast<std::size_t>(stride_) + static_cast<std::size_t>(i)];
  }
  return acc;
}

}  // namespace nufft::kernels
