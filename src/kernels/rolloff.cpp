#include "kernels/rolloff.hpp"

#include <cmath>

#include "common/error.hpp"

namespace nufft::kernels {

dvec apodization_1d(const Kernel1d& kernel, index_t N, index_t M) {
  NUFFT_CHECK(N >= 1 && M >= N);
  dvec c(static_cast<std::size_t>(N));
  // Kernels that expose a trustworthy continuous Fourier transform (the ES
  // kernel, via quadrature) are deapodized from it directly; a NaN probe
  // selects the discrete cosine sum over the integer grid offsets, which is
  // the historical path for Kaiser-Bessel and Gaussian and keeps their
  // pinned rolloff values bit-stable.
  if (std::isfinite(kernel.rolloff_fourier(0.0, static_cast<double>(M)))) {
    for (index_t i = 0; i < N; ++i) {
      const index_t n = i - N / 2;
      c[static_cast<std::size_t>(i)] =
          kernel.rolloff_fourier(static_cast<double>(n), static_cast<double>(M));
    }
    return c;
  }
  const auto U = static_cast<index_t>(std::ceil(kernel.radius()));
  for (index_t i = 0; i < N; ++i) {
    const index_t n = i - N / 2;
    double acc = kernel.value(0.0);
    for (index_t u = 1; u <= U; ++u) {
      acc += 2.0 * kernel.value(static_cast<double>(u)) *
             std::cos(kTwoPi * static_cast<double>(u) * static_cast<double>(n) /
                      static_cast<double>(M));
    }
    c[static_cast<std::size_t>(i)] = acc;
  }
  return c;
}

fvec rolloff_1d(const Kernel1d& kernel, index_t N, index_t M) {
  const dvec c = apodization_1d(kernel, N, M);
  fvec s(c.size());
  for (std::size_t i = 0; i < c.size(); ++i) {
    NUFFT_CHECK_MSG(std::abs(c[i]) > 1e-8,
                    "apodization vanishes inside the field of view; widen the "
                    "kernel or raise the oversampling ratio");
    s[i] = static_cast<float>(1.0 / c[i]);
  }
  return s;
}

dvec apodization_1d_analytic(const KaiserBessel& kernel, index_t N, index_t M) {
  dvec c(static_cast<std::size_t>(N));
  for (index_t i = 0; i < N; ++i) {
    const index_t n = i - N / 2;
    c[static_cast<std::size_t>(i)] =
        kernel.fourier_at(static_cast<double>(n), static_cast<double>(M));
  }
  return c;
}

}  // namespace nufft::kernels
