#include "kernels/lut.hpp"

#include <cmath>

#include "common/error.hpp"

namespace nufft::kernels {

KernelLut::KernelLut(const Kernel1d& kernel, int samples_per_unit)
    : radius_(static_cast<float>(kernel.radius())),
      scale_(static_cast<float>(samples_per_unit)),
      spu_(samples_per_unit) {
  NUFFT_CHECK(samples_per_unit >= 2);
  const double W = kernel.radius();
  // Two guard entries: one so interpolation at d == W reads a defined
  // upper neighbour, one for float rounding of d·scale just past the end.
  const auto n = static_cast<std::size_t>(std::ceil(W * samples_per_unit)) + 2;
  table_.resize(n + 1);
  for (std::size_t i = 0; i <= n; ++i) {
    const double d = static_cast<double>(i) / samples_per_unit;
    // Guard entries past the support hold the one-sided value φ(W), not 0:
    // kernels with an edge discontinuity (Kaiser-Bessel has φ(W) = 1/I0(β))
    // would otherwise see interpolation in the last cell ramp toward zero
    // and underestimate every weight near the support edge.
    table_[i] = static_cast<float>(kernel.value(std::min(d, W)));
  }
}

}  // namespace nufft::kernels
