// Modified Bessel function of the first kind, order zero — the only special
// function the Kaiser-Bessel kernel needs.
#pragma once

namespace nufft::kernels {

/// I0(x), x >= 0. Power series below x = 50, large-argument asymptotic
/// expansion above; ~1e-15 relative over the full β range gridding kernels
/// and ES calibration reach (verified against high-precision references up
/// to x = 200).
double bessel_i0(double x);

}  // namespace nufft::kernels
