// Modified Bessel function of the first kind, order zero — the only special
// function the Kaiser-Bessel kernel needs.
#pragma once

namespace nufft::kernels {

/// I0(x), x >= 0. Power-series evaluation in double precision; accurate to
/// ~1e-15 relative over the β range used by gridding kernels (x ≲ 50).
double bessel_i0(double x);

}  // namespace nufft::kernels
