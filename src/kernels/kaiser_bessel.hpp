// Kaiser-Bessel interpolation kernel with the Beatty et al. shape parameter.
//
// KB(d) = I0(β·sqrt(1 − (d/W)²)) / I0(β) for |d| <= W, else 0.
//
// β follows Beatty, Nishimura & Pauly (IEEE TMI 2005), the parameterization
// the paper cites for high accuracy at modest oversampling:
//   β = π·sqrt((L/α)²·(α − 1/2)² − 0.8),  L = 2W (full kernel width).
#pragma once

#include "kernels/kernel.hpp"

namespace nufft::kernels {

class KaiserBessel final : public Kernel1d {
 public:
  /// Construct with an explicit shape parameter.
  KaiserBessel(double W, double beta);

  /// Construct with the Beatty-optimal β for oversampling ratio `alpha`.
  static KaiserBessel with_beatty_beta(double W, double alpha);

  /// The Beatty-optimal β itself (exposed for tests and documentation).
  static double beatty_beta(double W, double alpha);

  double radius() const override { return W_; }
  double value(double d) const override;
  std::string name() const override;

  double beta() const { return beta_; }

  /// Continuous Fourier transform of the kernel evaluated at image-domain
  /// pixel offset n of an M-point grid:
  ///   ĝ(n) = (2W/I0(β)) · sinh(sqrt(β² − t²))/sqrt(β² − t²),  t = 2πWn/M
  /// (the sinh smoothly becomes sin when t > β). Used as the analytic
  /// cross-check of the numeric rolloff map.
  double fourier_at(double n, double M) const;

 private:
  double W_;
  double beta_;
  double inv_i0_beta_;
};

}  // namespace nufft::kernels
