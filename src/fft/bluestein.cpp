#include "fft/bluestein.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/types.hpp"
#include "fft/fft1d.hpp"

namespace nufft::fft {

template <class T>
BluesteinPlan<T>::BluesteinPlan(std::size_t n, int sign)
    : n_(n), m_(next_pow2(2 * n - 1)) {
  NUFFT_CHECK(n >= 2);
  NUFFT_CHECK(sign == 1 || sign == -1);

  // chirp_[j] = e^{sign·iπ j²/n}. Reduce j² mod 2n in integers first: the
  // chirp is 2n-periodic in j², and this keeps the angle argument small so
  // single-precision plans stay accurate for large n.
  chirp_.resize(n_);
  for (std::size_t j = 0; j < n_; ++j) {
    const std::size_t j2 = (j * j) % (2 * n_);
    const double a = static_cast<double>(sign) * kPi * static_cast<double>(j2) /
                     static_cast<double>(n_);
    chirp_[j] = std::complex<T>(static_cast<T>(std::cos(a)), static_cast<T>(std::sin(a)));
  }

  fwd_ = std::make_unique<Fft1d<T>>(m_, Direction::kForward);
  inv_ = std::make_unique<Fft1d<T>>(m_, Direction::kInverse);

  // b[j] = conj(chirp[|j|]) laid out circularly over length m, then
  // transformed once at plan time.
  aligned_vector<std::complex<T>> b(m_, std::complex<T>(0, 0));
  for (std::size_t j = 0; j < n_; ++j) {
    const std::complex<T> cb = std::conj(chirp_[j]);
    b[j] = cb;
    if (j != 0) b[m_ - j] = cb;
  }
  chirp_fft_.resize(m_);
  aligned_vector<std::complex<T>> fs(fwd_->scratch_size());
  fwd_->transform(b.data(), chirp_fft_.data(), fs.data());
}

template <class T>
BluesteinPlan<T>::~BluesteinPlan() = default;

template <class T>
std::size_t BluesteinPlan<T>::scratch_size() const {
  // a-buffer + spectrum buffer + scratch for the inner power-of-two plans.
  return 2 * m_ + fwd_->scratch_size();
}

template <class T>
void BluesteinPlan<T>::transform(const std::complex<T>* in, std::complex<T>* out,
                                 std::complex<T>* scratch) const {
  std::complex<T>* a = scratch;
  std::complex<T>* spec = scratch + m_;
  std::complex<T>* fs = scratch + 2 * m_;

  for (std::size_t j = 0; j < n_; ++j) a[j] = in[j] * chirp_[j];
  for (std::size_t j = n_; j < m_; ++j) a[j] = std::complex<T>(0, 0);

  fwd_->transform(a, spec, fs);
  for (std::size_t j = 0; j < m_; ++j) spec[j] *= chirp_fft_[j];
  inv_->transform(spec, a, fs);

  const T inv_m = T(1) / static_cast<T>(m_);
  for (std::size_t k = 0; k < n_; ++k) out[k] = a[k] * chirp_[k] * inv_m;
}

template class BluesteinPlan<float>;
template class BluesteinPlan<double>;

}  // namespace nufft::fft
