#include "fft/twiddle.hpp"

#include <cmath>

#include "common/types.hpp"

namespace nufft::fft {

template <class T>
void fill_twiddles(std::complex<T>* out, std::size_t count, std::size_t n, int sign) {
  const double step = static_cast<double>(sign) * kTwoPi / static_cast<double>(n);
  for (std::size_t k = 0; k < count; ++k) {
    const double a = step * static_cast<double>(k);
    out[k] = std::complex<T>(static_cast<T>(std::cos(a)), static_cast<T>(std::sin(a)));
  }
}

template <class T>
aligned_vector<std::complex<T>> make_twiddles(std::size_t count, std::size_t n, int sign) {
  aligned_vector<std::complex<T>> tw(count);
  fill_twiddles(tw.data(), count, n, sign);
  return tw;
}

template void fill_twiddles<float>(std::complex<float>*, std::size_t, std::size_t, int);
template void fill_twiddles<double>(std::complex<double>*, std::size_t, std::size_t, int);
template aligned_vector<std::complex<float>> make_twiddles<float>(std::size_t, std::size_t, int);
template aligned_vector<std::complex<double>> make_twiddles<double>(std::size_t, std::size_t, int);

}  // namespace nufft::fft
