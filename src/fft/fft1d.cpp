#include "fft/fft1d.hpp"

#include <cstring>
#include <utility>

#include "common/error.hpp"
#include "fft/bluestein.hpp"
#include "fft/twiddle.hpp"

namespace nufft::fft {

std::size_t next_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

namespace {

// One Stockham radix-2 stage: reads `src`, writes `dst`.
//   nn — remaining transform length at this stage (before the split)
//   s  — current stride / number of interleaved sub-transforms
// dst[q + s(2p)]   = src[q + s·p] + src[q + s(p+m)]
// dst[q + s(2p+1)] = (src[q + s·p] − src[q + s(p+m)]) · w_p
template <class T>
void stockham_stage(const std::complex<T>* src, std::complex<T>* dst, std::size_t nn,
                    std::size_t s, const std::complex<T>* tw) {
  const std::size_t m = nn / 2;
  for (std::size_t p = 0; p < m; ++p) {
    const std::complex<T> w = tw[p];
    const std::complex<T>* a = src + s * p;
    const std::complex<T>* b = src + s * (p + m);
    std::complex<T>* lo = dst + s * (2 * p);
    std::complex<T>* hi = dst + s * (2 * p + 1);
    for (std::size_t q = 0; q < s; ++q) {
      const std::complex<T> u = a[q];
      const std::complex<T> v = b[q];
      lo[q] = u + v;
      hi[q] = (u - v) * w;
    }
  }
}

// One Stockham radix-4 stage: one pass replaces two radix-2 stages, halving
// the memory traffic of the pow2 path. `tw` holds e^{sign·2πi·p/nn} for
// p < nn/4; the second and third twiddles are its square and cube.
// `sign` distinguishes the ±i rotation of the odd outputs.
template <class T>
void stockham_stage4(const std::complex<T>* src, std::complex<T>* dst, std::size_t nn,
                     std::size_t s, const std::complex<T>* tw, int sign) {
  const std::size_t m = nn / 4;
  for (std::size_t p = 0; p < m; ++p) {
    const std::complex<T> w1 = tw[p];
    const std::complex<T> w2 = w1 * w1;
    const std::complex<T> w3 = w2 * w1;
    const std::complex<T>* a = src + s * p;
    const std::complex<T>* b = src + s * (p + m);
    const std::complex<T>* c = src + s * (p + 2 * m);
    const std::complex<T>* d = src + s * (p + 3 * m);
    std::complex<T>* y0 = dst + s * (4 * p);
    std::complex<T>* y1 = dst + s * (4 * p + 1);
    std::complex<T>* y2 = dst + s * (4 * p + 2);
    std::complex<T>* y3 = dst + s * (4 * p + 3);
    for (std::size_t q = 0; q < s; ++q) {
      const std::complex<T> apc = a[q] + c[q];
      const std::complex<T> amc = a[q] - c[q];
      const std::complex<T> bpd = b[q] + d[q];
      const std::complex<T> bmd = b[q] - d[q];
      // sign·i·(b−d): the quarter-turn of the DFT-4 butterfly.
      const std::complex<T> jbmd =
          sign < 0 ? std::complex<T>(bmd.imag(), -bmd.real())
                   : std::complex<T>(-bmd.imag(), bmd.real());
      y0[q] = apc + bpd;
      y1[q] = (amc + jbmd) * w1;
      y2[q] = (apc - bpd) * w2;
      y3[q] = (amc - jbmd) * w3;
    }
  }
}

}  // namespace

template <class T>
struct Fft1d<T>::Impl {
  // Power-of-two path: per-stage twiddle tables on the stage's base length.
  // Radix-4 stages carry nn/4 twiddles, the optional final radix-2 stage
  // nn/2 (= 1 entry, nn == 2).
  std::vector<aligned_vector<std::complex<T>>> stage_tw;
  std::vector<int> stage_radix;
  // Arbitrary-length path.
  std::unique_ptr<BluesteinPlan<T>> bluestein;
};

template <class T>
Fft1d<T>::Fft1d(std::size_t n, Direction dir) : n_(n), dir_(dir), impl_(new Impl) {
  NUFFT_CHECK(n >= 1);
  const int sign = static_cast<int>(dir);
  if (is_pow2(n)) {
    // Prefer radix-4 stages; a single trailing radix-2 handles odd log2(n).
    for (std::size_t nn = n; nn > 1;) {
      if (nn % 4 == 0) {
        impl_->stage_tw.push_back(make_twiddles<T>(nn / 4, nn, sign));
        impl_->stage_radix.push_back(4);
        nn /= 4;
      } else {
        impl_->stage_tw.push_back(make_twiddles<T>(nn / 2, nn, sign));
        impl_->stage_radix.push_back(2);
        nn /= 2;
      }
    }
  } else {
    impl_->bluestein = std::make_unique<BluesteinPlan<T>>(n, sign);
  }
}

template <class T>
Fft1d<T>::~Fft1d() = default;
template <class T>
Fft1d<T>::Fft1d(Fft1d&&) noexcept = default;
template <class T>
Fft1d<T>& Fft1d<T>::operator=(Fft1d&&) noexcept = default;

template <class T>
std::size_t Fft1d<T>::scratch_size() const {
  if (impl_->bluestein) return impl_->bluestein->scratch_size();
  return n_;
}

template <class T>
void Fft1d<T>::transform(const std::complex<T>* in, std::complex<T>* out,
                         std::complex<T>* scratch) const {
  if (n_ == 1) {
    out[0] = in[0];
    return;
  }
  if (impl_->bluestein) {
    impl_->bluestein->transform(in, out, scratch);
    return;
  }

  const int stages = static_cast<int>(impl_->stage_radix.size());
  // Ping-pong between `out` and `scratch`; pick the first destination so the
  // final stage lands in `out`. When in == out the first stage must not
  // write over its own input, so it targets `scratch` and we fix up with a
  // copy if the parity leaves the result there.
  std::complex<T>* buf_a = out;      // destination of odd-numbered stages (1st, 3rd, ...)
  std::complex<T>* buf_b = scratch;  // destination of even-numbered stages
  bool copy_back = false;
  if (in == out) {
    buf_a = scratch;
    buf_b = out;
    copy_back = (stages % 2) != 0;  // odd stage count ends in scratch
  } else if (stages % 2 == 0) {
    buf_a = scratch;
    buf_b = out;
  }

  const int sign = static_cast<int>(dir_);
  const std::complex<T>* src = in;
  std::size_t nn = n_;
  std::size_t s = 1;
  for (int st = 0; st < stages; ++st) {
    std::complex<T>* dst = (st % 2 == 0) ? buf_a : buf_b;
    const std::complex<T>* tw = impl_->stage_tw[static_cast<std::size_t>(st)].data();
    if (impl_->stage_radix[static_cast<std::size_t>(st)] == 4) {
      stockham_stage4(src, dst, nn, s, tw, sign);
      nn /= 4;
      s *= 4;
    } else {
      stockham_stage(src, dst, nn, s, tw);
      nn /= 2;
      s *= 2;
    }
    src = dst;
  }
  if (copy_back) std::memcpy(out, src, n_ * sizeof(std::complex<T>));
}

template <class T>
void Fft1d<T>::transform_inplace(std::complex<T>* data) {
  if (own_scratch_.size() < scratch_size()) own_scratch_.resize(scratch_size());
  transform(data, data, own_scratch_.data());
}

template class Fft1d<float>;
template class Fft1d<double>;

}  // namespace nufft::fft
