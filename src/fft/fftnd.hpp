// Multi-dimensional complex FFT via the row-column method, parallelized over
// rows with the thread pool. Handles any rank >= 1 and any per-axis length
// (power-of-two lengths take the Stockham path, others Bluestein).
//
// Data layout is row-major: dims = {n0, n1, ..., nd-1} with the last axis
// contiguous, matching the NUFFT grid layout (z fastest).
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

#include "fft/fft1d.hpp"
#include "parallel/thread_pool.hpp"

namespace nufft::fft {

template <class T>
class FftNd {
 public:
  FftNd(std::vector<std::size_t> dims, Direction dir);

  const std::vector<std::size_t>& dims() const { return dims_; }
  Direction direction() const { return dir_; }

  /// Total number of elements.
  std::size_t total() const { return total_; }

  /// In-place unnormalized transform of `data` (total() elements).
  void transform(std::complex<T>* data, ThreadPool& pool) const;

  /// Single-threaded convenience overload.
  void transform(std::complex<T>* data) const;

  /// The 1D plan used for `axis` — lets batched drivers (exec::BatchNufft)
  /// run pruned row loops against the same plan this transform would use.
  const Fft1d<T>& axis_plan(std::size_t axis) const { return plans_[axis]; }

 private:
  void transform_axis(std::complex<T>* data, std::size_t axis, ThreadPool& pool) const;

  std::vector<std::size_t> dims_;
  Direction dir_;
  std::size_t total_;
  std::vector<Fft1d<T>> plans_;  // one per axis (axes with equal lengths share work pattern but keep their own plan for simplicity)
};

}  // namespace nufft::fft
