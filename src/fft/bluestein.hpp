// Bluestein's chirp-z algorithm: FFT of arbitrary length n evaluated via a
// circular convolution of length m = next_pow2(2n-1).
//
// X[k] = conj(c[k]) · Σ_n (x[n]·conj(c[n])) · c[k-n],  c[j] = e^{iπ j²/n·sign}
//
// The chirp's FFT is precomputed at plan time, so a transform costs two
// power-of-two FFTs of length m plus O(n) pre/post multiplies.
#pragma once

#include <complex>
#include <cstddef>
#include <memory>

#include "common/aligned.hpp"

namespace nufft::fft {

enum class Direction : int;
template <class T>
class Fft1d;

template <class T>
class BluesteinPlan {
 public:
  BluesteinPlan(std::size_t n, int sign);
  ~BluesteinPlan();

  std::size_t scratch_size() const;

  void transform(const std::complex<T>* in, std::complex<T>* out,
                 std::complex<T>* scratch) const;

 private:
  std::size_t n_;
  std::size_t m_;  // convolution length, power of two
  // chirp_[j] = e^{sign·iπ j²/n}, j in [0, n)
  aligned_vector<std::complex<T>> chirp_;
  // Forward FFT of the zero-padded, circularly wrapped chirp, length m.
  aligned_vector<std::complex<T>> chirp_fft_;
  std::unique_ptr<Fft1d<T>> fwd_;  // length-m forward plan
  std::unique_ptr<Fft1d<T>> inv_;  // length-m inverse plan
};

}  // namespace nufft::fft
