// One-dimensional complex-to-complex FFT.
//
// The paper offloads its FFTs to Intel MKL; this repo carries its own plan-
// based implementation so the library is self-contained (see DESIGN.md §2).
//
//   * Power-of-two lengths run an iterative Stockham radix-2 autosort
//     network (no bit-reversal pass, ping-pong between two buffers).
//   * Every other length runs Bluestein's chirp-z algorithm on top of a
//     power-of-two plan (declared in bluestein.hpp).
//
// Transforms are unnormalized in both directions: forward computes
// X[k] = Σ x[n]·e^{-2πikn/N} and inverse uses e^{+2πikn/N}; callers apply
// 1/N where their convention requires it (the NUFFT folds it into the
// image-domain scaling map, as the paper's adjoint step 3 does).
#pragma once

#include <complex>
#include <cstddef>
#include <memory>

#include "common/aligned.hpp"

namespace nufft::fft {

enum class Direction : int {
  kForward = -1,  // e^{-i 2π k n / N}
  kInverse = +1,  // e^{+i 2π k n / N}
};

/// Reusable transform plan for a fixed length and direction.
/// Thread-safe for concurrent transform() calls as long as each call uses
/// its own scratch (see scratch_size / transform with explicit scratch).
template <class T>
class Fft1d {
 public:
  /// Build a plan for length n (n >= 1). Non-power-of-two lengths are
  /// handled via Bluestein.
  Fft1d(std::size_t n, Direction dir);
  ~Fft1d();

  Fft1d(Fft1d&&) noexcept;
  Fft1d& operator=(Fft1d&&) noexcept;

  std::size_t size() const { return n_; }
  Direction direction() const { return dir_; }

  /// Number of complex<T> scratch elements a transform call needs.
  std::size_t scratch_size() const;

  /// Out-of-place transform; `in` and `out` may alias. `scratch` must hold
  /// scratch_size() elements and be distinct from in/out.
  void transform(const std::complex<T>* in, std::complex<T>* out,
                 std::complex<T>* scratch) const;

  /// Convenience in-place transform using internally allocated scratch
  /// (not safe for concurrent calls on the same plan).
  void transform_inplace(std::complex<T>* data);

 private:
  struct Impl;
  std::size_t n_;
  Direction dir_;
  std::unique_ptr<Impl> impl_;
  aligned_vector<std::complex<T>> own_scratch_;
};

/// True when n is a power of two (n >= 1).
constexpr bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

/// Smallest power of two >= n.
std::size_t next_pow2(std::size_t n);

}  // namespace nufft::fft
