// "Chopping" — the paper's fftshift replacement (Section II-B).
//
// Shifting the origin of an image or spectrum by half the grid in the
// conjugate domain is equivalent to modulating the transformed signal by
// (−1)^(x+y+z). This header provides that modulation for rank-1..3 arrays,
// in place, with no data movement.
#pragma once

#include <complex>
#include <cstddef>
#include <vector>

#include "parallel/thread_pool.hpp"

namespace nufft::fft {

/// Multiply data[i0, i1, ..., id-1] by (−1)^(i0 + i1 + ... + id-1).
/// Row-major layout, last axis contiguous.
template <class T>
void chop(std::complex<T>* data, const std::vector<std::size_t>& dims, ThreadPool& pool) {
  std::size_t total = 1;
  for (const std::size_t d : dims) total *= d;
  const std::size_t inner = dims.back();
  const index_t rows = static_cast<index_t>(total / inner);
  pool.parallel_for(rows, [&](index_t begin, index_t end) {
    for (index_t r = begin; r < end; ++r) {
      // Parity of the outer indices of this row.
      std::size_t rem = static_cast<std::size_t>(r);
      int parity = 0;
      for (std::size_t a = dims.size() - 1; a-- > 0;) {
        // Walk outer dims from the innermost outward.
        parity ^= static_cast<int>(rem % dims[a] & 1);
        rem /= dims[a];
      }
      std::complex<T>* row = data + static_cast<std::size_t>(r) * inner;
      for (std::size_t i = (parity != 0) ? 0 : 1; i < inner; i += 2) row[i] = -row[i];
    }
  });
}

template <class T>
void chop(std::complex<T>* data, const std::vector<std::size_t>& dims) {
  ThreadPool serial(1);
  chop(data, dims, serial);
}

}  // namespace nufft::fft
