// Twiddle-factor table generation for the FFT plans.
#pragma once

#include <complex>
#include <cstddef>

#include "common/aligned.hpp"

namespace nufft::fft {

/// Fill `out[k] = exp(sign * i * 2π * k / n)` for k in [0, count).
/// Angles are computed in double precision regardless of T to keep
/// single-precision plans accurate for large n.
template <class T>
void fill_twiddles(std::complex<T>* out, std::size_t count, std::size_t n, int sign);

/// Convenience: a freshly allocated table of `count` twiddles on base n.
template <class T>
aligned_vector<std::complex<T>> make_twiddles(std::size_t count, std::size_t n, int sign);

}  // namespace nufft::fft
