#include "fft/fftnd.hpp"

#include "common/error.hpp"

namespace nufft::fft {

template <class T>
FftNd<T>::FftNd(std::vector<std::size_t> dims, Direction dir)
    : dims_(std::move(dims)), dir_(dir), total_(1) {
  NUFFT_CHECK(!dims_.empty());
  plans_.reserve(dims_.size());
  for (const std::size_t d : dims_) {
    NUFFT_CHECK(d >= 1);
    total_ *= d;
    plans_.emplace_back(d, dir_);
  }
}

template <class T>
void FftNd<T>::transform_axis(std::complex<T>* data, std::size_t axis, ThreadPool& pool) const {
  const std::size_t len = dims_[axis];
  if (len == 1) return;
  std::size_t inner = 1;
  for (std::size_t a = axis + 1; a < dims_.size(); ++a) inner *= dims_[a];
  const std::size_t outer = total_ / (len * inner);
  const Fft1d<T>& plan = plans_[axis];
  const std::size_t ssz = plan.scratch_size();

  // Per-context scratch: a contiguous row buffer plus the plan's scratch.
  std::vector<aligned_vector<std::complex<T>>> scratch(static_cast<std::size_t>(pool.size()));

  const index_t rows = static_cast<index_t>(outer * inner);
  // Chunk the row loop so each steal covers at least one `inner` block,
  // which keeps gathers of neighbouring rows on the same cache lines.
  const index_t chunk = std::max<index_t>(static_cast<index_t>(inner) > 64 ? 64 : static_cast<index_t>(inner),
                                          rows / (static_cast<index_t>(pool.size()) * 8 + 1) + 1);

  pool.parallel_for_tid(rows, chunk, [&](int tid, index_t begin, index_t end) {
    auto& buf = scratch[static_cast<std::size_t>(tid)];
    if (buf.size() < len + ssz) buf.resize(len + ssz);
    std::complex<T>* row = buf.data();
    std::complex<T>* fs = buf.data() + len;
    for (index_t r = begin; r < end; ++r) {
      const std::size_t o = static_cast<std::size_t>(r) / inner;
      const std::size_t i = static_cast<std::size_t>(r) % inner;
      std::complex<T>* base = data + o * len * inner + i;
      if (inner == 1) {
        plan.transform(base, base, fs);
      } else {
        for (std::size_t k = 0; k < len; ++k) row[k] = base[k * inner];
        plan.transform(row, row, fs);
        for (std::size_t k = 0; k < len; ++k) base[k * inner] = row[k];
      }
    }
  });
}

template <class T>
void FftNd<T>::transform(std::complex<T>* data, ThreadPool& pool) const {
  // Last (contiguous) axis first: it touches the data with unit stride and
  // warms pages before the strided passes.
  for (std::size_t a = dims_.size(); a-- > 0;) transform_axis(data, a, pool);
}

template <class T>
void FftNd<T>::transform(std::complex<T>* data) const {
  ThreadPool serial(1);
  transform(data, serial);
}

template class FftNd<float>;
template class FftNd<double>;

}  // namespace nufft::fft
