// Blocking client for NUFFT-as-a-service (serve::NufftServer).
//
// One NufftClient owns one AF_UNIX connection and one tenant session. Calls
// are synchronous RPCs: the request is framed and written, then the socket is
// read until the response frame carrying the matching request id arrives.
// A server-side ErrorMsg is rethrown locally as nufft::Error with the
// original ErrorCode — remote failures are indistinguishable from in-process
// ones (a shed request throws kOverloaded, an expired deadline kTimeout).
//
// The class is not thread-safe; use one client per thread, many clients per
// server. That is the intended saturation-bench topology as well.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "serve/protocol.hpp"

namespace nufft::serve {

struct RunResult {
  std::vector<cfloat> output;
  std::uint64_t queue_wait_us = 0;  // server-side admission → dispatch
  std::uint64_t exec_us = 0;        // operator wall time inside the engine
};

struct RunOptions {
  std::int64_t deadline_ms = -1;  // wall budget from server receipt; -1 = none
  bool best_effort = false;       // degrade instead of deadline-shed
};

class NufftClient {
 public:
  NufftClient() = default;
  ~NufftClient();

  NufftClient(const NufftClient&) = delete;
  NufftClient& operator=(const NufftClient&) = delete;
  NufftClient(NufftClient&& other) noexcept;
  NufftClient& operator=(NufftClient&& other) noexcept;

  /// Connect and open a tenant session (Hello/HelloAck handshake). Throws
  /// Error(kInternal) if the socket cannot be reached, kInvalidInput for an
  /// empty tenant name.
  void connect(const std::string& socket_path, const std::string& tenant);
  void close();
  bool connected() const { return fd_ >= 0; }
  std::uint64_t session_id() const { return session_id_; }

  /// Ship a plan description to the server and block until the plan is built
  /// (or served from the registry cache). Returns the plan handle for
  /// forward()/adjoint(). Throws the server-side build error verbatim —
  /// including kOverloaded when the tenant's registry quota is exhausted.
  std::uint64_t register_plan(const GridDesc& grid, const datasets::SampleSet& samples,
                              const PlanConfig& cfg);

  /// Resident bytes reported by the most recent register_plan ack.
  std::uint64_t last_plan_bytes() const { return last_plan_bytes_; }

  /// Type-2 transform: uniform image(s) in, nonuniform samples out.
  /// `input` must hold batch · image_elems values.
  RunResult forward(std::uint64_t plan_id, const std::vector<cfloat>& input,
                    std::uint32_t batch = 1, const RunOptions& opts = {});

  /// Type-1 (gridding) transform: nonuniform samples in, uniform image(s)
  /// out. `input` must hold batch · sample_count values.
  RunResult adjoint(std::uint64_t plan_id, const std::vector<cfloat>& input,
                    std::uint32_t batch = 1, const RunOptions& opts = {});

  /// Counter snapshot from the server (ServerStats + per-tenant).
  std::vector<std::pair<std::string, std::uint64_t>> server_stats();

 private:
  Frame rpc(MsgType type, const Bytes& body, MsgType expect);
  RunResult run(WireOp op, std::uint64_t plan_id, const std::vector<cfloat>& input,
                std::uint32_t batch, const RunOptions& opts);
  void write_all(const Bytes& buf);
  Frame read_frame();

  int fd_ = -1;
  std::uint64_t next_request_ = 1;
  std::uint64_t session_id_ = 0;
  std::uint64_t last_plan_bytes_ = 0;
  Bytes rbuf_;
};

}  // namespace nufft::serve
