// Blocking client for NUFFT-as-a-service (serve::NufftServer).
//
// One NufftClient owns one AF_UNIX connection and one tenant session. Calls
// are synchronous RPCs: the request is framed and written, then the socket is
// read until the response frame carrying the matching request id arrives.
// A server-side ErrorMsg is rethrown locally as nufft::Error with the
// original ErrorCode — remote failures are indistinguishable from in-process
// ones (a shed request throws kOverloaded, an expired deadline kTimeout).
//
// Resilience: every syscall is bounded by a poll(2)-based deadline
// (ClientOptions::io_timeout) — no call can block forever on a hung or
// half-dead server. When the transport dies mid-RPC (connection refused,
// reset, corrupt stream, deadline expired), the client reconnects with
// jittered exponential backoff and resubmits the SAME request id. The client
// announces a stable nonzero client_id in its Hello, and the server
// deduplicates (client_id, request_id) across reconnects: a request whose
// first execution is still running is re-homed to the new connection, and one
// that already finished replays its recorded outcome — so a resubmission
// never runs the work twice. Errors the *server* sends on a healthy
// connection are never retried here; retry policy for those belongs to the
// caller (see retry_class() in common/error.hpp).
//
// The class is not thread-safe; use one client per thread, many clients per
// server. That is the intended saturation-bench topology as well.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "serve/protocol.hpp"

namespace nufft::serve {

struct RunResult {
  std::vector<cfloat> output;
  std::uint64_t queue_wait_us = 0;  // server-side admission → dispatch
  std::uint64_t exec_us = 0;        // operator wall time inside the engine
};

struct RunOptions {
  std::int64_t deadline_ms = -1;  // wall budget from server receipt; -1 = none
  bool best_effort = false;       // degrade instead of deadline-shed
};

struct ClientOptions {
  /// Deadline for each I/O phase: connect, the whole request write, and — on
  /// reads — time without a single byte of progress (the clock restarts
  /// whenever bytes arrive, so a large result on a slow socket is fine while
  /// a wedged server is not). Raise this when submitting transforms whose
  /// compute time exceeds it. Negative disables deadlines entirely.
  std::chrono::milliseconds io_timeout{5000};
  /// Reconnect-and-resubmit attempts per RPC after a transport failure.
  /// 0 disables resilience: the first transport error is thrown.
  int max_reconnects = 3;
  /// Jittered exponential backoff between reconnect attempts:
  /// sleep ~ U(0.5, 1.5) · min(backoff_base · 2^attempt, backoff_max).
  std::chrono::milliseconds backoff_base{10};
  std::chrono::milliseconds backoff_max{1000};
  /// Stable identity for server-side (client_id, request_id) dedup. 0 (the
  /// default) generates a random nonzero id at first connect and keeps it for
  /// the lifetime of the client object, reconnects included.
  std::uint64_t client_id = 0;
};

class NufftClient {
 public:
  NufftClient() = default;
  explicit NufftClient(ClientOptions opts) : opts_(opts) {}
  ~NufftClient();

  NufftClient(const NufftClient&) = delete;
  NufftClient& operator=(const NufftClient&) = delete;
  NufftClient(NufftClient&& other) noexcept;
  NufftClient& operator=(NufftClient&& other) noexcept;

  /// Connect and open a tenant session (Hello/HelloAck handshake). Throws
  /// Error(kUnavailable) if the socket cannot be reached within the I/O
  /// deadline, kInvalidInput for an empty tenant name. Remembers the target,
  /// so later RPCs can reconnect after a transport failure.
  void connect(const std::string& socket_path, const std::string& tenant);
  void close();
  bool connected() const { return fd_ >= 0; }
  std::uint64_t session_id() const { return session_id_; }
  /// The dedup identity sent in Hello (fixed after the first connect).
  std::uint64_t client_id() const { return client_id_; }
  /// Successful reconnect-and-resubmit cycles performed so far.
  std::uint64_t reconnects() const { return reconnects_; }

  /// Ship a plan description to the server and block until the plan is built
  /// (or served from the registry cache). Returns the plan handle for
  /// forward()/adjoint(). Throws the server-side build error verbatim —
  /// including kOverloaded when the tenant's registry quota is exhausted.
  std::uint64_t register_plan(const GridDesc& grid, const datasets::SampleSet& samples,
                              const PlanConfig& cfg);

  /// Stream new trajectory coordinates into an existing plan handle
  /// (UpdateSamples/UpdateAck, protocol v3). The server diffs against the
  /// resident plan and prefers a warm delta re-bin over a cold rebuild; the
  /// handle stays valid and later forward()/adjoint() calls see the new
  /// trajectory. The ack reports the plan generation and which path ran.
  /// Throws the server-side error verbatim (kInvalidInput for an unknown
  /// handle or mismatched sample geometry).
  UpdateAckMsg update_samples(std::uint64_t plan_id, const datasets::SampleSet& samples);

  /// Resident bytes reported by the most recent register_plan or
  /// update_samples ack.
  std::uint64_t last_plan_bytes() const { return last_plan_bytes_; }

  /// Type-2 transform: uniform image(s) in, nonuniform samples out.
  /// `input` must hold batch · image_elems values.
  RunResult forward(std::uint64_t plan_id, const std::vector<cfloat>& input,
                    std::uint32_t batch = 1, const RunOptions& opts = {});

  /// Type-1 (gridding) transform: nonuniform samples in, uniform image(s)
  /// out. `input` must hold batch · sample_count values.
  RunResult adjoint(std::uint64_t plan_id, const std::vector<cfloat>& input,
                    std::uint32_t batch = 1, const RunOptions& opts = {});

  /// Counter snapshot from the server (ServerStats + per-tenant).
  std::vector<std::pair<std::string, std::uint64_t>> server_stats();

  /// Liveness round-trip (Ping/Pong). Throws on transport failure.
  void ping();
  /// Lifecycle snapshot (Health/HealthAck): state, admitting flag, load.
  HealthAckMsg health();
  /// Ask the server to drain gracefully; <= 0 uses the server's default
  /// deadline. Returns the ack (state + in-flight count at drain start).
  DrainAckMsg drain_server(std::int64_t deadline_ms = -1);

 private:
  Frame rpc(MsgType type, const Bytes& body, MsgType expect);
  Frame rpc_once(const Bytes& wire, std::uint64_t request_id, MsgType expect);
  RunResult run(WireOp op, std::uint64_t plan_id, const std::vector<cfloat>& input,
                std::uint32_t batch, const RunOptions& opts);
  void do_connect();
  void backoff_sleep(int attempt);
  // Poll until `events` is ready or `deadline`; throws kUnavailable on expiry.
  void io_wait(short events, std::chrono::steady_clock::time_point deadline);
  void write_all(const Bytes& buf);
  Frame read_frame();

  ClientOptions opts_;
  int fd_ = -1;
  std::uint64_t next_request_ = 1;
  std::uint64_t session_id_ = 0;
  std::uint64_t client_id_ = 0;
  std::uint64_t last_plan_bytes_ = 0;
  std::uint64_t reconnects_ = 0;
  std::string socket_path_;
  std::string tenant_;
  Bytes rbuf_;
};

}  // namespace nufft::serve
