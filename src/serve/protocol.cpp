#include "serve/protocol.hpp"

#include <limits>

namespace nufft::serve {

namespace {

bool known_type(std::uint16_t t) {
  return t >= static_cast<std::uint16_t>(MsgType::kHello) &&
         t <= static_cast<std::uint16_t>(MsgType::kUpdateAck);
}

void put_grid(Writer& w, const GridDesc& g) {
  w.pod(static_cast<std::int32_t>(g.dim));
  for (int d = 0; d < 3; ++d) w.pod(static_cast<std::int64_t>(g.n[static_cast<std::size_t>(d)]));
  for (int d = 0; d < 3; ++d) w.pod(static_cast<std::int64_t>(g.m[static_cast<std::size_t>(d)]));
  w.pod(g.alpha);
}

GridDesc get_grid(Reader& r) {
  GridDesc g;
  g.dim = static_cast<int>(r.pod<std::int32_t>());
  NUFFT_CHECK_CODE(g.dim >= 1 && g.dim <= 3, ErrorCode::kInvalidInput,
                   "grid dimension out of range: " << g.dim);
  for (int d = 0; d < 3; ++d) g.n[static_cast<std::size_t>(d)] = r.pod<std::int64_t>();
  for (int d = 0; d < 3; ++d) g.m[static_cast<std::size_t>(d)] = r.pod<std::int64_t>();
  g.alpha = r.pod<double>();
  return g;
}

// Every PlanConfig field crosses the wire explicitly, mirroring
// PlanRegistry::make_key — two processes agreeing on this struct agree on
// the plan's content key.
void put_config(Writer& w, const PlanConfig& c) {
  w.pod(c.kernel_radius);
  w.pod(static_cast<std::int32_t>(c.kernel));
  w.pod(static_cast<std::int32_t>(c.lut_samples_per_unit));
  w.pod(static_cast<std::int32_t>(c.threads));
  w.pod(static_cast<std::int32_t>(c.use_simd));
  w.pod(static_cast<std::int32_t>(c.isa));
  w.pod(static_cast<std::int32_t>(c.reorder));
  w.pod(static_cast<std::int32_t>(c.color_barrier_schedule));
  w.pod(static_cast<std::int32_t>(c.variable_partitions));
  w.pod(static_cast<std::int32_t>(c.priority_queue));
  w.pod(static_cast<std::int32_t>(c.selective_privatization));
  w.pod(static_cast<std::int32_t>(c.partitions_per_dim));
  w.pod(c.privatization_factor);
  w.pod(static_cast<std::int64_t>(c.reorder_tile));
  w.pod(static_cast<std::int32_t>(c.record_trace));
  // v2: tolerance-driven planning crosses the wire — the server resolves
  // the tolerance against its calibration table at plan construction.
  w.pod(c.tolerance);
  w.pod(static_cast<std::int32_t>(c.eval));
}

PlanConfig get_config(Reader& r) {
  PlanConfig c;
  c.kernel_radius = r.pod<double>();
  c.kernel = static_cast<kernels::KernelType>(r.pod<std::int32_t>());
  c.lut_samples_per_unit = static_cast<int>(r.pod<std::int32_t>());
  c.threads = static_cast<int>(r.pod<std::int32_t>());
  c.use_simd = r.pod<std::int32_t>() != 0;
  c.isa = static_cast<SimdIsa>(r.pod<std::int32_t>());
  c.reorder = r.pod<std::int32_t>() != 0;
  c.color_barrier_schedule = r.pod<std::int32_t>() != 0;
  c.variable_partitions = r.pod<std::int32_t>() != 0;
  c.priority_queue = r.pod<std::int32_t>() != 0;
  c.selective_privatization = r.pod<std::int32_t>() != 0;
  c.partitions_per_dim = static_cast<int>(r.pod<std::int32_t>());
  c.privatization_factor = r.pod<double>();
  c.reorder_tile = r.pod<std::int64_t>();
  c.record_trace = r.pod<std::int32_t>() != 0;
  c.tolerance = r.pod<double>();
  const auto eval = r.pod<std::int32_t>();
  NUFFT_CHECK_CODE(eval >= 0 && eval <= static_cast<std::int32_t>(kernels::KernelEval::kHorner),
                   ErrorCode::kInvalidInput, "kernel evaluator out of range: " << eval);
  c.eval = static_cast<kernels::KernelEval>(eval);
  return c;
}

void put_samples(Writer& w, const datasets::SampleSet& s) {
  w.pod(static_cast<std::int32_t>(s.dim));
  w.pod(static_cast<std::int64_t>(s.m));
  w.pod(static_cast<std::int64_t>(s.k));
  w.pod(static_cast<std::int64_t>(s.s));
  w.pod(static_cast<std::int32_t>(s.type));
  for (int d = 0; d < s.dim; ++d) {
    const auto& c = s.coords[static_cast<std::size_t>(d)];
    w.array(c.data(), c.size());
  }
}

datasets::SampleSet get_samples(Reader& r) {
  datasets::SampleSet s;
  s.dim = static_cast<int>(r.pod<std::int32_t>());
  NUFFT_CHECK_CODE(s.dim >= 1 && s.dim <= 3, ErrorCode::kInvalidInput,
                   "sample-set dimension out of range: " << s.dim);
  s.m = r.pod<std::int64_t>();
  s.k = r.pod<std::int64_t>();
  s.s = r.pod<std::int64_t>();
  s.type = static_cast<datasets::TrajectoryType>(r.pod<std::int32_t>());
  NUFFT_CHECK_CODE(s.k >= 0 && s.s >= 0, ErrorCode::kInvalidInput,
                   "negative sample-set geometry");
  // Guard k*s against signed overflow before count() is ever evaluated.
  NUFFT_CHECK_CODE(s.k == 0 || s.s <= std::numeric_limits<index_t>::max() / s.k,
                   ErrorCode::kInvalidInput, "sample-set geometry overflows");
  for (int d = 0; d < s.dim; ++d) {
    s.coords[static_cast<std::size_t>(d)] = r.array<fvec>();
    if (static_cast<index_t>(s.coords[static_cast<std::size_t>(d)].size()) != s.count()) {
      throw Error("coordinate array length does not match k*s", ErrorCode::kIoCorruption);
    }
  }
  return s;
}

}  // namespace

std::uint32_t checksum(const std::uint8_t* data, std::size_t n) noexcept {
  std::uint32_t h = 0x811c9dc5u;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 0x01000193u;
  }
  return h;
}

void encode_frame(Bytes& out, MsgType type, std::uint64_t request_id, const Bytes& body) {
  NUFFT_CHECK_CODE(body.size() <= kMaxBody, ErrorCode::kInvalidInput,
                   "frame body exceeds kMaxBody");
  FrameHeader h;
  h.type = static_cast<std::uint16_t>(type);
  h.request_id = request_id;
  h.body_len = static_cast<std::uint32_t>(body.size());
  h.body_check = checksum(body.data(), body.size());
  const auto* p = reinterpret_cast<const std::uint8_t*>(&h);
  out.insert(out.end(), p, p + sizeof(h));
  out.insert(out.end(), body.begin(), body.end());
}

std::size_t try_decode_frame(const std::uint8_t* data, std::size_t n, Frame& frame) {
  if (n < sizeof(FrameHeader)) return 0;
  FrameHeader h;
  std::memcpy(&h, data, sizeof(h));
  if (h.magic != kMagic) {
    throw Error("bad frame magic", ErrorCode::kIoCorruption);
  }
  if (h.version != kProtocolVersion) {
    throw Error("unsupported protocol version " + std::to_string(h.version),
                ErrorCode::kIoCorruption);
  }
  if (h.body_len > kMaxBody) {
    throw Error("frame body length " + std::to_string(h.body_len) + " exceeds limit",
                ErrorCode::kIoCorruption);
  }
  if (!known_type(h.type)) {
    throw Error("unknown message type " + std::to_string(h.type), ErrorCode::kIoCorruption);
  }
  const std::size_t total = sizeof(FrameHeader) + h.body_len;
  if (n < total) return 0;  // truncated so far — not an error, read more
  const std::uint8_t* body = data + sizeof(FrameHeader);
  if (checksum(body, h.body_len) != h.body_check) {
    throw Error("frame checksum mismatch", ErrorCode::kIoCorruption);
  }
  frame.type = static_cast<MsgType>(h.type);
  frame.request_id = h.request_id;
  frame.body.assign(body, body + h.body_len);
  return total;
}

Bytes encode(const HelloMsg& m) {
  Bytes b;
  Writer w(b);
  w.str(m.tenant);
  w.pod(m.client_id);
  return b;
}

HelloMsg decode_hello(const Bytes& b) {
  Reader r(b);
  HelloMsg m;
  m.tenant = r.str();
  // client_id arrived with the resilience layer; a body that ends after the
  // tenant string is the legacy encoding and means "no replay identity".
  m.client_id = r.done() ? 0 : r.pod<std::uint64_t>();
  return m;
}

Bytes encode(const HelloAckMsg& m) {
  Bytes b;
  Writer w(b);
  w.pod(m.session_id);
  w.pod(m.server_version);
  return b;
}

HelloAckMsg decode_hello_ack(const Bytes& b) {
  Reader r(b);
  HelloAckMsg m;
  m.session_id = r.pod<std::uint64_t>();
  m.server_version = r.pod<std::uint16_t>();
  return m;
}

Bytes encode(const RegisterPlanMsg& m) {
  Bytes b;
  Writer w(b);
  put_grid(w, m.grid);
  put_config(w, m.config);
  put_samples(w, m.samples);
  return b;
}

RegisterPlanMsg decode_register_plan(const Bytes& b) {
  Reader r(b);
  RegisterPlanMsg m;
  m.grid = get_grid(r);
  m.config = get_config(r);
  m.samples = get_samples(r);
  return m;
}

Bytes encode(const RegisterAckMsg& m) {
  Bytes b;
  Writer w(b);
  w.pod(m.plan_id);
  w.pod(m.resident_bytes);
  return b;
}

RegisterAckMsg decode_register_ack(const Bytes& b) {
  Reader r(b);
  RegisterAckMsg m;
  m.plan_id = r.pod<std::uint64_t>();
  m.resident_bytes = r.pod<std::uint64_t>();
  return m;
}

Bytes encode(const SubmitMsg& m) {
  Bytes b;
  Writer w(b);
  w.pod(m.plan_id);
  w.pod(static_cast<std::uint8_t>(m.op));
  w.pod(m.batch);
  w.pod(m.deadline_ms);
  w.pod(m.flags);
  w.array(m.input.data(), m.input.size());
  return b;
}

SubmitMsg decode_submit(const Bytes& b) {
  Reader r(b);
  SubmitMsg m;
  m.plan_id = r.pod<std::uint64_t>();
  const auto op = r.pod<std::uint8_t>();
  NUFFT_CHECK_CODE(op <= 1, ErrorCode::kInvalidInput, "transform op out of range: " << int{op});
  m.op = static_cast<WireOp>(op);
  m.batch = r.pod<std::uint32_t>();
  NUFFT_CHECK_CODE(m.batch >= 1, ErrorCode::kInvalidInput, "batch must be >= 1");
  m.deadline_ms = r.pod<std::int64_t>();
  m.flags = r.pod<std::uint32_t>();
  m.input = r.array<std::vector<cfloat>>();
  return m;
}

Bytes encode(const ResultMsg& m) {
  Bytes b;
  Writer w(b);
  w.pod(m.queue_wait_us);
  w.pod(m.exec_us);
  w.array(m.output.data(), m.output.size());
  return b;
}

ResultMsg decode_result(const Bytes& b) {
  Reader r(b);
  ResultMsg m;
  m.queue_wait_us = r.pod<std::uint64_t>();
  m.exec_us = r.pod<std::uint64_t>();
  m.output = r.array<std::vector<cfloat>>();
  return m;
}

Bytes encode(const ErrorMsg& m) {
  Bytes b;
  Writer w(b);
  w.pod(m.code);
  w.str(m.message);
  return b;
}

ErrorMsg decode_error(const Bytes& b) {
  Reader r(b);
  ErrorMsg m;
  m.code = r.pod<std::int32_t>();
  m.message = r.str();
  return m;
}

Bytes encode(const StatsAckMsg& m) {
  Bytes b;
  Writer w(b);
  w.pod(static_cast<std::uint64_t>(m.counters.size()));
  for (const auto& [name, value] : m.counters) {
    w.str(name);
    w.pod(value);
  }
  return b;
}

StatsAckMsg decode_stats_ack(const Bytes& b) {
  Reader r(b);
  StatsAckMsg m;
  const auto count = r.pod<std::uint64_t>();
  for (std::uint64_t i = 0; i < count; ++i) {
    std::string name = r.str();
    const auto value = r.pod<std::uint64_t>();
    m.counters.emplace_back(std::move(name), value);
  }
  return m;
}

Bytes encode(const HealthAckMsg& m) {
  Bytes b;
  Writer w(b);
  w.pod(static_cast<std::uint8_t>(m.state));
  w.pod(m.accepting);
  w.pod(m.connections);
  w.pod(m.inflight);
  w.pod(m.queued);
  w.pod(m.watchdog_stalls);
  return b;
}

HealthAckMsg decode_health_ack(const Bytes& b) {
  Reader r(b);
  HealthAckMsg m;
  const auto state = r.pod<std::uint8_t>();
  NUFFT_CHECK_CODE(state <= 2, ErrorCode::kInvalidInput,
                   "health state out of range: " << int{state});
  m.state = static_cast<WireHealth>(state);
  m.accepting = r.pod<std::uint8_t>();
  m.connections = r.pod<std::uint64_t>();
  m.inflight = r.pod<std::uint64_t>();
  m.queued = r.pod<std::uint64_t>();
  m.watchdog_stalls = r.pod<std::uint64_t>();
  return m;
}

Bytes encode(const DrainMsg& m) {
  Bytes b;
  Writer w(b);
  w.pod(m.deadline_ms);
  return b;
}

DrainMsg decode_drain(const Bytes& b) {
  Reader r(b);
  DrainMsg m;
  m.deadline_ms = r.pod<std::int64_t>();
  return m;
}

Bytes encode(const DrainAckMsg& m) {
  Bytes b;
  Writer w(b);
  w.pod(static_cast<std::uint8_t>(m.state));
  w.pod(m.inflight);
  return b;
}

DrainAckMsg decode_drain_ack(const Bytes& b) {
  Reader r(b);
  DrainAckMsg m;
  const auto state = r.pod<std::uint8_t>();
  NUFFT_CHECK_CODE(state <= 2, ErrorCode::kInvalidInput,
                   "health state out of range: " << int{state});
  m.state = static_cast<WireHealth>(state);
  m.inflight = r.pod<std::uint64_t>();
  return m;
}

Bytes encode(const UpdateSamplesMsg& m) {
  Bytes b;
  Writer w(b);
  w.pod(m.plan_id);
  put_samples(w, m.samples);
  return b;
}

UpdateSamplesMsg decode_update_samples(const Bytes& b) {
  Reader r(b);
  UpdateSamplesMsg m;
  m.plan_id = r.pod<std::uint64_t>();
  m.samples = get_samples(r);
  return m;
}

Bytes encode(const UpdateAckMsg& m) {
  Bytes b;
  Writer w(b);
  w.pod(m.plan_id);
  w.pod(m.generation);
  w.pod(static_cast<std::uint8_t>(m.path));
  w.pod(m.resident_bytes);
  return b;
}

UpdateAckMsg decode_update_ack(const Bytes& b) {
  Reader r(b);
  UpdateAckMsg m;
  m.plan_id = r.pod<std::uint64_t>();
  m.generation = r.pod<std::uint64_t>();
  const auto path = r.pod<std::uint8_t>();
  NUFFT_CHECK_CODE(path <= 2, ErrorCode::kInvalidInput,
                   "update path out of range: " << int{path});
  m.path = static_cast<WireUpdatePath>(path);
  m.resident_bytes = r.pod<std::uint64_t>();
  return m;
}

}  // namespace nufft::serve
