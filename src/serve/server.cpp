#include "serve/server.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "core/plan_cache.hpp"
#include "obs/obs.hpp"

namespace nufft::serve {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t ns_between(Clock::time_point a, Clock::time_point b) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

}  // namespace

// --- internal state structs -------------------------------------------------

struct NufftServer::Conn {
  int fd = -1;
  std::uint64_t id = 0;
  std::string tenant;  // empty until Hello
  Bytes rbuf;
  std::deque<Bytes> wbuf;
  std::size_t woff = 0;  // bytes of wbuf.front() already written
  bool close_after_flush = false;
};

struct NufftServer::Tenant {
  std::string name;
  TenantPolicy policy;
  struct PlanHandle {
    std::shared_ptr<const Nufft> plan;
    std::uint64_t last_use = 0;  // LRU stamp for the max_plans handle cap
  };
  std::map<std::uint64_t, PlanHandle> plans;
  std::deque<std::uint64_t> queue;  // admitted pending ids, FIFO per tenant
  std::size_t pending_bytes = 0;    // payload bytes across this tenant's live Pendings
  int inflight = 0;
  std::uint32_t deficit = 0;   // deficit-round-robin credit
  std::uint64_t use_tick = 0;  // source for PlanHandle::last_use stamps
};

struct NufftServer::Pending {
  std::uint64_t id = 0;
  std::uint64_t conn_id = 0;
  std::uint64_t request_id = 0;
  std::string tenant;
  std::shared_ptr<const Nufft> plan;
  exec::Op op = exec::Op::kForward;
  index_t batch = 1;
  bool has_deadline = false;
  Clock::time_point deadline{};
  Clock::time_point arrival{};
  Clock::time_point dispatched{};
  bool inflight = false;
  std::size_t payload_bytes = 0;  // input + output footprint charged at admission
  // Owned I/O buffers: the engine reads input and writes output in place, so
  // the Pending must stay at a stable address until its future resolves —
  // std::map node stability provides exactly that.
  std::vector<cfloat> input;
  std::vector<cfloat> output;
  std::future<exec::JobResult> future;
};

// --- lifecycle --------------------------------------------------------------

NufftServer::NufftServer(ServeConfig cfg)
    : cfg_(std::move(cfg)), registry_(cfg_.registry), engine_(cfg_.engine) {
  NUFFT_CHECK_MSG(!cfg_.socket_path.empty(), "ServeConfig::socket_path is required");
  max_inflight_ = cfg_.max_inflight > 0 ? cfg_.max_inflight : engine_.workers();
}

NufftServer::~NufftServer() { stop(); }

void NufftServer::start() {
  std::lock_guard<std::mutex> lock(run_mu_);
  if (running_) return;

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  NUFFT_CHECK_CODE(cfg_.socket_path.size() < sizeof(addr.sun_path), ErrorCode::kInvalidInput,
                   "socket path too long for AF_UNIX: " << cfg_.socket_path);
  std::memcpy(addr.sun_path, cfg_.socket_path.c_str(), cfg_.socket_path.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) throw Error("socket() failed", ErrorCode::kInternal);
  ::unlink(cfg_.socket_path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listen_fd_, cfg_.backlog) != 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error("cannot bind/listen on " + cfg_.socket_path + ": " + why,
                ErrorCode::kInternal);
  }
  set_nonblocking(listen_fd_);

  int pipefd[2];
  if (::pipe2(pipefd, O_NONBLOCK | O_CLOEXEC) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error("pipe2() failed", ErrorCode::kInternal);
  }
  wake_r_ = pipefd[0];
  wake_w_ = pipefd[1];

  stop_flag_.store(false);
  build_stop_ = false;
  poll_thread_ = std::thread([this] { poll_loop(); });
  build_thread_ = std::thread([this] { builder_loop(); });
  running_ = true;
}

void NufftServer::stop() {
  {
    std::lock_guard<std::mutex> lock(run_mu_);
    if (!running_) return;
    running_ = false;
  }
  stop_flag_.store(true);
  {
    std::lock_guard<std::mutex> lock(build_mu_);
    build_stop_ = true;
  }
  build_cv_.notify_all();
  wake();
  if (build_thread_.joinable()) build_thread_.join();
  if (poll_thread_.joinable()) poll_thread_.join();
  // Drain the engine while every Pending (whose buffers in-flight jobs
  // read/write) is still alive; only then tear the maps down.
  engine_.shutdown();
  for (auto& [id, c] : conns_) {
    if (c.fd >= 0) ::close(c.fd);
  }
  conns_.clear();
  pendings_.clear();
  tenants_.clear();
  rotation_.clear();
  queued_total_ = 0;
  pending_bytes_total_ = 0;
  inflight_total_ = 0;
  tenant_count_.store(0, std::memory_order_relaxed);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_r_ >= 0) ::close(wake_r_);
  if (wake_w_ >= 0) ::close(wake_w_);
  listen_fd_ = wake_r_ = wake_w_ = -1;
  ::unlink(cfg_.socket_path.c_str());
}

bool NufftServer::running() const {
  std::lock_guard<std::mutex> lock(run_mu_);
  return running_;
}

void NufftServer::wake() {
  if (wake_w_ < 0) return;
  const char b = 1;
  // A full pipe already guarantees a pending wakeup; EAGAIN is success here.
  [[maybe_unused]] const auto n = ::write(wake_w_, &b, 1);
}

void NufftServer::builder_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(build_mu_);
      build_cv_.wait(lock, [this] { return build_stop_ || !build_q_.empty(); });
      if (build_q_.empty()) return;  // stop requested and queue drained
      task = std::move(build_q_.front());
      build_q_.pop_front();
    }
    task();
  }
}

// --- poll loop --------------------------------------------------------------

void NufftServer::poll_loop() {
  std::vector<pollfd> fds;
  std::vector<std::uint64_t> fd_conn;
  while (!stop_flag_.load(std::memory_order_relaxed)) {
    finalize_completions();
    pump_dispatch();

    // Connections torn down outside the fd scan below (a send that could not
    // be framed during finalize) are reaped here.
    std::vector<std::uint64_t> dead;
    for (const auto& [id, c] : conns_) {
      if (c.fd < 0) dead.push_back(id);
    }
    for (const auto id : dead) close_conn(id);

    fds.clear();
    fd_conn.clear();
    fds.push_back(pollfd{listen_fd_, POLLIN, 0});
    fds.push_back(pollfd{wake_r_, POLLIN, 0});
    fd_conn.push_back(0);
    fd_conn.push_back(0);
    for (const auto& [id, c] : conns_) {
      short events = POLLIN;
      if (!c.wbuf.empty()) events |= POLLOUT;
      fds.push_back(pollfd{c.fd, events, 0});
      fd_conn.push_back(id);
    }

    if (::poll(fds.data(), fds.size(), /*timeout_ms=*/100) < 0) {
      if (errno == EINTR) continue;
      break;  // unrecoverable poll failure: shut the loop down
    }

    if ((fds[1].revents & POLLIN) != 0) {
      char buf[256];
      while (::read(wake_r_, buf, sizeof(buf)) > 0) {
      }
    }
    if ((fds[0].revents & POLLIN) != 0) accept_ready();

    std::vector<std::uint64_t> to_close;
    for (std::size_t i = 2; i < fds.size(); ++i) {
      auto it = conns_.find(fd_conn[i]);
      if (it == conns_.end()) continue;
      Conn& c = it->second;
      bool alive = true;
      if ((fds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 &&
          (fds[i].revents & POLLIN) == 0) {
        alive = false;
      }
      if (alive && (fds[i].revents & POLLIN) != 0) {
        read_ready(c);
        alive = c.fd >= 0;
      }
      if (alive && !c.wbuf.empty()) alive = flush_writes(c);
      if (alive && c.wbuf.empty() && c.close_after_flush) alive = false;
      if (!alive) to_close.push_back(it->first);
    }
    for (const auto id : to_close) close_conn(id);
  }
}

void NufftServer::accept_ready() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or transient failure — poll again
    if (conns_.size() >= cfg_.max_connections) {
      ::close(fd);
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.rejected_connections;
      obs::count("serve.rejected_connections");
      continue;
    }
    set_nonblocking(fd);
    Conn c;
    c.fd = fd;
    c.id = next_conn_++;
    conns_.emplace(c.id, std::move(c));
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.connections;
    }
    obs::count("serve.connections");
  }
}

void NufftServer::read_ready(Conn& c) {
  std::uint8_t buf[64 * 1024];
  bool peer_eof = false;
  for (;;) {
    const auto n = ::read(c.fd, buf, sizeof(buf));
    if (n > 0) {
      c.rbuf.insert(c.rbuf.end(), buf, buf + n);
      if (static_cast<std::size_t>(n) < sizeof(buf)) break;
      continue;
    }
    if (n == 0) {
      // Peer closed its write side. Bytes appended above (or buffered from
      // earlier reads) may hold complete frames — fall through to the decode
      // loop so a half-closing client still gets its responses, and only
      // then close.
      peer_eof = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    ::close(c.fd);
    c.fd = -1;
    return;
  }

  std::size_t off = 0;
  while (off < c.rbuf.size()) {
    Frame f;
    std::size_t consumed = 0;
    try {
      consumed = try_decode_frame(c.rbuf.data() + off, c.rbuf.size() - off, f);
    } catch (const Error& e) {
      // A corrupt frame poisons the whole stream — there is no way to find
      // the next frame boundary. Report and close.
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.protocol_errors;
      }
      obs::count("serve.protocol_errors");
      send_error(c, 0, e.code(), e.what());
      c.close_after_flush = true;
      c.rbuf.clear();
      return;
    }
    if (consumed == 0) break;  // incomplete frame — keep the tail buffered
    off += consumed;
    handle_frame(c, std::move(f));
    if (c.fd < 0 || c.close_after_flush) break;
  }
  c.rbuf.erase(c.rbuf.begin(), c.rbuf.begin() + static_cast<std::ptrdiff_t>(off));
  // EOF with the buffered frames now handled: flush responses, then close.
  if (peer_eof && c.fd >= 0) c.close_after_flush = true;
}

bool NufftServer::flush_writes(Conn& c) {
  while (!c.wbuf.empty()) {
    const Bytes& front = c.wbuf.front();
    // MSG_NOSIGNAL: a peer that vanished mid-write must surface as EPIPE on
    // this connection, not SIGPIPE for the whole process.
    const auto n =
        ::send(c.fd, front.data() + c.woff, front.size() - c.woff, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;  // POLLOUT will retry
      if (errno == EINTR) continue;
      return false;
    }
    c.woff += static_cast<std::size_t>(n);
    if (c.woff == front.size()) {
      c.wbuf.pop_front();
      c.woff = 0;
    }
  }
  return true;
}

void NufftServer::send_frame(Conn& c, MsgType type, std::uint64_t request_id,
                             const Bytes& body) {
  if (c.fd < 0) return;
  Bytes out;
  try {
    encode_frame(out, type, request_id, body);
  } catch (const std::exception&) {
    // A response that cannot be framed (body over kMaxBody, allocation
    // failure) must cost this connection, never the poll thread — several
    // callers (finalize paths) sit directly on the poll loop.
    obs::count("serve.send_failures");
    ::close(c.fd);
    c.fd = -1;
    return;
  }
  c.wbuf.push_back(std::move(out));
  flush_writes(c);  // opportunistic immediate write
}

void NufftServer::send_error(Conn& c, std::uint64_t request_id, ErrorCode code,
                             const std::string& msg) {
  ErrorMsg e;
  e.code = static_cast<std::int32_t>(code);
  e.message = msg;
  send_frame(c, MsgType::kError, request_id, encode(e));
}

void NufftServer::close_conn(std::uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  // Cancel this connection's admitted-but-undispatched requests: they have
  // not touched the engine, so dropping them costs nothing and frees backlog
  // for live connections. In-flight jobs finish and are counted orphaned.
  std::vector<std::uint64_t> drop;
  for (const auto& [pid, p] : pendings_) {
    if (p.conn_id == conn_id && !p.inflight) drop.push_back(pid);
  }
  for (const auto pid : drop) {
    Pending& p = pendings_.at(pid);
    auto tit = tenants_.find(p.tenant);
    if (tit != tenants_.end()) {
      auto& q = tit->second.queue;
      q.erase(std::remove(q.begin(), q.end(), pid), q.end());
      update_tenant_gauges(tit->second);
    }
    --queued_total_;
    release_payload(p);
    pendings_.erase(pid);
  }
  const std::string tenant = it->second.tenant;
  if (it->second.fd >= 0) ::close(it->second.fd);
  conns_.erase(it);
  maybe_gc_tenant(tenant);
}

// --- request handling -------------------------------------------------------

void NufftServer::handle_frame(Conn& c, Frame&& f) {
  try {
    switch (f.type) {
      case MsgType::kHello:
        handle_hello(c, f);
        return;
      case MsgType::kRegisterPlan:
        handle_register(c, std::move(f));
        return;
      case MsgType::kSubmit:
        handle_submit(c, std::move(f));
        return;
      case MsgType::kStats:
        handle_stats(c, f);
        return;
      default:
        throw Error("unexpected server-bound message type", ErrorCode::kIoCorruption);
    }
  } catch (const Error& e) {
    if (e.code() == ErrorCode::kIoCorruption) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.protocol_errors;
    }
    send_error(c, f.request_id, e.code(), e.what());
    if (e.code() == ErrorCode::kIoCorruption) c.close_after_flush = true;
  } catch (const std::exception& e) {
    send_error(c, f.request_id, ErrorCode::kInternal, e.what());
  }
}

void NufftServer::handle_hello(Conn& c, const Frame& f) {
  const HelloMsg m = decode_hello(f.body);
  NUFFT_CHECK_CODE(!m.tenant.empty(), ErrorCode::kInvalidInput, "tenant name must be non-empty");
  const std::string previous = c.tenant;
  c.tenant = m.tenant;
  tenant_for(m.tenant);
  // A repeated Hello switches the session's tenant; the record it abandoned
  // may now be unreachable (a client cycling names on one connection must
  // not grow the tenant maps without bound).
  if (!previous.empty() && previous != m.tenant) maybe_gc_tenant(previous);
  HelloAckMsg ack;
  ack.session_id = c.id;
  send_frame(c, MsgType::kHelloAck, f.request_id, encode(ack));
}

NufftServer::Tenant& NufftServer::tenant_for(const std::string& name) {
  auto it = tenants_.find(name);
  if (it != tenants_.end()) return it->second;
  Tenant t;
  t.name = name;
  auto pit = cfg_.tenants.find(name);
  t.policy = pit != cfg_.tenants.end() ? pit->second : cfg_.default_tenant;
  rotation_.push_back(name);
  auto& slot = tenants_.emplace(name, std::move(t)).first->second;
  tenant_count_.store(tenants_.size(), std::memory_order_relaxed);
  return slot;
}

void NufftServer::maybe_gc_tenant(const std::string& name) {
  auto it = tenants_.find(name);
  if (it == tenants_.end()) return;
  if (!it->second.queue.empty() || it->second.inflight > 0) return;
  for (const auto& [id, c] : conns_) {
    if (c.tenant == name) return;
  }
  // No session and no live work: drop the tenant record — plan handles
  // included, which releases the registry references so the tenant's quota
  // charges can be refunded. Without this, a client cycling distinct Hello
  // names would grow tenants_/rotation_ (and the DRR scan) without bound.
  // Historical counters in tenant_stats_ survive; they only exist for
  // tenants that actually ran work.
  if (obs::metrics_enabled()) {
    obs::gauge_set("serve.tenant." + name + ".queued", 0);
    obs::gauge_set("serve.tenant." + name + ".inflight", 0);
  }
  tenants_.erase(it);
  auto rit = std::find(rotation_.begin(), rotation_.end(), name);
  if (rit != rotation_.end()) {
    const auto idx = static_cast<std::size_t>(rit - rotation_.begin());
    rotation_.erase(rit);
    if (idx < rotation_cursor_) --rotation_cursor_;
    if (rotation_cursor_ >= rotation_.size()) rotation_cursor_ = 0;
  }
  tenant_count_.store(tenants_.size(), std::memory_order_relaxed);
}

void NufftServer::handle_register(Conn& c, Frame&& f) {
  NUFFT_CHECK_CODE(!c.tenant.empty(), ErrorCode::kInvalidInput,
                   "session has no tenant: send Hello first");
  // Decode on the poll thread (cheap, and corruption is detected while the
  // connection context is at hand); build on the builder thread.
  auto msg = std::make_shared<RegisterPlanMsg>(decode_register_plan(f.body));
  const auto conn_id = c.id;
  const auto request_id = f.request_id;
  const auto tenant = c.tenant;
  {
    std::lock_guard<std::mutex> lock(build_mu_);
    build_q_.push_back([this, conn_id, request_id, tenant, msg] {
      Registration reg;
      reg.conn_id = conn_id;
      reg.request_id = request_id;
      reg.tenant = tenant;
      try {
        reg.plan = registry_.acquire(msg->grid, msg->samples, msg->config, tenant);
      } catch (const Error& e) {
        reg.code = e.code();
        reg.error = e.what();
      } catch (const std::exception& e) {
        reg.code = ErrorCode::kBuildFailure;
        reg.error = e.what();
      }
      {
        std::lock_guard<std::mutex> out_lock(out_mu_);
        registrations_.push_back(std::move(reg));
      }
      wake();
    });
  }
  build_cv_.notify_one();
}

void NufftServer::handle_submit(Conn& c, Frame&& f) {
  NUFFT_CHECK_CODE(!c.tenant.empty(), ErrorCode::kInvalidInput,
                   "session has no tenant: send Hello first");
  SubmitMsg m = decode_submit(f.body);
  Tenant& t = tenant_for(c.tenant);

  auto pit = t.plans.find(m.plan_id);
  if (pit == t.plans.end()) {
    throw Error("unknown plan handle " + std::to_string(m.plan_id) + " for tenant '" +
                    c.tenant + "'",
                ErrorCode::kInvalidInput);
  }
  pit->second.last_use = ++t.use_tick;
  const auto& plan = pit->second.plan;
  NUFFT_CHECK_CODE(m.batch >= 1, ErrorCode::kInvalidInput, "batch must be >= 1");
  const auto batch = static_cast<index_t>(m.batch);
  const index_t in_elems =
      m.op == WireOp::kForward ? plan->image_elems() : plan->sample_count();
  const index_t out_elems =
      m.op == WireOp::kForward ? plan->sample_count() : plan->image_elems();
  // Both directions of the transfer must fit one protocol frame, checked in
  // overflow-safe u64 arithmetic BEFORE anything is allocated or admitted.
  // The output bound is the critical one: for an asymmetric plan a legal
  // request could otherwise demand a ResultMsg beyond kMaxBody, which
  // encode_frame would only reject at completion time — on the poll thread,
  // with no handler between it and std::terminate.
  const auto batch_u = static_cast<std::uint64_t>(m.batch);
  const auto in_u = static_cast<std::uint64_t>(in_elems);
  const auto out_u = static_cast<std::uint64_t>(out_elems);
  constexpr std::uint64_t kResultOverhead = 3 * sizeof(std::uint64_t);  // timings + count
  const std::uint64_t max_in = kMaxBody / sizeof(cfloat);
  const std::uint64_t max_out = (kMaxBody - kResultOverhead) / sizeof(cfloat);
  NUFFT_CHECK_CODE(in_u == 0 || batch_u <= max_in / in_u, ErrorCode::kInvalidInput,
                   "input of " << m.batch << " x " << in_elems
                               << " values cannot fit one protocol frame");
  NUFFT_CHECK_CODE(out_u == 0 || batch_u <= max_out / out_u, ErrorCode::kInvalidInput,
                   "result payload (" << m.batch << " x " << out_elems << " values) would "
                   "exceed the " << kMaxBody << "-byte frame cap; split the batch");
  NUFFT_CHECK_CODE(static_cast<index_t>(m.input.size()) == batch * in_elems,
                   ErrorCode::kInvalidInput,
                   "input payload holds " << m.input.size() << " values, plan expects "
                                          << batch * in_elems);
  const auto payload_bytes = static_cast<std::size_t>((batch_u * in_u + batch_u * out_u) *
                                                      sizeof(cfloat));

  ErrorCode shed_code = ErrorCode::kOverloaded;
  std::string why;
  if (!admit(t, m, payload_bytes, shed_code, why)) {
    send_error(c, f.request_id, shed_code, why);
    return;
  }

  Pending p;
  p.id = next_pending_++;
  p.conn_id = c.id;
  p.request_id = f.request_id;
  p.tenant = c.tenant;
  p.plan = plan;
  p.op = m.op == WireOp::kForward ? exec::Op::kForward : exec::Op::kAdjoint;
  p.batch = batch;
  p.arrival = Clock::now();
  const bool best_effort = (m.flags & kFlagBestEffort) != 0;
  if (m.deadline_ms >= 0 && !best_effort) {
    p.has_deadline = true;
    p.deadline = p.arrival + std::chrono::milliseconds(m.deadline_ms);
  }
  p.input = std::move(m.input);
  p.output.resize(static_cast<std::size_t>(batch * out_elems));
  p.payload_bytes = payload_bytes;
  t.pending_bytes += payload_bytes;
  pending_bytes_total_ += payload_bytes;

  t.queue.push_back(p.id);
  ++queued_total_;
  pendings_.emplace(p.id, std::move(p));
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.accepted;
    ++tenant_stats_[c.tenant].accepted;
  }
  obs::count("serve.accepted");
  update_tenant_gauges(t);
  pump_dispatch();
}

bool NufftServer::admit(Tenant& t, const SubmitMsg& m, std::size_t payload_bytes,
                        ErrorCode& code, std::string& why) {
  if (t.queue.size() >= t.policy.max_queued) {
    code = ErrorCode::kOverloaded;
    why = "tenant '" + t.name + "' backlog full (" + std::to_string(t.queue.size()) +
          " queued)";
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.shed_overload;
    ++tenant_stats_[t.name].shed_overload;
    obs::count("serve.shed_overload");
    return false;
  }
  if (queued_total_ >= cfg_.max_queued_total) {
    code = ErrorCode::kOverloaded;
    why = "server backlog full (" + std::to_string(queued_total_) + " queued)";
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.shed_overload;
    ++tenant_stats_[t.name].shed_overload;
    obs::count("serve.shed_overload");
    return false;
  }
  // Byte-based admission: request counts alone cannot bound memory — with a
  // small-input plan a single admitted submit may pin a huge output buffer.
  // A submit that can never fit the tenant budget is a client error
  // (kInvalidInput: retrying verbatim is pointless); one that merely does not
  // fit *right now* is kOverloaded and worth retrying after the backlog drains.
  if (t.policy.max_pending_bytes != 0 &&
      t.pending_bytes + payload_bytes > t.policy.max_pending_bytes) {
    const bool never_fits = payload_bytes > t.policy.max_pending_bytes;
    code = never_fits ? ErrorCode::kInvalidInput : ErrorCode::kOverloaded;
    why = never_fits
              ? "request payload of " + std::to_string(payload_bytes) +
                    " B exceeds tenant '" + t.name + "' budget of " +
                    std::to_string(t.policy.max_pending_bytes) + " B; split the batch"
              : "tenant '" + t.name + "' payload budget full (" +
                    std::to_string(t.pending_bytes) + " B pinned, " +
                    std::to_string(payload_bytes) + " B requested)";
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.shed_overload;
    ++tenant_stats_[t.name].shed_overload;
    obs::count("serve.shed_overload");
    return false;
  }
  if (cfg_.max_pending_bytes_total != 0 &&
      pending_bytes_total_ + payload_bytes > cfg_.max_pending_bytes_total) {
    const bool never_fits = payload_bytes > cfg_.max_pending_bytes_total;
    code = never_fits ? ErrorCode::kInvalidInput : ErrorCode::kOverloaded;
    why = never_fits
              ? "request payload of " + std::to_string(payload_bytes) +
                    " B exceeds the server budget of " +
                    std::to_string(cfg_.max_pending_bytes_total) + " B; split the batch"
              : "server payload budget full (" + std::to_string(pending_bytes_total_) +
                    " B pinned, " + std::to_string(payload_bytes) + " B requested)";
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.shed_overload;
    ++tenant_stats_[t.name].shed_overload;
    obs::count("serve.shed_overload");
    return false;
  }
  // Deadline-aware shedding: once the queue-wait histogram is warm, a
  // request whose whole budget would be eaten by the p99 queue wait is
  // refused now instead of timing out later — unless the client opted into
  // best-effort degradation, in which case it runs without a deadline.
  if (m.deadline_ms >= 0 && wait_hist_.count() >= cfg_.min_wait_samples) {
    const std::uint64_t p99_ns = obs::histogram_quantile_ns(wait_hist_, 0.99);
    const std::uint64_t budget_ns = static_cast<std::uint64_t>(m.deadline_ms) * 1000000ull;
    if (p99_ns > budget_ns) {
      if ((m.flags & kFlagBestEffort) != 0) {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.degraded;
        ++tenant_stats_[t.name].degraded;
        obs::count("serve.degraded");
        return true;
      }
      code = ErrorCode::kOverloaded;
      why = "deadline " + std::to_string(m.deadline_ms) + " ms below p99 queue wait " +
            std::to_string(p99_ns / 1000000) + " ms — shed";
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.shed_deadline;
      ++tenant_stats_[t.name].shed_deadline;
      obs::count("serve.shed_deadline");
      return false;
    }
  }
  return true;
}

void NufftServer::release_payload(const Pending& p) {
  auto tit = tenants_.find(p.tenant);
  if (tit != tenants_.end()) {
    tit->second.pending_bytes -= std::min(tit->second.pending_bytes, p.payload_bytes);
  }
  pending_bytes_total_ -= std::min(pending_bytes_total_, p.payload_bytes);
}

// --- dispatch and completion ------------------------------------------------

void NufftServer::pump_dispatch() {
  if (rotation_.empty() || queued_total_ == 0) return;
  bool progress = true;
  while (progress && inflight_total_ < max_inflight_ && queued_total_ > 0) {
    progress = false;
    for (std::size_t visit = 0;
         visit < rotation_.size() && inflight_total_ < max_inflight_; ++visit) {
      Tenant& t = tenants_.at(rotation_[rotation_cursor_]);
      rotation_cursor_ = (rotation_cursor_ + 1) % rotation_.size();
      if (t.queue.empty()) {
        t.deficit = 0;  // classic DRR: no banking credit while idle
        continue;
      }
      if (t.inflight >= t.policy.max_inflight) continue;
      // Cap banked credit so a long-blocked tenant cannot burst far past its
      // share once its in-flight cap frees up.
      t.deficit = std::min(t.deficit + t.policy.weight, 2 * t.policy.weight);
      while (t.deficit >= 1 && !t.queue.empty() && t.inflight < t.policy.max_inflight &&
             inflight_total_ < max_inflight_) {
        const auto id = t.queue.front();
        t.queue.pop_front();
        --queued_total_;
        t.deficit -= 1;
        dispatch_one(id);
        progress = true;
      }
      update_tenant_gauges(t);
    }
  }
}

void NufftServer::dispatch_one(std::uint64_t pending_id) {
  Pending& p = pendings_.at(pending_id);
  Tenant& t = tenants_.at(p.tenant);
  const auto now = Clock::now();

  if (p.has_deadline && now >= p.deadline) {
    // Expired while queued: fail without spending an engine slot.
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.deadline_missed;
      ++stats_.failed;
      ++tenant_stats_[p.tenant].deadline_missed;
      ++tenant_stats_[p.tenant].failed;
    }
    obs::count("serve.deadline_missed");
    auto cit = conns_.find(p.conn_id);
    if (cit != conns_.end()) {
      send_error(cit->second, p.request_id, ErrorCode::kTimeout,
                 "deadline expired in server queue");
    }
    release_payload(p);
    pendings_.erase(pending_id);
    return;
  }

  exec::JobOptions opts;
  if (p.has_deadline) {
    opts.timeout = std::chrono::duration_cast<std::chrono::milliseconds>(p.deadline - now);
  }
  const auto id = pending_id;
  opts.on_complete = [this, id] {
    {
      std::lock_guard<std::mutex> lock(out_mu_);
      completed_.push_back(id);
    }
    wake();
  };
  p.dispatched = now;
  p.inflight = true;
  ++t.inflight;
  ++inflight_total_;
  p.future = engine_.submit(p.op, p.plan, p.input.data(), p.output.data(), p.batch, opts);
}

void NufftServer::finalize_completions() {
  std::vector<std::uint64_t> done;
  std::vector<Registration> regs;
  {
    std::lock_guard<std::mutex> lock(out_mu_);
    done.swap(completed_);
    regs.swap(registrations_);
  }
  for (auto& reg : regs) {
    auto cit = conns_.find(reg.conn_id);
    if (cit == conns_.end()) {
      // The connection died while the build ran. Drop the result instead of
      // attaching a handle to a tenant record nobody can reach — the plan's
      // shared_ptr dies here and the registry sweeps the quota charge back.
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.orphaned;
      continue;
    }
    Conn& c = cit->second;
    if (c.tenant != reg.tenant) {
      // The session re-Hello'd to another tenant while the build ran. Treat
      // the result as orphaned rather than attaching a handle to the
      // abandoned (possibly already garbage-collected) tenant record.
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.orphaned;
      continue;
    }
    if (!reg.plan) {
      send_error(c, reg.request_id, reg.code, reg.error);
      continue;
    }
    Tenant& t = tenant_for(reg.tenant);
    const auto plan_id = next_plan_++;
    t.plans.emplace(plan_id, Tenant::PlanHandle{reg.plan, ++t.use_tick});
    if (t.policy.max_plans != 0 && t.plans.size() > t.policy.max_plans) {
      // Over the handle cap: drop the least-recently-used handle (never the
      // one just registered — it carries the newest stamp). The dropped
      // shared_ptr releases the registry reference, so an evicted-but-held
      // plan stops counting against the tenant quota once nothing uses it.
      auto victim = t.plans.begin();
      for (auto hit = t.plans.begin(); hit != t.plans.end(); ++hit) {
        if (hit->second.last_use < victim->second.last_use) victim = hit;
      }
      t.plans.erase(victim);
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.plans_dropped;
      }
      obs::count("serve.plans_dropped");
    }
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.plans_registered;
    }
    obs::count("serve.plans_registered");
    RegisterAckMsg ack;
    ack.plan_id = plan_id;
    ack.resident_bytes = plan_resident_bytes(reg.plan->plan(), reg.plan->grid_desc()) +
                         reg.plan->workspace_bytes();
    send_frame(c, MsgType::kRegisterAck, reg.request_id, encode(ack));
  }
  for (const auto id : done) finalize(id);
}

void NufftServer::finalize(std::uint64_t pending_id) {
  auto it = pendings_.find(pending_id);
  if (it == pendings_.end()) return;
  Pending& p = it->second;

  auto tit = tenants_.find(p.tenant);
  if (tit != tenants_.end() && p.inflight) {
    --tit->second.inflight;
    update_tenant_gauges(tit->second);
  }
  if (p.inflight) --inflight_total_;

  const std::uint64_t wait_ns = ns_between(p.arrival, p.dispatched);
  wait_hist_.record(wait_ns);
  obs::observe_ns("serve.queue_wait_ns", wait_ns);

  ResultMsg res;
  ErrorCode err_code = ErrorCode::kInternal;
  std::string err_msg;
  bool ok = false;
  try {
    exec::JobResult r = p.future.get();
    res.queue_wait_us = wait_ns / 1000;
    res.exec_us = static_cast<std::uint64_t>(r.stats.total_s * 1e6);
    res.output = std::move(p.output);
    ok = true;
  } catch (const Error& e) {
    err_code = e.code();
    err_msg = e.what();
  } catch (const std::exception& e) {
    err_msg = e.what();
  }

  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    TenantStats& ts = tenant_stats_[p.tenant];
    if (ok) {
      ++stats_.completed;
      ++ts.completed;
    } else {
      ++stats_.failed;
      ++ts.failed;
      if (err_code == ErrorCode::kTimeout) {
        ++stats_.deadline_missed;
        ++ts.deadline_missed;
      }
    }
  }
  obs::count(ok ? "serve.completed" : "serve.failed");
  obs::observe_ns("serve.service_ns", ns_between(p.arrival, Clock::now()));

  auto cit = conns_.find(p.conn_id);
  if (cit != conns_.end()) {
    try {
      if (ok) {
        send_frame(cit->second, MsgType::kResult, p.request_id, encode(res));
      } else {
        send_error(cit->second, p.request_id, err_code, err_msg);
      }
    } catch (const std::exception&) {
      // Body serialization failed (allocation) — admission already bounds
      // result sizes, so this is a last-ditch guard: the poll thread must
      // survive anything the per-connection send path throws.
      obs::count("serve.send_failures");
      ::close(cit->second.fd);
      cit->second.fd = -1;
    }
  } else {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.orphaned;
  }
  release_payload(p);
  const std::string tenant = p.tenant;
  pendings_.erase(it);
  // This may have been the tenant's last live work after its connection
  // already closed — reap the record now that nothing references it.
  maybe_gc_tenant(tenant);
}

void NufftServer::handle_stats(Conn& c, const Frame& f) {
  StatsAckMsg ack;
  ack.counters = stat_counters();
  send_frame(c, MsgType::kStatsAck, f.request_id, encode(ack));
}

// --- stats ------------------------------------------------------------------

void NufftServer::update_tenant_gauges(const Tenant& t) const {
  if (!obs::metrics_enabled()) return;
  obs::gauge_set("serve.tenant." + t.name + ".queued",
                 static_cast<std::int64_t>(t.queue.size()));
  obs::gauge_set("serve.tenant." + t.name + ".inflight", t.inflight);
}

ServerStats NufftServer::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

std::map<std::string, TenantStats> NufftServer::tenant_stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return tenant_stats_;
}

std::vector<std::pair<std::string, std::uint64_t>> NufftServer::stat_counters() const {
  ServerStats s;
  std::map<std::string, TenantStats> ts;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    s = stats_;
    ts = tenant_stats_;
  }
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.emplace_back("connections", s.connections);
  out.emplace_back("rejected_connections", s.rejected_connections);
  out.emplace_back("protocol_errors", s.protocol_errors);
  out.emplace_back("plans_registered", s.plans_registered);
  out.emplace_back("accepted", s.accepted);
  out.emplace_back("completed", s.completed);
  out.emplace_back("failed", s.failed);
  out.emplace_back("shed_overload", s.shed_overload);
  out.emplace_back("shed_deadline", s.shed_deadline);
  out.emplace_back("degraded", s.degraded);
  out.emplace_back("deadline_missed", s.deadline_missed);
  out.emplace_back("orphaned", s.orphaned);
  out.emplace_back("plans_dropped", s.plans_dropped);
  out.emplace_back("queue_wait_p50_us", obs::histogram_quantile_ns(wait_hist_, 0.50) / 1000);
  out.emplace_back("queue_wait_p99_us", obs::histogram_quantile_ns(wait_hist_, 0.99) / 1000);
  for (const auto& [name, t] : ts) {
    out.emplace_back("tenant." + name + ".accepted", t.accepted);
    out.emplace_back("tenant." + name + ".completed", t.completed);
    out.emplace_back("tenant." + name + ".failed", t.failed);
    out.emplace_back("tenant." + name + ".shed_overload", t.shed_overload);
    out.emplace_back("tenant." + name + ".shed_deadline", t.shed_deadline);
    out.emplace_back("tenant." + name + ".degraded", t.degraded);
    out.emplace_back("tenant." + name + ".deadline_missed", t.deadline_missed);
  }
  return out;
}

}  // namespace nufft::serve
