#include "serve/server.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <utility>

#include "common/fault.hpp"
#include "core/plan_cache.hpp"
#include "obs/obs.hpp"

namespace nufft::serve {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t ns_between(Clock::time_point a, Clock::time_point b) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(b - a).count());
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

// SIGTERM → graceful drain. Process-global by nature of signals: every
// server configured with drain_on_sigterm polls it from its poll loop.
std::atomic<bool> g_sigterm{false};
void sigterm_handler(int) { g_sigterm.store(true, std::memory_order_relaxed); }

}  // namespace

// --- internal state structs -------------------------------------------------

struct NufftServer::Conn {
  int fd = -1;
  std::uint64_t id = 0;
  std::string tenant;  // empty until Hello
  std::uint64_t client_id = 0;  // reconnect/replay identity (0 = none)
  Bytes rbuf;
  std::deque<Bytes> wbuf;
  std::size_t woff = 0;        // bytes of wbuf.front() already written
  std::size_t wbuf_bytes = 0;  // total queued outbound bytes (slow-reader cap)
  bool close_after_flush = false;
  Clock::time_point last_activity{};  // any read/write progress (idle timeout)
};

struct NufftServer::Tenant {
  std::string name;
  TenantPolicy policy;
  struct PlanHandle {
    std::shared_ptr<const Nufft> plan;
    std::uint64_t last_use = 0;  // LRU stamp for the max_plans handle cap
    // Registration inputs, kept so UpdateSamples can hand the registry the
    // old content key (warm-diff base) and the exact config/grid it was
    // built with. `key` rebinds to the new content key after each update.
    std::string key;
    GridDesc grid;
    PlanConfig config;
  };
  std::map<std::uint64_t, PlanHandle> plans;
  std::deque<std::uint64_t> queue;  // admitted pending ids, FIFO per tenant
  std::size_t pending_bytes = 0;    // payload bytes across this tenant's live Pendings
  int inflight = 0;
  std::uint32_t deficit = 0;   // deficit-round-robin credit
  std::uint64_t use_tick = 0;  // source for PlanHandle::last_use stamps
  // Exactly-once across reconnects. `live_by_rid` maps (client_id,
  // request_id) of requests still in flight — a resubmission re-homes the
  // Pending to the new connection instead of re-executing. `replay` holds
  // finished responses as raw frames (FIFO-evicted by entry and byte caps)
  // so a resubmission after completion replays the original outcome.
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::uint64_t> live_by_rid;
  std::map<std::pair<std::uint64_t, std::uint64_t>, Bytes> replay;
  std::deque<std::pair<std::uint64_t, std::uint64_t>> replay_order;
  std::size_t replay_bytes = 0;
};

struct NufftServer::Pending {
  std::uint64_t id = 0;
  std::uint64_t conn_id = 0;
  std::uint64_t request_id = 0;
  std::uint64_t client_id = 0;
  std::string tenant;
  std::shared_ptr<const Nufft> plan;
  exec::Op op = exec::Op::kForward;
  index_t batch = 1;
  bool has_deadline = false;
  Clock::time_point deadline{};
  Clock::time_point arrival{};
  Clock::time_point dispatched{};
  bool inflight = false;
  std::size_t payload_bytes = 0;  // input + output footprint charged at admission
  // Owned I/O buffers, shared with the engine as JobOptions::keepalive: the
  // apply reads input and writes output in place, and may still be running
  // when this Pending dies early (watchdog kTimeout, drain-deadline
  // kCancelled) — the engine's reference keeps the buffers valid until the
  // apply truly returns.
  struct IoBuffers {
    std::vector<cfloat> input;
    std::vector<cfloat> output;
  };
  std::shared_ptr<IoBuffers> io;
  std::future<exec::JobResult> future;
};

// --- lifecycle --------------------------------------------------------------

NufftServer::NufftServer(ServeConfig cfg)
    : cfg_(std::move(cfg)), registry_(cfg_.registry), engine_([this] {
        // Point the engine watchdog at this server's registry so a hung
        // apply quarantines the plan it ran on (registry_ is declared — and
        // thus constructed — before engine_).
        exec::EngineConfig e = cfg_.engine;
        if (e.watchdog_registry == nullptr) e.watchdog_registry = &registry_;
        return e;
      }()) {
  NUFFT_CHECK_MSG(!cfg_.socket_path.empty(), "ServeConfig::socket_path is required");
  max_inflight_ = cfg_.max_inflight > 0 ? cfg_.max_inflight : engine_.workers();
}

NufftServer::~NufftServer() { stop(); }

void NufftServer::start() {
  std::lock_guard<std::mutex> lock(run_mu_);
  if (running_) return;

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  NUFFT_CHECK_CODE(cfg_.socket_path.size() < sizeof(addr.sun_path), ErrorCode::kInvalidInput,
                   "socket path too long for AF_UNIX: " << cfg_.socket_path);
  std::memcpy(addr.sun_path, cfg_.socket_path.c_str(), cfg_.socket_path.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) throw Error("socket() failed", ErrorCode::kInternal);
  ::unlink(cfg_.socket_path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listen_fd_, cfg_.backlog) != 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error("cannot bind/listen on " + cfg_.socket_path + ": " + why,
                ErrorCode::kInternal);
  }
  set_nonblocking(listen_fd_);

  int pipefd[2];
  if (::pipe2(pipefd, O_NONBLOCK | O_CLOEXEC) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw Error("pipe2() failed", ErrorCode::kInternal);
  }
  wake_r_ = pipefd[0];
  wake_w_ = pipefd[1];

  if (cfg_.drain_on_sigterm) {
    g_sigterm.store(false, std::memory_order_relaxed);
    if (!sigterm_installed_) {
      std::signal(SIGTERM, sigterm_handler);
      sigterm_installed_ = true;
    }
  }

  stop_flag_.store(false);
  build_stop_ = false;
  poll_thread_ = std::thread([this] { poll_loop(); });
  build_thread_ = std::thread([this] { builder_loop(); });
  running_ = true;
}

void NufftServer::stop() {
  {
    std::lock_guard<std::mutex> lock(run_mu_);
    if (!running_) return;
    running_ = false;
  }
  stop_flag_.store(true);
  {
    std::lock_guard<std::mutex> lock(build_mu_);
    build_stop_ = true;
  }
  build_cv_.notify_all();
  wake();
  if (build_thread_.joinable()) build_thread_.join();
  if (poll_thread_.joinable()) poll_thread_.join();
  // Drain the engine while every Pending (whose buffers in-flight jobs
  // read/write) is still alive; only then tear the maps down.
  engine_.shutdown();
  for (auto& [id, c] : conns_) {
    if (c.fd >= 0) ::close(c.fd);
  }
  conns_.clear();
  pendings_.clear();
  tenants_.clear();
  rotation_.clear();
  queued_total_ = 0;
  pending_bytes_total_ = 0;
  inflight_total_ = 0;
  tenant_count_.store(0, std::memory_order_relaxed);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_r_ >= 0) ::close(wake_r_);
  if (wake_w_ >= 0) ::close(wake_w_);
  listen_fd_ = wake_r_ = wake_w_ = -1;
  ::unlink(cfg_.socket_path.c_str());
  // Reset drain state so a restarted server admits again (the poll thread is
  // joined; nothing races these).
  drain_active_ = false;
  drain_requested_.store(false, std::memory_order_relaxed);
  draining_.store(false, std::memory_order_relaxed);
  drain_complete_.store(false, std::memory_order_relaxed);
  health_state_.store(static_cast<int>(WireHealth::kReady), std::memory_order_relaxed);
}

bool NufftServer::running() const {
  std::lock_guard<std::mutex> lock(run_mu_);
  return running_;
}

void NufftServer::wake() {
  if (wake_w_ < 0) return;
  const char b = 1;
  // A full pipe already guarantees a pending wakeup; EAGAIN is success here.
  [[maybe_unused]] const auto n = ::write(wake_w_, &b, 1);
}

void NufftServer::builder_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(build_mu_);
      build_cv_.wait(lock, [this] { return build_stop_ || !build_q_.empty(); });
      if (build_q_.empty()) return;  // stop requested and queue drained
      task = std::move(build_q_.front());
      build_q_.pop_front();
    }
    task();
  }
}

// --- poll loop --------------------------------------------------------------

void NufftServer::poll_loop() {
  std::vector<pollfd> fds;
  std::vector<std::uint64_t> fd_conn;
  while (!stop_flag_.load(std::memory_order_relaxed)) {
    finalize_completions();
    pump_dispatch();
    lifecycle_tick();

    // Connections torn down outside the fd scan below (a send that could not
    // be framed during finalize) are reaped here.
    std::vector<std::uint64_t> dead;
    for (const auto& [id, c] : conns_) {
      if (c.fd < 0) dead.push_back(id);
    }
    for (const auto id : dead) close_conn(id);

    fds.clear();
    fd_conn.clear();
    fds.push_back(pollfd{listen_fd_, POLLIN, 0});
    fds.push_back(pollfd{wake_r_, POLLIN, 0});
    fd_conn.push_back(0);
    fd_conn.push_back(0);
    for (const auto& [id, c] : conns_) {
      short events = POLLIN;
      if (!c.wbuf.empty()) events |= POLLOUT;
      fds.push_back(pollfd{c.fd, events, 0});
      fd_conn.push_back(id);
    }

    if (::poll(fds.data(), fds.size(), /*timeout_ms=*/100) < 0) {
      if (errno == EINTR) continue;
      break;  // unrecoverable poll failure: shut the loop down
    }

    if ((fds[1].revents & POLLIN) != 0) {
      char buf[256];
      while (::read(wake_r_, buf, sizeof(buf)) > 0) {
      }
    }
    if ((fds[0].revents & POLLIN) != 0) accept_ready();

    std::vector<std::uint64_t> to_close;
    for (std::size_t i = 2; i < fds.size(); ++i) {
      auto it = conns_.find(fd_conn[i]);
      if (it == conns_.end()) continue;
      Conn& c = it->second;
      bool alive = true;
      if ((fds[i].revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 &&
          (fds[i].revents & POLLIN) == 0) {
        alive = false;
      }
      if (alive && (fds[i].revents & POLLIN) != 0) {
        read_ready(c);
        alive = c.fd >= 0;
      }
      if (alive && !c.wbuf.empty()) alive = flush_writes(c);
      if (alive && c.wbuf.empty() && c.close_after_flush) alive = false;
      if (!alive) to_close.push_back(it->first);
    }
    for (const auto id : to_close) close_conn(id);
  }
}

void NufftServer::accept_ready() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or transient failure — poll again
    if (drain_active_ || conns_.size() >= cfg_.max_connections) {
      ::close(fd);
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.rejected_connections;
      obs::count("serve.rejected_connections");
      continue;
    }
    set_nonblocking(fd);
    Conn c;
    c.fd = fd;
    c.id = next_conn_++;
    c.last_activity = Clock::now();
    conns_.emplace(c.id, std::move(c));
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.connections;
    }
    obs::count("serve.connections");
  }
}

void NufftServer::read_ready(Conn& c) {
  std::uint8_t buf[64 * 1024];
  bool peer_eof = false;
  for (;;) {
    const auto n = ::read(c.fd, buf, sizeof(buf));
    if (n > 0) {
      c.rbuf.insert(c.rbuf.end(), buf, buf + n);
      c.last_activity = Clock::now();
      if (static_cast<std::size_t>(n) < sizeof(buf)) break;
      continue;
    }
    if (n == 0) {
      // Peer closed its write side. Bytes appended above (or buffered from
      // earlier reads) may hold complete frames — fall through to the decode
      // loop so a half-closing client still gets its responses, and only
      // then close.
      peer_eof = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    ::close(c.fd);
    c.fd = -1;
    return;
  }

  std::size_t off = 0;
  while (off < c.rbuf.size()) {
    Frame f;
    std::size_t consumed = 0;
    try {
      fault::inject("serve.decode", ErrorCode::kIoCorruption);
      consumed = try_decode_frame(c.rbuf.data() + off, c.rbuf.size() - off, f);
    } catch (const Error& e) {
      // A corrupt frame poisons the whole stream — there is no way to find
      // the next frame boundary. Report and close.
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.protocol_errors;
      }
      obs::count("serve.protocol_errors");
      send_error(c, 0, e.code(), e.what());
      c.close_after_flush = true;
      c.rbuf.clear();
      return;
    }
    if (consumed == 0) break;  // incomplete frame — keep the tail buffered
    off += consumed;
    handle_frame(c, std::move(f));
    if (c.fd < 0 || c.close_after_flush) break;
  }
  c.rbuf.erase(c.rbuf.begin(), c.rbuf.begin() + static_cast<std::ptrdiff_t>(off));
  // EOF with the buffered frames now handled: flush responses, then close.
  if (peer_eof && c.fd >= 0) c.close_after_flush = true;
}

bool NufftServer::flush_writes(Conn& c) {
  while (!c.wbuf.empty()) {
    const Bytes& front = c.wbuf.front();
    // MSG_NOSIGNAL: a peer that vanished mid-write must surface as EPIPE on
    // this connection, not SIGPIPE for the whole process.
    const auto n =
        ::send(c.fd, front.data() + c.woff, front.size() - c.woff, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;  // POLLOUT will retry
      if (errno == EINTR) continue;
      return false;
    }
    if (n > 0) c.last_activity = Clock::now();
    c.woff += static_cast<std::size_t>(n);
    if (c.woff == front.size()) {
      c.wbuf_bytes -= std::min(c.wbuf_bytes, front.size());
      c.wbuf.pop_front();
      c.woff = 0;
    }
  }
  return true;
}

void NufftServer::send_raw(Conn& c, Bytes frame) {
  if (c.fd < 0) return;
  c.wbuf_bytes += frame.size();
  c.wbuf.push_back(std::move(frame));
  flush_writes(c);  // opportunistic immediate write
  // Slow-reader guard: the cap applies to bytes queued *behind* the frame at
  // the head, so one legitimately large response can always be delivered —
  // what gets a connection closed is a peer that stops reading while the
  // server keeps producing.
  if (cfg_.max_wbuf_bytes != 0 && c.fd >= 0 && !c.wbuf.empty()) {
    const std::size_t head = c.wbuf.front().size();
    if (c.wbuf_bytes > head && c.wbuf_bytes - head > cfg_.max_wbuf_bytes) {
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.slow_reader_closed;
      }
      obs::count("serve.slow_reader_closed");
      ::close(c.fd);
      c.fd = -1;  // reaped by the poll loop; its pendings finish orphaned
    }
  }
}

void NufftServer::send_frame(Conn& c, MsgType type, std::uint64_t request_id,
                             const Bytes& body) {
  if (c.fd < 0) return;
  Bytes out;
  try {
    encode_frame(out, type, request_id, body);
  } catch (const std::exception&) {
    // A response that cannot be framed (body over kMaxBody, allocation
    // failure) must cost this connection, never the poll thread — several
    // callers (finalize paths) sit directly on the poll loop.
    obs::count("serve.send_failures");
    ::close(c.fd);
    c.fd = -1;
    return;
  }
  send_raw(c, std::move(out));
}

void NufftServer::send_error(Conn& c, std::uint64_t request_id, ErrorCode code,
                             const std::string& msg) {
  ErrorMsg e;
  e.code = static_cast<std::int32_t>(code);
  e.message = msg;
  send_frame(c, MsgType::kError, request_id, encode(e));
}

void NufftServer::close_conn(std::uint64_t conn_id) {
  auto it = conns_.find(conn_id);
  if (it == conns_.end()) return;
  // Cancel this connection's admitted-but-undispatched requests: they have
  // not touched the engine, so dropping them costs nothing and frees backlog
  // for live connections. In-flight jobs finish and are counted orphaned.
  std::vector<std::uint64_t> drop;
  for (const auto& [pid, p] : pendings_) {
    if (p.conn_id == conn_id && !p.inflight) drop.push_back(pid);
  }
  for (const auto pid : drop) {
    Pending& p = pendings_.at(pid);
    auto tit = tenants_.find(p.tenant);
    if (tit != tenants_.end()) {
      auto& q = tit->second.queue;
      q.erase(std::remove(q.begin(), q.end(), pid), q.end());
      update_tenant_gauges(tit->second);
    }
    --queued_total_;
    erase_live(p);
    release_payload(p);
    pendings_.erase(pid);
  }
  const std::string tenant = it->second.tenant;
  if (it->second.fd >= 0) ::close(it->second.fd);
  conns_.erase(it);
  maybe_gc_tenant(tenant);
}

// --- request handling -------------------------------------------------------

void NufftServer::handle_frame(Conn& c, Frame&& f) {
  try {
    switch (f.type) {
      case MsgType::kHello:
        handle_hello(c, f);
        return;
      case MsgType::kRegisterPlan:
        handle_register(c, std::move(f));
        return;
      case MsgType::kUpdateSamples:
        handle_update(c, std::move(f));
        return;
      case MsgType::kSubmit:
        handle_submit(c, std::move(f));
        return;
      case MsgType::kStats:
        handle_stats(c, f);
        return;
      case MsgType::kPing:
        // Liveness probe: valid before Hello (an orchestrator's health check
        // needs no tenant session).
        send_frame(c, MsgType::kPong, f.request_id, Bytes{});
        return;
      case MsgType::kHealth:
        handle_health(c, f);
        return;
      case MsgType::kDrain:
        handle_drain(c, f);
        return;
      default:
        throw Error("unexpected server-bound message type", ErrorCode::kIoCorruption);
    }
  } catch (const Error& e) {
    if (e.code() == ErrorCode::kIoCorruption) {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.protocol_errors;
    }
    send_error(c, f.request_id, e.code(), e.what());
    if (e.code() == ErrorCode::kIoCorruption) c.close_after_flush = true;
  } catch (const std::exception& e) {
    send_error(c, f.request_id, ErrorCode::kInternal, e.what());
  }
}

void NufftServer::handle_hello(Conn& c, const Frame& f) {
  const HelloMsg m = decode_hello(f.body);
  NUFFT_CHECK_CODE(!m.tenant.empty(), ErrorCode::kInvalidInput, "tenant name must be non-empty");
  const std::string previous = c.tenant;
  c.tenant = m.tenant;
  c.client_id = m.client_id;
  tenant_for(m.tenant);
  // A repeated Hello switches the session's tenant; the record it abandoned
  // may now be unreachable (a client cycling names on one connection must
  // not grow the tenant maps without bound).
  if (!previous.empty() && previous != m.tenant) maybe_gc_tenant(previous);
  HelloAckMsg ack;
  ack.session_id = c.id;
  send_frame(c, MsgType::kHelloAck, f.request_id, encode(ack));
}

NufftServer::Tenant& NufftServer::tenant_for(const std::string& name) {
  auto it = tenants_.find(name);
  if (it != tenants_.end()) return it->second;
  Tenant t;
  t.name = name;
  auto pit = cfg_.tenants.find(name);
  t.policy = pit != cfg_.tenants.end() ? pit->second : cfg_.default_tenant;
  rotation_.push_back(name);
  auto& slot = tenants_.emplace(name, std::move(t)).first->second;
  tenant_count_.store(tenants_.size(), std::memory_order_relaxed);
  return slot;
}

void NufftServer::maybe_gc_tenant(const std::string& name) {
  auto it = tenants_.find(name);
  if (it == tenants_.end()) return;
  if (!it->second.queue.empty() || it->second.inflight > 0) return;
  for (const auto& [id, c] : conns_) {
    if (c.tenant == name) return;
  }
  // No session and no live work: drop the tenant record — plan handles
  // included, which releases the registry references so the tenant's quota
  // charges can be refunded. Without this, a client cycling distinct Hello
  // names would grow tenants_/rotation_ (and the DRR scan) without bound.
  // Historical counters in tenant_stats_ survive; they only exist for
  // tenants that actually ran work.
  if (obs::metrics_enabled()) {
    obs::gauge_set("serve.tenant." + name + ".queued", 0);
    obs::gauge_set("serve.tenant." + name + ".inflight", 0);
  }
  tenants_.erase(it);
  auto rit = std::find(rotation_.begin(), rotation_.end(), name);
  if (rit != rotation_.end()) {
    const auto idx = static_cast<std::size_t>(rit - rotation_.begin());
    rotation_.erase(rit);
    if (idx < rotation_cursor_) --rotation_cursor_;
    if (rotation_cursor_ >= rotation_.size()) rotation_cursor_ = 0;
  }
  tenant_count_.store(tenants_.size(), std::memory_order_relaxed);
}

void NufftServer::handle_register(Conn& c, Frame&& f) {
  NUFFT_CHECK_CODE(!c.tenant.empty(), ErrorCode::kInvalidInput,
                   "session has no tenant: send Hello first");
  if (drain_active_) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.drain_rejected;
    }
    obs::count("serve.drain_rejected");
    throw Error("server is draining; reconnect and retry elsewhere",
                ErrorCode::kUnavailable);
  }
  // Decode on the poll thread (cheap, and corruption is detected while the
  // connection context is at hand); build on the builder thread.
  auto msg = std::make_shared<RegisterPlanMsg>(decode_register_plan(f.body));
  const auto conn_id = c.id;
  const auto request_id = f.request_id;
  const auto tenant = c.tenant;
  {
    std::lock_guard<std::mutex> lock(build_mu_);
    build_q_.push_back([this, conn_id, request_id, tenant, msg] {
      Registration reg;
      reg.conn_id = conn_id;
      reg.request_id = request_id;
      reg.tenant = tenant;
      try {
        fault::inject("serve.build", ErrorCode::kBuildFailure);
        reg.plan = registry_.acquire(msg->grid, msg->samples, msg->config, tenant);
        reg.key = exec::PlanRegistry::make_key(msg->grid, msg->samples, msg->config);
        reg.grid = msg->grid;
        reg.config = msg->config;
      } catch (const Error& e) {
        reg.code = e.code();
        reg.error = e.what();
      } catch (const std::exception& e) {
        reg.code = ErrorCode::kBuildFailure;
        reg.error = e.what();
      }
      {
        std::lock_guard<std::mutex> out_lock(out_mu_);
        registrations_.push_back(std::move(reg));
      }
      wake();
    });
  }
  build_cv_.notify_one();
}

void NufftServer::handle_update(Conn& c, Frame&& f) {
  NUFFT_CHECK_CODE(!c.tenant.empty(), ErrorCode::kInvalidInput,
                   "session has no tenant: send Hello first");
  if (drain_active_) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.drain_rejected;
    }
    obs::count("serve.drain_rejected");
    throw Error("server is draining; reconnect and retry elsewhere",
                ErrorCode::kUnavailable);
  }
  auto msg = std::make_shared<UpdateSamplesMsg>(decode_update_samples(f.body));
  Tenant& t = tenant_for(c.tenant);
  auto pit = t.plans.find(msg->plan_id);
  NUFFT_CHECK_CODE(pit != t.plans.end(), ErrorCode::kInvalidInput,
                   "unknown plan handle " << msg->plan_id << " for tenant " << c.tenant);
  // Snapshot the handle's diff base on the poll thread; the builder runs the
  // registry update against it. Submits racing the update keep hitting the
  // handle's current (old) plan — both plans are immutable once published,
  // the handle rebinds atomically in finalize_completions.
  const auto conn_id = c.id;
  const auto request_id = f.request_id;
  const auto tenant = c.tenant;
  const auto plan_id = msg->plan_id;
  const std::string old_key = pit->second.key;
  const GridDesc grid = pit->second.grid;
  const PlanConfig config = pit->second.config;
  {
    std::lock_guard<std::mutex> lock(build_mu_);
    build_q_.push_back([this, conn_id, request_id, tenant, plan_id, old_key, grid, config, msg] {
      Registration reg;
      reg.conn_id = conn_id;
      reg.request_id = request_id;
      reg.tenant = tenant;
      reg.update_plan_id = plan_id;
      reg.grid = grid;
      reg.config = config;
      try {
        fault::inject("serve.build", ErrorCode::kBuildFailure);
        exec::PlanUpdateResult upd =
            registry_.update_plan(grid, old_key, msg->samples, config, tenant);
        reg.plan = upd.plan;
        reg.key = upd.key;
        reg.path = upd.noop   ? WireUpdatePath::kNoop
                   : upd.warm ? WireUpdatePath::kWarm
                              : WireUpdatePath::kRebuild;
      } catch (const Error& e) {
        reg.code = e.code();
        reg.error = e.what();
      } catch (const std::exception& e) {
        reg.code = ErrorCode::kBuildFailure;
        reg.error = e.what();
      }
      {
        std::lock_guard<std::mutex> out_lock(out_mu_);
        registrations_.push_back(std::move(reg));
      }
      wake();
    });
  }
  build_cv_.notify_one();
}

void NufftServer::handle_submit(Conn& c, Frame&& f) {
  NUFFT_CHECK_CODE(!c.tenant.empty(), ErrorCode::kInvalidInput,
                   "session has no tenant: send Hello first");
  Tenant& t = tenant_for(c.tenant);

  // Exactly-once across reconnects, checked before anything else (a replay
  // must work even mid-drain — the original execution already happened).
  if (c.client_id != 0) {
    const auto key = std::make_pair(c.client_id, f.request_id);
    auto rit = t.replay.find(key);
    if (rit != t.replay.end()) {
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.replays;
      }
      obs::count("serve.replays");
      send_raw(c, rit->second);  // copy: the cache keeps its entry
      return;
    }
    auto lit = t.live_by_rid.find(key);
    if (lit != t.live_by_rid.end()) {
      auto pit2 = pendings_.find(lit->second);
      if (pit2 != pendings_.end()) {
        // Original execution still in flight: re-home it to this connection
        // instead of running the work twice.
        pit2->second.conn_id = c.id;
        {
          std::lock_guard<std::mutex> lock(stats_mu_);
          ++stats_.rebinds;
        }
        obs::count("serve.rebinds");
        return;
      }
      t.live_by_rid.erase(lit);  // stale index entry — fall through and run
    }
  }

  if (drain_active_) {
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.drain_rejected;
    }
    obs::count("serve.drain_rejected");
    throw Error("server is draining; reconnect and resubmit elsewhere",
                ErrorCode::kUnavailable);
  }

  SubmitMsg m = decode_submit(f.body);

  auto pit = t.plans.find(m.plan_id);
  if (pit == t.plans.end()) {
    throw Error("unknown plan handle " + std::to_string(m.plan_id) + " for tenant '" +
                    c.tenant + "'",
                ErrorCode::kInvalidInput);
  }
  pit->second.last_use = ++t.use_tick;
  const auto& plan = pit->second.plan;
  NUFFT_CHECK_CODE(m.batch >= 1, ErrorCode::kInvalidInput, "batch must be >= 1");
  const auto batch = static_cast<index_t>(m.batch);
  const index_t in_elems =
      m.op == WireOp::kForward ? plan->image_elems() : plan->sample_count();
  const index_t out_elems =
      m.op == WireOp::kForward ? plan->sample_count() : plan->image_elems();
  // Both directions of the transfer must fit one protocol frame, checked in
  // overflow-safe u64 arithmetic BEFORE anything is allocated or admitted.
  // The output bound is the critical one: for an asymmetric plan a legal
  // request could otherwise demand a ResultMsg beyond kMaxBody, which
  // encode_frame would only reject at completion time — on the poll thread,
  // with no handler between it and std::terminate.
  const auto batch_u = static_cast<std::uint64_t>(m.batch);
  const auto in_u = static_cast<std::uint64_t>(in_elems);
  const auto out_u = static_cast<std::uint64_t>(out_elems);
  constexpr std::uint64_t kResultOverhead = 3 * sizeof(std::uint64_t);  // timings + count
  const std::uint64_t max_in = kMaxBody / sizeof(cfloat);
  const std::uint64_t max_out = (kMaxBody - kResultOverhead) / sizeof(cfloat);
  NUFFT_CHECK_CODE(in_u == 0 || batch_u <= max_in / in_u, ErrorCode::kInvalidInput,
                   "input of " << m.batch << " x " << in_elems
                               << " values cannot fit one protocol frame");
  NUFFT_CHECK_CODE(out_u == 0 || batch_u <= max_out / out_u, ErrorCode::kInvalidInput,
                   "result payload (" << m.batch << " x " << out_elems << " values) would "
                   "exceed the " << kMaxBody << "-byte frame cap; split the batch");
  NUFFT_CHECK_CODE(static_cast<index_t>(m.input.size()) == batch * in_elems,
                   ErrorCode::kInvalidInput,
                   "input payload holds " << m.input.size() << " values, plan expects "
                                          << batch * in_elems);
  const auto payload_bytes = static_cast<std::size_t>((batch_u * in_u + batch_u * out_u) *
                                                      sizeof(cfloat));

  ErrorCode shed_code = ErrorCode::kOverloaded;
  std::string why;
  if (!admit(t, m, payload_bytes, shed_code, why)) {
    send_error(c, f.request_id, shed_code, why);
    return;
  }

  Pending p;
  p.id = next_pending_++;
  p.conn_id = c.id;
  p.request_id = f.request_id;
  p.client_id = c.client_id;
  p.tenant = c.tenant;
  p.plan = plan;
  p.op = m.op == WireOp::kForward ? exec::Op::kForward : exec::Op::kAdjoint;
  p.batch = batch;
  p.arrival = Clock::now();
  const bool best_effort = (m.flags & kFlagBestEffort) != 0;
  if (m.deadline_ms >= 0 && !best_effort) {
    p.has_deadline = true;
    p.deadline = p.arrival + std::chrono::milliseconds(m.deadline_ms);
  }
  p.io = std::make_shared<Pending::IoBuffers>();
  p.io->input = std::move(m.input);
  p.io->output.resize(static_cast<std::size_t>(batch * out_elems));
  p.payload_bytes = payload_bytes;
  t.pending_bytes += payload_bytes;
  pending_bytes_total_ += payload_bytes;

  t.queue.push_back(p.id);
  ++queued_total_;
  if (p.client_id != 0) {
    t.live_by_rid[{p.client_id, p.request_id}] = p.id;
  }
  pendings_.emplace(p.id, std::move(p));
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.accepted;
    ++tenant_stats_[c.tenant].accepted;
  }
  obs::count("serve.accepted");
  update_tenant_gauges(t);
  pump_dispatch();
}

bool NufftServer::admit(Tenant& t, const SubmitMsg& m, std::size_t payload_bytes,
                        ErrorCode& code, std::string& why) {
  if (fault::should_fail("serve.admission")) {
    code = ErrorCode::kOverloaded;
    why = "injected admission fault";
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.shed_overload;
    ++tenant_stats_[t.name].shed_overload;
    obs::count("serve.shed_overload");
    return false;
  }
  if (t.queue.size() >= t.policy.max_queued) {
    code = ErrorCode::kOverloaded;
    why = "tenant '" + t.name + "' backlog full (" + std::to_string(t.queue.size()) +
          " queued)";
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.shed_overload;
    ++tenant_stats_[t.name].shed_overload;
    obs::count("serve.shed_overload");
    return false;
  }
  if (queued_total_ >= cfg_.max_queued_total) {
    code = ErrorCode::kOverloaded;
    why = "server backlog full (" + std::to_string(queued_total_) + " queued)";
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.shed_overload;
    ++tenant_stats_[t.name].shed_overload;
    obs::count("serve.shed_overload");
    return false;
  }
  // Byte-based admission: request counts alone cannot bound memory — with a
  // small-input plan a single admitted submit may pin a huge output buffer.
  // A submit that can never fit the tenant budget is a client error
  // (kInvalidInput: retrying verbatim is pointless); one that merely does not
  // fit *right now* is kOverloaded and worth retrying after the backlog drains.
  if (t.policy.max_pending_bytes != 0 &&
      t.pending_bytes + payload_bytes > t.policy.max_pending_bytes) {
    const bool never_fits = payload_bytes > t.policy.max_pending_bytes;
    code = never_fits ? ErrorCode::kInvalidInput : ErrorCode::kOverloaded;
    why = never_fits
              ? "request payload of " + std::to_string(payload_bytes) +
                    " B exceeds tenant '" + t.name + "' budget of " +
                    std::to_string(t.policy.max_pending_bytes) + " B; split the batch"
              : "tenant '" + t.name + "' payload budget full (" +
                    std::to_string(t.pending_bytes) + " B pinned, " +
                    std::to_string(payload_bytes) + " B requested)";
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.shed_overload;
    ++tenant_stats_[t.name].shed_overload;
    obs::count("serve.shed_overload");
    return false;
  }
  if (cfg_.max_pending_bytes_total != 0 &&
      pending_bytes_total_ + payload_bytes > cfg_.max_pending_bytes_total) {
    const bool never_fits = payload_bytes > cfg_.max_pending_bytes_total;
    code = never_fits ? ErrorCode::kInvalidInput : ErrorCode::kOverloaded;
    why = never_fits
              ? "request payload of " + std::to_string(payload_bytes) +
                    " B exceeds the server budget of " +
                    std::to_string(cfg_.max_pending_bytes_total) + " B; split the batch"
              : "server payload budget full (" + std::to_string(pending_bytes_total_) +
                    " B pinned, " + std::to_string(payload_bytes) + " B requested)";
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.shed_overload;
    ++tenant_stats_[t.name].shed_overload;
    obs::count("serve.shed_overload");
    return false;
  }
  // Deadline-aware shedding: once the queue-wait histogram is warm, a
  // request whose whole budget would be eaten by the p99 queue wait is
  // refused now instead of timing out later — unless the client opted into
  // best-effort degradation, in which case it runs without a deadline.
  if (m.deadline_ms >= 0 && wait_hist_.count() >= cfg_.min_wait_samples) {
    const std::uint64_t p99_ns = obs::histogram_quantile_ns(wait_hist_, 0.99);
    const std::uint64_t budget_ns = static_cast<std::uint64_t>(m.deadline_ms) * 1000000ull;
    if (p99_ns > budget_ns) {
      if ((m.flags & kFlagBestEffort) != 0) {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.degraded;
        ++tenant_stats_[t.name].degraded;
        obs::count("serve.degraded");
        return true;
      }
      code = ErrorCode::kOverloaded;
      why = "deadline " + std::to_string(m.deadline_ms) + " ms below p99 queue wait " +
            std::to_string(p99_ns / 1000000) + " ms — shed";
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.shed_deadline;
      ++tenant_stats_[t.name].shed_deadline;
      obs::count("serve.shed_deadline");
      return false;
    }
  }
  return true;
}

void NufftServer::release_payload(const Pending& p) {
  auto tit = tenants_.find(p.tenant);
  if (tit != tenants_.end()) {
    tit->second.pending_bytes -= std::min(tit->second.pending_bytes, p.payload_bytes);
  }
  pending_bytes_total_ -= std::min(pending_bytes_total_, p.payload_bytes);
}

// --- dispatch and completion ------------------------------------------------

void NufftServer::pump_dispatch() {
  if (rotation_.empty() || queued_total_ == 0) return;
  bool progress = true;
  while (progress && inflight_total_ < max_inflight_ && queued_total_ > 0) {
    progress = false;
    for (std::size_t visit = 0;
         visit < rotation_.size() && inflight_total_ < max_inflight_; ++visit) {
      Tenant& t = tenants_.at(rotation_[rotation_cursor_]);
      rotation_cursor_ = (rotation_cursor_ + 1) % rotation_.size();
      if (t.queue.empty()) {
        t.deficit = 0;  // classic DRR: no banking credit while idle
        continue;
      }
      if (t.inflight >= t.policy.max_inflight) continue;
      // Cap banked credit so a long-blocked tenant cannot burst far past its
      // share once its in-flight cap frees up.
      t.deficit = std::min(t.deficit + t.policy.weight, 2 * t.policy.weight);
      while (t.deficit >= 1 && !t.queue.empty() && t.inflight < t.policy.max_inflight &&
             inflight_total_ < max_inflight_) {
        const auto id = t.queue.front();
        t.queue.pop_front();
        --queued_total_;
        t.deficit -= 1;
        dispatch_one(id);
        progress = true;
      }
      update_tenant_gauges(t);
    }
  }
}

void NufftServer::dispatch_one(std::uint64_t pending_id) {
  Pending& p = pendings_.at(pending_id);
  Tenant& t = tenants_.at(p.tenant);
  const auto now = Clock::now();

  if (p.has_deadline && now >= p.deadline) {
    // Expired while queued: fail without spending an engine slot.
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.deadline_missed;
      ++stats_.failed;
      ++tenant_stats_[p.tenant].deadline_missed;
      ++tenant_stats_[p.tenant].failed;
    }
    obs::count("serve.deadline_missed");
    auto cit = conns_.find(p.conn_id);
    if (cit != conns_.end()) {
      send_error(cit->second, p.request_id, ErrorCode::kTimeout,
                 "deadline expired in server queue");
    }
    erase_live(p);
    release_payload(p);
    pendings_.erase(pending_id);
    return;
  }

  if (fault::should_fail("serve.dispatch")) {
    // Simulated dispatch failure: resolve the request as a transient engine
    // rejection (kResourceExhausted — safe for the client to retry in place).
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.failed;
      ++tenant_stats_[p.tenant].failed;
    }
    obs::count("serve.failed");
    auto cit = conns_.find(p.conn_id);
    if (cit != conns_.end()) {
      send_error(cit->second, p.request_id, ErrorCode::kResourceExhausted,
                 "injected dispatch fault");
    }
    erase_live(p);
    release_payload(p);
    pendings_.erase(pending_id);
    return;
  }

  exec::JobOptions opts;
  if (p.has_deadline) {
    opts.timeout = std::chrono::duration_cast<std::chrono::milliseconds>(p.deadline - now);
  }
  // The engine holds the I/O buffers alive until the apply truly returns,
  // even if this Pending is failed early (watchdog, drain deadline).
  opts.keepalive = p.io;
  const auto id = pending_id;
  opts.on_complete = [this, id] {
    {
      std::lock_guard<std::mutex> lock(out_mu_);
      completed_.push_back(id);
    }
    // A dropped wake is recovered by the poll loop's 100 ms timeout — the
    // completion id above is never lost, only its prompt delivery.
    if (!fault::should_fail("serve.complete.drop_wake")) wake();
  };
  p.dispatched = now;
  p.inflight = true;
  ++t.inflight;
  ++inflight_total_;
  p.future =
      engine_.submit(p.op, p.plan, p.io->input.data(), p.io->output.data(), p.batch, opts);
}

void NufftServer::finalize_completions() {
  std::vector<std::uint64_t> done;
  std::vector<Registration> regs;
  {
    std::lock_guard<std::mutex> lock(out_mu_);
    done.swap(completed_);
    regs.swap(registrations_);
  }
  for (auto& reg : regs) {
    auto cit = conns_.find(reg.conn_id);
    if (cit == conns_.end()) {
      // The connection died while the build ran. Drop the result instead of
      // attaching a handle to a tenant record nobody can reach — the plan's
      // shared_ptr dies here and the registry sweeps the quota charge back.
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.orphaned;
      continue;
    }
    Conn& c = cit->second;
    if (c.tenant != reg.tenant) {
      // The session re-Hello'd to another tenant while the build ran. Treat
      // the result as orphaned rather than attaching a handle to the
      // abandoned (possibly already garbage-collected) tenant record.
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.orphaned;
      continue;
    }
    if (!reg.plan) {
      send_error(c, reg.request_id, reg.code, reg.error);
      continue;
    }
    Tenant& t = tenant_for(reg.tenant);
    if (reg.update_plan_id != 0) {
      // Streaming update: rebind the existing handle to the derived plan.
      auto hit = t.plans.find(reg.update_plan_id);
      if (hit == t.plans.end()) {
        // The handle was LRU-dropped while the update built. The derived
        // plan stays content-keyed in the registry for a future acquire; the
        // client must re-register to get a handle back.
        send_error(c, reg.request_id, ErrorCode::kInvalidInput,
                   "plan handle dropped while the update ran; re-register");
        continue;
      }
      hit->second.plan = reg.plan;
      hit->second.key = reg.key;
      hit->second.last_use = ++t.use_tick;
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.plans_updated;
      }
      obs::count("serve.plans_updated");
      UpdateAckMsg ack;
      ack.plan_id = reg.update_plan_id;
      ack.generation = reg.plan->plan_stats().generation;
      ack.path = reg.path;
      ack.resident_bytes = plan_resident_bytes(reg.plan->plan(), reg.plan->grid_desc()) +
                           reg.plan->workspace_bytes();
      send_frame(c, MsgType::kUpdateAck, reg.request_id, encode(ack));
      continue;
    }
    const auto plan_id = next_plan_++;
    t.plans.emplace(plan_id,
                    Tenant::PlanHandle{reg.plan, ++t.use_tick, reg.key, reg.grid, reg.config});
    if (t.policy.max_plans != 0 && t.plans.size() > t.policy.max_plans) {
      // Over the handle cap: drop the least-recently-used handle (never the
      // one just registered — it carries the newest stamp). The dropped
      // shared_ptr releases the registry reference, so an evicted-but-held
      // plan stops counting against the tenant quota once nothing uses it.
      auto victim = t.plans.begin();
      for (auto hit = t.plans.begin(); hit != t.plans.end(); ++hit) {
        if (hit->second.last_use < victim->second.last_use) victim = hit;
      }
      t.plans.erase(victim);
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.plans_dropped;
      }
      obs::count("serve.plans_dropped");
    }
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.plans_registered;
    }
    obs::count("serve.plans_registered");
    RegisterAckMsg ack;
    ack.plan_id = plan_id;
    ack.resident_bytes = plan_resident_bytes(reg.plan->plan(), reg.plan->grid_desc()) +
                         reg.plan->workspace_bytes();
    send_frame(c, MsgType::kRegisterAck, reg.request_id, encode(ack));
  }
  for (const auto id : done) finalize(id);
}

void NufftServer::finalize(std::uint64_t pending_id) {
  auto it = pendings_.find(pending_id);
  if (it == pendings_.end()) return;
  Pending& p = it->second;

  auto tit = tenants_.find(p.tenant);
  if (tit != tenants_.end() && p.inflight) {
    --tit->second.inflight;
    update_tenant_gauges(tit->second);
  }
  if (p.inflight) --inflight_total_;

  const std::uint64_t wait_ns = ns_between(p.arrival, p.dispatched);
  wait_hist_.record(wait_ns);
  obs::observe_ns("serve.queue_wait_ns", wait_ns);

  ResultMsg res;
  ErrorCode err_code = ErrorCode::kInternal;
  std::string err_msg;
  bool ok = false;
  try {
    exec::JobResult r = p.future.get();
    res.queue_wait_us = wait_ns / 1000;
    res.exec_us = static_cast<std::uint64_t>(r.stats.total_s * 1e6);
    res.output = std::move(p.io->output);
    ok = true;
  } catch (const Error& e) {
    err_code = e.code();
    err_msg = e.what();
  } catch (const std::exception& e) {
    err_msg = e.what();
  }

  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    TenantStats& ts = tenant_stats_[p.tenant];
    if (ok) {
      ++stats_.completed;
      ++ts.completed;
    } else {
      ++stats_.failed;
      ++ts.failed;
      if (err_code == ErrorCode::kTimeout) {
        ++stats_.deadline_missed;
        ++ts.deadline_missed;
      }
    }
  }
  obs::count(ok ? "serve.completed" : "serve.failed");
  obs::observe_ns("serve.service_ns", ns_between(p.arrival, Clock::now()));

  // Build the full response frame once: it is both the reply and (for
  // identified clients) the replay-cache entry, so a client that reconnects
  // and resubmits this request_id replays the original outcome byte-for-byte
  // instead of executing twice.
  Bytes frame;
  bool frame_ok = true;
  try {
    if (ok) {
      encode_frame(frame, MsgType::kResult, p.request_id, encode(res));
    } else {
      ErrorMsg e;
      e.code = static_cast<std::int32_t>(err_code);
      e.message = err_msg;
      encode_frame(frame, MsgType::kError, p.request_id, encode(e));
    }
  } catch (const std::exception&) {
    // Body serialization failed (allocation) — admission already bounds
    // result sizes, so this is a last-ditch guard: the poll thread must
    // survive anything the response path throws.
    frame_ok = false;
    obs::count("serve.send_failures");
  }
  erase_live(p);
  if (frame_ok) cache_response(p.tenant, p.client_id, p.request_id, frame);

  auto cit = conns_.find(p.conn_id);
  if (cit != conns_.end()) {
    if (frame_ok) {
      send_raw(cit->second, std::move(frame));
    } else {
      ::close(cit->second.fd);
      cit->second.fd = -1;
    }
  } else {
    // The connection died mid-flight; the cached frame above is what the
    // client collects when it reconnects and resubmits.
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.orphaned;
  }
  release_payload(p);
  const std::string tenant = p.tenant;
  pendings_.erase(it);
  // This may have been the tenant's last live work after its connection
  // already closed — reap the record now that nothing references it.
  maybe_gc_tenant(tenant);
}

void NufftServer::handle_stats(Conn& c, const Frame& f) {
  StatsAckMsg ack;
  ack.counters = stat_counters();
  send_frame(c, MsgType::kStatsAck, f.request_id, encode(ack));
}

// --- lifecycle: health, drain, idle, replay ----------------------------------

void NufftServer::drain(std::chrono::milliseconds deadline) {
  drain_deadline_ms_.store(deadline.count(), std::memory_order_relaxed);
  drain_requested_.store(true, std::memory_order_release);
  wake();
}

void NufftServer::begin_drain(std::chrono::milliseconds deadline) {
  if (drain_active_) return;
  drain_active_ = true;
  draining_.store(true, std::memory_order_relaxed);
  const auto budget = deadline.count() > 0 ? deadline : cfg_.drain_deadline;
  drain_until_ = Clock::now() + budget;
  health_state_.store(static_cast<int>(WireHealth::kDraining), std::memory_order_relaxed);
  obs::count("serve.drains");
}

void NufftServer::handle_health(Conn& c, const Frame& f) {
  HealthAckMsg ack;
  ack.state = health();
  ack.accepting = drain_active_ ? 0 : 1;
  ack.connections = conns_.size();
  ack.inflight = pendings_.size();
  ack.queued = queued_total_;
  ack.watchdog_stalls = engine_.watchdog_stats().stalls;
  send_frame(c, MsgType::kHealthAck, f.request_id, encode(ack));
}

void NufftServer::handle_drain(Conn& c, const Frame& f) {
  const DrainMsg m = f.body.empty() ? DrainMsg{} : decode_drain(f.body);
  // Runs on the poll thread, which owns drain state — flip it directly so
  // the ack below reflects the drain it just started.
  begin_drain(std::chrono::milliseconds(m.deadline_ms));
  DrainAckMsg ack;
  ack.state = WireHealth::kDraining;
  ack.inflight = pendings_.size();
  send_frame(c, MsgType::kDrainAck, f.request_id, encode(ack));
}

void NufftServer::lifecycle_tick() {
  const auto now = Clock::now();

  if (cfg_.drain_on_sigterm && g_sigterm.load(std::memory_order_relaxed)) {
    begin_drain(cfg_.drain_deadline);
  }
  if (drain_requested_.exchange(false, std::memory_order_acq_rel)) {
    begin_drain(std::chrono::milliseconds(drain_deadline_ms_.load(std::memory_order_relaxed)));
  }
  if (drain_active_ && !drain_complete_.load(std::memory_order_relaxed)) {
    if (pendings_.empty()) {
      drain_complete_.store(true, std::memory_order_release);
    } else if (now >= drain_until_) {
      fail_all_live(ErrorCode::kCancelled,
                    "server drained before this request finished; resubmit after "
                    "reconnecting");
      drain_complete_.store(true, std::memory_order_release);
    }
  }

  // Idle-connection sweep: a connection with no traffic and no live work past
  // the timeout is reclaimed (a request in flight keeps its connection open
  // no matter how long the compute runs).
  if (cfg_.idle_timeout.count() >= 0) {
    std::vector<std::uint64_t> idle;
    for (const auto& [id, c] : conns_) {
      if (c.fd < 0) continue;
      if (now - c.last_activity < cfg_.idle_timeout) continue;
      bool busy = !c.wbuf.empty();
      for (const auto& [pid, p] : pendings_) {
        if (busy) break;
        if (p.conn_id == id) busy = true;
      }
      if (!busy) idle.push_back(id);
    }
    for (const auto id : idle) {
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.idle_closed;
      }
      obs::count("serve.idle_closed");
      close_conn(id);
    }
  }

  // Health mirror: draining wins; recent watchdog stalls or a backlog at 3/4
  // of the server cap report degraded; otherwise ready.
  WireHealth h = WireHealth::kReady;
  const auto stalls = engine_.watchdog_stats().stalls;
  if (stalls != seen_stalls_) {
    seen_stalls_ = stalls;
    last_stall_ = now;
  }
  if (drain_active_) {
    h = WireHealth::kDraining;
  } else if ((stalls > 0 && now - last_stall_ < std::chrono::seconds(10)) ||
             queued_total_ >= (cfg_.max_queued_total / 4) * 3) {
    h = WireHealth::kDegraded;
  }
  health_state_.store(static_cast<int>(h), std::memory_order_relaxed);
}

void NufftServer::fail_all_live(ErrorCode code, const std::string& why) {
  std::vector<std::uint64_t> ids;
  ids.reserve(pendings_.size());
  for (const auto& [id, p] : pendings_) ids.push_back(id);
  std::vector<std::string> touched;
  for (const auto id : ids) {
    auto it = pendings_.find(id);
    if (it == pendings_.end()) continue;
    Pending& p = it->second;
    auto tit = tenants_.find(p.tenant);
    if (tit != tenants_.end()) {
      if (p.inflight) {
        --tit->second.inflight;
      } else {
        auto& q = tit->second.queue;
        q.erase(std::remove(q.begin(), q.end(), id), q.end());
      }
      update_tenant_gauges(tit->second);
    }
    if (p.inflight) {
      --inflight_total_;
    } else {
      --queued_total_;
    }
    // NOT cached for replay: the work did not run to a result, so a
    // resubmission after reconnect should execute, not replay kCancelled.
    erase_live(p);
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.failed;
      ++stats_.drain_cancelled;
      ++tenant_stats_[p.tenant].failed;
    }
    obs::count("serve.drain_cancelled");
    auto cit = conns_.find(p.conn_id);
    if (cit != conns_.end()) send_error(cit->second, p.request_id, code, why);
    release_payload(p);
    touched.push_back(p.tenant);
    // In-flight engine jobs keep running against p.io (held alive by
    // JobOptions::keepalive); their late completion finds no Pending and is
    // a no-op in finalize().
    pendings_.erase(it);
  }
  for (const auto& tn : touched) maybe_gc_tenant(tn);
}

void NufftServer::erase_live(const Pending& p) {
  if (p.client_id == 0) return;
  auto tit = tenants_.find(p.tenant);
  if (tit == tenants_.end()) return;
  auto& live = tit->second.live_by_rid;
  auto it = live.find({p.client_id, p.request_id});
  // Only erase our own index entry — a buggy client reusing a request id
  // could have replaced it with a newer pending's.
  if (it != live.end() && it->second == p.id) live.erase(it);
}

void NufftServer::cache_response(const std::string& tenant, std::uint64_t client_id,
                                 std::uint64_t request_id, const Bytes& frame) {
  if (client_id == 0 || cfg_.replay_cache_entries == 0) return;
  auto tit = tenants_.find(tenant);
  if (tit == tenants_.end()) return;
  Tenant& t = tit->second;
  const auto key = std::make_pair(client_id, request_id);
  auto [it, inserted] = t.replay.emplace(key, frame);
  if (!inserted) return;  // first outcome wins — that IS the exactly-once answer
  t.replay_bytes += frame.size();
  t.replay_order.push_back(key);
  while (!t.replay_order.empty() &&
         (t.replay.size() > cfg_.replay_cache_entries ||
          (cfg_.replay_cache_bytes != 0 && t.replay_bytes > cfg_.replay_cache_bytes))) {
    const auto victim = t.replay_order.front();
    t.replay_order.pop_front();
    auto vit = t.replay.find(victim);
    if (vit != t.replay.end()) {
      t.replay_bytes -= std::min(t.replay_bytes, vit->second.size());
      t.replay.erase(vit);
    }
  }
}

// --- stats ------------------------------------------------------------------

void NufftServer::update_tenant_gauges(const Tenant& t) const {
  if (!obs::metrics_enabled()) return;
  obs::gauge_set("serve.tenant." + t.name + ".queued",
                 static_cast<std::int64_t>(t.queue.size()));
  obs::gauge_set("serve.tenant." + t.name + ".inflight", t.inflight);
}

ServerStats NufftServer::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

std::map<std::string, TenantStats> NufftServer::tenant_stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return tenant_stats_;
}

std::vector<std::pair<std::string, std::uint64_t>> NufftServer::stat_counters() const {
  ServerStats s;
  std::map<std::string, TenantStats> ts;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    s = stats_;
    ts = tenant_stats_;
  }
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.emplace_back("connections", s.connections);
  out.emplace_back("rejected_connections", s.rejected_connections);
  out.emplace_back("protocol_errors", s.protocol_errors);
  out.emplace_back("plans_registered", s.plans_registered);
  out.emplace_back("plans_updated", s.plans_updated);
  out.emplace_back("accepted", s.accepted);
  out.emplace_back("completed", s.completed);
  out.emplace_back("failed", s.failed);
  out.emplace_back("shed_overload", s.shed_overload);
  out.emplace_back("shed_deadline", s.shed_deadline);
  out.emplace_back("degraded", s.degraded);
  out.emplace_back("deadline_missed", s.deadline_missed);
  out.emplace_back("orphaned", s.orphaned);
  out.emplace_back("plans_dropped", s.plans_dropped);
  out.emplace_back("idle_closed", s.idle_closed);
  out.emplace_back("slow_reader_closed", s.slow_reader_closed);
  out.emplace_back("drain_rejected", s.drain_rejected);
  out.emplace_back("drain_cancelled", s.drain_cancelled);
  out.emplace_back("replays", s.replays);
  out.emplace_back("rebinds", s.rebinds);
  const auto wd = engine_.watchdog_stats();
  out.emplace_back("watchdog_stalls", wd.stalls);
  out.emplace_back("watchdog_quarantines", wd.quarantines);
  out.emplace_back("watchdog_replacements", wd.replacements);
  out.emplace_back("queue_wait_p50_us", obs::histogram_quantile_ns(wait_hist_, 0.50) / 1000);
  out.emplace_back("queue_wait_p99_us", obs::histogram_quantile_ns(wait_hist_, 0.99) / 1000);
  for (const auto& [name, t] : ts) {
    out.emplace_back("tenant." + name + ".accepted", t.accepted);
    out.emplace_back("tenant." + name + ".completed", t.completed);
    out.emplace_back("tenant." + name + ".failed", t.failed);
    out.emplace_back("tenant." + name + ".shed_overload", t.shed_overload);
    out.emplace_back("tenant." + name + ".shed_deadline", t.shed_deadline);
    out.emplace_back("tenant." + name + ".degraded", t.degraded);
    out.emplace_back("tenant." + name + ".deadline_missed", t.deadline_missed);
  }
  return out;
}

}  // namespace nufft::serve
