// Wire protocol for NUFFT-as-a-service (serve::NufftServer / NufftClient).
//
// Framing: every message travels as a fixed 24-byte little-endian header
// followed by `body_len` payload bytes. The header carries a magic, the
// protocol version, the message type, a caller-chosen request id (echoed on
// the response so one connection can pipeline requests), and an FNV-1a
// checksum of the body. The decoder is incremental — feed it a byte stream
// and it either yields a complete frame, asks for more bytes, or throws
// nufft::Error(kIoCorruption) on a frame that can never become valid (bad
// magic/version, oversized body, checksum mismatch). Truncation mid-frame is
// not an error until the peer closes; corruption always is.
//
// Message bodies are packed little-endian PODs plus length-framed arrays
// (u64 element count, then raw elements), written and read by the
// bounds-checked Writer/Reader below. A read past the end of a body throws
// kIoCorruption, so a truncated or hostile body can never over-read. Error
// responses carry the library's ErrorCode taxonomy (common/error.hpp)
// verbatim — a shed job arrives at the client as the same
// ErrorCode::kOverloaded it would have carried in-process.
//
// The protocol is host-endian and intended for local (AF_UNIX) transport
// between processes on one machine, matching the paper's single-node scope;
// both ends of a connection share one ABI for float/complex layout.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "common/types.hpp"
#include "core/grid.hpp"
#include "core/preprocess.hpp"
#include "datasets/trajectory.hpp"

namespace nufft::serve {

inline constexpr std::uint32_t kMagic = 0x5346554Eu;  // "NUFS" on the wire
// v2 appended PlanConfig.tolerance + eval to the register-plan body. The
// config fields sit in the middle of RegisterPlanMsg (samples follow), so a
// trailing-field legacy decode is impossible and the version bumps instead.
// v3 added the streaming pair kUpdateSamples/kUpdateAck — a v2 peer would
// reject the new message types as corruption, so the version bumps again.
inline constexpr std::uint16_t kProtocolVersion = 3;
/// Body cap: a frame claiming more than this is corrupt (or hostile), not
/// merely large — reject before allocating.
inline constexpr std::uint32_t kMaxBody = 256u << 20;

enum class MsgType : std::uint16_t {
  kHello = 1,        // client → server: open a tenant session
  kHelloAck,         // server → client
  kRegisterPlan,     // client → server: build/acquire a plan, get a handle
  kRegisterAck,      // server → client
  kSubmit,           // client → server: run a transform against a handle
  kResult,           // server → client: output payload + timings
  kError,            // server → client: ErrorCode + message
  kStats,            // client → server: counters snapshot request
  kStatsAck,         // server → client
  kPing,             // client → server: liveness probe (empty body)
  kPong,             // server → client: liveness echo (empty body)
  kHealth,           // client → server: readiness snapshot request (empty body)
  kHealthAck,        // server → client
  kDrain,            // client → server: begin a graceful drain
  kDrainAck,         // server → client
  kUpdateSamples,    // client → server: stream new coordinates into a plan handle
  kUpdateAck,        // server → client: generation + update path taken
};

struct FrameHeader {
  std::uint32_t magic = kMagic;
  std::uint16_t version = kProtocolVersion;
  std::uint16_t type = 0;
  std::uint64_t request_id = 0;
  std::uint32_t body_len = 0;
  std::uint32_t body_check = 0;
};
static_assert(sizeof(FrameHeader) == 24, "header must be padding-free");
static_assert(alignof(FrameHeader) <= 8);

using Bytes = std::vector<std::uint8_t>;

/// FNV-1a 32-bit over a byte range — the frame body checksum.
std::uint32_t checksum(const std::uint8_t* data, std::size_t n) noexcept;

struct Frame {
  MsgType type = MsgType::kError;
  std::uint64_t request_id = 0;
  Bytes body;
};

/// Append one complete frame (header + body) to `out`.
void encode_frame(Bytes& out, MsgType type, std::uint64_t request_id, const Bytes& body);

/// Incremental decode: returns 0 when `data` does not yet hold a complete
/// frame (read more), else the number of bytes consumed with `frame` filled.
/// Throws Error(kIoCorruption) for bad magic/version, an oversized body
/// declaration, an unknown message type, or a checksum mismatch.
std::size_t try_decode_frame(const std::uint8_t* data, std::size_t n, Frame& frame);

// --- bounds-checked body serialization --------------------------------------

class Writer {
 public:
  explicit Writer(Bytes& out) : out_(out) {}

  template <class T>
  void pod(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
    out_.insert(out_.end(), p, p + sizeof(T));
  }
  void str(const std::string& s) {
    pod(static_cast<std::uint64_t>(s.size()));
    out_.insert(out_.end(), s.begin(), s.end());
  }
  template <class T>
  void array(const T* data, std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T>);
    pod(static_cast<std::uint64_t>(count));
    if (count == 0) return;  // data may be null for an empty vector
    const auto* p = reinterpret_cast<const std::uint8_t*>(data);
    out_.insert(out_.end(), p, p + count * sizeof(T));
  }

 private:
  Bytes& out_;
};

class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t n) : p_(data), n_(n) {}
  explicit Reader(const Bytes& b) : Reader(b.data(), b.size()) {}

  template <class T>
  T pod() {
    static_assert(std::is_trivially_copyable_v<T>);
    need(sizeof(T));
    T v;
    std::memcpy(&v, p_ + off_, sizeof(T));
    off_ += sizeof(T);
    return v;
  }
  std::string str() {
    const auto len = length(sizeof(char));
    std::string s(reinterpret_cast<const char*>(p_ + off_), len);
    off_ += len;
    return s;
  }
  template <class Vec>
  Vec array() {
    using T = typename Vec::value_type;
    const auto count = length(sizeof(T));
    Vec v(count);
    // An empty vector's data() may be null, and memcpy's pointer arguments
    // must never be null even for a zero count.
    if (count != 0) std::memcpy(v.data(), p_ + off_, count * sizeof(T));
    off_ += count * sizeof(T);
    return v;
  }
  bool done() const { return off_ == n_; }
  std::size_t remaining() const { return n_ - off_; }

 private:
  // Validate a length prefix against the bytes actually present: a hostile
  // count cannot trigger a huge allocation or an over-read.
  std::size_t length(std::size_t elem_size) {
    const auto count = static_cast<std::size_t>(pod<std::uint64_t>());
    if (elem_size != 0 && count > remaining() / elem_size) {
      throw Error("message body truncated: array of " + std::to_string(count) +
                      " elements exceeds remaining " + std::to_string(remaining()) + " bytes",
                  ErrorCode::kIoCorruption);
    }
    return count;
  }
  void need(std::size_t k) const {
    if (n_ - off_ < k) {
      throw Error("message body truncated: need " + std::to_string(k) + " bytes, have " +
                      std::to_string(n_ - off_),
                  ErrorCode::kIoCorruption);
    }
  }
  const std::uint8_t* p_;
  std::size_t n_;
  std::size_t off_ = 0;
};

// --- message structs --------------------------------------------------------

struct HelloMsg {
  std::string tenant;
  /// Stable client identity surviving reconnects. The server keys its
  /// response-replay cache on (tenant, client_id, request_id), so a client
  /// that reconnects after losing a connection mid-request can resubmit the
  /// same request_id and get the original outcome instead of a duplicate
  /// execution. 0 (the legacy encoding, which omits the field entirely)
  /// opts out of replay.
  std::uint64_t client_id = 0;
};

struct HelloAckMsg {
  std::uint64_t session_id = 0;
  std::uint16_t server_version = kProtocolVersion;
};

/// Server lifecycle on the wire: ready (admitting normally), degraded
/// (admitting, but shedding or quarantine activity suggests reduced
/// capacity), draining (no new work; in-flight jobs are being flushed).
enum class WireHealth : std::uint8_t { kReady = 0, kDegraded = 1, kDraining = 2 };

struct HealthAckMsg {
  WireHealth state = WireHealth::kReady;
  std::uint8_t accepting = 1;      // 0 once draining
  std::uint64_t connections = 0;
  std::uint64_t inflight = 0;      // admitted jobs not yet resolved
  std::uint64_t queued = 0;        // engine backlog
  std::uint64_t watchdog_stalls = 0;
};

struct DrainMsg {
  /// Budget for flushing in-flight work; <= 0 uses the server's configured
  /// default. When the deadline passes, the remainder fails kCancelled
  /// (RetryClass::kAfterReconnect — safe to resubmit elsewhere).
  std::int64_t deadline_ms = -1;
};

struct DrainAckMsg {
  WireHealth state = WireHealth::kDraining;
  std::uint64_t inflight = 0;  // jobs the drain must flush or fail
};

struct RegisterPlanMsg {
  GridDesc grid;
  PlanConfig config;
  datasets::SampleSet samples;
};

struct RegisterAckMsg {
  std::uint64_t plan_id = 0;
  std::uint64_t resident_bytes = 0;
};

/// Transform direction on the wire. kAdjoint is the type-1 (nonuniform →
/// uniform, gridding) direction, kForward the type-2 (uniform → nonuniform).
enum class WireOp : std::uint8_t { kForward = 0, kAdjoint = 1 };

/// Submit flags. kBestEffort is the admission controller's degrade path: the
/// request is exempt from deadline-based shedding (it may complete late)
/// while overload shedding still applies.
inline constexpr std::uint32_t kFlagBestEffort = 1u << 0;

struct SubmitMsg {
  std::uint64_t plan_id = 0;
  WireOp op = WireOp::kForward;
  std::uint32_t batch = 1;
  std::int64_t deadline_ms = -1;  // wall budget from server receipt; -1 = none
  std::uint32_t flags = 0;
  std::vector<cfloat> input;
};

struct ResultMsg {
  std::uint64_t queue_wait_us = 0;  // admission → dispatch, server-side
  std::uint64_t exec_us = 0;        // operator wall time inside the engine
  std::vector<cfloat> output;
};

struct ErrorMsg {
  std::int32_t code = 0;  // nufft::ErrorCode
  std::string message;
};

/// Streaming plan update (v3): replace the trajectory behind an existing plan
/// handle. The server diffs the new coordinates against the resident plan and
/// prefers a warm delta re-bin over a cold preprocessing pass; the handle's
/// plan_id stays valid and subsequent kSubmit frames run against the updated
/// trajectory. Sample geometry (dim, grid size, count) must match the handle.
struct UpdateSamplesMsg {
  std::uint64_t plan_id = 0;
  datasets::SampleSet samples;
};

/// How an update was applied on the wire. Mirrors core UpdatePath.
enum class WireUpdatePath : std::uint8_t { kNoop = 0, kWarm = 1, kRebuild = 2 };

struct UpdateAckMsg {
  std::uint64_t plan_id = 0;
  std::uint64_t generation = 0;  // plan generation after the update
  WireUpdatePath path = WireUpdatePath::kNoop;
  std::uint64_t resident_bytes = 0;
};

struct StatsAckMsg {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
};

// --- body encode/decode -----------------------------------------------------
// decode_* throws Error(kIoCorruption) on truncation and kInvalidInput on
// semantically impossible values (dimension out of range, op out of range).

Bytes encode(const HelloMsg& m);
Bytes encode(const HelloAckMsg& m);
Bytes encode(const RegisterPlanMsg& m);
Bytes encode(const RegisterAckMsg& m);
Bytes encode(const SubmitMsg& m);
Bytes encode(const ResultMsg& m);
Bytes encode(const ErrorMsg& m);
Bytes encode(const StatsAckMsg& m);
Bytes encode(const HealthAckMsg& m);
Bytes encode(const DrainMsg& m);
Bytes encode(const DrainAckMsg& m);
Bytes encode(const UpdateSamplesMsg& m);
Bytes encode(const UpdateAckMsg& m);

HelloMsg decode_hello(const Bytes& b);
HelloAckMsg decode_hello_ack(const Bytes& b);
RegisterPlanMsg decode_register_plan(const Bytes& b);
RegisterAckMsg decode_register_ack(const Bytes& b);
SubmitMsg decode_submit(const Bytes& b);
ResultMsg decode_result(const Bytes& b);
ErrorMsg decode_error(const Bytes& b);
StatsAckMsg decode_stats_ack(const Bytes& b);
HealthAckMsg decode_health_ack(const Bytes& b);
DrainMsg decode_drain(const Bytes& b);
DrainAckMsg decode_drain_ack(const Bytes& b);
UpdateSamplesMsg decode_update_samples(const Bytes& b);
UpdateAckMsg decode_update_ack(const Bytes& b);

}  // namespace nufft::serve
