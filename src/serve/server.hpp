// NUFFT-as-a-service: a poll-loop socket server wrapping exec::NufftEngine.
//
// Architecture — three thread roles around the existing execution engine:
//
//   poll thread     owns every connection: accept, frame reassembly,
//                   admission control, the weighted-fair dispatch queues,
//                   and all socket writes. Single-threaded by design; no
//                   per-connection locks exist.
//   builder thread  runs plan registrations (PlanRegistry::acquire) so a
//                   multi-second preprocessing pass never stalls the loop.
//   engine workers  execute transforms; their JobOptions::on_complete hook
//                   pushes the job id onto a completion queue and wakes the
//                   poll thread through a self-pipe, so results are written
//                   back without parking a thread per future.
//
// Multi-tenancy: a session opens with Hello{tenant}. Tenants are the unit of
// isolation — each gets a PlanRegistry byte/plan quota (enforced inside the
// registry, rejected as kOverloaded), an admitted-backlog cap, an in-flight
// cap, and a weight. Admitted requests queue per tenant and are dispatched
// by deficit round-robin: each visit grants the tenant `weight` credits, one
// credit per job, so over any window tenants with backlog split engine slots
// in proportion to their weights regardless of arrival rates.
//
// Admission control (the "shed, don't collapse" policy):
//   * backlog caps — tenant queue full or global backlog full → kOverloaded.
//   * deadline-aware shedding — the server keeps a pow2 histogram of
//     observed server-side queue wait (the PR 3 obs::Histogram type). Once
//     warmed up, a request whose deadline budget is below the p99 queue wait
//     is shed at admission (kOverloaded) instead of being queued to die: the
//     engine slot it would have wasted goes to a request that can still make
//     its deadline. Requests flagged kFlagBestEffort degrade instead — they
//     are admitted without a deadline and may complete late.
//   * dispatch-time expiry — a request whose deadline passed while queued is
//     failed as kTimeout without touching the engine.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "exec/engine.hpp"
#include "exec/plan_registry.hpp"
#include "obs/metrics.hpp"
#include "serve/protocol.hpp"

namespace nufft::serve {

struct TenantPolicy {
  std::uint32_t weight = 1;     // deficit-round-robin share
  int max_inflight = 2;         // concurrent jobs inside the engine
  std::size_t max_queued = 64;  // admitted-but-undispatched cap
  // Payload budget over the tenant's live requests (input + output bytes of
  // every admitted or in-flight submit). Bounds the request memory a tenant
  // can pin, not just how many requests it may queue; a single submit larger
  // than this budget can never be admitted. 0 = unlimited.
  std::size_t max_pending_bytes = 256u << 20;
  // Plan handles the tenant may hold at once; registering past the cap drops
  // the least-recently-used handle (later submits against it fail with
  // kInvalidInput and the client must re-register). Together with the
  // registry's deferred quota refunds this bounds the resident plan memory a
  // tenant can pin through its handles. 0 = unlimited.
  std::size_t max_plans = 8;
};

struct ServeConfig {
  std::string socket_path;  // AF_UNIX path; unlinked on bind and on stop
  int backlog = 16;
  std::size_t max_connections = 64;
  exec::EngineConfig engine;
  exec::RegistryConfig registry;  // tenant quotas live here
  TenantPolicy default_tenant;
  std::map<std::string, TenantPolicy> tenants;  // per-name overrides
  std::size_t max_queued_total = 256;  // global admitted-backlog cap
  // Global payload budget (sum of input + output bytes across every live
  // request, all tenants). The backstop against one tenant-policy hole
  // OOM-killing the server. 0 = unlimited.
  std::size_t max_pending_bytes_total = 1u << 30;
  // Engine-side concurrency cap. 0 = engine worker count: the engine queue
  // stays near-empty so ordering is decided by the fair queues, not FIFO.
  int max_inflight = 0;
  // Queue-wait histogram warm-up: deadline-aware shedding stays off until
  // this many completions have been observed (a cold server sheds nothing).
  std::uint64_t min_wait_samples = 32;

  // --- resilience ------------------------------------------------------------
  // Close a connection with no traffic in either direction for this long,
  // unless it has live (queued or in-flight) requests. Negative: disabled.
  std::chrono::milliseconds idle_timeout{-1};
  // Slow-reader cap: outbound bytes a connection may queue *behind* the
  // frame currently being written. A peer that stops reading while results
  // stream costs its connection (slow_reader_closed stat), never unbounded
  // server memory. The frame at the head is exempt so a single response
  // larger than the cap still flushes. 0 = unlimited.
  std::size_t max_wbuf_bytes = 64u << 20;
  // Default budget for a graceful drain (Drain message with deadline_ms <= 0,
  // or SIGTERM): admitted work gets this long to flush before the remainder
  // is failed kCancelled (retryable-after-reconnect).
  std::chrono::milliseconds drain_deadline{5000};
  // Install a SIGTERM handler in start() that begins a graceful drain. The
  // flag is process-global: every server polling it drains. Off by default —
  // a library must not take signals without being asked.
  bool drain_on_sigterm = false;
  // Per-tenant response-replay cache (exactly-once across reconnects):
  // finished responses for clients with a non-zero client_id are kept so a
  // resubmitted (client_id, request_id) replays the original outcome instead
  // of re-executing. Bounded per tenant by entries and bytes; the cache dies
  // with the tenant record (a fully idle tenant's resubmission after GC
  // re-executes — idempotent, so still exactly-once as observed per request).
  std::size_t replay_cache_entries = 128;
  std::size_t replay_cache_bytes = 32u << 20;
};

struct TenantStats {
  std::uint64_t accepted = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;          // engine-side errors (incl. timeouts)
  std::uint64_t shed_overload = 0;   // backlog caps
  std::uint64_t shed_deadline = 0;   // deadline-aware admission
  std::uint64_t degraded = 0;        // best-effort requests past the shed line
  std::uint64_t deadline_missed = 0; // expired in queue or kTimeout in engine
};

struct ServerStats {
  std::uint64_t connections = 0;
  std::uint64_t rejected_connections = 0;
  std::uint64_t protocol_errors = 0;
  std::uint64_t plans_registered = 0;
  std::uint64_t plans_updated = 0;   // UpdateSamples handled (any path)
  std::uint64_t accepted = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t shed_overload = 0;
  std::uint64_t shed_deadline = 0;
  std::uint64_t degraded = 0;
  std::uint64_t deadline_missed = 0;
  std::uint64_t orphaned = 0;       // completions whose connection had closed
  std::uint64_t plans_dropped = 0;  // LRU plan-handle drops (TenantPolicy::max_plans)
  std::uint64_t idle_closed = 0;        // connections reaped by idle_timeout
  std::uint64_t slow_reader_closed = 0; // connections over max_wbuf_bytes
  std::uint64_t drain_rejected = 0;     // submits/registers refused while draining
  std::uint64_t drain_cancelled = 0;    // live requests failed at the drain deadline
  std::uint64_t replays = 0;            // responses served from the replay cache
  std::uint64_t rebinds = 0;            // live requests re-homed to a new connection
};

class NufftServer {
 public:
  explicit NufftServer(ServeConfig cfg);
  ~NufftServer();  // calls stop()

  NufftServer(const NufftServer&) = delete;
  NufftServer& operator=(const NufftServer&) = delete;

  /// Bind the socket and start the poll and builder threads. Throws
  /// Error(kInternal) if the socket cannot be created or bound.
  void start();

  /// Stop accepting work, resolve or drop everything in flight, join the
  /// threads, close every connection and unlink the socket. Idempotent.
  void stop();

  bool running() const;
  const std::string& socket_path() const { return cfg_.socket_path; }

  ServerStats stats() const;
  std::map<std::string, TenantStats> tenant_stats() const;

  /// Flat counter view (ServerStats + per-tenant), the payload of the Stats
  /// RPC — exposed so in-process embedders (the saturation bench) and remote
  /// clients read identical numbers.
  std::vector<std::pair<std::string, std::uint64_t>> stat_counters() const;

  /// Tenants currently resident in the poll thread's maps. A tenant record
  /// is garbage-collected (plan handles dropped with it) once its last
  /// connection closes and no queued or in-flight work remains, so this
  /// stays bounded no matter how many distinct Hello names a client cycles
  /// through. A reconnecting tenant re-registers its plans; the content-keyed
  /// registry usually makes that a cache hit. Observational (tests/monitoring).
  std::size_t tenant_count() const { return tenant_count_.load(std::memory_order_relaxed); }

  /// Current lifecycle state, as reported by the Health RPC: ready →
  /// degraded (watchdog stalls in the last 10 s, or backlog at 3/4 of the
  /// global cap) → draining.
  WireHealth health() const {
    return static_cast<WireHealth>(health_state_.load(std::memory_order_relaxed));
  }

  /// Begin a graceful drain from any thread (what SIGTERM and the Drain RPC
  /// call): stop admitting submits/registers (kUnavailable) and new
  /// connections, flush admitted work for `deadline` (<= 0 uses
  /// ServeConfig::drain_deadline), then fail the remainder kCancelled.
  /// The server stays up afterwards — delivering errors, answering
  /// Ping/Health — until stop().
  void drain(std::chrono::milliseconds deadline = std::chrono::milliseconds{-1});

  bool draining() const { return draining_.load(std::memory_order_relaxed); }
  /// True once a requested drain has flushed or failed every live request.
  bool drain_complete() const { return drain_complete_.load(std::memory_order_relaxed); }

  /// Engine watchdog counters (stalls, quarantines, replacements).
  exec::WatchdogStats watchdog_stats() const { return engine_.watchdog_stats(); }

 private:
  struct Conn;
  struct Tenant;
  struct Pending;

  // A plan registration or streaming update finished by the builder thread,
  // applied to tenant state by the poll thread (tenant maps are
  // poll-thread-owned).
  struct Registration {
    std::uint64_t conn_id = 0;
    std::uint64_t request_id = 0;
    std::string tenant;
    std::shared_ptr<const Nufft> plan;  // null on failure
    ErrorCode code = ErrorCode::kInternal;
    std::string error;
    // Content key + construction inputs, remembered on the plan handle so a
    // later UpdateSamples can diff against the resident plan.
    std::string key;
    GridDesc grid;
    PlanConfig config;
    // Nonzero: this is an UpdateSamples result for that handle, not a fresh
    // registration. `path` reports which update path the registry took.
    std::uint64_t update_plan_id = 0;
    WireUpdatePath path = WireUpdatePath::kRebuild;
  };

  void poll_loop();
  void builder_loop();
  void wake();

  void accept_ready();
  void read_ready(Conn& c);
  bool flush_writes(Conn& c);  // false once the connection should close
  void handle_frame(Conn& c, Frame&& f);
  void handle_hello(Conn& c, const Frame& f);
  void handle_register(Conn& c, Frame&& f);
  void handle_update(Conn& c, Frame&& f);
  void handle_submit(Conn& c, Frame&& f);
  void handle_stats(Conn& c, const Frame& f);
  void handle_health(Conn& c, const Frame& f);
  void handle_drain(Conn& c, const Frame& f);
  void send_frame(Conn& c, MsgType type, std::uint64_t request_id, const Bytes& body);
  // Queue an already-encoded frame on a connection (the replay path and
  // send_frame share the wbuf accounting and slow-reader enforcement).
  void send_raw(Conn& c, Bytes frame);
  void send_error(Conn& c, std::uint64_t request_id, ErrorCode code, const std::string& msg);
  void close_conn(std::uint64_t conn_id);
  // Lifecycle (poll thread): pick up drain requests/SIGTERM, advance the
  // drain, enforce idle timeouts, refresh the health mirror.
  void lifecycle_tick();
  // Poll-thread half of drain(): flip into the draining state (idempotent).
  void begin_drain(std::chrono::milliseconds deadline);
  // Fail every live Pending (queued or in-flight) with `code` — the drain
  // deadline's last resort. In-flight engine jobs keep running against
  // keepalive-pinned buffers; their later completions find no Pending and
  // are no-ops.
  void fail_all_live(ErrorCode code, const std::string& why);
  // Store a finished response for (tenant, client_id, request_id) replay.
  void cache_response(const std::string& tenant, std::uint64_t client_id,
                      std::uint64_t request_id, const Bytes& frame);
  // Remove a Pending's live_by_rid index entry (if it still points at it).
  void erase_live(const Pending& p);

  Tenant& tenant_for(const std::string& name);
  // Drop a tenant record (plans, queues, gauges, rotation slot) once it has
  // no connection, no queued or in-flight work, and thus no reachable state.
  void maybe_gc_tenant(const std::string& name);
  // Admission verdict for one submit; fills `why` on a shed. `payload_bytes`
  // is the request's input + output footprint, charged against the byte
  // budgets for as long as the Pending lives.
  bool admit(Tenant& t, const SubmitMsg& m, std::size_t payload_bytes, ErrorCode& code,
             std::string& why);
  // Release a Pending's payload-byte charges (every path that erases one).
  void release_payload(const Pending& p);
  void pump_dispatch();
  void dispatch_one(std::uint64_t pending_id);
  void finalize_completions();
  void finalize(std::uint64_t pending_id);
  void update_tenant_gauges(const Tenant& t) const;

  ServeConfig cfg_;
  exec::PlanRegistry registry_;
  exec::NufftEngine engine_;
  int max_inflight_ = 0;

  // All state below belongs to the poll thread except where noted.
  int listen_fd_ = -1;
  int wake_r_ = -1, wake_w_ = -1;  // self-pipe: engine/builder → poll thread
  std::uint64_t next_conn_ = 1;
  std::uint64_t next_pending_ = 1;
  std::uint64_t next_plan_ = 1;
  std::map<std::uint64_t, Conn> conns_;
  std::map<std::string, Tenant> tenants_;
  std::vector<std::string> rotation_;  // tenant visit order for DRR
  std::size_t rotation_cursor_ = 0;
  std::map<std::uint64_t, Pending> pendings_;
  std::size_t queued_total_ = 0;
  std::size_t pending_bytes_total_ = 0;  // payload bytes across live Pendings
  int inflight_total_ = 0;
  std::atomic<std::size_t> tenant_count_{0};  // mirrors tenants_.size() for observers

  // Server-side queue-wait histogram feeding deadline-aware admission.
  // Always on (a member, not an env-gated global instrument); mirrored into
  // the process metrics registry under serve.* when NUFFT_METRICS is set.
  obs::Histogram wait_hist_;

  // Cross-thread handoff: engine completions and builder results land here
  // and the self-pipe wakes the poll thread to collect them.
  mutable std::mutex out_mu_;
  std::vector<std::uint64_t> completed_;     // pending ids
  std::vector<Registration> registrations_;  // finished plan builds

  // Builder thread: plan registrations, executed off the poll thread.
  std::mutex build_mu_;
  std::condition_variable build_cv_;
  std::deque<std::function<void()>> build_q_;
  bool build_stop_ = false;

  mutable std::mutex stats_mu_;
  ServerStats stats_;
  std::map<std::string, TenantStats> tenant_stats_;

  std::thread poll_thread_;
  std::thread build_thread_;
  std::atomic<bool> stop_flag_{false};
  mutable std::mutex run_mu_;
  bool running_ = false;

  // Lifecycle. drain()/SIGTERM only flip atomics; the poll thread owns the
  // actual transition (lifecycle_tick) like every other piece of state.
  std::atomic<bool> drain_requested_{false};
  std::atomic<std::int64_t> drain_deadline_ms_{-1};
  std::atomic<bool> draining_{false};
  std::atomic<bool> drain_complete_{false};
  std::atomic<int> health_state_{0};  // WireHealth mirror for observers
  bool drain_active_ = false;                        // poll thread
  std::chrono::steady_clock::time_point drain_until_{};  // poll thread
  // Degraded-state memory: last watchdog stall count and when it changed.
  std::uint64_t seen_stalls_ = 0;
  std::chrono::steady_clock::time_point last_stall_{};
  bool sigterm_installed_ = false;
};

}  // namespace nufft::serve
