#include "serve/client.hpp"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <random>
#include <thread>
#include <utility>

namespace nufft::serve {

namespace {

using Clock = std::chrono::steady_clock;

int remaining_ms(Clock::time_point deadline) {
  const auto left =
      std::chrono::duration_cast<std::chrono::milliseconds>(deadline - Clock::now());
  if (left.count() <= 0) return 0;
  if (left.count() > 60 * 60 * 1000) return 60 * 60 * 1000;  // poll() takes int
  return static_cast<int>(left.count());
}

std::uint64_t random_client_id() {
  // random_device twice: a single 32-bit draw collides at birthday scale.
  std::random_device rd;
  std::uint64_t id = (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
  if (id == 0) id = 1;  // 0 means "no identity" on the wire
  return id;
}

}  // namespace

NufftClient::~NufftClient() { close(); }

NufftClient::NufftClient(NufftClient&& other) noexcept
    : opts_(other.opts_),
      fd_(std::exchange(other.fd_, -1)),
      next_request_(other.next_request_),
      session_id_(other.session_id_),
      client_id_(other.client_id_),
      last_plan_bytes_(other.last_plan_bytes_),
      reconnects_(other.reconnects_),
      socket_path_(std::move(other.socket_path_)),
      tenant_(std::move(other.tenant_)),
      rbuf_(std::move(other.rbuf_)) {}

NufftClient& NufftClient::operator=(NufftClient&& other) noexcept {
  if (this != &other) {
    close();
    opts_ = other.opts_;
    fd_ = std::exchange(other.fd_, -1);
    next_request_ = other.next_request_;
    session_id_ = other.session_id_;
    client_id_ = other.client_id_;
    last_plan_bytes_ = other.last_plan_bytes_;
    reconnects_ = other.reconnects_;
    socket_path_ = std::move(other.socket_path_);
    tenant_ = std::move(other.tenant_);
    rbuf_ = std::move(other.rbuf_);
  }
  return *this;
}

void NufftClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  session_id_ = 0;
  rbuf_.clear();
}

void NufftClient::connect(const std::string& socket_path, const std::string& tenant) {
  NUFFT_CHECK_CODE(!tenant.empty(), ErrorCode::kInvalidInput,
                   "tenant name must be non-empty");
  socket_path_ = socket_path;
  tenant_ = tenant;
  if (client_id_ == 0) {
    client_id_ = opts_.client_id != 0 ? opts_.client_id : random_client_id();
  }
  do_connect();
}

void NufftClient::do_connect() {
  close();

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  NUFFT_CHECK_CODE(socket_path_.size() < sizeof(addr.sun_path), ErrorCode::kInvalidInput,
                   "socket path too long for AF_UNIX: " << socket_path_);
  std::memcpy(addr.sun_path, socket_path_.c_str(), socket_path_.size() + 1);

  fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
  if (fd_ < 0) throw Error("socket() failed", ErrorCode::kUnavailable);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    if (errno == EINPROGRESS || errno == EAGAIN) {
      // Non-blocking connect in flight (EAGAIN: AF_UNIX backlog full) —
      // bounded wait for writability, then read the final verdict.
      const auto deadline = Clock::now() + opts_.io_timeout;
      try {
        io_wait(POLLOUT, deadline);
      } catch (...) {
        close();
        throw;
      }
      int soerr = 0;
      socklen_t len = sizeof(soerr);
      if (::getsockopt(fd_, SOL_SOCKET, SO_ERROR, &soerr, &len) != 0 || soerr != 0) {
        const std::string why = std::strerror(soerr != 0 ? soerr : errno);
        close();
        throw Error("cannot connect to " + socket_path_ + ": " + why,
                    ErrorCode::kUnavailable);
      }
    } else {
      const std::string why = std::strerror(errno);
      close();
      throw Error("cannot connect to " + socket_path_ + ": " + why,
                  ErrorCode::kUnavailable);
    }
  }

  HelloMsg hello;
  hello.tenant = tenant_;
  hello.client_id = client_id_;
  const std::uint64_t request_id = next_request_++;
  Bytes wire;
  encode_frame(wire, MsgType::kHello, request_id, encode(hello));
  const Frame ack = rpc_once(wire, request_id, MsgType::kHelloAck);
  session_id_ = decode_hello_ack(ack.body).session_id;
}

std::uint64_t NufftClient::register_plan(const GridDesc& grid,
                                         const datasets::SampleSet& samples,
                                         const PlanConfig& cfg) {
  RegisterPlanMsg m;
  m.grid = grid;
  m.config = cfg;
  m.samples = samples;
  const Frame ack = rpc(MsgType::kRegisterPlan, encode(m), MsgType::kRegisterAck);
  const RegisterAckMsg r = decode_register_ack(ack.body);
  last_plan_bytes_ = r.resident_bytes;
  return r.plan_id;
}

UpdateAckMsg NufftClient::update_samples(std::uint64_t plan_id,
                                         const datasets::SampleSet& samples) {
  UpdateSamplesMsg m;
  m.plan_id = plan_id;
  m.samples = samples;
  const Frame ack = rpc(MsgType::kUpdateSamples, encode(m), MsgType::kUpdateAck);
  const UpdateAckMsg r = decode_update_ack(ack.body);
  last_plan_bytes_ = r.resident_bytes;
  return r;
}

RunResult NufftClient::forward(std::uint64_t plan_id,
                                            const std::vector<cfloat>& input,
                                            std::uint32_t batch, const RunOptions& opts) {
  return run(WireOp::kForward, plan_id, input, batch, opts);
}

RunResult NufftClient::adjoint(std::uint64_t plan_id,
                                            const std::vector<cfloat>& input,
                                            std::uint32_t batch, const RunOptions& opts) {
  return run(WireOp::kAdjoint, plan_id, input, batch, opts);
}

RunResult NufftClient::run(WireOp op, std::uint64_t plan_id,
                                        const std::vector<cfloat>& input,
                                        std::uint32_t batch, const RunOptions& opts) {
  SubmitMsg m;
  m.plan_id = plan_id;
  m.op = op;
  m.batch = batch;
  m.deadline_ms = opts.deadline_ms;
  m.flags = opts.best_effort ? kFlagBestEffort : 0;
  m.input = input;
  const Frame res = rpc(MsgType::kSubmit, encode(m), MsgType::kResult);
  ResultMsg r = decode_result(res.body);
  RunResult out;
  out.output = std::move(r.output);
  out.queue_wait_us = r.queue_wait_us;
  out.exec_us = r.exec_us;
  return out;
}

std::vector<std::pair<std::string, std::uint64_t>> NufftClient::server_stats() {
  const Frame ack = rpc(MsgType::kStats, Bytes{}, MsgType::kStatsAck);
  return decode_stats_ack(ack.body).counters;
}

void NufftClient::ping() { rpc(MsgType::kPing, Bytes{}, MsgType::kPong); }

HealthAckMsg NufftClient::health() {
  const Frame ack = rpc(MsgType::kHealth, Bytes{}, MsgType::kHealthAck);
  return decode_health_ack(ack.body);
}

DrainAckMsg NufftClient::drain_server(std::int64_t deadline_ms) {
  DrainMsg m;
  m.deadline_ms = deadline_ms;
  const Frame ack = rpc(MsgType::kDrain, encode(m), MsgType::kDrainAck);
  return decode_drain_ack(ack.body);
}

void NufftClient::backoff_sleep(int attempt) {
  std::int64_t base_ms = opts_.backoff_base.count();
  if (base_ms <= 0) return;
  for (int i = 0; i < attempt && base_ms < opts_.backoff_max.count(); ++i) base_ms *= 2;
  base_ms = std::min<std::int64_t>(base_ms, std::max<std::int64_t>(opts_.backoff_max.count(), 1));
  // Jitter ~ U(0.5, 1.5)·base: reconnecting clients must not stampede the
  // server in lockstep after it comes back.
  std::random_device rd;
  std::uniform_real_distribution<double> dist(0.5, 1.5);
  std::mt19937_64 rng{(static_cast<std::uint64_t>(rd()) << 32) ^ rd()};
  const auto sleep_ms = static_cast<std::int64_t>(static_cast<double>(base_ms) * dist(rng));
  std::this_thread::sleep_for(std::chrono::milliseconds(std::max<std::int64_t>(sleep_ms, 1)));
}

Frame NufftClient::rpc(MsgType type, const Bytes& body, MsgType expect) {
  NUFFT_CHECK_CODE(fd_ >= 0 || !socket_path_.empty(), ErrorCode::kInvalidInput,
                   "client is not connected");
  const std::uint64_t request_id = next_request_++;
  Bytes wire;
  encode_frame(wire, type, request_id, body);

  // Transport failures close the fd; server-reported errors leave it open.
  // That distinction drives the retry decision: anything thrown while the
  // connection is still healthy is an application answer, not a transport
  // problem, and must surface unchanged.
  for (int attempt = 0;; ++attempt) {
    try {
      if (fd_ < 0) {
        do_connect();
        ++reconnects_;
      }
      return rpc_once(wire, request_id, expect);
    } catch (const Error&) {
      if (fd_ >= 0) throw;  // server answered; not a transport failure
      if (attempt >= opts_.max_reconnects) throw;
      backoff_sleep(attempt);
      // Resubmission of the SAME request id is safe: the server deduplicates
      // (client_id, request_id) — a still-running first execution is
      // re-homed, a finished one is replayed from its cache.
    }
  }
}

Frame NufftClient::rpc_once(const Bytes& wire, std::uint64_t request_id, MsgType expect) {
  write_all(wire);
  for (;;) {
    Frame f = read_frame();
    if (f.request_id != request_id) {
      // Unsolicited or stale frame (e.g. the error a server sends just
      // before closing a poisoned stream with request id 0, or a response
      // to a pre-reconnect request). Surface stream-level errors, drop
      // anything else.
      if (f.type == MsgType::kError && f.request_id == 0) {
        const ErrorMsg e = decode_error(f.body);
        throw Error(e.message, static_cast<ErrorCode>(e.code));
      }
      continue;
    }
    if (f.type == MsgType::kError) {
      const ErrorMsg e = decode_error(f.body);
      throw Error(e.message, static_cast<ErrorCode>(e.code));
    }
    if (f.type != expect) {
      throw Error("unexpected response type for request", ErrorCode::kIoCorruption);
    }
    return f;
  }
}

void NufftClient::io_wait(short events, Clock::time_point deadline) {
  for (;;) {
    pollfd pfd{fd_, events, 0};
    const int timeout = opts_.io_timeout.count() < 0 ? -1 : remaining_ms(deadline);
    const int r = ::poll(&pfd, 1, timeout);
    if (r > 0) {
      if ((pfd.revents & (POLLERR | POLLNVAL)) != 0) {
        close();
        throw Error("connection failed while waiting for I/O", ErrorCode::kIoCorruption);
      }
      return;  // readable/writable (POLLHUP still delivers buffered bytes)
    }
    if (r == 0) {
      close();
      throw Error("I/O deadline expired after " + std::to_string(opts_.io_timeout.count()) +
                      " ms waiting on the server",
                  ErrorCode::kUnavailable);
    }
    if (errno == EINTR) continue;
    close();
    throw Error("poll() failed: " + std::string(std::strerror(errno)),
                ErrorCode::kIoCorruption);
  }
}

void NufftClient::write_all(const Bytes& buf) {
  const auto deadline = Clock::now() + opts_.io_timeout;
  std::size_t off = 0;
  while (off < buf.size()) {
    const auto n = ::send(fd_, buf.data() + off, buf.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        io_wait(POLLOUT, deadline);  // bounded: throws on expiry
        continue;
      }
      const std::string why = std::strerror(errno);
      close();
      throw Error("connection write failed: " + why, ErrorCode::kIoCorruption);
    }
    off += static_cast<std::size_t>(n);
  }
}

Frame NufftClient::read_frame() {
  Frame f;
  // Progress-based deadline: restarted whenever bytes arrive, so a large
  // result on a slow socket survives while a wedged server does not.
  auto deadline = Clock::now() + opts_.io_timeout;
  for (;;) {
    if (!rbuf_.empty()) {
      std::size_t consumed = 0;
      try {
        consumed = try_decode_frame(rbuf_.data(), rbuf_.size(), f);
      } catch (...) {
        close();  // corrupt stream: no recoverable frame boundary remains
        throw;
      }
      if (consumed > 0) {
        rbuf_.erase(rbuf_.begin(), rbuf_.begin() + static_cast<std::ptrdiff_t>(consumed));
        return f;
      }
    }
    std::uint8_t chunk[64 * 1024];
    const auto n = ::read(fd_, chunk, sizeof(chunk));
    if (n > 0) {
      rbuf_.insert(rbuf_.end(), chunk, chunk + n);
      deadline = Clock::now() + opts_.io_timeout;
      continue;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        io_wait(POLLIN, deadline);  // bounded: throws on expiry
        continue;
      }
    }
    close();
    throw Error("connection closed by server mid-response", ErrorCode::kIoCorruption);
  }
}

}  // namespace nufft::serve
