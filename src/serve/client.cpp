#include "serve/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace nufft::serve {

NufftClient::~NufftClient() { close(); }

NufftClient::NufftClient(NufftClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      next_request_(other.next_request_),
      session_id_(other.session_id_),
      last_plan_bytes_(other.last_plan_bytes_),
      rbuf_(std::move(other.rbuf_)) {}

NufftClient& NufftClient::operator=(NufftClient&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    next_request_ = other.next_request_;
    session_id_ = other.session_id_;
    last_plan_bytes_ = other.last_plan_bytes_;
    rbuf_ = std::move(other.rbuf_);
  }
  return *this;
}

void NufftClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  session_id_ = 0;
  rbuf_.clear();
}

void NufftClient::connect(const std::string& socket_path, const std::string& tenant) {
  NUFFT_CHECK_CODE(!tenant.empty(), ErrorCode::kInvalidInput,
                   "tenant name must be non-empty");
  close();

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  NUFFT_CHECK_CODE(socket_path.size() < sizeof(addr.sun_path), ErrorCode::kInvalidInput,
                   "socket path too long for AF_UNIX: " << socket_path);
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);

  fd_ = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) throw Error("socket() failed", ErrorCode::kInternal);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string why = std::strerror(errno);
    close();
    throw Error("cannot connect to " + socket_path + ": " + why, ErrorCode::kInternal);
  }

  HelloMsg hello;
  hello.tenant = tenant;
  const Frame ack = rpc(MsgType::kHello, encode(hello), MsgType::kHelloAck);
  session_id_ = decode_hello_ack(ack.body).session_id;
}

std::uint64_t NufftClient::register_plan(const GridDesc& grid,
                                         const datasets::SampleSet& samples,
                                         const PlanConfig& cfg) {
  RegisterPlanMsg m;
  m.grid = grid;
  m.config = cfg;
  m.samples = samples;
  const Frame ack = rpc(MsgType::kRegisterPlan, encode(m), MsgType::kRegisterAck);
  const RegisterAckMsg r = decode_register_ack(ack.body);
  last_plan_bytes_ = r.resident_bytes;
  return r.plan_id;
}

RunResult NufftClient::forward(std::uint64_t plan_id,
                                            const std::vector<cfloat>& input,
                                            std::uint32_t batch, const RunOptions& opts) {
  return run(WireOp::kForward, plan_id, input, batch, opts);
}

RunResult NufftClient::adjoint(std::uint64_t plan_id,
                                            const std::vector<cfloat>& input,
                                            std::uint32_t batch, const RunOptions& opts) {
  return run(WireOp::kAdjoint, plan_id, input, batch, opts);
}

RunResult NufftClient::run(WireOp op, std::uint64_t plan_id,
                                        const std::vector<cfloat>& input,
                                        std::uint32_t batch, const RunOptions& opts) {
  SubmitMsg m;
  m.plan_id = plan_id;
  m.op = op;
  m.batch = batch;
  m.deadline_ms = opts.deadline_ms;
  m.flags = opts.best_effort ? kFlagBestEffort : 0;
  m.input = input;
  const Frame res = rpc(MsgType::kSubmit, encode(m), MsgType::kResult);
  ResultMsg r = decode_result(res.body);
  RunResult out;
  out.output = std::move(r.output);
  out.queue_wait_us = r.queue_wait_us;
  out.exec_us = r.exec_us;
  return out;
}

std::vector<std::pair<std::string, std::uint64_t>> NufftClient::server_stats() {
  const Frame ack = rpc(MsgType::kStats, Bytes{}, MsgType::kStatsAck);
  return decode_stats_ack(ack.body).counters;
}

Frame NufftClient::rpc(MsgType type, const Bytes& body, MsgType expect) {
  NUFFT_CHECK_CODE(fd_ >= 0, ErrorCode::kInvalidInput, "client is not connected");
  const std::uint64_t request_id = next_request_++;
  Bytes wire;
  encode_frame(wire, type, request_id, body);
  write_all(wire);

  for (;;) {
    Frame f = read_frame();
    if (f.request_id != request_id) {
      // Unsolicited or stale frame (e.g. the error a server sends just
      // before closing a poisoned stream with request id 0). Surface errors,
      // drop anything else.
      if (f.type == MsgType::kError) {
        const ErrorMsg e = decode_error(f.body);
        throw Error(e.message, static_cast<ErrorCode>(e.code));
      }
      continue;
    }
    if (f.type == MsgType::kError) {
      const ErrorMsg e = decode_error(f.body);
      throw Error(e.message, static_cast<ErrorCode>(e.code));
    }
    if (f.type != expect) {
      throw Error("unexpected response type for request", ErrorCode::kIoCorruption);
    }
    return f;
  }
}

void NufftClient::write_all(const Bytes& buf) {
  std::size_t off = 0;
  while (off < buf.size()) {
    const auto n = ::write(fd_, buf.data() + off, buf.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string why = std::strerror(errno);
      close();
      throw Error("connection write failed: " + why, ErrorCode::kIoCorruption);
    }
    off += static_cast<std::size_t>(n);
  }
}

Frame NufftClient::read_frame() {
  Frame f;
  for (;;) {
    if (!rbuf_.empty()) {
      const std::size_t consumed = try_decode_frame(rbuf_.data(), rbuf_.size(), f);
      if (consumed > 0) {
        rbuf_.erase(rbuf_.begin(), rbuf_.begin() + static_cast<std::ptrdiff_t>(consumed));
        return f;
      }
    }
    std::uint8_t chunk[64 * 1024];
    const auto n = ::read(fd_, chunk, sizeof(chunk));
    if (n > 0) {
      rbuf_.insert(rbuf_.end(), chunk, chunk + n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    close();
    throw Error("connection closed by server mid-response", ErrorCode::kIoCorruption);
  }
}

}  // namespace nufft::serve
