// 4-wide single-precision SIMD wrapper over SSE.
//
// The paper's convolution reaches ~90% SIMD efficiency with 128-bit SSE;
// this wrapper exposes exactly the operations those kernels need (unaligned
// complex loads/stores, splats, lane-pair weight duplication, FMA-style
// multiply-add composed from separate mul/add pipes as on Westmere).
//
// A bit-exactness note: the SIMD and scalar convolution paths perform the
// same multiplies and adds in the same association order, so their results
// are bitwise identical; tests assert this.
#pragma once

#include <smmintrin.h>  // SSE4.1

#include <cstddef>

namespace nufft::simd {

/// Value-semantic wrapper around __m128 (4 packed floats).
struct Vec4f {
  __m128 v;

  Vec4f() : v(_mm_setzero_ps()) {}
  explicit Vec4f(__m128 raw) : v(raw) {}
  explicit Vec4f(float splat) : v(_mm_set1_ps(splat)) {}
  Vec4f(float a, float b, float c, float d) : v(_mm_setr_ps(a, b, c, d)) {}

  static Vec4f zero() { return Vec4f(_mm_setzero_ps()); }
  static Vec4f loadu(const float* p) { return Vec4f(_mm_loadu_ps(p)); }
  static Vec4f load(const float* p) { return Vec4f(_mm_load_ps(p)); }

  void storeu(float* p) const { _mm_storeu_ps(p, v); }
  void store(float* p) const { _mm_store_ps(p, v); }

  friend Vec4f operator+(Vec4f a, Vec4f b) { return Vec4f(_mm_add_ps(a.v, b.v)); }
  friend Vec4f operator-(Vec4f a, Vec4f b) { return Vec4f(_mm_sub_ps(a.v, b.v)); }
  friend Vec4f operator*(Vec4f a, Vec4f b) { return Vec4f(_mm_mul_ps(a.v, b.v)); }

  Vec4f& operator+=(Vec4f o) {
    v = _mm_add_ps(v, o.v);
    return *this;
  }
  Vec4f& operator*=(Vec4f o) {
    v = _mm_mul_ps(v, o.v);
    return *this;
  }

  float operator[](int lane) const {
    alignas(16) float tmp[4];
    _mm_store_ps(tmp, v);
    return tmp[lane];
  }

  /// Horizontal sum of the four lanes.
  float hsum() const {
    __m128 shuf = _mm_movehdup_ps(v);   // [1 1 3 3]
    __m128 sums = _mm_add_ps(v, shuf);  // [0+1, ., 2+3, .]
    shuf = _mm_movehl_ps(shuf, sums);   // [2+3, ...]
    sums = _mm_add_ss(sums, shuf);
    return _mm_cvtss_f32(sums);
  }

  /// Swap the two floats within each (re, im) pair: (a1, a0, a3, a2).
  /// Building block of the SIMD complex multiply in the batched FFT stages.
  Vec4f swap_pairs() const { return Vec4f(_mm_shuffle_ps(v, v, _MM_SHUFFLE(2, 3, 0, 1))); }

  /// Pairwise horizontal sum treating the register as two (re, im) pairs:
  /// returns (a0+a2, a1+a3) in the low two lanes — the complex accumulator
  /// reduction used by the forward convolution.
  Vec4f hsum_complex_pairs() const {
    return Vec4f(_mm_add_ps(v, _mm_movehl_ps(v, v)));
  }
};

/// a*b + c with separate multiply and add (the paper's Westmere target has
/// no fused unit; it dual-issues mul and add to different pipes).
inline Vec4f madd(Vec4f a, Vec4f b, Vec4f c) { return a * b + c; }

/// Duplicate two scalar weights into complex-lane order: (w0, w0, w1, w1).
/// Used to weight interleaved complex pairs with per-element real weights.
inline Vec4f dup_pair(float w0, float w1) { return Vec4f(w0, w0, w1, w1); }

inline constexpr std::size_t kLanes = 4;

}  // namespace nufft::simd
