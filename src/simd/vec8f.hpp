// 8-wide single-precision SIMD wrapper over AVX2 — the "wider SIMD on
// future many-core architectures" extension the paper anticipates (§I).
//
// This header must only be included from translation units compiled with
// -mavx2 -mfma (see src/core/convolution_avx2.cpp). Unlike the SSE path,
// the AVX2 kernels use fused multiply-add: Haswell-class cores pair FMA
// pipes with the wider registers, so the faithful "what would this code do
// on newer hardware" port uses them. Consequently AVX2 results match the
// scalar path to rounding, not bitwise (tests account for this).
#pragma once

#include <immintrin.h>

#include <cstddef>

namespace nufft::simd {

/// Value-semantic wrapper around __m256 (8 packed floats = 4 complex).
struct Vec8f {
  __m256 v;

  Vec8f() : v(_mm256_setzero_ps()) {}
  explicit Vec8f(__m256 raw) : v(raw) {}
  explicit Vec8f(float splat) : v(_mm256_set1_ps(splat)) {}

  static Vec8f zero() { return Vec8f(_mm256_setzero_ps()); }
  static Vec8f loadu(const float* p) { return Vec8f(_mm256_loadu_ps(p)); }
  static Vec8f load(const float* p) { return Vec8f(_mm256_load_ps(p)); }

  void storeu(float* p) const { _mm256_storeu_ps(p, v); }

  friend Vec8f operator+(Vec8f a, Vec8f b) { return Vec8f(_mm256_add_ps(a.v, b.v)); }
  friend Vec8f operator-(Vec8f a, Vec8f b) { return Vec8f(_mm256_sub_ps(a.v, b.v)); }
  friend Vec8f operator*(Vec8f a, Vec8f b) { return Vec8f(_mm256_mul_ps(a.v, b.v)); }

  float operator[](int lane) const {
    alignas(32) float tmp[8];
    _mm256_store_ps(tmp, v);
    return tmp[lane];
  }

  /// Broadcast one complex value (re, im) across all four complex lanes.
  static Vec8f broadcast_complex(float re, float im) {
    const __m256 r = _mm256_set1_ps(re);
    const __m256 i = _mm256_set1_ps(im);
    return Vec8f(_mm256_blend_ps(r, i, 0b10101010));
  }

  /// Swap the (re, im) halves of every complex lane: (a,b,c,d,...) →
  /// (b,a,d,c,...). In-lane permute — complex pairs never straddle the
  /// 128-bit boundary.
  Vec8f swap_pairs() const { return Vec8f(_mm256_permute_ps(v, _MM_SHUFFLE(2, 3, 0, 1))); }

  /// Fold the four complex lanes into one (re, im) pair:
  /// returns {Σ even lanes, Σ odd lanes}.
  void hsum_complex(float& re, float& im) const {
    const __m128 lo = _mm256_castps256_ps128(v);
    const __m128 hi = _mm256_extractf128_ps(v, 1);
    __m128 s = _mm_add_ps(lo, hi);           // 2 complex
    s = _mm_add_ps(s, _mm_movehl_ps(s, s));  // 1 complex in lanes 0,1
    re = _mm_cvtss_f32(s);
    im = _mm_cvtss_f32(_mm_shuffle_ps(s, s, 0x55));
  }
};

/// Fused a*b + c.
inline Vec8f fmadd(Vec8f a, Vec8f b, Vec8f c) { return Vec8f(_mm256_fmadd_ps(a.v, b.v, c.v)); }

inline constexpr std::size_t kLanes8 = 8;

}  // namespace nufft::simd
