#include "common/env.hpp"

#include <cstdlib>
#include <thread>

namespace nufft {

std::int64_t env_int(const char* name, std::int64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long long parsed = std::strtoll(v, &end, 10);
  if (end == v) return fallback;
  return parsed;
}

bool env_flag(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && *v != '\0' && std::string(v) != "0";
}

int bench_threads() {
  const auto hw = static_cast<std::int64_t>(std::thread::hardware_concurrency());
  return static_cast<int>(env_int("NUFFT_THREADS", hw > 0 ? hw : 1));
}

bool paper_scale() { return env_flag("NUFFT_PAPER"); }

int bench_reps(int fallback) {
  return static_cast<int>(env_int("NUFFT_BENCH_REPS", fallback));
}

}  // namespace nufft
