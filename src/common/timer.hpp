// Wall-clock timing utilities used by the benchmark harness and the
// instrumented scheduler.
#pragma once

#include <chrono>
#include <cstdint>

namespace nufft {

/// Monotonic wall-clock timer with nanosecond resolution.
class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double milliseconds() const { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Monotonic timestamp in nanoseconds; cheap enough for per-task
/// instrumentation in the scheduler overlap tests.
std::uint64_t now_ns();

}  // namespace nufft
