// Fault injection for the robustness test suite.
//
// Production code marks the places where a failure has a defined recovery
// path with a *named site*:
//
//   fault::inject("registry.build", ErrorCode::kBuildFailure);  // may throw
//   fault::inject_alloc("batch.private_alloc");                 // may throw bad_alloc
//   if (fault::should_fail("registry.spill.corrupt")) { ... }   // caller acts
//
// Sites are armed either programmatically (fault::arm, used by the test
// suite) or through the NUFFT_FAULT environment variable, a comma/semicolon
// separated list of `site:count[:skip]` triggers — each armed site fires
// `count` times after ignoring its first `skip` hits.
//
// The whole facility compiles away unless the NUFFT_FAULT_INJECT CMake
// option defines the macro of the same name: in release builds every call
// below is a constant-false / empty inline and the named sites cost nothing.
#pragma once

#include <cstdint>

#include "common/error.hpp"

namespace nufft::fault {

#if defined(NUFFT_FAULT_INJECT)

/// True in builds that compile the injection hooks.
constexpr bool enabled() { return true; }

/// Consume one trigger at `site`; true when the site is armed and fires.
bool should_fail(const char* site);

/// Throw Error(code) when `site` fires.
void inject(const char* site, ErrorCode code);

/// Throw std::bad_alloc when `site` fires — stands in for a real allocation
/// failure on the path that owns the site.
void inject_alloc(const char* site);

/// Arm `site` to fire `count` times after skipping its next `skip` hits.
void arm(const char* site, int count, int skip = 0);

/// Disarm every site and zero the hit counters (NUFFT_FAULT is re-read on
/// the next hit).
void reset();

/// How many times `site` has fired since the last reset().
std::uint64_t fired(const char* site);

#else

constexpr bool enabled() { return false; }
constexpr bool should_fail(const char*) { return false; }
inline void inject(const char*, ErrorCode) {}
inline void inject_alloc(const char*) {}
inline void arm(const char*, int, int = 0) {}
inline void reset() {}
inline std::uint64_t fired(const char*) { return 0; }

#endif

}  // namespace nufft::fault
