// Fault injection for the robustness and chaos test suites.
//
// Production code marks the places where a failure has a defined recovery
// path with a *named site*:
//
//   fault::inject("registry.build", ErrorCode::kBuildFailure);  // may throw
//   fault::inject_alloc("batch.private_alloc");                 // may throw bad_alloc
//   if (fault::should_fail("registry.spill.corrupt")) { ... }   // caller acts
//   fault::maybe_stall("engine.apply.stall");                   // may sleep
//
// Sites are armed either programmatically (fault::arm / fault::arm_prob,
// used by the test suite) or through the NUFFT_FAULT environment variable,
// a comma/semicolon separated list of triggers in one of two forms:
//
//   site:count[:skip[:param]]     deterministic — fire `count` times after
//                                 ignoring the first `skip` hits
//   site:p0.05[:budget[:param]]   probabilistic — each hit fires with
//                                 probability 0.05, at most `budget` times
//                                 total (0 or omitted = unlimited)
//
// `param` is a site-defined integer the firing code can read back (e.g. the
// stall duration in milliseconds for maybe_stall sites). Probabilistic draws
// come from a process-wide PRNG seeded by NUFFT_FAULT_SEED (default 1), so a
// chaos run is reproducible given the same seed and thread interleaving.
//
// The whole facility compiles away unless the NUFFT_FAULT_INJECT CMake
// option defines the macro of the same name: in release builds every call
// below is a constant-false / empty inline and the named sites cost nothing.
#pragma once

#include <cstdint>

#include "common/error.hpp"

namespace nufft::fault {

#if defined(NUFFT_FAULT_INJECT)

/// True in builds that compile the injection hooks.
constexpr bool enabled() { return true; }

/// Consume one trigger at `site`; true when the site is armed and fires.
bool should_fail(const char* site);

/// Throw Error(code) when `site` fires.
void inject(const char* site, ErrorCode code);

/// Throw std::bad_alloc when `site` fires — stands in for a real allocation
/// failure on the path that owns the site.
void inject_alloc(const char* site);

/// Sleep for the site's `param` milliseconds (default 50) when `site` fires —
/// stands in for a wedged computation so watchdog/timeout paths can be
/// exercised without hand-written sleeps in production code.
void maybe_stall(const char* site);

/// Arm `site` to fire `count` times after skipping its next `skip` hits.
/// `param` is stored verbatim for the firing code (see maybe_stall).
void arm(const char* site, int count, int skip = 0, int param = 0);

/// Arm `site` to fire each hit with probability `prob` (clamped to [0,1]),
/// at most `budget` times total (budget <= 0 = unlimited).
void arm_prob(const char* site, double prob, int budget = 0, int param = 0);

/// Disarm every site and zero the hit counters (NUFFT_FAULT and
/// NUFFT_FAULT_SEED are re-read on the next hit).
void reset();

/// How many times `site` has fired since the last reset().
std::uint64_t fired(const char* site);

/// Total fires across all sites since the last reset().
std::uint64_t fired_total();

#else

constexpr bool enabled() { return false; }
constexpr bool should_fail(const char*) { return false; }
inline void inject(const char*, ErrorCode) {}
inline void inject_alloc(const char*) {}
inline void maybe_stall(const char*) {}
inline void arm(const char*, int, int = 0, int = 0) {}
inline void arm_prob(const char*, double, int = 0, int = 0) {}
inline void reset() {}
inline std::uint64_t fired(const char*) { return 0; }
inline std::uint64_t fired_total() { return 0; }

#endif

}  // namespace nufft::fault
