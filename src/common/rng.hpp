// Deterministic pseudo-random number generation.
//
// Dataset generation and tests must be bit-reproducible across platforms and
// standard-library versions, so the library carries its own small PRNG
// (xoshiro256**, public domain algorithm by Blackman & Vigna) and its own
// uniform/normal transforms instead of <random> distributions, whose output
// is implementation-defined.
#pragma once

#include <cstdint>

namespace nufft {

/// xoshiro256** — fast, high-quality 64-bit PRNG with a 256-bit state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Uniform 64-bit integer.
  std::uint64_t next_u64();

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box–Muller (deterministic, no cached spare).
  double normal();

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Uniform integer in [0, n).
  std::uint64_t below(std::uint64_t n);

 private:
  std::uint64_t s_[4];
};

}  // namespace nufft
