// Fundamental value types shared across the library.
#pragma once

#include <algorithm>
#include <complex>
#include <cstdint>

#include "common/aligned.hpp"

namespace nufft {

/// The NUFFT proper runs in single precision, as in the paper (4-wide SSE).
using real_t = float;
using cfloat = std::complex<float>;
using cdouble = std::complex<double>;

/// Interleaved complex buffers. std::complex<float> has guaranteed
/// (re, im) layout, so SIMD code may reinterpret these as float lanes.
using cvecf = aligned_vector<cfloat>;
using cvecd = aligned_vector<cdouble>;
using fvec = aligned_vector<float>;
using dvec = aligned_vector<double>;

using index_t = std::int64_t;

/// Zero a complex buffer. std::complex is not trivially default-
/// constructible in the eyes of -Wclass-memaccess; fill_n compiles to the
/// same memset without the diagnostic.
template <class T>
inline void zero_complex(std::complex<T>* p, std::size_t n) {
  std::fill_n(p, n, std::complex<T>(0, 0));
}

inline constexpr double kPi = 3.14159265358979323846;
inline constexpr double kTwoPi = 2.0 * kPi;

}  // namespace nufft
