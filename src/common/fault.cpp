#include "common/fault.hpp"

#if defined(NUFFT_FAULT_INJECT)

#include <cstdlib>
#include <map>
#include <mutex>
#include <new>
#include <string>

#include "obs/metrics.hpp"

namespace nufft::fault {

namespace {

struct Site {
  int remaining = 0;        // triggers left to fire
  int skip = 0;             // hits to ignore before firing
  std::uint64_t fired = 0;  // triggers consumed so far
};

struct Registry {
  std::mutex mu;
  std::map<std::string, Site> sites;
  bool env_parsed = false;

  // NUFFT_FAULT="site:count[:skip][,site2:count2...]" — parsed once per
  // reset() epoch so tests that call reset() re-read the environment.
  void parse_env_locked() {
    env_parsed = true;
    const char* v = std::getenv("NUFFT_FAULT");
    if (v == nullptr || *v == '\0') return;
    std::string spec(v);
    std::size_t pos = 0;
    while (pos < spec.size()) {
      std::size_t end = spec.find_first_of(",;", pos);
      if (end == std::string::npos) end = spec.size();
      const std::string item = spec.substr(pos, end - pos);
      pos = end + 1;
      const std::size_t c1 = item.find(':');
      if (c1 == std::string::npos || c1 == 0) continue;
      const std::string name = item.substr(0, c1);
      const std::size_t c2 = item.find(':', c1 + 1);
      Site s;
      s.remaining = std::atoi(item.c_str() + c1 + 1);
      if (c2 != std::string::npos) s.skip = std::atoi(item.c_str() + c2 + 1);
      if (s.remaining > 0) sites[name] = s;
    }
  }

  // True when the named site is armed and a trigger fires on this hit.
  bool hit(const char* site) {
    std::lock_guard<std::mutex> lock(mu);
    if (!env_parsed) parse_env_locked();
    auto it = sites.find(site);
    if (it == sites.end() || it->second.remaining <= 0) return false;
    if (it->second.skip > 0) {
      --it->second.skip;
      return false;
    }
    --it->second.remaining;
    ++it->second.fired;
    if (obs::metrics_enabled()) {
      obs::MetricsRegistry::instance().counter("fault.fired." + it->first).add(1);
    }
    return true;
  }
};

Registry& registry() {
  static Registry r;
  return r;
}

}  // namespace

bool should_fail(const char* site) { return registry().hit(site); }

void inject(const char* site, ErrorCode code) {
  if (registry().hit(site)) {
    throw Error(std::string("injected fault at ") + site, code);
  }
}

void inject_alloc(const char* site) {
  if (registry().hit(site)) throw std::bad_alloc();
}

void arm(const char* site, int count, int skip) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.env_parsed = true;  // explicit arming overrides the environment
  Site s;
  s.remaining = count;
  s.skip = skip;
  s.fired = r.sites.count(site) ? r.sites[site].fired : 0;
  r.sites[site] = s;
}

void reset() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.sites.clear();
  r.env_parsed = false;
}

std::uint64_t fired(const char* site) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.sites.find(site);
  return it == r.sites.end() ? 0 : it->second.fired;
}

}  // namespace nufft::fault

#endif  // NUFFT_FAULT_INJECT
