#include "common/fault.hpp"

#if defined(NUFFT_FAULT_INJECT)

#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <new>
#include <random>
#include <string>
#include <thread>

#include "obs/metrics.hpp"

namespace nufft::fault {

namespace {

struct Site {
  // Deterministic sites fire while remaining > 0 (after `skip` ignored
  // hits); probabilistic sites fire with probability `prob` per hit, capped
  // by `budget` total fires when budget > 0.
  bool probabilistic = false;
  int remaining = 0;        // deterministic: triggers left to fire
  int skip = 0;             // deterministic: hits to ignore before firing
  double prob = 0.0;        // probabilistic: per-hit fire probability
  int budget = 0;           // probabilistic: max total fires (<=0 = unlimited)
  int param = 0;            // site-defined payload (e.g. stall milliseconds)
  std::uint64_t fired = 0;  // triggers consumed so far
};

struct Registry {
  std::mutex mu;
  std::map<std::string, Site> sites;
  bool env_parsed = false;
  std::mt19937_64 rng{1};

  // NUFFT_FAULT="site:count[:skip[:param]]" or "site:p<prob>[:budget[:param]]",
  // comma/semicolon separated — parsed once per reset() epoch so tests that
  // call reset() re-read the environment. NUFFT_FAULT_SEED seeds the PRNG
  // behind probabilistic sites (default 1, so runs are reproducible).
  void parse_env_locked() {
    env_parsed = true;
    if (const char* seed = std::getenv("NUFFT_FAULT_SEED")) {
      rng.seed(static_cast<std::uint64_t>(std::strtoull(seed, nullptr, 10)));
    }
    const char* v = std::getenv("NUFFT_FAULT");
    if (v == nullptr || *v == '\0') return;
    std::string spec(v);
    std::size_t pos = 0;
    while (pos < spec.size()) {
      std::size_t end = spec.find_first_of(",;", pos);
      if (end == std::string::npos) end = spec.size();
      const std::string item = spec.substr(pos, end - pos);
      pos = end + 1;
      const std::size_t c1 = item.find(':');
      if (c1 == std::string::npos || c1 == 0) continue;
      const std::string name = item.substr(0, c1);
      const std::size_t c2 = item.find(':', c1 + 1);
      const std::size_t c3 = c2 == std::string::npos ? std::string::npos : item.find(':', c2 + 1);
      Site s;
      if (item[c1 + 1] == 'p') {
        s.probabilistic = true;
        s.prob = std::atof(item.c_str() + c1 + 2);
        if (s.prob < 0.0) s.prob = 0.0;
        if (s.prob > 1.0) s.prob = 1.0;
        if (c2 != std::string::npos) s.budget = std::atoi(item.c_str() + c2 + 1);
        if (c3 != std::string::npos) s.param = std::atoi(item.c_str() + c3 + 1);
        if (s.prob > 0.0) sites[name] = s;
      } else {
        s.remaining = std::atoi(item.c_str() + c1 + 1);
        if (c2 != std::string::npos) s.skip = std::atoi(item.c_str() + c2 + 1);
        if (c3 != std::string::npos) s.param = std::atoi(item.c_str() + c3 + 1);
        if (s.remaining > 0) sites[name] = s;
      }
    }
  }

  // True when the named site is armed and a trigger fires on this hit.
  // When firing, *param_out (if non-null) receives the site's param.
  bool hit(const char* site, int* param_out = nullptr) {
    std::lock_guard<std::mutex> lock(mu);
    if (!env_parsed) parse_env_locked();
    auto it = sites.find(site);
    if (it == sites.end()) return false;
    Site& s = it->second;
    if (s.probabilistic) {
      if (s.budget > 0 && s.fired >= static_cast<std::uint64_t>(s.budget)) return false;
      if (std::generate_canonical<double, 53>(rng) >= s.prob) return false;
    } else {
      if (s.remaining <= 0) return false;
      if (s.skip > 0) {
        --s.skip;
        return false;
      }
      --s.remaining;
    }
    ++s.fired;
    if (param_out != nullptr) *param_out = s.param;
    if (obs::metrics_enabled()) {
      obs::MetricsRegistry::instance().counter("fault.fired." + it->first).add(1);
    }
    return true;
  }
};

Registry& registry() {
  static Registry r;
  return r;
}

}  // namespace

bool should_fail(const char* site) { return registry().hit(site); }

void inject(const char* site, ErrorCode code) {
  if (registry().hit(site)) {
    throw Error(std::string("injected fault at ") + site, code);
  }
}

void inject_alloc(const char* site) {
  if (registry().hit(site)) throw std::bad_alloc();
}

void maybe_stall(const char* site) {
  int ms = 0;
  if (registry().hit(site, &ms)) {
    if (ms <= 0) ms = 50;
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
  }
}

void arm(const char* site, int count, int skip, int param) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.env_parsed = true;  // explicit arming overrides the environment
  Site s;
  s.remaining = count;
  s.skip = skip;
  s.param = param;
  s.fired = r.sites.count(site) ? r.sites[site].fired : 0;
  r.sites[site] = s;
}

void arm_prob(const char* site, double prob, int budget, int param) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.env_parsed = true;
  Site s;
  s.probabilistic = true;
  s.prob = prob < 0.0 ? 0.0 : (prob > 1.0 ? 1.0 : prob);
  s.budget = budget;
  s.param = param;
  s.fired = r.sites.count(site) ? r.sites[site].fired : 0;
  r.sites[site] = s;
}

void reset() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.sites.clear();
  r.env_parsed = false;
  r.rng.seed(1);
}

std::uint64_t fired(const char* site) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  auto it = r.sites.find(site);
  return it == r.sites.end() ? 0 : it->second.fired;
}

std::uint64_t fired_total() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::uint64_t total = 0;
  for (const auto& [name, s] : r.sites) total += s.fired;
  return total;
}

}  // namespace nufft::fault

#endif  // NUFFT_FAULT_INJECT
