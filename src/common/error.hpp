// Error handling: precondition checks that throw, and debug-only assertions.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace nufft {

/// Exception type thrown by all NUFFT precondition failures.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* expr, const char* file, int line,
                                             const std::string& msg) {
  std::ostringstream os;
  os << "NUFFT_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace nufft

/// Verify a caller-facing precondition; throws nufft::Error when violated.
#define NUFFT_CHECK(expr)                                                      \
  do {                                                                         \
    if (!(expr)) ::nufft::detail::throw_check_failure(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define NUFFT_CHECK_MSG(expr, msg)                                             \
  do {                                                                         \
    if (!(expr)) {                                                             \
      std::ostringstream os_;                                                  \
      os_ << msg;                                                              \
      ::nufft::detail::throw_check_failure(#expr, __FILE__, __LINE__, os_.str()); \
    }                                                                          \
  } while (0)
