// Error handling: the library-wide error taxonomy, precondition checks that
// throw, and debug-only assertions.
//
// Every failure the library reports carries an ErrorCode so callers (and the
// exec layer's retry/quarantine machinery) can distinguish caller mistakes
// from transient faults without parsing message strings. is_retryable()
// encodes the failure model: resource exhaustion and I/O corruption may
// succeed on a retry (fresh allocation, rebuilt spill file); invalid input,
// failed builds, cancellation and expired deadlines will not.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace nufft {

/// Failure taxonomy carried by every nufft::Error.
enum class ErrorCode : int {
  kInternal = 0,          // invariant violation — a library bug
  kInvalidInput,          // caller-facing precondition failure
  kBuildFailure,          // plan construction / preprocessing failed
  kIoCorruption,          // persisted state truncated or corrupt
  kCancelled,             // job cancelled before execution
  kTimeout,               // job deadline expired
  kResourceExhausted,     // allocation or capacity failure
  kOverloaded,            // admission shed: server or tenant over capacity
  kUnavailable,           // endpoint draining, quarantined or unreachable
  kUnachievableAccuracy,  // plan(tolerance): no calibrated configuration meets it
};

/// Number of ErrorCode values. Every classification switch below must cover
/// exactly this many codes; ErrorTaxonomy.EveryCodeIsClassified
/// (tests/test_common.cpp) walks [0, kErrorCodeCount) and fails when a new
/// enum value lands without a name/retryability entry, and -Wswitch flags
/// the switches at compile time (they have no default case on purpose).
inline constexpr int kErrorCodeCount = static_cast<int>(ErrorCode::kUnachievableAccuracy) + 1;

constexpr const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kInternal: return "internal";
    case ErrorCode::kInvalidInput: return "invalid-input";
    case ErrorCode::kBuildFailure: return "build-failure";
    case ErrorCode::kIoCorruption: return "io-corruption";
    case ErrorCode::kCancelled: return "cancelled";
    case ErrorCode::kTimeout: return "timeout";
    case ErrorCode::kResourceExhausted: return "resource-exhausted";
    case ErrorCode::kOverloaded: return "overloaded";
    case ErrorCode::kUnavailable: return "unavailable";
    case ErrorCode::kUnachievableAccuracy: return "unachievable-accuracy";
  }
  return "?";
}

/// What a caller may safely do with a failed request.
enum class RetryClass {
  /// Deterministic or final: retrying the identical request is pointless
  /// (invalid input, failed build, expired deadline, internal bug).
  kTerminal,
  /// Transient: a bounded in-place retry may clear it (fresh allocation,
  /// rebuilt spill file, backlog draining below the admission caps).
  kTransient,
  /// The *request* is still viable but this channel/endpoint is not:
  /// reconnect (or reach another instance) and resubmit. Work failed this
  /// way was never completed — kCancelled from a graceful drain and
  /// kUnavailable from a draining or quarantined endpoint both promise the
  /// request did not run to completion, so an idempotent resubmission is
  /// safe (the serving layer additionally dedups by client request id).
  kAfterReconnect,
};

/// Exhaustive ErrorCode → RetryClass mapping, the failure-model contract the
/// engine retry loop, the serving admission layer and the resilient client
/// all share. Covered case-by-case so -Wswitch (and the taxonomy test)
/// breaks the build/test when a code is added without classification.
constexpr RetryClass retry_class(ErrorCode code) {
  switch (code) {
    case ErrorCode::kInternal: return RetryClass::kTerminal;
    case ErrorCode::kInvalidInput: return RetryClass::kTerminal;
    case ErrorCode::kBuildFailure: return RetryClass::kTerminal;
    case ErrorCode::kIoCorruption: return RetryClass::kTransient;
    case ErrorCode::kCancelled: return RetryClass::kAfterReconnect;
    case ErrorCode::kTimeout: return RetryClass::kTerminal;
    case ErrorCode::kResourceExhausted: return RetryClass::kTransient;
    case ErrorCode::kOverloaded: return RetryClass::kTransient;
    case ErrorCode::kUnavailable: return RetryClass::kAfterReconnect;
    // No retry or reconnect changes what the calibration table can deliver;
    // the caller must loosen the tolerance (or widen the kernel manually).
    case ErrorCode::kUnachievableAccuracy: return RetryClass::kTerminal;
  }
  return RetryClass::kTerminal;
}

/// True for failures that a bounded *in-place* retry may clear — the
/// engine's retry loop keys off this. kCancelled/kUnavailable are
/// kAfterReconnect: retrying on the same channel cannot help, but the
/// request itself remains safe to resubmit elsewhere (see RetryClass).
constexpr bool is_retryable(ErrorCode code) {
  return retry_class(code) == RetryClass::kTransient;
}

/// Exception type thrown by all NUFFT failures.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what, ErrorCode code = ErrorCode::kInternal)
      : std::runtime_error(what), code_(code) {}

  ErrorCode code() const noexcept { return code_; }

 private:
  ErrorCode code_;
};

namespace detail {
[[noreturn]] inline void throw_check_failure(const char* expr, const char* file, int line,
                                             const std::string& msg,
                                             ErrorCode code = ErrorCode::kInvalidInput) {
  std::ostringstream os;
  os << "NUFFT_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str(), code);
}
}  // namespace detail

}  // namespace nufft

/// Verify a caller-facing precondition; throws nufft::Error
/// (ErrorCode::kInvalidInput) when violated.
#define NUFFT_CHECK(expr)                                                      \
  do {                                                                         \
    if (!(expr)) ::nufft::detail::throw_check_failure(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define NUFFT_CHECK_MSG(expr, msg)                                             \
  do {                                                                         \
    if (!(expr)) {                                                             \
      std::ostringstream os_;                                                  \
      os_ << msg;                                                              \
      ::nufft::detail::throw_check_failure(#expr, __FILE__, __LINE__, os_.str()); \
    }                                                                          \
  } while (0)

/// As NUFFT_CHECK_MSG, but with an explicit ErrorCode.
#define NUFFT_CHECK_CODE(expr, code, msg)                                      \
  do {                                                                         \
    if (!(expr)) {                                                             \
      std::ostringstream os_;                                                  \
      os_ << msg;                                                              \
      ::nufft::detail::throw_check_failure(#expr, __FILE__, __LINE__, os_.str(), (code)); \
    }                                                                          \
  } while (0)

/// Debug-only invariant assertion for hot paths where a release-mode check
/// would cost. Active in non-NDEBUG builds and in sanitizer builds
/// (NUFFT_SANITIZE defines NUFFT_DEBUG_ASSERTS so the fuzz suite checks
/// invariants under ASan/UBSan/TSan); compiles to nothing otherwise.
/// Violations are library bugs and throw with ErrorCode::kInternal.
#if !defined(NDEBUG) || defined(NUFFT_DEBUG_ASSERTS)
#define NUFFT_DASSERT(expr)                                                    \
  do {                                                                         \
    if (!(expr))                                                               \
      ::nufft::detail::throw_check_failure(#expr, __FILE__, __LINE__,          \
                                           "internal invariant violated",      \
                                           ::nufft::ErrorCode::kInternal);     \
  } while (0)
#else
#define NUFFT_DASSERT(expr) \
  do {                      \
  } while (0)
#endif
