#include "common/rng.hpp"

#include <cmath>

namespace nufft {

namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64: seeds the xoshiro state from a single 64-bit value.
inline std::uint64_t splitmix64(std::uint64_t& x) {
  std::uint64_t z = (x += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // Use the high 53 bits for a uniform double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

double Rng::normal() {
  // Box–Muller; draw until u1 > 0 to keep log() finite.
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.28318530717958647692 * u2);
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

std::uint64_t Rng::below(std::uint64_t n) {
  // Rejection sampling for an unbiased bounded draw.
  if (n == 0) return 0;
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  std::uint64_t v;
  do {
    v = next_u64();
  } while (v >= limit);
  return v % n;
}

}  // namespace nufft
