// Environment-variable helpers shared by the benchmark harness.
//
// Every bench binary honours:
//   NUFFT_PAPER=1       run full paper-scale problem sizes
//   NUFFT_THREADS=n     software thread count (default: hardware_concurrency)
//   NUFFT_BENCH_REPS=n  repetitions per measurement
#pragma once

#include <cstdint>
#include <string>

namespace nufft {

/// Integer environment variable with a default; returns `fallback` when the
/// variable is unset or unparsable.
std::int64_t env_int(const char* name, std::int64_t fallback);

/// True when the variable is set to a non-empty value other than "0".
bool env_flag(const char* name);

/// Thread count used by benches: NUFFT_THREADS, else hardware_concurrency().
int bench_threads();

/// True when NUFFT_PAPER requests full paper-scale problem sizes.
bool paper_scale();

/// Repetitions for a bench measurement (NUFFT_BENCH_REPS, else `fallback`).
int bench_reps(int fallback);

}  // namespace nufft
