// Aligned allocation support for SIMD-friendly containers.
//
// All bulk numeric storage in this library (grids, sample arrays, kernel
// tables) is held in `aligned_vector<T>`, a std::vector with a 64-byte
// aligned allocator. 64 bytes covers SSE/AVX requirements and matches the
// cache-line size of every x86 part the paper targets, so adjacent tasks
// never false-share a partially owned line at buffer boundaries.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <new>
#include <vector>

namespace nufft {

inline constexpr std::size_t kCacheLineBytes = 64;

/// Allocate `bytes` of storage aligned to `alignment` (power of two).
/// Throws std::bad_alloc on failure. Pair with aligned_free().
void* aligned_malloc(std::size_t bytes, std::size_t alignment = kCacheLineBytes);

/// Release storage obtained from aligned_malloc().
void aligned_free(void* p) noexcept;

/// Minimal C++17 allocator wrapping aligned_malloc/aligned_free.
template <class T, std::size_t Alignment = kCacheLineBytes>
struct AlignedAllocator {
  using value_type = T;
  static constexpr std::size_t alignment = Alignment;

  // Explicit rebind: the default allocator_traits machinery cannot rebind
  // through a non-type template parameter.
  template <class U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  AlignedAllocator() noexcept = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  [[nodiscard]] T* allocate(std::size_t n) {
    if (n > std::numeric_limits<std::size_t>::max() / sizeof(T)) throw std::bad_alloc();
    return static_cast<T*>(aligned_malloc(n * sizeof(T), Alignment));
  }
  void deallocate(T* p, std::size_t) noexcept { aligned_free(p); }

  template <class U>
  bool operator==(const AlignedAllocator<U, Alignment>&) const noexcept {
    return true;
  }
  template <class U>
  bool operator!=(const AlignedAllocator<U, Alignment>&) const noexcept {
    return false;
  }
};

template <class T>
using aligned_vector = std::vector<T, AlignedAllocator<T>>;

/// True when `p` satisfies `alignment`.
inline bool is_aligned(const void* p, std::size_t alignment = kCacheLineBytes) noexcept {
  return (reinterpret_cast<std::uintptr_t>(p) & (alignment - 1)) == 0;
}

}  // namespace nufft
