// Delta preprocessing for dynamic trajectories (DESIGN.md §15).
//
// A frame-to-frame trajectory update usually moves a small fraction of the
// samples; the plan's partition layout, task graph and the vast majority of
// its per-task sample ranges survive unchanged. update_preprocessed() diffs
// the new coordinates against the plan, re-bins only samples whose task
// assignment changed, re-sorts/re-gathers only the dirty tasks, and
// block-copies every clean task at its (possibly shifted) new offset.
//
// Bit-identity argument, stage by stage:
//  * moved = bitwise coordinate inequality, so an unmoved sample's gathered
//    coordinate bytes are exactly what a cold gather would write (a -0.0 →
//    +0.0 flip counts as moved; `==` would miss it);
//  * the per-cell histogram counts are integers patched ±1 per moved sample
//    using the cold pass's exact cell formula, so the re-run boundary walk
//    (make_variable_layout_from_hists — the same function the cold build
//    calls) sees the same cumulative counts a cold histogram would produce;
//    any boundary difference falls back to a rebuild, so a kWarm result
//    always has the cold layout;
//  * task membership is a pure function of (layout, coordinate), re-evaluated
//    with PartitionLayout::locate for moved samples only;
//  * within a task the reordered position is the (reorder key, original
//    index) total order — algorithm-independent. A dirty task's retained
//    members have bitwise-unchanged coordinates (every moved sample is
//    treated as departed + arrived), so their old order is already sorted;
//    sorting the short incoming run and merging the two reproduces the cold
//    radix sort's permutation exactly. A clean task's old order (same
//    members, same keys) is already correct as a block.
#include <algorithm>
#include <atomic>
#include <cstring>
#include <numeric>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "core/preprocess.hpp"
#include "core/preprocess_detail.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "parallel/partitioner.hpp"
#include "parallel/thread_pool.hpp"

namespace nufft {

namespace {

// Restored plans (plan-cache blobs) carry no delta state; everything it
// holds is recoverable from the plan itself. task_of inverts the per-task
// sample ranges; the cell counts re-run the histogram on the *reordered*
// coordinates — integer counts are order-invariant, so they equal the cold
// pass's histogram of the original order.
void rebuild_delta_state(Preprocessed& pp, const GridDesc& g, const PlanConfig& cfg,
                         ThreadPool& pool) {
  pp.delta = std::make_unique<PlanDeltaState>();
  PlanDeltaState& ds = *pp.delta;
  const auto count = static_cast<index_t>(pp.orig_index.size());
  const int ntasks = static_cast<int>(pp.tasks.size());
  ds.task_of.resize(static_cast<std::size_t>(count));
  pool.parallel_for(ntasks, [&](index_t kb, index_t ke) {
    for (index_t ki = kb; ki < ke; ++ki) {
      const auto k = static_cast<std::int32_t>(ki);
      const ConvTask& task = pp.tasks[static_cast<std::size_t>(ki)];
      for (index_t pos = task.begin; pos < task.end; ++pos) {
        ds.task_of[static_cast<std::size_t>(pp.orig_index[static_cast<std::size_t>(pos)])] = k;
      }
    }
  });
  if (cfg.variable_partitions) {
    for (int d = 0; d < g.dim; ++d) {
      const auto sd = static_cast<std::size_t>(d);
      const auto hist = cumulative_histogram(pp.coords[sd].data(), count, g.m[sd], &pool);
      auto& cc = ds.cell_counts[sd];
      cc.resize(static_cast<std::size_t>(g.m[sd]));
      for (index_t i = 0; i < g.m[sd]; ++i) {
        cc[static_cast<std::size_t>(i)] =
            hist[static_cast<std::size_t>(i) + 1] - hist[static_cast<std::size_t>(i)];
      }
    }
  }
  // Original-order snapshot: scatter the reordered coordinates back through
  // orig_index.
  for (int d = 0; d < g.dim; ++d) {
    ds.prev_coords[static_cast<std::size_t>(d)].resize(static_cast<std::size_t>(count));
  }
  pool.parallel_for(count, [&](index_t begin, index_t end) {
    for (index_t pos = begin; pos < end; ++pos) {
      const index_t orig = pp.orig_index[static_cast<std::size_t>(pos)];
      for (int d = 0; d < g.dim; ++d) {
        const auto sd = static_cast<std::size_t>(d);
        ds.prev_coords[sd][static_cast<std::size_t>(orig)] = pp.coords[sd][static_cast<std::size_t>(pos)];
      }
    }
  });
  // Sorted keys are a pure function of the reordered coordinates, so they
  // regenerate position-indexed without re-running any sort.
  ds.keys.assign(static_cast<std::size_t>(count), 0);
  if (cfg.reorder) {
    const index_t tile = std::max<index_t>(1, cfg.reorder_tile);
    const detail::KeyPacking pk = detail::make_key_packing(g.dim, g.m, tile);
    pool.parallel_for(count, [&](index_t begin, index_t end) {
      for (index_t pos = begin; pos < end; ++pos) {
        std::array<index_t, 3> cell{0, 0, 0};
        for (int d = 0; d < g.dim; ++d) {
          const auto sd = static_cast<std::size_t>(d);
          cell[sd] = std::clamp<index_t>(
              static_cast<index_t>(pp.coords[sd][static_cast<std::size_t>(pos)]), 0,
              g.m[sd] - 1);
        }
        ds.keys[static_cast<std::size_t>(pos)] = detail::reorder_key(cell, g.dim, tile, pk);
      }
    });
  }
}

inline index_t cell_of(float x, index_t extent) {
  return std::clamp<index_t>(static_cast<index_t>(x), 0, extent - 1);
}

}  // namespace

Preprocessed clone_preprocessed(const Preprocessed& src) {
  Preprocessed out;
  out.layout = src.layout;
  if (src.graph != nullptr) out.graph = std::make_unique<TaskGraph>(out.layout);
  out.tasks = src.tasks;
  out.weights = src.weights;
  out.privatized = src.privatized;
  out.privatization_threshold = src.privatization_threshold;
  out.coords = src.coords;
  out.orig_index = src.orig_index;
  if (src.delta != nullptr) {
    out.delta = std::make_unique<PlanDeltaState>();
    out.delta->task_of = src.delta->task_of;
    out.delta->cell_counts = src.delta->cell_counts;
    out.delta->prev_coords = src.delta->prev_coords;
    out.delta->keys = src.delta->keys;
  }
  out.stats = src.stats;
  return out;
}

UpdatePath update_preprocessed(Preprocessed& pp, const GridDesc& g,
                               const datasets::SampleSet& new_samples, const PlanConfig& cfg,
                               ThreadPool& pool, const UpdateOptions& opts) {
  Timer total;
  obs::Span span("prep.update", "prep", new_samples.count());
  const int dim = g.dim;
  const index_t count = new_samples.count();

  const auto rebuild = [&]() {
    pp = preprocess(g, new_samples, cfg, pool);
    obs::count("nufft.plan.update_fallbacks");
    return UpdatePath::kRebuild;
  };

  // A changed sample count changes every downstream offset and the
  // privatization threshold — nothing worth diffing survives.
  if (new_samples.dim != dim || count != static_cast<index_t>(pp.orig_index.size())) {
    return rebuild();
  }
  if (count == 0) {
    obs::count("nufft.plan.update_noops");
    return UpdatePath::kNoop;
  }
  if (pp.delta == nullptr) rebuild_delta_state(pp, g, cfg, pool);
  PlanDeltaState& ds = *pp.delta;

  std::array<const float*, 3> nptr{nullptr, nullptr, nullptr};
  for (int d = 0; d < dim; ++d) {
    nptr[static_cast<std::size_t>(d)] = new_samples.coords[static_cast<std::size_t>(d)].data();
  }

  // --- diff: find bitwise-moved samples (parallel, per-chunk lists). Both
  // sides are in original sample order (delta keeps prev_coords exactly for
  // this), so the pass streams contiguous arrays instead of chasing
  // orig_index indirections through the reordered copy. ---
  const int nchunks = static_cast<int>(std::min<index_t>(count, 4 * pool.size()));
  std::vector<std::vector<index_t>> chunk_moved(static_cast<std::size_t>(nchunks));
  pool.for_static_chunks(count, nchunks, [&](int c, index_t begin, index_t end) {
    auto& mv = chunk_moved[static_cast<std::size_t>(c)];
    for (index_t orig = begin; orig < end; ++orig) {
      for (int d = 0; d < dim; ++d) {
        const auto sd = static_cast<std::size_t>(d);
        std::uint32_t oldbits = 0;
        std::uint32_t newbits = 0;
        std::memcpy(&oldbits, &ds.prev_coords[sd][static_cast<std::size_t>(orig)], sizeof(float));
        std::memcpy(&newbits, &nptr[sd][orig], sizeof(float));
        if (oldbits != newbits) {
          mv.push_back(orig);
          break;
        }
      }
    }
  });
  index_t nmoved = 0;
  for (const auto& mv : chunk_moved) nmoved += static_cast<index_t>(mv.size());
  if (nmoved == 0) {
    obs::count("nufft.plan.update_noops");
    return UpdatePath::kNoop;
  }
  if (static_cast<double>(nmoved) > opts.rebuild_fraction * static_cast<double>(count)) {
    return rebuild();
  }

  // --- layout check: patch the histograms, re-run the boundary walk ---
  // Fixed layouts are geometry-only and can never move. Variable layouts
  // fall back on any boundary change: a moved boundary re-bins every sample
  // near it, exactly the regime where the cold pipeline wins anyway.
  const auto wceil = static_cast<index_t>(std::ceil(cfg.kernel_radius));
  const index_t min_width = 2 * wceil + 1;
  if (cfg.variable_partitions) {
    for (const auto& mv : chunk_moved) {
      for (const index_t orig : mv) {
        for (int d = 0; d < dim; ++d) {
          const auto sd = static_cast<std::size_t>(d);
          const index_t oc = cell_of(ds.prev_coords[sd][static_cast<std::size_t>(orig)], g.m[sd]);
          const index_t nc = cell_of(nptr[sd][orig], g.m[sd]);
          if (oc != nc) {
            --ds.cell_counts[sd][static_cast<std::size_t>(oc)];
            ++ds.cell_counts[sd][static_cast<std::size_t>(nc)];
          }
        }
      }
    }
    std::array<std::vector<index_t>, 3> hists;
    for (int d = 0; d < dim; ++d) {
      const auto sd = static_cast<std::size_t>(d);
      hists[sd].resize(static_cast<std::size_t>(g.m[sd]) + 1);
      hists[sd][0] = 0;
      for (index_t i = 0; i < g.m[sd]; ++i) {
        hists[sd][static_cast<std::size_t>(i) + 1] =
            hists[sd][static_cast<std::size_t>(i)] + ds.cell_counts[sd][static_cast<std::size_t>(i)];
      }
    }
    const int target = cfg.partitions_per_dim > 0
                           ? cfg.partitions_per_dim
                           : detail::auto_partitions_per_dim(cfg.threads, dim);
    const PartitionLayout nl =
        make_variable_layout_from_hists(dim, g.m, hists, count, target, min_width);
    bool same = nl.dim == pp.layout.dim;
    for (int d = 0; same && d < dim; ++d) {
      const auto sd = static_cast<std::size_t>(d);
      same = nl.num_parts[sd] == pp.layout.num_parts[sd] && nl.bounds[sd] == pp.layout.bounds[sd];
    }
    // The patched counts describe the new samples either way: a rebuild
    // recomputes them from scratch, a warm continue keeps them as the next
    // frame's baseline.
    if (!same) return rebuild();
  }

  // --- re-bin moved samples, mark dirty tasks (serial: the moved set is
  // small by the threshold above, and the marks/arrival lists would race) ---
  // Every moved sample is treated as a departure + arrival even when it stays
  // in its task: the retained (unmoved) members of a dirty task then have
  // bitwise-unchanged coordinates — hence unchanged reorder keys — so their
  // old order is already the new sorted order, and the rebuild below only
  // sorts the short incoming list and merges.
  const int ntasks = static_cast<int>(pp.tasks.size());
  std::vector<char> dirty(static_cast<std::size_t>(ntasks), 0);
  std::vector<char> moved_flag(static_cast<std::size_t>(count), 0);
  std::vector<index_t> departures(static_cast<std::size_t>(ntasks), 0);
  std::vector<std::vector<index_t>> arrivals(static_cast<std::size_t>(ntasks));
  index_t rebinned = 0;
  for (const auto& mv : chunk_moved) {
    for (const index_t orig : mv) {
      const auto ot = ds.task_of[static_cast<std::size_t>(orig)];
      std::array<int, 3> pc{0, 0, 0};
      for (int d = 0; d < dim; ++d) {
        pc[static_cast<std::size_t>(d)] =
            pp.layout.locate(d, nptr[static_cast<std::size_t>(d)][orig]);
      }
      const int nt = pp.layout.flatten(pc);
      dirty[static_cast<std::size_t>(ot)] = 1;
      dirty[static_cast<std::size_t>(nt)] = 1;
      moved_flag[static_cast<std::size_t>(orig)] = 1;
      ds.task_of[static_cast<std::size_t>(orig)] = static_cast<std::int32_t>(nt);
      arrivals[static_cast<std::size_t>(nt)].push_back(orig);
      ++departures[static_cast<std::size_t>(ot)];
      if (nt != ot) ++rebinned;
    }
  }

  // --- new per-task offsets ---
  std::vector<index_t> offset(static_cast<std::size_t>(ntasks) + 1, 0);
  for (int k = 0; k < ntasks; ++k) {
    const auto sk = static_cast<std::size_t>(k);
    const index_t cnt = pp.tasks[sk].count() - departures[sk] +
                        static_cast<index_t>(arrivals[sk].size());
    offset[sk + 1] = offset[sk] + cnt;
  }

  // --- rebuild dirty tasks, block-copy clean ones (parallel, largest-first
  // like the cold reorder pass; each task writes a disjoint scratch range) ---
  for (int d = 0; d < dim; ++d) {
    ds.coords_scratch[static_cast<std::size_t>(d)].resize(static_cast<std::size_t>(count));
  }
  ds.orig_scratch.resize(static_cast<std::size_t>(count));
  ds.keys_scratch.resize(static_cast<std::size_t>(count));
  const index_t tile = std::max<index_t>(1, cfg.reorder_tile);
  const detail::KeyPacking pk =
      cfg.reorder ? detail::make_key_packing(dim, g.m, tile) : detail::KeyPacking{};
  std::vector<int> order(static_cast<std::size_t>(ntasks));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    const index_t ca = offset[static_cast<std::size_t>(a) + 1] - offset[static_cast<std::size_t>(a)];
    const index_t cb = offset[static_cast<std::size_t>(b) + 1] - offset[static_cast<std::size_t>(b)];
    return ca != cb ? ca > cb : a < b;
  });
  int dirty_tasks = 0;
  for (const char f : dirty) dirty_tasks += f;
  std::atomic<int> next{0};
  pool.run_on_all([&](int) {
    std::vector<detail::KeyIdx> buf;
    std::vector<index_t> members;
    for (;;) {
      const int j = next.fetch_add(1, std::memory_order_relaxed);
      if (j >= ntasks) break;
      const int k = order[static_cast<std::size_t>(j)];
      const auto sk = static_cast<std::size_t>(k);
      const index_t nb = offset[sk];
      const index_t ncnt = offset[sk + 1] - nb;
      if (ncnt == 0) continue;
      if (dirty[sk] == 0) {
        // Same members, bitwise-same coordinates, same keys — the old
        // segment is already in the (key, idx) order; only its base offset
        // may have shifted.
        const index_t ob = pp.tasks[sk].begin;
        std::copy_n(pp.orig_index.begin() + ob, ncnt, ds.orig_scratch.begin() + nb);
        std::copy_n(ds.keys.begin() + ob, ncnt, ds.keys_scratch.begin() + nb);
        for (int d = 0; d < dim; ++d) {
          const auto sd = static_cast<std::size_t>(d);
          std::copy_n(pp.coords[sd].begin() + ob, ncnt, ds.coords_scratch[sd].begin() + nb);
        }
        continue;
      }
      // Membership = retained old members (unmoved) plus the incoming list
      // re-binned into k above (which includes within-task movers). Retained
      // coordinates are bitwise-unchanged, so their keys — and hence their
      // old relative order — are already correct; only the short incoming
      // list is sorted, then the two runs merge. (key, idx) is a total
      // order, so the merge of two disjoint sorted runs lands on the cold
      // radix sort's exact permutation. Without cfg.reorder every key is 0
      // and the same merge degenerates to the cold stable counting sort's
      // original-index order.
      //
      // Retained keys and coordinates both come from the old gathered arrays
      // at their old positions (bitwise-equal to the new ones by definition
      // of retained), so the hot loops stream pp.coords sequentially; only
      // the short incoming run touches nptr at random.
      members.clear();  // old reordered positions of the retained run
      buf.resize(static_cast<std::size_t>(ncnt));
      index_t nret = 0;
      for (index_t i = pp.tasks[sk].begin; i < pp.tasks[sk].end; ++i) {
        const index_t orig = pp.orig_index[static_cast<std::size_t>(i)];
        if (moved_flag[static_cast<std::size_t>(orig)] != 0) continue;
        // A retained sample's key is bitwise-reproducible from its unchanged
        // coordinates — the delta state keeps the sorted key array exactly so
        // this is one sequential read instead of a div/mod-heavy recompute.
        buf[static_cast<std::size_t>(nret)] = {ds.keys[static_cast<std::size_t>(i)], orig};
        members.push_back(i);
        ++nret;
      }
      const auto& incoming = arrivals[sk];
      const auto ninc = static_cast<index_t>(incoming.size());
      for (index_t i = 0; i < ninc; ++i) {
        const index_t orig = incoming[static_cast<std::size_t>(i)];
        std::uint64_t key = 0;
        if (cfg.reorder) {
          std::array<index_t, 3> cell{0, 0, 0};
          for (int d = 0; d < dim; ++d) {
            const auto sd = static_cast<std::size_t>(d);
            cell[sd] = cell_of(nptr[sd][orig], g.m[sd]);
          }
          key = detail::reorder_key(cell, dim, tile, pk);
        }
        buf[static_cast<std::size_t>(nret + i)] = {key, orig};
      }
      detail::sort_task_small(buf.data() + nret, ninc);
      // Merge, emitting coordinates as it goes: retained coords copy from
      // the old arrays at their old positions, incoming from the new set.
      const auto emit_retained = [&](index_t a, index_t w) {
        ds.orig_scratch[static_cast<std::size_t>(w)] = buf[static_cast<std::size_t>(a)].idx;
        ds.keys_scratch[static_cast<std::size_t>(w)] = buf[static_cast<std::size_t>(a)].key;
        const auto op = static_cast<std::size_t>(members[static_cast<std::size_t>(a)]);
        for (int d = 0; d < dim; ++d) {
          const auto sd = static_cast<std::size_t>(d);
          ds.coords_scratch[sd][static_cast<std::size_t>(w)] = pp.coords[sd][op];
        }
      };
      const auto emit_incoming = [&](index_t b, index_t w) {
        const index_t orig = buf[static_cast<std::size_t>(b)].idx;
        ds.orig_scratch[static_cast<std::size_t>(w)] = orig;
        ds.keys_scratch[static_cast<std::size_t>(w)] = buf[static_cast<std::size_t>(b)].key;
        for (int d = 0; d < dim; ++d) {
          const auto sd = static_cast<std::size_t>(d);
          ds.coords_scratch[sd][static_cast<std::size_t>(w)] = nptr[sd][orig];
        }
      };
      index_t a = 0;
      index_t b = nret;
      index_t w = nb;
      while (a < nret && b < ncnt) {
        const detail::KeyIdx& ka = buf[static_cast<std::size_t>(a)];
        const detail::KeyIdx& kb = buf[static_cast<std::size_t>(b)];
        if (ka.key != kb.key ? ka.key < kb.key : ka.idx < kb.idx) {
          emit_retained(a++, w++);
        } else {
          emit_incoming(b++, w++);
        }
      }
      for (; a < nret; ++a) emit_retained(a, w++);
      for (; b < ncnt; ++b) emit_incoming(b, w++);
    }
  });

  // --- publish: swap the double buffers, patch the task table in place ---
  // (the old arrays become next frame's scratch — steady state allocates
  // nothing). Layout, graph and boxes are untouched by construction.
  pp.orig_index.swap(ds.orig_scratch);
  ds.keys.swap(ds.keys_scratch);
  for (int d = 0; d < dim; ++d) {
    pp.coords[static_cast<std::size_t>(d)].swap(ds.coords_scratch[static_cast<std::size_t>(d)]);
  }
  int privatized_tasks = 0;
  for (int k = 0; k < ntasks; ++k) {
    const auto sk = static_cast<std::size_t>(k);
    pp.tasks[sk].begin = offset[sk];
    pp.tasks[sk].end = offset[sk + 1];
    const index_t cnt = pp.tasks[sk].count();
    pp.weights[sk] = cnt;
    // The Eq. 6 threshold depends only on (count, threads, dim, factor) —
    // all unchanged — so only the per-task counts can flip a mark.
    const bool priv =
        cfg.selective_privatization && cnt > pp.privatization_threshold && cfg.threads > 1;
    pp.privatized[sk] = priv ? 1 : 0;
    privatized_tasks += priv ? 1 : 0;
  }
  // Bring the original-order snapshot up to date for the next frame's diff —
  // only the moved samples differ from it.
  for (const auto& mv : chunk_moved) {
    for (const index_t orig : mv) {
      for (int d = 0; d < dim; ++d) {
        const auto sd = static_cast<std::size_t>(d);
        ds.prev_coords[sd][static_cast<std::size_t>(orig)] = nptr[sd][orig];
      }
    }
  }

  pp.stats = PreprocessStats{};
  pp.stats.threads_used = pool.size();
  pp.stats.tasks = ntasks;
  pp.stats.privatized_tasks = privatized_tasks;
  pp.stats.warm_update = true;
  pp.stats.rebinned_samples = rebinned;
  pp.stats.dirty_tasks = dirty_tasks;
  pp.stats.update_s = total.seconds();
  obs::count("nufft.plan.updates");
  obs::observe_ns("prep_update_ns", static_cast<std::uint64_t>(pp.stats.update_s * 1e9));
  return UpdatePath::kWarm;
}

}  // namespace nufft
