// Backend dispatch registry for the convolution hot path.
//
// The paper's core claim is that spreading/interpolation dominates NUFFT
// runtime and is won or lost in the inner loop. The generic path
// (core/convolution.cpp + the per-sample `switch (mode)` in core/nufft.cpp)
// is generic over (backend, dim, W, evaluator); this registry holds
// pre-instantiated template variants for the hot combinations so a plan can
// bind the whole (Part 1 window + Part 2 gather/scatter) sample loop to one
// function pointer at construction time:
//
//   key = (backend ∈ {scalar, SSE, AVX2},
//          dim ∈ {1, 2, 3},
//          width2 = 2W ∈ {4, 5, 6, 7, 8}   — the calibrated widths of
//                                            core/tolerance.cpp,
//          evaluator ∈ {LUT, Horner})
//
// Selection happens once in the Nufft constructor (after the tolerance and
// ISA resolution), is recorded in PlanStats / the plan-cache blob / an obs
// counter, and falls back to the generic loop for every uncovered shape
// (non-half-integer W, W outside the calibrated set, dim > 3, or the
// `PlanConfig::specialize_conv = false` ablation). Specialized and generic
// paths are bit-identical by contract — enforced by the `dispatch` test
// label — so the fallback is a pure performance decision.
//
// Adding a backend (AVX-512, fp64, a bin-sorted GPU-style path) means: a new
// ConvBackend enumerator, one conv_variants_<backend>.cpp TU defining
// append_<backend>_variants() (compiled at the *baseline* ISA — see the
// FP-contraction note in conv_variants.hpp), and a line in the ConvDispatch
// constructor. Call sites never change. See DESIGN.md §14.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "core/convolution.hpp"
#include "core/grid.hpp"

namespace nufft {

struct PlanConfig;

/// Part-2 instruction set of a registered variant. Matches the resolution
/// of Nufft::ConvMode (use_simd / isa / CPU) one-to-one.
enum class ConvBackend : std::uint8_t { kScalar = 0, kSse = 1, kAvx2 = 2 };

const char* conv_backend_name(ConvBackend b);

/// Registry key: one entry per (backend, dim, 2W, evaluator) combination.
struct ConvVariantKey {
  ConvBackend backend = ConvBackend::kScalar;
  std::uint8_t dim = 0;     // 1..3
  std::uint8_t width2 = 0;  // 2·kernel_radius, exact
  kernels::KernelEval eval = kernels::KernelEval::kLut;

  /// Packed identity, stable across runs (recorded in PlanStats and usable
  /// in logs/benches): backend<<24 | dim<<16 | width2<<8 | eval.
  std::uint32_t id() const {
    return (static_cast<std::uint32_t>(backend) << 24) |
           (static_cast<std::uint32_t>(dim) << 16) |
           (static_cast<std::uint32_t>(width2) << 8) | static_cast<std::uint32_t>(eval);
  }

  bool operator==(const ConvVariantKey& o) const {
    return backend == o.backend && dim == o.dim && width2 == o.width2 && eval == o.eval;
  }
};

/// PlanStats::conv_variant_id of a plan running the generic loop.
inline constexpr std::uint32_t kGenericConvVariantId = 0xFFFFFFFFu;

/// Everything a specialized sample-range call needs. Mirrors the captures of
/// the generic convolve_range lambda in core/nufft.cpp: the reordered
/// coordinate arrays, the reordered→original index map, one task's sample
/// range, and (for privatized tasks) the box origin for index rebasing.
struct ConvRange {
  const GridDesc* g = nullptr;
  WindowEval ev;                                        // lut or horner set
  std::array<const float*, 3> coords{nullptr, nullptr, nullptr};
  const index_t* orig_index = nullptr;
  index_t begin = 0;
  index_t end = 0;
  /// Non-null for privatized tasks: neighbour indices are rebased to
  /// idx − box_lo[d] (box-local, never wrapping) exactly like the generic
  /// path does before scattering into the private buffer.
  const index_t* box_lo = nullptr;
};

/// Adjoint Part 1+2 over one sample range: scatter raw[orig_index[i]]·window
/// into dst.
using ConvSpreadFn = void (*)(const ConvRange&, const cfloat* raw, cfloat* dst,
                              const std::array<index_t, 3>& strides);
/// Forward Part 1+2 over one sample range: gather the weighted neighbour sum
/// of each sample from grid into out[orig_index[i]].
using ConvInterpFn = void (*)(const ConvRange&, const cfloat* grid,
                              const std::array<index_t, 3>& strides, cfloat* out);

struct ConvVariant {
  ConvVariantKey key;
  std::string name;  // "avx2.d3.w8.horner" — also the obs counter suffix
  ConvSpreadFn spread = nullptr;
  ConvInterpFn interp = nullptr;
};

/// The process-wide variant table, built once on first use. Immutable and
/// lock-free to read; plan construction does one linear probe.
class ConvDispatch {
 public:
  static constexpr std::uint8_t kMinWidth2 = 4;  // W = 2.0
  static constexpr std::uint8_t kMaxWidth2 = 8;  // W = 4.0

  static const ConvDispatch& instance();

  /// The registered variant for `key`, or nullptr (→ generic loop).
  const ConvVariant* find(const ConvVariantKey& key) const;

  const std::vector<ConvVariant>& variants() const { return variants_; }

 private:
  ConvDispatch();
  std::vector<ConvVariant> variants_;
};

/// 2·kernel_radius when the radius is one of the calibrated half-integer
/// widths the registry instantiates, 0 otherwise (→ no registry match).
std::uint8_t conv_width2(double kernel_radius);

/// Backend-agnostic dispatch identity of a resolved PlanConfig on a dim-d
/// grid, recorded in the plan-cache blob (v3): packs (specialize_conv, dim,
/// width2, eval). The backend is deliberately excluded — it is re-resolved
/// per CPU at plan construction, and a cached plan must restore on a machine
/// with a different vector ISA.
std::uint32_t conv_dispatch_id(const PlanConfig& cfg, int dim);

}  // namespace nufft
