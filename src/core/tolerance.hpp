// Tolerance-driven planning: map a requested relative L2 accuracy (against
// the exact NUDFT) to concrete kernel parameters.
//
// The mapping is an empirically calibrated table, measured by the accuracy
// harness (tests/test_accuracy.cpp, `ctest -L accuracy`) against exact NUDFT
// across dims {1,2,3} and both transform directions at oversampling α = 2.
// Each row records the error the configuration actually achieved (worst case
// over the calibration sweep, with margin); resolve_tolerance() picks the
// cheapest row whose calibrated error is at or below the request.
//
// Two families are calibrated: Kaiser-Bessel evaluated through the paper's
// LUT (samples-per-unit scaled with the tolerance so interpolation error
// stays subdominant), and the FINUFFT "exponential of semicircle" kernel
// evaluated by piecewise Horner polynomials — which reaches each tolerance
// at a width no larger than the KB row's.
#pragma once

#include "core/preprocess.hpp"
#include "kernels/kernel.hpp"

namespace nufft {

/// One calibration-table row, resolved for a caller's tolerance.
struct ResolvedAccuracy {
  double kernel_radius = 0.0;        // W, oversampled-grid units
  int lut_samples_per_unit = 0;      // meaningful for eval == kLut
  kernels::KernelEval eval = kernels::KernelEval::kLut;
  double calibrated_error = 0.0;     // worst relative L2 error measured
};

/// Oversampling ratio the table was calibrated at; plans requesting a
/// tolerance must provide at least this α.
inline constexpr double kCalibratedAlpha = 2.0;

/// Cheapest calibrated configuration achieving `tolerance` for `family`.
/// Throws Error(kUnachievableAccuracy) when the tolerance is tighter than
/// the tightest calibrated row or the family has no calibration (Gaussian).
ResolvedAccuracy resolve_tolerance(double tolerance, kernels::KernelType family);

/// Resolve cfg.tolerance (when > 0) in place: overwrites kernel_radius,
/// lut_samples_per_unit and eval from the calibration table. `alpha` is the
/// grid's oversampling ratio; below kCalibratedAlpha the table's guarantees
/// do not hold and the request fails kUnachievableAccuracy. A tolerance of 0
/// (the default) leaves the manual parameters untouched.
void apply_tolerance(PlanConfig& cfg, double alpha);

}  // namespace nufft
