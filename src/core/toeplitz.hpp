// Toeplitz-embedded normal operator: AᴴWA applied with two FFTs and no
// convolution interpolation (Fessler/Wajer construction).
//
// For the exact transforms, AᴴWA is convolution with the point-spread
// kernel q[δ] = Σ_w W_w·e^{2πi(w−M/2)·δ/M}, δ ∈ (−N, N)^d. Embedding q in
// a 2N-periodic circulant makes the application exact for every offset the
// crop region needs:
//
//   AᴴWA·x = crop_N( IFFT_2N( T̂ ⊙ FFT_2N( pad_2N(x) ) ) ),  T̂ = FFT_2N(q)
//
// q itself is computed once, at plan time, with one adjoint NUFFT on a
// doubled image (coordinates scale as w → 2w on the doubled grid). After
// that, every normal-operator application costs two (2N)^d FFTs — no
// gather/scatter at all — which is the standard way to accelerate the
// iterative solvers whose per-iteration cost the paper optimizes. The two
// approaches are complementary: Toeplitz wins once the iteration count is
// high and K is large; the explicit forward+adjoint pair is needed anyway
// for the right-hand side and the final residuals.
#pragma once

#include <memory>

#include "common/types.hpp"
#include "core/grid.hpp"
#include "core/preprocess.hpp"
#include "datasets/trajectory.hpp"
#include "fft/fftnd.hpp"
#include "parallel/thread_pool.hpp"

namespace nufft {

class ToeplitzNormal {
 public:
  /// Build the embedded kernel for AᴴWA. `weights` has one non-negative
  /// value per sample (nullptr = unweighted, W = I). Uses one temporary
  /// double-size NUFFT plan during construction.
  ToeplitzNormal(const GridDesc& g, const datasets::SampleSet& samples, const PlanConfig& cfg,
                 const float* weights = nullptr);
  ~ToeplitzNormal();

  ToeplitzNormal(const ToeplitzNormal&) = delete;
  ToeplitzNormal& operator=(const ToeplitzNormal&) = delete;

  /// out = AᴴWA·in (image_elems values each; in == out is allowed).
  void apply(const cfloat* in, cfloat* out);

  const GridDesc& grid_desc() const { return g_; }

 private:
  GridDesc g_;
  std::array<index_t, 3> pad_;  // 2N per dimension
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<fft::FftNd<float>> fft_fwd_;
  std::unique_ptr<fft::FftNd<float>> fft_inv_;
  cvecf kernel_hat_;  // T̂ / (2N)^d
  cvecf work_;
};

}  // namespace nufft
