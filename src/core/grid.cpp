#include "core/grid.hpp"

#include <cmath>

#include "common/error.hpp"

namespace nufft {

GridDesc GridDesc::isotropic(int dim, index_t n, double alpha) {
  NUFFT_CHECK(dim >= 1 && dim <= 3);
  NUFFT_CHECK(n >= 2);
  NUFFT_CHECK(alpha >= 1.0);
  GridDesc g;
  g.dim = dim;
  g.alpha = alpha;
  const auto m = static_cast<index_t>(std::llround(alpha * static_cast<double>(n)));
  NUFFT_CHECK(m >= n);
  for (int d = 0; d < dim; ++d) {
    g.n[static_cast<std::size_t>(d)] = n;
    g.m[static_cast<std::size_t>(d)] = m;
  }
  return g;
}

GridDesc make_grid(int dim, index_t n, double alpha) {
  return GridDesc::isotropic(dim, n, alpha);
}

}  // namespace nufft
