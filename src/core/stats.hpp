// Per-call performance counters, the raw material of the paper's breakdown
// figures (Fig. 3 / Fig. 8) and of the load-balance analysis.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hpp"

namespace nufft {

/// Plan-time decisions frozen at Nufft construction, queryable via
/// Nufft::plan_stats(). Complements the per-apply OperatorStats below.
struct PlanStats {
  /// True when the convolution hot path bound to a specialized dispatch
  /// variant (core/conv_dispatch.hpp); false → generic loop.
  bool conv_specialized = false;
  /// ConvVariantKey::id() of the bound variant, or the generic sentinel
  /// kGenericConvVariantId (0xFFFFFFFF) when unspecialized.
  std::uint32_t conv_variant_id = 0xFFFFFFFFu;
  /// Human-readable variant name ("avx2.d3.w8.horner"), "generic" otherwise.
  /// Also emitted as the obs counter "nufft.conv.variant.<name>".
  std::string conv_variant = "generic";
  /// Trajectory generation of this plan: 0 for a cold build, incremented by
  /// every non-no-op update_samples / warm derivation. A no-op update
  /// (bitwise-identical coordinates) never bumps it.
  std::uint64_t generation = 0;
  /// True when this plan's preprocessing came out of the delta path
  /// (update_preprocessed → kWarm) rather than a cold preprocess().
  bool warm_updated = false;
};

/// Timing breakdown for one operator application, in seconds.
///
/// Reset/accumulate discipline: an apply resets its stats struct at entry
/// and then only accumulates — multi-pass applies (BatchNufft chunk loops,
/// every scheduler walk of an adjoint) add their contribution per pass, so
/// after the apply `tasks` / `busy_ns_per_context` cover *all* passes and
/// `total_s` ≥ phase_sum() (the difference is scheduler/loop overhead plus
/// the instants between phase timers).
struct OperatorStats {
  double scale_s = 0.0;     // point-wise scaling + (de)chopping + grid clear
  double fft_s = 0.0;       // the oversampled (inverse) FFT
  double conv_s = 0.0;      // convolution interpolation
  double total_s = 0.0;

  // Adjoint-convolution scheduling detail, summed over every scheduler walk
  // of the apply (one per chunk for batched multi-slab-group adjoints).
  int tasks = 0;
  int privatized_tasks = 0;
  std::vector<std::uint64_t> busy_ns_per_context;

  // Graceful-degradation record (exec::BatchNufft): set when this apply ran
  // on the scalar convolution path after a SIMD-path allocation failure, or
  // without selective privatization after its buffers failed to allocate.
  bool simd_downgraded = false;
  bool privatization_downgraded = false;

  /// Fold one scheduler pass into the running totals. busy times accumulate
  /// element-wise, resizing on the first pass (a later pass may legally run
  /// on a wider pool; missing contexts count as idle).
  void add_scheduler_pass(int pass_tasks, int pass_privatized,
                          const std::vector<std::uint64_t>& busy);

  /// scale_s + fft_s + conv_s — the phase time the invariant
  /// phase_sum() ≤ total_s is asserted against in the test suite.
  double phase_sum() const { return scale_s + fft_s + conv_s; }

  /// Ratio of the busiest context's busy time to the mean — 1.0 is perfect
  /// load balance. Sentinels, distinguishable by the caller:
  ///   0.0  no parallel pass ran (busy_ns_per_context is empty), or a pass
  ///        ran real tasks too fast for the clock to resolve (tasks > 0 with
  ///        uniformly zero busy time — unmeasurable, NOT perfect balance);
  ///   1.0  a pass ran but had nothing to do (tasks == 0): trivially
  ///        balanced.
  double load_imbalance() const;
};

/// One-time preprocessing cost breakdown (paper §V-E, Fig. 14).
///
/// Since the preprocessing pipeline went parallel (DESIGN.md §11) every stage
/// time is the wall-clock of its parallel pass; `threads_used` records the
/// pool width that executed them, so bench_fig14_preproc can report per-stage
/// scaling, not just the total.
struct PreprocessStats {
  double histogram_s = 0.0;
  double partition_s = 0.0;  // per-dim histograms + boundary placement
  double bin_s = 0.0;        // task-id count + scan + stable parallel scatter
  double reorder_s = 0.0;    // per-task LSD radix sort, largest-first
  double gather_s = 0.0;     // reordered coordinate materialization
  double graph_s = 0.0;      // TDG + task/weights/privatization table
  double total_s = 0.0;
  int tasks = 0;
  int privatized_tasks = 0;
  int threads_used = 1;      // pool width the pipeline actually ran on

  // Delta-update path (update_preprocessed). A warm update reports its cost
  // in update_s with the cold stage timings above left zero, so update and
  // cold-build timings are never conflated in one field; a cold build (or a
  // fallback rebuild) leaves warm_update false and update_s zero.
  bool warm_update = false;      // these stats describe a delta update
  double update_s = 0.0;         // wall-clock of the whole delta pass
  index_t rebinned_samples = 0;  // samples whose task assignment changed
  int dirty_tasks = 0;           // tasks whose sample range was rebuilt
};

}  // namespace nufft
