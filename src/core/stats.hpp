// Per-call performance counters, the raw material of the paper's breakdown
// figures (Fig. 3 / Fig. 8) and of the load-balance analysis.
#pragma once

#include <cstdint>
#include <vector>

namespace nufft {

/// Timing breakdown for one operator application, in seconds.
struct OperatorStats {
  double scale_s = 0.0;     // point-wise scaling + (de)chopping + grid clear
  double fft_s = 0.0;       // the oversampled (inverse) FFT
  double conv_s = 0.0;      // convolution interpolation
  double total_s = 0.0;

  // Adjoint-convolution scheduling detail.
  int tasks = 0;
  int privatized_tasks = 0;
  std::vector<std::uint64_t> busy_ns_per_context;

  // Graceful-degradation record (exec::BatchNufft): set when this apply ran
  // on the scalar convolution path after a SIMD-path allocation failure, or
  // without selective privatization after its buffers failed to allocate.
  bool simd_downgraded = false;
  bool privatization_downgraded = false;

  /// Ratio of the busiest context's busy time to the mean — 1.0 is perfect
  /// load balance. Returns 0 when no parallel pass ran.
  double load_imbalance() const;
};

/// One-time preprocessing cost breakdown (paper §V-E, Fig. 14).
struct PreprocessStats {
  double histogram_s = 0.0;
  double partition_s = 0.0;
  double bin_s = 0.0;
  double reorder_s = 0.0;
  double graph_s = 0.0;
  double total_s = 0.0;
  int tasks = 0;
  int privatized_tasks = 0;
};

}  // namespace nufft
