#include "core/plan_cache.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "core/conv_dispatch.hpp"
#include "core/tolerance.hpp"

namespace nufft {

namespace {

constexpr std::uint32_t kMagic = 0x4E554657;  // "NUFW"
// v2 added the resolved kernel identity (family, radius, LUT density, weight
// evaluator) after the grid geometry: two plans differing only in kernel
// must never restore interchangeably. v1 blobs are rejected as stale.
// v3 appends the backend-agnostic convolution dispatch identity
// (specialize_conv, dim, calibrated width2, evaluator — see
// conv_dispatch_id()): a plan restored under a different dispatch
// configuration would silently run a different hot path than the one it was
// validated with. The vector backend is deliberately NOT part of the blob —
// it is re-resolved per CPU so a cached plan restores across ISAs.
constexpr std::uint32_t kVersion = 3;

// On-disk container framing (save_plan/load_plan): a checksummed header in
// front of the serialized blob, so a truncated or bit-flipped spill file is
// detected before deserialization ever looks at the payload.
constexpr std::uint32_t kFileMagic = 0x4E554653;  // "NUFS"
constexpr std::uint32_t kFileVersion = 1;

struct FileHeader {
  std::uint32_t magic;
  std::uint32_t version;
  std::uint64_t payload_bytes;
  std::uint64_t checksum;  // FNV-1a over the payload
};

std::uint64_t fnv1a_bytes(const std::uint8_t* p, std::size_t n) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

class Writer {
 public:
  explicit Writer(std::vector<std::uint8_t>& out) : out_(out) {}

  template <class T>
  void put(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
    out_.insert(out_.end(), p, p + sizeof(T));
  }

  template <class T>
  void put_array(const T* p, std::size_t n) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* b = reinterpret_cast<const std::uint8_t*>(p);
    out_.insert(out_.end(), b, b + n * sizeof(T));
  }

 private:
  std::vector<std::uint8_t>& out_;
};

class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size) : data_(data), size_(size) {}

  template <class T>
  T get() {
    T v;
    take(&v, sizeof(T));
    return v;
  }

  template <class T>
  void get_array(T* p, std::size_t n) {
    take(p, n * sizeof(T));
  }

  bool exhausted() const { return pos_ == size_; }

 private:
  void take(void* dst, std::size_t n) {
    NUFFT_CHECK_CODE(pos_ + n <= size_, ErrorCode::kIoCorruption, "plan blob truncated");
    std::memcpy(dst, data_ + pos_, n);
    pos_ += n;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<std::uint8_t> serialize_plan(const Preprocessed& pp, const GridDesc& g,
                                         const PlanConfig& cfg) {
  // Canonicalize: a tolerance-driven config and its resolved equivalent name
  // the same plan, so both serialize the same identity.
  PlanConfig rc = cfg;
  apply_tolerance(rc, g.alpha);
  std::vector<std::uint8_t> out;
  Writer w(out);
  w.put(kMagic);
  w.put(kVersion);
  w.put(static_cast<std::int32_t>(g.dim));
  for (int d = 0; d < g.dim; ++d) w.put(g.m[static_cast<std::size_t>(d)]);

  // Kernel identity (resolved). The radius shapes the task boxes, so a
  // mismatch is structural; family/eval/LUT density are keyed so two plans
  // differing only in kernel never dedupe to one cache entry.
  w.put(static_cast<std::int32_t>(rc.kernel));
  w.put(rc.kernel_radius);
  w.put(static_cast<std::int32_t>(rc.lut_samples_per_unit));
  w.put(static_cast<std::int32_t>(rc.eval));
  // Convolution dispatch identity (v3, backend-agnostic).
  w.put(conv_dispatch_id(rc, g.dim));

  // Partition layout.
  for (int d = 0; d < g.dim; ++d) {
    const auto& b = pp.layout.bounds[static_cast<std::size_t>(d)];
    w.put(static_cast<std::int64_t>(b.size()));
    w.put_array(b.data(), b.size());
  }

  // Tasks and marks.
  w.put(static_cast<std::int64_t>(pp.tasks.size()));
  w.put_array(pp.tasks.data(), pp.tasks.size());
  w.put_array(pp.privatized.data(), pp.privatized.size());
  w.put(pp.privatization_threshold);

  // Reorder permutation (coords are regenerated from the sample set).
  w.put(static_cast<std::int64_t>(pp.orig_index.size()));
  w.put_array(pp.orig_index.data(), pp.orig_index.size());
  return out;
}

Preprocessed deserialize_plan(const std::uint8_t* data, std::size_t size, const GridDesc& g,
                              const datasets::SampleSet& samples, const PlanConfig& cfg) {
  Timer total;
  PlanConfig rc = cfg;
  apply_tolerance(rc, g.alpha);
  Reader r(data, size);
  NUFFT_CHECK_CODE(r.get<std::uint32_t>() == kMagic, ErrorCode::kIoCorruption,
                   "not a NUFFT plan blob");
  NUFFT_CHECK_CODE(r.get<std::uint32_t>() == kVersion, ErrorCode::kIoCorruption,
                   "unsupported plan version");
  NUFFT_CHECK_MSG(r.get<std::int32_t>() == g.dim, "plan built for a different dimensionality");
  for (int d = 0; d < g.dim; ++d) {
    NUFFT_CHECK_MSG(r.get<index_t>() == g.m[static_cast<std::size_t>(d)],
                    "plan built for a different grid size");
  }
  NUFFT_CHECK_MSG(r.get<std::int32_t>() == static_cast<std::int32_t>(rc.kernel),
                  "plan built for a different kernel family");
  NUFFT_CHECK_MSG(r.get<double>() == rc.kernel_radius,
                  "plan built for a different kernel radius");
  NUFFT_CHECK_MSG(r.get<std::int32_t>() == static_cast<std::int32_t>(rc.lut_samples_per_unit),
                  "plan built for a different LUT density");
  NUFFT_CHECK_MSG(r.get<std::int32_t>() == static_cast<std::int32_t>(rc.eval),
                  "plan built for a different weight evaluator");
  NUFFT_CHECK_MSG(r.get<std::uint32_t>() == conv_dispatch_id(rc, g.dim),
                  "plan built for a different convolution dispatch configuration");

  Preprocessed pp;
  pp.layout.dim = g.dim;
  for (int d = 0; d < g.dim; ++d) {
    const auto n = r.get<std::int64_t>();
    NUFFT_CHECK_CODE(n >= 2, ErrorCode::kIoCorruption, "corrupt partition bounds");
    auto& b = pp.layout.bounds[static_cast<std::size_t>(d)];
    b.resize(static_cast<std::size_t>(n));
    r.get_array(b.data(), b.size());
    NUFFT_CHECK_CODE(b.front() == 0 && b.back() == g.m[static_cast<std::size_t>(d)],
                     ErrorCode::kIoCorruption, "partition bounds do not cover the grid");
    for (std::size_t i = 1; i < b.size(); ++i) {
      NUFFT_CHECK_CODE(b[i] > b[i - 1], ErrorCode::kIoCorruption,
                       "partition bounds not increasing");
    }
    pp.layout.num_parts[static_cast<std::size_t>(d)] = static_cast<int>(n) - 1;
  }

  const auto ntasks = r.get<std::int64_t>();
  NUFFT_CHECK_CODE(ntasks == pp.layout.total_parts(), ErrorCode::kIoCorruption,
                   "task count mismatch");
  pp.tasks.resize(static_cast<std::size_t>(ntasks));
  r.get_array(pp.tasks.data(), pp.tasks.size());
  pp.privatized.resize(static_cast<std::size_t>(ntasks));
  r.get_array(pp.privatized.data(), pp.privatized.size());
  pp.privatization_threshold = r.get<index_t>();

  const auto count = r.get<std::int64_t>();
  NUFFT_CHECK_MSG(count == samples.count(), "plan built for a different sample count");
  pp.orig_index.resize(static_cast<std::size_t>(count));
  r.get_array(pp.orig_index.data(), pp.orig_index.size());
  NUFFT_CHECK_CODE(r.exhausted(), ErrorCode::kIoCorruption, "trailing bytes in plan blob");

  // Structural validation: task ranges tile [0, count); permutation valid.
  index_t prev = 0;
  for (const auto& task : pp.tasks) {
    NUFFT_CHECK_CODE(task.begin == prev && task.end >= task.begin, ErrorCode::kIoCorruption,
                     "corrupt task ranges");
    prev = task.end;
  }
  NUFFT_CHECK_CODE(prev == count, ErrorCode::kIoCorruption,
                   "task ranges do not cover the samples");
  {
    std::vector<char> seen(static_cast<std::size_t>(count), 0);
    for (const index_t idx : pp.orig_index) {
      NUFFT_CHECK_CODE(idx >= 0 && idx < count && !seen[static_cast<std::size_t>(idx)],
                       ErrorCode::kIoCorruption, "corrupt reorder permutation");
      seen[static_cast<std::size_t>(idx)] = 1;
    }
  }

  // Rebuild the cheap derived state.
  pp.graph = std::make_unique<TaskGraph>(pp.layout);
  pp.weights.resize(pp.tasks.size());
  for (std::size_t k = 0; k < pp.tasks.size(); ++k) pp.weights[k] = pp.tasks[k].count();
  for (int d = 0; d < g.dim; ++d) {
    auto& dst = pp.coords[static_cast<std::size_t>(d)];
    dst.resize(static_cast<std::size_t>(count));
    const float* src = samples.coords[static_cast<std::size_t>(d)].data();
    for (index_t i = 0; i < count; ++i) {
      dst[static_cast<std::size_t>(i)] = src[pp.orig_index[static_cast<std::size_t>(i)]];
    }
  }
  pp.stats.tasks = static_cast<int>(ntasks);
  pp.stats.privatized_tasks =
      static_cast<int>(std::count(pp.privatized.begin(), pp.privatized.end(), char(1)));
  pp.stats.total_s = total.seconds();
  return pp;
}

void save_plan(const std::string& path, const Preprocessed& pp, const GridDesc& g,
               const PlanConfig& cfg) {
  const auto blob = serialize_plan(pp, g, cfg);
  FileHeader h;
  h.magic = kFileMagic;
  h.version = kFileVersion;
  h.payload_bytes = blob.size();
  h.checksum = fnv1a_bytes(blob.data(), blob.size());
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  NUFFT_CHECK_MSG(f.good(), "cannot open plan file for writing");
  f.write(reinterpret_cast<const char*>(&h), sizeof(h));
  f.write(reinterpret_cast<const char*>(blob.data()), static_cast<std::streamsize>(blob.size()));
  NUFFT_CHECK_MSG(f.good(), "plan file write failed");
}

Preprocessed load_plan(const std::string& path, const GridDesc& g,
                       const datasets::SampleSet& samples, const PlanConfig& cfg) {
  std::ifstream f(path, std::ios::binary | std::ios::ate);
  NUFFT_CHECK_MSG(f.good(), "cannot open plan file for reading");
  const auto size = static_cast<std::size_t>(f.tellg());
  f.seekg(0);
  NUFFT_CHECK_CODE(size >= sizeof(FileHeader), ErrorCode::kIoCorruption,
                   "plan file truncated before the header");
  FileHeader h;
  f.read(reinterpret_cast<char*>(&h), sizeof(h));
  NUFFT_CHECK_MSG(f.good(), "plan file read failed");
  NUFFT_CHECK_CODE(h.magic == kFileMagic && h.version == kFileVersion,
                   ErrorCode::kIoCorruption, "not a NUFFT plan file (or a stale format)");
  NUFFT_CHECK_CODE(h.payload_bytes == size - sizeof(FileHeader), ErrorCode::kIoCorruption,
                   "plan file truncated");
  std::vector<std::uint8_t> blob(static_cast<std::size_t>(h.payload_bytes));
  f.read(reinterpret_cast<char*>(blob.data()), static_cast<std::streamsize>(blob.size()));
  NUFFT_CHECK_MSG(f.good(), "plan file read failed");
  NUFFT_CHECK_CODE(fnv1a_bytes(blob.data(), blob.size()) == h.checksum,
                   ErrorCode::kIoCorruption, "plan file checksum mismatch");
  return deserialize_plan(blob.data(), blob.size(), g, samples, cfg);
}

std::size_t plan_resident_bytes(const Preprocessed& pp, const GridDesc& g) {
  std::size_t bytes = sizeof(Preprocessed);
  for (int d = 0; d < g.dim; ++d) {
    bytes += pp.coords[static_cast<std::size_t>(d)].size() * sizeof(float);
  }
  bytes += pp.orig_index.size() * sizeof(index_t);
  bytes += pp.tasks.size() * sizeof(ConvTask);
  bytes += pp.weights.size() * sizeof(index_t);
  bytes += pp.privatized.size() * sizeof(char);
  if (pp.delta != nullptr) {
    bytes += pp.delta->task_of.size() * sizeof(std::int32_t);
    for (int d = 0; d < g.dim; ++d) {
      bytes += pp.delta->cell_counts[static_cast<std::size_t>(d)].size() * sizeof(index_t);
      bytes += pp.delta->prev_coords[static_cast<std::size_t>(d)].size() * sizeof(float);
      bytes += pp.delta->coords_scratch[static_cast<std::size_t>(d)].size() * sizeof(float);
    }
    bytes += pp.delta->orig_scratch.size() * sizeof(index_t);
    bytes += pp.delta->keys.size() * sizeof(std::uint64_t);
    bytes += pp.delta->keys_scratch.size() * sizeof(std::uint64_t);
  }
  return bytes;
}

}  // namespace nufft
