// Geometry of the image and the oversampled Cartesian grid.
#pragma once

#include <array>
#include <cstddef>

#include "common/types.hpp"

namespace nufft {

/// Sizes of the centered N^dim image and the M^dim oversampled grid.
/// Memory layout is row-major with dimension 0 slowest and the last
/// dimension contiguous; for dim == 3 that is x (slowest), y, z (fastest) —
/// the paper's inner convolution loop runs along z.
struct GridDesc {
  int dim = 3;
  std::array<index_t, 3> n{0, 0, 0};  // image size per dimension
  std::array<index_t, 3> m{0, 0, 0};  // oversampled grid size per dimension
  double alpha = 2.0;                 // oversampling ratio M/N

  static GridDesc isotropic(int dim, index_t n, double alpha);

  index_t image_elems() const {
    index_t t = 1;
    for (int d = 0; d < dim; ++d) t *= n[static_cast<std::size_t>(d)];
    return t;
  }
  index_t grid_elems() const {
    index_t t = 1;
    for (int d = 0; d < dim; ++d) t *= m[static_cast<std::size_t>(d)];
    return t;
  }

  /// Row strides of the oversampled grid (stride of dimension d).
  std::array<index_t, 3> grid_strides() const {
    std::array<index_t, 3> s{1, 1, 1};
    for (int d = dim - 2; d >= 0; --d) {
      s[static_cast<std::size_t>(d)] =
          s[static_cast<std::size_t>(d + 1)] * m[static_cast<std::size_t>(d + 1)];
    }
    return s;
  }
};

GridDesc make_grid(int dim, index_t n, double alpha);

}  // namespace nufft
