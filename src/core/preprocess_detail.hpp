// Internal helpers shared by the cold preprocessing pipeline
// (preprocess.cpp) and the delta-update path (preprocess_update.cpp).
//
// The two TUs must agree bit for bit: the update path recomputes partition
// targets, reorder keys and per-task sort orders for the samples it touches,
// and the determinism contract promises the result equals a cold rebuild.
// Keeping the shared arithmetic in one header makes that agreement
// structural instead of copy-paste.
#pragma once

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>

#include "common/error.hpp"
#include "common/types.hpp"

namespace nufft::detail {

// Auto partition count per dimension: aim for ~16·threads tasks in total so
// the priority queue has slack to balance, rounded to an even count.
inline int auto_partitions_per_dim(int threads, int dim) {
  const double total_tasks = 16.0 * std::max(1, threads);
  int p = static_cast<int>(std::llround(std::pow(total_tasks, 1.0 / dim)));
  p = std::max(2, p);
  if (p % 2 != 0) ++p;
  return p;
}

inline int bits_for(std::uint64_t maxval) {
  return maxval == 0 ? 0 : 64 - __builtin_clzll(maxval);
}

// Bit layout of the tile-scan reorder key: tile coordinates (scan-line order
// over tiles), then cell coordinates within the tile (scan-line order again)
// — "simple scan-line order with one level of tiling" (paper §III-D). Field
// widths are derived from the grid extent and tile edge: a fixed width would
// silently alias tile coordinates on wide grids (the old 10-bit packing broke
// past 1023 tiles per dimension) and quietly destroy reorder locality.
struct KeyPacking {
  std::array<int, 3> tile_bits{0, 0, 0};
  std::array<int, 3> cell_bits{0, 0, 0};
  int total_bits = 0;
};

inline KeyPacking make_key_packing(int dim, const std::array<index_t, 3>& extent, index_t tile) {
  KeyPacking p;
  for (int d = 0; d < dim; ++d) {
    const auto sd = static_cast<std::size_t>(d);
    const index_t ntiles = (extent[sd] + tile - 1) / tile;
    p.tile_bits[sd] = bits_for(static_cast<std::uint64_t>(ntiles - 1));
    p.cell_bits[sd] = bits_for(static_cast<std::uint64_t>(tile - 1));
    p.total_bits += p.tile_bits[sd] + p.cell_bits[sd];
  }
  NUFFT_CHECK_MSG(p.total_bits <= 64,
                  "tile-reorder key needs " << p.total_bits
                                            << " bits; grid too large for a 64-bit key");
  return p;
}

inline std::uint64_t reorder_key(const std::array<index_t, 3>& cell, int dim, index_t tile,
                                 const KeyPacking& pk) {
  std::uint64_t key = 0;
  for (int d = 0; d < dim; ++d) {
    const auto sd = static_cast<std::size_t>(d);
    key = (key << pk.tile_bits[sd]) | static_cast<std::uint64_t>(cell[sd] / tile);
  }
  for (int d = 0; d < dim; ++d) {
    const auto sd = static_cast<std::size_t>(d);
    key = (key << pk.cell_bits[sd]) | static_cast<std::uint64_t>(cell[sd] % tile);
  }
  return key;
}

// The reordered position of a sample within its task is determined by
// (key, orig_index) ascending — a total order, so any correct sort produces
// the same permutation regardless of algorithm or which context runs it.
struct KeyIdx {
  std::uint64_t key;
  index_t idx;
};

inline void sort_task_small(KeyIdx* a, index_t n) {
  std::sort(a, a + n, [](const KeyIdx& x, const KeyIdx& y) {
    return x.key != y.key ? x.key < y.key : x.idx < y.idx;
  });
}

}  // namespace nufft::detail
