// AVX2 convolution kernels (the paper's wider-SIMD extension).
//
// Same contract as the SSE kernels in convolution.hpp, but processing four
// interleaved complex grid cells per 256-bit operation with FMA. Available
// only when the CPU supports AVX2+FMA — query avx2_available() before
// dispatching; calling these on an older CPU is undefined (SIGILL).
#pragma once

#include <array>

#include "common/types.hpp"
#include "core/convolution.hpp"
#include "core/grid.hpp"

namespace nufft {

/// True when this process may execute the AVX2 kernels.
bool avx2_available();

template <int DIM>
void adj_scatter_avx2(cfloat* grid, const std::array<index_t, 3>& strides, const WindowBuf& wb,
                      cfloat val);

template <int DIM>
cfloat fwd_gather_avx2(const cfloat* grid, const std::array<index_t, 3>& strides,
                       const WindowBuf& wb);

}  // namespace nufft
