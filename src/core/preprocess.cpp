#include "core/preprocess.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <numeric>

#include <cmath>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "core/preprocess_detail.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace nufft {

index_t privatization_threshold(index_t total_samples, int threads, int dim, double factor) {
  const double denom = static_cast<double>(threads) * std::pow(2.0, dim + 1);
  const auto t = static_cast<index_t>(factor * static_cast<double>(total_samples) / denom);
  return std::max<index_t>(t, 1);
}

namespace {

using detail::KeyIdx;
using detail::KeyPacking;
using detail::auto_partitions_per_dim;
using detail::make_key_packing;
using detail::reorder_key;
using detail::sort_task_small;

// --- per-task reorder sort -------------------------------------------------
//
// The shared (key, orig_index) total order and the comparator sort live in
// preprocess_detail.hpp; the LSD radix variant below stays private — it
// additionally requires idx-ascending input (the stable counting-sort
// order), which only the cold pipeline guarantees.

// Below this an LSD pass costs more in counter zeroing than the comparison
// sort it replaces.
constexpr index_t kRadixCutoff = 128;

// Stable LSD radix sort over the low `key_bits` bits in 8-bit digits. The
// input arrives idx-ascending (stable counting-sort order), so stability
// alone reproduces the (key, idx) total order.
void sort_task_radix(KeyIdx* a, KeyIdx* tmp, index_t n, int key_bits) {
  const int passes = (key_bits + 7) / 8;
  KeyIdx* src = a;
  KeyIdx* dst = tmp;
  for (int p = 0; p < passes; ++p) {
    const int shift = p * 8;
    std::array<index_t, 256> cnt{};
    for (index_t i = 0; i < n; ++i) ++cnt[(src[i].key >> shift) & 0xff];
    if (cnt[(src[0].key >> shift) & 0xff] == n) continue;  // uniform digit
    index_t running = 0;
    for (auto& c : cnt) {
      const index_t v = c;
      c = running;
      running += v;
    }
    for (index_t i = 0; i < n; ++i) dst[cnt[(src[i].key >> shift) & 0xff]++] = src[i];
    std::swap(src, dst);
  }
  if (src != a) std::copy(src, src + n, a);
}

}  // namespace

Preprocessed preprocess(const GridDesc& g, const datasets::SampleSet& samples,
                        const PlanConfig& cfg) {
  ThreadPool pool(cfg.threads);
  return preprocess(g, samples, cfg, pool);
}

Preprocessed preprocess(const GridDesc& g, const datasets::SampleSet& samples,
                        const PlanConfig& cfg, ThreadPool& pool) {
  NUFFT_CHECK(samples.dim == g.dim);
  NUFFT_CHECK(cfg.kernel_radius > 0.0);
  NUFFT_CHECK(cfg.threads >= 1);
  const int dim = g.dim;
  const index_t count = samples.count();
  const auto wceil = static_cast<index_t>(std::ceil(cfg.kernel_radius));
  const index_t min_width = 2 * wceil + 1;
  for (int d = 0; d < dim; ++d) {
    NUFFT_CHECK_MSG(g.m[static_cast<std::size_t>(d)] >= min_width,
                    "grid narrower than one kernel footprint");
  }

  Preprocessed pp;
  Timer total;
  pp.stats.threads_used = pool.size();
  pp.delta = std::make_unique<PlanDeltaState>();

  std::array<const float*, 3> cptr{nullptr, nullptr, nullptr};
  for (int d = 0; d < dim; ++d) cptr[static_cast<std::size_t>(d)] = samples.coords[static_cast<std::size_t>(d)].data();

  // Deterministic chunk decomposition for the counting-sort passes: the
  // result is chunking-invariant (each chunk writes exactly the slots the
  // serial stable sort would), so the chunk count may follow the pool width.
  const int nchunks =
      count == 0 ? 1 : static_cast<int>(std::min<index_t>(count, 4 * pool.size()));

  // --- partition layout (cumulative histograms + Fig. 5) ---
  Timer t;
  {
    obs::Span span("prep.partition", "prep", count);
    const int target = cfg.partitions_per_dim > 0 ? cfg.partitions_per_dim
                                                  : auto_partitions_per_dim(cfg.threads, dim);
    if (cfg.variable_partitions) {
      // Keep the per-cell counts behind the cumulative histograms: the
      // delta-update path patches them ±1 per moved sample and re-runs the
      // identical boundary walk to detect layout changes.
      std::array<std::vector<index_t>, 3> hists;
      for (int d = 0; d < dim; ++d) {
        const auto sd = static_cast<std::size_t>(d);
        hists[sd] = cumulative_histogram(cptr[sd], count, g.m[sd], &pool);
        auto& cc = pp.delta->cell_counts[sd];
        cc.resize(static_cast<std::size_t>(g.m[sd]));
        for (index_t i = 0; i < g.m[sd]; ++i) {
          cc[static_cast<std::size_t>(i)] = hists[sd][static_cast<std::size_t>(i) + 1] -
                                            hists[sd][static_cast<std::size_t>(i)];
        }
      }
      pp.layout = make_variable_layout_from_hists(dim, g.m, hists, count, target, min_width);
    } else {
      pp.layout = make_fixed_layout(dim, g.m, target, min_width);
    }
  }
  pp.stats.partition_s = t.seconds();

  // --- bin samples into tasks (parallel stable counting sort by task id) ---
  //
  // Pass A counts task ids per deterministic sample chunk; a column scan of
  // the [chunk × task] count matrix yields exact write cursors; pass B
  // scatters each chunk in sample order. Output: the serial counting sort's
  // orig_index, bit for bit.
  t.reset();
  const int ntasks = pp.layout.total_parts();
  // The task assignment outlives the build inside the delta state — it is
  // exactly what an update must diff against.
  std::vector<std::int32_t>& task_of = pp.delta->task_of;
  task_of.resize(static_cast<std::size_t>(count));
  std::vector<index_t> offset(static_cast<std::size_t>(ntasks) + 1, 0);
  {
    obs::Span span("prep.bin", "prep", count);
    std::vector<index_t> cursors(static_cast<std::size_t>(nchunks) * static_cast<std::size_t>(ntasks),
                                 0);
    pool.for_static_chunks(count, nchunks, [&](int c, index_t begin, index_t end) {
      index_t* row = cursors.data() + static_cast<std::size_t>(c) * static_cast<std::size_t>(ntasks);
      for (index_t i = begin; i < end; ++i) {
        std::array<int, 3> pc{0, 0, 0};
        for (int d = 0; d < dim; ++d) {
          pc[static_cast<std::size_t>(d)] =
              pp.layout.locate(d, cptr[static_cast<std::size_t>(d)][i]);
        }
        const int tk = pp.layout.flatten(pc);
        task_of[static_cast<std::size_t>(i)] = tk;
        ++row[tk];
      }
    });
    for (int k = 0; k < ntasks; ++k) {
      index_t task_total = 0;
      for (int c = 0; c < nchunks; ++c) {
        task_total += cursors[static_cast<std::size_t>(c) * static_cast<std::size_t>(ntasks) +
                              static_cast<std::size_t>(k)];
      }
      offset[static_cast<std::size_t>(k) + 1] = offset[static_cast<std::size_t>(k)] + task_total;
    }
    pool.column_exclusive_scan(cursors, nchunks, ntasks, offset.data());
    pp.orig_index.resize(static_cast<std::size_t>(count));
    pool.for_static_chunks(count, nchunks, [&](int c, index_t begin, index_t end) {
      index_t* cur = cursors.data() + static_cast<std::size_t>(c) * static_cast<std::size_t>(ntasks);
      for (index_t i = begin; i < end; ++i) {
        pp.orig_index[static_cast<std::size_t>(cur[task_of[static_cast<std::size_t>(i)]]++)] = i;
      }
    });
  }
  pp.stats.bin_s = t.seconds();

  // --- per-task tile reorder for cache reuse (§III-D) ---
  t.reset();
  // Sorted keys are retained position-indexed in the delta state so a later
  // update can merge retained runs without recomputing them (all zero when
  // the reorder is disabled — every sort below degenerates to idx order).
  std::vector<std::uint64_t>& sorted_keys = pp.delta->keys;
  sorted_keys.assign(static_cast<std::size_t>(count), 0);
  if (cfg.reorder && count > 0) {
    obs::Span span("prep.reorder", "prep", ntasks);
    const index_t tile = std::max<index_t>(1, cfg.reorder_tile);
    const KeyPacking pk = make_key_packing(dim, g.m, tile);
    // keys[orig] = tile-scan position of the sample's grid cell.
    std::vector<std::uint64_t> keys(static_cast<std::size_t>(count));
    pool.parallel_for(count, [&](index_t begin, index_t end) {
      for (index_t i = begin; i < end; ++i) {
        std::array<index_t, 3> cell{0, 0, 0};
        for (int d = 0; d < dim; ++d) {
          const auto sd = static_cast<std::size_t>(d);
          cell[sd] = std::clamp<index_t>(static_cast<index_t>(cptr[sd][i]), 0, g.m[sd] - 1);
        }
        keys[static_cast<std::size_t>(i)] = reorder_key(cell, dim, tile, pk);
      }
    });
    // Independent per-task sorts, dispatched to the pool largest-first (the
    // scheduler's priority discipline): the big tasks dominate, so they must
    // start before the long tail of small ones.
    std::vector<int> order(static_cast<std::size_t>(ntasks));
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
      const index_t ca = offset[static_cast<std::size_t>(a) + 1] - offset[static_cast<std::size_t>(a)];
      const index_t cb = offset[static_cast<std::size_t>(b) + 1] - offset[static_cast<std::size_t>(b)];
      return ca != cb ? ca > cb : a < b;
    });
    auto* base = pp.orig_index.data();
    std::atomic<int> next{0};
    pool.run_on_all([&](int) {
      std::vector<KeyIdx> buf;
      std::vector<KeyIdx> tmp;
      for (;;) {
        const int j = next.fetch_add(1, std::memory_order_relaxed);
        if (j >= ntasks) break;
        const int k = order[static_cast<std::size_t>(j)];
        const index_t begin = offset[static_cast<std::size_t>(k)];
        const index_t n = offset[static_cast<std::size_t>(k) + 1] - begin;
        if (n == 0) continue;
        if (n == 1) {
          sorted_keys[static_cast<std::size_t>(begin)] =
              keys[static_cast<std::size_t>(base[begin])];
          continue;
        }
        buf.resize(static_cast<std::size_t>(n));
        for (index_t i = 0; i < n; ++i) {
          const index_t idx = base[begin + i];
          buf[static_cast<std::size_t>(i)] = {keys[static_cast<std::size_t>(idx)], idx};
        }
        if (n < kRadixCutoff) {
          sort_task_small(buf.data(), n);
        } else {
          tmp.resize(static_cast<std::size_t>(n));
          sort_task_radix(buf.data(), tmp.data(), n, pk.total_bits);
        }
        for (index_t i = 0; i < n; ++i) {
          base[begin + i] = buf[static_cast<std::size_t>(i)].idx;
          sorted_keys[static_cast<std::size_t>(begin + i)] = buf[static_cast<std::size_t>(i)].key;
        }
      }
    });
  }
  pp.stats.reorder_s = t.seconds();

  // --- materialize reordered coordinate arrays (parallel gather) ---
  t.reset();
  {
    obs::Span span("prep.gather", "prep", count);
    for (int d = 0; d < dim; ++d) {
      pp.coords[static_cast<std::size_t>(d)].resize(static_cast<std::size_t>(count));
    }
    pool.parallel_for(count, [&](index_t begin, index_t end) {
      for (index_t i = begin; i < end; ++i) {
        const index_t orig = pp.orig_index[static_cast<std::size_t>(i)];
        for (int d = 0; d < dim; ++d) {
          const auto sd = static_cast<std::size_t>(d);
          pp.coords[sd][static_cast<std::size_t>(i)] = cptr[sd][orig];
        }
      }
    });
  }
  pp.stats.gather_s = t.seconds();

  // Original-order coordinate snapshot for the delta path's sequential diff.
  for (int d = 0; d < dim; ++d) {
    const auto sd = static_cast<std::size_t>(d);
    pp.delta->prev_coords[sd].assign(cptr[sd], cptr[sd] + count);
  }

  // --- task table, weights, privatization ---
  t.reset();
  pp.graph = std::make_unique<TaskGraph>(pp.layout);
  pp.tasks.resize(static_cast<std::size_t>(ntasks));
  pp.weights.resize(static_cast<std::size_t>(ntasks));
  pp.privatized.assign(static_cast<std::size_t>(ntasks), 0);
  pp.privatization_threshold =
      privatization_threshold(count, cfg.threads, dim, cfg.privatization_factor);
  pool.parallel_for(ntasks, [&](index_t kb, index_t ke) {
    for (index_t ki = kb; ki < ke; ++ki) {
      const int k = static_cast<int>(ki);
      ConvTask& task = pp.tasks[static_cast<std::size_t>(k)];
      task.begin = offset[static_cast<std::size_t>(k)];
      task.end = offset[static_cast<std::size_t>(k) + 1];
      pp.weights[static_cast<std::size_t>(k)] = task.count();
      const TaskNode& node = pp.graph->node(k);
      for (int d = 0; d < dim; ++d) {
        const auto& b = pp.layout.bounds[static_cast<std::size_t>(d)];
        const auto pcd = static_cast<std::size_t>(node.pcoord[static_cast<std::size_t>(d)]);
        task.box_lo[static_cast<std::size_t>(d)] = b[pcd] - wceil;
        task.box_hi[static_cast<std::size_t>(d)] = b[pcd + 1] + wceil;
      }
      if (cfg.selective_privatization && task.count() > pp.privatization_threshold &&
          cfg.threads > 1) {
        pp.privatized[static_cast<std::size_t>(k)] = 1;
      }
    }
  });
  pp.stats.graph_s = t.seconds();

  pp.stats.tasks = ntasks;
  pp.stats.privatized_tasks =
      static_cast<int>(std::count(pp.privatized.begin(), pp.privatized.end(), char(1)));
  pp.stats.total_s = total.seconds();
  obs::observe_ns("prep_total_ns", static_cast<std::uint64_t>(pp.stats.total_s * 1e9));
  return pp;
}

}  // namespace nufft
