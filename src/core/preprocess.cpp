#include "core/preprocess.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "common/timer.hpp"

namespace nufft {

index_t privatization_threshold(index_t total_samples, int threads, int dim, double factor) {
  const double denom = static_cast<double>(threads) * std::pow(2.0, dim + 1);
  const auto t = static_cast<index_t>(factor * static_cast<double>(total_samples) / denom);
  return std::max<index_t>(t, 1);
}

namespace {

// Auto partition count per dimension: aim for ~16·threads tasks in total so
// the priority queue has slack to balance, rounded to an even count.
int auto_partitions_per_dim(int threads, int dim) {
  const double total_tasks = 16.0 * std::max(1, threads);
  int p = static_cast<int>(std::llround(std::pow(total_tasks, 1.0 / dim)));
  p = std::max(2, p);
  if (p % 2 != 0) ++p;
  return p;
}

// Pack the tile-scan reorder key: tile coordinates (scan-line order over
// tiles), then cell coordinates within the tile (scan-line order again) —
// "simple scan-line order with one level of tiling" (paper §III-D).
std::uint64_t reorder_key(const std::array<index_t, 3>& cell, int dim, index_t tile) {
  std::uint64_t key = 0;
  for (int d = 0; d < dim; ++d) {
    key = (key << 10) | static_cast<std::uint64_t>(cell[static_cast<std::size_t>(d)] / tile);
  }
  for (int d = 0; d < dim; ++d) {
    key = (key << 10) | static_cast<std::uint64_t>(cell[static_cast<std::size_t>(d)] % tile);
  }
  return key;
}

}  // namespace

Preprocessed preprocess(const GridDesc& g, const datasets::SampleSet& samples,
                        const PlanConfig& cfg) {
  NUFFT_CHECK(samples.dim == g.dim);
  NUFFT_CHECK(cfg.kernel_radius > 0.0);
  NUFFT_CHECK(cfg.threads >= 1);
  const int dim = g.dim;
  const index_t count = samples.count();
  const auto wceil = static_cast<index_t>(std::ceil(cfg.kernel_radius));
  const index_t min_width = 2 * wceil + 1;
  for (int d = 0; d < dim; ++d) {
    NUFFT_CHECK_MSG(g.m[static_cast<std::size_t>(d)] >= min_width,
                    "grid narrower than one kernel footprint");
  }

  Preprocessed pp;
  Timer total;

  std::array<const float*, 3> cptr{nullptr, nullptr, nullptr};
  for (int d = 0; d < dim; ++d) cptr[static_cast<std::size_t>(d)] = samples.coords[static_cast<std::size_t>(d)].data();

  // --- partition layout (cumulative histograms + Fig. 5) ---
  Timer t;
  const int target = cfg.partitions_per_dim > 0 ? cfg.partitions_per_dim
                                                : auto_partitions_per_dim(cfg.threads, dim);
  pp.layout = cfg.variable_partitions
                  ? make_variable_layout(dim, g.m, cptr, count, target, min_width)
                  : make_fixed_layout(dim, g.m, target, min_width);
  pp.stats.partition_s = t.seconds();

  // --- bin samples into tasks (counting sort by task id) ---
  t.reset();
  const int ntasks = pp.layout.total_parts();
  std::vector<std::int32_t> task_of(static_cast<std::size_t>(count));
  std::vector<index_t> task_count(static_cast<std::size_t>(ntasks), 0);
  for (index_t i = 0; i < count; ++i) {
    std::array<int, 3> pc{0, 0, 0};
    for (int d = 0; d < dim; ++d) {
      pc[static_cast<std::size_t>(d)] =
          pp.layout.locate(d, cptr[static_cast<std::size_t>(d)][i]);
    }
    const int tk = pp.layout.flatten(pc);
    task_of[static_cast<std::size_t>(i)] = tk;
    ++task_count[static_cast<std::size_t>(tk)];
  }
  std::vector<index_t> offset(static_cast<std::size_t>(ntasks) + 1, 0);
  for (int k = 0; k < ntasks; ++k) {
    offset[static_cast<std::size_t>(k) + 1] =
        offset[static_cast<std::size_t>(k)] + task_count[static_cast<std::size_t>(k)];
  }
  pp.orig_index.resize(static_cast<std::size_t>(count));
  {
    std::vector<index_t> cursor(offset.begin(), offset.end() - 1);
    for (index_t i = 0; i < count; ++i) {
      const auto tk = static_cast<std::size_t>(task_of[static_cast<std::size_t>(i)]);
      pp.orig_index[static_cast<std::size_t>(cursor[tk]++)] = i;
    }
  }
  pp.stats.bin_s = t.seconds();

  // --- per-task tile reorder for cache reuse (§III-D) ---
  t.reset();
  if (cfg.reorder) {
    const index_t tile = std::max<index_t>(1, cfg.reorder_tile);
    // keys[orig] = tile-scan position of the sample's grid cell.
    std::vector<std::uint64_t> keys(static_cast<std::size_t>(count));
    for (index_t i = 0; i < count; ++i) {
      std::array<index_t, 3> cell{0, 0, 0};
      for (int d = 0; d < dim; ++d) {
        cell[static_cast<std::size_t>(d)] =
            static_cast<index_t>(cptr[static_cast<std::size_t>(d)][i]);
      }
      keys[static_cast<std::size_t>(i)] = reorder_key(cell, dim, tile);
    }
    auto* base = pp.orig_index.data();
    for (int k = 0; k < ntasks; ++k) {
      std::sort(base + offset[static_cast<std::size_t>(k)],
                base + offset[static_cast<std::size_t>(k) + 1], [&](index_t a, index_t b) {
                  const auto ka = keys[static_cast<std::size_t>(a)];
                  const auto kb = keys[static_cast<std::size_t>(b)];
                  return ka != kb ? ka < kb : a < b;
                });
    }
  }
  pp.stats.reorder_s = t.seconds();

  // --- materialize reordered coordinate arrays ---
  for (int d = 0; d < dim; ++d) {
    auto& dst = pp.coords[static_cast<std::size_t>(d)];
    dst.resize(static_cast<std::size_t>(count));
    const float* src = cptr[static_cast<std::size_t>(d)];
    for (index_t i = 0; i < count; ++i) {
      dst[static_cast<std::size_t>(i)] = src[pp.orig_index[static_cast<std::size_t>(i)]];
    }
  }

  // --- task table, weights, privatization ---
  t.reset();
  pp.graph = std::make_unique<TaskGraph>(pp.layout);
  pp.tasks.resize(static_cast<std::size_t>(ntasks));
  pp.weights.resize(static_cast<std::size_t>(ntasks));
  pp.privatized.assign(static_cast<std::size_t>(ntasks), 0);
  pp.privatization_threshold =
      privatization_threshold(count, cfg.threads, dim, cfg.privatization_factor);
  for (int k = 0; k < ntasks; ++k) {
    ConvTask& task = pp.tasks[static_cast<std::size_t>(k)];
    task.begin = offset[static_cast<std::size_t>(k)];
    task.end = offset[static_cast<std::size_t>(k) + 1];
    pp.weights[static_cast<std::size_t>(k)] = task.count();
    const TaskNode& node = pp.graph->node(k);
    for (int d = 0; d < dim; ++d) {
      const auto& b = pp.layout.bounds[static_cast<std::size_t>(d)];
      const auto pcd = static_cast<std::size_t>(node.pcoord[static_cast<std::size_t>(d)]);
      task.box_lo[static_cast<std::size_t>(d)] = b[pcd] - wceil;
      task.box_hi[static_cast<std::size_t>(d)] = b[pcd + 1] + wceil;
    }
    if (cfg.selective_privatization && task.count() > pp.privatization_threshold &&
        cfg.threads > 1) {
      pp.privatized[static_cast<std::size_t>(k)] = 1;
    }
  }
  pp.stats.graph_s = t.seconds();

  pp.stats.tasks = ntasks;
  pp.stats.privatized_tasks =
      static_cast<int>(std::count(pp.privatized.begin(), pp.privatized.end(), char(1)));
  pp.stats.total_s = total.seconds();
  return pp;
}

}  // namespace nufft
