#include "core/conv_dispatch.hpp"

#include <cmath>

#include "core/conv_variants.hpp"
#include "core/preprocess.hpp"

namespace nufft {

const char* conv_backend_name(ConvBackend b) {
  switch (b) {
    case ConvBackend::kScalar:
      return "scalar";
    case ConvBackend::kSse:
      return "sse";
    case ConvBackend::kAvx2:
      return "avx2";
  }
  return "unknown";
}

ConvDispatch::ConvDispatch() {
  // 3 backends × 3 dims × 5 widths × 2 evaluators.
  variants_.reserve(90);
  detail::append_scalar_variants(variants_);
  detail::append_sse_variants(variants_);
  detail::append_avx2_variants(variants_);
}

const ConvDispatch& ConvDispatch::instance() {
  static const ConvDispatch dispatch;
  return dispatch;
}

const ConvVariant* ConvDispatch::find(const ConvVariantKey& key) const {
  // 90 entries, plan-time only — a linear probe beats a hash table here.
  for (const ConvVariant& v : variants_) {
    if (v.key == key) return &v;
  }
  return nullptr;
}

std::uint8_t conv_width2(double kernel_radius) {
  const double doubled = 2.0 * kernel_radius;
  const double rounded = std::nearbyint(doubled);
  if (doubled != rounded) return 0;  // not half-integer → no specialization
  if (rounded < ConvDispatch::kMinWidth2 || rounded > ConvDispatch::kMaxWidth2) return 0;
  return static_cast<std::uint8_t>(rounded);
}

std::uint32_t conv_dispatch_id(const PlanConfig& cfg, int dim) {
  return (static_cast<std::uint32_t>(cfg.specialize_conv ? 1 : 0) << 24) |
         (static_cast<std::uint32_t>(dim) << 16) |
         (static_cast<std::uint32_t>(conv_width2(cfg.kernel_radius)) << 8) |
         static_cast<std::uint32_t>(cfg.eval);
}

}  // namespace nufft
