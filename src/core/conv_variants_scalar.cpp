// Scalar-backend variant instantiations. Baseline-compiled (no -mavx2); see
// the FP-contraction note in conv_variants.hpp.
#include "core/conv_variants.hpp"

namespace nufft::detail {

void append_scalar_variants(std::vector<ConvVariant>& out) {
  register_backend<ConvBackend::kScalar>(out);
}

}  // namespace nufft::detail
