#include "core/convolution.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "core/window_span.hpp"
#include "simd/vec4f.hpp"

// The scalar Part-2 kernels are the reference point of the paper's SIMD
// study (Fig. 13): they must execute genuinely scalar instructions, exactly
// like the 2012 scalar baseline, or the measured "SIMD speedup" silently
// compares hand-SSE against compiler-SSE. Pin their codegen.
#if defined(__GNUC__) && !defined(__clang__)
#define NUFFT_SCALAR_CODEGEN __attribute__((optimize("no-tree-vectorize", "no-tree-slp-vectorize")))
#else
#define NUFFT_SCALAR_CODEGEN
#endif

namespace nufft {

void compute_window(const GridDesc& g, const kernels::KernelLut& lut, const float* coord,
                    int dim, bool fill_dup, WindowBuf& wb) {
  WindowEval ev;
  ev.lut = &lut;
  compute_window(g, ev, coord, dim, fill_dup, wb);
}

void compute_window(const GridDesc& g, const WindowEval& ev, const float* coord, int dim,
                    bool fill_dup, WindowBuf& wb) {
  const kernels::KernelLut* lut = ev.lut;
  const float W = ev.radius();
  for (int d = 0; d < dim; ++d) {
    const float k = coord[d];
    // Window geometry (float-rounding trim + wrap) is shared with the
    // specialized dispatch variants via core/window_span.hpp — both paths
    // must stay byte-identical (see that header's contract).
    const WindowSpan sp = window_span(k, W);
    NUFFT_DASSERT(sp.len <= WindowBuf::kMaxLen);
    const index_t m = g.m[static_cast<std::size_t>(d)];
    wb.start[d] = sp.x1;
    wb.len[d] = sp.len;
    for (int i = 0; i < sp.len; ++i) {
      const index_t nx = sp.x1 + i;
      wb.idx[d][i] = wrap_grid_index(nx, m);
      if (lut != nullptr) wb.win[d][i] = (*lut)(std::fabs(static_cast<float>(nx) - k));
    }
    if (lut == nullptr) {
      // Horner batch path: every neighbour shares the abscissa
      // z = x1 − k + W ∈ [0, 1] and neighbour i sits at distance z − W + i,
      // which is exactly the per-segment parameterization the fit used.
      ev.horner->eval_window(static_cast<float>(sp.x1) - k + W, sp.len, wb.win[d]);
    }
  }
  const int last = dim - 1;
  wb.inner_contiguous =
      wb.start[last] >= 0 && wb.start[last] + wb.len[last] <= g.m[static_cast<std::size_t>(last)];
  if (fill_dup) {
    for (int i = 0; i < wb.len[last]; ++i) {
      wb.win_dup[2 * i] = wb.win[last][i];
      wb.win_dup[2 * i + 1] = wb.win[last][i];
    }
  }
}

namespace {

// ---- scalar inner loops over the last (contiguous-memory) dimension ----

NUFFT_SCALAR_CODEGEN
inline void adj_inner_scalar(cfloat* row, const float* win, const index_t* idx, int len,
                             cfloat tmp) {
  for (int t = 0; t < len; ++t) row[idx[t]] += tmp * win[t];
}

NUFFT_SCALAR_CODEGEN
inline cfloat fwd_inner_scalar(const cfloat* row, const float* win, const index_t* idx,
                               int len) {
  cfloat acc(0.0f, 0.0f);
  for (int t = 0; t < len; ++t) acc += row[idx[t]] * win[t];
  return acc;
}

// ---- SSE inner loops: two interleaved complex cells per 128-bit op ----

inline void adj_inner_simd(cfloat* row, const WindowBuf& wb, int last, cfloat tmp) {
  const int len = wb.len[last];
  if (!wb.inner_contiguous) {
    adj_inner_scalar(row, wb.win[last], wb.idx[last], len, tmp);
    return;
  }
  auto* p = reinterpret_cast<float*>(row + wb.idx[last][0]);
  const simd::Vec4f v(tmp.real(), tmp.imag(), tmp.real(), tmp.imag());
  const int pairs = len / 2;
  for (int j = 0; j < pairs; ++j) {
    const simd::Vec4f w = simd::Vec4f::load(wb.win_dup + 4 * j);
    simd::madd(v, w, simd::Vec4f::loadu(p + 4 * j)).storeu(p + 4 * j);
  }
  if ((len & 1) != 0) row[wb.idx[last][0] + len - 1] += tmp * wb.win[last][len - 1];
}

inline cfloat fwd_inner_simd(const cfloat* row, const WindowBuf& wb, int last) {
  const int len = wb.len[last];
  if (!wb.inner_contiguous) {
    return fwd_inner_scalar(row, wb.win[last], wb.idx[last], len);
  }
  const auto* p = reinterpret_cast<const float*>(row + wb.idx[last][0]);
  simd::Vec4f acc = simd::Vec4f::zero();
  const int pairs = len / 2;
  for (int j = 0; j < pairs; ++j) {
    const simd::Vec4f w = simd::Vec4f::load(wb.win_dup + 4 * j);
    acc = simd::madd(simd::Vec4f::loadu(p + 4 * j), w, acc);
  }
  const simd::Vec4f pairsum = acc.hsum_complex_pairs();
  cfloat out(pairsum[0], pairsum[1]);
  if ((len & 1) != 0) out += row[wb.idx[last][0] + len - 1] * wb.win[last][len - 1];
  return out;
}

}  // namespace

// ---- adjoint (scatter) ----

template <int DIM>
NUFFT_SCALAR_CODEGEN void adj_scatter_scalar(cfloat* grid, const std::array<index_t, 3>& strides,
                                             const WindowBuf& wb, cfloat val) {
  constexpr int last = DIM - 1;
  if constexpr (DIM == 1) {
    adj_inner_scalar(grid, wb.win[0], wb.idx[0], wb.len[0], val);
  } else if constexpr (DIM == 2) {
    for (int iy = 0; iy < wb.len[0]; ++iy) {
      cfloat tmp = val * wb.win[0][iy];
      adj_inner_scalar(grid + wb.idx[0][iy] * strides[0], wb.win[last], wb.idx[last],
                       wb.len[last], tmp);
    }
  } else {
    for (int ix = 0; ix < wb.len[0]; ++ix) {
      cfloat* base = grid + wb.idx[0][ix] * strides[0];
      const float wx = wb.win[0][ix];
      for (int iy = 0; iy < wb.len[1]; ++iy) {
        const float wxy = wx * wb.win[1][iy];
        adj_inner_scalar(base + wb.idx[1][iy] * strides[1], wb.win[last], wb.idx[last],
                         wb.len[last], val * wxy);
      }
    }
  }
}

template <int DIM>
void adj_scatter_simd(cfloat* grid, const std::array<index_t, 3>& strides, const WindowBuf& wb,
                      cfloat val) {
  constexpr int last = DIM - 1;
  if constexpr (DIM == 1) {
    adj_inner_simd(grid, wb, last, val);
  } else if constexpr (DIM == 2) {
    for (int iy = 0; iy < wb.len[0]; ++iy) {
      adj_inner_simd(grid + wb.idx[0][iy] * strides[0], wb, last, val * wb.win[0][iy]);
    }
  } else {
    for (int ix = 0; ix < wb.len[0]; ++ix) {
      cfloat* base = grid + wb.idx[0][ix] * strides[0];
      const float wx = wb.win[0][ix];
      for (int iy = 0; iy < wb.len[1]; ++iy) {
        const float wxy = wx * wb.win[1][iy];
        adj_inner_simd(base + wb.idx[1][iy] * strides[1], wb, last, val * wxy);
      }
    }
  }
}

// ---- forward (gather) ----

template <int DIM>
NUFFT_SCALAR_CODEGEN cfloat fwd_gather_scalar(const cfloat* grid,
                                              const std::array<index_t, 3>& strides,
                                              const WindowBuf& wb) {
  constexpr int last = DIM - 1;
  if constexpr (DIM == 1) {
    return fwd_inner_scalar(grid, wb.win[0], wb.idx[0], wb.len[0]);
  } else if constexpr (DIM == 2) {
    cfloat acc(0.0f, 0.0f);
    for (int iy = 0; iy < wb.len[0]; ++iy) {
      acc += fwd_inner_scalar(grid + wb.idx[0][iy] * strides[0], wb.win[last], wb.idx[last],
                              wb.len[last]) *
             wb.win[0][iy];
    }
    return acc;
  } else {
    cfloat acc(0.0f, 0.0f);
    for (int ix = 0; ix < wb.len[0]; ++ix) {
      const cfloat* base = grid + wb.idx[0][ix] * strides[0];
      const float wx = wb.win[0][ix];
      for (int iy = 0; iy < wb.len[1]; ++iy) {
        const float wxy = wx * wb.win[1][iy];
        acc += fwd_inner_scalar(base + wb.idx[1][iy] * strides[1], wb.win[last], wb.idx[last],
                                wb.len[last]) *
               wxy;
      }
    }
    return acc;
  }
}

template <int DIM>
cfloat fwd_gather_simd(const cfloat* grid, const std::array<index_t, 3>& strides,
                       const WindowBuf& wb) {
  constexpr int last = DIM - 1;
  if constexpr (DIM == 1) {
    return fwd_inner_simd(grid, wb, last);
  } else if constexpr (DIM == 2) {
    cfloat acc(0.0f, 0.0f);
    for (int iy = 0; iy < wb.len[0]; ++iy) {
      acc += fwd_inner_simd(grid + wb.idx[0][iy] * strides[0], wb, last) * wb.win[0][iy];
    }
    return acc;
  } else {
    cfloat acc(0.0f, 0.0f);
    for (int ix = 0; ix < wb.len[0]; ++ix) {
      const cfloat* base = grid + wb.idx[0][ix] * strides[0];
      const float wx = wb.win[0][ix];
      for (int iy = 0; iy < wb.len[1]; ++iy) {
        const float wxy = wx * wb.win[1][iy];
        acc += fwd_inner_simd(base + wb.idx[1][iy] * strides[1], wb, last) * wxy;
      }
    }
    return acc;
  }
}

template void adj_scatter_scalar<1>(cfloat*, const std::array<index_t, 3>&, const WindowBuf&, cfloat);
template void adj_scatter_scalar<2>(cfloat*, const std::array<index_t, 3>&, const WindowBuf&, cfloat);
template void adj_scatter_scalar<3>(cfloat*, const std::array<index_t, 3>&, const WindowBuf&, cfloat);
template void adj_scatter_simd<1>(cfloat*, const std::array<index_t, 3>&, const WindowBuf&, cfloat);
template void adj_scatter_simd<2>(cfloat*, const std::array<index_t, 3>&, const WindowBuf&, cfloat);
template void adj_scatter_simd<3>(cfloat*, const std::array<index_t, 3>&, const WindowBuf&, cfloat);
template cfloat fwd_gather_scalar<1>(const cfloat*, const std::array<index_t, 3>&, const WindowBuf&);
template cfloat fwd_gather_scalar<2>(const cfloat*, const std::array<index_t, 3>&, const WindowBuf&);
template cfloat fwd_gather_scalar<3>(const cfloat*, const std::array<index_t, 3>&, const WindowBuf&);
template cfloat fwd_gather_simd<1>(const cfloat*, const std::array<index_t, 3>&, const WindowBuf&);
template cfloat fwd_gather_simd<2>(const cfloat*, const std::array<index_t, 3>&, const WindowBuf&);
template cfloat fwd_gather_simd<3>(const cfloat*, const std::array<index_t, 3>&, const WindowBuf&);

}  // namespace nufft
