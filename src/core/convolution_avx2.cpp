// This translation unit is compiled with -mavx2 -mfma (see src/CMakeLists).
#include "core/convolution_avx2.hpp"

#include "simd/vec8f.hpp"

namespace nufft {

bool avx2_available() {
#if defined(__GNUC__)
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

namespace {

// Inner loop over the contiguous last dimension: 4 complex cells per op,
// then a 2-cell SSE-width step, then a scalar remainder.
inline void adj_inner_avx2(cfloat* row, const WindowBuf& wb, int last, cfloat tmp) {
  const int len = wb.len[last];
  if (!wb.inner_contiguous) {
    // Wrapped windows take the indexed path (rare).
    for (int t = 0; t < len; ++t) row[wb.idx[last][t]] += tmp * wb.win[last][t];
    return;
  }
  auto* p = reinterpret_cast<float*>(row + wb.idx[last][0]);
  const simd::Vec8f v = simd::Vec8f::broadcast_complex(tmp.real(), tmp.imag());
  const int quads = len / 4;
  for (int j = 0; j < quads; ++j) {
    const simd::Vec8f w = simd::Vec8f::load(wb.win_dup + 8 * j);
    simd::fmadd(v, w, simd::Vec8f::loadu(p + 8 * j)).storeu(p + 8 * j);
  }
  for (int t = 4 * quads; t < len; ++t) {
    row[wb.idx[last][0] + t] += tmp * wb.win[last][t];
  }
}

inline cfloat fwd_inner_avx2(const cfloat* row, const WindowBuf& wb, int last) {
  const int len = wb.len[last];
  if (!wb.inner_contiguous) {
    cfloat acc(0.0f, 0.0f);
    for (int t = 0; t < len; ++t) acc += row[wb.idx[last][t]] * wb.win[last][t];
    return acc;
  }
  const auto* p = reinterpret_cast<const float*>(row + wb.idx[last][0]);
  simd::Vec8f acc = simd::Vec8f::zero();
  const int quads = len / 4;
  for (int j = 0; j < quads; ++j) {
    const simd::Vec8f w = simd::Vec8f::load(wb.win_dup + 8 * j);
    acc = simd::fmadd(simd::Vec8f::loadu(p + 8 * j), w, acc);
  }
  float re = 0.0f, im = 0.0f;
  acc.hsum_complex(re, im);
  cfloat out(re, im);
  for (int t = 4 * quads; t < len; ++t) {
    out += row[wb.idx[last][0] + t] * wb.win[last][t];
  }
  return out;
}

}  // namespace

template <int DIM>
void adj_scatter_avx2(cfloat* grid, const std::array<index_t, 3>& strides, const WindowBuf& wb,
                      cfloat val) {
  constexpr int last = DIM - 1;
  if constexpr (DIM == 1) {
    adj_inner_avx2(grid, wb, last, val);
  } else if constexpr (DIM == 2) {
    for (int iy = 0; iy < wb.len[0]; ++iy) {
      adj_inner_avx2(grid + wb.idx[0][iy] * strides[0], wb, last, val * wb.win[0][iy]);
    }
  } else {
    for (int ix = 0; ix < wb.len[0]; ++ix) {
      cfloat* base = grid + wb.idx[0][ix] * strides[0];
      const float wx = wb.win[0][ix];
      for (int iy = 0; iy < wb.len[1]; ++iy) {
        const float wxy = wx * wb.win[1][iy];
        adj_inner_avx2(base + wb.idx[1][iy] * strides[1], wb, last, val * wxy);
      }
    }
  }
}

template <int DIM>
cfloat fwd_gather_avx2(const cfloat* grid, const std::array<index_t, 3>& strides,
                       const WindowBuf& wb) {
  constexpr int last = DIM - 1;
  if constexpr (DIM == 1) {
    return fwd_inner_avx2(grid, wb, last);
  } else if constexpr (DIM == 2) {
    cfloat acc(0.0f, 0.0f);
    for (int iy = 0; iy < wb.len[0]; ++iy) {
      acc += fwd_inner_avx2(grid + wb.idx[0][iy] * strides[0], wb, last) * wb.win[0][iy];
    }
    return acc;
  } else {
    cfloat acc(0.0f, 0.0f);
    for (int ix = 0; ix < wb.len[0]; ++ix) {
      const cfloat* base = grid + wb.idx[0][ix] * strides[0];
      const float wx = wb.win[0][ix];
      for (int iy = 0; iy < wb.len[1]; ++iy) {
        const float wxy = wx * wb.win[1][iy];
        acc += fwd_inner_avx2(base + wb.idx[1][iy] * strides[1], wb, last) * wxy;
      }
    }
    return acc;
  }
}

template void adj_scatter_avx2<1>(cfloat*, const std::array<index_t, 3>&, const WindowBuf&, cfloat);
template void adj_scatter_avx2<2>(cfloat*, const std::array<index_t, 3>&, const WindowBuf&, cfloat);
template void adj_scatter_avx2<3>(cfloat*, const std::array<index_t, 3>&, const WindowBuf&, cfloat);
template cfloat fwd_gather_avx2<1>(const cfloat*, const std::array<index_t, 3>&, const WindowBuf&);
template cfloat fwd_gather_avx2<2>(const cfloat*, const std::array<index_t, 3>&, const WindowBuf&);
template cfloat fwd_gather_avx2<3>(const cfloat*, const std::array<index_t, 3>&, const WindowBuf&);

}  // namespace nufft
