// Template bodies of the specialized convolution variants — included by the
// three per-backend registration TUs (conv_variants_{scalar,sse,avx2}.cpp)
// and instantiable from benches/tests for Part-1 micro-measurement.
//
// Bit-identity contract with the generic path (core/convolution.cpp +
// core/nufft.cpp): for every key, the specialized spread/interp must produce
// bit-identical results to the generic loop on the same plan. Three rules
// keep that true:
//
//   1. The window geometry (float-rounding trim, modular wrap) comes from
//      the SAME inline helpers the generic compute_window uses
//      (core/window_span.hpp), never re-derived.
//   2. Every TU including this header is compiled at the baseline ISA. On a
//      TU built with -mavx2 -mfma the compiler may contract the a·b+c shapes
//      in the window/weight arithmetic into FMA, which changes rounding and
//      silently breaks the bit-match against the baseline-compiled generic
//      path. AVX2 work is reached only through *extern* functions that were
//      themselves audited for lane-exactness: the Part-2 kernels of
//      core/convolution_avx2.cpp (the very same functions the generic AVX2
//      mode calls), and kernels::eval_window_avx2 (explicit mul+add
//      intrinsics, never fmadd — see kernels/horner_avx2.cpp).
//   3. The per-sample body mirrors the generic convolve_range / interp loop
//      statement for statement (box rebase included); only the compile-time
//      constants (dim, W, evaluator, backend) differ.
//
// What specialization buys (paper Part 1, the dominant phase at small W):
// constexpr W feeds the trim, the per-element `lut != nullptr` branch and
// the per-sample backend switch disappear, the dim loops unroll, and the
// AVX2+Horner combination evaluates the whole weight row 8 segments per
// instruction instead of riding the scalar recurrence.
#pragma once

#include <cstdio>

#include "common/error.hpp"
#include "core/conv_dispatch.hpp"
#include "core/convolution.hpp"
#include "core/convolution_avx2.hpp"
#include "core/window_span.hpp"
#include "kernels/horner.hpp"

namespace nufft::detail {

/// Part 1 with compile-time dim/width/evaluator. `AVX2ROW` routes the Horner
/// row evaluation through the AVX2 evaluator (only set for the AVX2 backend,
/// whose availability the plan already verified).
template <int DIM, int W2, bool HORNER, bool AVX2ROW>
inline void window_spec(const GridDesc& g, const WindowEval& ev, const float* coord,
                        bool fill_dup, WindowBuf& wb) {
  constexpr float W = static_cast<float>(W2) * 0.5f;  // exact for half-integer widths
  for (int d = 0; d < DIM; ++d) {
    const float k = coord[d];
    const WindowSpan sp = window_span(k, W);
    NUFFT_DASSERT(sp.len <= WindowBuf::kMaxLen);
    const index_t m = g.m[static_cast<std::size_t>(d)];
    wb.start[d] = sp.x1;
    wb.len[d] = sp.len;
    if constexpr (!HORNER) {
      const kernels::KernelLut& lut = *ev.lut;
      for (int i = 0; i < sp.len; ++i) {
        const index_t nx = sp.x1 + i;
        wb.idx[d][i] = wrap_grid_index(nx, m);
        wb.win[d][i] = lut(std::fabs(static_cast<float>(nx) - k));
      }
    } else {
      for (int i = 0; i < sp.len; ++i) wb.idx[d][i] = wrap_grid_index(sp.x1 + i, m);
      // Shared abscissa z = x1 − k + W ∈ [0, 1]; one row evaluation covers
      // the whole window (see kernels/horner.hpp).
      const float z = static_cast<float>(sp.x1) - k + W;
      if constexpr (AVX2ROW) {
        kernels::eval_window_avx2(*ev.horner, z, sp.len, wb.win[d]);
      } else {
        ev.horner->eval_window(z, sp.len, wb.win[d]);
      }
    }
  }
  constexpr int last = DIM - 1;
  wb.inner_contiguous = wb.start[last] >= 0 &&
                        wb.start[last] + wb.len[last] <= g.m[static_cast<std::size_t>(last)];
  if (fill_dup) {
    for (int i = 0; i < wb.len[last]; ++i) {
      wb.win_dup[2 * i] = wb.win[last][i];
      wb.win_dup[2 * i + 1] = wb.win[last][i];
    }
  }
}

/// Rebase neighbour indices into a privatized task's box — identical to the
/// generic path's rebase (core/nufft.cpp convolve_range).
template <int DIM>
inline void rebase_box(const index_t* box_lo, WindowBuf& wb) {
  for (int d = 0; d < DIM; ++d) {
    for (int t = 0; t < wb.len[d]; ++t) {
      wb.idx[d][t] = wb.start[d] + t - box_lo[d];
    }
  }
  wb.inner_contiguous = true;
}

template <ConvBackend B, int DIM, int W2, bool HORNER>
void spread_range(const ConvRange& a, const cfloat* raw, cfloat* dst,
                  const std::array<index_t, 3>& strides) {
  constexpr bool kFillDup = B != ConvBackend::kScalar;
  WindowBuf wb;
  for (index_t i = a.begin; i < a.end; ++i) {
    float coord[3];
    for (int d = 0; d < DIM; ++d) {
      coord[d] = a.coords[static_cast<std::size_t>(d)][static_cast<std::size_t>(i)];
    }
    window_spec<DIM, W2, HORNER, B == ConvBackend::kAvx2 && HORNER>(*a.g, a.ev, coord,
                                                                    kFillDup, wb);
    if (a.box_lo != nullptr) rebase_box<DIM>(a.box_lo, wb);
    const cfloat v = raw[a.orig_index[static_cast<std::size_t>(i)]];
    if constexpr (B == ConvBackend::kScalar) {
      adj_scatter_scalar<DIM>(dst, strides, wb, v);
    } else if constexpr (B == ConvBackend::kSse) {
      adj_scatter_simd<DIM>(dst, strides, wb, v);
    } else {
      adj_scatter_avx2<DIM>(dst, strides, wb, v);
    }
  }
}

template <ConvBackend B, int DIM, int W2, bool HORNER>
void interp_range(const ConvRange& a, const cfloat* grid, const std::array<index_t, 3>& strides,
                  cfloat* out) {
  constexpr bool kFillDup = B != ConvBackend::kScalar;
  WindowBuf wb;
  for (index_t i = a.begin; i < a.end; ++i) {
    float coord[3];
    for (int d = 0; d < DIM; ++d) {
      coord[d] = a.coords[static_cast<std::size_t>(d)][static_cast<std::size_t>(i)];
    }
    window_spec<DIM, W2, HORNER, B == ConvBackend::kAvx2 && HORNER>(*a.g, a.ev, coord,
                                                                    kFillDup, wb);
    cfloat v;
    if constexpr (B == ConvBackend::kScalar) {
      v = fwd_gather_scalar<DIM>(grid, strides, wb);
    } else if constexpr (B == ConvBackend::kSse) {
      v = fwd_gather_simd<DIM>(grid, strides, wb);
    } else {
      v = fwd_gather_avx2<DIM>(grid, strides, wb);
    }
    out[a.orig_index[static_cast<std::size_t>(i)]] = v;
  }
}

template <ConvBackend B, int DIM, int W2, bool HORNER>
ConvVariant make_variant() {
  ConvVariant v;
  v.key.backend = B;
  v.key.dim = static_cast<std::uint8_t>(DIM);
  v.key.width2 = static_cast<std::uint8_t>(W2);
  v.key.eval = HORNER ? kernels::KernelEval::kHorner : kernels::KernelEval::kLut;
  char name[32];
  std::snprintf(name, sizeof(name), "%s.d%d.w%d.%s", conv_backend_name(B), DIM, W2,
                HORNER ? "horner" : "lut");
  v.name = name;
  v.spread = &spread_range<B, DIM, W2, HORNER>;
  v.interp = &interp_range<B, DIM, W2, HORNER>;
  return v;
}

template <ConvBackend B, int DIM, int W2>
void add_width(std::vector<ConvVariant>& out) {
  out.push_back(make_variant<B, DIM, W2, false>());
  out.push_back(make_variant<B, DIM, W2, true>());
}

template <ConvBackend B, int DIM>
void add_dim(std::vector<ConvVariant>& out) {
  add_width<B, DIM, 4>(out);
  add_width<B, DIM, 5>(out);
  add_width<B, DIM, 6>(out);
  add_width<B, DIM, 7>(out);
  add_width<B, DIM, 8>(out);
}

/// Instantiate every (dim, width2, evaluator) combination of one backend.
template <ConvBackend B>
void register_backend(std::vector<ConvVariant>& out) {
  add_dim<B, 1>(out);
  add_dim<B, 2>(out);
  add_dim<B, 3>(out);
}

void append_scalar_variants(std::vector<ConvVariant>& out);
void append_sse_variants(std::vector<ConvVariant>& out);
void append_avx2_variants(std::vector<ConvVariant>& out);

}  // namespace nufft::detail
