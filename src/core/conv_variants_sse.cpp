// SSE-backend variant instantiations. Part 2 routes to the adj_scatter_simd /
// fwd_gather_simd kernels of core/convolution.cpp (baseline SSE2 — the TU
// itself stays baseline-compiled; see the FP-contraction note in
// conv_variants.hpp).
#include "core/conv_variants.hpp"

namespace nufft::detail {

void append_sse_variants(std::vector<ConvVariant>& out) {
  register_backend<ConvBackend::kSse>(out);
}

}  // namespace nufft::detail
