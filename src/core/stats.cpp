#include "core/stats.hpp"

#include <algorithm>
#include <numeric>

namespace nufft {

double OperatorStats::load_imbalance() const {
  if (busy_ns_per_context.empty()) return 0.0;
  const auto max = *std::max_element(busy_ns_per_context.begin(), busy_ns_per_context.end());
  const auto sum = std::accumulate(busy_ns_per_context.begin(), busy_ns_per_context.end(),
                                   std::uint64_t{0});
  if (sum == 0) return 0.0;
  const double mean = static_cast<double>(sum) / static_cast<double>(busy_ns_per_context.size());
  return static_cast<double>(max) / mean;
}

}  // namespace nufft
