#include "core/stats.hpp"

#include <algorithm>
#include <numeric>

namespace nufft {

void OperatorStats::add_scheduler_pass(int pass_tasks, int pass_privatized,
                                       const std::vector<std::uint64_t>& busy) {
  tasks += pass_tasks;
  privatized_tasks += pass_privatized;
  if (busy_ns_per_context.size() < busy.size()) {
    busy_ns_per_context.resize(busy.size(), 0);
  }
  for (std::size_t i = 0; i < busy.size(); ++i) busy_ns_per_context[i] += busy[i];
}

double OperatorStats::load_imbalance() const {
  if (busy_ns_per_context.empty()) return 0.0;  // no parallel pass ran
  const auto max = *std::max_element(busy_ns_per_context.begin(), busy_ns_per_context.end());
  const auto sum = std::accumulate(busy_ns_per_context.begin(), busy_ns_per_context.end(),
                                   std::uint64_t{0});
  if (sum == 0) {
    // A pass ran but recorded no busy time: with zero tasks that is trivial
    // perfect balance; with real tasks the clock failed to resolve the work
    // and 0.0 keeps "unmeasurable" distinguishable from "balanced".
    return tasks == 0 ? 1.0 : 0.0;
  }
  const double mean = static_cast<double>(sum) / static_cast<double>(busy_ns_per_context.size());
  return static_cast<double>(max) / mean;
}

}  // namespace nufft
