#include "core/nufft.hpp"

#include <cmath>
#include <cstring>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "core/conv_dispatch.hpp"
#include "core/convolution.hpp"
#include "core/convolution_avx2.hpp"
#include "core/tolerance.hpp"
#include "kernels/rolloff.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace nufft {

namespace {

// Wrap an unwrapped grid coordinate into [0, m); preprocessing guarantees
// coordinates stay within one period of the grid.
inline index_t wrap_coord(index_t v, index_t m) {
  if (v < 0) return v + m;
  if (v >= m) return v - m;
  return v;
}

// Dispatch a per-sample convolution body over a compile-time dimension.
template <class F1, class F2, class F3>
void dim_dispatch(int dim, F1&& f1, F2&& f2, F3&& f3) {
  switch (dim) {
    case 1:
      f1();
      return;
    case 2:
      f2();
      return;
    case 3:
      f3();
      return;
    default:
      throw Error("unsupported dimension");
  }
}

}  // namespace

Nufft::Nufft(const GridDesc& g, const datasets::SampleSet& samples, const PlanConfig& cfg)
    : Nufft(g, samples, cfg, Preprocessed{}) {}

Nufft::Nufft(const GridDesc& g, const datasets::SampleSet& samples, const PlanConfig& cfg,
             Preprocessed restored)
    : g_(g), cfg_(cfg), nsamples_(samples.count()) {
  // Tolerance-driven plans resolve their kernel parameters first, so every
  // check and table below sees the resolved width/eval. Deterministic, so a
  // restored plan preprocessed under the same cfg resolves identically.
  apply_tolerance(cfg_, g.alpha);
  // Reject degenerate input before preprocessing touches it: NaN/Inf or
  // out-of-range coordinates would silently corrupt the histogram pass.
  datasets::validate_samples(samples);
  NUFFT_CHECK(samples.dim == g.dim);
  for (int d = 0; d < g.dim; ++d) {
    NUFFT_CHECK_MSG(samples.m == g.m[static_cast<std::size_t>(d)],
                    "sample set generated for a different grid size");
  }
  // A kernel footprint wider than the grid would make one sample revisit
  // grid cells and the rolloff correction meaningless; reject it for every
  // construction path — in particular the restored-plan constructor below,
  // which skips preprocess() and its identical check.
  const auto footprint = 2 * static_cast<index_t>(std::ceil(cfg_.kernel_radius)) + 1;
  for (int d = 0; d < g.dim; ++d) {
    NUFFT_CHECK_MSG(g.m[static_cast<std::size_t>(d)] >= footprint,
                    "grid dimension " << d << " (m = " << g.m[static_cast<std::size_t>(d)]
                                      << ") narrower than one kernel footprint (2*ceil(W)+1 = "
                                      << footprint
                                      << "); shrink kernel_radius or enlarge the grid");
  }
  pool_ = std::make_unique<ThreadPool>(cfg_.threads);
  if (restored.graph != nullptr) {
    NUFFT_CHECK_MSG(static_cast<index_t>(restored.orig_index.size()) == nsamples_,
                    "restored plan does not match the sample set");
    pp_ = std::move(restored);
  } else {
    pp_ = preprocess(g_, samples, cfg_, *pool_);
  }

  std::vector<std::size_t> dims;
  for (int d = 0; d < g.dim; ++d) dims.push_back(static_cast<std::size_t>(g.m[static_cast<std::size_t>(d)]));
  fft_fwd_ = std::make_shared<fft::FftNd<float>>(dims, fft::Direction::kForward);
  fft_inv_ = std::make_shared<fft::FftNd<float>>(dims, fft::Direction::kInverse);

  // Rolloff precompensation with the ±1 chop baked in per dimension:
  // scale[d][i] = (−1)^(i − N/2) / apodization(i − N/2).
  const auto kernel = kernels::make_kernel(cfg_.kernel, cfg_.kernel_radius, g.alpha);
  for (int d = 0; d < g.dim; ++d) {
    const index_t n = g.n[static_cast<std::size_t>(d)];
    const index_t m = g.m[static_cast<std::size_t>(d)];
    fvec s = kernels::rolloff_1d(*kernel, n, m);
    auto& wrap = wrap_[static_cast<std::size_t>(d)];
    wrap.resize(static_cast<std::size_t>(n));
    // Inverse map for the fused scale pass: grid index → image index, −1 on
    // the zero-padding cells the image never touches.
    auto& inv = inv_wrap_[static_cast<std::size_t>(d)];
    inv.assign(static_cast<std::size_t>(m), static_cast<index_t>(-1));
    for (index_t i = 0; i < n; ++i) {
      const index_t centered = i - n / 2;
      if ((centered & 1) != 0) s[static_cast<std::size_t>(i)] = -s[static_cast<std::size_t>(i)];
      wrap[static_cast<std::size_t>(i)] = centered >= 0 ? centered : centered + m;
      inv[static_cast<std::size_t>(wrap[static_cast<std::size_t>(i)])] = i;
    }
    // Collapse the inverse map into maximal contiguous runs so the fused
    // scale pass can stream each stretch instead of looking up every cell.
    auto& runs = wrap_runs_[static_cast<std::size_t>(d)];
    for (index_t gidx = 0; gidx < m; ++gidx) {
      const index_t img = inv[static_cast<std::size_t>(gidx)];
      if (img < 0) continue;
      if (!runs.empty() && runs.back().g_end == gidx &&
          runs.back().i_begin + (gidx - runs.back().g_begin) == img) {
        runs.back().g_end = gidx + 1;
      } else {
        runs.push_back({gidx, gidx + 1, img});
      }
    }
    scale_[static_cast<std::size_t>(d)] = std::move(s);
  }

  // The LUT lives in the plan for the whole lifetime; Horner plans fit their
  // piecewise polynomials alongside it (the LUT stays available for
  // diagnostics and the radius bookkeeping).
  lut_ = std::make_shared<kernels::KernelLut>(*kernel, cfg_.lut_samples_per_unit);
  if (cfg_.eval == kernels::KernelEval::kHorner) {
    horner_ = std::make_shared<kernels::KernelHorner>(*kernel);
  }

  // Resolve the vector path once. kAuto prefers AVX2 when the CPU has it;
  // an explicit kAvx2 request on an unsupported CPU is a caller error.
  if (!cfg_.use_simd) {
    conv_mode_ = ConvMode::kScalar;
  } else if (cfg_.isa == SimdIsa::kAvx2 ||
             (cfg_.isa == SimdIsa::kAuto && avx2_available())) {
    NUFFT_CHECK_MSG(avx2_available(), "AVX2 kernels requested on a CPU without AVX2+FMA");
    conv_mode_ = ConvMode::kAvx2;
  } else {
    conv_mode_ = ConvMode::kSse;
  }

  // Bind the convolution hot path to a specialized dispatch variant when the
  // resolved (backend, dim, W, evaluator) shape is registered; every
  // uncovered shape — non-half-integer W, W outside the calibrated set, or
  // the specialize_conv ablation — keeps the generic loop. The two paths are
  // bit-identical by contract (tests/test_dispatch.cpp), so this is purely a
  // performance decision.
  if (cfg_.specialize_conv) {
    ConvVariantKey key;
    key.backend = conv_mode_ == ConvMode::kScalar  ? ConvBackend::kScalar
                  : conv_mode_ == ConvMode::kSse   ? ConvBackend::kSse
                                                   : ConvBackend::kAvx2;
    key.dim = static_cast<std::uint8_t>(g_.dim);
    key.width2 = conv_width2(cfg_.kernel_radius);
    key.eval = cfg_.eval;
    if (key.width2 != 0) conv_variant_ = ConvDispatch::instance().find(key);
  }
  if (conv_variant_ != nullptr) {
    plan_stats_.conv_specialized = true;
    plan_stats_.conv_variant_id = conv_variant_->key.id();
    plan_stats_.conv_variant = conv_variant_->name;
  }
  obs::count(std::string("nufft.conv.variant.") + plan_stats_.conv_variant);

  // The plan-owned workspace backing the convenience (non-const) API.
  ws_ = make_workspace();
}

Nufft::Nufft(const Nufft& src, const datasets::SampleSet& new_samples, const UpdateOptions& opts)
    : g_(src.g_),
      cfg_(src.cfg_),  // already tolerance-resolved — do NOT re-apply
      nsamples_(new_samples.count()) {
  datasets::validate_samples(new_samples);
  NUFFT_CHECK(new_samples.dim == g_.dim);
  for (int d = 0; d < g_.dim; ++d) {
    NUFFT_CHECK_MSG(new_samples.m == g_.m[static_cast<std::size_t>(d)],
                    "sample set generated for a different grid size");
  }
  pool_ = std::make_unique<ThreadPool>(cfg_.threads);
  pp_ = clone_preprocessed(src.pp_);
  const UpdatePath path = update_preprocessed(pp_, g_, new_samples, cfg_, *pool_, opts);

  // Everything below depends only on (grid, cfg), both preserved verbatim —
  // share the immutable tables instead of rebuilding them.
  fft_fwd_ = src.fft_fwd_;
  fft_inv_ = src.fft_inv_;
  scale_ = src.scale_;
  wrap_ = src.wrap_;
  inv_wrap_ = src.inv_wrap_;
  wrap_runs_ = src.wrap_runs_;
  lut_ = src.lut_;
  horner_ = src.horner_;
  conv_mode_ = src.conv_mode_;
  conv_variant_ = src.conv_variant_;
  plan_stats_ = src.plan_stats_;
  if (path != UpdatePath::kNoop) ++plan_stats_.generation;
  plan_stats_.warm_updated = path == UpdatePath::kWarm;

  ws_ = make_workspace();
}

UpdatePath Nufft::update_samples(const datasets::SampleSet& new_samples,
                                 const UpdateOptions& opts) {
  datasets::validate_samples(new_samples);
  NUFFT_CHECK(new_samples.dim == g_.dim);
  for (int d = 0; d < g_.dim; ++d) {
    NUFFT_CHECK_MSG(new_samples.m == g_.m[static_cast<std::size_t>(d)],
                    "sample set generated for a different grid size");
  }
  const UpdatePath path = update_preprocessed(pp_, g_, new_samples, cfg_, *pool_, opts);
  if (path == UpdatePath::kNoop) return path;
  nsamples_ = new_samples.count();
  ++plan_stats_.generation;
  plan_stats_.warm_updated = path == UpdatePath::kWarm;
  // Reconcile the plan-owned workspace with the new privatization marks:
  // keep already-sized buffers, size newly privatized ones, release the rest.
  ws_.private_bufs.resize(pp_.tasks.size());
  for (std::size_t k = 0; k < pp_.tasks.size(); ++k) {
    if (pp_.privatized[k]) {
      ws_.private_bufs[k].resize(static_cast<std::size_t>(pp_.tasks[k].box_elems(g_.dim)));
    } else if (!ws_.private_bufs[k].empty()) {
      cvecf().swap(ws_.private_bufs[k]);
    }
  }
  return path;
}

Nufft::~Nufft() = default;

ConvRange Nufft::conv_range(const ConvTask& task, bool box_local) const {
  ConvRange r;
  r.g = &g_;
  r.ev = window_eval();
  for (int d = 0; d < g_.dim; ++d) {
    r.coords[static_cast<std::size_t>(d)] = pp_.coords[static_cast<std::size_t>(d)].data();
  }
  r.orig_index = pp_.orig_index.data();
  r.begin = task.begin;
  r.end = task.end;
  r.box_lo = box_local ? task.box_lo.data() : nullptr;
  return r;
}

Workspace Nufft::make_workspace() const {
  Workspace ws;
  ws.grid.resize(static_cast<std::size_t>(g_.grid_elems()));
  ws.private_bufs.resize(pp_.tasks.size());
  for (std::size_t k = 0; k < pp_.tasks.size(); ++k) {
    if (pp_.privatized[k]) {
      ws.private_bufs[k].resize(static_cast<std::size_t>(pp_.tasks[k].box_elems(g_.dim)));
    }
  }
  return ws;
}

std::size_t Nufft::workspace_bytes() const {
  std::size_t elems = static_cast<std::size_t>(g_.grid_elems());
  for (std::size_t k = 0; k < pp_.tasks.size(); ++k) {
    if (pp_.privatized[k]) elems += static_cast<std::size_t>(pp_.tasks[k].box_elems(g_.dim));
  }
  return elems * sizeof(cfloat);
}

void Nufft::clear_grid(Workspace& ws, ThreadPool& pool) const {
  cfloat* p = ws.grid.data();
  pool.parallel_for(static_cast<index_t>(ws.grid.size()), [&](index_t b, index_t e) {
    zero_complex(p + b, static_cast<std::size_t>(e - b));
  });
}

void Nufft::clear_grid() { clear_grid(ws_, *pool_); }

void Nufft::image_to_grid(const cfloat* image, Workspace& ws, ThreadPool& pool) const {
  // Specialized plans take the fused scale pass: one sweep over the grid
  // writing every cell exactly once (zero padding or scaled image value)
  // instead of clear_grid + scatter — the grid is touched once, not twice.
  // The innermost dimension walks the precomputed wrap runs (contiguous
  // grid↔image stretches), so the hot loop is a straight copy-scale with no
  // per-element lookup or branch. Bit-identical to the two-pass path: the
  // written cells use the same multiply grouping, and untouched cells are the
  // same +0.0f the clear writes. Gated on the dispatch binding so the
  // specialize_conv=false ablation measures (and the bit-match tests compare)
  // the original passes.
  if (conv_variant_ != nullptr) {
    const int dim = g_.dim;
    const auto st = g_.grid_strides();
    const index_t m0 = g_.m[0];
    const index_t m1 = dim >= 2 ? g_.m[1] : 1;
    const index_t m2 = dim >= 3 ? g_.m[2] : 1;
    const index_t n1 = dim >= 2 ? g_.n[1] : 1;
    const index_t n2 = dim >= 3 ? g_.n[2] : 1;
    const fvec& s0 = scale_[0];
    const fvec* s1 = dim >= 2 ? &scale_[1] : nullptr;
    const fvec* s2 = dim >= 3 ? &scale_[2] : nullptr;
    // Stream one row's runs: gaps zeroed, each run a lookup-free copy-scale.
    // Same multiply grouping as the generic scatter (src · (f · scale)).
    const auto stream_row = [&](cfloat* row, index_t m, const std::vector<WrapRun>& runs,
                                const cfloat* src, float f, const fvec& scale) {
      index_t gcur = 0;
      for (const WrapRun& r : runs) {
        zero_complex(row + gcur, static_cast<std::size_t>(r.g_begin - gcur));
        const index_t len = r.g_end - r.g_begin;
        cfloat* out = row + r.g_begin;
        const cfloat* in = src + r.i_begin;
        const float* sc = scale.data() + r.i_begin;
        for (index_t j = 0; j < len; ++j) out[j] = in[j] * (f * sc[j]);
        gcur = r.g_end;
      }
      zero_complex(row + gcur, static_cast<std::size_t>(m - gcur));
    };
    pool.parallel_for(m0, [&](index_t b, index_t e) {
      for (index_t g0 = b; g0 < e; ++g0) {
        cfloat* slab = ws.grid.data() + g0 * st[0];
        const index_t i0 = inv_wrap_[0][static_cast<std::size_t>(g0)];
        if (i0 < 0) {
          zero_complex(slab, static_cast<std::size_t>(st[0]));
          continue;
        }
        const float f0 = s0[static_cast<std::size_t>(i0)];
        if (dim == 1) {
          slab[0] = image[i0] * f0;
          continue;
        }
        if (dim == 2) {
          stream_row(slab, m1, wrap_runs_[1], image + i0 * n1, f0, *s1);
          continue;
        }
        for (index_t g1 = 0; g1 < m1; ++g1) {
          cfloat* row = slab + g1 * st[1];
          const index_t i1 = inv_wrap_[1][static_cast<std::size_t>(g1)];
          if (i1 < 0) {
            zero_complex(row, static_cast<std::size_t>(st[1]));
            continue;
          }
          const float f01 = f0 * (*s1)[static_cast<std::size_t>(i1)];
          stream_row(row, m2, wrap_runs_[2], image + (i0 * n1 + i1) * n2, f01, *s2);
        }
      }
    });
    return;
  }

  clear_grid(ws, pool);
  const int dim = g_.dim;
  const auto st = g_.grid_strides();
  const index_t n0 = g_.n[0];
  const index_t n1 = dim >= 2 ? g_.n[1] : 1;
  const index_t n2 = dim >= 3 ? g_.n[2] : 1;
  const fvec& s0 = scale_[0];
  const fvec* s1 = dim >= 2 ? &scale_[1] : nullptr;
  const fvec* s2 = dim >= 3 ? &scale_[2] : nullptr;
  pool.parallel_for(n0, [&](index_t b, index_t e) {
    for (index_t i0 = b; i0 < e; ++i0) {
      const float f0 = s0[static_cast<std::size_t>(i0)];
      const index_t g0 = wrap_[0][static_cast<std::size_t>(i0)];
      for (index_t i1 = 0; i1 < n1; ++i1) {
        const float f01 = dim >= 2 ? f0 * (*s1)[static_cast<std::size_t>(i1)] : f0;
        const index_t g1 = dim >= 2 ? wrap_[1][static_cast<std::size_t>(i1)] : 0;
        const cfloat* src = image + (i0 * n1 + i1) * n2;
        cfloat* dst = ws.grid.data() + g0 * st[0] + (dim >= 2 ? g1 * st[1] : 0);
        if (dim >= 3) {
          for (index_t i2 = 0; i2 < n2; ++i2) {
            dst[wrap_[2][static_cast<std::size_t>(i2)]] =
                src[i2] * (f01 * (*s2)[static_cast<std::size_t>(i2)]);
          }
        } else {
          dst[0] = src[0] * f01;
        }
      }
    }
  });
}

void Nufft::image_to_grid(const cfloat* image) { image_to_grid(image, ws_, *pool_); }

void Nufft::grid_to_image(cfloat* image, const Workspace& ws, ThreadPool& pool) const {
  const int dim = g_.dim;
  const auto st = g_.grid_strides();
  const index_t n0 = g_.n[0];
  const index_t n1 = dim >= 2 ? g_.n[1] : 1;
  const index_t n2 = dim >= 3 ? g_.n[2] : 1;
  const fvec& s0 = scale_[0];
  const fvec* s1 = dim >= 2 ? &scale_[1] : nullptr;
  const fvec* s2 = dim >= 3 ? &scale_[2] : nullptr;
  pool.parallel_for(n0, [&](index_t b, index_t e) {
    for (index_t i0 = b; i0 < e; ++i0) {
      const float f0 = s0[static_cast<std::size_t>(i0)];
      const index_t g0 = wrap_[0][static_cast<std::size_t>(i0)];
      for (index_t i1 = 0; i1 < n1; ++i1) {
        const float f01 = dim >= 2 ? f0 * (*s1)[static_cast<std::size_t>(i1)] : f0;
        const index_t g1 = dim >= 2 ? wrap_[1][static_cast<std::size_t>(i1)] : 0;
        cfloat* dst = image + (i0 * n1 + i1) * n2;
        const cfloat* src = ws.grid.data() + g0 * st[0] + (dim >= 2 ? g1 * st[1] : 0);
        if (dim >= 3) {
          for (index_t i2 = 0; i2 < n2; ++i2) {
            dst[i2] = src[wrap_[2][static_cast<std::size_t>(i2)]] *
                      (f01 * (*s2)[static_cast<std::size_t>(i2)]);
          }
        } else {
          dst[0] = src[0] * f01;
        }
      }
    }
  });
}

void Nufft::grid_to_image(cfloat* image) const {
  grid_to_image(image, ws_, *pool_);
}

void Nufft::interp(cfloat* raw, const Workspace& ws, ThreadPool& pool) const {
  const auto st = g_.grid_strides();
  const cfloat* grid = ws.grid.data();
  const int ntasks = static_cast<int>(pp_.tasks.size());

  dim_dispatch(
      g_.dim,
      [&] { interp_dim<1>(grid, st, raw, ntasks, pool); },
      [&] { interp_dim<2>(grid, st, raw, ntasks, pool); },
      [&] { interp_dim<3>(grid, st, raw, ntasks, pool); });
}

void Nufft::interp(cfloat* raw) { interp(raw, ws_, *pool_); }

template <int DIM>
void Nufft::interp_dim(const cfloat* grid, const std::array<index_t, 3>& st, cfloat* raw,
                       int ntasks, ThreadPool& pool) const {
  if (conv_variant_ != nullptr) {
    // Specialized dispatch: the whole per-sample loop (Part 1 window + Part 2
    // gather) is one pre-instantiated function bound at plan time.
    const ConvInterpFn fn = conv_variant_->interp;
    pool.parallel_for_tid(ntasks, 1, [&](int, index_t kb, index_t ke) {
      for (index_t k = kb; k < ke; ++k) {
        fn(conv_range(pp_.tasks[static_cast<std::size_t>(k)], false), grid, st, raw);
      }
    });
    return;
  }
  const ConvMode mode = conv_mode_;
  const bool fill_dup = mode != ConvMode::kScalar;
  const WindowEval ev = window_eval();
  pool.parallel_for_tid(ntasks, 1, [&](int, index_t kb, index_t ke) {
    WindowBuf wb;
    for (index_t k = kb; k < ke; ++k) {
      const ConvTask& task = pp_.tasks[static_cast<std::size_t>(k)];
      for (index_t i = task.begin; i < task.end; ++i) {
        float coord[3];
        for (int d = 0; d < DIM; ++d) {
          coord[d] = pp_.coords[static_cast<std::size_t>(d)][static_cast<std::size_t>(i)];
        }
        compute_window(g_, ev, coord, DIM, fill_dup, wb);
        cfloat v;
        switch (mode) {
          case ConvMode::kScalar:
            v = fwd_gather_scalar<DIM>(grid, st, wb);
            break;
          case ConvMode::kSse:
            v = fwd_gather_simd<DIM>(grid, st, wb);
            break;
          default:
            v = fwd_gather_avx2<DIM>(grid, st, wb);
            break;
        }
        raw[pp_.orig_index[static_cast<std::size_t>(i)]] = v;
      }
    }
  });
}

void Nufft::run_spread(const cfloat* raw, Workspace& ws, ThreadPool& pool,
                       OperatorStats* stats) const {
  const auto st = g_.grid_strides();
  dim_dispatch(
      g_.dim, [&] { spread_dim<1>(raw, st, ws, pool, stats); },
      [&] { spread_dim<2>(raw, st, ws, pool, stats); },
      [&] { spread_dim<3>(raw, st, ws, pool, stats); });
}

template <int DIM>
void Nufft::spread_dim(const cfloat* raw, const std::array<index_t, 3>& st, Workspace& ws,
                       ThreadPool& pool, OperatorStats* stats) const {
  cfloat* grid = ws.grid.data();
  const ConvMode mode = conv_mode_;
  const bool fill_dup = mode != ConvMode::kScalar;
  const WindowEval ev = window_eval();

  // Convolve one task's samples into `dst` (the global grid, or a private
  // box with box-local indices).
  auto convolve_range = [&](const ConvTask& task, cfloat* dst,
                            const std::array<index_t, 3>& strides, bool box_local) {
    if (conv_variant_ != nullptr) {
      // Specialized dispatch: Part 1 + Part 2 for the whole range in one
      // pre-instantiated call. Scheduling, privatization, and reduction
      // around this are unchanged.
      conv_variant_->spread(conv_range(task, box_local), raw, dst, strides);
      return;
    }
    WindowBuf wb;
    for (index_t i = task.begin; i < task.end; ++i) {
      float coord[3];
      for (int d = 0; d < DIM; ++d) {
        coord[d] = pp_.coords[static_cast<std::size_t>(d)][static_cast<std::size_t>(i)];
      }
      compute_window(g_, ev, coord, DIM, fill_dup, wb);
      if (box_local) {
        // Rebase neighbour indices into the private box; the box covers the
        // partition plus the kernel radius, so no wrapping can occur.
        for (int d = 0; d < DIM; ++d) {
          for (int t = 0; t < wb.len[d]; ++t) {
            wb.idx[d][t] = wb.start[d] + t - task.box_lo[static_cast<std::size_t>(d)];
          }
        }
        wb.inner_contiguous = true;
      }
      const cfloat v = raw[pp_.orig_index[static_cast<std::size_t>(i)]];
      switch (mode) {
        case ConvMode::kScalar:
          adj_scatter_scalar<DIM>(dst, strides, wb, v);
          break;
        case ConvMode::kSse:
          adj_scatter_simd<DIM>(dst, strides, wb, v);
          break;
        default:
          adj_scatter_avx2<DIM>(dst, strides, wb, v);
          break;
      }
    }
  };

  auto body = [&](int task_id, int, JobPhase phase) {
    const ConvTask& task = pp_.tasks[static_cast<std::size_t>(task_id)];
    switch (phase) {
      case JobPhase::kConvolve:
        convolve_range(task, grid, st, false);
        break;
      case JobPhase::kPrivateConvolve: {
        auto& buf = ws.private_bufs[static_cast<std::size_t>(task_id)];
        zero_complex(buf.data(), buf.size());
        std::array<index_t, 3> bst{1, 1, 1};
        for (int d = DIM - 2; d >= 0; --d) {
          bst[static_cast<std::size_t>(d)] =
              bst[static_cast<std::size_t>(d + 1)] *
              (task.box_hi[static_cast<std::size_t>(d + 1)] -
               task.box_lo[static_cast<std::size_t>(d + 1)]);
        }
        convolve_range(task, buf.data(), bst, true);
        break;
      }
      case JobPhase::kReduce: {
        // Merge the private box into the global grid, wrapping mod M.
        const auto& buf = ws.private_bufs[static_cast<std::size_t>(task_id)];
        std::array<index_t, 3> blen{1, 1, 1};
        for (int d = 0; d < DIM; ++d) {
          blen[static_cast<std::size_t>(d)] = task.box_hi[static_cast<std::size_t>(d)] -
                                              task.box_lo[static_cast<std::size_t>(d)];
        }
        const index_t rows = DIM >= 2 ? blen[0] * (DIM >= 3 ? blen[1] : 1) : 1;
        const index_t inner = blen[static_cast<std::size_t>(DIM - 1)];
        for (index_t r = 0; r < rows; ++r) {
          const index_t b0 = DIM >= 3 ? r / blen[1] : (DIM == 2 ? r : 0);
          const index_t b1 = DIM >= 3 ? r % blen[1] : 0;
          index_t base = 0;
          if (DIM >= 2) {
            const index_t u0 = wrap_coord(task.box_lo[0] + b0, g_.m[0]);
            base += u0 * st[0];
          }
          if (DIM >= 3) {
            const index_t u1 = wrap_coord(task.box_lo[1] + b1, g_.m[1]);
            base += u1 * st[1];
          }
          const cfloat* src = buf.data() + r * inner;
          const index_t lo = task.box_lo[static_cast<std::size_t>(DIM - 1)];
          const index_t m = g_.m[static_cast<std::size_t>(DIM - 1)];
          for (index_t c = 0; c < inner; ++c) {
            grid[base + wrap_coord(lo + c, m)] += src[c];
          }
        }
        break;
      }
    }
  };

  SchedulerStats sstats;
  if (cfg_.color_barrier_schedule) {
    sstats = run_task_graph_colored(*pp_.graph, pp_.weights, pool, body);
  } else {
    SchedulerConfig scfg;
    scfg.priority_queue = cfg_.priority_queue;
    scfg.record_trace = cfg_.record_trace;
    sstats = run_task_graph(*pp_.graph, pp_.weights, pp_.privatized, pool, body, scfg);
  }
  if (stats != nullptr) {
    // Accumulate, don't overwrite: an apply may walk the scheduler more than
    // once (the batched adjoint does, per slab-group chunk) and the caller
    // resets the struct at apply entry.
    stats->add_scheduler_pass(sstats.tasks, sstats.privatized_tasks,
                              sstats.busy_ns_per_context);
  }
  ws.trace = std::move(sstats.trace);
}

void Nufft::spread(const cfloat* raw) {
  clear_grid(ws_, *pool_);
  run_spread(raw, ws_, *pool_, nullptr);
}

void Nufft::forward(const cfloat* image, cfloat* raw, Workspace& ws, ThreadPool& pool) const {
  ws.fwd_stats = OperatorStats{};
  obs::Span apply("nufft.forward", "core");
  Timer total;
  Timer t;
  {
    obs::Span s("nufft.scale", "core");
    image_to_grid(image, ws, pool);
  }
  ws.fwd_stats.scale_s = t.seconds();

  t.reset();
  {
    obs::Span s("nufft.fft", "core");
    fft_fwd_->transform(ws.grid.data(), pool);
  }
  ws.fwd_stats.fft_s = t.seconds();

  t.reset();
  {
    obs::Span s("nufft.conv", "core");
    interp(raw, ws, pool);
  }
  ws.fwd_stats.conv_s = t.seconds();
  ws.fwd_stats.total_s = total.seconds();
}

void Nufft::forward(const cfloat* image, cfloat* raw) { forward(image, raw, ws_, *pool_); }

void Nufft::adjoint(const cfloat* raw, cfloat* image, Workspace& ws, ThreadPool& pool) const {
  ws.adj_stats = OperatorStats{};
  obs::Span apply("nufft.adjoint", "core");
  Timer total;
  Timer t;
  {
    obs::Span s("nufft.scale", "core");
    clear_grid(ws, pool);
  }
  ws.adj_stats.scale_s = t.seconds();

  t.reset();
  {
    obs::Span s("nufft.conv", "core");
    run_spread(raw, ws, pool, &ws.adj_stats);
  }
  ws.adj_stats.conv_s = t.seconds();

  t.reset();
  {
    obs::Span s("nufft.fft", "core");
    fft_inv_->transform(ws.grid.data(), pool);
  }
  ws.adj_stats.fft_s = t.seconds();

  t.reset();
  {
    obs::Span s("nufft.scale", "core");
    grid_to_image(image, ws, pool);
  }
  ws.adj_stats.scale_s += t.seconds();
  ws.adj_stats.total_s = total.seconds();
}

void Nufft::adjoint(const cfloat* raw, cfloat* image) { adjoint(raw, image, ws_, *pool_); }

}  // namespace nufft
