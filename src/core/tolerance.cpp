#include "core/tolerance.hpp"

#include <cmath>
#include <cstdio>

#include "common/error.hpp"

namespace nufft {

namespace {

struct Row {
  double tolerance;        // the request bucket this row serves
  double kernel_radius;
  int lut_samples_per_unit;
  kernels::KernelEval eval;
  double calibrated_error;  // worst relative L2 error over the sweep, with margin
};

// Calibrated at α = 2 by the accuracy harness (NUFFT_ACCURACY_CALIBRATE=1
// prints the measured sweep; EXPERIMENTS.md records it). calibrated_error is
// the worst case over dims {1,2,3} × both directions, rounded up.
//
// Kaiser-Bessel rides the paper's LUT path; samples-per-unit grows with the
// tolerance so the LUT's O(spu⁻²) interpolation error stays below the
// kernel's own aliasing error.
// Worst measured over the sweep (dims {1,2,3} × both directions, two seeds):
// 1.1e-3 / 1.1e-4 / 1.0e-5 / 1.1e-6 / 4.7e-7 top to bottom; calibrated_error
// pins roughly 2× that.
constexpr Row kKbTable[] = {
    {1e-2, 2.0, 512, kernels::KernelEval::kLut, 2.5e-3},
    {1e-3, 2.5, 1024, kernels::KernelEval::kLut, 2.5e-4},
    {1e-4, 3.0, 2048, kernels::KernelEval::kLut, 2.5e-5},
    {1e-5, 3.5, 4096, kernels::KernelEval::kLut, 2.5e-6},
    {1e-6, 4.0, 8192, kernels::KernelEval::kLut, 9e-7},
};

// ES at the FINUFFT β matches Kaiser-Bessel accuracy at the same width (the
// sweep measured 1.6e-3 / 1.7e-4 / 1.3e-5 / 1.3e-6 / 4.6e-7 at these rows),
// so each tolerance is met at a width no larger than the KB row's while the
// Horner evaluation stays cheaper than the LUT's gather. Horner has no LUT
// quantization term; lut_samples_per_unit only sizes the auxiliary LUT kept
// for diagnostics.
constexpr Row kEsTable[] = {
    {1e-2, 2.0, 1024, kernels::KernelEval::kHorner, 4e-3},
    {1e-3, 2.5, 1024, kernels::KernelEval::kHorner, 4e-4},
    {1e-4, 3.0, 1024, kernels::KernelEval::kHorner, 4e-5},
    {1e-5, 3.5, 1024, kernels::KernelEval::kHorner, 4e-6},
    {1e-6, 4.0, 1024, kernels::KernelEval::kHorner, 9e-7},
};

ResolvedAccuracy from_row(const Row& r) {
  ResolvedAccuracy out;
  out.kernel_radius = r.kernel_radius;
  out.lut_samples_per_unit = r.lut_samples_per_unit;
  out.eval = r.eval;
  out.calibrated_error = r.calibrated_error;
  return out;
}

}  // namespace

ResolvedAccuracy resolve_tolerance(double tolerance, kernels::KernelType family) {
  NUFFT_CHECK_MSG(std::isfinite(tolerance) && tolerance > 0.0,
                  "tolerance must be a positive finite relative error");
  const Row* table = nullptr;
  std::size_t rows = 0;
  switch (family) {
    case kernels::KernelType::kKaiserBessel:
      table = kKbTable;
      rows = sizeof(kKbTable) / sizeof(kKbTable[0]);
      break;
    case kernels::KernelType::kEs:
      table = kEsTable;
      rows = sizeof(kEsTable) / sizeof(kEsTable[0]);
      break;
    case kernels::KernelType::kGaussian:
      throw Error(
          "tolerance-driven planning is calibrated for Kaiser-Bessel and ES "
          "kernels only; pick explicit parameters for the Gaussian kernel",
          ErrorCode::kUnachievableAccuracy);
  }
  // Rows are ordered loosest → tightest; take the first (cheapest) one whose
  // calibrated error meets the request.
  for (std::size_t i = 0; i < rows; ++i) {
    if (table[i].calibrated_error <= tolerance) return from_row(table[i]);
  }
  throw Error("requested tolerance " + std::to_string(tolerance) +
                  " is tighter than the tightest calibrated configuration (" +
                  std::to_string(table[rows - 1].calibrated_error) +
                  " relative L2 in single precision); loosen the tolerance or "
                  "configure the kernel manually",
              ErrorCode::kUnachievableAccuracy);
}

void apply_tolerance(PlanConfig& cfg, double alpha) {
  if (cfg.tolerance <= 0.0) return;
  if (alpha + 1e-9 < kCalibratedAlpha) {
    // The rejection must name BOTH the α the caller actually passed and the
    // calibrated minimum (pinned by tests/test_accuracy.cpp), formatted %g so
    // the caller sees "1.5", not "1.500000".
    char msg[160];
    std::snprintf(msg, sizeof(msg),
                  "tolerance-driven planning is calibrated at oversampling alpha >= %.6g; "
                  "the requested grid has alpha = %.6g",
                  kCalibratedAlpha, alpha);
    throw Error(msg, ErrorCode::kUnachievableAccuracy);
  }
  const ResolvedAccuracy r = resolve_tolerance(cfg.tolerance, cfg.kernel);
  cfg.kernel_radius = r.kernel_radius;
  cfg.lut_samples_per_unit = r.lut_samples_per_unit;
  cfg.eval = r.eval;
}

}  // namespace nufft
