// Plan persistence — the paper's FFTW-"wisdom" analogy made concrete
// (§V-E: "the preprocessing can be performed offline and reused, in the
// same manner that the FFTW library reuses wisdom").
//
// A serialized plan captures everything the preprocessing pass derived from
// the sample coordinates: partition layout, per-task sample ranges, the
// reorder permutation, and privatization marks. Restoring a plan against
// the same trajectory skips the histogram/partition/bin/sort work; only the
// (cheap) task graph is rebuilt.
//
// The format is a versioned little-endian binary blob. Restoration
// validates structural invariants (bounds coverage, permutation validity,
// range consistency) and rejects blobs that do not match the grid geometry
// or sample count, so a stale cache cannot corrupt a transform. Integrity
// failures carry ErrorCode::kIoCorruption; geometry mismatches (a stale but
// intact file) carry kInvalidInput.
//
// The file wrappers add a checksummed container header (magic, version,
// payload size, FNV-1a checksum) so truncation or bit-flips in a spilled
// plan are detected before the payload is parsed — load_plan throws
// kIoCorruption and exec::PlanRegistry falls back to a rebuild.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/grid.hpp"
#include "core/preprocess.hpp"
#include "datasets/trajectory.hpp"

namespace nufft {

/// Serialize a preprocessing result to a self-contained byte blob. `cfg` is
/// the plan's configuration; its resolved kernel identity (family, radius,
/// LUT density, weight evaluator) is part of the blob, so two plans
/// differing only in kernel never alias. Tolerance-driven configs are
/// canonicalized (core/tolerance.hpp) before the identity is written.
std::vector<std::uint8_t> serialize_plan(const Preprocessed& pp, const GridDesc& g,
                                         const PlanConfig& cfg);

/// Restore a plan against the trajectory and configuration it was built
/// for. Throws nufft::Error on any mismatch or corruption — in particular
/// when the blob's kernel identity differs from `cfg`'s resolved identity.
Preprocessed deserialize_plan(const std::uint8_t* data, std::size_t size, const GridDesc& g,
                              const datasets::SampleSet& samples, const PlanConfig& cfg);

/// File convenience wrappers.
void save_plan(const std::string& path, const Preprocessed& pp, const GridDesc& g,
               const PlanConfig& cfg);
Preprocessed load_plan(const std::string& path, const GridDesc& g,
                       const datasets::SampleSet& samples, const PlanConfig& cfg);

/// Approximate heap bytes a restored plan keeps resident (reordered
/// coordinates, permutation, task list, weights, marks). Used by
/// exec::PlanRegistry to enforce its byte budget; the task-graph adjacency
/// is excluded (it is O(tasks), dwarfed by the per-sample arrays).
std::size_t plan_resident_bytes(const Preprocessed& pp, const GridDesc& g);

}  // namespace nufft
