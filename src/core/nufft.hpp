// The NUFFT operator pair (paper §II-B):
//
//   forward:  F(w) = Σ_n f[n] · e^{-2πi (w - M/2)·n / M},   n centered
//   adjoint:  the exact algebraic adjoint of forward
//
// evaluated approximately in O(M^d log M + K·(2W)^d) as
//   forward = interp ∘ FFT ∘ scale      (scale = rolloff × chop)
//   adjoint = scale ∘ IFFT ∘ spread
//
// Sample coordinates are in oversampled-grid units, w ∈ [0, M)^d, with the
// spectral origin (DC) at M/2 per dimension. No normalization is applied:
// adjoint(forward(x)) ≈ M^d·x apodization-corrected — iterative solvers are
// insensitive to the constant and direct users can divide by M^d.
//
// A plan is built once per trajectory (preprocessing: partitioning, task
// graph, sample reorder) and applied many times; apply calls are not
// re-entrant on the same plan (the plan owns the grid buffer and pool).
#pragma once

#include <memory>
#include <vector>

#include "common/types.hpp"
#include "core/grid.hpp"
#include "core/preprocess.hpp"
#include "core/stats.hpp"
#include "datasets/trajectory.hpp"
#include "fft/fftnd.hpp"
#include "kernels/lut.hpp"
#include "parallel/thread_pool.hpp"

namespace nufft {

class Nufft {
 public:
  /// Plan a transform between an N^dim image and `samples.count()`
  /// non-uniform spectral values. The grid geometry must match the sample
  /// set's oversampled extent.
  Nufft(const GridDesc& g, const datasets::SampleSet& samples, const PlanConfig& cfg);

  /// Plan from a previously serialized preprocessing result (plan_cache.hpp)
  /// — skips the histogram/partition/bin/reorder pass entirely.
  Nufft(const GridDesc& g, const datasets::SampleSet& samples, const PlanConfig& cfg,
        Preprocessed restored);
  ~Nufft();

  Nufft(const Nufft&) = delete;
  Nufft& operator=(const Nufft&) = delete;

  const GridDesc& grid_desc() const { return g_; }
  const PlanConfig& config() const { return cfg_; }
  index_t image_elems() const { return g_.image_elems(); }
  index_t sample_count() const { return nsamples_; }

  /// image (N^dim, centered, row-major) → raw (sample values, caller order).
  void forward(const cfloat* image, cfloat* raw);

  /// raw (sample values, caller order) → image (N^dim).
  void adjoint(const cfloat* raw, cfloat* image);

  // --- component entry points for benchmarking and tests ---

  /// Adjoint convolution only: spread raw samples onto the internal grid
  /// (grid is cleared first).
  void spread(const cfloat* raw);

  /// Forward convolution only: gather raw samples from the internal grid.
  void interp(cfloat* raw);

  /// The internal oversampled grid (grid_desc().grid_elems() values).
  cfloat* grid_data() { return grid_.data(); }
  const cfloat* grid_data() const { return grid_.data(); }
  void clear_grid();

  /// Fill the grid from an image (scale + chop + zero-pad), no FFT.
  void image_to_grid(const cfloat* image);
  /// Read an image back from the grid (crop + scale + chop), no FFT.
  void grid_to_image(cfloat* image) const;

  // --- instrumentation ---
  const OperatorStats& last_forward_stats() const { return fwd_stats_; }
  const OperatorStats& last_adjoint_stats() const { return adj_stats_; }
  const Preprocessed& plan() const { return pp_; }
  const std::vector<TraceEvent>& last_trace() const { return trace_; }
  ThreadPool& pool() { return *pool_; }

  /// Vector path resolved from PlanConfig::use_simd / isa and the CPU.
  enum class ConvMode { kScalar, kSse, kAvx2 };
  ConvMode conv_mode() const { return conv_mode_; }

 private:
  void run_spread(const cfloat* raw, OperatorStats* stats);
  template <int DIM>
  void interp_dim(const cfloat* grid, const std::array<index_t, 3>& st, cfloat* raw,
                  int ntasks);
  template <int DIM>
  void spread_dim(const cfloat* raw, const std::array<index_t, 3>& st, OperatorStats* stats);

  GridDesc g_;
  PlanConfig cfg_;
  index_t nsamples_ = 0;
  std::unique_ptr<ThreadPool> pool_;
  Preprocessed pp_;
  std::unique_ptr<fft::FftNd<float>> fft_fwd_;
  std::unique_ptr<fft::FftNd<float>> fft_inv_;
  std::array<fvec, 3> scale_;          // rolloff × chop, one array per dim
  std::array<std::vector<index_t>, 3> wrap_;  // image index → grid index per dim
  std::unique_ptr<kernels::KernelLut> lut_;
  ConvMode conv_mode_ = ConvMode::kSse;
  cvecf grid_;
  std::vector<cvecf> private_bufs_;    // one per privatized task (empty else)
  OperatorStats fwd_stats_;
  OperatorStats adj_stats_;
  std::vector<TraceEvent> trace_;
};

}  // namespace nufft
