// The NUFFT operator pair (paper §II-B):
//
//   forward:  F(w) = Σ_n f[n] · e^{-2πi (w - M/2)·n / M},   n centered
//   adjoint:  the exact algebraic adjoint of forward
//
// evaluated approximately in O(M^d log M + K·(2W)^d) as
//   forward = interp ∘ FFT ∘ scale      (scale = rolloff × chop)
//   adjoint = scale ∘ IFFT ∘ spread
//
// Sample coordinates are in oversampled-grid units, w ∈ [0, M)^d, with the
// spectral origin (DC) at M/2 per dimension. No normalization is applied:
// adjoint(forward(x)) ≈ M^d·x apodization-corrected — iterative solvers are
// insensitive to the constant and direct users can divide by M^d.
//
// Concurrency contract (the workspace-lease model): a plan is built once per
// trajectory (preprocessing: partitioning, task graph, sample reorder) and is
// immutable afterwards — tables, task graph and FFT plans are only read by
// applies. All mutable per-apply state (the oversampled grid, private
// reduction buffers, stats, trace) lives in a `Workspace`. The const
// `forward`/`adjoint` overloads take an explicit workspace and thread pool
// and may run concurrently on the same plan as long as each call holds its
// own workspace and pool — `exec::NufftEngine` leases workspaces per job on
// exactly this contract. The legacy non-const overloads use a workspace and
// pool owned by the plan and therefore remain single-caller-at-a-time; they
// exist for convenience and for the component benchmarks.
//
// Batched applies (B right-hand sides per scheduler walk) are layered on the
// same contract by `exec::BatchNufft`, which stores B oversampled grids as
// consecutive slabs (batch-major: slab b at offset b·grid_elems()) so each
// slice keeps the single-transform memory layout; see DESIGN.md §7.
#pragma once

#include <memory>
#include <vector>

#include "common/types.hpp"
#include "core/conv_dispatch.hpp"
#include "core/convolution.hpp"
#include "core/grid.hpp"
#include "core/preprocess.hpp"
#include "core/stats.hpp"
#include "datasets/trajectory.hpp"
#include "fft/fftnd.hpp"
#include "kernels/horner.hpp"
#include "kernels/lut.hpp"
#include "parallel/thread_pool.hpp"

namespace nufft {

namespace exec {
class BatchNufft;
}

/// Mutable per-apply state, rentable so concurrent applies on one plan never
/// share buffers. Obtain via Nufft::make_workspace(); the struct is movable
/// and plan-specific (buffer shapes follow the plan's grid and task list).
struct Workspace {
  cvecf grid;                        // oversampled grid, grid_elems() values
  std::vector<cvecf> private_bufs;   // one per privatized task (empty else)
  OperatorStats fwd_stats;
  OperatorStats adj_stats;
  std::vector<TraceEvent> trace;
};

class Nufft {
 public:
  /// Plan a transform between an N^dim image and `samples.count()`
  /// non-uniform spectral values. The grid geometry must match the sample
  /// set's oversampled extent.
  Nufft(const GridDesc& g, const datasets::SampleSet& samples, const PlanConfig& cfg);

  /// Plan from a previously serialized preprocessing result (plan_cache.hpp)
  /// — skips the histogram/partition/bin/reorder pass entirely.
  Nufft(const GridDesc& g, const datasets::SampleSet& samples, const PlanConfig& cfg,
        Preprocessed restored);

  /// Warm derivation: plan `new_samples` by delta-updating a clone of `src`'s
  /// preprocessing (update_preprocessed) instead of a cold preprocess().
  /// Grid, config, FFT plans, scale tables and kernel evaluators are shared
  /// with the source plan (all immutable); `src` keeps serving concurrent
  /// applies untouched. The derived plan is bit-identical to a cold
  /// Nufft(grid, new_samples, config) in everything an apply reads —
  /// plan_stats().warm_updated records which path built it, and generation
  /// is src's + 1 (unless the update was a bitwise no-op).
  Nufft(const Nufft& src, const datasets::SampleSet& new_samples,
        const UpdateOptions& opts = {});
  ~Nufft();

  Nufft(const Nufft&) = delete;
  Nufft& operator=(const Nufft&) = delete;

  const GridDesc& grid_desc() const { return g_; }
  const PlanConfig& config() const { return cfg_; }
  index_t image_elems() const { return g_.image_elems(); }
  index_t sample_count() const { return nsamples_; }

  // --- re-entrant apply API (the workspace-lease model) ---

  /// A fresh workspace sized for this plan.
  Workspace make_workspace() const;

  /// Bytes a workspace for this plan occupies (grid + private buffers).
  std::size_t workspace_bytes() const;

  /// image (N^dim, centered, row-major) → raw. Thread-safe on a const plan:
  /// concurrent calls must pass distinct workspaces and distinct pools.
  void forward(const cfloat* image, cfloat* raw, Workspace& ws, ThreadPool& pool) const;

  /// raw (sample values, caller order) → image (N^dim). Same contract.
  void adjoint(const cfloat* raw, cfloat* image, Workspace& ws, ThreadPool& pool) const;

  // --- convenience apply API (uses the plan-owned workspace and pool) ---

  /// image (N^dim, centered, row-major) → raw (sample values, caller order).
  void forward(const cfloat* image, cfloat* raw);

  /// raw (sample values, caller order) → image (N^dim).
  void adjoint(const cfloat* raw, cfloat* image);

  // --- streaming trajectory update (exclusive-owner API) ---

  /// Re-plan this operator for `new_samples` in place, preferring the delta
  /// path (update_preprocessed) over a cold rebuild. NOT part of the
  /// concurrency contract above: the caller must guarantee no apply is in
  /// flight on this plan — shared plans (PlanRegistry) use the warm-derive
  /// constructor instead, which never mutates the source. On kNoop nothing
  /// changes (generation included); otherwise plan_stats().generation is
  /// bumped and the plan-owned workspace's private buffers are reconciled
  /// with the new privatization marks.
  UpdatePath update_samples(const datasets::SampleSet& new_samples,
                            const UpdateOptions& opts = {});

  // --- component entry points for benchmarking and tests ---
  // These operate on the plan-owned workspace (not re-entrant).

  /// Adjoint convolution only: spread raw samples onto the internal grid
  /// (grid is cleared first).
  void spread(const cfloat* raw);

  /// Forward convolution only: gather raw samples from the internal grid.
  void interp(cfloat* raw);

  /// The internal oversampled grid (grid_desc().grid_elems() values).
  cfloat* grid_data() { return ws_.grid.data(); }
  const cfloat* grid_data() const { return ws_.grid.data(); }
  void clear_grid();

  /// Fill the grid from an image (scale + chop + zero-pad), no FFT.
  void image_to_grid(const cfloat* image);
  /// Read an image back from the grid (crop + scale + chop), no FFT.
  void grid_to_image(cfloat* image) const;

  // --- instrumentation ---
  const OperatorStats& last_forward_stats() const { return ws_.fwd_stats; }
  const OperatorStats& last_adjoint_stats() const { return ws_.adj_stats; }
  const Preprocessed& plan() const { return pp_; }
  const std::vector<TraceEvent>& last_trace() const { return ws_.trace; }
  ThreadPool& pool() { return *pool_; }

  /// Vector path resolved from PlanConfig::use_simd / isa and the CPU.
  enum class ConvMode { kScalar, kSse, kAvx2 };
  ConvMode conv_mode() const { return conv_mode_; }

  /// Plan-time decisions (specialized convolution variant binding).
  const PlanStats& plan_stats() const { return plan_stats_; }

 private:
  friend class exec::BatchNufft;

  /// The weight evaluator this plan resolved (LUT or Horner) as the view
  /// compute_window consumes.
  WindowEval window_eval() const {
    WindowEval ev;
    if (horner_ != nullptr) {
      ev.horner = horner_.get();
    } else {
      ev.lut = lut_.get();
    }
    return ev;
  }

  /// View of one task's sample range as the specialized dispatch variants
  /// consume it (core/conv_dispatch.hpp). box_local → indices rebased into
  /// the task's private box.
  ConvRange conv_range(const ConvTask& task, bool box_local) const;

  void clear_grid(Workspace& ws, ThreadPool& pool) const;
  void image_to_grid(const cfloat* image, Workspace& ws, ThreadPool& pool) const;
  void grid_to_image(cfloat* image, const Workspace& ws, ThreadPool& pool) const;
  void interp(cfloat* raw, const Workspace& ws, ThreadPool& pool) const;
  void run_spread(const cfloat* raw, Workspace& ws, ThreadPool& pool,
                  OperatorStats* stats) const;
  template <int DIM>
  void interp_dim(const cfloat* grid, const std::array<index_t, 3>& st, cfloat* raw,
                  int ntasks, ThreadPool& pool) const;
  template <int DIM>
  void spread_dim(const cfloat* raw, const std::array<index_t, 3>& st, Workspace& ws,
                  ThreadPool& pool, OperatorStats* stats) const;

  GridDesc g_;
  PlanConfig cfg_;
  index_t nsamples_ = 0;
  std::unique_ptr<ThreadPool> pool_;
  Preprocessed pp_;
  // shared_ptr (not unique): a warm-derived plan shares these immutable
  // tables with its source — they depend only on (grid, cfg), which the
  // derivation preserves.
  std::shared_ptr<fft::FftNd<float>> fft_fwd_;
  std::shared_ptr<fft::FftNd<float>> fft_inv_;
  std::array<fvec, 3> scale_;          // rolloff × chop, one array per dim
  std::array<std::vector<index_t>, 3> wrap_;  // image index → grid index per dim
  std::array<std::vector<index_t>, 3> inv_wrap_;  // grid index → image index, −1 = pad
  /// Maximal contiguous stretches of inv_wrap_: grid [g_begin, g_end) maps to
  /// image i_begin + (g − g_begin). Lets the fused scale pass stream each
  /// stretch without per-element lookups; gaps between runs are zero padding.
  struct WrapRun {
    index_t g_begin = 0;
    index_t g_end = 0;
    index_t i_begin = 0;
  };
  std::array<std::vector<WrapRun>, 3> wrap_runs_;
  std::shared_ptr<kernels::KernelLut> lut_;
  std::shared_ptr<kernels::KernelHorner> horner_;  // set iff cfg_.eval == kHorner
  ConvMode conv_mode_ = ConvMode::kSse;
  const ConvVariant* conv_variant_ = nullptr;  // bound dispatch variant, or generic
  PlanStats plan_stats_;
  Workspace ws_;  // the plan-owned workspace behind the convenience API
};

}  // namespace nufft
