#include "core/toeplitz.hpp"

#include "common/error.hpp"
#include "core/nufft.hpp"

namespace nufft {

ToeplitzNormal::ToeplitzNormal(const GridDesc& g, const datasets::SampleSet& samples,
                               const PlanConfig& cfg, const float* weights)
    : g_(g) {
  NUFFT_CHECK(samples.dim == g.dim);
  pool_ = std::make_unique<ThreadPool>(cfg.threads);

  // Doubled geometry: image 2N on a grid 2M; sample coordinates scale by 2
  // so that (w₂ − M₂/2)/M₂ == (w − M/2)/M.
  GridDesc g2 = g;
  datasets::SampleSet s2 = samples;
  for (int d = 0; d < g.dim; ++d) {
    g2.n[static_cast<std::size_t>(d)] = 2 * g.n[static_cast<std::size_t>(d)];
    g2.m[static_cast<std::size_t>(d)] = 2 * g.m[static_cast<std::size_t>(d)];
    for (auto& w : s2.coords[static_cast<std::size_t>(d)]) w *= 2.0f;
  }
  s2.m = 2 * samples.m;

  // q = Adj₂(W·1): the point-spread kernel on the doubled image.
  cvecf ones(static_cast<std::size_t>(samples.count()));
  for (index_t i = 0; i < samples.count(); ++i) {
    const float w = weights != nullptr ? weights[i] : 1.0f;
    NUFFT_CHECK_MSG(w >= 0.0f, "normal-operator weights must be non-negative");
    ones[static_cast<std::size_t>(i)] = cfloat(w, 0.0f);
  }
  cvecf q(static_cast<std::size_t>(g2.image_elems()));
  {
    PlanConfig qcfg = cfg;
    Nufft plan2(g2, s2, qcfg);
    plan2.adjoint(ones.data(), q.data());
  }

  // Circulant arrangement: t[δ mod 2N] = q[δ], i.e. an fftshift per
  // dimension of the centered q array; then T̂ = FFT(t) / (2N)^d.
  for (int d = 0; d < g.dim; ++d) pad_[static_cast<std::size_t>(d)] = 2 * g.n[static_cast<std::size_t>(d)];
  const index_t p0 = pad_[0];
  const index_t p1 = g.dim >= 2 ? pad_[1] : 1;
  const index_t p2 = g.dim >= 3 ? pad_[2] : 1;
  kernel_hat_.resize(static_cast<std::size_t>(g2.image_elems()));
  for (index_t i0 = 0; i0 < p0; ++i0) {
    const index_t s0 = (i0 + p0 / 2) % p0;
    for (index_t i1 = 0; i1 < p1; ++i1) {
      const index_t s1 = g.dim >= 2 ? (i1 + p1 / 2) % p1 : 0;
      for (index_t i2 = 0; i2 < p2; ++i2) {
        const index_t s2i = g.dim >= 3 ? (i2 + p2 / 2) % p2 : 0;
        kernel_hat_[static_cast<std::size_t>((i0 * p1 + i1) * p2 + i2)] =
            q[static_cast<std::size_t>((s0 * p1 + s1) * p2 + s2i)];
      }
    }
  }

  std::vector<std::size_t> dims;
  for (int d = 0; d < g.dim; ++d) dims.push_back(static_cast<std::size_t>(pad_[static_cast<std::size_t>(d)]));
  fft_fwd_ = std::make_unique<fft::FftNd<float>>(dims, fft::Direction::kForward);
  fft_inv_ = std::make_unique<fft::FftNd<float>>(dims, fft::Direction::kInverse);

  fft_fwd_->transform(kernel_hat_.data(), *pool_);
  const float inv_total = 1.0f / static_cast<float>(g2.image_elems());
  for (auto& v : kernel_hat_) v *= inv_total;

  work_.resize(static_cast<std::size_t>(g2.image_elems()));
}

ToeplitzNormal::~ToeplitzNormal() = default;

void ToeplitzNormal::apply(const cfloat* in, cfloat* out) {
  const int dim = g_.dim;
  const index_t n0 = g_.n[0];
  const index_t n1 = dim >= 2 ? g_.n[1] : 1;
  const index_t n2 = dim >= 3 ? g_.n[2] : 1;
  const index_t p1 = dim >= 2 ? pad_[1] : 1;
  const index_t p2 = dim >= 3 ? pad_[2] : 1;

  zero_complex(work_.data(), work_.size());
  pool_->parallel_for(n0, [&](index_t b, index_t e) {
    for (index_t i0 = b; i0 < e; ++i0) {
      for (index_t i1 = 0; i1 < n1; ++i1) {
        const cfloat* src = in + (i0 * n1 + i1) * n2;
        cfloat* dst = work_.data() + (i0 * p1 + i1) * p2;
        for (index_t i2 = 0; i2 < n2; ++i2) dst[i2] = src[i2];
      }
    }
  });

  fft_fwd_->transform(work_.data(), *pool_);
  cfloat* w = work_.data();
  const cfloat* t = kernel_hat_.data();
  pool_->parallel_for(static_cast<index_t>(work_.size()), [&](index_t b, index_t e) {
    for (index_t i = b; i < e; ++i) w[i] *= t[i];
  });
  fft_inv_->transform(work_.data(), *pool_);

  pool_->parallel_for(n0, [&](index_t b, index_t e) {
    for (index_t i0 = b; i0 < e; ++i0) {
      for (index_t i1 = 0; i1 < n1; ++i1) {
        const cfloat* src = work_.data() + (i0 * p1 + i1) * p2;
        cfloat* dst = out + (i0 * n1 + i1) * n2;
        for (index_t i2 = 0; i2 < n2; ++i2) dst[i2] = src[i2];
      }
    }
  });
}

}  // namespace nufft
