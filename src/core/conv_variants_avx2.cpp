// AVX2-backend variant instantiations. This TU is deliberately compiled at
// the BASELINE ISA: the Part-1 window arithmetic here must round exactly like
// the generic compute_window (see the FP-contraction note in
// conv_variants.hpp), and all AVX2 execution is reached through extern
// functions from TUs that carry -mavx2 themselves (core/convolution_avx2.cpp
// for Part 2, kernels/horner_avx2.cpp for the Horner row evaluation). The
// registry only hands out these variants when the plan resolved to the AVX2
// conv mode, which implies avx2_available().
#include "core/conv_variants.hpp"

namespace nufft::detail {

void append_avx2_variants(std::vector<ConvVariant>& out) {
  register_backend<ConvBackend::kAvx2>(out);
}

}  // namespace nufft::detail
