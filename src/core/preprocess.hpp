// One-time preprocessing of a sample set for repeated NUFFT application
// (paper §III-B1, §III-D, §V-E).
//
// Produces: the partition layout, the Gray-code task graph, per-task sample
// ranges (with samples physically reordered for cache reuse), and the
// selective-privatization marking with each privatized task's private
// write-region box. An iterative solver amortizes this cost over its many
// forward/adjoint calls, exactly as FFTW amortizes planning.
//
// The whole pipeline runs on the caller's ThreadPool (DESIGN.md §11):
// per-chunk partial histograms with prefix-scan merges, a two-pass parallel
// stable counting sort for task binning, a per-task LSD radix sort for the
// tile reorder (tasks dispatched largest-first), and parallel gather of the
// reordered coordinate arrays.
//
// Determinism contract: the output depends only on (grid, samples, cfg) —
// never on the pool width or its scheduling. Every field of `Preprocessed`
// is bit-identical whether the pipeline runs on 1 thread or 64, so
// plan-cache keys, serialized plans and the fuzz oracles stay valid across
// machines with different core counts.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "core/grid.hpp"
#include "core/stats.hpp"
#include "datasets/trajectory.hpp"
#include "kernels/kernel.hpp"
#include "parallel/scheduler.hpp"
#include "parallel/task_graph.hpp"

namespace nufft {

/// Vector instruction set for the convolution Part 2.
///   kAuto — AVX2 when the CPU supports it, else SSE (when use_simd is set)
///   kSse  — the paper's 128-bit path
///   kAvx2 — the 256-bit FMA extension (paper §I "wider SIMD")
enum class SimdIsa { kAuto, kSse, kAvx2 };

/// Tuning and ablation switches for plan construction. The defaults are the
/// paper's "most optimized" configuration; each flag disables one
/// optimization to reproduce the incremental studies (Figs. 9, 11, 12, 13).
struct PlanConfig {
  double kernel_radius = 4.0;  // W, in oversampled-grid units
  kernels::KernelType kernel = kernels::KernelType::kKaiserBessel;
  int lut_samples_per_unit = 1024;
  int threads = 1;

  /// Requested relative L2 accuracy vs exact NUDFT; 0 (default) keeps the
  /// manual parameters above. When > 0, plan construction resolves
  /// kernel_radius / lut_samples_per_unit / eval from the calibration table
  /// for the selected kernel family (core/tolerance.hpp) and throws
  /// Error(kUnachievableAccuracy) when no calibrated row meets the request.
  double tolerance = 0.0;
  /// Weight evaluation: the paper's interpolated LUT, or FINUFFT-style
  /// piecewise Horner polynomials (required to hit the tightest tolerances
  /// with the ES kernel).
  kernels::KernelEval eval = kernels::KernelEval::kLut;

  bool use_simd = true;                  // Fig. 13 ablation (false = scalar Part 2)
  SimdIsa isa = SimdIsa::kSse;           // which vector ISA when use_simd
  bool reorder = true;                   // Fig. 9 "Reorder"
  bool color_barrier_schedule = false;   // ablation: 2^d-color barrier scheduling
  bool variable_partitions = true;       // Fig. 11 ablation
  bool priority_queue = true;            // Fig. 12 group C
  bool selective_privatization = true;   // Fig. 12 group B
  int partitions_per_dim = 0;            // 0 = auto from thread count
  double privatization_factor = 1.0;     // scales the Eq. 6 threshold
  index_t reorder_tile = 8;              // tile edge for the cache reorder
  bool record_trace = false;             // scheduler instrumentation
  bool specialize_conv = true;           // dispatch-registry ablation: false
                                         // forces the generic convolution loop
};

/// One task = one grid partition plus the samples that fall inside it.
struct ConvTask {
  index_t begin = 0;  // sample range in the *reordered* arrays
  index_t end = 0;
  std::array<index_t, 3> box_lo{0, 0, 0};  // write region, unwrapped:
  std::array<index_t, 3> box_hi{0, 0, 0};  // [lo, hi) = partition ± ceil(W)
  index_t count() const { return end - begin; }
  index_t box_elems(int dim) const {
    index_t t = 1;
    for (int d = 0; d < dim; ++d) t *= box_hi[static_cast<std::size_t>(d)] - box_lo[static_cast<std::size_t>(d)];
    return t;
  }
};

/// Per-plan bookkeeping retained by preprocess() so a later
/// update_preprocessed() can diff a perturbed trajectory against the plan
/// and patch it in place instead of rebuilding. Never serialized (plan-cache
/// blobs stay format-stable); a restored plan rebuilds it lazily on its
/// first update from tasks/orig_index/coords alone.
struct PlanDeltaState {
  /// Original sample index → owning task, the cold bin pass's assignment.
  std::vector<std::int32_t> task_of;
  /// Per-dimension per-grid-cell sample counts (variable layouts only) —
  /// patched ±1 per moved sample so the boundary-placement walk can re-run
  /// without touching the unmoved samples.
  std::array<std::vector<index_t>, 3> cell_counts;
  /// The plan's current coordinates in the caller's original sample order.
  /// Lets the update diff two contiguous arrays sequentially instead of
  /// chasing orig_index indirections through the reordered copy — the diff
  /// pass is the one part of an update that always touches every sample.
  std::array<fvec, 3> prev_coords;
  /// Reorder key per *reordered* position (all zero when !cfg.reorder). A
  /// retained sample's key is bitwise-reproducible from its coordinates, so
  /// keeping the sorted key array turns the dirty-task merge's per-retained
  /// key recomputation (two integer div/mods by the runtime tile edge per
  /// dimension) into one sequential 8-byte read.
  std::vector<std::uint64_t> keys;
  /// Double buffers for the swap-based update: after the first update the
  /// steady state allocates nothing.
  std::array<fvec, 3> coords_scratch;
  std::vector<index_t> orig_scratch;
  std::vector<std::uint64_t> keys_scratch;
};

struct Preprocessed {
  PartitionLayout layout;
  std::unique_ptr<TaskGraph> graph;
  std::vector<ConvTask> tasks;
  std::vector<index_t> weights;   // per-task sample counts (scheduler priority)
  std::vector<char> privatized;   // per-task selective-privatization mark
  index_t privatization_threshold = 0;

  // Samples reordered task-by-task (and tile-ordered within a task when
  // cfg.reorder). orig_index maps a reordered position to the caller's
  // original sample index.
  std::array<fvec, 3> coords;
  std::vector<index_t> orig_index;

  // Delta-update bookkeeping; null on plans restored from a serialized blob
  // until their first update_preprocessed call rebuilds it.
  std::unique_ptr<PlanDeltaState> delta;

  PreprocessStats stats;
};

/// Run the full preprocessing pass on `pool`. The pool only supplies
/// parallelism; the result is bit-identical at any pool width (see the
/// determinism contract above). cfg.threads still parameterizes the *plan*
/// (privatization threshold, partition count), as before.
Preprocessed preprocess(const GridDesc& g, const datasets::SampleSet& samples,
                        const PlanConfig& cfg, ThreadPool& pool);

/// Convenience overload: runs on a transient pool of cfg.threads contexts.
Preprocessed preprocess(const GridDesc& g, const datasets::SampleSet& samples,
                        const PlanConfig& cfg);

/// The Eq. 6 privatization threshold: M_samples / (P · 2^{d+1}).
index_t privatization_threshold(index_t total_samples, int threads, int dim, double factor);

/// How update_preprocessed satisfied a trajectory update.
enum class UpdatePath {
  kNoop,     // every coordinate bitwise-identical — nothing touched
  kWarm,     // delta path: only dirty tasks re-binned/re-sorted/re-gathered
  kRebuild,  // fallback: full cold preprocess() (delta exceeded the
             // threshold, the partition layout moved, or the sample count
             // changed)
};

/// Tuning for the delta path. Deliberately NOT part of PlanConfig: the
/// threshold only picks between two bit-identical execution strategies, so
/// it must not contaminate plan identity (registry keys, cache blobs).
struct UpdateOptions {
  /// Moved-sample fraction above which a delta update is assumed to cost
  /// more than the cold rebuild it replaces (the dirty-task rebuild work
  /// grows superlinearly with spread-out movement).
  double rebuild_fraction = 0.3;
};

/// Diff `new_samples` against the plan in `pp` (which must describe the same
/// grid and cfg) and patch it in place. "Moved" is bitwise coordinate
/// inequality — a −0.0 → +0.0 flip counts as moved, so the patched arrays
/// match a cold gather bit for bit. On kWarm only tasks that lost, gained or
/// internally moved samples are re-sorted and re-gathered; everything else
/// is block-copied at its (possibly shifted) new offset. Falls back to a
/// full preprocess() — still assigned into `pp` — when the moved fraction
/// exceeds opts.rebuild_fraction, when a partition boundary would move, or
/// when the sample count changed.
///
/// Postcondition (the determinism contract extended): whatever the path,
/// `pp` is bit-identical to preprocess(g, new_samples, cfg, any pool) in
/// every field except `stats`/`delta`, at any pool width.
UpdatePath update_preprocessed(Preprocessed& pp, const GridDesc& g,
                               const datasets::SampleSet& new_samples, const PlanConfig& cfg,
                               ThreadPool& pool, const UpdateOptions& opts = {});

/// Deep copy: the task graph is reconstructed from the layout (it is a pure
/// function of it) and the delta scratch buffers start empty. The source's
/// reorder/gather arrays, marks and delta bookkeeping are copied verbatim —
/// the clone is a valid warm-update base for a derived plan while the
/// source keeps serving concurrent applies.
Preprocessed clone_preprocessed(const Preprocessed& src);

}  // namespace nufft
