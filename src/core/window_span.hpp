// The window-geometry primitives shared by the generic compute_window and
// every specialized convolution variant (core/conv_variants.hpp).
//
// Both callers MUST produce byte-identical windows for the same (k, W, m):
// the dispatch registry's bit-match contract (tests/test_dispatch.cpp)
// compares specialized and generic grids bitwise, and the float-rounding
// trim below is exactly the hazard that diverges first when the expression
// is re-derived instead of shared. Keep this header free of anything that
// could be compiled differently across translation units (no FMA-shaped
// a*b+c arithmetic, no ISA-specific code) — every including TU is built at
// the baseline ISA.
#pragma once

#include <algorithm>
#include <cmath>

#include "common/types.hpp"

namespace nufft {

/// First neighbour and length of the kernel window of a sample at
/// fractional grid coordinate k with support radius W.
struct WindowSpan {
  index_t x1;  // first (unwrapped) neighbour, ceil(k − W) after the trim
  int len;     // neighbour count, ≤ 2W+1 in float arithmetic
};

/// Candidate window [ceil(k−W), floor(k+W)] with the float-rounding trim.
///
/// Float rounding of k ± W can admit a neighbour just outside the kernel
/// support (|nx − k| > W): for half-integer coordinates that makes the
/// window 2W+2 wide, which overruns WindowBuf::kMaxLen at W = 9.5, reads
/// the LUT past its guard entries, and — on the privatized path — indexes
/// one cell past the task's write box. Trim with the same float expression
/// the weight lookup evaluates, so len ≤ 2W+1 holds in the arithmetic that
/// matters.
inline WindowSpan window_span(float k, float W) {
  auto x1 = static_cast<index_t>(std::ceil(k - W));
  auto x2 = static_cast<index_t>(std::floor(k + W));
  if (std::fabs(static_cast<float>(x1) - k) > W) ++x1;
  if (std::fabs(static_cast<float>(x2) - k) > W) --x2;
  return {x1, std::max(0, static_cast<int>(x2 - x1 + 1))};
}

/// Wrap an unwrapped neighbour coordinate into [0, m) for ANY m ≥ 1.
///
/// One conditional wrap covers |nx| < 2m, which holds whenever the window
/// fits the grid (2⌈W⌉+1 ≤ m — enforced at plan construction). The
/// baselines accept arbitrary GridDescs, so a window wider than the grid
/// falls back to a full modular wrap: the kernel tail then legitimately
/// revisits cells, which is the correct periodic convolution.
inline index_t wrap_grid_index(index_t nx, index_t m) {
  index_t wrapped = nx;
  if (wrapped < 0) wrapped += m;
  if (wrapped >= m) wrapped -= m;
  if (wrapped < 0 || wrapped >= m) {
    wrapped = nx % m;
    if (wrapped < 0) wrapped += m;
  }
  return wrapped;
}

}  // namespace nufft
