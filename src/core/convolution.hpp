// Convolution interpolation between the non-uniform samples and the
// oversampled Cartesian grid (paper Fig. 2).
//
// Part 1 (compute_window): for one sample, derive per-dimension neighbour
// coordinates kx/ky/kz (wrapped mod M) and interpolation weights
// winX/winY/winZ from the kernel LUT.
//
// Part 2: the separable convolution itself —
//   forward  (gather):  raw[p]  += Σ f[kx,ky,kz]·winX·winY·winZ
//   adjoint (scatter):  f[kx,ky,kz] += raw[p]·winX·winY·winZ
//
// Both come in a scalar and a hybrid-SIMD variant. The SIMD variant follows
// the paper §III-C: the innermost loop runs over *consecutive grid cells*
// along the last dimension, processing two interleaved complex values per
// 128-bit SSE register with pair-duplicated weights. Samples whose window
// wraps around the periodic grid boundary in the last dimension take the
// scalar indexed path (they are a vanishing fraction of realistic
// trajectories, whose energy concentrates mid-grid).
//
// Bit-exactness: the adjoint SIMD path performs, per grid cell, the same
// two multiplies in the same order as the scalar path, so adjoint scalar
// and SIMD results are bitwise identical. The forward SIMD path uses two
// partial accumulators across z, so it matches scalar only to rounding.
#pragma once

#include <array>

#include "common/types.hpp"
#include "core/grid.hpp"
#include "kernels/horner.hpp"
#include "kernels/lut.hpp"

namespace nufft {

/// Per-sample interpolation window (Fig. 2 Part 1 output).
struct WindowBuf {
  static constexpr int kMaxLen = 20;  // supports W <= 9.5

  alignas(64) float win[3][kMaxLen];       // kernel weights per dimension
  alignas(64) float win_dup[2 * kMaxLen];  // last-dim weights duplicated per
                                           // complex lane: (w0,w0,w1,w1,...)
  alignas(64) index_t idx[3][kMaxLen];     // wrapped neighbour indices
  index_t start[3];                        // unwrapped first neighbour
  int len[3];
  bool inner_contiguous;  // last-dim window does not wrap
};

/// Part 1 for one sample at coordinates coord[0..dim). When `fill_dup` is
/// set (SIMD Part 2 follows), the duplicated last-dim weight array is
/// populated as well.
///
/// Invariants (checked in debug/sanitizer builds):
///   * len[d] ≤ 2W+1 ≤ kMaxLen — the candidate window is trimmed so every
///     neighbour satisfies |nx − k| ≤ W in float, the same expression the
///     weight lookup evaluates (float rounding of k ± W would otherwise
///     admit a 2W+2-wide window for half-integer coordinates).
///   * idx[d][i] ∈ [0, m) for ANY grid extent m ≥ 1: indices wrap fully
///     modulo m, so a window wider than the grid (2⌈W⌉+1 > m — reachable
///     only through the baselines, since plan construction rejects it)
///     revisits cells instead of scribbling out of range; that is the
///     correct periodic convolution.
void compute_window(const GridDesc& g, const kernels::KernelLut& lut, const float* coord,
                    int dim, bool fill_dup, WindowBuf& wb);

/// Non-owning view over whichever weight evaluator the plan selected:
/// exactly one of `lut` / `horner` is set. The LUT is the paper's path; the
/// Horner evaluator computes the whole last-dim weight row from one shared
/// abscissa (see kernels/horner.hpp) and is what tolerance-driven plans use
/// for the ES kernel at tight accuracies, where a float LUT's interpolation
/// error would dominate.
struct WindowEval {
  const kernels::KernelLut* lut = nullptr;
  const kernels::KernelHorner* horner = nullptr;
  float radius() const { return lut != nullptr ? lut->radius() : horner->radius(); }
};

/// Part 1 against either evaluator; identical contract to the LUT overload.
void compute_window(const GridDesc& g, const WindowEval& ev, const float* coord, int dim,
                    bool fill_dup, WindowBuf& wb);

/// Part 2, adjoint (scatter): add val·weights into the grid.
template <int DIM>
void adj_scatter_scalar(cfloat* grid, const std::array<index_t, 3>& strides,
                        const WindowBuf& wb, cfloat val);
template <int DIM>
void adj_scatter_simd(cfloat* grid, const std::array<index_t, 3>& strides, const WindowBuf& wb,
                      cfloat val);

/// Part 2, forward (gather): return the weighted sum of grid neighbours.
template <int DIM>
cfloat fwd_gather_scalar(const cfloat* grid, const std::array<index_t, 3>& strides,
                         const WindowBuf& wb);
template <int DIM>
cfloat fwd_gather_simd(const cfloat* grid, const std::array<index_t, 3>& strides,
                       const WindowBuf& wb);

}  // namespace nufft
