#include "baselines/adjoint_atomic.hpp"

#include <atomic>

#include "common/error.hpp"
#include "core/convolution.hpp"

namespace nufft::baselines {

namespace {

inline void atomic_add(float& target, float v) {
  std::atomic_ref<float> ref(target);
  float cur = ref.load(std::memory_order_relaxed);
  while (!ref.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
}

template <int DIM>
void spread_atomic_dim(const GridDesc& g, const kernels::KernelLut& lut,
                       const datasets::SampleSet& samples, const cfloat* raw, cfloat* grid,
                       ThreadPool& pool) {
  const auto st = g.grid_strides();
  const index_t count = samples.count();
  pool.parallel_for(count, [&](index_t b, index_t e) {
    WindowBuf wb;
    for (index_t p = b; p < e; ++p) {
      float coord[3];
      for (int d = 0; d < DIM; ++d) {
        coord[d] = samples.coords[static_cast<std::size_t>(d)][static_cast<std::size_t>(p)];
      }
      compute_window(g, lut, coord, DIM, false, wb);
      const cfloat v = raw[p];
      // Scatter with per-component atomic adds.
      const int lx = DIM >= 3 ? wb.len[0] : 1;
      const int ly = DIM >= 2 ? wb.len[DIM - 2] : 1;
      const int lz = wb.len[DIM - 1];
      for (int ix = 0; ix < lx; ++ix) {
        const float wx = DIM >= 3 ? wb.win[0][ix] : 1.0f;
        const index_t bx = DIM >= 3 ? wb.idx[0][ix] * st[0] : 0;
        for (int iy = 0; iy < ly; ++iy) {
          const float wxy = DIM >= 2 ? wx * wb.win[DIM - 2][iy] : wx;
          const index_t bxy = bx + (DIM >= 2 ? wb.idx[DIM - 2][iy] * st[DIM - 2] : 0);
          const cfloat tmp = v * wxy;
          for (int iz = 0; iz < lz; ++iz) {
            const cfloat c = tmp * wb.win[DIM - 1][iz];
            auto* cell = reinterpret_cast<float*>(grid + bxy + wb.idx[DIM - 1][iz]);
            atomic_add(cell[0], c.real());
            atomic_add(cell[1], c.imag());
          }
        }
      }
    }
  });
}

}  // namespace

void spread_atomic(const GridDesc& g, const kernels::KernelLut& lut,
                   const datasets::SampleSet& samples, const cfloat* raw, cfloat* grid,
                   ThreadPool& pool) {
  switch (g.dim) {
    case 1:
      spread_atomic_dim<1>(g, lut, samples, raw, grid, pool);
      return;
    case 2:
      spread_atomic_dim<2>(g, lut, samples, raw, grid, pool);
      return;
    case 3:
      spread_atomic_dim<3>(g, lut, samples, raw, grid, pool);
      return;
    default:
      throw Error("unsupported dimension");
  }
}

}  // namespace nufft::baselines
