#include "baselines/reference_nufft.hpp"

#include <cmath>
#include <cstring>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "baselines/adjoint_privatized.hpp"
#include "core/convolution.hpp"
#include "kernels/rolloff.hpp"

namespace nufft::baselines {

ReferenceNufft::ReferenceNufft(const GridDesc& g, const datasets::SampleSet& samples,
                               double kernel_radius, int threads)
    : g_(g), samples_(&samples) {
  NUFFT_CHECK(samples.dim == g.dim);
  // Same input contract as nufft::Nufft: a kernel footprint wider than the
  // grid is rejected up front (the raw spread_* baselines, by contrast,
  // accept any grid and rely on compute_window's full modular wrap).
  const auto footprint = 2 * static_cast<index_t>(std::ceil(kernel_radius)) + 1;
  for (int d = 0; d < g.dim; ++d) {
    NUFFT_CHECK_MSG(g.m[static_cast<std::size_t>(d)] >= footprint,
                    "grid narrower than one kernel footprint");
  }
  pool_ = std::make_unique<ThreadPool>(threads);
  const auto kernel =
      kernels::make_kernel(kernels::KernelType::kKaiserBessel, kernel_radius, g.alpha);
  lut_ = std::make_unique<kernels::KernelLut>(*kernel, 1024);

  std::vector<std::size_t> dims;
  for (int d = 0; d < g.dim; ++d) dims.push_back(static_cast<std::size_t>(g.m[static_cast<std::size_t>(d)]));
  fft_fwd_ = std::make_unique<fft::FftNd<float>>(dims, fft::Direction::kForward);
  fft_inv_ = std::make_unique<fft::FftNd<float>>(dims, fft::Direction::kInverse);

  for (int d = 0; d < g.dim; ++d) {
    const index_t n = g.n[static_cast<std::size_t>(d)];
    const index_t m = g.m[static_cast<std::size_t>(d)];
    fvec s = kernels::rolloff_1d(*kernel, n, m);
    auto& wrap = wrap_[static_cast<std::size_t>(d)];
    wrap.resize(static_cast<std::size_t>(n));
    for (index_t i = 0; i < n; ++i) {
      const index_t centered = i - n / 2;
      if ((centered & 1) != 0) s[static_cast<std::size_t>(i)] = -s[static_cast<std::size_t>(i)];
      wrap[static_cast<std::size_t>(i)] = centered >= 0 ? centered : centered + m;
    }
    scale_[static_cast<std::size_t>(d)] = std::move(s);
  }
  grid_.resize(static_cast<std::size_t>(g.grid_elems()));
}

ReferenceNufft::~ReferenceNufft() = default;

void ReferenceNufft::image_to_grid(const cfloat* image) {
  zero_complex(grid_.data(), grid_.size());
  const int dim = g_.dim;
  const auto st = g_.grid_strides();
  const index_t n0 = g_.n[0];
  const index_t n1 = dim >= 2 ? g_.n[1] : 1;
  const index_t n2 = dim >= 3 ? g_.n[2] : 1;
  pool_->parallel_for(n0, [&](index_t b, index_t e) {
    for (index_t i0 = b; i0 < e; ++i0) {
      for (index_t i1 = 0; i1 < n1; ++i1) {
        const cfloat* src = image + (i0 * n1 + i1) * n2;
        cfloat* dst = grid_.data() + wrap_[0][static_cast<std::size_t>(i0)] * st[0] +
                      (dim >= 2 ? wrap_[1][static_cast<std::size_t>(i1)] * st[1] : 0);
        float f01 = scale_[0][static_cast<std::size_t>(i0)];
        if (dim >= 2) f01 *= scale_[1][static_cast<std::size_t>(i1)];
        if (dim >= 3) {
          for (index_t i2 = 0; i2 < n2; ++i2) {
            dst[wrap_[2][static_cast<std::size_t>(i2)]] =
                src[i2] * (f01 * scale_[2][static_cast<std::size_t>(i2)]);
          }
        } else {
          dst[0] = src[0] * f01;
        }
      }
    }
  });
}

void ReferenceNufft::grid_to_image(cfloat* image) {
  const int dim = g_.dim;
  const auto st = g_.grid_strides();
  const index_t n0 = g_.n[0];
  const index_t n1 = dim >= 2 ? g_.n[1] : 1;
  const index_t n2 = dim >= 3 ? g_.n[2] : 1;
  pool_->parallel_for(n0, [&](index_t b, index_t e) {
    for (index_t i0 = b; i0 < e; ++i0) {
      for (index_t i1 = 0; i1 < n1; ++i1) {
        cfloat* dst = image + (i0 * n1 + i1) * n2;
        const cfloat* src = grid_.data() + wrap_[0][static_cast<std::size_t>(i0)] * st[0] +
                            (dim >= 2 ? wrap_[1][static_cast<std::size_t>(i1)] * st[1] : 0);
        float f01 = scale_[0][static_cast<std::size_t>(i0)];
        if (dim >= 2) f01 *= scale_[1][static_cast<std::size_t>(i1)];
        if (dim >= 3) {
          for (index_t i2 = 0; i2 < n2; ++i2) {
            dst[i2] = src[wrap_[2][static_cast<std::size_t>(i2)]] *
                      (f01 * scale_[2][static_cast<std::size_t>(i2)]);
          }
        } else {
          dst[0] = src[0] * f01;
        }
      }
    }
  });
}

namespace {

template <int DIM>
void interp_loop(const GridDesc& g, const kernels::KernelLut& lut,
                 const datasets::SampleSet& samples, const cfloat* grid, cfloat* raw,
                 ThreadPool& pool) {
  const auto st = g.grid_strides();
  pool.parallel_for(samples.count(), [&](index_t b, index_t e) {
    WindowBuf wb;
    for (index_t p = b; p < e; ++p) {
      float coord[3];
      for (int d = 0; d < DIM; ++d) {
        coord[d] = samples.coords[static_cast<std::size_t>(d)][static_cast<std::size_t>(p)];
      }
      compute_window(g, lut, coord, DIM, false, wb);
      raw[p] = fwd_gather_scalar<DIM>(grid, st, wb);
    }
  });
}

}  // namespace

void ReferenceNufft::forward(const cfloat* image, cfloat* raw) {
  fwd_stats_ = OperatorStats{};
  Timer total;
  Timer t;
  image_to_grid(image);
  fwd_stats_.scale_s = t.seconds();
  t.reset();
  fft_fwd_->transform(grid_.data(), *pool_);
  fwd_stats_.fft_s = t.seconds();
  t.reset();
  switch (g_.dim) {
    case 1:
      interp_loop<1>(g_, *lut_, *samples_, grid_.data(), raw, *pool_);
      break;
    case 2:
      interp_loop<2>(g_, *lut_, *samples_, grid_.data(), raw, *pool_);
      break;
    default:
      interp_loop<3>(g_, *lut_, *samples_, grid_.data(), raw, *pool_);
      break;
  }
  fwd_stats_.conv_s = t.seconds();
  fwd_stats_.total_s = total.seconds();
}

void ReferenceNufft::adjoint(const cfloat* raw, cfloat* image) {
  adj_stats_ = OperatorStats{};
  Timer total;
  Timer t;
  // The grid clear counts as scale (like Nufft::adjoint), not convolution.
  zero_complex(grid_.data(), grid_.size());
  adj_stats_.scale_s = t.seconds();
  t.reset();
  spread_privatized(g_, *lut_, *samples_, raw, grid_.data(), *pool_);
  adj_stats_.conv_s = t.seconds();
  t.reset();
  fft_inv_->transform(grid_.data(), *pool_);
  adj_stats_.fft_s = t.seconds();
  t.reset();
  grid_to_image(image);
  adj_stats_.scale_s += t.seconds();
  adj_stats_.total_s = total.seconds();
}

}  // namespace nufft::baselines
