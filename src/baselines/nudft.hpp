// Direct (exact) non-uniform DFT — the O(N^d·K) accuracy oracle.
//
// Evaluates, in double precision regardless of the input type,
//   forward:  F(w) = Σ_n f[n] · e^{-2πi Σ_d (w_d - M_d/2)·n_d / M_d}
//   adjoint:  f[n] = Σ_w F(w) · e^{+2πi Σ_d (w_d - M_d/2)·n_d / M_d}
// with n centered per dimension — the same convention the fast operators
// approximate. Use only at test sizes.
#pragma once

#include "common/types.hpp"
#include "core/grid.hpp"
#include "datasets/trajectory.hpp"
#include "parallel/thread_pool.hpp"

namespace nufft::baselines {

void nudft_forward(const GridDesc& g, const datasets::SampleSet& samples, const cfloat* image,
                   cdouble* out, ThreadPool& pool);

void nudft_adjoint(const GridDesc& g, const datasets::SampleSet& samples, const cfloat* raw,
                   cdouble* image, ThreadPool& pool);

}  // namespace nufft::baselines
