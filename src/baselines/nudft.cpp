#include "baselines/nudft.hpp"

#include <cmath>

#include "common/error.hpp"

namespace nufft::baselines {

namespace {

// Centered image coordinate of flat index i along dimension d, and the loop
// over all image voxels with their per-dimension centered indices.
template <class Body>
void for_each_voxel(const GridDesc& g, ThreadPool& pool, Body&& body) {
  const int dim = g.dim;
  const index_t n0 = g.n[0];
  const index_t n1 = dim >= 2 ? g.n[1] : 1;
  const index_t n2 = dim >= 3 ? g.n[2] : 1;
  pool.parallel_for(n0, [&](index_t b, index_t e) {
    for (index_t i0 = b; i0 < e; ++i0) {
      for (index_t i1 = 0; i1 < n1; ++i1) {
        for (index_t i2 = 0; i2 < n2; ++i2) {
          const index_t flat = (i0 * n1 + i1) * n2 + i2;
          double nc[3] = {static_cast<double>(i0 - g.n[0] / 2), 0.0, 0.0};
          if (dim >= 2) nc[1] = static_cast<double>(i1 - g.n[1] / 2);
          if (dim >= 3) nc[2] = static_cast<double>(i2 - g.n[2] / 2);
          body(flat, nc);
        }
      }
    }
  });
}

// Phase Σ_d (w_d - M_d/2)·n_d / M_d for one (sample, voxel) pair.
inline double phase(const GridDesc& g, const datasets::SampleSet& s, index_t p,
                    const double* nc) {
  double acc = 0.0;
  for (int d = 0; d < g.dim; ++d) {
    const double w = static_cast<double>(s.coords[static_cast<std::size_t>(d)][static_cast<std::size_t>(p)]);
    const double m = static_cast<double>(g.m[static_cast<std::size_t>(d)]);
    acc += (w - 0.5 * m) * nc[d] / m;
  }
  return acc;
}

}  // namespace

void nudft_forward(const GridDesc& g, const datasets::SampleSet& samples, const cfloat* image,
                   cdouble* out, ThreadPool& pool) {
  const index_t count = samples.count();
  const index_t voxels = g.image_elems();
  // Parallelize over samples: each output is an independent sum.
  pool.parallel_for(count, [&](index_t pb, index_t pe) {
    std::vector<double> nc_buf;
    for (index_t p = pb; p < pe; ++p) {
      cdouble acc(0.0, 0.0);
      // Serial voxel loop (test sizes only).
      const int dim = g.dim;
      const index_t n1 = dim >= 2 ? g.n[1] : 1;
      const index_t n2 = dim >= 3 ? g.n[2] : 1;
      for (index_t flat = 0; flat < voxels; ++flat) {
        double nc[3] = {0.0, 0.0, 0.0};
        index_t rem = flat;
        const index_t i2 = rem % n2;
        rem /= n2;
        const index_t i1 = rem % n1;
        rem /= n1;
        const index_t i0 = rem;
        nc[0] = static_cast<double>(i0 - g.n[0] / 2);
        if (dim >= 2) nc[1] = static_cast<double>(i1 - g.n[1] / 2);
        if (dim >= 3) nc[2] = static_cast<double>(i2 - g.n[2] / 2);
        const double ph = -kTwoPi * phase(g, samples, p, nc);
        const cfloat v = image[flat];
        acc += cdouble(static_cast<double>(v.real()), static_cast<double>(v.imag())) *
               cdouble(std::cos(ph), std::sin(ph));
      }
      out[p] = acc;
    }
  });
}

void nudft_adjoint(const GridDesc& g, const datasets::SampleSet& samples, const cfloat* raw,
                   cdouble* image, ThreadPool& pool) {
  const index_t count = samples.count();
  for_each_voxel(g, pool, [&](index_t flat, const double* nc) {
    cdouble acc(0.0, 0.0);
    for (index_t p = 0; p < count; ++p) {
      const double ph = kTwoPi * phase(g, samples, p, nc);
      const cfloat v = raw[p];
      acc += cdouble(static_cast<double>(v.real()), static_cast<double>(v.imag())) *
             cdouble(std::cos(ph), std::sin(ph));
    }
    image[flat] = acc;
  });
}

}  // namespace nufft::baselines
