// Baseline adjoint convolution using hardware atomic updates
// (paper §III-B: "one can use atomic update instructions ... high overhead,
// and will not scale to a large number of threads").
//
// Samples are split across threads by plain loop partitioning; every grid
// write is a pair of atomic float additions. Bit-level results differ from
// the deterministic scheduler only by floating-point addition order.
#pragma once

#include "common/types.hpp"
#include "core/grid.hpp"
#include "datasets/trajectory.hpp"
#include "kernels/lut.hpp"
#include "parallel/thread_pool.hpp"

namespace nufft::baselines {

/// Scatter all samples onto `grid` (grid_elems values, NOT cleared here)
/// using atomic adds.
void spread_atomic(const GridDesc& g, const kernels::KernelLut& lut,
                   const datasets::SampleSet& samples, const cfloat* raw, cfloat* grid,
                   ThreadPool& pool);

}  // namespace nufft::baselines
