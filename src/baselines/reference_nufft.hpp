// Reference multithreaded NUFFT in the style of the Shu et al. comparator
// of Table IV: loop-partitioned forward convolution, full-grid thread
// privatization for the adjoint, no sample reordering, no task machinery,
// scalar (non-SIMD) convolution. Same math and conventions as nufft::Nufft,
// so outputs agree to rounding.
#pragma once

#include <memory>

#include "common/types.hpp"
#include "core/grid.hpp"
#include "core/stats.hpp"
#include "datasets/trajectory.hpp"
#include "fft/fftnd.hpp"
#include "kernels/lut.hpp"
#include "parallel/thread_pool.hpp"

namespace nufft::baselines {

class ReferenceNufft {
 public:
  ReferenceNufft(const GridDesc& g, const datasets::SampleSet& samples, double kernel_radius,
                 int threads);
  ~ReferenceNufft();

  void forward(const cfloat* image, cfloat* raw);
  void adjoint(const cfloat* raw, cfloat* image);

  const OperatorStats& last_forward_stats() const { return fwd_stats_; }
  const OperatorStats& last_adjoint_stats() const { return adj_stats_; }

 private:
  void image_to_grid(const cfloat* image);
  void grid_to_image(cfloat* image);

  GridDesc g_;
  const datasets::SampleSet* samples_;
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<kernels::KernelLut> lut_;
  std::unique_ptr<fft::FftNd<float>> fft_fwd_;
  std::unique_ptr<fft::FftNd<float>> fft_inv_;
  std::array<fvec, 3> scale_;
  std::array<std::vector<index_t>, 3> wrap_;
  cvecf grid_;
  OperatorStats fwd_stats_;
  OperatorStats adj_stats_;
};

}  // namespace nufft::baselines
