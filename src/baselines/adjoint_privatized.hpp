// Baseline adjoint convolution with full-grid thread privatization — the
// approach of the Shu et al. comparator in Table IV, and the "privatization
// [18]" strategy the paper argues does not scale: every thread owns a
// complete copy of the M^d grid and a global tree reduction merges them.
//
// Memory cost is threads × grid, which is exactly the scalability problem
// the paper's selective privatization removes.
#pragma once

#include "common/types.hpp"
#include "core/grid.hpp"
#include "datasets/trajectory.hpp"
#include "kernels/lut.hpp"
#include "parallel/thread_pool.hpp"

namespace nufft::baselines {

/// Scatter all samples onto `grid` (NOT cleared here) via full per-thread
/// private grids plus a parallel reduction.
void spread_privatized(const GridDesc& g, const kernels::KernelLut& lut,
                       const datasets::SampleSet& samples, const cfloat* raw, cfloat* grid,
                       ThreadPool& pool);

}  // namespace nufft::baselines
