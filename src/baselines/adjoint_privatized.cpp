#include "baselines/adjoint_privatized.hpp"

#include <cstring>

#include "common/error.hpp"
#include "core/convolution.hpp"

namespace nufft::baselines {

namespace {

template <int DIM>
void spread_privatized_dim(const GridDesc& g, const kernels::KernelLut& lut,
                           const datasets::SampleSet& samples, const cfloat* raw, cfloat* grid,
                           ThreadPool& pool) {
  const auto st = g.grid_strides();
  const index_t count = samples.count();
  const auto elems = static_cast<std::size_t>(g.grid_elems());
  const int nthreads = pool.size();

  // Context 0 writes the shared grid directly; contexts >= 1 get a private
  // copy. (With 1 thread this degenerates to the sequential algorithm.)
  std::vector<cvecf> priv(static_cast<std::size_t>(nthreads > 1 ? nthreads - 1 : 0));
  for (auto& b : priv) {
    b.resize(elems);
    zero_complex(b.data(), elems);
  }

  pool.parallel_for_tid(count, std::max<index_t>(1, count / (nthreads * 8)),
                        [&](int tid, index_t b, index_t e) {
                          cfloat* dst = tid == 0 ? grid : priv[static_cast<std::size_t>(tid - 1)].data();
                          WindowBuf wb;
                          for (index_t p = b; p < e; ++p) {
                            float coord[3];
                            for (int d = 0; d < DIM; ++d) {
                              coord[d] = samples.coords[static_cast<std::size_t>(d)][static_cast<std::size_t>(p)];
                            }
                            compute_window(g, lut, coord, DIM, false, wb);
                            adj_scatter_scalar<DIM>(dst, st, wb, raw[p]);
                          }
                        });

  // Global reduction: grid += Σ private copies, parallel over grid chunks.
  if (!priv.empty()) {
    pool.parallel_for(static_cast<index_t>(elems), [&](index_t b, index_t e) {
      for (const auto& copy : priv) {
        const cfloat* src = copy.data();
        for (index_t i = b; i < e; ++i) grid[i] += src[i];
      }
    });
  }
}

}  // namespace

void spread_privatized(const GridDesc& g, const kernels::KernelLut& lut,
                       const datasets::SampleSet& samples, const cfloat* raw, cfloat* grid,
                       ThreadPool& pool) {
  switch (g.dim) {
    case 1:
      spread_privatized_dim<1>(g, lut, samples, raw, grid, pool);
      return;
    case 2:
      spread_privatized_dim<2>(g, lut, samples, raw, grid, pool);
      return;
    case 3:
      spread_privatized_dim<3>(g, lut, samples, raw, grid, pool);
      return;
    default:
      throw Error("unsupported dimension");
  }
}

}  // namespace nufft::baselines
