#include "mri/phantom.hpp"

#include <cmath>
#include <vector>

namespace nufft::mri {

namespace {

// A compact Shepp-Logan-inspired ellipsoid set (normalized coordinates).
const std::vector<Ellipsoid>& ellipsoids() {
  static const std::vector<Ellipsoid> e = {
      {0.00, 0.00, 0.00, 0.69, 0.92, 0.81, 1.00},    // outer skull
      {0.00, -0.0184, 0.00, 0.6624, 0.874, 0.78, -0.80},  // brain
      {0.22, 0.00, 0.00, 0.11, 0.31, 0.22, -0.20},   // right ventricle
      {-0.22, 0.00, 0.00, 0.16, 0.41, 0.28, -0.20},  // left ventricle
      {0.00, 0.35, -0.15, 0.21, 0.25, 0.41, 0.10},   // upper lesion
      {0.00, 0.10, 0.25, 0.046, 0.046, 0.05, 0.10},  // small lesion
      {-0.08, -0.605, 0.00, 0.046, 0.023, 0.05, 0.10},
      {0.06, -0.605, -0.10, 0.023, 0.046, 0.05, 0.10},
  };
  return e;
}

}  // namespace

cvecf make_phantom(const GridDesc& g) {
  const int dim = g.dim;
  const index_t n0 = g.n[0];
  const index_t n1 = dim >= 2 ? g.n[1] : 1;
  const index_t n2 = dim >= 3 ? g.n[2] : 1;
  cvecf img(static_cast<std::size_t>(g.image_elems()), cfloat(0.0f, 0.0f));
  for (index_t i0 = 0; i0 < n0; ++i0) {
    const double x = 2.0 * static_cast<double>(i0 - n0 / 2) / static_cast<double>(n0);
    for (index_t i1 = 0; i1 < n1; ++i1) {
      const double y = dim >= 2 ? 2.0 * static_cast<double>(i1 - n1 / 2) / static_cast<double>(n1) : 0.0;
      for (index_t i2 = 0; i2 < n2; ++i2) {
        const double z = dim >= 3 ? 2.0 * static_cast<double>(i2 - n2 / 2) / static_cast<double>(n2) : 0.0;
        double v = 0.0;
        for (const auto& el : ellipsoids()) {
          const double dx = (x - el.cx) / el.ax;
          const double dy = (y - el.cy) / el.ay;
          const double dz = (z - el.cz) / el.az;
          if (dx * dx + dy * dy + dz * dz <= 1.0) v += el.intensity;
        }
        img[static_cast<std::size_t>((i0 * n1 + i1) * n2 + i2)] =
            cfloat(static_cast<float>(v), 0.0f);
      }
    }
  }
  return img;
}

double nrmse(const cfloat* a, const cfloat* b, index_t n) {
  double num = 0.0;
  double den = 0.0;
  for (index_t i = 0; i < n; ++i) {
    const cfloat d = a[i] - b[i];
    num += static_cast<double>(d.real()) * d.real() + static_cast<double>(d.imag()) * d.imag();
    den += static_cast<double>(b[i].real()) * b[i].real() +
           static_cast<double>(b[i].imag()) * b[i].imag();
  }
  return den > 0.0 ? std::sqrt(num / den) : std::sqrt(num);
}

}  // namespace nufft::mri
