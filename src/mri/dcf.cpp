#include "mri/dcf.hpp"

#include <cmath>

#include "common/error.hpp"

namespace nufft::mri {

fvec pipe_menon_dcf(Nufft& plan, const DcfOptions& opt) {
  NUFFT_CHECK(opt.iterations >= 1);
  const index_t n = plan.sample_count();
  cvecf w(static_cast<std::size_t>(n), cfloat(1.0f, 0.0f));
  cvecf cchw(static_cast<std::size_t>(n));

  for (int it = 0; it < opt.iterations; ++it) {
    // C Cᴴ w: spread the weights onto the grid, interpolate them back.
    plan.spread(w.data());
    plan.interp(cchw.data());
    for (index_t i = 0; i < n; ++i) {
      const float denom = std::max(opt.floor, cchw[static_cast<std::size_t>(i)].real());
      auto& wi = w[static_cast<std::size_t>(i)];
      wi = cfloat(wi.real() / denom, 0.0f);
    }
  }

  // Normalize to unit mean so downstream scaling is trajectory-independent.
  double sum = 0.0;
  for (const auto& v : w) sum += v.real();
  const auto scale = static_cast<float>(static_cast<double>(n) / sum);
  fvec out(static_cast<std::size_t>(n));
  for (index_t i = 0; i < n; ++i) out[static_cast<std::size_t>(i)] = w[static_cast<std::size_t>(i)].real() * scale;
  return out;
}

fvec radial_ramp_dcf(const GridDesc& g, const datasets::SampleSet& samples) {
  NUFFT_CHECK_MSG(samples.type == datasets::TrajectoryType::kRadial,
                  "ramp weights are only valid for radial trajectories");
  const index_t n = samples.count();
  fvec out(static_cast<std::size_t>(n));
  double sum = 0.0;
  for (index_t i = 0; i < n; ++i) {
    double r2 = 0.0;
    for (int d = 0; d < g.dim; ++d) {
      const double c = 0.5 * static_cast<double>(g.m[static_cast<std::size_t>(d)]);
      const double dx = samples.coords[static_cast<std::size_t>(d)][static_cast<std::size_t>(i)] - c;
      r2 += dx * dx;
    }
    // Density along a spoke set ∝ 1/r^{d-1}; compensate with r^{d-1},
    // with a half-sample floor at DC.
    const double r = std::max(std::sqrt(r2), 0.5);
    const double wgt = std::pow(r, g.dim - 1);
    out[static_cast<std::size_t>(i)] = static_cast<float>(wgt);
    sum += wgt;
  }
  const auto scale = static_cast<float>(static_cast<double>(n) / sum);
  for (auto& v : out) v *= scale;
  return out;
}

}  // namespace nufft::mri
