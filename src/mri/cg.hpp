// Conjugate-gradient solver for the normal equations AᴴA x = Aᴴ b
// (Hermitian positive semi-definite operator), the standard engine of
// iterative non-Cartesian MRI reconstruction. Each iteration applies AᴴA
// once — one coil-batched forward and adjoint NUFFT (exec::BatchNufft)
// covering all coils — which is exactly the workload whose per-call cost
// the paper optimizes.
#pragma once

#include <functional>
#include <vector>

#include "common/types.hpp"

namespace nufft::mri {

struct CgOptions {
  int max_iters = 10;
  double tolerance = 1e-6;  // stop when ‖r‖/‖r0‖ falls below this
  double lambda = 0.0;      // Tikhonov term: solve (AᴴA + λI)x = rhs
};

struct CgResult {
  int iterations = 0;
  std::vector<double> residual_norms;  // ‖r_k‖ after each iteration
};

/// Solve (AᴴA + λI)x = rhs with x starting at zero.
/// `normal_op(in, out)` must compute out = AᴴA·in (n values each).
CgResult conjugate_gradient(const std::function<void(const cfloat*, cfloat*)>& normal_op,
                            const cfloat* rhs, cfloat* x, index_t n, const CgOptions& opt);

}  // namespace nufft::mri
