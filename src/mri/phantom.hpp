// Synthetic test objects: a 3D (or 2D/1D) Shepp-Logan-style ellipsoid
// phantom, standing in for the scanner data of the paper's motivating
// application (iterative multichannel non-Cartesian MRI reconstruction).
#pragma once

#include "common/types.hpp"
#include "core/grid.hpp"

namespace nufft::mri {

/// Additive ellipsoid: axes and center in units of the half field of view
/// (coordinates in [-1, 1]).
struct Ellipsoid {
  double cx, cy, cz;  // center
  double ax, ay, az;  // semi-axes
  double intensity;
};

/// N^dim Shepp-Logan-like phantom (values real, stored complex).
/// Deterministic; the classic ellipse set adapted to dim dimensions.
cvecf make_phantom(const GridDesc& g);

/// Normalized root-mean-square error ‖a − b‖ / ‖b‖.
double nrmse(const cfloat* a, const cfloat* b, index_t n);

}  // namespace nufft::mri
