#include "mri/coils.hpp"

#include <cmath>

#include "common/error.hpp"

namespace nufft::mri {

std::vector<cvecf> make_coil_maps(const GridDesc& g, int ncoils) {
  NUFFT_CHECK(ncoils >= 1);
  const int dim = g.dim;
  const index_t n0 = g.n[0];
  const index_t n1 = dim >= 2 ? g.n[1] : 1;
  const index_t n2 = dim >= 3 ? g.n[2] : 1;
  std::vector<cvecf> maps(static_cast<std::size_t>(ncoils));
  for (int c = 0; c < ncoils; ++c) {
    auto& map = maps[static_cast<std::size_t>(c)];
    map.resize(static_cast<std::size_t>(g.image_elems()));
    // Coil center on a circle (2D/3D) or alternating ends (1D).
    const double ang = kTwoPi * static_cast<double>(c) / static_cast<double>(ncoils);
    const double ccx = dim >= 2 ? 0.9 * std::cos(ang) : (c % 2 == 0 ? -0.9 : 0.9);
    const double ccy = dim >= 2 ? 0.9 * std::sin(ang) : 0.0;
    const double ccz = dim >= 3 ? 0.5 * std::sin(2.0 * ang) : 0.0;
    const double width = 1.1;  // Gaussian width in FOV units
    for (index_t i0 = 0; i0 < n0; ++i0) {
      const double x = 2.0 * static_cast<double>(i0 - n0 / 2) / static_cast<double>(n0);
      for (index_t i1 = 0; i1 < n1; ++i1) {
        const double y = dim >= 2 ? 2.0 * static_cast<double>(i1 - n1 / 2) / static_cast<double>(n1) : 0.0;
        for (index_t i2 = 0; i2 < n2; ++i2) {
          const double z = dim >= 3 ? 2.0 * static_cast<double>(i2 - n2 / 2) / static_cast<double>(n2) : 0.0;
          const double r2 = (x - ccx) * (x - ccx) + (y - ccy) * (y - ccy) + (z - ccz) * (z - ccz);
          const double mag = std::exp(-r2 / (2.0 * width * width));
          // Gentle linear phase distinguishes coils in the complex domain.
          const double ph = 0.5 * (x * std::cos(ang) + y * std::sin(ang)) + 0.1 * ang;
          map[static_cast<std::size_t>((i0 * n1 + i1) * n2 + i2)] =
              cfloat(static_cast<float>(mag * std::cos(ph)), static_cast<float>(mag * std::sin(ph)));
        }
      }
    }
  }
  return maps;
}

void apply_coil(const cfloat* map, const cfloat* image, cfloat* out, index_t n) {
  for (index_t i = 0; i < n; ++i) out[i] = map[i] * image[i];
}

void accumulate_coil_adjoint(const cfloat* map, const cfloat* data, cfloat* acc, index_t n) {
  for (index_t i = 0; i < n; ++i) acc[i] += std::conj(map[i]) * data[i];
}

}  // namespace nufft::mri
