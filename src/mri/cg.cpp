#include "mri/cg.hpp"

#include <cmath>
#include <cstring>

#include "common/aligned.hpp"

namespace nufft::mri {

namespace {

double dot_real(const cfloat* a, const cfloat* b, index_t n) {
  // Re⟨a, b⟩ accumulated in double for stability.
  double acc = 0.0;
  for (index_t i = 0; i < n; ++i) {
    acc += static_cast<double>(a[i].real()) * b[i].real() +
           static_cast<double>(a[i].imag()) * b[i].imag();
  }
  return acc;
}

}  // namespace

CgResult conjugate_gradient(const std::function<void(const cfloat*, cfloat*)>& normal_op,
                            const cfloat* rhs, cfloat* x, index_t n, const CgOptions& opt) {
  CgResult result;
  cvecf r(static_cast<std::size_t>(n));
  cvecf p(static_cast<std::size_t>(n));
  cvecf q(static_cast<std::size_t>(n));

  zero_complex(x, static_cast<std::size_t>(n));
  std::memcpy(r.data(), rhs, static_cast<std::size_t>(n) * sizeof(cfloat));
  std::memcpy(p.data(), rhs, static_cast<std::size_t>(n) * sizeof(cfloat));

  double rho = dot_real(r.data(), r.data(), n);
  const double rho0 = rho;
  if (rho0 == 0.0) return result;

  for (int it = 0; it < opt.max_iters; ++it) {
    normal_op(p.data(), q.data());
    if (opt.lambda != 0.0) {
      const auto lam = static_cast<float>(opt.lambda);
      for (index_t i = 0; i < n; ++i) q[static_cast<std::size_t>(i)] += lam * p[static_cast<std::size_t>(i)];
    }
    const double pq = dot_real(p.data(), q.data(), n);
    if (pq <= 0.0) break;  // numerical loss of positive definiteness
    const auto alpha = static_cast<float>(rho / pq);
    for (index_t i = 0; i < n; ++i) {
      x[i] += alpha * p[static_cast<std::size_t>(i)];
      r[static_cast<std::size_t>(i)] -= alpha * q[static_cast<std::size_t>(i)];
    }
    const double rho_new = dot_real(r.data(), r.data(), n);
    ++result.iterations;
    result.residual_norms.push_back(std::sqrt(rho_new));
    if (rho_new / rho0 < opt.tolerance * opt.tolerance) break;
    const auto beta = static_cast<float>(rho_new / rho);
    for (index_t i = 0; i < n; ++i) {
      p[static_cast<std::size_t>(i)] = r[static_cast<std::size_t>(i)] + beta * p[static_cast<std::size_t>(i)];
    }
    rho = rho_new;
  }
  return result;
}

}  // namespace nufft::mri
