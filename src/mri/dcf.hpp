// Sampling-density compensation factors (DCF).
//
// The adjoint NUFFT of unweighted data over-counts densely sampled spectral
// regions (radial/spiral centers). Non-iterative "gridding" reconstruction
// therefore weights each sample by the inverse of the local sampling
// density. Two estimators are provided:
//
//   * pipe_menon_dcf — the standard iterative fixed point of Pipe & Menon
//     (MRM 1999): w ← w / (C Cᴴ w), where C Cᴴ is "spread then interpolate"
//     through the gridding kernel. Works for arbitrary trajectories and
//     uses only the plan's convolution entry points — i.e. it exercises the
//     paper's optimized kernels once per iteration.
//   * radial_ramp_dcf — the analytic |r|^{d-1} ramp for radial spokes.
#pragma once

#include "common/types.hpp"
#include "core/nufft.hpp"

namespace nufft::mri {

struct DcfOptions {
  int iterations = 12;
  float floor = 1e-6f;  // guards the division where density underflows
};

/// Iterative Pipe–Menon density estimate; returns one weight per sample
/// (caller order), normalized so the weights average to 1.
fvec pipe_menon_dcf(Nufft& plan, const DcfOptions& opt = {});

/// Analytic ramp weights for a radial trajectory (any dimension).
fvec radial_ramp_dcf(const GridDesc& g, const datasets::SampleSet& samples);

}  // namespace nufft::mri
