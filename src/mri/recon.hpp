// Iterative multichannel non-Cartesian MRI reconstruction — the paper's
// headline application (§I: "iterative multichannel reconstruction of a
// 240×240×240 image could execute in just over 3 minutes").
//
// Model: per coil c, data_c = NUFFT_forward(S_c ⊙ x). The reconstruction
// solves the regularized least-squares problem with CG on the normal
// equations. All coils share one NUFFT plan, and every per-coil transform
// loop runs as a single batched apply (exec::BatchNufft) with the coil
// count as the batch — one scheduler walk, one window computation per
// sample, and one pruned batched FFT pass cover all coils per CG iteration.
#pragma once

#include <memory>
#include <vector>

#include "core/nufft.hpp"
#include "exec/batch_nufft.hpp"
#include "mri/cg.hpp"

namespace nufft::mri {

struct ReconOptions {
  int coils = 4;
  CgOptions cg;
};

struct ReconResult {
  cvecf image;
  CgResult cg;
  double seconds = 0.0;           // wall-clock of the solve (excl. planning)
  double nufft_calls = 0.0;       // forward+adjoint pairs executed
};

class MultichannelRecon {
 public:
  /// Shares one NUFFT plan across all coils; transforms are batched over
  /// the coil dimension.
  MultichannelRecon(Nufft& plan, std::vector<cvecf> coil_maps);

  /// Simulate coil data from a ground-truth image (forward model).
  std::vector<cvecf> simulate(const cfloat* truth);

  /// Reconstruct from per-coil sample data.
  ReconResult reconstruct(const std::vector<cvecf>& data, const CgOptions& opt);

  int coils() const { return static_cast<int>(maps_.size()); }

 private:
  void normal_op(const cfloat* in, cfloat* out);

  Nufft& plan_;
  std::vector<cvecf> maps_;
  exec::BatchNufft batch_;
  cvecf tmp_images_;  // coils · image_elems(), coil-major
  cvecf tmp_raws_;    // coils · sample_count()
  cvecf tmp_adjs_;    // coils · image_elems()
  double pair_calls_ = 0.0;
};

}  // namespace nufft::mri
