// Synthetic receive-coil sensitivity maps for multichannel reconstruction.
//
// Real coil sensitivities are smooth, spatially localized complex fields;
// we model each coil as a Gaussian magnitude profile centered on the
// surface of the field of view with a slowly varying linear phase — enough
// structure to make the multichannel inverse problem non-trivial while
// staying fully deterministic.
#pragma once

#include <vector>

#include "common/types.hpp"
#include "core/grid.hpp"

namespace nufft::mri {

/// `ncoils` sensitivity maps, each with image_elems() values.
std::vector<cvecf> make_coil_maps(const GridDesc& g, int ncoils);

/// Point-wise coil modulation: out = map ⊙ image.
void apply_coil(const cfloat* map, const cfloat* image, cfloat* out, index_t n);

/// Conjugate coil accumulation: acc += conj(map) ⊙ data.
void accumulate_coil_adjoint(const cfloat* map, const cfloat* data, cfloat* acc, index_t n);

}  // namespace nufft::mri
