#include "mri/recon.hpp"

#include <cstring>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "mri/coils.hpp"

namespace nufft::mri {

MultichannelRecon::MultichannelRecon(Nufft& plan, std::vector<cvecf> coil_maps)
    : plan_(plan), maps_(std::move(coil_maps)) {
  NUFFT_CHECK(!maps_.empty());
  const auto n = static_cast<std::size_t>(plan_.image_elems());
  for (const auto& m : maps_) NUFFT_CHECK(m.size() == n);
  tmp_image_.resize(n);
  tmp_adj_.resize(n);
  tmp_raw_.resize(static_cast<std::size_t>(plan_.sample_count()));
}

std::vector<cvecf> MultichannelRecon::simulate(const cfloat* truth) {
  const index_t n = plan_.image_elems();
  std::vector<cvecf> data(maps_.size());
  for (std::size_t c = 0; c < maps_.size(); ++c) {
    apply_coil(maps_[c].data(), truth, tmp_image_.data(), n);
    data[c].resize(static_cast<std::size_t>(plan_.sample_count()));
    plan_.forward(tmp_image_.data(), data[c].data());
  }
  return data;
}

void MultichannelRecon::normal_op(const cfloat* in, cfloat* out) {
  const index_t n = plan_.image_elems();
  zero_complex(out, static_cast<std::size_t>(n));
  for (std::size_t c = 0; c < maps_.size(); ++c) {
    apply_coil(maps_[c].data(), in, tmp_image_.data(), n);
    plan_.forward(tmp_image_.data(), tmp_raw_.data());
    plan_.adjoint(tmp_raw_.data(), tmp_adj_.data());
    accumulate_coil_adjoint(maps_[c].data(), tmp_adj_.data(), out, n);
    pair_calls_ += 1.0;
  }
}

ReconResult MultichannelRecon::reconstruct(const std::vector<cvecf>& data, const CgOptions& opt) {
  NUFFT_CHECK(data.size() == maps_.size());
  const index_t n = plan_.image_elems();
  ReconResult result;
  result.image.resize(static_cast<std::size_t>(n));

  Timer t;
  // rhs = Aᴴ b = Σ_c conj(S_c) ⊙ adjoint(data_c)
  cvecf rhs(static_cast<std::size_t>(n), cfloat(0.0f, 0.0f));
  for (std::size_t c = 0; c < maps_.size(); ++c) {
    plan_.adjoint(data[c].data(), tmp_adj_.data());
    accumulate_coil_adjoint(maps_[c].data(), tmp_adj_.data(), rhs.data(), n);
  }

  pair_calls_ = 0.0;
  result.cg = conjugate_gradient([this](const cfloat* in, cfloat* out) { normal_op(in, out); },
                                 rhs.data(), result.image.data(), n, opt);
  result.seconds = t.seconds();
  result.nufft_calls = pair_calls_;
  return result;
}

}  // namespace nufft::mri
