#include "mri/recon.hpp"

#include <cstring>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "mri/coils.hpp"

namespace nufft::mri {

MultichannelRecon::MultichannelRecon(Nufft& plan, std::vector<cvecf> coil_maps)
    : plan_(plan),
      maps_(std::move(coil_maps)),
      batch_(plan, static_cast<index_t>(maps_.size())) {
  NUFFT_CHECK(!maps_.empty());
  const auto n = static_cast<std::size_t>(plan_.image_elems());
  for (const auto& m : maps_) NUFFT_CHECK(m.size() == n);
  tmp_images_.resize(maps_.size() * n);
  tmp_adjs_.resize(maps_.size() * n);
  tmp_raws_.resize(maps_.size() * static_cast<std::size_t>(plan_.sample_count()));
}

std::vector<cvecf> MultichannelRecon::simulate(const cfloat* truth) {
  const index_t n = plan_.image_elems();
  const auto coils = static_cast<index_t>(maps_.size());
  std::vector<cvecf> data(maps_.size());
  std::vector<const cfloat*> in(maps_.size());
  std::vector<cfloat*> out(maps_.size());
  for (std::size_t c = 0; c < maps_.size(); ++c) {
    cfloat* img = tmp_images_.data() + c * static_cast<std::size_t>(n);
    apply_coil(maps_[c].data(), truth, img, n);
    data[c].resize(static_cast<std::size_t>(plan_.sample_count()));
    in[c] = img;
    out[c] = data[c].data();
  }
  batch_.forward(in.data(), out.data(), coils);
  return data;
}

void MultichannelRecon::normal_op(const cfloat* in, cfloat* out) {
  const index_t n = plan_.image_elems();
  const auto coils = static_cast<index_t>(maps_.size());
  zero_complex(out, static_cast<std::size_t>(n));
  for (std::size_t c = 0; c < maps_.size(); ++c) {
    apply_coil(maps_[c].data(), in, tmp_images_.data() + c * static_cast<std::size_t>(n), n);
  }
  // One batched fwd+adj pass covers every coil: the batch dimension is the
  // coil index.
  batch_.forward(tmp_images_.data(), tmp_raws_.data(), coils);
  batch_.adjoint(tmp_raws_.data(), tmp_adjs_.data(), coils);
  for (std::size_t c = 0; c < maps_.size(); ++c) {
    accumulate_coil_adjoint(maps_[c].data(),
                            tmp_adjs_.data() + c * static_cast<std::size_t>(n), out, n);
    pair_calls_ += 1.0;
  }
}

ReconResult MultichannelRecon::reconstruct(const std::vector<cvecf>& data, const CgOptions& opt) {
  NUFFT_CHECK(data.size() == maps_.size());
  const index_t n = plan_.image_elems();
  const auto coils = static_cast<index_t>(maps_.size());
  ReconResult result;
  result.image.resize(static_cast<std::size_t>(n));

  Timer t;
  // rhs = Aᴴ b = Σ_c conj(S_c) ⊙ adjoint(data_c), adjoints batched over coils
  cvecf rhs(static_cast<std::size_t>(n), cfloat(0.0f, 0.0f));
  {
    std::vector<const cfloat*> in(maps_.size());
    std::vector<cfloat*> out(maps_.size());
    for (std::size_t c = 0; c < maps_.size(); ++c) {
      in[c] = data[c].data();
      out[c] = tmp_adjs_.data() + c * static_cast<std::size_t>(n);
    }
    batch_.adjoint(in.data(), out.data(), coils);
  }
  for (std::size_t c = 0; c < maps_.size(); ++c) {
    accumulate_coil_adjoint(maps_[c].data(),
                            tmp_adjs_.data() + c * static_cast<std::size_t>(n), rhs.data(), n);
  }

  pair_calls_ = 0.0;
  result.cg = conjugate_gradient([this](const cfloat* in, cfloat* out) { normal_op(in, out); },
                                 rhs.data(), result.image.data(), n, opt);
  result.seconds = t.seconds();
  result.nufft_calls = pair_calls_;
  return result;
}

}  // namespace nufft::mri
