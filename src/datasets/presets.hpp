// Table I of the paper: the five dataset parameter rows, plus container-
// scale variants for machines far smaller than the paper's 40-core testbed.
#pragma once

#include <vector>

#include "datasets/trajectory.hpp"

namespace nufft::datasets {

struct Table1Row {
  int id;           // 1-based row number as printed in the paper
  index_t n;        // image dimension N
  index_t k;        // samples per interleave K
  index_t s;        // interleaves S
  double sr;        // sampling rate, K·S = N³·SR
};

/// The five rows of Table I.
const std::vector<Table1Row>& table1();

/// The paper's default dataset row (N=256, SR=0.75 — row 2).
Table1Row default_row();

/// Scale a Table I row down by `shrink` per dimension, preserving the
/// sampling rate (K·S = N³·SR) and the K/N ratio, so trajectory geometry
/// and relative density are unchanged. shrink=1 returns the row unchanged.
Table1Row scaled(const Table1Row& row, index_t shrink);

/// Trajectory parameters for a (possibly scaled) Table I row.
TrajectoryParams params_for(const Table1Row& row, double alpha = 2.0,
                            std::uint64_t seed = 1234);

}  // namespace nufft::datasets
