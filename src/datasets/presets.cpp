#include "datasets/presets.hpp"

#include <cmath>

#include "common/error.hpp"

namespace nufft::datasets {

const std::vector<Table1Row>& table1() {
  static const std::vector<Table1Row> rows = {
      {1, 128, 256, 4096, 0.50},
      {2, 256, 512, 24576, 0.75},
      {3, 256, 512, 32768, 1.00},
      {4, 256, 512, 40960, 1.25},
      {5, 320, 640, 12800, 0.25},
  };
  return rows;
}

Table1Row default_row() { return table1()[1]; }

Table1Row scaled(const Table1Row& row, index_t shrink) {
  NUFFT_CHECK(shrink >= 1);
  if (shrink == 1) return row;
  Table1Row out = row;
  out.n = std::max<index_t>(8, row.n / shrink);
  out.k = std::max<index_t>(8, row.k / shrink);
  // Preserve K·S = N³·SR with the shrunk N and K.
  const double total = static_cast<double>(out.n) * static_cast<double>(out.n) *
                       static_cast<double>(out.n) * row.sr;
  out.s = std::max<index_t>(1, static_cast<index_t>(std::llround(total / static_cast<double>(out.k))));
  return out;
}

TrajectoryParams params_for(const Table1Row& row, double alpha, std::uint64_t seed) {
  TrajectoryParams p;
  p.n = row.n;
  p.k = row.k;
  p.s = row.s;
  p.alpha = alpha;
  p.sampling_rate = row.sr;
  p.seed = seed;
  return p;
}

}  // namespace nufft::datasets
