// Spectral sampling trajectory generators (paper §II-C, Fig. 1, Table I).
//
// A SampleSet holds K·S non-uniform spectral coordinates in oversampled-grid
// units, w ∈ [0, M) per dimension, organized as S interleaves of K samples
// (an MRI readout, a tomographic projection, one spiral arm, ...). The
// physical spectral origin (DC) sits at M/2 in every dimension, so the dense
// regions of radial/spiral/random trajectories land mid-grid, matching the
// partitioning figures of the paper.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace nufft::datasets {

enum class TrajectoryType {
  kRadial,  // equiangular straight-line projections through the origin
  kRandom,  // variable-density Gaussian around the origin (compressive sensing)
  kSpiral,  // stack-of-spirals: uniform in z, Archimedean spiral in-plane
};

const char* trajectory_name(TrajectoryType t);

struct SampleSet {
  int dim = 3;
  index_t m = 0;       // oversampled grid size per dimension (isotropic)
  index_t k = 0;       // samples per interleave
  index_t s = 0;       // interleaves
  TrajectoryType type = TrajectoryType::kRadial;
  std::array<fvec, 3> coords;  // coords[d][i] ∈ [0, m)

  index_t count() const { return k * s; }
};

struct TrajectoryParams {
  index_t n = 0;       // image size per dimension (N)
  index_t k = 0;       // samples per interleave (K)
  index_t s = 0;       // interleaves (S)
  double alpha = 2.0;  // oversampling ratio, M = alpha·N
  double sampling_rate = 0.0;  // SR, informational: K·S ≈ N^dim·SR
  std::uint64_t seed = 1234;   // randomized trajectories only
};

/// Generate a trajectory of the requested type and dimensionality (1–3).
SampleSet make_trajectory(TrajectoryType type, int dim, const TrajectoryParams& params);

/// Validate a sample set as NUFFT input: dimensionality 1–3, a positive
/// grid size, non-negative sample counts, coordinate arrays sized to
/// count(), and every coordinate finite and inside [0, m). A zero-sample
/// set is valid — it plans and transforms as the empty operator (forward
/// writes nothing, adjoint yields a zero image). Throws nufft::Error with
/// ErrorCode::kInvalidInput naming the first offending sample. Plan
/// construction (core/nufft.hpp) calls this on every build, so NaN/Inf or
/// out-of-range coordinates can never reach the convolution kernels.
void validate_samples(const SampleSet& set);

/// Stable 64-bit content hash of a sample set: geometry (dim, m, k, s, type)
/// plus every coordinate byte, in order. Two sets hash equal iff their
/// transforms are interchangeable as PlanRegistry keys. Order-sensitive
/// (a reordered trajectory preprocesses differently) and length-framed
/// (a truncated coordinate array cannot collide with its prefix).
std::uint64_t content_hash(const SampleSet& set);

}  // namespace nufft::datasets
