#include "datasets/trajectory.hpp"

#include <cmath>
#include <cstring>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace nufft::datasets {

namespace {

// Keep coordinates strictly inside [0, M) — generators already target the
// open interval, this only guards against float rounding at the edges.
inline float clamp_coord(double w, double m) {
  if (w < 0.0) w += m;
  if (w >= m) w -= m;
  if (w < 0.0) w = 0.0;
  const auto f = static_cast<float>(w);
  return f >= static_cast<float>(m) ? std::nextafter(static_cast<float>(m), 0.0f) : f;
}

// Radial spokes cover |w - center| <= rho·M/2 along equidistributed
// directions; rho keeps the outermost sample off the periodic seam.
constexpr double kRadiusFraction = 0.995;

void gen_radial(SampleSet& set) {
  const double m = static_cast<double>(set.m);
  const double center = 0.5 * m;
  const double rmax = kRadiusFraction * 0.5 * m;
  const double golden = kPi * (3.0 - std::sqrt(5.0));
  for (index_t spoke = 0; spoke < set.s; ++spoke) {
    // Direction of this projection.
    double ux = 1.0, uy = 0.0, uz = 0.0;
    if (set.dim == 2) {
      // Equiangular over the half-circle (spokes are symmetric through DC).
      const double th = kPi * static_cast<double>(spoke) / static_cast<double>(set.s);
      ux = std::cos(th);
      uy = std::sin(th);
    } else if (set.dim == 3) {
      // Fibonacci-spiral equidistribution over the upper hemisphere (VIPR-
      // style kooshball; antipodal half comes from the signed radius).
      const double z = 1.0 - (static_cast<double>(spoke) + 0.5) / static_cast<double>(set.s);
      const double r = std::sqrt(std::max(0.0, 1.0 - z * z));
      const double phi = golden * static_cast<double>(spoke);
      ux = r * std::cos(phi);
      uy = r * std::sin(phi);
      uz = z;
    }
    for (index_t i = 0; i < set.k; ++i) {
      // t spans (-1, 1): K samples across the full diameter.
      const double t =
          (2.0 * (static_cast<double>(i) + 0.5) - static_cast<double>(set.k)) /
          static_cast<double>(set.k);
      const double rad = t * rmax;
      const index_t idx = spoke * set.k + i;
      set.coords[0][static_cast<std::size_t>(idx)] = clamp_coord(center + rad * ux, m);
      if (set.dim >= 2) set.coords[1][static_cast<std::size_t>(idx)] = clamp_coord(center + rad * uy, m);
      if (set.dim >= 3) set.coords[2][static_cast<std::size_t>(idx)] = clamp_coord(center + rad * uz, m);
    }
  }
}

void gen_random(SampleSet& set, const TrajectoryParams& p) {
  const double m = static_cast<double>(set.m);
  const double center = 0.5 * m;
  // Variable-density Gaussian concentrated at the spectral origin; σ = M/6
  // keeps ~99.7% of draws inside the grid, the tail is redrawn.
  const double sigma = m / 6.0;
  Rng rng(p.seed);
  const index_t total = set.count();
  for (index_t i = 0; i < total; ++i) {
    for (int d = 0; d < set.dim; ++d) {
      double w;
      do {
        w = rng.normal(center, sigma);
      } while (w < 0.0 || w >= m);
      set.coords[static_cast<std::size_t>(d)][static_cast<std::size_t>(i)] = clamp_coord(w, m);
    }
  }
}

void gen_spiral(SampleSet& set, const TrajectoryParams& p) {
  const double m = static_cast<double>(set.m);
  const double center = 0.5 * m;
  const double rmax = kRadiusFraction * 0.5 * m;
  if (set.dim == 1) {
    // A "spiral" degenerates to uniformly spaced off-grid samples in 1D.
    const index_t total = set.count();
    for (index_t i = 0; i < total; ++i) {
      const double w = (static_cast<double>(i) + 0.37) * m / static_cast<double>(total);
      set.coords[0][static_cast<std::size_t>(i)] = clamp_coord(w, m);
    }
    return;
  }
  // One long Archimedean spiral per transverse plane (paper §II-C); planes
  // are uniform along z but deliberately off the Cartesian grid. In 2D the
  // whole set is a single plane.
  const index_t planes = set.dim == 3 ? std::max<index_t>(1, p.n) : 1;
  const index_t total = set.count();
  const index_t per_plane = (total + planes - 1) / planes;
  // Enough turns to reach every Nyquist ring of the N-image.
  const double turns = static_cast<double>(p.n) / 2.0;
  const double theta_max = kTwoPi * turns;
  for (index_t i = 0; i < total; ++i) {
    const index_t plane = i / per_plane;
    const index_t j = i % per_plane;
    const double frac = static_cast<double>(j) / static_cast<double>(per_plane);
    const double theta = frac * theta_max;
    const double rad = frac * rmax;
    set.coords[0][static_cast<std::size_t>(i)] = clamp_coord(center + rad * std::cos(theta), m);
    set.coords[1][static_cast<std::size_t>(i)] = clamp_coord(center + rad * std::sin(theta), m);
    if (set.dim == 3) {
      const double z = (static_cast<double>(plane) + 0.5) * m / static_cast<double>(planes);
      set.coords[2][static_cast<std::size_t>(i)] = clamp_coord(z, m);
    }
  }
}

}  // namespace

const char* trajectory_name(TrajectoryType t) {
  switch (t) {
    case TrajectoryType::kRadial:
      return "radial";
    case TrajectoryType::kRandom:
      return "random";
    case TrajectoryType::kSpiral:
      return "spiral";
  }
  return "?";
}

SampleSet make_trajectory(TrajectoryType type, int dim, const TrajectoryParams& params) {
  NUFFT_CHECK(dim >= 1 && dim <= 3);
  NUFFT_CHECK(params.n >= 2);
  NUFFT_CHECK(params.k >= 1 && params.s >= 1);
  NUFFT_CHECK(params.alpha >= 1.0);

  SampleSet set;
  set.dim = dim;
  set.m = static_cast<index_t>(std::llround(params.alpha * static_cast<double>(params.n)));
  set.k = params.k;
  set.s = params.s;
  set.type = type;
  for (int d = 0; d < dim; ++d) {
    set.coords[static_cast<std::size_t>(d)].resize(static_cast<std::size_t>(set.count()));
  }

  switch (type) {
    case TrajectoryType::kRadial:
      gen_radial(set);
      break;
    case TrajectoryType::kRandom:
      gen_random(set, params);
      break;
    case TrajectoryType::kSpiral:
      gen_spiral(set, params);
      break;
  }
  return set;
}

void validate_samples(const SampleSet& set) {
  NUFFT_CHECK_CODE(set.dim >= 1 && set.dim <= 3, ErrorCode::kInvalidInput,
                   "sample set dimensionality must be 1–3, got " << set.dim);
  NUFFT_CHECK_CODE(set.m >= 1, ErrorCode::kInvalidInput,
                   "sample set has no grid extent (m = " << set.m << ")");
  // Zero samples is a valid (empty) transform: production batch jobs may
  // legitimately submit an interleave with no readout. Negative counts are
  // caller errors.
  NUFFT_CHECK_CODE(set.k >= 0 && set.s >= 0, ErrorCode::kInvalidInput,
                   "negative sample count (k = " << set.k << ", s = " << set.s << ")");
  const auto count = static_cast<std::size_t>(set.count());
  const auto limit = static_cast<float>(set.m);
  for (int d = 0; d < set.dim; ++d) {
    const fvec& c = set.coords[static_cast<std::size_t>(d)];
    NUFFT_CHECK_CODE(c.size() == count, ErrorCode::kInvalidInput,
                     "coordinate array for dim " << d << " holds " << c.size()
                                                 << " values, expected " << count);
    for (std::size_t i = 0; i < count; ++i) {
      const float w = c[i];
      // A single comparison rejects NaN (compares false), ±Inf and any
      // value outside the half-open grid interval. w == 0 and
      // w == nextafter(m, 0) are both valid boundary coordinates.
      NUFFT_CHECK_CODE(w >= 0.0f && w < limit, ErrorCode::kInvalidInput,
                       "coordinate " << w << " at sample " << i << ", dim " << d
                                     << " is not finite inside [0, " << set.m << ")");
    }
  }
}

namespace {

// FNV-1a over a byte range. Chosen over faster mixers because the hash must
// be byte-stable across platforms and compiler versions — it keys on-disk
// plan spills, not just in-memory lookups.
inline std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t bytes) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < bytes; ++i) {
    h ^= static_cast<std::uint64_t>(p[i]);
    h *= 0x100000001b3ULL;
  }
  return h;
}

template <class T>
inline std::uint64_t fnv1a_value(std::uint64_t h, T v) {
  return fnv1a(h, &v, sizeof(v));
}

}  // namespace

std::uint64_t content_hash(const SampleSet& set) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis
  h = fnv1a_value(h, static_cast<std::int64_t>(set.dim));
  h = fnv1a_value(h, static_cast<std::int64_t>(set.m));
  h = fnv1a_value(h, static_cast<std::int64_t>(set.k));
  h = fnv1a_value(h, static_cast<std::int64_t>(set.s));
  h = fnv1a_value(h, static_cast<std::int64_t>(set.type));
  for (int d = 0; d < set.dim; ++d) {
    const fvec& c = set.coords[static_cast<std::size_t>(d)];
    // Frame each array with its length so truncation shifts every later
    // byte's position in the stream instead of silently colliding.
    h = fnv1a_value(h, static_cast<std::uint64_t>(c.size()));
    h = fnv1a(h, c.data(), c.size() * sizeof(float));
  }
  return h;
}

}  // namespace nufft::datasets
