// Streaming trajectory-update suite (`ctest -L streaming`).
//
// The delta path's contract (core/preprocess.hpp update_preprocessed): after
// an update — whatever path it took — the plan is bit-identical to a cold
// preprocess() of the new samples, at any pool width. These tests pin that
// contract across dimensions, pool widths, jitter fractions (including the
// 0% no-op and the 100% fallback), ±1 ulp partition-boundary crossers, and
// up through the operator layer (Nufft::update_samples and the warm-derive
// constructor must transform bit-identically to a fresh plan).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/rng.hpp"
#include "core/nufft.hpp"
#include "core/plan_cache.hpp"
#include "core/preprocess.hpp"
#include "exec/engine.hpp"
#include "exec/plan_registry.hpp"
#include "obs/metrics.hpp"
#include "obs/obs.hpp"
#include "parallel/thread_pool.hpp"
#include "test_util.hpp"

namespace nufft {
namespace {

using datasets::SampleSet;
using datasets::TrajectoryType;

PlanConfig plan_config() {
  PlanConfig cfg;
  cfg.threads = 8;  // fixed: cfg parameterizes the plan, the pool only runs it
  cfg.kernel_radius = 2.0;
  return cfg;
}

// Perturb ~`fraction` of the samples by up to ±`mag` grid cells per
// dimension, clamped into [0, m). Deterministic in `seed`.
SampleSet jitter(const SampleSet& base, double fraction, float mag, std::uint64_t seed) {
  SampleSet out = base;
  Rng rng(seed);
  const float lim = std::nextafterf(static_cast<float>(base.m), 0.0f);
  for (index_t i = 0; i < base.count(); ++i) {
    if (rng.uniform() >= fraction) continue;
    for (int d = 0; d < base.dim; ++d) {
      auto& c = out.coords[static_cast<std::size_t>(d)][static_cast<std::size_t>(i)];
      float x = c + static_cast<float>(rng.uniform(-mag, mag));
      if (x < 0.0f) x = 0.0f;
      if (x > lim) x = lim;
      c = x;
    }
  }
  return out;
}

// Field-by-field bit equality of two preprocessing results (stats and delta
// bookkeeping excluded — they describe how the result was produced).
void expect_identical(const Preprocessed& a, const Preprocessed& b) {
  ASSERT_EQ(a.layout.dim, b.layout.dim);
  for (int d = 0; d < a.layout.dim; ++d) {
    const auto sd = static_cast<std::size_t>(d);
    EXPECT_EQ(a.layout.num_parts[sd], b.layout.num_parts[sd]);
    ASSERT_EQ(a.layout.bounds[sd], b.layout.bounds[sd]);
  }
  ASSERT_EQ(a.orig_index, b.orig_index);
  ASSERT_EQ(a.tasks.size(), b.tasks.size());
  for (std::size_t k = 0; k < a.tasks.size(); ++k) {
    EXPECT_EQ(a.tasks[k].begin, b.tasks[k].begin);
    EXPECT_EQ(a.tasks[k].end, b.tasks[k].end);
    EXPECT_EQ(a.tasks[k].box_lo, b.tasks[k].box_lo);
    EXPECT_EQ(a.tasks[k].box_hi, b.tasks[k].box_hi);
  }
  ASSERT_EQ(a.weights, b.weights);
  ASSERT_EQ(a.privatized, b.privatized);
  EXPECT_EQ(a.privatization_threshold, b.privatization_threshold);
  for (int d = 0; d < a.layout.dim; ++d) {
    const auto& ca = a.coords[static_cast<std::size_t>(d)];
    const auto& cb = b.coords[static_cast<std::size_t>(d)];
    ASSERT_EQ(ca.size(), cb.size());
    for (std::size_t i = 0; i < ca.size(); ++i) {
      ASSERT_EQ(std::memcmp(&ca[i], &cb[i], sizeof(float)), 0)
          << "coords differ bitwise at dim " << d << " index " << i;
    }
  }
}

// The matrix the acceptance criteria name: dims × pool widths × jitter
// fractions, fixed layouts so the path is deterministic (a fixed layout is
// geometry-only — it can never move, so any sub-threshold delta stays warm).
TEST(Streaming, WarmBitMatchMatrixFixedLayout) {
  for (const int dim : {1, 2, 3}) {
    const index_t n = dim == 3 ? 16 : 32;
    const GridDesc g = make_grid(dim, n, 2.0);
    const auto base = testing::small_trajectory(TrajectoryType::kRadial, dim, n, 8000);
    PlanConfig cfg = plan_config();
    cfg.variable_partitions = false;
    ThreadPool serial(1);
    for (const double frac : {0.0, 0.01, 0.05, 0.20}) {
      const SampleSet next = jitter(base, frac, 0.75f, 42);
      const auto reference = preprocess(g, next, cfg, serial);
      for (const int width : {1, 3, 8}) {
        ThreadPool pool(width);
        auto pp = preprocess(g, base, cfg, pool);
        const UpdatePath path = update_preprocessed(pp, g, next, cfg, pool);
        if (frac == 0.0) {
          EXPECT_EQ(path, UpdatePath::kNoop);
        } else {
          EXPECT_EQ(path, UpdatePath::kWarm)
              << "dim " << dim << " frac " << frac << " width " << width;
          EXPECT_TRUE(pp.stats.warm_update);
        }
        expect_identical(reference, pp);
      }
    }
  }
}

// Variable layouts re-run the boundary walk on patched histograms; whether a
// given delta stays warm or falls back is data-dependent, but the result must
// be bit-identical to the cold build either way — including 100% movement,
// which must take the rebuild fallback.
TEST(Streaming, VariableLayoutAnyPathBitIdentical) {
  for (const int dim : {2, 3}) {
    const index_t n = dim == 3 ? 16 : 32;
    const GridDesc g = make_grid(dim, n, 2.0);
    const auto base = testing::small_trajectory(TrajectoryType::kSpiral, dim, n, 8000);
    const PlanConfig cfg = plan_config();
    ThreadPool serial(1);
    for (const double frac : {0.01, 0.05, 0.20, 1.0}) {
      const SampleSet next = jitter(base, frac, 0.75f, 7);
      const auto reference = preprocess(g, next, cfg, serial);
      for (const int width : {1, 8}) {
        ThreadPool pool(width);
        auto pp = preprocess(g, base, cfg, pool);
        const UpdatePath path = update_preprocessed(pp, g, next, cfg, pool);
        EXPECT_NE(path, UpdatePath::kNoop);
        if (frac == 1.0) EXPECT_EQ(path, UpdatePath::kRebuild);
        expect_identical(reference, pp);
      }
    }
  }
}

// Successive warm updates must not drift: each frame's plan equals the cold
// build of that frame, not just frame 1's.
TEST(Streaming, RepeatedWarmUpdatesDoNotDrift) {
  const GridDesc g = make_grid(2, 32, 2.0);
  const auto base = testing::small_trajectory(TrajectoryType::kRandom, 2, 32, 6000);
  PlanConfig cfg = plan_config();
  cfg.variable_partitions = false;
  ThreadPool pool(4);
  ThreadPool serial(1);
  auto pp = preprocess(g, base, cfg, pool);
  SampleSet frame = base;
  for (int f = 0; f < 5; ++f) {
    frame = jitter(frame, 0.03, 0.5f, 100 + static_cast<std::uint64_t>(f));
    const UpdatePath path = update_preprocessed(pp, g, frame, cfg, pool);
    EXPECT_EQ(path, UpdatePath::kWarm) << "frame " << f;
    expect_identical(preprocess(g, frame, cfg, serial), pp);
  }
}

// A ±1 ulp nudge across a partition boundary must re-bin the sample exactly
// as a cold build would — the delta path replicates locate()'s cast/clamp.
TEST(Streaming, UlpBoundaryCrossers) {
  const GridDesc g = make_grid(1, 32, 2.0);
  auto base = testing::small_trajectory(TrajectoryType::kRandom, 1, 32, 4000);
  PlanConfig cfg = plan_config();
  cfg.variable_partitions = false;
  ThreadPool pool(4);
  ThreadPool serial(1);
  auto pp = preprocess(g, base, cfg, pool);
  // Plant a few samples exactly on the first interior boundary, then nudge
  // them one ulp to either side.
  ASSERT_GT(pp.layout.num_parts[0], 1);
  const float b = static_cast<float>(pp.layout.bounds[0][1]);
  SampleSet next = base;
  next.coords[0][0] = b;
  next.coords[0][1] = std::nextafterf(b, 0.0f);
  next.coords[0][2] = std::nextafterf(b, static_cast<float>(g.m[0]));
  const UpdatePath path = update_preprocessed(pp, g, next, cfg, pool);
  EXPECT_EQ(path, UpdatePath::kWarm);
  expect_identical(preprocess(g, next, cfg, serial), pp);
}

TEST(Streaming, NoopLeavesPlanUntouched) {
  const GridDesc g = make_grid(2, 32, 2.0);
  const auto base = testing::small_trajectory(TrajectoryType::kRadial, 2, 32, 5000);
  const PlanConfig cfg = plan_config();
  ThreadPool pool(4);
  auto pp = preprocess(g, base, cfg, pool);
  const auto snapshot = clone_preprocessed(pp);
  SampleSet same = base;  // distinct buffers, identical bits
  EXPECT_EQ(update_preprocessed(pp, g, same, cfg, pool), UpdatePath::kNoop);
  expect_identical(snapshot, pp);
  EXPECT_FALSE(pp.stats.warm_update);
}

// A restored plan carries no delta bookkeeping; the first update rebuilds it
// lazily from the plan itself and must still match the cold build.
TEST(Streaming, RestoredPlanWarmUpdates) {
  const GridDesc g = make_grid(2, 32, 2.0);
  const auto base = testing::small_trajectory(TrajectoryType::kSpiral, 2, 32, 5000);
  PlanConfig cfg = plan_config();
  cfg.variable_partitions = false;
  ThreadPool pool(4);
  ThreadPool serial(1);
  const auto pp0 = preprocess(g, base, cfg, pool);
  const auto blob = serialize_plan(pp0, g, cfg);
  auto pp = deserialize_plan(blob.data(), blob.size(), g, base, cfg);
  ASSERT_EQ(pp.delta, nullptr);
  const SampleSet next = jitter(base, 0.05, 0.75f, 9);
  EXPECT_EQ(update_preprocessed(pp, g, next, cfg, pool), UpdatePath::kWarm);
  expect_identical(preprocess(g, next, cfg, serial), pp);
}

TEST(Streaming, SampleCountChangeFallsBack) {
  const GridDesc g = make_grid(2, 32, 2.0);
  const auto base = testing::small_trajectory(TrajectoryType::kRandom, 2, 32, 5000);
  const PlanConfig cfg = plan_config();
  ThreadPool pool(4);
  ThreadPool serial(1);
  auto pp = preprocess(g, base, cfg, pool);
  const auto next = testing::small_trajectory(TrajectoryType::kRandom, 2, 32, 3000, 7);
  EXPECT_EQ(update_preprocessed(pp, g, next, cfg, pool), UpdatePath::kRebuild);
  expect_identical(preprocess(g, next, cfg, serial), pp);
}

TEST(Streaming, WarmUpdateStatsAndCounters) {
  obs::set_metrics_enabled(true);
  obs::MetricsRegistry::instance().reset();
  const GridDesc g = make_grid(2, 32, 2.0);
  const auto base = testing::small_trajectory(TrajectoryType::kRadial, 2, 32, 6000);
  PlanConfig cfg = plan_config();
  cfg.variable_partitions = false;
  ThreadPool pool(4);
  auto pp = preprocess(g, base, cfg, pool);
  const SampleSet next = jitter(base, 0.05, 1.5f, 11);
  ASSERT_EQ(update_preprocessed(pp, g, next, cfg, pool), UpdatePath::kWarm);
  EXPECT_TRUE(pp.stats.warm_update);
  EXPECT_GT(pp.stats.update_s, 0.0);
  EXPECT_GT(pp.stats.rebinned_samples, 0);
  EXPECT_GT(pp.stats.dirty_tasks, 0);
  EXPECT_EQ(pp.stats.total_s, 0.0);  // cold timings never conflated
  auto& reg = obs::MetricsRegistry::instance();
  EXPECT_EQ(reg.counter("nufft.plan.updates").value(), 1u);
  EXPECT_EQ(reg.counter("nufft.plan.update_fallbacks").value(), 0u);
  SampleSet same = next;
  ASSERT_EQ(update_preprocessed(pp, g, same, cfg, pool), UpdatePath::kNoop);
  EXPECT_EQ(reg.counter("nufft.plan.update_noops").value(), 1u);
  obs::set_metrics_enabled(false);
}

// --- operator layer -------------------------------------------------------

TEST(Streaming, NufftUpdateSamplesMatchesFreshPlan) {
  const GridDesc g = make_grid(2, 32, 2.0);
  const auto base = testing::small_trajectory(TrajectoryType::kRadial, 2, 32, 4000);
  PlanConfig cfg = plan_config();
  cfg.threads = 4;
  cfg.variable_partitions = false;
  const SampleSet next = jitter(base, 0.05, 0.75f, 13);

  Nufft plan(g, base, cfg);
  EXPECT_EQ(plan.update_samples(next), UpdatePath::kWarm);
  EXPECT_EQ(plan.plan_stats().generation, 1u);
  EXPECT_TRUE(plan.plan_stats().warm_updated);

  Nufft fresh(g, next, cfg);
  const auto image = testing::random_image(g.image_elems(), 5);
  cvecf raw_a(static_cast<std::size_t>(next.count()));
  cvecf raw_b(static_cast<std::size_t>(next.count()));
  plan.forward(image.data(), raw_a.data());
  fresh.forward(image.data(), raw_b.data());
  EXPECT_EQ(testing::max_abs_diff(raw_a.data(), raw_b.data(), next.count()), 0.0);

  const auto raw_in = testing::random_raw(next.count(), 6);
  cvecf img_a(static_cast<std::size_t>(g.image_elems()));
  cvecf img_b(static_cast<std::size_t>(g.image_elems()));
  plan.adjoint(raw_in.data(), img_a.data());
  fresh.adjoint(raw_in.data(), img_b.data());
  EXPECT_EQ(testing::max_abs_diff(img_a.data(), img_b.data(), g.image_elems()), 0.0);
}

// The no-op short-circuit: bitwise-identical coordinates leave the plan —
// generation included — untouched.
TEST(Streaming, NufftNoopKeepsGeneration) {
  const GridDesc g = make_grid(2, 32, 2.0);
  const auto base = testing::small_trajectory(TrajectoryType::kRandom, 2, 32, 3000);
  PlanConfig cfg = plan_config();
  cfg.threads = 2;
  Nufft plan(g, base, cfg);
  SampleSet same = base;
  EXPECT_EQ(plan.update_samples(same), UpdatePath::kNoop);
  EXPECT_EQ(plan.plan_stats().generation, 0u);
  EXPECT_FALSE(plan.plan_stats().warm_updated);
}

TEST(Streaming, WarmDeriveCtorMatchesFreshAndPreservesSource) {
  const GridDesc g = make_grid(2, 32, 2.0);
  const auto base = testing::small_trajectory(TrajectoryType::kSpiral, 2, 32, 4000);
  PlanConfig cfg = plan_config();
  cfg.threads = 4;
  cfg.variable_partitions = false;
  const SampleSet next = jitter(base, 0.05, 0.75f, 17);

  Nufft src(g, base, cfg);
  const auto image = testing::random_image(g.image_elems(), 8);
  cvecf src_before(static_cast<std::size_t>(base.count()));
  src.forward(image.data(), src_before.data());

  Nufft derived(src, next);
  EXPECT_EQ(derived.plan_stats().generation, 1u);
  EXPECT_TRUE(derived.plan_stats().warm_updated);

  Nufft fresh(g, next, cfg);
  cvecf raw_a(static_cast<std::size_t>(next.count()));
  cvecf raw_b(static_cast<std::size_t>(next.count()));
  derived.forward(image.data(), raw_a.data());
  fresh.forward(image.data(), raw_b.data());
  EXPECT_EQ(testing::max_abs_diff(raw_a.data(), raw_b.data(), next.count()), 0.0);

  // The source plan is untouched by the derivation.
  cvecf src_after(static_cast<std::size_t>(base.count()));
  src.forward(image.data(), src_after.data());
  EXPECT_EQ(testing::max_abs_diff(src_before.data(), src_after.data(), base.count()), 0.0);
}

// --- registry layer -------------------------------------------------------

TEST(Streaming, RegistryUpdatePlanWarmNoopFallback) {
  const GridDesc g = make_grid(2, 32, 2.0);
  const auto base = testing::small_trajectory(TrajectoryType::kRadial, 2, 32, 4000);
  PlanConfig cfg = plan_config();
  cfg.threads = 2;
  cfg.variable_partitions = false;
  exec::PlanRegistry registry;

  const auto plan0 = registry.acquire(g, base, cfg);
  const std::string key0 = exec::PlanRegistry::make_key(g, base, cfg);

  // No-op: identical content, same plan object, no generation bump.
  SampleSet same = base;
  const auto noop = registry.update_plan(g, key0, same, cfg);
  EXPECT_TRUE(noop.noop);
  EXPECT_EQ(noop.plan.get(), plan0.get());
  EXPECT_EQ(noop.plan->plan_stats().generation, 0u);
  EXPECT_EQ(registry.resident_count(), 1u);

  // Warm: small jitter derives a NEW plan from the resident one.
  const SampleSet next = jitter(base, 0.05, 0.75f, 21);
  const auto warm = registry.update_plan(g, key0, next, cfg);
  EXPECT_FALSE(warm.noop);
  EXPECT_TRUE(warm.warm);
  EXPECT_FALSE(warm.fallback);
  EXPECT_NE(warm.plan.get(), plan0.get());
  EXPECT_EQ(warm.plan->plan_stats().generation, 1u);
  EXPECT_TRUE(warm.plan->plan_stats().warm_updated);
  EXPECT_EQ(warm.key, exec::PlanRegistry::make_key(g, next, cfg));
  EXPECT_EQ(registry.resident_count(), 2u);  // old entry stays until LRU
  // The source plan is untouched.
  EXPECT_EQ(plan0->plan_stats().generation, 0u);

  // Fallback: old key not resident → cold build, still registered.
  const SampleSet far = jitter(base, 0.9, 6.0f, 23);
  const auto fb = registry.update_plan(g, "no-such-key", far, cfg);
  EXPECT_FALSE(fb.noop);
  EXPECT_FALSE(fb.warm);
  EXPECT_TRUE(fb.fallback);
  EXPECT_EQ(fb.plan->plan_stats().generation, 0u);

  const auto stats = registry.stats();
  EXPECT_EQ(stats.plan_update_noops, 1u);
  EXPECT_EQ(stats.plan_updates, 2u);
  EXPECT_EQ(stats.plan_update_fallbacks, 1u);
}

TEST(Streaming, RegistryUpdatedPlanIsContentKeyed) {
  // The updated plan must be retrievable by the new content alone — a later
  // acquire of the new trajectory hits the derived entry instead of building.
  const GridDesc g = make_grid(2, 32, 2.0);
  const auto base = testing::small_trajectory(TrajectoryType::kSpiral, 2, 32, 3000);
  PlanConfig cfg = plan_config();
  cfg.threads = 2;
  cfg.variable_partitions = false;
  exec::PlanRegistry registry;
  registry.acquire(g, base, cfg);
  const SampleSet next = jitter(base, 0.05, 0.75f, 29);
  const auto upd = registry.update_plan(g, exec::PlanRegistry::make_key(g, base, cfg), next, cfg);
  const auto hit = registry.acquire(g, next, cfg);
  EXPECT_EQ(hit.get(), upd.plan.get());
  EXPECT_GE(registry.stats().hits, 1u);
}

TEST(Streaming, RegistryUpdateTrueUpOnTenantQuota) {
  // A warm update of a different-sized... size is equal here, but the quota
  // accounting must still charge the tenant for the new entry and keep the
  // old one charged while resident.
  const GridDesc g = make_grid(2, 32, 2.0);
  const auto base = testing::small_trajectory(TrajectoryType::kRandom, 2, 32, 3000);
  PlanConfig cfg = plan_config();
  cfg.threads = 2;
  cfg.variable_partitions = false;
  exec::RegistryConfig rc;
  rc.tenant_max_plans = 8;
  exec::PlanRegistry registry(rc);
  registry.acquire(g, base, cfg, "t0");
  EXPECT_EQ(registry.tenant_plans("t0"), 1u);
  const SampleSet next = jitter(base, 0.05, 0.75f, 31);
  const auto upd =
      registry.update_plan(g, exec::PlanRegistry::make_key(g, base, cfg), next, cfg, "t0");
  EXPECT_TRUE(upd.warm);
  EXPECT_EQ(registry.tenant_plans("t0"), 2u);
  EXPECT_GT(registry.tenant_bytes("t0"), 0u);
}

// --- engine layer ---------------------------------------------------------

TEST(Streaming, EngineSubmitUpdateResolvesResult) {
  const GridDesc g = make_grid(2, 32, 2.0);
  const auto base = testing::small_trajectory(TrajectoryType::kRadial, 2, 32, 3000);
  PlanConfig cfg = plan_config();
  cfg.threads = 1;
  cfg.variable_partitions = false;
  exec::PlanRegistry registry;
  const auto plan0 = registry.acquire(g, base, cfg);

  exec::NufftEngine engine;
  const auto next = std::make_shared<datasets::SampleSet>(jitter(base, 0.05, 0.75f, 37));
  auto result = std::make_shared<exec::PlanUpdateResult>();
  auto fut = engine.submit_update(registry, g, exec::PlanRegistry::make_key(g, base, cfg), next,
                                  cfg, result);
  fut.get();  // no transform ran; an exception here is a failure
  ASSERT_NE(result->plan, nullptr);
  EXPECT_TRUE(result->warm);
  EXPECT_EQ(result->plan->plan_stats().generation, 1u);
  EXPECT_EQ(result->key, exec::PlanRegistry::make_key(g, *next, cfg));

  // The updated plan serves transforms through the engine like any other.
  const auto image = testing::random_image(g.image_elems(), 3);
  cvecf raw_a(static_cast<std::size_t>(next->count()));
  cvecf raw_b(static_cast<std::size_t>(next->count()));
  engine.submit(exec::Op::kForward, result->plan, image.data(), raw_a.data()).get();
  Nufft fresh(g, *next, cfg);
  fresh.forward(image.data(), raw_b.data());
  EXPECT_EQ(testing::max_abs_diff(raw_a.data(), raw_b.data(), next->count()), 0.0);
  engine.shutdown();
}

}  // namespace
}  // namespace nufft
