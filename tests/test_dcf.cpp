// Tests for density compensation (Pipe–Menon iteration and radial ramp).
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "core/nufft.hpp"
#include "mri/dcf.hpp"
#include "mri/phantom.hpp"
#include "test_util.hpp"

namespace nufft::mri {
namespace {

using datasets::TrajectoryType;

TEST(PipeMenon, WeightsArePositiveAndUnitMean) {
  const GridDesc g = make_grid(2, 32, 2.0);
  const auto set = testing::small_trajectory(TrajectoryType::kRadial, 2, 32, 3000);
  PlanConfig cfg;
  Nufft plan(g, set, cfg);
  const fvec w = pipe_menon_dcf(plan);
  ASSERT_EQ(static_cast<index_t>(w.size()), set.count());
  double mean = 0.0;
  for (const float v : w) {
    ASSERT_GT(v, 0.0f);
    mean += v;
  }
  mean /= static_cast<double>(set.count());
  EXPECT_NEAR(mean, 1.0, 1e-4);
}

TEST(PipeMenon, FixedPointEquidistributesDensity) {
  // At the fixed point, C Cᴴ w ≈ const: spreading the weights and
  // interpolating back must be nearly flat across samples.
  const GridDesc g = make_grid(2, 32, 2.0);
  const auto set = testing::small_trajectory(TrajectoryType::kRadial, 2, 32, 4000);
  PlanConfig cfg;
  Nufft plan(g, set, cfg);
  DcfOptions opt;
  opt.iterations = 25;
  const fvec w = pipe_menon_dcf(plan, opt);

  cvecf cw(static_cast<std::size_t>(set.count()));
  for (index_t i = 0; i < set.count(); ++i) cw[static_cast<std::size_t>(i)] = cfloat(w[static_cast<std::size_t>(i)], 0.0f);
  plan.spread(cw.data());
  cvecf back(static_cast<std::size_t>(set.count()));
  plan.interp(back.data());
  // Coefficient of variation of the re-interpolated density.
  double mean = 0.0;
  for (index_t i = 0; i < set.count(); ++i) mean += back[static_cast<std::size_t>(i)].real();
  mean /= static_cast<double>(set.count());
  double var = 0.0;
  for (index_t i = 0; i < set.count(); ++i) {
    const double d = back[static_cast<std::size_t>(i)].real() - mean;
    var += d * d;
  }
  var /= static_cast<double>(set.count());
  EXPECT_LT(std::sqrt(var) / mean, 0.25);
}

TEST(PipeMenon, RadialWeightsGrowWithRadius) {
  const GridDesc g = make_grid(2, 32, 2.0);
  const auto set = testing::small_trajectory(TrajectoryType::kRadial, 2, 32, 4000);
  PlanConfig cfg;
  Nufft plan(g, set, cfg);
  const fvec w = pipe_menon_dcf(plan);
  // Average weight in the inner radius quartile must be far below the outer.
  const double c = 0.5 * static_cast<double>(g.m[0]);
  double inner = 0.0, outer = 0.0;
  index_t n_in = 0, n_out = 0;
  for (index_t i = 0; i < set.count(); ++i) {
    const double dx = set.coords[0][static_cast<std::size_t>(i)] - c;
    const double dy = set.coords[1][static_cast<std::size_t>(i)] - c;
    const double r = std::sqrt(dx * dx + dy * dy);
    if (r < 0.2 * c) {
      inner += w[static_cast<std::size_t>(i)];
      ++n_in;
    } else if (r > 0.7 * c) {
      outer += w[static_cast<std::size_t>(i)];
      ++n_out;
    }
  }
  ASSERT_GT(n_in, 0);
  ASSERT_GT(n_out, 0);
  EXPECT_LT(inner / n_in, 0.5 * outer / n_out);
}

TEST(PipeMenon, ImprovesGriddingReconstruction) {
  const GridDesc g = make_grid(2, 32, 2.0);
  datasets::TrajectoryParams tp;
  tp.n = 32;
  tp.k = 64;
  tp.s = 52;
  const auto set = datasets::make_trajectory(TrajectoryType::kRadial, 2, tp);
  PlanConfig cfg;
  Nufft plan(g, set, cfg);
  const cvecf truth = make_phantom(g);
  cvecf raw(static_cast<std::size_t>(set.count()));
  plan.forward(truth.data(), raw.data());

  auto gridding_nrmse = [&](const fvec* w) {
    cvecf weighted = raw;
    if (w != nullptr) {
      for (index_t i = 0; i < set.count(); ++i) {
        weighted[static_cast<std::size_t>(i)] *= (*w)[static_cast<std::size_t>(i)];
      }
    }
    cvecf recon(static_cast<std::size_t>(g.image_elems()));
    plan.adjoint(weighted.data(), recon.data());
    // Least-squares intensity match before computing the error.
    double num = 0.0, den = 0.0;
    for (index_t i = 0; i < g.image_elems(); ++i) {
      num += recon[static_cast<std::size_t>(i)].real() * truth[static_cast<std::size_t>(i)].real();
      den += std::norm(recon[static_cast<std::size_t>(i)]);
    }
    const auto s = static_cast<float>(num / den);
    for (auto& v : recon) v *= s;
    return nrmse(recon.data(), truth.data(), g.image_elems());
  };

  const double uncomp = gridding_nrmse(nullptr);
  const fvec w = pipe_menon_dcf(plan);
  const double comp = gridding_nrmse(&w);
  EXPECT_LT(comp, 0.5 * uncomp) << "uncompensated=" << uncomp << " compensated=" << comp;
}

TEST(RampDcf, MatchesPipeMenonOnRadial) {
  const GridDesc g = make_grid(2, 32, 2.0);
  const auto set = testing::small_trajectory(TrajectoryType::kRadial, 2, 32, 4000);
  PlanConfig cfg;
  Nufft plan(g, set, cfg);
  const fvec ramp = radial_ramp_dcf(g, set);
  DcfOptions opt;
  opt.iterations = 30;
  const fvec pm = pipe_menon_dcf(plan, opt);
  // Correlate the two weight profiles (both unit mean): they must agree in
  // shape away from DC and the spoke ends.
  double dot = 0.0, nr = 0.0, np = 0.0;
  for (index_t i = 0; i < set.count(); ++i) {
    dot += ramp[static_cast<std::size_t>(i)] * pm[static_cast<std::size_t>(i)];
    nr += ramp[static_cast<std::size_t>(i)] * ramp[static_cast<std::size_t>(i)];
    np += pm[static_cast<std::size_t>(i)] * pm[static_cast<std::size_t>(i)];
  }
  EXPECT_GT(dot / std::sqrt(nr * np), 0.9);
}

TEST(RampDcf, RejectsNonRadialTrajectories) {
  const GridDesc g = make_grid(2, 32, 2.0);
  const auto set = testing::small_trajectory(TrajectoryType::kRandom, 2, 32, 500);
  EXPECT_THROW(radial_ramp_dcf(g, set), Error);
}

}  // namespace
}  // namespace nufft::mri
