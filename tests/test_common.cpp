// Unit tests: aligned allocation, PRNG, env helpers, timers.
#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <thread>

#include "common/aligned.hpp"
#include "common/env.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "common/types.hpp"

namespace nufft {
namespace {

TEST(Aligned, MallocReturnsAlignedPointer) {
  for (std::size_t bytes : {1u, 7u, 64u, 1000u, 4096u}) {
    void* p = aligned_malloc(bytes);
    EXPECT_TRUE(is_aligned(p, kCacheLineBytes));
    aligned_free(p);
  }
}

TEST(Aligned, ZeroByteRequestStillValid) {
  void* p = aligned_malloc(0);
  EXPECT_NE(p, nullptr);
  aligned_free(p);
}

TEST(Aligned, VectorDataIsAligned) {
  aligned_vector<float> v(1000);
  EXPECT_TRUE(is_aligned(v.data()));
  aligned_vector<cfloat> c(1000);
  EXPECT_TRUE(is_aligned(c.data()));
}

TEST(Aligned, VectorGrowsCorrectly) {
  aligned_vector<int> v;
  for (int i = 0; i < 10000; ++i) v.push_back(i);
  for (int i = 0; i < 10000; ++i) ASSERT_EQ(v[static_cast<std::size_t>(i)], i);
}

TEST(Aligned, AllocatorEquality) {
  AlignedAllocator<float> a;
  AlignedAllocator<double> b;
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a != b);
}

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInRange) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, UniformBoundsRespected) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Rng, UniformMeanApproximatelyHalf) {
  Rng r(11);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += r.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng r(13);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = r.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(Rng, BelowIsBoundedAndCoversValues) {
  Rng r(17);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.below(10);
    ASSERT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, BelowZeroReturnsZero) {
  Rng r(1);
  EXPECT_EQ(r.below(0), 0u);
}

TEST(Env, IntFallbackWhenUnset) {
  unsetenv("NUFFT_TEST_UNSET_VAR");
  EXPECT_EQ(env_int("NUFFT_TEST_UNSET_VAR", 33), 33);
}

TEST(Env, IntParsesValue) {
  setenv("NUFFT_TEST_VAR", "123", 1);
  EXPECT_EQ(env_int("NUFFT_TEST_VAR", 0), 123);
  unsetenv("NUFFT_TEST_VAR");
}

TEST(Env, IntFallbackOnGarbage) {
  setenv("NUFFT_TEST_VAR", "abc", 1);
  EXPECT_EQ(env_int("NUFFT_TEST_VAR", 5), 5);
  unsetenv("NUFFT_TEST_VAR");
}

TEST(Env, FlagSemantics) {
  unsetenv("NUFFT_TEST_FLAG");
  EXPECT_FALSE(env_flag("NUFFT_TEST_FLAG"));
  setenv("NUFFT_TEST_FLAG", "0", 1);
  EXPECT_FALSE(env_flag("NUFFT_TEST_FLAG"));
  setenv("NUFFT_TEST_FLAG", "1", 1);
  EXPECT_TRUE(env_flag("NUFFT_TEST_FLAG"));
  unsetenv("NUFFT_TEST_FLAG");
}

TEST(Timer, MeasuresElapsedTime) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double s = t.seconds();
  EXPECT_GE(s, 0.015);
  EXPECT_LT(s, 5.0);
}

TEST(Timer, ResetRestartsClock) {
  Timer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  t.reset();
  EXPECT_LT(t.seconds(), 0.01);
}

TEST(Timer, NowNsMonotonic) {
  const auto a = now_ns();
  const auto b = now_ns();
  EXPECT_LE(a, b);
}

TEST(Error, CheckThrowsWithContext) {
  try {
    NUFFT_CHECK_MSG(1 == 2, "custom context " << 42);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("custom context 42"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
  }
}

TEST(Error, CheckPassesSilently) { EXPECT_NO_THROW(NUFFT_CHECK(1 + 1 == 2)); }

// Every ErrorCode value must carry a name and a retry classification. A new
// enum value added without extending the switches in error.hpp hits the "?"
// fallback here (the retry_class switch is additionally covered by -Wswitch
// at compile time). kErrorCodeCount must track the last enumerator.
TEST(ErrorTaxonomy, EveryCodeIsClassified) {
  std::set<std::string> names;
  for (int i = 0; i < kErrorCodeCount; ++i) {
    const auto code = static_cast<ErrorCode>(i);
    const std::string name = error_code_name(code);
    EXPECT_NE(name, "?") << "ErrorCode " << i << " has no name — extend error.hpp";
    EXPECT_TRUE(names.insert(name).second) << "duplicate name for ErrorCode " << i;
    const RetryClass rc = retry_class(code);
    EXPECT_TRUE(rc == RetryClass::kTerminal || rc == RetryClass::kTransient ||
                rc == RetryClass::kAfterReconnect)
        << "ErrorCode " << i << " has no retry classification";
    // is_retryable() is defined as the transient class; keep them in lock-step.
    EXPECT_EQ(is_retryable(code), rc == RetryClass::kTransient) << name;
  }
}

// Pin the externally observable classification: serving clients and the
// engine retry loop both depend on these exact values.
TEST(ErrorTaxonomy, RetryabilityContract) {
  EXPECT_TRUE(is_retryable(ErrorCode::kResourceExhausted));
  EXPECT_TRUE(is_retryable(ErrorCode::kIoCorruption));
  EXPECT_TRUE(is_retryable(ErrorCode::kOverloaded));
  EXPECT_FALSE(is_retryable(ErrorCode::kInternal));
  EXPECT_FALSE(is_retryable(ErrorCode::kInvalidInput));
  EXPECT_FALSE(is_retryable(ErrorCode::kBuildFailure));
  EXPECT_FALSE(is_retryable(ErrorCode::kCancelled));
  EXPECT_FALSE(is_retryable(ErrorCode::kTimeout));
  EXPECT_FALSE(is_retryable(ErrorCode::kUnavailable));
  EXPECT_EQ(retry_class(ErrorCode::kCancelled), RetryClass::kAfterReconnect);
  EXPECT_EQ(retry_class(ErrorCode::kUnavailable), RetryClass::kAfterReconnect);
}

TEST(Types, ZeroComplexClearsBuffer) {
  cvecf v(100, cfloat(1.0f, -2.0f));
  zero_complex(v.data(), v.size());
  for (const auto& x : v) {
    EXPECT_EQ(x.real(), 0.0f);
    EXPECT_EQ(x.imag(), 0.0f);
  }
}

}  // namespace
}  // namespace nufft
