// Seed-reproducible fuzz of the serving wire protocol (`ctest -L fuzz`).
//
// Two properties, both derived deterministically from a base seed:
//   1. Hostility: arbitrary byte streams, bit-flipped valid frames, and
//      truncations fed to the incremental frame decoder and the body
//      decoders must either parse, ask for more bytes, or throw
//      nufft::Error (kIoCorruption / kInvalidInput) — never crash,
//      over-read (ASan-visible), or throw anything else.
//   2. Round trip: randomly generated messages survive encode → frame →
//      decode bit-exactly.
//
// Reproduce a failing iteration with:
//   NUFFT_FUZZ_SEED=<seed> ./nufft_fuzz_tests --gtest_filter='ProtocolFuzz.*'
//
// Environment knobs:
//   NUFFT_FUZZ_SEED=s    base seed (default kBaseSeed, shared with the
//                        differential sweep)
//   NUFFT_FUZZ_PROTO=n   iterations per property (default 300)
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/env.hpp"
#include "common/rng.hpp"
#include "serve/protocol.hpp"

namespace nufft::serve {
namespace {

constexpr std::uint64_t kBaseSeed = 20120521;

std::int64_t iterations() { return env_int("NUFFT_FUZZ_PROTO", 300); }

std::uint64_t base_seed() {
  return static_cast<std::uint64_t>(
      env_int("NUFFT_FUZZ_SEED", static_cast<std::int64_t>(kBaseSeed)));
}

// Feed a byte stream to every decoder entry point; the only acceptable
// outcomes are success, "need more bytes", or a typed nufft::Error.
void expect_graceful(const Bytes& stream, std::uint64_t seed) {
  Frame f;
  std::size_t off = 0;
  try {
    while (off < stream.size()) {
      const std::size_t n = try_decode_frame(stream.data() + off, stream.size() - off, f);
      if (n == 0) break;
      off += n;
      // A structurally valid frame may still carry a hostile body.
      switch (f.type) {
        case MsgType::kHello: decode_hello(f.body); break;
        case MsgType::kHelloAck: decode_hello_ack(f.body); break;
        case MsgType::kRegisterPlan: decode_register_plan(f.body); break;
        case MsgType::kRegisterAck: decode_register_ack(f.body); break;
        case MsgType::kSubmit: decode_submit(f.body); break;
        case MsgType::kResult: decode_result(f.body); break;
        case MsgType::kError: decode_error(f.body); break;
        case MsgType::kStats: break;
        case MsgType::kStatsAck: decode_stats_ack(f.body); break;
        case MsgType::kPing: break;
        case MsgType::kPong: break;
        case MsgType::kHealth: break;
        case MsgType::kHealthAck: decode_health_ack(f.body); break;
        case MsgType::kDrain: decode_drain(f.body); break;
        case MsgType::kDrainAck: decode_drain_ack(f.body); break;
        case MsgType::kUpdateSamples: decode_update_samples(f.body); break;
        case MsgType::kUpdateAck: decode_update_ack(f.body); break;
      }
    }
  } catch (const Error& e) {
    EXPECT_TRUE(e.code() == ErrorCode::kIoCorruption || e.code() == ErrorCode::kInvalidInput)
        << "seed " << seed << ": unexpected code " << error_code_name(e.code());
    return;
  } catch (const std::exception& e) {
    ADD_FAILURE() << "seed " << seed << ": non-Error exception: " << e.what();
  }
}

Bytes random_bytes(Rng& rng, std::size_t n) {
  Bytes b(n);
  for (auto& v : b) v = static_cast<std::uint8_t>(rng.next_u64());
  return b;
}

// A structurally valid frame stream of random type/body, for mutation.
Bytes valid_stream(Rng& rng) {
  Bytes out;
  const int frames = 1 + static_cast<int>(rng.next_u64() % 3);
  for (int i = 0; i < frames; ++i) {
    const auto type = static_cast<MsgType>(1 + rng.next_u64() % 17);
    const Bytes body = random_bytes(rng, rng.next_u64() % 512);
    encode_frame(out, type, rng.next_u64(), body);
  }
  return out;
}

// A lifecycle conversation — Ping, Health, a Drain exchange, a straggling
// Submit — as one stream, for mid-drain truncation and corruption: a server
// dying partway through its drain handshake must leave the decoder with a
// typed error or a "need more bytes", never a crash.
Bytes drain_stream(Rng& rng) {
  Bytes out;
  encode_frame(out, MsgType::kPing, rng.next_u64(), Bytes{});
  encode_frame(out, MsgType::kHealth, rng.next_u64(), Bytes{});
  DrainMsg d;
  d.deadline_ms = static_cast<std::int64_t>(rng.next_u64() % 1000) - 1;
  encode_frame(out, MsgType::kDrain, rng.next_u64(), encode(d));
  DrainAckMsg ack;
  ack.state = WireHealth::kDraining;
  ack.inflight = rng.next_u64() % 64;
  encode_frame(out, MsgType::kDrainAck, rng.next_u64(), encode(ack));
  HealthAckMsg h;
  h.state = static_cast<WireHealth>(rng.next_u64() % 3);
  h.accepting = static_cast<std::uint8_t>(rng.next_u64() % 2);
  encode_frame(out, MsgType::kHealthAck, rng.next_u64(), encode(h));
  return out;
}

TEST(ProtocolFuzz, HostileStreamsNeverCrash) {
  const auto base = base_seed();
  for (std::int64_t i = 0; i < iterations(); ++i) {
    const std::uint64_t seed = base + static_cast<std::uint64_t>(i);
    Rng rng(seed);
    switch (rng.next_u64() % 5) {
      case 0: {  // pure noise
        expect_graceful(random_bytes(rng, rng.next_u64() % 2048), seed);
        break;
      }
      case 1: {  // valid stream with one flipped bit
        Bytes s = valid_stream(rng);
        const std::size_t pos = rng.next_u64() % s.size();
        s[pos] ^= static_cast<std::uint8_t>(1u << (rng.next_u64() % 8));
        expect_graceful(s, seed);
        break;
      }
      case 2: {  // valid stream truncated mid-frame
        Bytes s = valid_stream(rng);
        s.resize(rng.next_u64() % (s.size() + 1));
        expect_graceful(s, seed);
        break;
      }
      case 3: {  // drain conversation truncated mid-handshake
        Bytes s = drain_stream(rng);
        s.resize(rng.next_u64() % (s.size() + 1));
        expect_graceful(s, seed);
        break;
      }
      default: {  // drain conversation with one flipped bit
        Bytes s = drain_stream(rng);
        const std::size_t pos = rng.next_u64() % s.size();
        s[pos] ^= static_cast<std::uint8_t>(1u << (rng.next_u64() % 8));
        expect_graceful(s, seed);
        break;
      }
    }
  }
}

TEST(ProtocolFuzz, RandomMessagesRoundTripExactly) {
  const auto base = base_seed() + 1000003;
  for (std::int64_t i = 0; i < iterations(); ++i) {
    const std::uint64_t seed = base + static_cast<std::uint64_t>(i);
    Rng rng(seed);

    SubmitMsg sub;
    sub.plan_id = rng.next_u64();
    sub.op = rng.next_u64() % 2 == 0 ? WireOp::kForward : WireOp::kAdjoint;
    sub.batch = 1 + static_cast<std::uint32_t>(rng.next_u64() % 16);
    sub.deadline_ms = static_cast<std::int64_t>(rng.next_u64() % 1000) - 1;
    sub.flags = static_cast<std::uint32_t>(rng.next_u64() % 2);
    sub.input.resize(rng.next_u64() % 256);
    for (auto& v : sub.input) v = {static_cast<float>(rng.uniform(-1.0, 1.0)), static_cast<float>(rng.uniform(-1.0, 1.0))};

    Bytes wire;
    encode_frame(wire, MsgType::kSubmit, seed, encode(sub));
    Frame f;
    ASSERT_EQ(try_decode_frame(wire.data(), wire.size(), f), wire.size()) << "seed " << seed;
    ASSERT_EQ(f.request_id, seed);
    const SubmitMsg back = decode_submit(f.body);
    EXPECT_EQ(back.plan_id, sub.plan_id) << "seed " << seed;
    EXPECT_EQ(back.op, sub.op) << "seed " << seed;
    EXPECT_EQ(back.batch, sub.batch) << "seed " << seed;
    EXPECT_EQ(back.deadline_ms, sub.deadline_ms) << "seed " << seed;
    EXPECT_EQ(back.flags, sub.flags) << "seed " << seed;
    ASSERT_EQ(back.input.size(), sub.input.size()) << "seed " << seed;
    if (!sub.input.empty()) {  // empty vectors have null data(), UB for memcmp
      EXPECT_EQ(std::memcmp(back.input.data(), sub.input.data(),
                            sub.input.size() * sizeof(cfloat)),
                0)
          << "seed " << seed;
    }

    ErrorMsg err;
    err.code = static_cast<std::int32_t>(rng.next_u64() %
                                         static_cast<std::uint64_t>(kErrorCodeCount));
    err.message = std::string(rng.next_u64() % 64, 'x');
    const ErrorMsg eback = decode_error(encode(err));
    EXPECT_EQ(eback.code, err.code) << "seed " << seed;
    EXPECT_EQ(eback.message, err.message) << "seed " << seed;

    HelloMsg hello;
    hello.tenant = std::string(1 + rng.next_u64() % 16, 't');
    hello.client_id = rng.next_u64();
    const HelloMsg hback = decode_hello(encode(hello));
    EXPECT_EQ(hback.tenant, hello.tenant) << "seed " << seed;
    EXPECT_EQ(hback.client_id, hello.client_id) << "seed " << seed;

    HealthAckMsg health;
    health.state = static_cast<WireHealth>(rng.next_u64() % 3);
    health.accepting = static_cast<std::uint8_t>(rng.next_u64() % 2);
    health.connections = rng.next_u64();
    health.inflight = rng.next_u64();
    health.queued = rng.next_u64();
    health.watchdog_stalls = rng.next_u64();
    const HealthAckMsg hb = decode_health_ack(encode(health));
    EXPECT_EQ(hb.state, health.state) << "seed " << seed;
    EXPECT_EQ(hb.accepting, health.accepting) << "seed " << seed;
    EXPECT_EQ(hb.connections, health.connections) << "seed " << seed;
    EXPECT_EQ(hb.inflight, health.inflight) << "seed " << seed;
    EXPECT_EQ(hb.queued, health.queued) << "seed " << seed;
    EXPECT_EQ(hb.watchdog_stalls, health.watchdog_stalls) << "seed " << seed;

    DrainMsg drain;
    drain.deadline_ms = static_cast<std::int64_t>(rng.next_u64() % 100000) - 1;
    EXPECT_EQ(decode_drain(encode(drain)).deadline_ms, drain.deadline_ms) << "seed " << seed;

    DrainAckMsg dack;
    dack.state = static_cast<WireHealth>(rng.next_u64() % 3);
    dack.inflight = rng.next_u64();
    const DrainAckMsg db = decode_drain_ack(encode(dack));
    EXPECT_EQ(db.state, dack.state) << "seed " << seed;
    EXPECT_EQ(db.inflight, dack.inflight) << "seed " << seed;

    UpdateSamplesMsg upd;
    upd.plan_id = rng.next_u64();
    upd.samples.dim = 1 + static_cast<int>(rng.next_u64() % 3);
    upd.samples.m = 8;
    upd.samples.k = 1 + static_cast<index_t>(rng.next_u64() % 8);
    upd.samples.s = 1 + static_cast<index_t>(rng.next_u64() % 8);
    for (int d = 0; d < upd.samples.dim; ++d) {
      auto& coords = upd.samples.coords[static_cast<std::size_t>(d)];
      coords.resize(static_cast<std::size_t>(upd.samples.count()));
      for (auto& x : coords) x = static_cast<float>(rng.uniform(0.0, 8.0));
    }
    const UpdateSamplesMsg ub = decode_update_samples(encode(upd));
    EXPECT_EQ(ub.plan_id, upd.plan_id) << "seed " << seed;
    EXPECT_EQ(ub.samples.dim, upd.samples.dim) << "seed " << seed;
    EXPECT_EQ(ub.samples.count(), upd.samples.count()) << "seed " << seed;
    for (int d = 0; d < upd.samples.dim; ++d) {
      const auto& a = upd.samples.coords[static_cast<std::size_t>(d)];
      const auto& b2 = ub.samples.coords[static_cast<std::size_t>(d)];
      ASSERT_EQ(b2.size(), a.size()) << "seed " << seed;
      if (a.empty()) continue;  // empty vectors have null data(), UB for memcmp
      EXPECT_EQ(std::memcmp(b2.data(), a.data(), a.size() * sizeof(float)), 0)
          << "seed " << seed;
    }

    UpdateAckMsg uack;
    uack.plan_id = rng.next_u64();
    uack.generation = rng.next_u64();
    uack.path = static_cast<WireUpdatePath>(rng.next_u64() % 3);
    uack.resident_bytes = rng.next_u64();
    const UpdateAckMsg ab = decode_update_ack(encode(uack));
    EXPECT_EQ(ab.plan_id, uack.plan_id) << "seed " << seed;
    EXPECT_EQ(ab.generation, uack.generation) << "seed " << seed;
    EXPECT_EQ(ab.path, uack.path) << "seed " << seed;
    EXPECT_EQ(ab.resident_bytes, uack.resident_bytes) << "seed " << seed;
  }
}

}  // namespace
}  // namespace nufft::serve
