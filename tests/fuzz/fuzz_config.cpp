#include "fuzz/fuzz_config.hpp"

#include <cmath>
#include <sstream>

#include "common/rng.hpp"
#include "core/tolerance.hpp"

namespace nufft::fuzz {

const char* coord_style_name(CoordStyle s) {
  switch (s) {
    case CoordStyle::kUniform:
      return "uniform";
    case CoordStyle::kInteger:
      return "integer";
    case CoordStyle::kHalfInteger:
      return "half-integer";
    case CoordStyle::kBoundary:
      return "boundary";
    default:
      return "clustered";
  }
}

bool FuzzConfig::footprint_exceeds_grid() const {
  const auto footprint = 2 * static_cast<index_t>(std::ceil(kernel_radius)) + 1;
  return m < footprint;
}

double FuzzConfig::nudft_tolerance() const {
  // Kernel-accuracy model, deliberately looser than the pinned accuracy
  // tests (tests/test_nufft.cpp): the fuzzer's job is to catch structural
  // disagreement between execution paths (wrong wrap, shift, scale, index),
  // which produces O(1) relative error, not to re-measure the kernel's
  // approximation floor on every adversarial geometry.
  const double W = kernel_radius;
  double tol;
  if (W <= 1.5) {
    tol = 5e-2;
  } else if (W <= 2.0) {
    tol = 2e-2;
  } else if (W <= 3.0) {
    tol = 5e-3;
  } else {
    tol = 1e-3;
  }
  // Low oversampling widens the aliasing floor dramatically.
  if (alpha < 1.6) {
    tol *= 50.0;
  } else if (alpha < 1.95) {
    tol *= 10.0;
  }
  // The Gaussian kernel is markedly less accurate than Kaiser–Bessel at
  // equal width, and tiny grids (few cells per footprint) sit closer to
  // the aliasing floor. (The ES kernel matches KB at equal width — no
  // adjustment.)
  if (kernel == kernels::KernelType::kGaussian) tol *= 10.0;
  if (m < 16) tol *= 5.0;
  return std::min(tol, 0.5);
}

std::string FuzzConfig::describe() const {
  std::ostringstream os;
  os << "seed=" << seed << " dim=" << dim << " n=" << n << " m=" << m << " alpha=" << alpha
     << " W=" << kernel_radius << " kernel="
     << (kernel == kernels::KernelType::kKaiserBessel
             ? "kb"
             : (kernel == kernels::KernelType::kEs ? "es" : "gauss"))
     << " eval=" << (eval == kernels::KernelEval::kHorner ? "horner" : "lut");
  if (tolerance > 0.0) os << " tol=" << tolerance;
  os << " threads=" << threads << " count=" << count << " style=" << coord_style_name(style)
     << " batch=" << batch << " pq=" << priority_queue << " priv=" << selective_privatization
     << " barrier=" << color_barrier_schedule << " varpart=" << variable_partitions
     << " reorder=" << reorder << " pfac=" << privatization_factor
     << " spec=" << specialize_conv;
  if (update_frames > 0) {
    os << " frames=" << update_frames << " jitter=" << jitter_fraction;
  }
  return os.str();
}

namespace {

struct GridChoice {
  index_t n;
  double alpha;
};

// Grid families per dimension, sized so the O(N^d·K) NUDFT oracle stays
// cheap. Each family mixes power-of-two m (Stockham FFT), prime m
// (Bluestein), odd/composite m, and grids tiny enough that some kernel
// widths exceed them (the rejection path).
constexpr GridChoice kGrids1[] = {
    {64, 2.0},   // m = 128, pow2
    {48, 2.0},   // m = 96, composite
    {10, 1.3},   // m = 13, prime → Bluestein
    {31, 2.0},   // m = 62 = 2·31
    {5, 2.0},    // m = 10, tiny legal for W ≤ 4
    {3, 2.0},    // m = 6, rejected for W > 2.5
    {2, 2.0},    // m = 4, rejected for every W ≥ 1.5
    {2, 1.5},    // m = 3: at W = 4 the window spans > 2m (double wrap)
    {16, 1.25},  // m = 20, low oversampling
};
constexpr GridChoice kGrids2[] = {
    {16, 2.0},  // m = 32, pow2
    {10, 1.3},  // m = 13, prime
    {9, 2.0},   // m = 18, composite
    {6, 2.0},   // m = 12
    {3, 2.0},   // m = 6, rejected for W > 2.5
    {2, 2.0},   // m = 4, rejected always
    {2, 1.5},   // m = 3, double wrap at W = 4
    {12, 1.5},  // m = 18, low oversampling
};
constexpr GridChoice kGrids3[] = {
    {8, 2.0},   // m = 16, pow2
    {6, 2.0},   // m = 12
    {10, 1.3},  // m = 13, prime
    {5, 1.8},   // m = 9, odd composite
    {7, 2.0},   // m = 14
    {2, 2.0},   // m = 4, rejected always
    {2, 1.5},   // m = 3, double wrap at W = 4
};

constexpr double kRadii[] = {1.5, 2.0, 2.5, 3.0, 4.0};

}  // namespace

FuzzConfig make_fuzz_config(std::uint64_t seed) {
  // A distinct stream from the coordinate RNG (fuzz_runner.cpp mixes the
  // seed differently there) so config shape and sample data are independent.
  Rng rng(seed * 0x9E3779B97F4A7C15ull + 0xD1B54A32D192ED03ull);
  FuzzConfig c;
  c.seed = seed;

  c.dim = static_cast<int>(rng.below(3)) + 1;
  const GridChoice* grids = c.dim == 1 ? kGrids1 : (c.dim == 2 ? kGrids2 : kGrids3);
  const std::size_t ngrids =
      c.dim == 1 ? std::size(kGrids1) : (c.dim == 2 ? std::size(kGrids2) : std::size(kGrids3));
  const GridChoice gc = grids[rng.below(ngrids)];
  c.n = gc.n;
  c.alpha = gc.alpha;
  c.m = static_cast<index_t>(std::llround(gc.alpha * static_cast<double>(gc.n)));

  c.kernel_radius = kRadii[rng.below(std::size(kRadii))];
  const auto kpick = rng.below(8);
  c.kernel = kpick < 2 ? kernels::KernelType::kGaussian
                       : (kpick < 5 ? kernels::KernelType::kKaiserBessel
                                    : kernels::KernelType::kEs);
  c.lut_samples_per_unit = rng.below(2) == 0 ? 1024 : 512;
  // Every radius in kRadii is a multiple of 0.5, so the Horner evaluator's
  // 2W-integer precondition always holds; ES leans on Horner (its production
  // pairing), KB exercises it as the minority path, Gaussian stays on the
  // LUT (no Horner calibration).
  if (c.kernel == kernels::KernelType::kEs) {
    c.eval = rng.below(4) != 0 ? kernels::KernelEval::kHorner : kernels::KernelEval::kLut;
  } else if (c.kernel == kernels::KernelType::kKaiserBessel) {
    c.eval = rng.below(4) == 0 ? kernels::KernelEval::kHorner : kernels::KernelEval::kLut;
  }

  // A share of KB/ES seeds on calibrated grids (α = 2) go through
  // tolerance-driven planning. The resolved row is written back into the
  // config so the footprint/rejection logic and the error model see the
  // true kernel width the plan will use.
  if (c.alpha == 2.0 && c.kernel != kernels::KernelType::kGaussian && rng.below(4) == 0) {
    constexpr double kTols[] = {1e-2, 1e-3, 1e-4, 1e-5, 1e-6};
    c.tolerance = kTols[rng.below(std::size(kTols))];
    const auto row = resolve_tolerance(c.tolerance, c.kernel);
    c.kernel_radius = row.kernel_radius;
    c.lut_samples_per_unit = row.lut_samples_per_unit;
    c.eval = row.eval;
  }

  c.threads = static_cast<int>(rng.below(4)) + 1;

  // Sample-count families: the degenerate plans (0/1/2 samples — empty
  // partitions through the full scheduler) get a fixed share of seeds; the
  // rest are small or large enough to cross privatization thresholds.
  switch (rng.below(8)) {
    case 0:
      c.count = 0;
      break;
    case 1:
      c.count = 1;
      break;
    case 2:
      c.count = 2;
      break;
    case 3:
    case 4:
      c.count = 5 + static_cast<index_t>(rng.below(35));
      break;
    default:
      c.count = 60 + static_cast<index_t>(rng.below(140));
      break;
  }

  c.style = static_cast<CoordStyle>(rng.below(5));
  c.batch = 1 + static_cast<index_t>(rng.below(8));

  c.priority_queue = rng.below(2) == 0;
  c.selective_privatization = rng.below(4) != 0;
  c.color_barrier_schedule = rng.below(4) == 0;
  c.variable_partitions = rng.below(2) == 0;
  c.reorder = rng.below(2) == 0;
  // Factor < 1 lowers the Eq. 6 threshold → more privatized tasks.
  c.privatization_factor = rng.below(3) == 0 ? 0.25 : 1.0;
  // Mostly exercise the specialized dispatch (the production default), but
  // keep the generic-loop ablation in the pool so divergences between the
  // two paths keep getting hunted.
  c.specialize_conv = rng.below(4) != 0;

  // Streaming trajectory deltas ride on a share of the seeds. These draws
  // come LAST so every field above keeps its value for a given seed — the
  // pinned regression seeds in test_fuzz.cpp were scanned against the
  // pre-streaming generator and must keep their shapes.
  if (rng.below(3) == 0) {
    c.update_frames = 1 + static_cast<int>(rng.below(3));
    constexpr double kJitter[] = {0.0, 0.02, 0.05, 0.3, 1.0};
    c.jitter_fraction = kJitter[rng.below(std::size(kJitter))];
  }

  return c;
}

}  // namespace nufft::fuzz
