// Differential property-testing sweep (`ctest -L fuzz`).
//
// Every configuration is derived deterministically from a seed
// (fuzz_config.hpp), run through every execution path against the exact
// NUDFT and against the other paths (fuzz_runner.hpp), and any violated
// property is reported with a one-line reproduction command:
//
//   NUFFT_FUZZ_SEED=<seed> NUFFT_FUZZ_CONFIGS=1 ./nufft_fuzz_tests
//
// Environment knobs:
//   NUFFT_FUZZ_SEED=s     base seed of the sweep (default kBaseSeed)
//   NUFFT_FUZZ_CONFIGS=n  number of configurations (default 224)
//
// Bugs the harness has flushed out stay pinned here as regressions
// (FuzzRegression.*) so they re-run even if the sweep parameters change.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/env.hpp"
#include "fuzz/fuzz_config.hpp"
#include "fuzz/fuzz_runner.hpp"

namespace nufft::fuzz {
namespace {

// Fixed default so CI runs are reproducible; override via NUFFT_FUZZ_SEED.
constexpr std::uint64_t kBaseSeed = 20120521;  // the paper's conference date

// Pinned seeds for the regression tests below, chosen by scanning the
// generator for the property each test needs (asserted before running).
// The m = 3, W = 4 trio puts the kernel window wider than TWO grid periods
// (2W+1 = 9 > 2m = 6), where a single conditional ±m wrap still indexes out
// of range — only the full modular wrap is correct.
constexpr std::uint64_t kTinyGridSeed1 = 426;   // dim 1, m = 3, W = 4, 121 samples
constexpr std::uint64_t kTinyGridSeed2 = 10;    // dim 2, m = 3, W = 4, ES Horner
constexpr std::uint64_t kTinyGridSeed3 = 142;   // dim 3, m = 3, W = 4, clustered
constexpr std::uint64_t kBoundarySeed1 = 4;     // dim 1, m = 128, half-integer
constexpr std::uint64_t kBoundarySeed2 = 2;     // dim 2, m = 32, half-integer
constexpr std::uint64_t kZeroSampleSeed = 16;   // dim 1, prime m = 13, count 0
constexpr std::uint64_t kSingleSampleSeed = 37; // dim 2, count 1, ES Horner
constexpr std::uint64_t kPrimeGridSeed = 3;     // dim 2, m = 13 (Bluestein), batch 8

void expect_clean(std::uint64_t seed) {
  const FuzzConfig c = make_fuzz_config(seed);
  const auto failures = run_differential(c);
  for (const auto& f : failures) ADD_FAILURE() << f;
}

TEST(Fuzz, DifferentialSweep) {
  const auto base = static_cast<std::uint64_t>(env_int("NUFFT_FUZZ_SEED",
                                                       static_cast<std::int64_t>(kBaseSeed)));
  const auto n = env_int("NUFFT_FUZZ_CONFIGS", 224);
  int rejected = 0;
  int streamed = 0;
  for (std::int64_t i = 0; i < n; ++i) {
    const FuzzConfig c = make_fuzz_config(base + static_cast<std::uint64_t>(i));
    if (c.footprint_exceeds_grid()) ++rejected;
    if (c.update_frames > 0 && c.count > 0 && !c.footprint_exceeds_grid()) ++streamed;
    const auto failures = run_differential(c);
    for (const auto& f : failures) ADD_FAILURE() << f;
  }
  // The generator must keep exercising the rejection path and the streaming
  // trajectory-delta battery; if the tables change and no config lands
  // there, this sweep silently loses coverage — fail loudly instead.
  if (n >= 100) {
    EXPECT_GT(rejected, 0) << "no config exercised the tiny-grid rejection path";
    EXPECT_GT(streamed, 0) << "no config exercised the trajectory-delta battery";
  }
}

// --- pinned regressions -----------------------------------------------------
//
// Seeds chosen (by scanning the generator) to land on the exact shapes that
// exposed real bugs; each stays green only with its fix in place.

TEST(FuzzRegression, TinyGridFootprintRejectionAndFullWrap) {
  // Grids narrower than the kernel footprint: plan construction must throw
  // kInvalidInput and the raw baselines must match the fully-wrapped
  // brute-force spread. Before the compute_window single-pass-wrap fix,
  // these configs produced out-of-range grid indices (silent corruption,
  // ASan-visible). Seeds below generate m < 2⌈W⌉+1 in each dimension.
  for (const std::uint64_t seed : {kTinyGridSeed1, kTinyGridSeed2, kTinyGridSeed3}) {
    const FuzzConfig c = make_fuzz_config(seed);
    ASSERT_TRUE(c.footprint_exceeds_grid()) << c.describe();
    expect_clean(seed);
  }
}

TEST(FuzzRegression, BoundaryAndHalfIntegerCoordinates) {
  // Half-integer and domain-boundary coordinates drive the float-rounding
  // window-trim fix (ceil(k−W)/floor(k+W) admitting |nx−k| > W).
  for (const std::uint64_t seed : {kBoundarySeed1, kBoundarySeed2}) {
    const FuzzConfig c = make_fuzz_config(seed);
    ASSERT_TRUE(c.style == CoordStyle::kBoundary || c.style == CoordStyle::kHalfInteger)
        << c.describe();
    expect_clean(seed);
  }
}

TEST(FuzzRegression, ZeroAndSingleSamplePlans) {
  // Empty and single-sample plans through the full TDG scheduler on every
  // operator (empty partitions, load_imbalance sentinels, exact-zero
  // adjoint).
  const FuzzConfig zero = make_fuzz_config(kZeroSampleSeed);
  ASSERT_EQ(zero.count, 0) << zero.describe();
  expect_clean(kZeroSampleSeed);
  const FuzzConfig one = make_fuzz_config(kSingleSampleSeed);
  ASSERT_EQ(one.count, 1) << one.describe();
  expect_clean(kSingleSampleSeed);
}

TEST(FuzzRegression, PrimeGridBluestein) {
  // Prime oversampled sizes route the FFT through Bluestein; batched
  // applies fall back to per-row transforms. Both must agree with NUDFT.
  const FuzzConfig c = make_fuzz_config(kPrimeGridSeed);
  ASSERT_EQ(c.m % 2, 1) << c.describe();
  expect_clean(kPrimeGridSeed);
}

}  // namespace
}  // namespace nufft::fuzz
