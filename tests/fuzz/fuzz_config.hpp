// Randomized adversarial plan configurations for the differential fuzz
// harness (`ctest -L fuzz`).
//
// Every FuzzConfig is a pure function of its 64-bit seed (xoshiro256**,
// bit-reproducible across platforms), so any failure reported by the runner
// is reproducible from the seed alone:
//
//   NUFFT_FUZZ_SEED=<seed> NUFFT_FUZZ_CONFIGS=1 ./nufft_fuzz_tests
//
// The generator deliberately over-samples the hostile corners of the input
// space: grids narrower than the kernel footprint (m < 2⌈W⌉+1, must be
// rejected at plan construction), prime grid sizes (Bluestein FFT), tiny
// legal grids one cell wider than the footprint, half-integer and
// domain-boundary coordinates (the float-rounding window-trim regression),
// zero/one/two-sample plans (empty scheduler partitions), clustered
// trajectories that cross the Eq. 6 privatization threshold, and batch
// sizes 1..8.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"
#include "core/preprocess.hpp"
#include "kernels/kernel.hpp"

namespace nufft::fuzz {

enum class CoordStyle {
  kUniform,      // uniform over [0, m)
  kInteger,      // pinned to grid cells (maximal 2W+1 windows)
  kHalfInteger,  // pinned to cell midpoints (ceil/floor rounding hazards)
  kBoundary,     // 0, nextafter(m, 0), m−0.5, ... (wrap + trim hazards)
  kClustered,    // Gaussian blob (drives partitions over the privatization threshold)
};

const char* coord_style_name(CoordStyle s);

struct FuzzConfig {
  std::uint64_t seed = 0;

  int dim = 1;
  index_t n = 0;       // image size per dimension
  double alpha = 2.0;  // oversampling ratio; m = llround(alpha·n)
  index_t m = 0;       // oversampled grid size per dimension

  double kernel_radius = 4.0;
  kernels::KernelType kernel = kernels::KernelType::kKaiserBessel;
  int lut_samples_per_unit = 1024;
  kernels::KernelEval eval = kernels::KernelEval::kLut;
  /// > 0: tolerance-driven planning — kernel_radius / lut_samples_per_unit /
  /// eval above were pre-resolved from the calibration table at config-gen
  /// time (so the footprint logic sees the true width), and the plan itself
  /// re-resolves the same row from the tolerance.
  double tolerance = 0.0;

  int threads = 1;
  index_t count = 0;  // total samples (single interleave)
  CoordStyle style = CoordStyle::kUniform;
  index_t batch = 1;  // BatchNufft slices (1 = skip the batched comparison)

  // Scheduler / ablation toggles shared by every execution-path variant.
  bool priority_queue = true;
  bool selective_privatization = true;
  bool color_barrier_schedule = false;
  bool variable_partitions = true;
  bool reorder = true;
  double privatization_factor = 1.0;
  bool specialize_conv = true;  // dispatch-registry ablation (generic loop when false)

  /// > 0: after the main battery, stream this many jittered trajectory
  /// frames through Nufft::update_samples, checking each updated plan
  /// against the exact NUDFT on the new coordinates and — exactly, to the
  /// bit — against a cold plan of the same frame (the §15 determinism
  /// contract at the operator level).
  int update_frames = 0;
  /// Fraction of samples perturbed per frame: 0 exercises the bitwise
  /// no-op short-circuit, 1 the rebuild-fallback regime.
  double jitter_fraction = 0.0;

  /// True when the kernel footprint exceeds the grid: plan construction
  /// must reject the config, and only the raw kernel-level baselines
  /// (which rely on compute_window's full modular wrap) run on it.
  bool footprint_exceeds_grid() const;

  /// Relative-L2 tolerance for comparisons against the exact NUDFT,
  /// derived from the kernel width, oversampling ratio, and kernel type
  /// (see DESIGN.md §10 for the model).
  double nudft_tolerance() const;

  /// One-line human-readable description (embedded in failure reports).
  std::string describe() const;
};

/// Derive a complete configuration from a seed. Pure and deterministic.
FuzzConfig make_fuzz_config(std::uint64_t seed);

}  // namespace nufft::fuzz
