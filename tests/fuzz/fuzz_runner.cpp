#include "fuzz/fuzz_runner.hpp"

#include <cmath>
#include <cstddef>
#include <memory>
#include <sstream>

#include "baselines/adjoint_atomic.hpp"
#include "baselines/adjoint_privatized.hpp"
#include "baselines/nudft.hpp"
#include "baselines/reference_nufft.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "core/convolution_avx2.hpp"
#include "core/nufft.hpp"
#include "exec/batch_nufft.hpp"
#include "kernels/es_kernel.hpp"

namespace nufft::fuzz {

namespace {

// ---- comparison helpers (double-precision norms, denominator floor) ----

double norm2(const cfloat* a, index_t n) {
  double s = 0.0;
  for (index_t i = 0; i < n; ++i) {
    const auto& v = a[static_cast<std::size_t>(i)];
    s += static_cast<double>(v.real()) * v.real() + static_cast<double>(v.imag()) * v.imag();
  }
  return std::sqrt(s);
}

double diff_norm(const cfloat* a, const cfloat* b, index_t n) {
  double s = 0.0;
  for (index_t i = 0; i < n; ++i) {
    const double dr = static_cast<double>(a[static_cast<std::size_t>(i)].real()) -
                      b[static_cast<std::size_t>(i)].real();
    const double di = static_cast<double>(a[static_cast<std::size_t>(i)].imag()) -
                      b[static_cast<std::size_t>(i)].imag();
    s += dr * dr + di * di;
  }
  return std::sqrt(s);
}

double diff_norm(const cfloat* a, const cdouble* b, index_t n) {
  double s = 0.0;
  for (index_t i = 0; i < n; ++i) {
    const double dr = static_cast<double>(a[static_cast<std::size_t>(i)].real()) -
                      b[static_cast<std::size_t>(i)].real();
    const double di = static_cast<double>(a[static_cast<std::size_t>(i)].imag()) -
                      b[static_cast<std::size_t>(i)].imag();
    s += dr * dr + di * di;
  }
  return std::sqrt(s);
}

double norm2(const cdouble* a, index_t n) {
  double s = 0.0;
  for (index_t i = 0; i < n; ++i) {
    s += std::norm(a[static_cast<std::size_t>(i)]);
  }
  return std::sqrt(s);
}

// Relative error with a floored denominator: near-zero references fall back
// to an absolute comparison so a single unlucky sample can't inflate the
// metric into flakiness.
template <class Ref>
double rel_err(const cfloat* got, const Ref* ref, index_t n) {
  if (n == 0) return 0.0;
  return diff_norm(got, ref, n) / std::max(norm2(ref, n), 1e-2);
}

class Report {
 public:
  explicit Report(const FuzzConfig& c) : cfg_(c) {}

  std::ostringstream& fail() {
    msgs_.emplace_back();
    return msgs_.back();
  }

  void check_rel(const char* what, double err, double tol) {
    if (!(err <= tol)) {  // catches NaN too
      fail() << what << ": rel err " << err << " > tol " << tol;
    }
  }

  std::vector<std::string> finish() {
    std::vector<std::string> out;
    out.reserve(msgs_.size());
    for (auto& m : msgs_) {
      out.push_back("[" + cfg_.describe() + "] " + m.str() +
                    "  (reproduce: NUFFT_FUZZ_SEED=" + std::to_string(cfg_.seed) +
                    " NUFFT_FUZZ_CONFIGS=1)");
    }
    return out;
  }

  bool ok() const { return msgs_.empty(); }

 private:
  const FuzzConfig& cfg_;
  std::vector<std::ostringstream> msgs_;
};

// ---- deterministic sample-set generation ----

float clamp_coord(double v, index_t m) {
  // Wrap into [0, m) in double, then guard the float cast: a value a hair
  // below m can round up to exactly m, which validate_samples rejects.
  const double md = static_cast<double>(m);
  double w = std::fmod(v, md);
  if (w < 0.0) w += md;
  float f = static_cast<float>(w);
  if (f >= static_cast<float>(m)) f = std::nextafterf(static_cast<float>(m), 0.0f);
  if (f < 0.0f) f = 0.0f;
  return f;
}

datasets::SampleSet make_samples(const FuzzConfig& c) {
  datasets::SampleSet set;
  set.dim = c.dim;
  set.m = c.m;
  set.k = c.count;
  set.s = c.count > 0 ? 1 : 0;
  Rng rng(c.seed ^ 0xC2B2AE3D27D4EB4Full);
  const float mf = static_cast<float>(c.m);
  const float boundary[5] = {0.0f, std::nextafterf(mf, 0.0f), mf - 0.5f, 0.5f,
                             std::nextafterf(mf / 2.0f, mf)};
  float center[3] = {0, 0, 0};
  for (int d = 0; d < c.dim; ++d) {
    center[d] = static_cast<float>(rng.uniform(0.0, static_cast<double>(c.m)));
  }
  for (int d = 0; d < c.dim; ++d) {
    set.coords[static_cast<std::size_t>(d)].resize(static_cast<std::size_t>(c.count));
  }
  for (index_t i = 0; i < c.count; ++i) {
    for (int d = 0; d < c.dim; ++d) {
      float v;
      switch (c.style) {
        case CoordStyle::kInteger:
          v = static_cast<float>(rng.below(static_cast<std::uint64_t>(c.m)));
          break;
        case CoordStyle::kHalfInteger:
          v = static_cast<float>(rng.below(static_cast<std::uint64_t>(c.m))) + 0.5f;
          if (v >= mf) v = std::nextafterf(mf, 0.0f);
          break;
        case CoordStyle::kBoundary:
          v = boundary[rng.below(5)];
          break;
        case CoordStyle::kClustered:
          v = clamp_coord(center[d] + rng.normal(0.0, static_cast<double>(c.m) / 12.0), c.m);
          break;
        default:
          v = clamp_coord(rng.uniform(0.0, static_cast<double>(c.m)), c.m);
          break;
      }
      set.coords[static_cast<std::size_t>(d)][static_cast<std::size_t>(i)] = v;
    }
  }
  return set;
}

cvecf random_complex(index_t n, std::uint64_t seed) {
  Rng rng(seed);
  cvecf v(static_cast<std::size_t>(n));
  for (auto& x : v) {
    x = cfloat(static_cast<float>(rng.uniform(-1.0, 1.0)),
               static_cast<float>(rng.uniform(-1.0, 1.0)));
  }
  return v;
}

GridDesc fuzz_grid(const FuzzConfig& c) {
  GridDesc g;
  g.dim = c.dim;
  g.alpha = c.alpha;
  for (int d = 0; d < c.dim; ++d) {
    g.n[static_cast<std::size_t>(d)] = c.n;
    g.m[static_cast<std::size_t>(d)] = c.m;
  }
  return g;
}

PlanConfig base_config(const FuzzConfig& c) {
  PlanConfig cfg;
  cfg.kernel_radius = c.kernel_radius;
  cfg.kernel = c.kernel;
  cfg.lut_samples_per_unit = c.lut_samples_per_unit;
  cfg.eval = c.eval;
  cfg.tolerance = c.tolerance;
  cfg.threads = c.threads;
  cfg.priority_queue = c.priority_queue;
  cfg.selective_privatization = c.selective_privatization;
  cfg.color_barrier_schedule = c.color_barrier_schedule;
  cfg.variable_partitions = c.variable_partitions;
  cfg.reorder = c.reorder;
  cfg.privatization_factor = c.privatization_factor;
  cfg.specialize_conv = c.specialize_conv;
  return cfg;
}

// Double-precision brute-force periodic spread: the oracle for the raw
// kernel-level baselines on grids narrower than the footprint, where every
// window wraps the grid several times.
std::vector<cdouble> brute_force_spread(const GridDesc& g, const kernels::Kernel1d& kernel,
                                        const datasets::SampleSet& set, const cfloat* raw) {
  const double W = kernel.radius();
  const auto st = g.grid_strides();
  std::vector<cdouble> grid(static_cast<std::size_t>(g.grid_elems()), cdouble(0, 0));
  for (index_t p = 0; p < set.count(); ++p) {
    // Mirror compute_window's float index arithmetic exactly (float ceil
    // and trim), but take kernel values in double.
    index_t lo[3] = {0, 0, 0}, hi[3] = {0, 0, 0};
    float k[3] = {0, 0, 0};
    for (int d = 0; d < g.dim; ++d) {
      k[d] = set.coords[static_cast<std::size_t>(d)][static_cast<std::size_t>(p)];
      auto x1 = static_cast<index_t>(std::ceil(k[d] - static_cast<float>(W)));
      auto x2 = static_cast<index_t>(std::floor(k[d] + static_cast<float>(W)));
      if (std::fabs(static_cast<float>(x1) - k[d]) > W) ++x1;
      if (std::fabs(static_cast<float>(x2) - k[d]) > W) --x2;
      lo[d] = x1;
      hi[d] = x2;
    }
    const cdouble val(raw[static_cast<std::size_t>(p)].real(),
                      raw[static_cast<std::size_t>(p)].imag());
    const auto wrapm = [&](index_t x, index_t m) { return ((x % m) + m) % m; };
    for (index_t x = lo[0]; x <= hi[0]; ++x) {
      const double wx = kernel.value(static_cast<double>(static_cast<float>(x) - k[0]));
      if (g.dim == 1) {
        grid[static_cast<std::size_t>(wrapm(x, g.m[0]))] += val * wx;
        continue;
      }
      for (index_t y = lo[1]; y <= hi[1]; ++y) {
        const double wxy = wx * kernel.value(static_cast<double>(static_cast<float>(y) - k[1]));
        if (g.dim == 2) {
          grid[static_cast<std::size_t>(wrapm(x, g.m[0]) * st[0] + wrapm(y, g.m[1]))] +=
              val * wxy;
          continue;
        }
        for (index_t z = lo[2]; z <= hi[2]; ++z) {
          const double w =
              wxy * kernel.value(static_cast<double>(static_cast<float>(z) - k[2]));
          grid[static_cast<std::size_t>(wrapm(x, g.m[0]) * st[0] + wrapm(y, g.m[1]) * st[1] +
                                        wrapm(z, g.m[2]))] += val * w;
        }
      }
    }
  }
  return grid;
}

// ---- the rejection path: footprint wider than the grid ----

void run_tiny_grid(const FuzzConfig& c, Report& rep) {
  const GridDesc g = fuzz_grid(c);
  const auto set = make_samples(c);

  // Plan construction must reject the geometry with a caller error.
  try {
    Nufft plan(g, set, base_config(c));
    rep.fail() << "Nufft accepted a grid narrower than the kernel footprint";
  } catch (const Error& e) {
    if (e.code() != ErrorCode::kInvalidInput) {
      rep.fail() << "Nufft rejected a tiny grid with code "
                 << static_cast<int>(e.code()) << ", want kInvalidInput";
    }
  }
  try {
    baselines::ReferenceNufft ref(g, set, c.kernel_radius, c.threads);
    rep.fail() << "ReferenceNufft accepted a grid narrower than the kernel footprint";
  } catch (const Error& e) {
    if (e.code() != ErrorCode::kInvalidInput) {
      rep.fail() << "ReferenceNufft rejected a tiny grid with code "
                 << static_cast<int>(e.code()) << ", want kInvalidInput";
    }
  }

  // The raw kernel-level baselines accept any grid and must produce the
  // fully-wrapped periodic convolution (the compute_window wrap regression).
  const auto kernel = kernels::make_kernel(c.kernel, c.kernel_radius, c.alpha);
  const kernels::KernelLut lut(*kernel, c.lut_samples_per_unit);
  const cvecf raw = random_complex(set.count(), c.seed ^ 0x94D049BB133111EBull);
  const auto want = brute_force_spread(g, *kernel, set, raw.data());

  ThreadPool pool(c.threads);
  cvecf atomic_grid(static_cast<std::size_t>(g.grid_elems()), cfloat(0, 0));
  baselines::spread_atomic(g, lut, set, raw.data(), atomic_grid.data(), pool);
  cvecf priv_grid(static_cast<std::size_t>(g.grid_elems()), cfloat(0, 0));
  baselines::spread_privatized(g, lut, set, raw.data(), priv_grid.data(), pool);

  // LUT interpolation plus multi-wrap accumulation bounds the error.
  const double tol = c.count > 0 ? 5e-3 : 0.0;
  rep.check_rel("spread_atomic vs brute-force periodic spread (tiny grid)",
                rel_err(atomic_grid.data(), want.data(), g.grid_elems()), tol);
  rep.check_rel("spread_privatized vs brute-force periodic spread (tiny grid)",
                rel_err(priv_grid.data(), want.data(), g.grid_elems()), tol);
}

// ---- the full differential battery ----

void check_stats_finite(const char* what, const OperatorStats& st, Report& rep) {
  if (std::isnan(st.load_imbalance())) {
    rep.fail() << what << ": load_imbalance is NaN";
  }
}

void run_full(const FuzzConfig& c, Report& rep) {
  const GridDesc g = fuzz_grid(c);
  const auto set = make_samples(c);
  const double tol = c.nudft_tolerance();

  const cvecf img_in = random_complex(g.image_elems(), c.seed ^ 0xBF58476D1CE4E5B9ull);
  const cvecf raw_in = random_complex(set.count(), c.seed ^ 0x94D049BB133111EBull);

  // Exact oracle, double precision throughout.
  ThreadPool pool(c.threads);
  std::vector<cdouble> fwd_ref(static_cast<std::size_t>(set.count()));
  std::vector<cdouble> adj_ref(static_cast<std::size_t>(g.image_elems()));
  baselines::nudft_forward(g, set, img_in.data(), fwd_ref.data(), pool);
  baselines::nudft_adjoint(g, set, raw_in.data(), adj_ref.data(), pool);

  struct Variant {
    const char* name;
    bool use_simd;
    SimdIsa isa;
  };
  std::vector<Variant> variants = {{"scalar", false, SimdIsa::kSse},
                                   {"sse", true, SimdIsa::kSse}};
  if (avx2_available()) variants.push_back({"avx2", true, SimdIsa::kAvx2});

  std::vector<std::unique_ptr<Nufft>> plans;
  std::vector<cvecf> fwd_got, adj_got;
  for (const auto& v : variants) {
    PlanConfig cfg = base_config(c);
    cfg.use_simd = v.use_simd;
    cfg.isa = v.isa;
    auto plan = std::make_unique<Nufft>(g, set, cfg);

    cvecf raw_out(static_cast<std::size_t>(set.count()));
    plan->forward(img_in.data(), raw_out.data());
    check_stats_finite(v.name, plan->last_forward_stats(), rep);

    cvecf img_out(static_cast<std::size_t>(g.image_elems()));
    plan->adjoint(raw_in.data(), img_out.data());
    check_stats_finite(v.name, plan->last_adjoint_stats(), rep);

    const std::string fname = std::string(v.name) + " forward vs NUDFT";
    const std::string aname = std::string(v.name) + " adjoint vs NUDFT";
    rep.check_rel(fname.c_str(), rel_err(raw_out.data(), fwd_ref.data(), set.count()), tol);
    rep.check_rel(aname.c_str(), rel_err(img_out.data(), adj_ref.data(), g.image_elems()), tol);

    if (!plans.empty()) {
      // Against the scalar path: identical windows and schedule, only
      // floating-point association differs.
      const std::string fx = std::string(v.name) + " forward vs scalar path";
      const std::string ax = std::string(v.name) + " adjoint vs scalar path";
      rep.check_rel(fx.c_str(), rel_err(raw_out.data(), fwd_got[0].data(), set.count()), 5e-4);
      rep.check_rel(ax.c_str(), rel_err(img_out.data(), adj_got[0].data(), g.image_elems()),
                    5e-4);
    }
    plans.push_back(std::move(plan));
    fwd_got.push_back(std::move(raw_out));
    adj_got.push_back(std::move(img_out));
  }
  Nufft& scalar_plan = *plans[0];

  // Zero-sample semantics: the adjoint of an empty raw vector is exactly
  // the zero image on every path.
  if (c.count == 0) {
    for (std::size_t v = 0; v < variants.size(); ++v) {
      for (const cfloat x : adj_got[v]) {
        if (x != cfloat(0.0f, 0.0f)) {
          rep.fail() << variants[v].name << " adjoint of an empty sample set is not exactly 0";
          break;
        }
      }
    }
  }

  // Batched applies: every slice must match a single apply on the same plan.
  if (c.batch > 1) {
    Nufft& bplan = *plans.back();  // widest available SIMD path
    exec::BatchNufft batch(bplan, c.batch);
    std::vector<cvecf> imgs, raws_out, raws_in, imgs_out;
    std::vector<const cfloat*> img_ptrs, rawin_ptrs;
    std::vector<cfloat*> rawout_ptrs, imgout_ptrs;
    for (index_t b = 0; b < c.batch; ++b) {
      imgs.push_back(random_complex(g.image_elems(),
                                    c.seed ^ (0xA076u + static_cast<std::uint64_t>(b) * 77)));
      raws_in.push_back(random_complex(set.count(),
                                       c.seed ^ (0xB152u + static_cast<std::uint64_t>(b) * 131)));
      raws_out.emplace_back(static_cast<std::size_t>(set.count()));
      imgs_out.emplace_back(static_cast<std::size_t>(g.image_elems()));
    }
    for (index_t b = 0; b < c.batch; ++b) {
      img_ptrs.push_back(imgs[static_cast<std::size_t>(b)].data());
      rawin_ptrs.push_back(raws_in[static_cast<std::size_t>(b)].data());
      rawout_ptrs.push_back(raws_out[static_cast<std::size_t>(b)].data());
      imgout_ptrs.push_back(imgs_out[static_cast<std::size_t>(b)].data());
    }
    batch.forward(img_ptrs.data(), rawout_ptrs.data(), c.batch);
    batch.adjoint(rawin_ptrs.data(), imgout_ptrs.data(), c.batch);

    cvecf single_raw(static_cast<std::size_t>(set.count()));
    cvecf single_img(static_cast<std::size_t>(g.image_elems()));
    for (index_t b = 0; b < c.batch; ++b) {
      bplan.forward(imgs[static_cast<std::size_t>(b)].data(), single_raw.data());
      const std::string fn = "batch slice " + std::to_string(b) + " forward vs single apply";
      rep.check_rel(fn.c_str(),
                    rel_err(raws_out[static_cast<std::size_t>(b)].data(), single_raw.data(),
                            set.count()),
                    5e-4);
      bplan.adjoint(raws_in[static_cast<std::size_t>(b)].data(), single_img.data());
      const std::string an = "batch slice " + std::to_string(b) + " adjoint vs single apply";
      rep.check_rel(an.c_str(),
                    rel_err(imgs_out[static_cast<std::size_t>(b)].data(), single_img.data(),
                            g.image_elems()),
                    5e-4);
    }
  }

  // Raw kernel-level baselines against the plan's deterministic spread.
  // With the LUT evaluator the two sides share identical kernel weights and
  // only the reduction strategy differs; a Horner-evaluated plan differs
  // from the baselines' LUT by the evaluator delta, dominated by the ES
  // kernel's sqrt-singular support edge (scale exp(−β)).
  {
    const auto kernel = kernels::make_kernel(c.kernel, c.kernel_radius, c.alpha);
    const kernels::KernelLut lut(*kernel, c.lut_samples_per_unit);
    scalar_plan.spread(raw_in.data());
    const cfloat* plan_grid = scalar_plan.grid_data();

    double spread_tol = 1e-3;
    if (c.eval == kernels::KernelEval::kHorner && c.kernel == kernels::KernelType::kEs) {
      spread_tol += 5.0 * std::exp(-kernels::EsKernel::es_beta(c.kernel_radius, c.alpha));
    }

    cvecf atomic_grid(static_cast<std::size_t>(g.grid_elems()), cfloat(0, 0));
    baselines::spread_atomic(g, lut, set, raw_in.data(), atomic_grid.data(), pool);
    rep.check_rel("spread_atomic vs plan spread",
                  rel_err(atomic_grid.data(), plan_grid, g.grid_elems()), spread_tol);

    cvecf priv_grid(static_cast<std::size_t>(g.grid_elems()), cfloat(0, 0));
    baselines::spread_privatized(g, lut, set, raw_in.data(), priv_grid.data(), pool);
    rep.check_rel("spread_privatized vs plan spread",
                  rel_err(priv_grid.data(), plan_grid, g.grid_elems()), spread_tol);
  }

  // Streaming trajectory deltas (DESIGN.md §15): jitter a fraction of the
  // samples per frame, stream the frames through update_samples on one
  // resident plan, and hold the warm path to both contracts at once — the
  // accuracy contract (forward/adjoint vs the exact NUDFT on the *new*
  // coordinates) and the determinism contract (bit-exact agreement with a
  // cold plan of the same frame; tol 0.0 means any nonzero diff fails).
  if (c.update_frames > 0 && c.count > 0) {
    const PlanConfig cfg = base_config(c);
    Nufft stream(g, set, cfg);
    datasets::SampleSet frame = set;
    Rng jrng(c.seed ^ 0x9FB21C651E98DF25ull);
    for (int f = 0; f < c.update_frames; ++f) {
      for (index_t i = 0; i < c.count; ++i) {
        if (!(jrng.uniform(0.0, 1.0) < c.jitter_fraction)) continue;
        for (int d = 0; d < c.dim; ++d) {
          auto& v = frame.coords[static_cast<std::size_t>(d)][static_cast<std::size_t>(i)];
          v = clamp_coord(static_cast<double>(v) +
                              jrng.normal(0.0, static_cast<double>(c.m) / 16.0),
                          c.m);
        }
      }
      stream.update_samples(frame);

      std::vector<cdouble> ffwd(static_cast<std::size_t>(frame.count()));
      std::vector<cdouble> fadj(static_cast<std::size_t>(g.image_elems()));
      baselines::nudft_forward(g, frame, img_in.data(), ffwd.data(), pool);
      baselines::nudft_adjoint(g, frame, raw_in.data(), fadj.data(), pool);

      cvecf raw_out(static_cast<std::size_t>(frame.count()));
      cvecf img_out(static_cast<std::size_t>(g.image_elems()));
      stream.forward(img_in.data(), raw_out.data());
      stream.adjoint(raw_in.data(), img_out.data());
      const std::string tag = "frame " + std::to_string(f);
      const std::string fn = "updated plan forward vs NUDFT (" + tag + ")";
      const std::string an = "updated plan adjoint vs NUDFT (" + tag + ")";
      rep.check_rel(fn.c_str(), rel_err(raw_out.data(), ffwd.data(), frame.count()), tol);
      rep.check_rel(an.c_str(), rel_err(img_out.data(), fadj.data(), g.image_elems()), tol);

      Nufft cold(g, frame, cfg);
      cvecf raw_cold(static_cast<std::size_t>(frame.count()));
      cvecf img_cold(static_cast<std::size_t>(g.image_elems()));
      cold.forward(img_in.data(), raw_cold.data());
      cold.adjoint(raw_in.data(), img_cold.data());
      const std::string fx = "updated plan forward vs cold rebuild (" + tag + ", bit-exact)";
      const std::string ax = "updated plan adjoint vs cold rebuild (" + tag + ", bit-exact)";
      rep.check_rel(fx.c_str(), rel_err(raw_out.data(), raw_cold.data(), frame.count()), 0.0);
      rep.check_rel(ax.c_str(), rel_err(img_out.data(), img_cold.data(), g.image_elems()), 0.0);
    }
  }

  // The full-grid-privatization reference operator (Kaiser–Bessel only —
  // its constructor hard-codes the paper's kernel).
  if (c.kernel == kernels::KernelType::kKaiserBessel) {
    baselines::ReferenceNufft ref(g, set, c.kernel_radius, c.threads);
    cvecf raw_out(static_cast<std::size_t>(set.count()));
    ref.forward(img_in.data(), raw_out.data());
    rep.check_rel("ReferenceNufft forward vs NUDFT",
                  rel_err(raw_out.data(), fwd_ref.data(), set.count()), tol);
    cvecf img_out(static_cast<std::size_t>(g.image_elems()));
    ref.adjoint(raw_in.data(), img_out.data());
    rep.check_rel("ReferenceNufft adjoint vs NUDFT",
                  rel_err(img_out.data(), adj_ref.data(), g.image_elems()), tol);
  }
}

}  // namespace

std::vector<std::string> run_differential(const FuzzConfig& c) {
  Report rep(c);
  try {
    if (c.footprint_exceeds_grid()) {
      run_tiny_grid(c, rep);
    } else {
      run_full(c, rep);
    }
  } catch (const std::exception& e) {
    rep.fail() << "unexpected exception: " << e.what();
  }
  return rep.finish();
}

}  // namespace nufft::fuzz
