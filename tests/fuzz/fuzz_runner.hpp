// Differential execution of one fuzz configuration across every execution
// path the library ships, checked against the exact double-precision NUDFT
// and against each other. Assertion-free: failures come back as strings
// (each embedding the seed and the config description) so the gtest driver
// can aggregate a whole sweep and print one reproduction line per failure.
#pragma once

#include <string>
#include <vector>

#include "fuzz/fuzz_config.hpp"

namespace nufft::fuzz {

/// Run the full differential battery for one configuration:
///
///  * grids narrower than the kernel footprint: Nufft / ReferenceNufft
///    construction must throw kInvalidInput, and the raw kernel-level
///    baselines (spread_atomic, spread_privatized) must still match a
///    double-precision fully-wrapped brute-force spread;
///  * otherwise: Nufft scalar / SSE / AVX2 (when the CPU has it) forward and
///    adjoint against the NUDFT oracle and against each other, BatchNufft
///    slices against single applies, spread_atomic / spread_privatized
///    against the plan's deterministic spread, ReferenceNufft against the
///    oracle, empty-plan zero semantics, and NaN-free operator stats.
///
/// Returns one message per violated property; empty means the config passed.
std::vector<std::string> run_differential(const FuzzConfig& c);

}  // namespace nufft::fuzz
