// Tests for the Toeplitz-embedded normal operator.
#include <gtest/gtest.h>

#include <cmath>

#include "core/nufft.hpp"
#include "core/toeplitz.hpp"
#include "mri/dcf.hpp"
#include "test_util.hpp"

namespace nufft {
namespace {

using datasets::TrajectoryType;

class ToeplitzSweep : public ::testing::TestWithParam<std::tuple<int, TrajectoryType>> {};

TEST_P(ToeplitzSweep, MatchesForwardAdjointPair) {
  const auto [dim, type] = GetParam();
  const index_t N = dim == 3 ? 10 : 24;
  const GridDesc g = make_grid(dim, N, 2.0);
  const auto set = testing::small_trajectory(type, dim, N, dim == 3 ? 800 : 1200);

  PlanConfig cfg;
  cfg.threads = 2;
  Nufft plan(g, set, cfg);
  ToeplitzNormal normal(g, set, cfg);

  const cvecf x = testing::random_image(g.image_elems(), 3);
  cvecf raw(static_cast<std::size_t>(set.count()));
  cvecf via_pair(static_cast<std::size_t>(g.image_elems()));
  plan.forward(x.data(), raw.data());
  plan.adjoint(raw.data(), via_pair.data());

  cvecf via_toeplitz(static_cast<std::size_t>(g.image_elems()));
  normal.apply(x.data(), via_toeplitz.data());

  // Both approximate the exact AᴴA; their mutual error is bounded by the
  // gridding accuracy (~1e-4 relative at W=4 in single precision).
  EXPECT_LT(testing::rel_err(via_toeplitz.data(), via_pair.data(), g.image_elems()), 2e-3);
}

INSTANTIATE_TEST_SUITE_P(Sweep, ToeplitzSweep,
                         ::testing::Combine(::testing::Values(1, 2, 3),
                                            ::testing::Values(TrajectoryType::kRadial,
                                                              TrajectoryType::kRandom)),
                         [](const auto& info) {
                           return "d" + std::to_string(std::get<0>(info.param)) + "_" +
                                  datasets::trajectory_name(std::get<1>(info.param));
                         });

TEST(Toeplitz, OperatorIsHermitian) {
  const GridDesc g = make_grid(2, 20, 2.0);
  const auto set = testing::small_trajectory(TrajectoryType::kRandom, 2, 20, 800);
  PlanConfig cfg;
  ToeplitzNormal normal(g, set, cfg);
  const cvecf x = testing::random_image(g.image_elems(), 4);
  const cvecf y = testing::random_image(g.image_elems(), 5);
  cvecf qx(x.size()), qy(y.size());
  normal.apply(x.data(), qx.data());
  normal.apply(y.data(), qy.data());
  cdouble lhs(0, 0), rhs(0, 0);
  for (index_t i = 0; i < g.image_elems(); ++i) {
    lhs += cdouble(qx[static_cast<std::size_t>(i)].real(), qx[static_cast<std::size_t>(i)].imag()) *
           std::conj(cdouble(y[static_cast<std::size_t>(i)].real(), y[static_cast<std::size_t>(i)].imag()));
    rhs += cdouble(x[static_cast<std::size_t>(i)].real(), x[static_cast<std::size_t>(i)].imag()) *
           std::conj(cdouble(qy[static_cast<std::size_t>(i)].real(), qy[static_cast<std::size_t>(i)].imag()));
  }
  EXPECT_LT(std::abs(lhs - rhs) / std::abs(lhs), 1e-4);
}

TEST(Toeplitz, OperatorIsPositive) {
  const GridDesc g = make_grid(2, 16, 2.0);
  const auto set = testing::small_trajectory(TrajectoryType::kRadial, 2, 16, 600);
  PlanConfig cfg;
  ToeplitzNormal normal(g, set, cfg);
  for (std::uint64_t seed : {10u, 11u, 12u}) {
    const cvecf x = testing::random_image(g.image_elems(), seed);
    cvecf qx(x.size());
    normal.apply(x.data(), qx.data());
    cdouble dot(0, 0);
    for (index_t i = 0; i < g.image_elems(); ++i) {
      dot += cdouble(qx[static_cast<std::size_t>(i)].real(), qx[static_cast<std::size_t>(i)].imag()) *
             std::conj(cdouble(x[static_cast<std::size_t>(i)].real(), x[static_cast<std::size_t>(i)].imag()));
    }
    EXPECT_GT(dot.real(), 0.0);
    EXPECT_LT(std::abs(dot.imag()), 1e-3 * dot.real());
  }
}

TEST(Toeplitz, InPlaceApplyAllowed) {
  const GridDesc g = make_grid(2, 16, 2.0);
  const auto set = testing::small_trajectory(TrajectoryType::kSpiral, 2, 16, 400);
  PlanConfig cfg;
  ToeplitzNormal normal(g, set, cfg);
  cvecf x = testing::random_image(g.image_elems(), 6);
  cvecf out(x.size());
  normal.apply(x.data(), out.data());
  normal.apply(x.data(), x.data());  // in place
  for (index_t i = 0; i < g.image_elems(); ++i) {
    ASSERT_EQ(x[static_cast<std::size_t>(i)], out[static_cast<std::size_t>(i)]);
  }
}

TEST(Toeplitz, WeightedOperatorMatchesWeightedPair) {
  const GridDesc g = make_grid(2, 16, 2.0);
  const auto set = testing::small_trajectory(TrajectoryType::kRadial, 2, 16, 900);
  PlanConfig cfg;
  Nufft plan(g, set, cfg);
  const fvec w = mri::radial_ramp_dcf(g, set);
  ToeplitzNormal normal(g, set, cfg, w.data());

  const cvecf x = testing::random_image(g.image_elems(), 7);
  cvecf raw(static_cast<std::size_t>(set.count()));
  plan.forward(x.data(), raw.data());
  for (index_t i = 0; i < set.count(); ++i) {
    raw[static_cast<std::size_t>(i)] *= w[static_cast<std::size_t>(i)];
  }
  cvecf via_pair(x.size());
  plan.adjoint(raw.data(), via_pair.data());

  cvecf via_toeplitz(x.size());
  normal.apply(x.data(), via_toeplitz.data());
  EXPECT_LT(testing::rel_err(via_toeplitz.data(), via_pair.data(), g.image_elems()), 2e-3);
}

}  // namespace
}  // namespace nufft
