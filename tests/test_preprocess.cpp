// Tests for plan preprocessing: binning, reordering, task boxes,
// privatization threshold (Eq. 6).
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>

#include "common/error.hpp"
#include "core/preprocess.hpp"
#include "test_util.hpp"

namespace nufft {
namespace {

using datasets::TrajectoryType;

PlanConfig test_config(int threads) {
  PlanConfig cfg;
  cfg.threads = threads;
  cfg.kernel_radius = 2.0;
  return cfg;
}

TEST(PrivatizationThreshold, MatchesEquationSix) {
  // Threshold = M / (P · 2^{d+1}).
  EXPECT_EQ(privatization_threshold(16000, 10, 3, 1.0), 16000 / (10 * 16));
  EXPECT_EQ(privatization_threshold(16000, 10, 2, 1.0), 16000 / (10 * 8));
  EXPECT_EQ(privatization_threshold(16000, 10, 1, 1.0), 16000 / (10 * 4));
}

TEST(PrivatizationThreshold, FactorScalesAndFloorIsOne) {
  EXPECT_EQ(privatization_threshold(16000, 10, 3, 2.0), 2 * (16000 / 160));
  EXPECT_EQ(privatization_threshold(1, 64, 3, 1.0), 1);
}

TEST(Preprocess, OrderIsAPermutation) {
  const GridDesc g = make_grid(2, 32, 2.0);
  const auto set = testing::small_trajectory(TrajectoryType::kRandom, 2, 32, 2000);
  const auto pp = preprocess(g, set, test_config(4));
  ASSERT_EQ(static_cast<index_t>(pp.orig_index.size()), set.count());
  std::vector<index_t> sorted = pp.orig_index;
  std::sort(sorted.begin(), sorted.end());
  for (index_t i = 0; i < set.count(); ++i) ASSERT_EQ(sorted[static_cast<std::size_t>(i)], i);
}

TEST(Preprocess, ReorderedCoordsMatchMapping) {
  const GridDesc g = make_grid(2, 32, 2.0);
  const auto set = testing::small_trajectory(TrajectoryType::kRadial, 2, 32, 2000);
  const auto pp = preprocess(g, set, test_config(4));
  for (index_t i = 0; i < set.count(); ++i) {
    const index_t orig = pp.orig_index[static_cast<std::size_t>(i)];
    for (int d = 0; d < 2; ++d) {
      ASSERT_EQ(pp.coords[static_cast<std::size_t>(d)][static_cast<std::size_t>(i)],
                set.coords[static_cast<std::size_t>(d)][static_cast<std::size_t>(orig)]);
    }
  }
}

TEST(Preprocess, EverySampleInsideItsTaskPartition) {
  const GridDesc g = make_grid(3, 16, 2.0);
  const auto set = testing::small_trajectory(TrajectoryType::kRandom, 3, 16, 3000);
  const auto pp = preprocess(g, set, test_config(4));
  for (std::size_t k = 0; k < pp.tasks.size(); ++k) {
    const ConvTask& task = pp.tasks[k];
    const TaskNode& node = pp.graph->node(static_cast<int>(k));
    for (index_t i = task.begin; i < task.end; ++i) {
      for (int d = 0; d < 3; ++d) {
        const float c = pp.coords[static_cast<std::size_t>(d)][static_cast<std::size_t>(i)];
        const auto& b = pp.layout.bounds[static_cast<std::size_t>(d)];
        const auto pc = static_cast<std::size_t>(node.pcoord[static_cast<std::size_t>(d)]);
        ASSERT_GE(c, static_cast<float>(b[pc]));
        ASSERT_LT(c, static_cast<float>(b[pc + 1]));
      }
    }
  }
}

TEST(Preprocess, TaskRangesPartitionAllSamples) {
  const GridDesc g = make_grid(3, 16, 2.0);
  const auto set = testing::small_trajectory(TrajectoryType::kSpiral, 3, 16, 3000);
  const auto pp = preprocess(g, set, test_config(2));
  index_t total = 0;
  index_t prev_end = 0;
  for (const auto& task : pp.tasks) {
    ASSERT_EQ(task.begin, prev_end);
    prev_end = task.end;
    total += task.count();
  }
  EXPECT_EQ(total, set.count());
}

TEST(Preprocess, WeightsEqualTaskSampleCounts) {
  const GridDesc g = make_grid(2, 32, 2.0);
  const auto set = testing::small_trajectory(TrajectoryType::kRandom, 2, 32, 1000);
  const auto pp = preprocess(g, set, test_config(4));
  for (std::size_t k = 0; k < pp.tasks.size(); ++k) {
    EXPECT_EQ(pp.weights[k], pp.tasks[k].count());
  }
}

TEST(Preprocess, TaskBoxesCoverPartitionPlusKernelRadius) {
  PlanConfig cfg = test_config(4);
  cfg.kernel_radius = 2.5;
  const GridDesc g = make_grid(2, 32, 2.0);
  const auto set = testing::small_trajectory(TrajectoryType::kRandom, 2, 32, 1000);
  const auto pp = preprocess(g, set, cfg);
  for (std::size_t k = 0; k < pp.tasks.size(); ++k) {
    const TaskNode& node = pp.graph->node(static_cast<int>(k));
    for (int d = 0; d < 2; ++d) {
      const auto& b = pp.layout.bounds[static_cast<std::size_t>(d)];
      const auto pc = static_cast<std::size_t>(node.pcoord[static_cast<std::size_t>(d)]);
      EXPECT_EQ(pp.tasks[k].box_lo[static_cast<std::size_t>(d)], b[pc] - 3);  // ceil(2.5)
      EXPECT_EQ(pp.tasks[k].box_hi[static_cast<std::size_t>(d)], b[pc + 1] + 3);
    }
  }
}

TEST(Preprocess, PrivatizationMarksOnlyOverThresholdTasks) {
  // Radial data concentrates samples at the center: with enough threads the
  // central tasks must be privatized, sparse edge tasks must not.
  const GridDesc g = make_grid(2, 64, 2.0);
  const auto set = testing::small_trajectory(TrajectoryType::kRadial, 2, 64, 20000);
  PlanConfig cfg = test_config(8);
  const auto pp = preprocess(g, set, cfg);
  int priv = 0;
  for (std::size_t k = 0; k < pp.tasks.size(); ++k) {
    if (pp.privatized[k]) {
      ++priv;
      EXPECT_GT(pp.tasks[k].count(), pp.privatization_threshold);
    } else {
      EXPECT_LE(pp.tasks[k].count(), pp.privatization_threshold);
    }
  }
  EXPECT_EQ(pp.stats.privatized_tasks, priv);
}

TEST(Preprocess, NoPrivatizationWhenDisabledOrSingleThread) {
  const GridDesc g = make_grid(2, 32, 2.0);
  const auto set = testing::small_trajectory(TrajectoryType::kRadial, 2, 32, 5000);
  PlanConfig cfg = test_config(1);
  auto pp = preprocess(g, set, cfg);
  EXPECT_EQ(pp.stats.privatized_tasks, 0);

  cfg = test_config(8);
  cfg.selective_privatization = false;
  pp = preprocess(g, set, cfg);
  EXPECT_EQ(pp.stats.privatized_tasks, 0);
}

TEST(Preprocess, ReorderImprovesTileLocality) {
  // Within one task, consecutive samples must visit grid cells in tile-scan
  // order: the sequence of tile keys is non-decreasing.
  const GridDesc g = make_grid(2, 32, 2.0);
  const auto set = testing::small_trajectory(TrajectoryType::kRandom, 2, 32, 4000);
  PlanConfig cfg = test_config(2);
  cfg.reorder_tile = 8;
  const auto pp = preprocess(g, set, cfg);
  for (const auto& task : pp.tasks) {
    std::uint64_t prev = 0;
    for (index_t i = task.begin; i < task.end; ++i) {
      const auto cx = static_cast<std::uint64_t>(pp.coords[0][static_cast<std::size_t>(i)]) / 8;
      const auto cy = static_cast<std::uint64_t>(pp.coords[1][static_cast<std::size_t>(i)]) / 8;
      const std::uint64_t key = (cx << 32) | cy;
      ASSERT_GE(key, prev) << "tile order violated inside a task";
      prev = key;
    }
  }
}

TEST(Preprocess, DisablingReorderKeepsBinOrder) {
  const GridDesc g = make_grid(2, 32, 2.0);
  const auto set = testing::small_trajectory(TrajectoryType::kRandom, 2, 32, 2000);
  PlanConfig cfg = test_config(2);
  cfg.reorder = false;
  const auto pp = preprocess(g, set, cfg);
  // Without reorder, samples within a task keep their original relative
  // order (stable counting sort).
  for (const auto& task : pp.tasks) {
    for (index_t i = task.begin + 1; i < task.end; ++i) {
      ASSERT_LT(pp.orig_index[static_cast<std::size_t>(i - 1)],
                pp.orig_index[static_cast<std::size_t>(i)]);
    }
  }
}

TEST(Preprocess, FixedLayoutRequestedViaConfig) {
  const GridDesc g = make_grid(2, 32, 2.0);
  const auto set = testing::small_trajectory(TrajectoryType::kRadial, 2, 32, 2000);
  PlanConfig cfg = test_config(4);
  cfg.variable_partitions = false;
  const auto pp = preprocess(g, set, cfg);
  // Fixed layout: all interior widths equal.
  for (int d = 0; d < 2; ++d) {
    const auto& b = pp.layout.bounds[static_cast<std::size_t>(d)];
    std::set<index_t> widths;
    for (std::size_t p = 0; p + 2 < b.size(); ++p) widths.insert(b[p + 1] - b[p]);
    EXPECT_LE(widths.size(), 2u);  // interior width + possibly merged tail
  }
}

TEST(Preprocess, StatsArePopulated) {
  const GridDesc g = make_grid(3, 16, 2.0);
  const auto set = testing::small_trajectory(TrajectoryType::kSpiral, 3, 16, 3000);
  const auto pp = preprocess(g, set, test_config(4));
  EXPECT_GT(pp.stats.total_s, 0.0);
  EXPECT_EQ(pp.stats.tasks, static_cast<int>(pp.tasks.size()));
  EXPECT_GT(pp.stats.tasks, 0);
}

TEST(Preprocess, RejectsKernelWiderThanGrid) {
  const GridDesc g = make_grid(1, 4, 2.0);  // M = 8
  const auto set = testing::small_trajectory(TrajectoryType::kRandom, 1, 4, 50);
  PlanConfig cfg = test_config(1);
  cfg.kernel_radius = 8.0;  // footprint 17 > M
  EXPECT_THROW(preprocess(g, set, cfg), Error);
}

}  // namespace
}  // namespace nufft
