// Tests for plan serialization / restoration ("wisdom", paper §V-E).
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/error.hpp"
#include "common/timer.hpp"
#include "core/nufft.hpp"
#include "core/plan_cache.hpp"
#include "core/tolerance.hpp"
#include "test_util.hpp"

namespace nufft {
namespace {

using datasets::TrajectoryType;

struct Fixture {
  GridDesc g;
  datasets::SampleSet set;
  PlanConfig cfg;

  explicit Fixture(int dim = 2, index_t n = 32, index_t count = 3000)
      : g(make_grid(dim, n, 2.0)),
        set(testing::small_trajectory(TrajectoryType::kRadial, dim, n, count)) {
    cfg.threads = 4;
  }
};

TEST(PlanCache, RoundTripPreservesEveryField) {
  Fixture f;
  const auto pp = preprocess(f.g, f.set, f.cfg);
  const auto blob = serialize_plan(pp, f.g, f.cfg);
  const auto back = deserialize_plan(blob.data(), blob.size(), f.g, f.set, f.cfg);

  ASSERT_EQ(back.layout.dim, pp.layout.dim);
  for (int d = 0; d < f.g.dim; ++d) {
    EXPECT_EQ(back.layout.bounds[static_cast<std::size_t>(d)],
              pp.layout.bounds[static_cast<std::size_t>(d)]);
  }
  ASSERT_EQ(back.tasks.size(), pp.tasks.size());
  for (std::size_t k = 0; k < pp.tasks.size(); ++k) {
    EXPECT_EQ(back.tasks[k].begin, pp.tasks[k].begin);
    EXPECT_EQ(back.tasks[k].end, pp.tasks[k].end);
    EXPECT_EQ(back.tasks[k].box_lo, pp.tasks[k].box_lo);
    EXPECT_EQ(back.tasks[k].box_hi, pp.tasks[k].box_hi);
  }
  EXPECT_EQ(back.privatized, pp.privatized);
  EXPECT_EQ(back.privatization_threshold, pp.privatization_threshold);
  EXPECT_EQ(back.orig_index, pp.orig_index);
  EXPECT_EQ(back.weights, pp.weights);
  for (int d = 0; d < f.g.dim; ++d) {
    EXPECT_EQ(back.coords[static_cast<std::size_t>(d)], pp.coords[static_cast<std::size_t>(d)]);
  }
}

TEST(PlanCache, RestoredPlanProducesIdenticalTransforms) {
  Fixture f;
  auto pp = preprocess(f.g, f.set, f.cfg);
  const auto blob = serialize_plan(pp, f.g, f.cfg);

  Nufft fresh(f.g, f.set, f.cfg);
  Nufft restored(f.g, f.set, f.cfg,
                 deserialize_plan(blob.data(), blob.size(), f.g, f.set, f.cfg));

  const cvecf img = testing::random_image(f.g.image_elems(), 1);
  const cvecf raw = testing::random_raw(f.set.count(), 2);
  cvecf raw_a(raw.size()), raw_b(raw.size());
  fresh.forward(img.data(), raw_a.data());
  restored.forward(img.data(), raw_b.data());
  for (index_t i = 0; i < f.set.count(); ++i) {
    ASSERT_EQ(raw_a[static_cast<std::size_t>(i)], raw_b[static_cast<std::size_t>(i)]);
  }
  cvecf img_a(img.size()), img_b(img.size());
  fresh.adjoint(raw.data(), img_a.data());
  restored.adjoint(raw.data(), img_b.data());
  for (index_t i = 0; i < f.g.image_elems(); ++i) {
    ASSERT_EQ(img_a[static_cast<std::size_t>(i)], img_b[static_cast<std::size_t>(i)]);
  }
}

TEST(PlanCache, FileRoundTrip) {
  Fixture f(3, 12, 500);
  const auto pp = preprocess(f.g, f.set, f.cfg);
  const auto path = std::filesystem::temp_directory_path() / "nufft_plan_test.bin";
  save_plan(path.string(), pp, f.g, f.cfg);
  const auto back = load_plan(path.string(), f.g, f.set, f.cfg);
  EXPECT_EQ(back.orig_index, pp.orig_index);
  std::filesystem::remove(path);
}

TEST(PlanCache, RejectsWrongGrid) {
  Fixture f;
  const auto pp = preprocess(f.g, f.set, f.cfg);
  const auto blob = serialize_plan(pp, f.g, f.cfg);
  const GridDesc other = make_grid(2, 64, 2.0);
  EXPECT_THROW(deserialize_plan(blob.data(), blob.size(), other, f.set, f.cfg), Error);
}

TEST(PlanCache, RejectsWrongDimension) {
  Fixture f;
  const auto pp = preprocess(f.g, f.set, f.cfg);
  const auto blob = serialize_plan(pp, f.g, f.cfg);
  const GridDesc g3 = make_grid(3, 32, 2.0);
  const auto set3 = testing::small_trajectory(TrajectoryType::kRadial, 3, 32, 3000);
  EXPECT_THROW(deserialize_plan(blob.data(), blob.size(), g3, set3, f.cfg), Error);
}

TEST(PlanCache, RejectsDifferentKernelIdentity) {
  // A blob serialized under one kernel must not restore under another: the
  // v2 format carries the resolved kernel identity precisely so two plans
  // differing only in kernel never alias through the cache.
  Fixture f;
  const auto pp = preprocess(f.g, f.set, f.cfg);
  const auto blob = serialize_plan(pp, f.g, f.cfg);

  PlanConfig es = f.cfg;
  es.kernel = kernels::KernelType::kEs;
  es.eval = kernels::KernelEval::kHorner;
  EXPECT_THROW(deserialize_plan(blob.data(), blob.size(), f.g, f.set, es), Error);

  PlanConfig wider = f.cfg;
  wider.kernel_radius = f.cfg.kernel_radius + 0.5;
  EXPECT_THROW(deserialize_plan(blob.data(), blob.size(), f.g, f.set, wider), Error);

  PlanConfig denser = f.cfg;
  denser.lut_samples_per_unit = 2 * f.cfg.lut_samples_per_unit;
  EXPECT_THROW(deserialize_plan(blob.data(), blob.size(), f.g, f.set, denser), Error);
}

TEST(PlanCache, DispatchIdentityMismatchRejected) {
  // v3 records the convolution dispatch identity (specialize_conv, dim,
  // calibrated width2, evaluator): a blob serialized under the specialized
  // hot path must not restore into a plan configured for the generic loop
  // (or vice versa) — that plan would silently run a different convolution
  // path than the one it was validated with.
  Fixture f;
  const auto pp = preprocess(f.g, f.set, f.cfg);
  const auto blob = serialize_plan(pp, f.g, f.cfg);

  PlanConfig other = f.cfg;
  other.specialize_conv = !other.specialize_conv;
  EXPECT_THROW(deserialize_plan(blob.data(), blob.size(), f.g, f.set, other), Error);
}

TEST(PlanCache, ToleranceConfigCanonicalizesToResolvedIdentity) {
  // Serializing under an explicit config and restoring under the
  // tolerance-driven config that resolves to the same parameters must work:
  // both name the same plan.
  Fixture f;
  f.cfg.kernel = kernels::KernelType::kEs;
  f.cfg.tolerance = 1e-3;
  PlanConfig resolved = f.cfg;
  apply_tolerance(resolved, f.g.alpha);
  const auto pp = preprocess(f.g, f.set, resolved);
  const auto blob = serialize_plan(pp, f.g, resolved);
  const auto back = deserialize_plan(blob.data(), blob.size(), f.g, f.set, f.cfg);
  EXPECT_EQ(back.orig_index, pp.orig_index);
}

TEST(PlanCache, RejectsWrongSampleCount) {
  Fixture f;
  const auto pp = preprocess(f.g, f.set, f.cfg);
  const auto blob = serialize_plan(pp, f.g, f.cfg);
  const auto other = testing::small_trajectory(TrajectoryType::kRadial, 2, 32, 500);
  EXPECT_THROW(deserialize_plan(blob.data(), blob.size(), f.g, other, f.cfg), Error);
}

TEST(PlanCache, RejectsTruncatedBlob) {
  Fixture f;
  const auto pp = preprocess(f.g, f.set, f.cfg);
  auto blob = serialize_plan(pp, f.g, f.cfg);
  blob.resize(blob.size() / 2);
  EXPECT_THROW(deserialize_plan(blob.data(), blob.size(), f.g, f.set, f.cfg), Error);
}

TEST(PlanCache, RejectsCorruptPermutation) {
  Fixture f;
  const auto pp = preprocess(f.g, f.set, f.cfg);
  auto blob = serialize_plan(pp, f.g, f.cfg);
  // The permutation occupies the blob tail; duplicate one entry.
  auto* tail = reinterpret_cast<index_t*>(blob.data() + blob.size() - 2 * sizeof(index_t));
  tail[0] = tail[1];
  EXPECT_THROW(deserialize_plan(blob.data(), blob.size(), f.g, f.set, f.cfg), Error);
}

TEST(PlanCache, RejectsGarbageMagic) {
  Fixture f;
  const auto pp = preprocess(f.g, f.set, f.cfg);
  auto blob = serialize_plan(pp, f.g, f.cfg);
  blob[0] ^= 0xFF;
  EXPECT_THROW(deserialize_plan(blob.data(), blob.size(), f.g, f.set, f.cfg), Error);
}

ErrorCode load_error_code(const std::string& path, const GridDesc& g,
                          const datasets::SampleSet& set, const PlanConfig& cfg) {
  try {
    load_plan(path, g, set, cfg);
  } catch (const Error& e) {
    return e.code();
  }
  ADD_FAILURE() << "load_plan unexpectedly succeeded";
  return ErrorCode::kInternal;
}

TEST(PlanCache, CorruptSpillFileIsDetectedByChecksum) {
  Fixture f;
  const auto pp = preprocess(f.g, f.set, f.cfg);
  const auto path = std::filesystem::temp_directory_path() / "nufft_plan_corrupt.bin";
  save_plan(path.string(), pp, f.g, f.cfg);

  // Flip one payload byte in the middle of the file: the structural checks
  // may or may not notice, but the file checksum always must.
  const auto size = std::filesystem::file_size(path);
  {
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    file.seekg(static_cast<std::streamoff>(size / 2));
    char byte = 0;
    file.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x5a);
    file.seekp(static_cast<std::streamoff>(size / 2));
    file.write(&byte, 1);
  }
  EXPECT_EQ(load_error_code(path.string(), f.g, f.set, f.cfg), ErrorCode::kIoCorruption);
  std::filesystem::remove(path);
}

TEST(PlanCache, TruncatedSpillFileIsRejected) {
  Fixture f;
  const auto pp = preprocess(f.g, f.set, f.cfg);
  const auto path = std::filesystem::temp_directory_path() / "nufft_plan_trunc.bin";
  save_plan(path.string(), pp, f.g, f.cfg);
  const auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size / 2);
  EXPECT_EQ(load_error_code(path.string(), f.g, f.set, f.cfg), ErrorCode::kIoCorruption);
  // Even a file shorter than the header must fail cleanly.
  std::filesystem::resize_file(path, 3);
  EXPECT_EQ(load_error_code(path.string(), f.g, f.set, f.cfg), ErrorCode::kIoCorruption);
  std::filesystem::remove(path);
}

TEST(PlanCache, ErrorCodesDistinguishCorruptionFromStaleGeometry) {
  Fixture f;
  const auto pp = preprocess(f.g, f.set, f.cfg);
  const auto blob = serialize_plan(pp, f.g, f.cfg);

  // Blob-integrity failures carry kIoCorruption...
  auto truncated = blob;
  truncated.resize(truncated.size() / 2);
  try {
    deserialize_plan(truncated.data(), truncated.size(), f.g, f.set, f.cfg);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kIoCorruption);
  }

  // ...while a well-formed blob for different geometry is a caller error.
  const GridDesc other = make_grid(2, 64, 2.0);
  const auto other_set = testing::small_trajectory(datasets::TrajectoryType::kRadial, 2, 64, 3000);
  try {
    deserialize_plan(blob.data(), blob.size(), other, other_set, f.cfg);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kInvalidInput);
  }
}

TEST(PlanCache, RestorationIsFasterThanPreprocessing) {
  Fixture f(3, 24, 40000);
  Timer t;
  const auto pp = preprocess(f.g, f.set, f.cfg);
  const double fresh_s = t.seconds();
  const auto blob = serialize_plan(pp, f.g, f.cfg);
  t.reset();
  const auto back = deserialize_plan(blob.data(), blob.size(), f.g, f.set, f.cfg);
  const double restore_s = t.seconds();
  // Restoring skips histogramming, partitioning, binning, and sorting; it
  // should comfortably beat a fresh preprocess on a nontrivial set.
  EXPECT_LT(restore_s, fresh_s) << "fresh=" << fresh_s << " restore=" << restore_s;
  EXPECT_EQ(back.orig_index.size(), pp.orig_index.size());
}

}  // namespace
}  // namespace nufft
