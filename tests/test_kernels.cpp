// Tests for the interpolation kernels, Bessel I0, LUT, and rolloff maps.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/error.hpp"
#include "common/types.hpp"
#include "core/preprocess.hpp"
#include "core/tolerance.hpp"
#include "kernels/bessel.hpp"
#include "kernels/es_kernel.hpp"
#include "kernels/gaussian.hpp"
#include "kernels/horner.hpp"
#include "kernels/kaiser_bessel.hpp"
#include "kernels/lut.hpp"
#include "kernels/rolloff.hpp"

namespace nufft::kernels {
namespace {

TEST(Bessel, KnownValues) {
  // Reference values from Abramowitz & Stegun / SciPy.
  EXPECT_NEAR(bessel_i0(0.0), 1.0, 1e-15);
  EXPECT_NEAR(bessel_i0(1.0), 1.2660658777520082, 1e-12);
  EXPECT_NEAR(bessel_i0(2.5), 3.2898391440501231, 1e-12);
  EXPECT_NEAR(bessel_i0(5.0), 27.239871823604442, 1e-10);
  EXPECT_NEAR(bessel_i0(10.0) / 2815.7166284662558, 1.0, 1e-12);
  EXPECT_NEAR(bessel_i0(20.0) / 4.355828255955355e7, 1.0, 1e-12);
}

TEST(Bessel, AsymptoticMatchesHighPrecisionReferences) {
  // References computed with 60-digit decimal arithmetic from the
  // all-positive-term power series (so no cancellation in the reference
  // itself). The set straddles the series/asymptotic crossover at x = 50.
  struct Ref {
    double x, i0;
  };
  constexpr Ref kRefs[] = {
      {10.0, 2.81571662846625441e+03},  {25.0, 5.77456060646631050e+09},
      {45.0, 2.08341407517731482e+18},  {49.5, 1.78769054175389778e+20},
      {50.0, 2.93255378384933618e+20},  {50.5, 4.81084726658070544e+20},
      {60.0, 5.89407705560980121e+24},  {80.0, 2.47517840433417042e+33},
      {100.0, 1.07375170713107380e+42}, {150.0, 4.54359746627057885e+63},
      {200.0, 2.03968717340972447e+85},
  };
  for (const auto& r : kRefs) {
    EXPECT_NEAR(bessel_i0(r.x) / r.i0, 1.0, 1e-13) << "x=" << r.x;
  }
}

TEST(Bessel, ContinuousAcrossAsymptoticCrossover) {
  // The series→asymptotic switch at x = 50 must not introduce a jump: with
  // I0'(x) ≈ I0(x) at large x, evaluations h apart differ by ≈ 2h·I0, and
  // any branch mismatch would show up far above that.
  const double h = 1e-9;
  const double below = bessel_i0(50.0 - h);
  const double above = bessel_i0(50.0 + h);
  EXPECT_NEAR(above / below, 1.0, 1e-8);
}

TEST(Bessel, MonotoneIncreasing) {
  double prev = bessel_i0(0.0);
  for (double x = 0.5; x < 40.0; x += 0.5) {
    const double v = bessel_i0(x);
    ASSERT_GT(v, prev);
    prev = v;
  }
}

TEST(KaiserBessel, BeattyBetaFormula) {
  // β = π·sqrt((L/α)²(α−0.5)² − 0.8), L = 2W.
  const double W = 4.0, alpha = 2.0;
  const double expect = kPi * std::sqrt(std::pow(8.0 / 2.0, 2) * 2.25 - 0.8);
  EXPECT_NEAR(KaiserBessel::beatty_beta(W, alpha), expect, 1e-12);
}

TEST(KaiserBessel, BetaGrowsWithW) {
  double prev = 0.0;
  for (double W : {1.5, 2.0, 4.0, 6.0, 8.0}) {
    const double b = KaiserBessel::beatty_beta(W, 2.0);
    ASSERT_GT(b, prev);
    prev = b;
  }
}

TEST(KaiserBessel, PeakAtZeroAndNormalized) {
  const auto kb = KaiserBessel::with_beatty_beta(4.0, 2.0);
  EXPECT_NEAR(kb.value(0.0), 1.0, 1e-12);
  for (double d = 0.25; d <= 4.0; d += 0.25) {
    ASSERT_LT(kb.value(d), kb.value(d - 0.25));
  }
}

TEST(KaiserBessel, EvenFunction) {
  const auto kb = KaiserBessel::with_beatty_beta(3.0, 2.0);
  for (double d = 0.0; d <= 3.0; d += 0.1) {
    ASSERT_EQ(kb.value(d), kb.value(-d));
  }
}

TEST(KaiserBessel, CompactSupport) {
  const auto kb = KaiserBessel::with_beatty_beta(2.0, 2.0);
  EXPECT_EQ(kb.value(2.0001), 0.0);
  EXPECT_EQ(kb.value(-5.0), 0.0);
  EXPECT_GT(kb.value(1.9999), 0.0);
}

TEST(KaiserBessel, FourierTransformContinuity) {
  // fourier_at must be smooth across the sinh→sin transition t = β.
  const auto kb = KaiserBessel::with_beatty_beta(4.0, 2.0);
  const double M = 128.0;
  // Find n where the argument crosses β.
  const double n_cross = kb.beta() * M / (kTwoPi * 4.0);
  const double below = kb.fourier_at(n_cross - 0.01, M);
  const double above = kb.fourier_at(n_cross + 0.01, M);
  // The crossing sits at a near-zero of the transform; bound the jump
  // relative to the DC peak, not to the tiny local value.
  EXPECT_NEAR(below, above, 1e-6 * kb.fourier_at(0.0, M));
}

TEST(KaiserBessel, FourierPeakAtDc) {
  const auto kb = KaiserBessel::with_beatty_beta(4.0, 2.0);
  const double dc = kb.fourier_at(0.0, 256.0);
  for (double n : {10.0, 40.0, 64.0, 100.0}) {
    ASSERT_LT(std::abs(kb.fourier_at(n, 256.0)), dc);
  }
}

TEST(Gaussian, PeakAndSupport) {
  const auto gk = GaussianKernel::with_gl_tau(4.0, 2.0);
  EXPECT_NEAR(gk.value(0.0), 1.0, 1e-12);
  EXPECT_EQ(gk.value(4.5), 0.0);
  EXPECT_GT(gk.value(1.0), gk.value(2.0));
}

TEST(Gaussian, EvenFunction) {
  const auto gk = GaussianKernel::with_gl_tau(3.0, 2.0);
  for (double d = 0.0; d <= 3.0; d += 0.3) ASSERT_EQ(gk.value(d), gk.value(-d));
}

TEST(KernelFactory, ProducesRequestedTypes) {
  const auto kb = make_kernel(KernelType::kKaiserBessel, 4.0, 2.0);
  const auto gs = make_kernel(KernelType::kGaussian, 4.0, 2.0);
  EXPECT_NE(kb->name().find("KaiserBessel"), std::string::npos);
  EXPECT_NE(gs->name().find("Gaussian"), std::string::npos);
  EXPECT_EQ(kb->radius(), 4.0);
  EXPECT_EQ(gs->radius(), 4.0);
}

// ---- exponential-of-semicircle ----

TEST(EsKernel, PeakEvennessAndSupport) {
  const EsKernel es(2.0, 2.0);
  EXPECT_NEAR(es.value(0.0), 1.0, 1e-15);
  EXPECT_EQ(es.value(2.0001), 0.0);
  EXPECT_EQ(es.value(-7.0), 0.0);
  EXPECT_GT(es.value(1.9999), 0.0);
  for (double d = 0.0; d <= 2.0; d += 0.13) {
    ASSERT_EQ(es.value(d), es.value(-d));
    if (d > 0.13) {
      ASSERT_LT(es.value(d), es.value(d - 0.13));
    }
  }
}

TEST(EsKernel, BetaMatchesFinufftParameterization) {
  // β = 2W · 0.97π · (1 − 1/(2α)).
  for (double W : {1.5, 2.0, 3.0, 4.0}) {
    const double expect = 2.0 * W * 0.97 * kPi * (1.0 - 1.0 / 4.0);
    EXPECT_NEAR(EsKernel::es_beta(W, 2.0), expect, 1e-12) << "W=" << W;
    EXPECT_NEAR(EsKernel(W, 2.0).beta(), expect, 1e-12) << "W=" << W;
  }
}

TEST(EsKernel, ValueMatchesClosedForm) {
  const EsKernel es(3.0, 2.0);
  const double beta = es.beta();
  for (double d = 0.0; d < 3.0; d += 0.07) {
    const double expect = std::exp(beta * (std::sqrt(1.0 - (d / 3.0) * (d / 3.0)) - 1.0));
    ASSERT_NEAR(es.value(d), expect, 1e-15) << "d=" << d;
  }
}

TEST(EsKernel, RolloffFourierMatchesDenseQuadrature) {
  // The cached 64-node Gauss–Legendre transform must agree with an
  // independent dense Simpson integration of 2·∫₀^W φ(d)·cos(2πnd/M) dd.
  const double W = 2.0, M = 128.0;
  const EsKernel es(W, 2.0);
  const int S = 20000;  // Simpson panels (even)
  for (double n : {0.0, 1.0, 8.0, 31.0, 64.0}) {
    const double h = W / S;
    double acc = 0.0;
    for (int i = 0; i <= S; ++i) {
      const double d = i * h;
      const double f = es.value(d) * std::cos(kTwoPi * n * d / M);
      const double w = (i == 0 || i == S) ? 1.0 : (i % 2 ? 4.0 : 2.0);
      acc += w * f;
    }
    const double dense = 2.0 * acc * h / 3.0;
    const double dc = es.rolloff_fourier(0.0, M);
    // The integrand's one-sided sqrt singularity at d = W limits both rules'
    // agreement to ~1e-9 — orders of magnitude below the tightest (1e-6)
    // calibrated tolerance the deapodization serves.
    ASSERT_NEAR(es.rolloff_fourier(n, M) / dc, dense / dc, 1e-7) << "n=" << n;
  }
}

TEST(KernelFactory, ProducesEsKernel) {
  const auto es = make_kernel(KernelType::kEs, 2.0, 2.0);
  EXPECT_NE(es->name().find("es"), std::string::npos);
  EXPECT_EQ(es->radius(), 2.0);
  // The virtual rolloff hook: ES has a quadrature transform, KB and
  // Gaussian report no-analytic (NaN sentinel) and keep the discrete path.
  EXPECT_TRUE(std::isfinite(es->rolloff_fourier(0.0, 64.0)));
  const auto kb = make_kernel(KernelType::kKaiserBessel, 2.0, 2.0);
  EXPECT_FALSE(std::isfinite(kb->rolloff_fourier(0.0, 64.0)));
}

// ---- piecewise-Horner evaluation ----

class HornerFit : public ::testing::TestWithParam<double> {};

TEST_P(HornerFit, MatchesEsKernelValues) {
  const double W = GetParam();
  const EsKernel es(W, 2.0);
  const KernelHorner h(es);
  double max_err = 0.0;
  for (double d = -W; d <= W; d += W / 1777.0) {
    max_err = std::max(max_err, std::abs(static_cast<double>(h(static_cast<float>(d))) -
                                         es.value(d)));
  }
  // φ has a sqrt singularity at |d| = W, so the polynomial misfit there
  // bottoms out at a fraction of the edge value exp(−β) — which is the
  // truncation-error scale the β tuning already commits the kernel to.
  // Away from the edge the fit sits at the float round-off floor (2e-6).
  EXPECT_LT(max_err, 2e-6 + 0.7 * std::exp(-es.beta())) << "W=" << W;
}

TEST_P(HornerFit, MatchesKaiserBesselValues) {
  const double W = GetParam();
  const auto kb = KaiserBessel::with_beatty_beta(W, 2.0);
  const KernelHorner h(kb);
  double max_err = 0.0;
  for (double d = -W; d <= W; d += W / 1777.0) {
    max_err = std::max(max_err, std::abs(static_cast<double>(h(static_cast<float>(d))) -
                                         kb.value(d)));
  }
  EXPECT_LT(max_err, 2e-6) << "W=" << W;
}

TEST_P(HornerFit, WindowBatchAgreesWithScalarPath) {
  const double W = GetParam();
  const EsKernel es(W, 2.0);
  const KernelHorner h(es);
  float win[64];
  for (double z = 0.0; z < 1.0; z += 0.0625) {
    // The length the convolution actually requests: neighbours of a sample
    // at k = x1 + W − z are x1..floor(k + W), i.e. floor(2W − z) + 1 slots.
    // (Trailing segments beyond that are never read.)
    const int len = static_cast<int>(std::floor(2.0 * W - z)) + 1;
    ASSERT_LE(len, h.segments());
    h.eval_window(static_cast<float>(z), len, win);
    for (int i = 0; i < len; ++i) {
      const double d = z - W + i;
      const double expect = (std::abs(d) <= W) ? es.value(d) : 0.0;
      // Same edge-singularity floor as MatchesEsKernelValues: window slots
      // landing exactly on |d| = W carry the sqrt-point misfit.
      ASSERT_NEAR(static_cast<double>(win[i]), expect, 2e-6 + 0.7 * std::exp(-es.beta()))
          << "W=" << W << " z=" << z << " i=" << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, HornerFit, ::testing::Values(1.5, 2.0, 2.5, 3.0, 4.0),
                         [](const auto& info) {
                           return "W" + std::to_string(static_cast<int>(info.param * 10));
                         });

TEST(Horner, ZeroOutsideSupport) {
  const EsKernel es(2.0, 2.0);
  const KernelHorner h(es);
  EXPECT_EQ(h(2.5f), 0.0f);
  EXPECT_EQ(h(-9.0f), 0.0f);
}

TEST(Horner, RejectsNonHalfIntegerWidth) {
  const GaussianKernel g(1.7, 2.0);
  EXPECT_THROW(KernelHorner h(g), Error);
}

// ---- tolerance-driven planning ----

TEST(Tolerance, ResolvesCheapestCalibratedRow) {
  // A looser request must never get a wider kernel than a tighter one.
  double prev_kb = 0.0, prev_es = 0.0;
  for (double tol : {1e-2, 1e-3, 1e-4, 1e-5, 1e-6}) {
    const auto kb = resolve_tolerance(tol, KernelType::kKaiserBessel);
    const auto es = resolve_tolerance(tol, KernelType::kEs);
    ASSERT_GE(kb.kernel_radius, prev_kb);
    ASSERT_GE(es.kernel_radius, prev_es);
    ASSERT_LE(kb.calibrated_error, tol);
    ASSERT_LE(es.calibrated_error, tol);
    // The ISSUE's headline claim: ES reaches every tolerance at a width no
    // larger than the KB row's.
    ASSERT_LE(es.kernel_radius, kb.kernel_radius) << "tol=" << tol;
    ASSERT_EQ(es.eval, KernelEval::kHorner);
    ASSERT_EQ(kb.eval, KernelEval::kLut);
    prev_kb = kb.kernel_radius;
    prev_es = es.kernel_radius;
  }
}

TEST(Tolerance, UncalibratedRequestsThrowUnachievable) {
  const auto code_of = [](auto&& fn) {
    try {
      fn();
    } catch (const Error& e) {
      return e.code();
    }
    return ErrorCode::kInternal;
  };
  // Tighter than the tightest row.
  EXPECT_EQ(code_of([] { resolve_tolerance(1e-9, KernelType::kKaiserBessel); }),
            ErrorCode::kUnachievableAccuracy);
  // Gaussian has no calibration table.
  EXPECT_EQ(code_of([] { resolve_tolerance(1e-3, KernelType::kGaussian); }),
            ErrorCode::kUnachievableAccuracy);
  // Nonsense tolerances are caller mistakes, not calibration gaps.
  EXPECT_EQ(code_of([] { resolve_tolerance(0.0, KernelType::kEs); }),
            ErrorCode::kInvalidInput);
  EXPECT_EQ(code_of([] { resolve_tolerance(-1.0, KernelType::kEs); }),
            ErrorCode::kInvalidInput);
}

TEST(Tolerance, ApplyOverwritesKernelParameters) {
  PlanConfig cfg;
  cfg.kernel = KernelType::kEs;
  cfg.tolerance = 1e-4;
  cfg.kernel_radius = 99.0;  // must be replaced by the calibrated row
  apply_tolerance(cfg, 2.0);
  const auto row = resolve_tolerance(1e-4, KernelType::kEs);
  EXPECT_EQ(cfg.kernel_radius, row.kernel_radius);
  EXPECT_EQ(cfg.lut_samples_per_unit, row.lut_samples_per_unit);
  EXPECT_EQ(cfg.eval, row.eval);
}

TEST(Tolerance, ApplyIsIdempotentAndIgnoresZeroTolerance) {
  PlanConfig cfg;
  cfg.kernel_radius = 3.5;
  cfg.lut_samples_per_unit = 333;
  apply_tolerance(cfg, 2.0);  // tolerance == 0: manual parameters untouched
  EXPECT_EQ(cfg.kernel_radius, 3.5);
  EXPECT_EQ(cfg.lut_samples_per_unit, 333);

  cfg.kernel = KernelType::kEs;
  cfg.tolerance = 1e-3;
  apply_tolerance(cfg, 2.0);
  PlanConfig twice = cfg;
  apply_tolerance(twice, 2.0);
  EXPECT_EQ(twice.kernel_radius, cfg.kernel_radius);
  EXPECT_EQ(twice.eval, cfg.eval);
}

TEST(Tolerance, RejectsUndersampledGrid) {
  PlanConfig cfg;
  cfg.kernel = KernelType::kEs;
  cfg.tolerance = 1e-3;
  try {
    apply_tolerance(cfg, 1.25);  // below kCalibratedAlpha
    FAIL() << "expected kUnachievableAccuracy";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), ErrorCode::kUnachievableAccuracy);
  }
}

// ---- LUT ----

class LutAccuracy : public ::testing::TestWithParam<double> {};

TEST_P(LutAccuracy, LinearInterpolationErrorBounded) {
  const double W = GetParam();
  const auto kb = KaiserBessel::with_beatty_beta(W, 2.0);
  const KernelLut lut(kb, 1024);
  double max_err = 0.0;
  for (double d = 0.0; d <= W; d += W / 4096.0) {
    max_err = std::max(max_err,
                       std::abs(static_cast<double>(lut(static_cast<float>(d))) - kb.value(d)));
  }
  // Linear-interp error scales with the kernel curvature; 1024 samples/unit
  // keeps it far below single-precision NUFFT accuracy.
  EXPECT_LT(max_err, 5e-6) << "W=" << W;
}

TEST_P(LutAccuracy, NegativeDistanceMirrors) {
  const double W = GetParam();
  const auto kb = KaiserBessel::with_beatty_beta(W, 2.0);
  const KernelLut lut(kb, 512);
  for (float d = 0.0f; d <= static_cast<float>(W); d += 0.37f) {
    ASSERT_EQ(lut(d), lut(-d));
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, LutAccuracy, ::testing::Values(2.0, 2.5, 4.0, 6.0, 8.0),
                         [](const auto& info) {
                           return "W" + std::to_string(static_cast<int>(info.param * 10));
                         });

TEST(Lut, EdgeValueAtRadiusDefined) {
  const auto kb = KaiserBessel::with_beatty_beta(4.0, 2.0);
  const KernelLut lut(kb, 256);
  // d == W must read a defined table slot (guard entries).
  EXPECT_NEAR(lut(4.0f), kb.value(4.0), 1e-5);
}

TEST(Lut, GuardContractAtEdgeOneUlp) {
  // Pins the guard-entry contract spelled out in lut.hpp: the guards hold
  // the one-sided edge value φ(W), NOT zero, so the lookup at exactly
  // d == W — and one float ulp to either side, distances the compute_window
  // float-rounding trim can legitimately admit — is a defined read
  // returning ≈ φ(W). Under the historical zeroed-guard bug, d ≥ the last
  // in-support sample interpolated toward 0, so lut(W ± 1 ulp) lost up to
  // the whole edge value; the EXPECT_GT below is the direct detector.
  for (const double W : {2.0, 2.5, 4.0}) {
    for (const int spu : {512, 777}) {
      const auto kb = KaiserBessel::with_beatty_beta(W, 2.0);
      const KernelLut lut(kb, spu);
      const auto Wf = static_cast<float>(W);
      const float below = std::nextafterf(Wf, 0.0f);
      const float above = std::nextafterf(Wf, 2.0f * Wf);
      const double edge = kb.value(W);
      // Same seam bound as GuardEntryHoldsTrueEdgeValue: the straddling
      // cell interpolates across the in-support/clamped-flat seam, erring
      // by O(h·|φ′(W)|) when W·spu is fractional.
      const double h = 1.0 / spu;
      const double seam = 5e-6 + 0.75 * std::abs(kb.value(W) - kb.value(W - h));
      EXPECT_NEAR(lut(Wf), edge, seam) << "W=" << W << " spu=" << spu;
      EXPECT_NEAR(lut(below), edge, seam) << "W=" << W << " spu=" << spu << " (W - 1 ulp)";
      EXPECT_NEAR(lut(above), edge, seam) << "W=" << W << " spu=" << spu << " (W + 1 ulp)";
      EXPECT_GT(lut(above), 0.5f * static_cast<float>(edge))
          << "zeroed-guard regression: lookup just past the edge collapsed toward 0 "
          << "(W=" << W << " spu=" << spu << ")";
    }
  }
}

class LutSupportEdge : public ::testing::TestWithParam<std::pair<double, int>> {};

TEST_P(LutSupportEdge, GuardEntryHoldsTrueEdgeValue) {
  // Regression for the guard-entry bug: table slots past W·spu used to be
  // zeroed, so a lookup just inside the support edge interpolated toward 0
  // instead of toward the kernel's true (discontinuous) one-sided value
  // φ(W) — for KB that is 1/I0(β), not 0. Fractional W·spu products make
  // the last in-support slot land mid-interval, which is where the zeroed
  // guard hurt most.
  const auto [W, spu] = GetParam();
  const auto kb = KaiserBessel::with_beatty_beta(W, 2.0);
  const KernelLut lut(kb, spu);
  double max_err = 0.0;
  // Walk the last two sample intervals up to and including d == W.
  const double h = 1.0 / spu;
  for (double d = W - 2.0 * h; d <= W; d += h / 64.0) {
    const double dd = std::min(d, W);
    max_err = std::max(max_err, std::abs(static_cast<double>(lut(static_cast<float>(dd))) -
                                         kb.value(dd)));
  }
  // When W·spu is fractional the last cell straddles the support edge:
  // linear interpolation across the in-support/clamped-flat seam errs by
  // O(h·|φ′(W)|), not the O(h²·φ″) of interior cells. Bound by the
  // one-sided slope; the zeroed-guard bug erred by φ(W)/2 — orders larger.
  const double slope = std::abs(kb.value(W) - kb.value(W - h)) / h;
  EXPECT_LT(max_err, 5e-6 + 0.75 * h * slope) << "W=" << W << " spu=" << spu;
  // The lookup exactly at the support edge must track the true one-sided
  // value φ(W) = 1/I0(β): the straddling cell costs at most a few percent
  // (slope · h relative to φ(W)), where zeroed guards lost 50% of it at
  // frac = 0.5 and all of it at integer W·spu.
  EXPECT_NEAR(static_cast<double>(lut(static_cast<float>(W))) / kb.value(W), 1.0, 3e-2)
      << "W=" << W << " spu=" << spu;
}

INSTANTIATE_TEST_SUITE_P(FractionalEdges, LutSupportEdge,
                         ::testing::Values(std::pair<double, int>{2.5, 511},
                                           std::pair<double, int>{2.5, 1024},
                                           std::pair<double, int>{3.0, 333},
                                           std::pair<double, int>{4.0, 1000},
                                           std::pair<double, int>{1.5, 777}),
                         [](const auto& info) {
                           return "W" + std::to_string(static_cast<int>(info.param.first * 10)) +
                                  "spu" + std::to_string(info.param.second);
                         });

TEST(Lut, StoresRadiusAndResolution) {
  const auto kb = KaiserBessel::with_beatty_beta(3.0, 2.0);
  const KernelLut lut(kb, 777);
  EXPECT_EQ(lut.radius(), 3.0f);
  EXPECT_EQ(lut.samples_per_unit(), 777);
}

// ---- rolloff ----

TEST(Rolloff, NumericMatchesAnalyticKaiserBessel) {
  const auto kb = KaiserBessel::with_beatty_beta(4.0, 2.0);
  const index_t N = 64, M = 128;
  const dvec numeric = apodization_1d(kb, N, M);
  const dvec analytic = apodization_1d_analytic(kb, N, M);
  // The discrete (integer-sampled) apodization approaches the continuous FT
  // of the kernel; they agree to a fraction of a percent in the FOV.
  for (index_t i = 0; i < N; ++i) {
    const double rel = std::abs(numeric[static_cast<std::size_t>(i)] -
                                analytic[static_cast<std::size_t>(i)]) /
                       std::abs(analytic[static_cast<std::size_t>(i)]);
    ASSERT_LT(rel, 5e-3) << "i=" << i;
  }
}

TEST(Rolloff, SymmetricAboutCenterForEvenN) {
  const auto kb = KaiserBessel::with_beatty_beta(4.0, 2.0);
  const dvec c = apodization_1d(kb, 64, 128);
  // c[n] is even in the centered index; array index N/2 is center.
  for (index_t off = 1; off < 32; ++off) {
    ASSERT_NEAR(c[static_cast<std::size_t>(32 + off)], c[static_cast<std::size_t>(32 - off)],
                1e-12);
  }
}

TEST(Rolloff, PeakAtImageCenter) {
  const auto kb = KaiserBessel::with_beatty_beta(4.0, 2.0);
  const dvec c = apodization_1d(kb, 64, 128);
  const double center = c[32];
  for (index_t i = 0; i < 64; ++i) ASSERT_LE(c[static_cast<std::size_t>(i)], center + 1e-12);
}

TEST(Rolloff, ScalingIsInverse) {
  const auto kb = KaiserBessel::with_beatty_beta(4.0, 2.0);
  const dvec c = apodization_1d(kb, 32, 64);
  const fvec s = rolloff_1d(kb, 32, 64);
  for (index_t i = 0; i < 32; ++i) {
    ASSERT_NEAR(static_cast<double>(s[static_cast<std::size_t>(i)]) *
                    c[static_cast<std::size_t>(i)],
                1.0, 1e-5);
  }
}

TEST(Rolloff, ThrowsWhenKernelTooNarrowForFov) {
  // A wide Gaussian kernel apodizes the image domain by ≈e^{-(2πn/M)²τ},
  // which underflows the invertibility threshold at the edge of a wide
  // field of view — the rolloff map must refuse to invert through it.
  const GaussianKernel wide(16.0, 2.72);
  EXPECT_THROW(rolloff_1d(wide, 120, 128), Error);
}

}  // namespace
}  // namespace nufft::kernels
