// Tests for the interpolation kernels, Bessel I0, LUT, and rolloff maps.
#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"
#include "common/types.hpp"
#include "kernels/bessel.hpp"
#include "kernels/gaussian.hpp"
#include "kernels/kaiser_bessel.hpp"
#include "kernels/lut.hpp"
#include "kernels/rolloff.hpp"

namespace nufft::kernels {
namespace {

TEST(Bessel, KnownValues) {
  // Reference values from Abramowitz & Stegun / SciPy.
  EXPECT_NEAR(bessel_i0(0.0), 1.0, 1e-15);
  EXPECT_NEAR(bessel_i0(1.0), 1.2660658777520082, 1e-12);
  EXPECT_NEAR(bessel_i0(2.5), 3.2898391440501231, 1e-12);
  EXPECT_NEAR(bessel_i0(5.0), 27.239871823604442, 1e-10);
  EXPECT_NEAR(bessel_i0(10.0) / 2815.7166284662558, 1.0, 1e-12);
  EXPECT_NEAR(bessel_i0(20.0) / 4.355828255955355e7, 1.0, 1e-12);
}

TEST(Bessel, MonotoneIncreasing) {
  double prev = bessel_i0(0.0);
  for (double x = 0.5; x < 40.0; x += 0.5) {
    const double v = bessel_i0(x);
    ASSERT_GT(v, prev);
    prev = v;
  }
}

TEST(KaiserBessel, BeattyBetaFormula) {
  // β = π·sqrt((L/α)²(α−0.5)² − 0.8), L = 2W.
  const double W = 4.0, alpha = 2.0;
  const double expect = kPi * std::sqrt(std::pow(8.0 / 2.0, 2) * 2.25 - 0.8);
  EXPECT_NEAR(KaiserBessel::beatty_beta(W, alpha), expect, 1e-12);
}

TEST(KaiserBessel, BetaGrowsWithW) {
  double prev = 0.0;
  for (double W : {1.5, 2.0, 4.0, 6.0, 8.0}) {
    const double b = KaiserBessel::beatty_beta(W, 2.0);
    ASSERT_GT(b, prev);
    prev = b;
  }
}

TEST(KaiserBessel, PeakAtZeroAndNormalized) {
  const auto kb = KaiserBessel::with_beatty_beta(4.0, 2.0);
  EXPECT_NEAR(kb.value(0.0), 1.0, 1e-12);
  for (double d = 0.25; d <= 4.0; d += 0.25) {
    ASSERT_LT(kb.value(d), kb.value(d - 0.25));
  }
}

TEST(KaiserBessel, EvenFunction) {
  const auto kb = KaiserBessel::with_beatty_beta(3.0, 2.0);
  for (double d = 0.0; d <= 3.0; d += 0.1) {
    ASSERT_EQ(kb.value(d), kb.value(-d));
  }
}

TEST(KaiserBessel, CompactSupport) {
  const auto kb = KaiserBessel::with_beatty_beta(2.0, 2.0);
  EXPECT_EQ(kb.value(2.0001), 0.0);
  EXPECT_EQ(kb.value(-5.0), 0.0);
  EXPECT_GT(kb.value(1.9999), 0.0);
}

TEST(KaiserBessel, FourierTransformContinuity) {
  // fourier_at must be smooth across the sinh→sin transition t = β.
  const auto kb = KaiserBessel::with_beatty_beta(4.0, 2.0);
  const double M = 128.0;
  // Find n where the argument crosses β.
  const double n_cross = kb.beta() * M / (kTwoPi * 4.0);
  const double below = kb.fourier_at(n_cross - 0.01, M);
  const double above = kb.fourier_at(n_cross + 0.01, M);
  // The crossing sits at a near-zero of the transform; bound the jump
  // relative to the DC peak, not to the tiny local value.
  EXPECT_NEAR(below, above, 1e-6 * kb.fourier_at(0.0, M));
}

TEST(KaiserBessel, FourierPeakAtDc) {
  const auto kb = KaiserBessel::with_beatty_beta(4.0, 2.0);
  const double dc = kb.fourier_at(0.0, 256.0);
  for (double n : {10.0, 40.0, 64.0, 100.0}) {
    ASSERT_LT(std::abs(kb.fourier_at(n, 256.0)), dc);
  }
}

TEST(Gaussian, PeakAndSupport) {
  const auto gk = GaussianKernel::with_gl_tau(4.0, 2.0);
  EXPECT_NEAR(gk.value(0.0), 1.0, 1e-12);
  EXPECT_EQ(gk.value(4.5), 0.0);
  EXPECT_GT(gk.value(1.0), gk.value(2.0));
}

TEST(Gaussian, EvenFunction) {
  const auto gk = GaussianKernel::with_gl_tau(3.0, 2.0);
  for (double d = 0.0; d <= 3.0; d += 0.3) ASSERT_EQ(gk.value(d), gk.value(-d));
}

TEST(KernelFactory, ProducesRequestedTypes) {
  const auto kb = make_kernel(KernelType::kKaiserBessel, 4.0, 2.0);
  const auto gs = make_kernel(KernelType::kGaussian, 4.0, 2.0);
  EXPECT_NE(kb->name().find("KaiserBessel"), std::string::npos);
  EXPECT_NE(gs->name().find("Gaussian"), std::string::npos);
  EXPECT_EQ(kb->radius(), 4.0);
  EXPECT_EQ(gs->radius(), 4.0);
}

// ---- LUT ----

class LutAccuracy : public ::testing::TestWithParam<double> {};

TEST_P(LutAccuracy, LinearInterpolationErrorBounded) {
  const double W = GetParam();
  const auto kb = KaiserBessel::with_beatty_beta(W, 2.0);
  const KernelLut lut(kb, 1024);
  double max_err = 0.0;
  for (double d = 0.0; d <= W; d += W / 4096.0) {
    max_err = std::max(max_err,
                       std::abs(static_cast<double>(lut(static_cast<float>(d))) - kb.value(d)));
  }
  // Linear-interp error scales with the kernel curvature; 1024 samples/unit
  // keeps it far below single-precision NUFFT accuracy.
  EXPECT_LT(max_err, 5e-6) << "W=" << W;
}

TEST_P(LutAccuracy, NegativeDistanceMirrors) {
  const double W = GetParam();
  const auto kb = KaiserBessel::with_beatty_beta(W, 2.0);
  const KernelLut lut(kb, 512);
  for (float d = 0.0f; d <= static_cast<float>(W); d += 0.37f) {
    ASSERT_EQ(lut(d), lut(-d));
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, LutAccuracy, ::testing::Values(2.0, 2.5, 4.0, 6.0, 8.0),
                         [](const auto& info) {
                           return "W" + std::to_string(static_cast<int>(info.param * 10));
                         });

TEST(Lut, EdgeValueAtRadiusDefined) {
  const auto kb = KaiserBessel::with_beatty_beta(4.0, 2.0);
  const KernelLut lut(kb, 256);
  // d == W must read a defined table slot (guard entries).
  EXPECT_NEAR(lut(4.0f), kb.value(4.0), 1e-5);
}

TEST(Lut, StoresRadiusAndResolution) {
  const auto kb = KaiserBessel::with_beatty_beta(3.0, 2.0);
  const KernelLut lut(kb, 777);
  EXPECT_EQ(lut.radius(), 3.0f);
  EXPECT_EQ(lut.samples_per_unit(), 777);
}

// ---- rolloff ----

TEST(Rolloff, NumericMatchesAnalyticKaiserBessel) {
  const auto kb = KaiserBessel::with_beatty_beta(4.0, 2.0);
  const index_t N = 64, M = 128;
  const dvec numeric = apodization_1d(kb, N, M);
  const dvec analytic = apodization_1d_analytic(kb, N, M);
  // The discrete (integer-sampled) apodization approaches the continuous FT
  // of the kernel; they agree to a fraction of a percent in the FOV.
  for (index_t i = 0; i < N; ++i) {
    const double rel = std::abs(numeric[static_cast<std::size_t>(i)] -
                                analytic[static_cast<std::size_t>(i)]) /
                       std::abs(analytic[static_cast<std::size_t>(i)]);
    ASSERT_LT(rel, 5e-3) << "i=" << i;
  }
}

TEST(Rolloff, SymmetricAboutCenterForEvenN) {
  const auto kb = KaiserBessel::with_beatty_beta(4.0, 2.0);
  const dvec c = apodization_1d(kb, 64, 128);
  // c[n] is even in the centered index; array index N/2 is center.
  for (index_t off = 1; off < 32; ++off) {
    ASSERT_NEAR(c[static_cast<std::size_t>(32 + off)], c[static_cast<std::size_t>(32 - off)],
                1e-12);
  }
}

TEST(Rolloff, PeakAtImageCenter) {
  const auto kb = KaiserBessel::with_beatty_beta(4.0, 2.0);
  const dvec c = apodization_1d(kb, 64, 128);
  const double center = c[32];
  for (index_t i = 0; i < 64; ++i) ASSERT_LE(c[static_cast<std::size_t>(i)], center + 1e-12);
}

TEST(Rolloff, ScalingIsInverse) {
  const auto kb = KaiserBessel::with_beatty_beta(4.0, 2.0);
  const dvec c = apodization_1d(kb, 32, 64);
  const fvec s = rolloff_1d(kb, 32, 64);
  for (index_t i = 0; i < 32; ++i) {
    ASSERT_NEAR(static_cast<double>(s[static_cast<std::size_t>(i)]) *
                    c[static_cast<std::size_t>(i)],
                1.0, 1e-5);
  }
}

TEST(Rolloff, ThrowsWhenKernelTooNarrowForFov) {
  // A wide Gaussian kernel apodizes the image domain by ≈e^{-(2πn/M)²τ},
  // which underflows the invertibility threshold at the edge of a wide
  // field of view — the rolloff map must refuse to invert through it.
  const GaussianKernel wide(16.0, 2.72);
  EXPECT_THROW(rolloff_1d(wide, 120, 128), Error);
}

}  // namespace
}  // namespace nufft::kernels
