// Unit tests: the SSE Vec4f wrapper against scalar arithmetic.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "simd/vec4f.hpp"

namespace nufft::simd {
namespace {

TEST(Vec4f, SplatBroadcastsValue) {
  const Vec4f v(3.5f);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(v[i], 3.5f);
}

TEST(Vec4f, ZeroIsZero) {
  const Vec4f v = Vec4f::zero();
  for (int i = 0; i < 4; ++i) EXPECT_EQ(v[i], 0.0f);
}

TEST(Vec4f, LaneConstructorOrdersLanes) {
  const Vec4f v(1.0f, 2.0f, 3.0f, 4.0f);
  EXPECT_EQ(v[0], 1.0f);
  EXPECT_EQ(v[1], 2.0f);
  EXPECT_EQ(v[2], 3.0f);
  EXPECT_EQ(v[3], 4.0f);
}

TEST(Vec4f, LoadStoreRoundtripUnaligned) {
  float in[7] = {0, 1, 2, 3, 4, 5, 6};
  float out[7] = {};
  const Vec4f v = Vec4f::loadu(in + 1);
  v.storeu(out + 1);
  for (int i = 1; i <= 4; ++i) EXPECT_EQ(out[i], in[i]);
}

TEST(Vec4f, ArithmeticMatchesScalar) {
  Rng rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    float a[4], b[4];
    for (int i = 0; i < 4; ++i) {
      a[i] = static_cast<float>(rng.uniform(-10, 10));
      b[i] = static_cast<float>(rng.uniform(-10, 10));
    }
    const Vec4f va = Vec4f::loadu(a);
    const Vec4f vb = Vec4f::loadu(b);
    const Vec4f sum = va + vb;
    const Vec4f dif = va - vb;
    const Vec4f prd = va * vb;
    for (int i = 0; i < 4; ++i) {
      ASSERT_EQ(sum[i], a[i] + b[i]);
      ASSERT_EQ(dif[i], a[i] - b[i]);
      ASSERT_EQ(prd[i], a[i] * b[i]);
    }
  }
}

TEST(Vec4f, CompoundAssignmentMatches) {
  Vec4f v(1.0f, 2.0f, 3.0f, 4.0f);
  v += Vec4f(1.0f);
  v *= Vec4f(2.0f);
  EXPECT_EQ(v[0], 4.0f);
  EXPECT_EQ(v[3], 10.0f);
}

TEST(Vec4f, MaddIsMulThenAdd) {
  Rng rng(5);
  for (int trial = 0; trial < 100; ++trial) {
    float a[4], b[4], c[4];
    for (int i = 0; i < 4; ++i) {
      a[i] = static_cast<float>(rng.uniform(-2, 2));
      b[i] = static_cast<float>(rng.uniform(-2, 2));
      c[i] = static_cast<float>(rng.uniform(-2, 2));
    }
    const Vec4f r = madd(Vec4f::loadu(a), Vec4f::loadu(b), Vec4f::loadu(c));
    for (int i = 0; i < 4; ++i) {
      // Separate mul and add — never fused; equality must be exact.
      ASSERT_EQ(r[i], a[i] * b[i] + c[i]);
    }
  }
}

TEST(Vec4f, HsumAddsAllLanes) {
  const Vec4f v(0.5f, 1.5f, 2.5f, 3.5f);
  EXPECT_FLOAT_EQ(v.hsum(), 8.0f);
}

TEST(Vec4f, HsumComplexPairsFoldsTwoComplexValues) {
  // Register holds (re0, im0, re1, im1); pair fold gives (re0+re1, im0+im1).
  const Vec4f v(1.0f, 2.0f, 10.0f, 20.0f);
  const Vec4f s = v.hsum_complex_pairs();
  EXPECT_EQ(s[0], 11.0f);
  EXPECT_EQ(s[1], 22.0f);
}

TEST(Vec4f, DupPairLayout) {
  const Vec4f v = dup_pair(3.0f, 4.0f);
  EXPECT_EQ(v[0], 3.0f);
  EXPECT_EQ(v[1], 3.0f);
  EXPECT_EQ(v[2], 4.0f);
  EXPECT_EQ(v[3], 4.0f);
}

TEST(Vec4f, AlignedLoadFromAlignedStorage) {
  alignas(16) float buf[4] = {9, 8, 7, 6};
  const Vec4f v = Vec4f::load(buf);
  EXPECT_EQ(v[0], 9.0f);
  EXPECT_EQ(v[3], 6.0f);
}

}  // namespace
}  // namespace nufft::simd
